//===--- bench/fig2_ecfg.cpp - Regenerate Figure 2 ------------------------===//
//
// Figure 2 of the paper shows the extended control flow graph of the
// Figure 1 fragment: the loop's PREHEADER, the two POSTEXITs with their
// pseudo (Z) edges, and the START/STOP bracket with the START -> STOP
// pseudo edge. This binary prints the regenerated ECFG and benchmarks
// interval analysis + ECFG construction.
//
//===----------------------------------------------------------------------===//

#include "support/FatalError.h"
#include "Figure1.h"

#include "ecfg/Ecfg.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ptran;
using namespace ptran::bench;

namespace {

void printFigure2() {
  std::unique_ptr<Program> Prog = makeFigure1Program();
  const Function *Main = Prog->entry();
  Cfg C = buildCfg(*Main);
  elideGotoNodes(C);
  DiagnosticEngine Diags;
  auto IS = IntervalStructure::compute(C, Diags);
  if (!IS)
    reportFatalError("interval analysis failed:\n" + Diags.str());
  Ecfg E = buildEcfg(C, *IS);

  std::printf("=== Figure 2: extended control flow graph, ECFG ===\n\n");
  std::printf("interval structure: %zu loop(s)\n", IS->headers().size());
  for (NodeId H : IS->headers())
    std::printf("  header %s, body size %zu, %zu entry edge(s), %zu back "
                "edge(s), %zu exit edge(s)\n",
                C.nodeName(H).c_str(), IS->loopBody(H).size(),
                IS->entryEdges(H).size(), IS->backEdges(H).size(),
                IS->exitEdges(H).size());

  std::printf("\nECFG edges (Z = pseudo edge, never taken):\n");
  const Cfg &Ext = E.cfg();
  const Digraph &G = Ext.graph();
  for (EdgeId EId = 0; EId < G.numEdgeSlots(); ++EId) {
    if (!G.isLive(EId))
      continue;
    const Digraph::Edge &Ed = G.edge(EId);
    std::printf("  %-32s --%s--> %s\n", Ext.nodeName(Ed.From).c_str(),
                cfgLabelName(static_cast<CfgLabel>(Ed.Label)).c_str(),
                Ext.nodeName(Ed.To).c_str());
  }

  std::printf("\nsynthesized nodes:\n");
  for (NodeId N = 0; N < Ext.numNodes(); ++N)
    if (Ext.nodeType(N) != CfgNodeType::Other &&
        Ext.nodeType(N) != CfgNodeType::Header)
      std::printf("  %-10s type %s\n", Ext.nodeName(N).c_str(),
                  cfgNodeTypeName(Ext.nodeType(N)));

  DiagnosticEngine VDiags;
  std::printf("\nstructural verifier: %s\n",
              verifyEcfg(E, C, *IS, VDiags) ? "PASS" : "FAIL");
  std::printf("\nGraphviz:\n%s\n", Ext.dot("Figure 2 ECFG").c_str());
}

void benchIntervalsAndEcfg(benchmark::State &State, const Workload *W) {
  std::unique_ptr<Program> Prog = parseWorkload(*W);
  std::vector<Cfg> Cfgs;
  for (const auto &F : Prog->functions()) {
    Cfgs.push_back(buildCfg(*F));
    elideGotoNodes(Cfgs.back());
  }
  for (auto _ : State) {
    for (Cfg &C : Cfgs) {
      DiagnosticEngine Diags;
      auto IS = IntervalStructure::compute(C, Diags);
      Ecfg E = buildEcfg(C, *IS);
      benchmark::DoNotOptimize(E.cfg().numNodes());
    }
  }
}
BENCHMARK_CAPTURE(benchIntervalsAndEcfg, LOOPS, &livermoreLoops());
BENCHMARK_CAPTURE(benchIntervalsAndEcfg, SIMPLE, &simpleKernel());

} // namespace

int main(int Argc, char **Argv) {
  printFigure2();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
