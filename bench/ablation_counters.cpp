//===--- bench/ablation_counters.cpp - Ablation A1: counter placement -----===//
//
// Isolates the contribution of each Section 3 optimization:
//
//   naive   one counter per basic block (+ DO add for straight bodies)
//   opt1    one counter per control condition
//   opt1+2  + sum-complement / exit-complement / latch derivations
//   smart   + the DO-loop trip-count optimizations
//
// reporting static counter counts, dynamic update counts and simulated
// overhead cycles per workload, plus aggregate reductions over a pool of
// random programs. Benchmarks cover plan construction and TOTAL_FREQ
// recovery.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ir/Builder.h"
#include "profile/ProfileRuntime.h"
#include "profile/Recovery.h"
#include "support/Rng.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ptran;

namespace {

constexpr ProfileMode AllModes[] = {ProfileMode::Naive, ProfileMode::Opt1,
                                    ProfileMode::Opt12, ProfileMode::Smart};

void ablateWorkload(const Workload &W) {
  std::unique_ptr<Program> Prog = parseWorkload(W);
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  if (!PA)
    reportFatalError("analysis failed for " + W.Name);
  CostModel CM = CostModel::optimizing();

  Interpreter Interp(*Prog, CM);
  std::vector<ProgramPlan> Plans;
  std::vector<std::unique_ptr<ProfileRuntime>> Rts;
  for (ProfileMode M : AllModes) {
    Plans.push_back(ProgramPlan::build(*PA, M));
    Rts.push_back(std::make_unique<ProfileRuntime>(*PA, Plans.back(), CM));
    Interp.addObserver(Rts.back().get());
  }
  RunResult R = Interp.run(W.MaxSteps);
  if (!R.Ok)
    reportFatalError(W.Name + " failed: " + R.Error);

  std::printf("%s (%s cycles uninstrumented):\n", W.Name.c_str(),
              formatDouble(R.Cycles).c_str());
  TablePrinter T({"placement", "counters", "dyn updates", "overhead cyc",
                  "overhead %"});
  for (size_t I = 0; I < Plans.size(); ++I) {
    double Ovh = Rts[I]->overheadCycles();
    T.addRow({profileModeName(AllModes[I]),
              std::to_string(Plans[I].totalCounters()),
              std::to_string(Rts[I]->dynamicIncrements() +
                             Rts[I]->dynamicAdds()),
              formatDouble(Ovh),
              formatDouble(100.0 * Ovh / R.Cycles, 3) + "%"});
  }
  std::printf("%s\n", T.str().c_str());
}

/// Aggregate reduction over a pool of deterministic scaling programs.
void ablateScalingPool() {
  std::printf("aggregate over generated nest programs (units x depth):\n");
  TablePrinter T({"program", "naive", "opt1", "opt1+2", "smart"});
  for (unsigned Units : {4u, 16u, 64u}) {
    for (unsigned Depth : {1u, 3u}) {
      std::unique_ptr<Program> Prog = makeScalingProgram(Units, Depth);
      DiagnosticEngine Diags;
      auto PA = ProgramAnalysis::compute(*Prog, Diags);
      if (!PA)
        reportFatalError("analysis failed for scaling program");
      std::vector<std::string> Row = {"nest " + std::to_string(Units) +
                                      "x" + std::to_string(Depth)};
      for (ProfileMode M : AllModes)
        Row.push_back(
            std::to_string(ProgramPlan::build(*PA, M).totalCounters()));
      T.addRow(std::move(Row));
    }
  }
  std::printf("%s\n", T.str().c_str());
}

void benchPlanBuild(benchmark::State &State, int ModeTag) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  for (auto _ : State) {
    ProgramPlan Plan =
        ProgramPlan::build(*PA, static_cast<ProfileMode>(ModeTag));
    benchmark::DoNotOptimize(Plan.totalCounters());
  }
}
BENCHMARK_CAPTURE(benchPlanBuild, naive,
                  static_cast<int>(ProfileMode::Naive));
BENCHMARK_CAPTURE(benchPlanBuild, smart,
                  static_cast<int>(ProfileMode::Smart));

void benchRecovery(benchmark::State &State) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  CostModel CM = CostModel::optimizing();
  ProgramPlan Plan = ProgramPlan::build(*PA, ProfileMode::Smart);
  ProfileRuntime Rt(*PA, Plan, CM);
  Interpreter Interp(*Prog, CM);
  Interp.addObserver(&Rt);
  if (!Interp.run().Ok)
    reportFatalError("run failed");
  for (auto _ : State) {
    for (const auto &F : Prog->functions()) {
      FrequencyTotals T = Rt.recover(*F);
      benchmark::DoNotOptimize(T.Ok);
    }
  }
}
BENCHMARK(benchRecovery);

} // namespace

int main(int Argc, char **Argv) {
  std::printf("=== Ablation A1: counter placement optimizations ===\n\n");
  for (const Workload *W : table1Workloads())
    ablateWorkload(*W);
  ablateScalingPool();

  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
