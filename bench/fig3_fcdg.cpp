//===--- bench/fig3_fcdg.cpp - Regenerate Figure 3 ------------------------===//
//
// Figure 3 of the paper shows the forward control dependence graph of the
// running example, annotated with <FREQ, TOTAL_FREQ> tuples per edge and
// [COST, TIME, E[T^2], VAR, STD_DEV] tuples per node, for the scenario
// where the loop's IF executes 10 times and the exit is taken through
// IF (N .LT. 0) — yielding TIME(START) = 920 and STD_DEV(START) = 300.
// This binary regenerates the annotated graph, checks the two headline
// numbers, and benchmarks the control dependence + estimation passes.
//
//===----------------------------------------------------------------------===//

#include "Figure1.h"

#include "cost/Estimator.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

using namespace ptran;
using namespace ptran::bench;

namespace {

int printFigure3() {
  std::unique_ptr<Program> Prog = makeFigure1Program();
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  if (!Est)
    reportFatalError("analysis failed:\n" + Diags.str());
  RunResult Run = Est->profiledRun();
  if (!Run.Ok)
    reportFatalError("run failed: " + Run.Error);

  const Function *Main = Prog->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  FrequencyTotals Totals = Est->totalsFor(*Main);
  Frequencies Freqs = computeFrequencies(FA, Totals);

  TimeAnalysisOptions Opts;
  Opts.LocalCostOverride =
      [](const Function &F, const Stmt *S) -> std::optional<double> {
    if (equalsLower(F.name(), "foo"))
      return S->kind() == StmtKind::Assign ? 100.0 : 0.0;
    return S->kind() == StmtKind::IfGoto ? 1.0 : 0.0;
  };
  TimeAnalysis TA = Est->analyze(Opts);

  std::printf("=== Figure 3: forward control dependence graph, FCDG ===\n");
  std::printf("edges: <FREQ, TOTAL_FREQ>; nodes: [COST, TIME, E[T^2], "
              "VAR, STD_DEV]\n\n");
  const ControlDependence &CD = FA.cd();
  const Cfg &E = FA.ecfg().cfg();
  for (NodeId U : CD.topoOrder()) {
    const NodeEstimates &NE = TA.of(*Main, U);
    std::printf("%-34s [%s, %s, %s, %s, %s]\n", E.nodeName(U).c_str(),
                formatDouble(NE.Cost).c_str(), formatDouble(NE.Time).c_str(),
                formatDouble(NE.TimeSq).c_str(),
                formatDouble(NE.Var).c_str(),
                formatDouble(NE.StdDev).c_str());
    for (CfgLabel L : CD.labelsOf(U)) {
      ControlCondition Cond{U, L};
      std::printf("    --%s <%s, %s>-->", cfgLabelName(L).c_str(),
                  formatDouble(Freqs.freqOf(Cond), 4).c_str(),
                  formatDouble(Totals.condTotal(Cond)).c_str());
      for (NodeId V : CD.childrenOf(U, L))
        std::printf(" %s;", E.nodeName(V).c_str());
      std::printf("\n");
    }
  }

  double Time = TA.programTime();
  double Sd = TA.programStdDev();
  std::printf("\nTIME(START)    = %s (paper: 920)  %s\n",
              formatDouble(Time).c_str(), Time == 920.0 ? "MATCH" : "OFF");
  std::printf("STD_DEV(START) = %s (paper: 300)  %s\n\n",
              formatDouble(Sd).c_str(), Sd == 300.0 ? "MATCH" : "OFF");
  return Time == 920.0 && Sd == 300.0 ? 0 : 2;
}

void benchControlDependence(benchmark::State &State, const Workload *W) {
  std::unique_ptr<Program> Prog = parseWorkload(*W);
  struct Prepared {
    Cfg C;
    IntervalStructure IS;
    Ecfg E;
  };
  std::vector<Prepared> Items;
  for (const auto &F : Prog->functions()) {
    Prepared P;
    P.C = buildCfg(*F);
    elideGotoNodes(P.C);
    DiagnosticEngine Diags;
    P.IS = std::move(*IntervalStructure::compute(P.C, Diags));
    P.E = buildEcfg(P.C, P.IS);
    Items.push_back(std::move(P));
  }
  for (auto _ : State) {
    for (const Prepared &P : Items) {
      ControlDependence CD(P.E, P.IS);
      benchmark::DoNotOptimize(CD.conditions().size());
    }
  }
}
BENCHMARK_CAPTURE(benchControlDependence, LOOPS, &livermoreLoops());
BENCHMARK_CAPTURE(benchControlDependence, SIMPLE, &simpleKernel());

void benchTimeAndVariance(benchmark::State &State, const Workload *W) {
  std::unique_ptr<Program> Prog = parseWorkload(*W);
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  if (!Est)
    reportFatalError("analysis failed");
  RunResult R = Est->profiledRun(W->MaxSteps);
  if (!R.Ok)
    reportFatalError("run failed: " + R.Error);
  for (auto _ : State) {
    TimeAnalysis TA = Est->analyze();
    benchmark::DoNotOptimize(TA.programTime());
  }
}
BENCHMARK_CAPTURE(benchTimeAndVariance, LOOPS, &livermoreLoops());
BENCHMARK_CAPTURE(benchTimeAndVariance, SIMPLE, &simpleKernel());

} // namespace

int main(int Argc, char **Argv) {
  int Rc = printFigure3();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return Rc;
}
