//===--- bench/table1_profiling_overhead.cpp - The paper's Table 1 --------===//
//
// Regenerates Table 1: "Sequential execution times with and without
// profiling" for the LOOPS (24 Livermore kernels) and SIMPLE workloads,
// under the optimizing and non-optimizing cost models (the paper's
// "Compiler optimization ON / OFF" columns), for
//
//   original code / smart profiling / naive profiling.
//
// The authors measured CPU seconds on an IBM 3090 with VS Fortran; our
// substrate is the MiniIR interpreter, so the primary metric is simulated
// megacycles (the interpreter's clock), with host wall-clock seconds as a
// secondary column. The reproduction target is the *shape*: both
// profiling variants cost little compared to the optimization ON/OFF gap,
// and smart profiling is noticeably cheaper than naive profiling.
//
// After the table, google-benchmark timings of the instrumented
// interpreter runs are reported.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "profile/ProfileRuntime.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

using namespace ptran;

namespace {

struct WorkloadCase {
  const Workload *W;
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ProgramAnalysis> PA;
};

std::vector<WorkloadCase> &cases() {
  static std::vector<WorkloadCase> Cases = [] {
    std::vector<WorkloadCase> Out;
    for (const Workload *W : table1Workloads()) {
      WorkloadCase C;
      C.W = W;
      C.Prog = parseWorkload(*W);
      DiagnosticEngine Diags;
      C.PA = ProgramAnalysis::compute(*C.Prog, Diags);
      if (!C.PA)
        reportFatalError("analysis failed for " + W->Name + ":\n" +
                         Diags.str());
      Out.push_back(std::move(C));
    }
    return Out;
  }();
  return Cases;
}

struct Measurement {
  double Mcycles = 0.0;
  double HostSeconds = 0.0;
};

/// Runs \p C once under \p CM with the given profiling mode (or none).
Measurement measure(const WorkloadCase &C, const CostModel &CM,
                    const ProfileMode *Mode) {
  std::unique_ptr<ProfileRuntime> Rt;
  Interpreter Interp(*C.Prog, CM);
  ProgramPlan Plan;
  if (Mode) {
    Plan = ProgramPlan::build(*C.PA, *Mode);
    Rt = std::make_unique<ProfileRuntime>(*C.PA, Plan, CM);
    Interp.addObserver(Rt.get());
  }
  auto T0 = std::chrono::steady_clock::now();
  RunResult R = Interp.run(C.W->MaxSteps);
  auto T1 = std::chrono::steady_clock::now();
  if (!R.Ok)
    reportFatalError(C.W->Name + " failed: " + R.Error);

  Measurement M;
  M.Mcycles = (R.Cycles + (Rt ? Rt->overheadCycles() : 0.0)) / 1e6;
  M.HostSeconds = std::chrono::duration<double>(T1 - T0).count();
  return M;
}

void printTable1() {
  std::printf(
      "Table 1: sequential execution times with and without profiling\n"
      "(simulated megacycles on the interpreter substrate; the paper\n"
      "reports IBM 3090 CPU seconds — compare shapes, not magnitudes)\n\n");

  const ProfileMode Smart = ProfileMode::Smart;
  const ProfileMode Naive = ProfileMode::Naive;

  for (bool Optimized : {true, false}) {
    CostModel CM =
        Optimized ? CostModel::optimizing() : CostModel::nonOptimizing();
    std::printf("Compiler optimization %s\n", Optimized ? "ON" : "OFF");
    TablePrinter T({"Program", "Original code", "Smart profiling",
                    "Naive profiling", "smart ovh", "naive ovh"});
    for (const WorkloadCase &C : cases()) {
      Measurement Orig = measure(C, CM, nullptr);
      Measurement Sm = measure(C, CM, &Smart);
      Measurement Nv = measure(C, CM, &Naive);
      T.addRow({C.W->Name, formatDouble(Orig.Mcycles, 4),
                formatDouble(Sm.Mcycles, 4), formatDouble(Nv.Mcycles, 4),
                formatDouble(100.0 * (Sm.Mcycles / Orig.Mcycles - 1.0), 3) +
                    "%",
                formatDouble(100.0 * (Nv.Mcycles / Orig.Mcycles - 1.0), 3) +
                    "%"});
    }
    std::printf("%s\n", T.str().c_str());
  }

  // Host-time companion table (single-shot timings; the registered
  // google-benchmark runs below are the rigorous version).
  std::printf("Host wall-clock seconds (one run each, optimization ON "
              "cost model):\n");
  CostModel CM = CostModel::optimizing();
  TablePrinter T({"Program", "Original code", "Smart profiling",
                  "Naive profiling"});
  for (const WorkloadCase &C : cases()) {
    Measurement Orig = measure(C, CM, nullptr);
    Measurement Sm = measure(C, CM, &Smart);
    Measurement Nv = measure(C, CM, &Naive);
    T.addRow({C.W->Name, formatDouble(Orig.HostSeconds, 3),
              formatDouble(Sm.HostSeconds, 3),
              formatDouble(Nv.HostSeconds, 3)});
  }
  std::printf("%s\n", T.str().c_str());
}

void benchRun(benchmark::State &State, size_t CaseIdx, int ModeTag) {
  const WorkloadCase &C = cases()[CaseIdx];
  CostModel CM = CostModel::optimizing();
  std::unique_ptr<ProgramPlan> Plan;
  std::unique_ptr<ProfileRuntime> Rt;
  if (ModeTag >= 0) {
    Plan = std::make_unique<ProgramPlan>(ProgramPlan::build(
        *C.PA, static_cast<ProfileMode>(ModeTag)));
    Rt = std::make_unique<ProfileRuntime>(*C.PA, *Plan, CM);
  }
  for (auto _ : State) {
    Interpreter Interp(*C.Prog, CM);
    if (Rt)
      Interp.addObserver(Rt.get());
    RunResult R = Interp.run(C.W->MaxSteps);
    benchmark::DoNotOptimize(R.Cycles);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  printTable1();

  for (size_t I = 0; I < cases().size(); ++I) {
    const std::string Name = cases()[I].W->Name;
    benchmark::RegisterBenchmark((Name + "/original").c_str(), benchRun, I,
                                 -1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (Name + "/smart").c_str(), benchRun, I,
        static_cast<int>(ProfileMode::Smart))
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (Name + "/naive").c_str(), benchRun, I,
        static_cast<int>(ProfileMode::Naive))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
