//===--- bench/chunk_scheduling.cpp - Ablation A3: variance-guided chunks -===//
//
// Section 5's application: makespan of a self-scheduled parallel loop as
// a function of chunk size, for body-time distributions of equal mean but
// increasing variance. The Kruskal-Weiss choice driven by the estimated
// variance must track the empirical optimum: N/P for deterministic
// bodies, shrinking as variance grows.
//
//===----------------------------------------------------------------------===//

#include "sched/ChunkScheduling.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <functional>

using namespace ptran;

namespace {

constexpr uint64_t N = 4096;
constexpr unsigned P = 16;
constexpr double Overhead = 8.0;
constexpr double Mean = 10.0;

/// Iteration-time distributions with mean 10 and growing variance.
struct Dist {
  const char *Name;
  double Var;
  std::function<double(Rng &)> Draw;
};

const Dist Dists[] = {
    {"deterministic", 0.0, [](Rng &) { return Mean; }},
    {"uniform(5,15)", 100.0 / 12.0,
     [](Rng &R) { return R.uniformReal(5.0, 15.0); }},
    {"exponential-ish", 100.0,
     [](Rng &R) {
       double U = R.uniformReal();
       return -Mean * std::log(U <= 0 ? 1e-12 : U);
     }},
    {"bimodal 1:199 (5%)", 0.05 * 0.95 * 199.0 * 199.0,
     [](Rng &R) { return R.bernoulli(0.05) ? 199.0 : 0.05 / 0.95 * 10.0; }},
};

double averageMakespan(const Dist &D, uint64_t Chunk, unsigned Trials) {
  double Sum = 0.0;
  for (unsigned T = 0; T < Trials; ++T) {
    Rng R(1000 + T);
    Sum += simulateChunkedLoop(N, P, Chunk, Overhead,
                               [&] { return D.Draw(R); })
               .Makespan;
  }
  return Sum / Trials;
}

void printSweep() {
  std::printf("=== Ablation A3: makespan vs chunk size (N=%llu, P=%u, "
              "overhead=%s) ===\n\n",
              static_cast<unsigned long long>(N), P,
              formatDouble(Overhead).c_str());

  std::vector<uint64_t> Chunks = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<std::string> Header = {"distribution", "KW chunk"};
  for (uint64_t K : Chunks)
    Header.push_back("K=" + std::to_string(K));
  TablePrinter T(std::move(Header));

  for (const Dist &D : Dists) {
    uint64_t Kw = kruskalWeissChunkSize(N, P, Mean, D.Var, Overhead);
    std::vector<std::string> Row = {D.Name, std::to_string(Kw)};
    double Best = 1e300;
    uint64_t BestK = 0;
    std::vector<double> Values;
    for (uint64_t K : Chunks) {
      double M = averageMakespan(D, K, 12);
      Values.push_back(M);
      if (M < Best) {
        Best = M;
        BestK = K;
      }
    }
    for (size_t I = 0; I < Chunks.size(); ++I) {
      std::string Cell = formatDouble(Values[I], 5);
      if (Chunks[I] == BestK)
        Cell += "*";
      Row.push_back(std::move(Cell));
    }
    T.addRow(std::move(Row));
  }
  std::printf("%s\n", T.str().c_str());
  std::printf("* = empirical optimum among the sweep. Expected shape: the "
              "optimum (and the KW advice) moves from N/P = %llu toward "
              "small chunks as variance grows.\n\n",
              static_cast<unsigned long long>(N / P));

  // Efficiency of the KW choice vs the best fixed chunk.
  TablePrinter E({"distribution", "variance", "KW chunk", "KW makespan",
                  "best fixed", "KW / best"});
  for (const Dist &D : Dists) {
    uint64_t Kw = kruskalWeissChunkSize(N, P, Mean, D.Var, Overhead);
    double KwMs = averageMakespan(D, Kw, 12);
    double Best = 1e300;
    for (uint64_t K : {uint64_t(1), uint64_t(2), uint64_t(4), uint64_t(8),
                       uint64_t(16), uint64_t(32), uint64_t(64),
                       uint64_t(128), uint64_t(256)})
      Best = std::min(Best, averageMakespan(D, K, 12));
    E.addRow({D.Name, formatDouble(D.Var, 5), std::to_string(Kw),
              formatDouble(KwMs, 6), formatDouble(Best, 6),
              formatDouble(KwMs / Best, 4)});
  }
  std::printf("%s\n", E.str().c_str());
}

void benchSimulator(benchmark::State &State) {
  uint64_t Chunk = static_cast<uint64_t>(State.range(0));
  Rng R(42);
  for (auto _ : State) {
    ChunkSimResult S = simulateChunkedLoop(
        N, P, Chunk, Overhead, [&] { return R.uniformReal(5.0, 15.0); });
    benchmark::DoNotOptimize(S.Makespan);
  }
}
BENCHMARK(benchSimulator)->Arg(1)->Arg(16)->Arg(256);

} // namespace

int main(int Argc, char **Argv) {
  printSweep();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
