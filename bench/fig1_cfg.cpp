//===--- bench/fig1_cfg.cpp - Regenerate Figure 1 -------------------------===//
//
// Figure 1 of the paper shows a Fortran fragment and its statement-level
// control flow graph. This binary prints both (source listing, edge list
// and Graphviz), then benchmarks CFG construction (with GOTO elision) on
// the figure program and on the Table 1 workloads.
//
//===----------------------------------------------------------------------===//

#include "Figure1.h"

#include "cfg/Cfg.h"
#include "ir/Printer.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ptran;
using namespace ptran::bench;

namespace {

void printFigure1() {
  std::unique_ptr<Program> Prog = makeFigure1Program();
  const Function *Main = Prog->entry();
  std::printf("=== Figure 1: original control flow graph, CFG ===\n\n");
  std::printf("%s\n", printFunction(*Main).c_str());

  Cfg C = buildCfg(*Main);
  unsigned Elided = elideGotoNodes(C);
  std::printf("statement-level CFG (%u GOTO nodes folded into edges):\n",
              Elided);
  const Digraph &G = C.graph();
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.isLive(E))
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    std::printf("  %-32s --%s--> %s\n", C.nodeName(Ed.From).c_str(),
                cfgLabelName(static_cast<CfgLabel>(Ed.Label)).c_str(),
                C.nodeName(Ed.To).c_str());
  }
  for (const Cfg::ExitBranch &B : C.exitBranches())
    std::printf("  %-32s --%s--> (procedure exit)\n",
                C.nodeName(B.Node).c_str(), cfgLabelName(B.Label).c_str());
  std::printf("\nGraphviz:\n%s\n", C.dot("Figure 1 CFG").c_str());
}

void benchBuildCfgFigure1(benchmark::State &State) {
  std::unique_ptr<Program> Prog = makeFigure1Program();
  const Function *Main = Prog->entry();
  for (auto _ : State) {
    Cfg C = buildCfg(*Main);
    elideGotoNodes(C);
    benchmark::DoNotOptimize(C.numNodes());
  }
}
BENCHMARK(benchBuildCfgFigure1);

void benchBuildCfgWorkload(benchmark::State &State, const Workload *W) {
  std::unique_ptr<Program> Prog = parseWorkload(*W);
  unsigned Nodes = 0;
  for (auto _ : State) {
    for (const auto &F : Prog->functions()) {
      Cfg C = buildCfg(*F);
      elideGotoNodes(C);
      Nodes += C.numNodes();
      benchmark::DoNotOptimize(Nodes);
    }
  }
  State.counters["nodes"] = Nodes / static_cast<double>(State.iterations());
}
BENCHMARK_CAPTURE(benchBuildCfgWorkload, LOOPS, &livermoreLoops());
BENCHMARK_CAPTURE(benchBuildCfgWorkload, SIMPLE, &simpleKernel());

void benchParseWorkload(benchmark::State &State, const Workload *W) {
  for (auto _ : State) {
    std::unique_ptr<Program> Prog = parseWorkload(*W);
    benchmark::DoNotOptimize(Prog->functions().size());
  }
}
BENCHMARK_CAPTURE(benchParseWorkload, LOOPS, &livermoreLoops());

} // namespace

int main(int Argc, char **Argv) {
  printFigure1();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
