//===--- bench/analysis_scaling.cpp - Ablation A2: pass throughput --------===//
//
// The paper claims the whole estimation runs in "a single, linear time,
// bottom-up traversal of the forward control dependence graph". This
// binary measures how every pass scales with CFG size on generated loop
// nests: CFG build, interval analysis, ECFG, control dependence, counter
// planning and the TIME/VAR computation itself.
//
//===----------------------------------------------------------------------===//

#include "support/FatalError.h"
#include "cost/TimeAnalysis.h"
#include "freq/Frequencies.h"
#include "profile/CounterPlan.h"
#include "profile/Recovery.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ptran;

namespace {

struct Prepared {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ProgramAnalysis> PA;
  unsigned Nodes = 0;
};

Prepared prepare(unsigned Units) {
  Prepared P;
  P.Prog = makeScalingProgram(Units, /*Depth=*/2);
  DiagnosticEngine Diags;
  P.PA = ProgramAnalysis::compute(*P.Prog, Diags);
  if (!P.PA)
    reportFatalError("analysis failed for scaling program");
  for (const auto &F : P.Prog->functions())
    P.Nodes += P.PA->of(*F).ecfg().cfg().numNodes();
  return P;
}

void benchFullPipeline(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  std::unique_ptr<Program> Prog = makeScalingProgram(Units, 2);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto PA = ProgramAnalysis::compute(*Prog, Diags);
    benchmark::DoNotOptimize(PA.get());
  }
  Prepared P = prepare(Units);
  State.counters["ecfg_nodes"] = P.Nodes;
  State.SetComplexityN(P.Nodes);
}
BENCHMARK(benchFullPipeline)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void benchTimeAnalysisOnly(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  Prepared P = prepare(Units);

  // Synthetic frequencies: every condition taken with probability 0.5,
  // loop frequencies 3 (trip 2 + 1); enough to drive the traversal.
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : P.Prog->functions()) {
    const FunctionAnalysis &FA = P.PA->of(*F);
    FrequencyTotals Totals;
    Totals.Ok = true;
    for (const ControlCondition &C : FA.cd().conditions()) {
      double V = 1.0;
      if (C.Label == CfgLabel::Z)
        V = 0.0;
      else if (FA.ecfg().headerOf(C.Node) != InvalidNode)
        V = 3.0;
      Totals.Cond[C] = V;
    }
    Totals.Cond[{FA.ecfg().start(), CfgLabel::U}] = 1.0;
    Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);
    Freqs[F.get()] = computeFrequencies(FA, Totals);
  }

  CostModel CM = CostModel::optimizing();
  for (auto _ : State) {
    TimeAnalysis TA = TimeAnalysis::run(*P.PA, Freqs, CM);
    benchmark::DoNotOptimize(TA.programTime());
  }
  State.counters["ecfg_nodes"] = P.Nodes;
  State.SetComplexityN(P.Nodes);
}
BENCHMARK(benchTimeAnalysisOnly)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void benchPlanAndSymbolicRecovery(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  Prepared P = prepare(Units);
  for (auto _ : State) {
    ProgramPlan Plan = ProgramPlan::build(*P.PA, ProfileMode::Smart);
    benchmark::DoNotOptimize(Plan.totalCounters());
  }
  State.counters["ecfg_nodes"] = P.Nodes;
}
BENCHMARK(benchPlanAndSymbolicRecovery)->RangeMultiplier(4)->Range(4, 256);

void printStaticScalingTable() {
  std::printf("=== Ablation A2: representation sizes vs program size ===\n");
  TablePrinter T({"units", "stmts", "ecfg nodes", "fcdg edges",
                  "conditions", "smart counters"});
  for (unsigned Units : {4u, 16u, 64u, 256u}) {
    Prepared P = prepare(Units);
    const Function *Main = P.Prog->entry();
    const FunctionAnalysis &FA = P.PA->of(*Main);
    ProgramPlan Plan = ProgramPlan::build(*P.PA, ProfileMode::Smart);
    T.addRow({std::to_string(Units), std::to_string(Main->numStmts()),
              std::to_string(FA.ecfg().cfg().numNodes()),
              std::to_string(FA.cd().fcdg().numEdges()),
              std::to_string(FA.cd().conditions().size()),
              std::to_string(Plan.totalCounters())});
  }
  std::printf("%s\n", T.str().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  printStaticScalingTable();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
