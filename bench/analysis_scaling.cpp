//===--- bench/analysis_scaling.cpp - Ablation A2: pass throughput --------===//
//
// The paper claims the whole estimation runs in "a single, linear time,
// bottom-up traversal of the forward control dependence graph". This
// binary measures how every pass scales with CFG size on generated loop
// nests: CFG build, interval analysis, ECFG, control dependence, counter
// planning and the TIME/VAR computation itself — plus, on the
// many-function synthetic workload, how the parallel drivers scale with
// the worker count (1/2/4/8 jobs) while producing byte-identical
// estimates.
//
//===----------------------------------------------------------------------===//

#include "core/Analysis.h"
#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "repl/Replication.h"
#include "repl/Standby.h"
#include "serve/Server.h"
#include "serve/Wire.h"
#include "session/EstimationSession.h"
#include "cost/TimeAnalysis.h"
#include "stream/DeltaStream.h"
#include "support/FatalError.h"
#include "freq/Frequencies.h"
#include "profile/CounterPlan.h"
#include "profile/Recovery.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptran;

namespace {

struct Prepared {
  std::unique_ptr<Program> Prog;
  std::unique_ptr<ProgramAnalysis> PA;
  unsigned Nodes = 0;
};

Prepared prepare(unsigned Units) {
  Prepared P;
  P.Prog = makeScalingProgram(Units, /*Depth=*/2);
  DiagnosticEngine Diags;
  P.PA = ProgramAnalysis::compute(*P.Prog, Diags);
  if (!P.PA)
    reportFatalError("analysis failed for scaling program");
  for (const auto &F : P.Prog->functions())
    P.Nodes += P.PA->of(*F).ecfg().cfg().numNodes();
  return P;
}

void benchFullPipeline(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  std::unique_ptr<Program> Prog = makeScalingProgram(Units, 2);
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto PA = ProgramAnalysis::compute(*Prog, Diags);
    benchmark::DoNotOptimize(PA.get());
  }
  Prepared P = prepare(Units);
  State.counters["ecfg_nodes"] = P.Nodes;
  State.SetComplexityN(P.Nodes);
}
BENCHMARK(benchFullPipeline)->RangeMultiplier(4)->Range(4, 1024)->Complexity();

void benchTimeAnalysisOnly(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  Prepared P = prepare(Units);

  // Synthetic frequencies: every condition taken with probability 0.5,
  // loop frequencies 3 (trip 2 + 1); enough to drive the traversal.
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : P.Prog->functions()) {
    const FunctionAnalysis &FA = P.PA->of(*F);
    FrequencyTotals Totals;
    Totals.Ok = true;
    for (const ControlCondition &C : FA.cd().conditions()) {
      double V = 1.0;
      if (C.Label == CfgLabel::Z)
        V = 0.0;
      else if (FA.ecfg().headerOf(C.Node) != InvalidNode)
        V = 3.0;
      Totals.Cond[C] = V;
    }
    Totals.Cond[{FA.ecfg().start(), CfgLabel::U}] = 1.0;
    Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);
    Freqs[F.get()] = computeFrequencies(FA, Totals);
  }

  CostModel CM = CostModel::optimizing();
  for (auto _ : State) {
    TimeAnalysis TA = TimeAnalysis::run(*P.PA, Freqs, CM);
    benchmark::DoNotOptimize(TA.programTime());
  }
  State.counters["ecfg_nodes"] = P.Nodes;
  State.SetComplexityN(P.Nodes);
}
BENCHMARK(benchTimeAnalysisOnly)
    ->RangeMultiplier(4)
    ->Range(4, 1024)
    ->Complexity();

void benchPlanAndSymbolicRecovery(benchmark::State &State) {
  unsigned Units = static_cast<unsigned>(State.range(0));
  Prepared P = prepare(Units);
  for (auto _ : State) {
    ProgramPlan Plan = ProgramPlan::build(*P.PA, ProfileMode::Smart);
    benchmark::DoNotOptimize(Plan.totalCounters());
  }
  State.counters["ecfg_nodes"] = P.Nodes;
}
BENCHMARK(benchPlanAndSymbolicRecovery)->RangeMultiplier(4)->Range(4, 256);

// Synthetic frequencies for a prepared program: every condition taken with
// probability 0.5, loop frequencies 3; enough to drive the traversal.
std::map<const Function *, Frequencies>
syntheticFrequencies(const Program &Prog, const ProgramAnalysis &PA) {
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog.functions()) {
    const FunctionAnalysis &FA = PA.of(*F);
    FrequencyTotals Totals;
    Totals.Ok = true;
    for (const ControlCondition &C : FA.cd().conditions()) {
      double V = 1.0;
      if (C.Label == CfgLabel::Z)
        V = 0.0;
      else if (FA.ecfg().headerOf(C.Node) != InvalidNode)
        V = 3.0;
      Totals.Cond[C] = V;
    }
    Totals.Cond[{FA.ecfg().start(), CfgLabel::U}] = 1.0;
    Totals.Node = nodeTotalsFromConds(FA, Totals.Cond);
    Freqs[F.get()] = computeFrequencies(FA, Totals);
  }
  return Freqs;
}

// Fan the per-function pipeline out across State.range(1) workers on a
// many-function program of State.range(0) procedures.
void benchParallelPipeline(benchmark::State &State) {
  unsigned Funcs = static_cast<unsigned>(State.range(0));
  unsigned Jobs = static_cast<unsigned>(State.range(1));
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  AnalysisOptions Opts;
  Opts.Exec.Jobs = Jobs;
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto PA = ProgramAnalysis::compute(*Prog, Diags, Opts);
    benchmark::DoNotOptimize(PA.get());
  }
  State.counters["jobs"] = Jobs;
}
BENCHMARK(benchParallelPipeline)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// SCC-wave interprocedural pass across State.range(1) workers.
void benchParallelTimeAnalysis(benchmark::State &State) {
  unsigned Funcs = static_cast<unsigned>(State.range(0));
  unsigned Jobs = static_cast<unsigned>(State.range(1));
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  if (!PA || !PA->allOk())
    reportFatalError("analysis failed for many-function program");
  std::map<const Function *, Frequencies> Freqs =
      syntheticFrequencies(*Prog, *PA);
  CostModel CM = CostModel::optimizing();
  TimeAnalysisOptions Opts;
  Opts.Exec.Jobs = Jobs;
  for (auto _ : State) {
    TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, Opts);
    benchmark::DoNotOptimize(TA.programTime());
  }
  State.counters["jobs"] = Jobs;
}
BENCHMARK(benchParallelTimeAnalysis)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Wall-clock speedup table for the full parallel pipeline (analysis +
// TIME/VAR) on the many-function workload, with a bit-for-bit equality
// check of every function's TIME/VAR against the serial run.
void printParallelSpeedupTable() {
  constexpr unsigned Funcs = 255;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  CostModel CM = CostModel::optimizing();

  auto RunOnce = [&](unsigned Jobs) {
    DiagnosticEngine Diags;
    AnalysisOptions AOpts;
    AOpts.Exec.Jobs = Jobs;
    auto Start = std::chrono::steady_clock::now();
    auto PA = ProgramAnalysis::compute(*Prog, Diags, AOpts);
    if (!PA || !PA->allOk())
      reportFatalError("analysis failed for many-function program");
    std::map<const Function *, Frequencies> Freqs =
        syntheticFrequencies(*Prog, *PA);
    TimeAnalysisOptions TAOpts;
    TAOpts.Exec.Jobs = Jobs;
    TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, TAOpts);
    auto End = std::chrono::steady_clock::now();
    std::vector<double> Estimates;
    for (const auto &F : Prog->functions()) {
      Estimates.push_back(TA.functionTime(*F));
      Estimates.push_back(TA.functionVariance(*F));
    }
    return std::pair(std::chrono::duration<double>(End - Start).count(),
                     std::move(Estimates));
  };

  // Warm up allocators etc., then take the best of 3 per job count.
  RunOnce(1);
  std::printf("=== Parallel pipeline speedup (%u functions, depth 3) ===\n",
              Funcs);
  TablePrinter T({"jobs", "wall [ms]", "speedup vs 1", "output"});
  std::vector<double> Reference;
  double Serial = 0.0;
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    double Best = 1e100;
    std::vector<double> Estimates;
    for (int Rep = 0; Rep < 3; ++Rep) {
      auto [Secs, Est] = RunOnce(Jobs);
      Best = std::min(Best, Secs);
      Estimates = std::move(Est);
    }
    if (Jobs == 1) {
      Serial = Best;
      Reference = Estimates;
    }
    bool Identical =
        Estimates.size() == Reference.size() &&
        std::memcmp(Estimates.data(), Reference.data(),
                    Estimates.size() * sizeof(double)) == 0;
    char Wall[32], Speedup[32];
    std::snprintf(Wall, sizeof(Wall), "%.2f", Best * 1e3);
    std::snprintf(Speedup, sizeof(Speedup), "%.2fx", Serial / Best);
    T.addRow({std::to_string(Jobs), Wall, Speedup,
              Identical ? "identical" : "DIFFERS"});
  }
  std::printf("%s\n", T.str().c_str());
}

// TIME/VAR kernel comparison: the CSR sweep (dense arena arrays, zero
// hot-path allocation) against the node-object reference (Digraph walks,
// map-backed frequency lookups) on the interprocedural SCC-wave pass,
// per job count, with a bit-for-bit memcmp of every function's TIME/VAR.
void printCsrKernelTable() {
  constexpr unsigned Funcs = 511;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 6);
  CostModel CM = CostModel::optimizing();
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  if (!PA || !PA->allOk())
    reportFatalError("analysis failed for many-function program");
  std::map<const Function *, Frequencies> Freqs =
      syntheticFrequencies(*Prog, *PA);

  auto RunOnce = [&](TimeKernel Kernel, unsigned Jobs,
                     std::vector<double> &Estimates) {
    TimeAnalysisOptions Opts;
    Opts.Kernel = Kernel;
    Opts.Exec.Jobs = Jobs;
    auto Start = std::chrono::steady_clock::now();
    TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, Opts);
    auto End = std::chrono::steady_clock::now();
    Estimates.clear();
    for (const auto &F : Prog->functions()) {
      Estimates.push_back(TA.functionTime(*F));
      Estimates.push_back(TA.functionVariance(*F));
    }
    return std::chrono::duration<double>(End - Start).count();
  };

  std::printf("=== TIME/VAR kernels on the SCC-wave pass (%u functions, "
              "depth 6) ===\n",
              Funcs);
  TablePrinter T({"jobs", "csr [ms]", "node-objects [ms]", "csr speedup",
                  "output"});
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    double BestCsr = 1e100, BestRef = 1e100;
    std::vector<double> CsrEst, RefEst;
    for (int Rep = 0; Rep < 5; ++Rep) {
      BestCsr = std::min(BestCsr, RunOnce(TimeKernel::Csr, Jobs, CsrEst));
      BestRef =
          std::min(BestRef, RunOnce(TimeKernel::NodeObjects, Jobs, RefEst));
    }
    bool Identical = CsrEst.size() == RefEst.size() &&
                     std::memcmp(CsrEst.data(), RefEst.data(),
                                 CsrEst.size() * sizeof(double)) == 0;
    char CsrMs[32], RefMs[32], Ratio[32];
    std::snprintf(CsrMs, sizeof(CsrMs), "%.3f", BestCsr * 1e3);
    std::snprintf(RefMs, sizeof(RefMs), "%.3f", BestRef * 1e3);
    std::snprintf(Ratio, sizeof(Ratio), "%.2fx", BestRef / BestCsr);
    T.addRow({std::to_string(Jobs), CsrMs, RefMs, Ratio,
              Identical ? "identical" : "DIFFERS"});
  }
  std::printf("%s\n", T.str().c_str());
}

// Incremental re-estimation through an EstimationSession: dirty one leaf
// of the many-function call tree, re-query, and compare against a cold
// TimeAnalysis over the same inputs — wall clock, evaluation counts and a
// bit-for-bit memcmp of every function's node estimates.
void printIncrementalReestimationTable() {
  constexpr unsigned Funcs = 255;
  constexpr unsigned Jobs = 4;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  CostModel CM = CostModel::optimizing();
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Prog, CM,
                                     EstimatorOptions(Diags).jobs(Jobs));
  if (!S)
    reportFatalError("session creation failed:\n" + Diags.str());
  RunResult R = S->profiledRun();
  if (!R.Ok)
    reportFatalError("profiled run failed: " + R.Error);

  auto Start = std::chrono::steady_clock::now();
  EstimateResult First = S->estimateEntry();
  auto End = std::chrono::steady_clock::now();
  if (!First.Ok)
    reportFatalError("cold estimate failed: " + First.Error);
  double ColdQuery = std::chrono::duration<double>(End - Start).count();
  uint64_t ColdEvals = S->lastEvaluations();

  // Dirty one leaf's accumulated totals per repetition; the dirty closure
  // is the leaf plus its chain of callers up the binary call tree.
  const Function *Leaf = Prog->findFunction("f" + std::to_string(Funcs - 1));
  if (!Leaf)
    reportFatalError("many-function program is missing its last leaf");
  const FunctionAnalysis &LeafFA = S->estimator().analysis().of(*Leaf);
  double Injected = 0.0;
  double BestInc = 1e100;
  uint64_t IncEvals = 0;
  const TimeAnalysis *IncAnalysis = nullptr;
  for (int Rep = 0; Rep < 3; ++Rep) {
    FrequencyTotals Delta;
    Delta.Cond[{LeafFA.ecfg().start(), CfgLabel::U}] = 1.0 + Rep;
    Injected += 1.0 + Rep;
    S->accumulateTotals(*Leaf, Delta);
    Start = std::chrono::steady_clock::now();
    EstimateResult Inc = S->estimateEntry();
    End = std::chrono::steady_clock::now();
    if (!Inc.Ok)
      reportFatalError("incremental estimate failed: " + Inc.Error);
    BestInc = std::min(BestInc,
                       std::chrono::duration<double>(End - Start).count());
    IncEvals = S->lastEvaluations();
    IncAnalysis = Inc.Analysis;
  }

  // Cold recomputation over the session's exact accumulated inputs,
  // timing everything a non-incremental client redoes per query: counter
  // recovery, frequency computation and the full TIME/VAR pass.
  const Estimator &Est = S->estimator();
  TimeAnalysisOptions TAOpts;
  TAOpts.Exec.Jobs = Jobs;
  double BestCold = 1e100;
  TimeAnalysis Cold;
  for (int Rep = 0; Rep < 3; ++Rep) {
    Start = std::chrono::steady_clock::now();
    std::map<const Function *, Frequencies> Freqs;
    for (const auto &F : Prog->functions()) {
      FrequencyTotals Totals = Est.runtime().recover(*F);
      if (!Totals.Ok)
        reportFatalError("recovery failed for " + F->name());
      if (F.get() == Leaf) {
        Totals.Cond[{LeafFA.ecfg().start(), CfgLabel::U}] += Injected;
        Totals.Node =
            nodeTotalsFromConds(Est.analysis().of(*F), Totals.Cond);
      }
      Freqs[F.get()] = computeFrequencies(Est.analysis().of(*F), Totals);
    }
    Cold = TimeAnalysis::run(Est.analysis(), Freqs, CM, TAOpts);
    End = std::chrono::steady_clock::now();
    BestCold = std::min(BestCold,
                        std::chrono::duration<double>(End - Start).count());
  }

  bool Identical = true;
  for (const auto &F : Prog->functions()) {
    const std::vector<NodeEstimates> &A = IncAnalysis->estimatesOf(*F);
    const std::vector<NodeEstimates> &B = Cold.estimatesOf(*F);
    if (A.size() != B.size() ||
        std::memcmp(A.data(), B.data(), A.size() * sizeof(NodeEstimates)) !=
            0) {
      Identical = false;
      break;
    }
  }

  std::printf("=== Incremental re-estimation (%u functions, 1 leaf dirty) "
              "===\n",
              Funcs);
  TablePrinter T({"query", "wall [ms]", "evaluations", "output"});
  char Wall[32];
  std::snprintf(Wall, sizeof(Wall), "%.3f", ColdQuery * 1e3);
  T.addRow({"first (cold)", Wall,
            std::to_string(static_cast<unsigned long long>(ColdEvals)),
            "reference"});
  std::snprintf(Wall, sizeof(Wall), "%.3f", BestCold * 1e3);
  T.addRow({"full recompute", Wall, std::to_string(Funcs), "reference"});
  std::snprintf(Wall, sizeof(Wall), "%.3f", BestInc * 1e3);
  T.addRow({"incremental", Wall,
            std::to_string(static_cast<unsigned long long>(IncEvals)),
            Identical ? "identical" : "DIFFERS"});
  std::printf("%s", T.str().c_str());
  std::printf("incremental speedup vs full recompute: %.2fx (%llu of %u "
              "functions re-evaluated)\n\n",
              BestCold / BestInc,
              static_cast<unsigned long long>(IncEvals), Funcs);
}

// Observability cost: the same analysis + TIME/VAR pipeline with no
// registry (the default, every TimingSpan a single branch), and with a
// live registry recording every span and counter. The disabled column is
// the one the ±2%-regression acceptance gate watches.
void printObservabilityOverheadTable() {
  constexpr unsigned Funcs = 255;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  CostModel CM = CostModel::optimizing();

  auto RunOnce = [&](ObsRegistry *Obs) {
    DiagnosticEngine Diags;
    AnalysisOptions AOpts;
    AOpts.Obs.Registry = Obs;
    auto Start = std::chrono::steady_clock::now();
    auto PA = ProgramAnalysis::compute(*Prog, Diags, AOpts);
    if (!PA || !PA->allOk())
      reportFatalError("analysis failed for many-function program");
    std::map<const Function *, Frequencies> Freqs =
        syntheticFrequencies(*Prog, *PA);
    TimeAnalysisOptions TAOpts;
    TAOpts.Obs.Registry = Obs;
    TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, TAOpts);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(TA.programTime());
    return std::chrono::duration<double>(End - Start).count();
  };

  RunOnce(nullptr); // Warm up.
  double BestOff = 1e100, BestOn = 1e100;
  size_t SpanCount = 0;
  for (int Rep = 0; Rep < 5; ++Rep) {
    BestOff = std::min(BestOff, RunOnce(nullptr));
    ObsRegistry Reg;
    BestOn = std::min(BestOn, RunOnce(&Reg));
    SpanCount = Reg.spans().size();
  }

  std::printf("=== Observability overhead (%u functions, serial) ===\n",
              Funcs);
  TablePrinter T({"observability", "wall [ms]", "vs disabled", "spans"});
  char Wall[32], Ratio[32];
  std::snprintf(Wall, sizeof(Wall), "%.2f", BestOff * 1e3);
  T.addRow({"disabled", Wall, "1.00x", "0"});
  std::snprintf(Wall, sizeof(Wall), "%.2f", BestOn * 1e3);
  std::snprintf(Ratio, sizeof(Ratio), "%.2fx", BestOn / BestOff);
  T.addRow({"enabled", Wall, Ratio, std::to_string(SpanCount)});
  std::printf("%s\n", T.str().c_str());
}

// Cancellation-poll cost: the same analysis + TIME/VAR pipeline with no
// token (the default, every checkpoint compiled out behind a null check)
// and with an armed far-future deadline token, so every checkpoint does
// its relaxed load plus the occasional clock read. The with-token column
// must stay within noise (<2%) of the without-token one.
void printCancellationOverheadTable() {
  constexpr unsigned Funcs = 255;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  CostModel CM = CostModel::optimizing();

  auto RunOnce = [&](CancelToken *Token) {
    DiagnosticEngine Diags;
    AnalysisOptions AOpts;
    AOpts.Cancel = Token;
    auto Start = std::chrono::steady_clock::now();
    auto PA = ProgramAnalysis::compute(*Prog, Diags, AOpts);
    if (!PA || !PA->allOk())
      reportFatalError("analysis failed for many-function program");
    std::map<const Function *, Frequencies> Freqs =
        syntheticFrequencies(*Prog, *PA);
    TimeAnalysisOptions TAOpts;
    TAOpts.Cancel = Token;
    TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, TAOpts);
    auto End = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(TA.programTime());
    return std::chrono::duration<double>(End - Start).count();
  };

  RunOnce(nullptr); // Warm up.
  double BestOff = 1e100, BestOn = 1e100;
  uint64_t Polls = 0;
  for (int Rep = 0; Rep < 5; ++Rep) {
    BestOff = std::min(BestOff, RunOnce(nullptr));
    CancelToken Token;
    Token.setDeadlineIn(std::chrono::hours(24));
    BestOn = std::min(BestOn, RunOnce(&Token));
    Polls = Token.polls();
  }

  std::printf("=== Cancellation-poll overhead (%u functions, serial) ===\n",
              Funcs);
  TablePrinter T({"token", "wall [ms]", "vs none", "polls"});
  char Wall[32], Ratio[32];
  std::snprintf(Wall, sizeof(Wall), "%.2f", BestOff * 1e3);
  T.addRow({"none", Wall, "1.00x", "0"});
  std::snprintf(Wall, sizeof(Wall), "%.2f", BestOn * 1e3);
  std::snprintf(Ratio, sizeof(Ratio), "%.2fx", BestOn / BestOff);
  T.addRow({"armed deadline", Wall, Ratio,
            std::to_string(static_cast<unsigned long long>(Polls))});
  std::printf("%s\n", T.str().c_str());
}

// Fault-tolerant ingestion cost: capture/save, load (header + per-section
// CRC validation), saturating merge, and full session ingest (recovery +
// Σ-identity checks per section) — once on a clean profile and once with
// ~10% of the sections corrupted, so the quarantine path's price is
// visible next to the happy path.
void printProfileIngestionTable() {
  constexpr unsigned Funcs = 127;
  constexpr int Reps = 3;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs + 1, 2);
  CostModel CM = CostModel::optimizing();
  DiagnosticEngine Diags;
  auto Producer = EstimationSession::create(
      *Prog, CM,
      EstimatorOptions(Diags).loopVariance(LoopVarianceMode::Profiled));
  if (!Producer || !Producer->profiledRun().Ok)
    reportFatalError("profiled run failed for many-function program");
  ProfileFile Clean = Producer->captureProfile();
  const double SizeKb =
      static_cast<double>(Clean.serialize().size()) / 1024.0;
  const std::string Path = "analysis_scaling_profile.ptpf";

  // ~10% of the sections present exactly as a failed CRC would leave
  // them: invalid, empty, with the trusted directory still naming them.
  ProfileFile Corrupt = Clean;
  unsigned Corrupted = 0;
  for (size_t I = 0; I < Corrupt.sectionsMutable().size(); I += 10) {
    FunctionSection &S = Corrupt.sectionsMutable()[I];
    S.Valid = false;
    S.Issue = "section checksum mismatch (corrupt data)";
    S.Counters.clear();
    S.Loops.clear();
    ++Corrupted;
  }

  auto Best = [&](auto &&Body) {
    double BestSec = 1e100;
    for (int R = 0; R < Reps; ++R) {
      auto Start = std::chrono::steady_clock::now();
      Body();
      auto End = std::chrono::steady_clock::now();
      BestSec = std::min(BestSec,
                         std::chrono::duration<double>(End - Start).count());
    }
    return BestSec;
  };

  double SaveSec = Best([&] {
    if (!Clean.saveToFile(Path, nullptr))
      reportFatalError("profile save failed");
  });
  double LoadSec = Best([&] {
    if (!ProfileFile::loadFromFile(Path, nullptr))
      reportFatalError("profile load failed");
  });
  double MergeSec = Best([&] {
    ProfileFile A = Clean;
    if (!A.merge(Clean, nullptr))
      reportFatalError("profile merge failed");
    benchmark::DoNotOptimize(A.runs());
  });

  size_t LastQuarantined = 0;
  auto IngestSec = [&](const ProfileFile &PF, size_t &QuarantinedOut) {
    double BestSec = 1e100;
    for (int R = 0; R < Reps; ++R) {
      DiagnosticEngine D;
      auto Consumer = EstimationSession::create(
          *Prog, CM,
          EstimatorOptions(D)
              .loopVariance(LoopVarianceMode::Profiled)
              .onBadProfile(BadProfilePolicy::Quarantine));
      if (!Consumer)
        reportFatalError("session creation failed");
      auto Start = std::chrono::steady_clock::now();
      ProfileIngestReport Report = Consumer->ingestProfile(PF);
      auto End = std::chrono::steady_clock::now();
      if (!Report.Ok)
        reportFatalError("profile ingest failed: " + Report.Error);
      QuarantinedOut = Report.Quarantined.size();
      BestSec = std::min(BestSec,
                         std::chrono::duration<double>(End - Start).count());
    }
    return BestSec;
  };
  size_t CleanQuarantined = 0;
  double IngestCleanSec = IngestSec(Clean, CleanQuarantined);
  double IngestBadSec = IngestSec(Corrupt, LastQuarantined);
  std::remove(Path.c_str());

  const double Sections = static_cast<double>(Clean.sections().size());
  auto Rate = [&](double Sec) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", Sections / Sec);
    return std::string(Buf);
  };
  std::printf("=== Profile ingestion (%zu sections, %.1f KiB on disk) ===\n",
              Clean.sections().size(), SizeKb);
  TablePrinter T({"stage", "wall [ms]", "sections/s", "quarantined"});
  char Wall[32];
  std::snprintf(Wall, sizeof(Wall), "%.3f", SaveSec * 1e3);
  T.addRow({"serialize + save", Wall, Rate(SaveSec), "-"});
  std::snprintf(Wall, sizeof(Wall), "%.3f", LoadSec * 1e3);
  T.addRow({"load + checksum", Wall, Rate(LoadSec), "-"});
  std::snprintf(Wall, sizeof(Wall), "%.3f", MergeSec * 1e3);
  T.addRow({"saturating merge", Wall, Rate(MergeSec), "-"});
  std::snprintf(Wall, sizeof(Wall), "%.3f", IngestCleanSec * 1e3);
  T.addRow({"ingest (clean)", Wall, Rate(IngestCleanSec),
            std::to_string(CleanQuarantined)});
  std::snprintf(Wall, sizeof(Wall), "%.3f", IngestBadSec * 1e3);
  T.addRow({"ingest (10% corrupt)", Wall, Rate(IngestBadSec),
            std::to_string(LastQuarantined)});
  std::printf("%s\n", T.str().c_str());
}

// Durable-state costs: what one write-ahead journal append costs under
// each fsync policy, and how long recovery (StateStore::open + ServeCore
// replay) takes as the journal grows — before and after a checkpoint
// compacts it into a snapshot.
void printDurableStateTable() {
  char Template[] = "/tmp/ptran-bench-durable-XXXXXX";
  if (!::mkdtemp(Template)) {
    std::printf("=== Durable state: skipped (no scratch dir) ===\n\n");
    return;
  }
  std::string Dir = Template;
  auto CleanDir = [&Dir] {
    std::string Cmd = "rm -rf " + Dir;
    if (std::system(Cmd.c_str()) != 0) {
    }
  };

  // A representative epoch-fold record (one function, eight cells).
  durable::DurableRecord Fold;
  Fold.Type = durable::RecordType::EpochFold;
  Fold.Session = "bench";
  durable::FoldEntry FE;
  FE.Function = "leaf";
  for (uint32_t C = 0; C < 8; ++C)
    FE.Conds.push_back({C, static_cast<uint8_t>(C & 1), 16.0});
  Fold.Folds.push_back(FE);

  std::printf("=== Durable journal: append cost per fsync policy ===\n");
  TablePrinter T({"fsync", "appends", "wall [ms]", "us/append"});
  for (auto [Name, Policy] :
       {std::pair("never", durable::FsyncPolicy::Never),
        std::pair("batch", durable::FsyncPolicy::Batch),
        std::pair("always", durable::FsyncPolicy::Always)}) {
    constexpr unsigned Appends = 1024;
    std::string Path = Dir + "/append-bench.ptwj";
    ::unlink(Path.c_str());
    std::string Error;
    durable::DeltaJournal::OpenReport Report;
    auto J = durable::DeltaJournal::open(Path, Policy, Report, nullptr,
                                         Error);
    if (!J)
      reportFatalError("journal open failed: " + Error);
    auto Start = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Appends; ++I)
      if (J->append(Fold, Error) == 0)
        reportFatalError("journal append failed: " + Error);
    auto End = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(End - Start).count();
    char Wall[32], Per[32];
    std::snprintf(Wall, sizeof(Wall), "%.2f", Secs * 1e3);
    std::snprintf(Per, sizeof(Per), "%.2f", Secs / Appends * 1e6);
    T.addRow({Name, std::to_string(Appends), Wall, Per});
  }
  std::printf("%s\n", T.str().c_str());

  // Recovery wall clock vs journal length, and what a checkpoint's
  // snapshot compaction buys on the next boot.
  const char *Source = "      program main\n"
                       "      integer i\n"
                       "      do 10 i = 1, 8\n"
                       "        call leaf(i)\n"
                       " 10   continue\n"
                       "      end\n"
                       "      subroutine leaf(k)\n"
                       "      integer k\n"
                       "      k = k + 1\n"
                       "      end\n";
  std::printf("=== Durable recovery: journal replay vs snapshot boot ===\n");
  TablePrinter R({"fold records", "journal [KB]", "replay boot [ms]",
                  "snapshot boot [ms]"});
  for (unsigned Records : {256u, 1024u, 4096u}) {
    std::string StateDir = Dir + "/recover-" + std::to_string(Records);
    if (::mkdir(StateDir.c_str(), 0755) != 0)
      reportFatalError("mkdir failed for " + StateDir);
    {
      std::string Error;
      durable::StateStore::Recovery Recovered;
      auto Store = durable::StateStore::open(
          StateDir, durable::FsyncPolicy::Never, Recovered, Error);
      if (!Store)
        reportFatalError("state store open failed: " + Error);
      durable::DurableRecord Create;
      Create.Type = durable::RecordType::SessionCreate;
      Create.Session = "bench";
      Create.Source = Source;
      Create.Mode = 3; // Smart
      if (Store->journal().append(Create, Error) == 0)
        reportFatalError("append failed: " + Error);
      durable::DurableRecord F = Fold;
      for (uint32_t C = 0; C < F.Folds[0].Conds.size(); ++C)
        F.Folds[0].Conds[C].Node = C % 2; // Real condition nodes.
      for (unsigned I = 0; I < Records; ++I)
        if (Store->journal().append(F, Error) == 0)
          reportFatalError("append failed: " + Error);
    }

    auto BootOnce = [&StateDir](bool Checkpoint) {
      std::string Error;
      durable::StateStore::Recovery Recovered;
      auto Start = std::chrono::steady_clock::now();
      auto Store = durable::StateStore::open(
          StateDir, durable::FsyncPolicy::Never, Recovered, Error);
      if (!Store)
        reportFatalError("state store open failed: " + Error);
      serve::ServeOptions Opts;
      Opts.Store = Store.get();
      serve::ServeCore Core(Opts);
      serve::ServeCore::RestoreReport RR;
      Core.restore(Recovered, RR);
      auto End = std::chrono::steady_clock::now();
      if (Core.sessionCount() != 1)
        reportFatalError("recovery lost the bench session");
      if (Checkpoint && !Core.checkpoint(Error))
        reportFatalError("checkpoint failed: " + Error);
      return std::chrono::duration<double>(End - Start).count();
    };

    uint64_t JournalBytes = 0;
    {
      std::string Error;
      durable::StateStore::Recovery Recovered;
      auto Store = durable::StateStore::open(
          StateDir, durable::FsyncPolicy::Never, Recovered, Error);
      JournalBytes = Store ? Store->journal().sizeBytes() : 0;
    }
    double ReplaySecs = BootOnce(/*Checkpoint=*/true);
    double SnapshotSecs = BootOnce(/*Checkpoint=*/false);

    char KB[32], Replay[32], Snap[32];
    std::snprintf(KB, sizeof(KB), "%.1f",
                  static_cast<double>(JournalBytes) / 1024.0);
    std::snprintf(Replay, sizeof(Replay), "%.2f", ReplaySecs * 1e3);
    std::snprintf(Snap, sizeof(Snap), "%.2f", SnapshotSecs * 1e3);
    R.addRow({std::to_string(Records), KB, Replay, Snap});
  }
  std::printf("%s\n", R.str().c_str());
  CleanDir();
}

// Streaming counter ingest: N writer threads firehosing deltas into a
// CounterDeltaStream's sharded atomic cells, a periodic flusher folding
// each sealed epoch into the session, and 0 / 1 / Q query threads
// re-estimating concurrently. The updates/s column is the sustained
// append rate measured over the writers' whole lifetime — the acceptance
// gate watches it stay above 1M/s even with concurrent queries.
void printStreamingIngestTable() {
  constexpr unsigned Funcs = 255;
  constexpr unsigned Writers = 4;
  constexpr uint64_t OpsPerWriter = 250000;
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(Funcs, 3);
  CostModel CM = CostModel::optimizing();

  std::printf("=== Streaming counter ingest (%u functions, %u writers, "
              "%llu updates) ===\n",
              Funcs, Writers,
              static_cast<unsigned long long>(Writers * OpsPerWriter));
  TablePrinter T({"query threads", "wall [ms]", "updates/s", "epochs",
                  "queries"});
  for (unsigned QueryThreads : {0u, 1u, 4u}) {
    DiagnosticEngine Diags;
    auto S = EstimationSession::create(*Prog, CM,
                                       EstimatorOptions(Diags).jobs(4));
    if (!S || !S->profiledRun().Ok)
      reportFatalError("session setup failed for streaming bench");
    if (!S->estimateEntry().Ok)
      reportFatalError("warm-up estimate failed");
    auto Stream = CounterDeltaStream::create(*S);
    const unsigned NumFns = Stream->numFunctions();

    std::atomic<bool> WritersDone{false};
    std::atomic<uint64_t> Queries{0};
    auto Start = std::chrono::steady_clock::now();
    {
      std::vector<std::jthread> Pool;
      // The flusher seals an epoch every millisecond until the writers
      // retire, then drains whatever is left in one final epoch.
      Pool.emplace_back([&] {
        while (!WritersDone.load(std::memory_order_acquire)) {
          Stream->flush();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        Stream->flush();
      });
      for (unsigned Q = 0; Q < QueryThreads; ++Q)
        Pool.emplace_back([&] {
          while (!WritersDone.load(std::memory_order_acquire)) {
            if (!S->estimateEntry().Ok)
              reportFatalError("concurrent estimate failed");
            Queries.fetch_add(1, std::memory_order_relaxed);
          }
        });
      {
        std::vector<std::jthread> WriterPool;
        for (unsigned W = 0; W < Writers; ++W)
          WriterPool.emplace_back([&, W] {
            CounterDeltaStream::Writer Wr = Stream->acquireWriter();
            if (!Wr)
              reportFatalError("no writer slot free");
            for (uint64_t I = 0; I < OpsPerWriter; ++I)
              Wr.add((W + I) % NumFns, 0, 1.0);
          });
      }
      WritersDone.store(true, std::memory_order_release);
    }
    auto End = std::chrono::steady_clock::now();
    double Wall = std::chrono::duration<double>(End - Start).count();
    CounterDeltaStream::Stats St = Stream->stats();
    if (St.Appended != Writers * OpsPerWriter || St.Dropped != 0)
      reportFatalError("streaming bench lost updates");

    char WallMs[32], Rate[32];
    std::snprintf(WallMs, sizeof(WallMs), "%.1f", Wall * 1e3);
    std::snprintf(Rate, sizeof(Rate), "%.2fM",
                  static_cast<double>(St.Appended) / Wall / 1e6);
    T.addRow({std::to_string(QueryThreads), WallMs, Rate,
              std::to_string(static_cast<unsigned long long>(St.Epochs)),
              std::to_string(static_cast<unsigned long long>(
                  Queries.load()))});
  }
  std::printf("%s\n", T.str().c_str());
}

// Replication lag per ack mode: an in-process primary (ServeCore +
// JournalShipper) connected to a standby (read-only ServeCore +
// StandbyReplicator) over a socketpair. Each row ships the same burst of
// epoch-fold mutations and reports the primary-side append wall clock
// (which under ack=always includes the standby-durability wait baked into
// every acknowledgement) and the residual catch-up lag after the last
// append — the window an unacked failover could lose.
void printReplicationLagTable() {
  char Template[] = "/tmp/ptran-bench-repl-XXXXXX";
  if (!::mkdtemp(Template)) {
    std::printf("=== Replication lag: skipped (no scratch dir) ===\n\n");
    return;
  }
  std::string Dir = Template;
  auto CleanDir = [&Dir] {
    std::string Cmd = "rm -rf " + Dir;
    if (std::system(Cmd.c_str()) != 0) {
    }
  };

  const char *Source = "      program main\n"
                       "      integer i\n"
                       "      do 10 i = 1, 8\n"
                       "        call leaf(i)\n"
                       " 10   continue\n"
                       "      end\n"
                       "      subroutine leaf(k)\n"
                       "      integer k\n"
                       "      k = k + 1\n"
                       "      end\n";
  constexpr unsigned Burst = 512;

  // Accepts shipper subscriptions the way the daemon's accept loop does,
  // one thread per socketpair connection.
  struct SubscriptionServer {
    repl::JournalShipper &Shipper;
    std::vector<std::thread> Threads;
    std::mutex Mu;
    explicit SubscriptionServer(repl::JournalShipper &S) : Shipper(S) {}
    ~SubscriptionServer() {
      Shipper.stop();
      std::lock_guard<std::mutex> L(Mu);
      for (std::thread &T : Threads)
        T.join();
    }
    int connect(std::string &Error) {
      int Sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, Sv) < 0) {
        Error = "socketpair failed";
        return -1;
      }
      std::lock_guard<std::mutex> L(Mu);
      Threads.emplace_back([this, Fd = Sv[0]] {
        serve::WireMessage Sub;
        std::string Err;
        if (serve::readFrame(Fd, Sub, Err) == 1 &&
            Sub.Verb == "repl-subscribe")
          Shipper.runSubscription(Fd, Sub);
        ::close(Fd);
      });
      return Sv[1];
    }
  };

  std::printf("=== Replication lag per ack mode (%u epoch folds, "
              "socketpair standby) ===\n",
              Burst);
  TablePrinter T({"ack", "records", "append wall [ms]", "us/append",
                  "records/s", "catch-up [ms]"});
  for (repl::AckMode Ack :
       {repl::AckMode::None, repl::AckMode::Batch, repl::AckMode::Always}) {
    std::string PDir = Dir + "/p-" + repl::ackModeName(Ack);
    std::string SDir = Dir + "/s-" + repl::ackModeName(Ack);
    if (::mkdir(PDir.c_str(), 0755) != 0 ||
        ::mkdir(SDir.c_str(), 0755) != 0)
      reportFatalError("mkdir failed for replication bench");
    std::string Error;
    durable::StateStore::Recovery RecP, RecS;
    auto StoreP =
        durable::StateStore::open(PDir, durable::FsyncPolicy::Never, RecP,
                                  Error);
    auto StoreS =
        durable::StateStore::open(SDir, durable::FsyncPolicy::Never, RecS,
                                  Error);
    if (!StoreP || !StoreS)
      reportFatalError("state store open failed: " + Error);

    repl::JournalShipper::Options ShipOpts;
    ShipOpts.Store = StoreP.get();
    ShipOpts.Ack = Ack;
    repl::JournalShipper Shipper(ShipOpts);
    SubscriptionServer Server(Shipper);

    serve::ServeOptions POpts;
    POpts.Store = StoreP.get();
    POpts.Repl = &Shipper;
    serve::ServeCore Primary(POpts);
    Shipper.setCore(&Primary);

    serve::ServeOptions SOpts;
    SOpts.Store = StoreS.get();
    serve::ServeCore Standby(SOpts);

    repl::StandbyReplicator::Options StandOpts;
    StandOpts.Core = &Standby;
    StandOpts.Store = StoreS.get();
    StandOpts.Ack = Ack;
    StandOpts.Backoff = RetryPolicy().retries(1u << 30).baseDelay(
        std::chrono::milliseconds(1));
    StandOpts.Connect = [&Server](std::string &Err) {
      return Server.connect(Err);
    };
    repl::StandbyReplicator Replica(StandOpts);
    if (!Replica.start(Error))
      reportFatalError("standby start failed: " + Error);

    serve::WireMessage Load;
    Load.Verb = "load-program";
    Load.Params["session"] = "bench";
    Load.Body = Source;
    if (Primary.handle(Load).Verb != "ok")
      reportFatalError("load-program failed in replication bench");
    if (Primary.handle([&] {
                 serve::WireMessage R;
                 R.Verb = "run";
                 R.Params["session"] = "bench";
                 return R;
               }())
            .Verb != "ok")
      reportFatalError("run failed in replication bench");

    // One 16-byte delta record against cell (0, 0), flushed per request so
    // every iteration journals (and ships) exactly one EpochFold.
    serve::WireMessage Fold;
    Fold.Verb = "stream-deltas";
    Fold.Params["session"] = "bench";
    Fold.Params["flush"] = "1";
    uint64_t Bits;
    double Delta = 1.0;
    std::memcpy(&Bits, &Delta, sizeof(Bits));
    Fold.Body.assign(8, '\0'); // FuncIdx = 0, CondIdx = 0.
    for (int I = 0; I < 8; ++I)
      Fold.Body.push_back(static_cast<char>((Bits >> (8 * I)) & 0xff));

    auto Start = std::chrono::steady_clock::now();
    for (unsigned I = 0; I < Burst; ++I)
      if (Primary.handle(Fold).Verb != "ok")
        reportFatalError("stream-deltas failed in replication bench");
    auto AppendEnd = std::chrono::steady_clock::now();
    const uint64_t Target = StoreP->journal().lastLsn();
    while (Replica.lastAppliedLsn() < Target)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    auto CaughtUp = std::chrono::steady_clock::now();
    Replica.stop();

    double AppendSecs =
        std::chrono::duration<double>(AppendEnd - Start).count();
    double CatchUpSecs =
        std::chrono::duration<double>(CaughtUp - AppendEnd).count();
    char Wall[32], Per[32], Rate[32], Lag[32];
    std::snprintf(Wall, sizeof(Wall), "%.2f", AppendSecs * 1e3);
    std::snprintf(Per, sizeof(Per), "%.2f", AppendSecs / Burst * 1e6);
    std::snprintf(Rate, sizeof(Rate), "%.0f", Burst / AppendSecs);
    std::snprintf(Lag, sizeof(Lag), "%.2f", CatchUpSecs * 1e3);
    T.addRow({repl::ackModeName(Ack),
              std::to_string(static_cast<unsigned long long>(Target)), Wall,
              Per, Rate, Lag});
  }
  std::printf("%s\n", T.str().c_str());
  CleanDir();
}

void printStaticScalingTable() {
  std::printf("=== Ablation A2: representation sizes vs program size ===\n");
  TablePrinter T({"units", "stmts", "ecfg nodes", "fcdg edges",
                  "conditions", "smart counters"});
  for (unsigned Units : {4u, 16u, 64u, 256u}) {
    Prepared P = prepare(Units);
    const Function *Main = P.Prog->entry();
    const FunctionAnalysis &FA = P.PA->of(*Main);
    ProgramPlan Plan = ProgramPlan::build(*P.PA, ProfileMode::Smart);
    T.addRow({std::to_string(Units), std::to_string(Main->numStmts()),
              std::to_string(FA.ecfg().cfg().numNodes()),
              std::to_string(FA.cd().fcdg().numEdges()),
              std::to_string(FA.cd().conditions().size()),
              std::to_string(Plan.totalCounters())});
  }
  std::printf("%s\n", T.str().c_str());
}

} // namespace

int main(int Argc, char **Argv) {
  printStaticScalingTable();
  printCsrKernelTable();
  printParallelSpeedupTable();
  printIncrementalReestimationTable();
  printObservabilityOverheadTable();
  printCancellationOverheadTable();
  printProfileIngestionTable();
  printStreamingIngestTable();
  printDurableStateTable();
  printReplicationLagTable();
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
