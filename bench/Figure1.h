//===--- bench/Figure1.h - Shared Figure 1 fixture for benches -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Figure 1 program, shared by the figure-regeneration
/// benchmark binaries.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_BENCH_FIGURE1_H
#define PTRAN_BENCH_FIGURE1_H

#include "ir/Builder.h"
#include "support/FatalError.h"

#include <memory>

namespace ptran {
namespace bench {

inline std::unique_ptr<Program> makeFigure1Program() {
  auto Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  {
    FunctionBuilder B(*Prog, "main", Diags);
    VarId M = B.intVar("m");
    VarId N = B.intVar("n");
    B.assign(M, B.lit(1));
    B.assign(N, B.lit(8));
    B.label(10).ifGoto(B.ge(B.var(M), B.lit(0)), 30);
    B.ifGoto(B.ge(B.var(N), B.lit(0)), 20);
    B.gotoLabel(40);
    B.label(30).ifGoto(B.lt(B.var(N), B.lit(0)), 20);
    B.label(40).callSub("foo", {B.var(M), B.var(N)});
    B.gotoLabel(10);
    B.label(20).cont();
    if (!B.finish())
      reportFatalError("figure 1 failed to build:\n" + Diags.str());
  }
  {
    FunctionBuilder B(*Prog, "foo", Diags);
    B.intParam("m");
    VarId N = B.intParam("n");
    B.assign(N, B.sub(B.var(N), B.lit(1)));
    if (!B.finish())
      reportFatalError("foo failed to build:\n" + Diags.str());
  }
  return Prog;
}

} // namespace bench
} // namespace ptran

#endif // PTRAN_BENCH_FIGURE1_H
