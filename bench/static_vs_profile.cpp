//===--- bench/static_vs_profile.cpp - Ablation A4: frequency sources -----===//
//
// Section 3 argues compile-time frequency analysis works only for
// restricted cases and "should be complemented by execution profile
// information wherever compile-time analysis is unsuccessful". This
// ablation quantifies the claim on the Livermore kernels: per procedure,
// the fraction of conditions the static analysis decides exactly, and
// the TIME estimate from static, hybrid and profiled frequencies (with
// the profiled estimate — which equals the measured cycles — as ground
// truth).
//
//===----------------------------------------------------------------------===//

#include "cost/Estimator.h"
#include "freq/StaticFrequencies.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"
#include "workloads/Workloads.h"

#include <benchmark/benchmark.h>

#include <cstdio>

using namespace ptran;

namespace {

void printComparison(const Workload &W) {
  std::unique_ptr<Program> Prog = parseWorkload(W);
  DiagnosticEngine Diags;
  auto Est = Estimator::create(*Prog, CostModel::optimizing(), EstimatorOptions(Diags));
  if (!Est)
    reportFatalError("analysis failed:\n" + Diags.str());
  RunResult R = Est->profiledRun(W.MaxSteps);
  if (!R.Ok)
    reportFatalError("run failed: " + R.Error);

  CostModel CM = CostModel::optimizing();
  std::map<const Function *, Frequencies> StaticFreqs, ProfFreqs;
  std::map<const Function *, double> ExactFrac;
  for (const auto &F : Prog->functions()) {
    const FunctionAnalysis &FA = Est->analysis().of(*F);
    StaticFrequencies S = computeStaticFrequencies(FA);
    ExactFrac[F.get()] = S.exactFraction();
    StaticFreqs[F.get()] = std::move(S.Freqs);
    ProfFreqs[F.get()] = computeFrequencies(FA, Est->totalsFor(*F));
  }
  TimeAnalysis StaticTA = TimeAnalysis::run(Est->analysis(), StaticFreqs, CM);
  TimeAnalysis ProfTA = TimeAnalysis::run(Est->analysis(), ProfFreqs, CM);

  std::printf("%s:\n", W.Name.c_str());
  TablePrinter T({"procedure", "% conds exact", "static TIME",
                  "profiled TIME", "static/profiled"});
  for (const auto &F : Prog->functions()) {
    double S = StaticTA.functionTime(*F);
    double P = ProfTA.functionTime(*F);
    T.addRow({F->name(), formatDouble(100.0 * ExactFrac[F.get()], 4) + "%",
              formatDouble(S, 5), formatDouble(P, 5),
              P > 0.0 ? formatDouble(S / P, 4) : "-"});
  }
  std::printf("%s", T.str().c_str());
  std::printf("whole program: static %s vs profiled %s (ratio %s); the "
              "profiled estimate equals the measured %s cycles.\n\n",
              formatDouble(StaticTA.programTime(), 5).c_str(),
              formatDouble(ProfTA.programTime(), 5).c_str(),
              formatDouble(StaticTA.programTime() / ProfTA.programTime(),
                           4)
                  .c_str(),
              formatDouble(R.Cycles, 5).c_str());
}

void benchStaticFrequencies(benchmark::State &State) {
  std::unique_ptr<Program> Prog = parseWorkload(livermoreLoops());
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Prog, Diags);
  for (auto _ : State) {
    for (const auto &F : Prog->functions()) {
      StaticFrequencies S = computeStaticFrequencies(PA->of(*F));
      benchmark::DoNotOptimize(S.Freqs.NodeFreq.size());
    }
  }
}
BENCHMARK(benchStaticFrequencies);

} // namespace

int main(int Argc, char **Argv) {
  std::printf("=== Ablation A4: compile-time vs profiled frequencies ===\n\n");
  for (const Workload *W : table1Workloads())
    printComparison(*W);
  benchmark::Initialize(&Argc, Argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
