//===--- workloads/Workloads.cpp - Benchmark workloads --------------------===//

#include "workloads/Workloads.h"

#include "ir/Builder.h"
#include "ir/Verifier.h"
#include "parser/Parser.h"
#include "support/FatalError.h"

using namespace ptran;

//===----------------------------------------------------------------------===//
// LOOPS: the 24 Livermore kernels, structurally faithful reduced ports.
//===----------------------------------------------------------------------===//

static const char LoopsSource[] = R"FTN(
! The 24 Livermore Loops [McM86], ported to the mini language at reduced
! problem size. Loop nesting, recurrences, strides and branch structure
! follow the original kernels.

program loops
  integer nrep
  nrep = 5
  call k1(nrep)
  call k2(nrep)
  call k3(nrep)
  call k4(nrep)
  call k5(nrep)
  call k6(nrep)
  call k7(nrep)
  call k8(nrep)
  call k9(nrep)
  call k10(nrep)
  call k11(nrep)
  call k12(nrep)
  call k13(nrep)
  call k14(nrep)
  call k15(nrep)
  call k16(nrep)
  call k17(nrep)
  call k18(nrep)
  call k19(nrep)
  call k20(nrep)
  call k21(nrep)
  call k22(nrep)
  call k23(nrep)
  call k24(nrep)
end

! Kernel 1 -- hydro fragment
subroutine k1(nrep)
  real x(120), y(120), z(120)
  n = 64
  q = 0.5
  r = 0.25
  t = 0.125
  do 5 k = 1, n + 12
    y(k) = 0.01 * real(k)
    z(k) = 0.02 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 10 k = 1, n
      x(k) = q + y(k) * (r * z(k+10) + t * z(k+11))
10 continue
end

! Kernel 2 -- incomplete Cholesky conjugate gradient excerpt (stride
! halving through an unstructured loop)
subroutine k2(nrep)
  real x(200), v(200)
  n = 64
  do 5 k = 1, n
    x(k) = 0.01 * real(k)
    v(k) = 0.03 * real(k)
5 continue
  do 40 irep = 1, nrep
    ii = n
    ipntp = 0
20  ipnt = ipntp
    ipntp = ipntp + ii
    ii = ii / 2
    i = ipntp
    do 30 k = ipnt + 2, ipntp, 2
      i = i + 1
      x(i) = x(k) - v(k) * x(k-1) - v(k+1) * x(k+1)
30  continue
    if (ii .gt. 1) goto 20
40 continue
end

! Kernel 3 -- inner product
subroutine k3(nrep)
  real x(120), z(120)
  n = 64
  do 5 k = 1, n
    x(k) = 0.01 * real(k)
    z(k) = 0.02 * real(k)
5 continue
  do 10 irep = 1, nrep
    q = 0.0
    do 10 k = 1, n
      q = q + z(k) * x(k)
10 continue
end

! Kernel 4 -- banded linear equations
subroutine k4(nrep)
  real x(120), y(120)
  n = 60
  m = 20
  do 5 k = 1, n + m
    x(k) = 0.01 * real(k)
    y(k) = 0.02 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 10 k = 7, 107, 50
      lw = k - 6
      temp = x(k-1)
      do 8 j = 5, n, 5
        temp = temp - x(lw) * y(j)
        lw = lw + 1
8     continue
      x(k-1) = y(5) * temp
10 continue
end

! Kernel 5 -- tri-diagonal elimination, below diagonal (first-order
! recurrence)
subroutine k5(nrep)
  real x(120), y(120), z(120)
  n = 64
  do 5 k = 1, n
    x(k) = 0.0
    y(k) = 0.01 * real(k)
    z(k) = 0.02 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 10 k = 2, n
      x(k) = z(k) * (y(k) - x(k-1))
10 continue
end

! Kernel 6 -- general linear recurrence equations (triangular inner loop)
subroutine k6(nrep)
  real w(70), b(70, 70)
  n = 32
  do 6 i = 1, n
    w(i) = 0.01 * real(i)
    do 5 j = 1, n
      b(i, j) = 0.001 * real(i + j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 i = 2, n
      do 10 k = 1, i - 1
        w(i) = w(i) + b(i, k) * w(i-k)
10 continue
end

! Kernel 7 -- equation of state fragment (expression heavy)
subroutine k7(nrep)
  real x(140), y(140), z(140), u(140)
  n = 64
  r = 0.5
  t = 0.25
  do 5 k = 1, n + 12
    y(k) = 0.01 * real(k)
    z(k) = 0.02 * real(k)
    u(k) = 0.03 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 10 k = 1, n
      x(k) = u(k) + r * (z(k) + r * y(k))
      x(k) = x(k) + t * (u(k+3) + r * (u(k+2) + r * u(k+1)) + t * (u(k+6) + r * (u(k+5) + r * u(k+4))))
10 continue
end

! Kernel 8 -- ADI integration (2-D sweeps)
subroutine k8(nrep)
  real u1(30, 30), u2(30, 30), u3(30, 30)
  n = 20
  a11 = 0.1
  a12 = 0.2
  do 6 i = 1, n + 2
    do 5 j = 1, n + 2
      u1(i, j) = 0.001 * real(i * j)
      u2(i, j) = 0.002 * real(i + j)
      u3(i, j) = 0.003 * real(i - j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 ky = 2, n
      do 10 kx = 2, n
        du1 = u1(kx, ky+1) - u1(kx, ky-1)
        du2 = u2(kx, ky+1) - u2(kx, ky-1)
        u3(kx, ky) = u3(kx, ky) + a11 * du1 + a12 * du2 + a11 * u1(kx-1, ky) + a12 * u2(kx+1, ky)
10 continue
end

! Kernel 9 -- numerical integration
subroutine k9(nrep)
  real px(30, 70)
  n = 64
  do 6 i = 1, 13
    do 5 j = 1, n
      px(i, j) = 0.001 * real(i * j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 i = 1, n
      px(1, i) = px(5, i) + px(6, i) * px(3, i) + px(7, i) * px(4, i) + px(8, i) * px(2, i)
10 continue
end

! Kernel 10 -- numerical differentiation
subroutine k10(nrep)
  real px(30, 70), cx(30, 70)
  n = 64
  do 6 i = 1, 13
    do 5 j = 1, n
      px(i, j) = 0.001 * real(i * j)
      cx(i, j) = 0.002 * real(i + j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 i = 1, n
      px(5, i) = cx(5, i) - px(4, i)
      px(6, i) = cx(5, i) * cx(5, i) - px(6, i)
      px(7, i) = px(5, i) + px(6, i)
10 continue
end

! Kernel 11 -- first sum (prefix recurrence)
subroutine k11(nrep)
  real x(120), y(120)
  n = 64
  do 5 k = 1, n
    x(k) = 0.0
    y(k) = 0.01 * real(k)
5 continue
  do 10 irep = 1, nrep
    x(1) = y(1)
    do 10 k = 2, n
      x(k) = x(k-1) + y(k)
10 continue
end

! Kernel 12 -- first difference
subroutine k12(nrep)
  real x(120), y(120)
  n = 64
  do 5 k = 1, n + 1
    y(k) = 0.01 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 10 k = 1, n
      x(k) = y(k+1) - y(k)
10 continue
end

! Kernel 13 -- 2-D particle in cell (integer index arithmetic)
subroutine k13(nrep)
  real p(4, 80), b(10, 10), c(10, 10), y(80), z(80), h(10, 10)
  n = 32
  do 5 k = 1, n
    p(1, k) = real(mod(k * 3, 8)) + 1.2
    p(2, k) = real(mod(k * 5, 8)) + 1.4
    p(3, k) = 0.01 * real(k)
    p(4, k) = 0.02 * real(k)
    y(k) = 0.3
    z(k) = 0.4
5 continue
  do 6 i = 1, 10
    do 6 j = 1, 10
      b(i, j) = 0.01
      c(i, j) = 0.02
      h(i, j) = 0.0
6 continue
  do 10 irep = 1, nrep
    do 10 ip = 1, n
      i = int(p(1, ip))
      j = int(p(2, ip))
      i = mod(i, 8) + 1
      j = mod(j, 8) + 1
      p(3, ip) = p(3, ip) + b(i, j)
      p(4, ip) = p(4, ip) + c(i, j)
      p(1, ip) = p(1, ip) + p(3, ip)
      p(2, ip) = p(2, ip) + p(4, ip)
      i = mod(int(p(1, ip)), 8) + 1
      j = mod(int(p(2, ip)), 8) + 1
      p(1, ip) = p(1, ip) + y(i + 1)
      p(2, ip) = p(2, ip) + z(j + 1)
      h(i, j) = h(i, j) + 1.0
10 continue
end

! Kernel 14 -- 1-D particle in cell
subroutine k14(nrep)
  real vx(80), xx(80), xi(80), ex(80), dex(80), ir2(80), rx(80)
  n = 32
  flx = 0.001
  do 5 k = 1, n
    vx(k) = 0.0
    xx(k) = 0.01 * real(k)
    ex(k) = 0.02 * real(k)
    dex(k) = 0.03 * real(k)
5 continue
  do 10 irep = 1, nrep
    do 8 ip = 1, n
      i = int(xx(ip))
      i = mod(i, 32) + 1
      xi(ip) = real(i)
      vx(ip) = vx(ip) + ex(i) + (xx(ip) - xi(ip)) * dex(i)
8   continue
    do 10 ip = 1, n
      xx(ip) = xx(ip) + vx(ip) + flx
10 continue
end

! Kernel 15 -- casual Fortran, with data-dependent branches
subroutine k15(nrep)
  real vy(30, 30), vs(30, 30), ve3, t, r, s
  n = 20
  do 6 i = 1, n + 1
    do 5 j = 1, n + 1
      vy(i, j) = 0.001 * real(i * j) - 0.2
      vs(i, j) = 0.002 * real(i + j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 i = 2, n
      do 10 j = 2, n
        ve3 = vy(i, j)
        if (vy(i, j) .lt. 0.0) ve3 = 0.0
        t = vs(i, j) + vs(i, j-1)
        if (t .gt. 0.3) t = 0.3
        r = ve3 + t
        if (r .lt. 0.0) then
          vy(i, j) = 0.0
        else
          vy(i, j) = r
        endif
10 continue
end

! Kernel 16 -- Monte Carlo search loop (heavily unstructured)
subroutine k16(nrep)
  real plan(120), zone(120)
  integer d(10)
  n = 60
  do 5 k = 1, n * 2
    plan(k) = real(mod(k * 7, 10)) - 4.5
    zone(k) = real(mod(k * 3, 10)) - 4.5
5 continue
  do 4 k = 1, 10
    d(k) = k
4 continue
  do 40 irep = 1, nrep
    ii = n / 3
    lb = ii
    k = 0
    m = 1
20  j = ii
    k = k + 1
    if (k .gt. 2 * n) goto 40
    m = m + 1
    if (m .gt. 10) m = 1
    if (plan(j + m) .lt. 0.0) goto 25
    if (zone(j + m) .lt. 0.0) goto 30
    if (plan(j + m) .lt. zone(j + m)) goto 35
    ii = ii + d(m)
    if (ii .gt. n) ii = ii - lb
    goto 20
25  ii = ii + 1
    if (ii .gt. n) ii = ii - lb
    goto 20
30  ii = ii + 2
    if (ii .gt. n) ii = ii - lb
    goto 20
35  ii = ii + 3
    if (ii .gt. n) ii = ii - lb
    goto 20
40 continue
end

! Kernel 17 -- implicit, conditional computation (goto loop)
subroutine k17(nrep)
  real vxne(120), vlr(120), vsp(120)
  n = 64
  do 5 k = 1, n
    vxne(k) = 0.01 * real(k)
    vlr(k) = 0.02 * real(k)
    vsp(k) = 0.03 * real(k)
5 continue
  do 40 irep = 1, nrep
    scale = 0.99
    xnm = 0.0066
    e6 = 0.17
    k = n
20  e3 = xnm * vlr(k) + vsp(k)
    xnei = vxne(k)
    vxne(k) = e6
    xnm = e3 * scale
    k = k - 1
    if (xnei .gt. e6) e6 = e6 * 0.9
    if (k .gt. 1) goto 20
40 continue
end

! Kernel 18 -- 2-D explicit hydrodynamics fragment
subroutine k18(nrep)
  real za(30, 30), zb(30, 30), zp(30, 30), zq(30, 30), zr(30, 30), zm(30, 30), zz(30, 30), zu(30, 30), zv(30, 30)
  n = 20
  t = 0.0037
  s = 0.0041
  do 6 i = 1, n + 2
    do 5 j = 1, n + 2
      zp(i, j) = 0.001 * real(i * j)
      zq(i, j) = 0.002 * real(i + j)
      zr(i, j) = 0.003 * real(i) + 0.001
      zm(i, j) = 0.004 * real(j) + 0.002
      zz(i, j) = 0.005
      zu(i, j) = 0.0
      zv(i, j) = 0.0
5   continue
6 continue
  do 10 irep = 1, nrep
    do 7 j = 2, n
      do 7 k = 2, n
        za(j, k) = (zp(j-1, k+1) + zq(j-1, k+1) - zp(j-1, k) - zq(j-1, k)) * (zr(j, k) + zr(j-1, k)) / (zm(j-1, k) + zm(j-1, k+1))
        zb(j, k) = (zp(j-1, k) + zq(j-1, k) - zp(j, k) - zq(j, k)) * (zr(j, k) + zr(j, k-1)) / (zm(j, k) + zm(j-1, k))
7   continue
    do 8 j = 2, n
      do 8 k = 2, n
        zu(j, k) = zu(j, k) + s * (za(j, k) * (zz(j, k) - zz(j, k+1)) - za(j-1, k) * (zz(j, k) - zz(j-1, k)) - zb(j, k) * (zz(j, k) - zz(j, k-1)))
        zv(j, k) = zv(j, k) + s * (za(j, k) * (zr(j, k) - zr(j, k+1)) - za(j-1, k) * (zr(j, k) - zr(j-1, k)) - zb(j, k) * (zr(j, k) - zr(j, k-1)))
8   continue
    do 10 j = 2, n
      do 10 k = 2, n
        zr(j, k) = zr(j, k) + t * zu(j, k)
        zz(j, k) = zz(j, k) + t * zv(j, k)
10 continue
end

! Kernel 19 -- general linear recurrence, forward and backward sweeps
subroutine k19(nrep)
  real b5(120), sa(120), sb(120)
  n = 64
  do 5 k = 1, n
    sa(k) = 0.01 * real(k)
    sb(k) = 0.02 * real(k)
    b5(k) = 0.0
5 continue
  do 10 irep = 1, nrep
    stb5 = 0.1
    do 7 k = 1, n
      b5(k) = sa(k) + stb5 * sb(k)
      stb5 = b5(k) - stb5
7   continue
    do 10 i = 1, n
      k = n - i + 1
      b5(k) = sa(k) + stb5 * sb(k)
      stb5 = b5(k) - stb5
10 continue
end

! Kernel 20 -- discrete ordinates transport
subroutine k20(nrep)
  real g(120), u(120), v(120), w(120), x(120), y(120), z(120), xx(120), vx(120)
  n = 64
  dk = 0.01
  do 5 k = 1, n + 1
    g(k) = 0.01 * real(k) + 0.1
    u(k) = 0.02 * real(k)
    v(k) = 0.03 * real(k)
    w(k) = 0.04 * real(k)
    y(k) = 0.05 * real(k) + 0.2
    z(k) = 0.06 * real(k) + 0.3
    xx(k) = 0.07
    vx(k) = 0.08 * real(k) + 0.1
5 continue
  do 10 irep = 1, nrep
    do 10 k = 2, n
      di = y(k) - g(k) / (xx(k) + dk)
      dn = 0.2
      if (di .ne. 0.0) dn = max(0.1, min(z(k-1) / di, 0.2))
      x(k) = ((w(k) + v(k) * dn) * xx(k) + u(k)) / (vx(k) + v(k) * dn)
      xx(k+1) = (x(k) - xx(k)) * dn + xx(k)
10 continue
end

! Kernel 21 -- matrix * matrix product
subroutine k21(nrep)
  real px(26, 26), vy(26, 26), cx(26, 26)
  n = 16
  do 6 i = 1, n + 9
    do 5 j = 1, n + 9
      px(i, j) = 0.0
      vy(i, j) = 0.001 * real(i * j)
      cx(i, j) = 0.002 * real(i + j)
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 k = 1, n
      do 10 i = 1, n
        do 10 j = 1, n
          px(i, j) = px(i, j) + vy(i, k) * cx(k, j)
10 continue
end

! Kernel 22 -- Planckian distribution
subroutine k22(nrep)
  real u(120), v(120), w(120), x(120), y(120)
  n = 64
  expmax = 20.0
  do 5 k = 1, n
    u(k) = 0.1 * real(k)
    v(k) = 0.05 * real(k) + 0.1
    x(k) = 0.0
    w(k) = 0.0
5 continue
  do 10 irep = 1, nrep
    u(n) = 0.99 * expmax * v(n)
    do 10 k = 1, n
      y(k) = u(k) / v(k)
      if (y(k) .gt. expmax) y(k) = expmax
      w(k) = x(k) / (exp(y(k)) - 1.0)
10 continue
end

! Kernel 23 -- 2-D implicit hydrodynamics fragment
subroutine k23(nrep)
  real za(30, 30), zb(30, 30), zr(30, 30), zu(30, 30), zv(30, 30), zz(30, 30)
  n = 20
  s = 0.1
  do 6 i = 1, n + 2
    do 5 j = 1, n + 2
      za(i, j) = 0.001 * real(i * j)
      zb(i, j) = 0.002 * real(i + j)
      zr(i, j) = 0.003 * real(i)
      zu(i, j) = 0.004 * real(j)
      zv(i, j) = 0.005
      zz(i, j) = 0.006
5   continue
6 continue
  do 10 irep = 1, nrep
    do 10 j = 2, n
      do 10 k = 2, n
        qa = za(j, k+1) * zr(j, k) + za(j, k-1) * zb(j, k) + za(j+1, k) * zu(j, k) + za(j-1, k) * zv(j, k) + zz(j, k)
        za(j, k) = za(j, k) + s * (qa - za(j, k))
10 continue
end

! Kernel 24 -- find location of first minimum in array
subroutine k24(nrep)
  real x(120)
  n = 64
  do 5 k = 1, n
    x(k) = real(mod(k * 37, 100)) - 50.0
5 continue
  do 10 irep = 1, nrep
    m = 1
    do 10 k = 2, n
      if (x(k) .lt. x(m)) m = k
10 continue
end
)FTN";

//===----------------------------------------------------------------------===//
// SIMPLE: hydrodynamics / heat-flow kernel, 100 x 100, NCYCLES = 10.
//===----------------------------------------------------------------------===//

static const char SimpleSource[] = R"FTN(
! A SIMPLE-shaped [CHR78] hydrodynamics and heat diffusion kernel on a
! 100 x 100 staggered grid, NCYCLES = 10: a Lagrangian phase updating
! velocities and coordinates from pressure gradients, an equation-of-state
! pass with a data-dependent clamp, a heat-diffusion sweep, and an energy
! reduction with a convergence test.

program simple
  real r(100, 100), z(100, 100), ru(100, 100), rv(100, 100)
  real p(100, 100), q(100, 100), e(100, 100), t(100, 100)
  integer cyc, ncycle
  n = 100
  ncycle = 10
  dt = 0.001

  ! Problem setup.
  do 6 i = 1, n
    do 5 j = 1, n
      r(i, j) = 0.01 * real(i)
      z(i, j) = 0.01 * real(j)
      ru(i, j) = 0.0
      rv(i, j) = 0.0
      p(i, j) = 1.0 + 0.001 * real(i + j)
      q(i, j) = 0.0
      e(i, j) = 2.5
      t(i, j) = 1.0 + 0.0001 * real(i * j)
5   continue
6 continue

  do 100 cyc = 1, ncycle
    ! Phase 1: Lagrangian momentum update from pressure gradients.
    do 20 i = 2, n - 1
      do 20 j = 2, n - 1
        dpdr = (p(i+1, j) - p(i-1, j)) * 0.5
        dpdz = (p(i, j+1) - p(i, j-1)) * 0.5
        ru(i, j) = ru(i, j) - dt * (dpdr + q(i, j))
        rv(i, j) = rv(i, j) - dt * (dpdz + q(i, j))
        r(i, j) = r(i, j) + dt * ru(i, j)
        z(i, j) = z(i, j) + dt * rv(i, j)
20  continue

    ! Phase 2: artificial viscosity and equation of state with clamps.
    do 40 i = 2, n - 1
      do 40 j = 2, n - 1
        du = ru(i+1, j) - ru(i, j)
        if (du .lt. 0.0) then
          q(i, j) = 2.0 * du * du
        else
          q(i, j) = 0.0
        endif
        p(i, j) = 0.4 * e(i, j) * (1.0 + 0.001 * real(i))
        if (p(i, j) .lt. 0.0) p(i, j) = 0.0
40  continue

    ! Phase 3: energy update.
    do 60 i = 2, n - 1
      do 60 j = 2, n - 1
        e(i, j) = e(i, j) - dt * p(i, j) * (ru(i+1, j) - ru(i-1, j) + rv(i, j+1) - rv(i, j-1)) * 0.5
60  continue

    ! Phase 4: heat diffusion sweep (alternating direction).
    do 70 i = 2, n - 1
      do 70 j = 2, n - 1
        t(i, j) = t(i, j) + 0.1 * (t(i+1, j) + t(i-1, j) - 2.0 * t(i, j))
70  continue
    do 80 j = 2, n - 1
      do 80 i = 2, n - 1
        t(i, j) = t(i, j) + 0.1 * (t(i, j+1) + t(i, j-1) - 2.0 * t(i, j))
80  continue

    ! Phase 5: global energy check (early convergence exit).
    ek = 0.0
    ei = 0.0
    do 90 i = 1, n
      do 90 j = 1, n
        ek = ek + 0.5 * (ru(i, j) * ru(i, j) + rv(i, j) * rv(i, j))
        ei = ei + e(i, j)
90  continue
    if (ek .lt. 0.0000000001 .and. cyc .gt. 3) goto 110
100 continue
110 continue
  print ek, ei
end
)FTN";

const Workload &ptran::livermoreLoops() {
  static const Workload W{"LOOPS", LoopsSource, 400'000'000};
  return W;
}

const Workload &ptran::simpleKernel() {
  static const Workload W{"SIMPLE", SimpleSource, 400'000'000};
  return W;
}

std::vector<const Workload *> ptran::table1Workloads() {
  return {&livermoreLoops(), &simpleKernel()};
}

std::unique_ptr<Program> ptran::parseWorkload(const Workload &W) {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(W.Source, Diags);
  if (!P)
    reportFatalError("workload " + W.Name + " failed to parse:\n" +
                     Diags.str());
  return P;
}

std::unique_ptr<Program> ptran::makeScalingProgram(unsigned Units,
                                                   unsigned Depth) {
  auto Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  FunctionBuilder B(*Prog, "main", Diags);
  VarId Acc = B.intVar("acc");
  B.assign(Acc, B.lit(0));

  int NextLabel = 1;
  // Each unit: Depth nested DO loops around an IF diamond.
  for (unsigned U = 0; U < Units; ++U) {
    std::vector<VarId> Ivs;
    for (unsigned D = 0; D < Depth; ++D) {
      VarId I = B.intVar("i" + std::to_string(U) + "_" + std::to_string(D));
      B.doLoop(I, B.lit(1), B.lit(2));
      Ivs.push_back(I);
    }
    int Else = NextLabel++;
    int End = NextLabel++;
    B.ifGoto(B.gt(B.var(Acc), B.lit(1000)), Else);
    B.assign(Acc, B.add(B.var(Acc), B.lit(1)));
    B.gotoLabel(End);
    B.label(Else).assign(Acc, B.sub(B.var(Acc), B.lit(1000)));
    B.label(End).cont();
    for (unsigned D = 0; D < Depth; ++D)
      B.endDo();
  }
  B.print({B.var(Acc)});
  if (!B.finish())
    reportFatalError("scaling program failed to build:\n" + Diags.str());
  return Prog;
}

std::unique_ptr<Program> ptran::makeManyFunctionProgram(unsigned Funcs,
                                                        unsigned Depth) {
  if (Funcs == 0)
    Funcs = 1;
  auto Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  auto NameOf = [](unsigned K) {
    return K == 0 ? std::string("main") : "f" + std::to_string(K);
  };

  for (unsigned K = 0; K < Funcs; ++K) {
    FunctionBuilder B(*Prog, NameOf(K), Diags);
    VarId Acc = B.intVar("acc");
    B.assign(Acc, B.lit(static_cast<int64_t>(K)));
    for (unsigned D = 0; D < Depth; ++D) {
      VarId I = B.intVar("i" + std::to_string(D));
      B.doLoop(I, B.lit(1), B.lit(3));
    }
    int Else = 1, End = 2;
    B.ifGoto(B.gt(B.var(Acc), B.lit(50)), Else);
    B.assign(Acc, B.add(B.var(Acc), B.lit(static_cast<int64_t>(K + 1))));
    B.gotoLabel(End);
    B.label(Else).assign(Acc, B.sub(B.var(Acc), B.lit(50)));
    B.label(End).cont();
    for (unsigned D = 0; D < Depth; ++D)
      B.endDo();
    // Binary call tree: every non-leaf fans out to two independent
    // subtrees, giving the interprocedural pass wide waves.
    unsigned Left = 2 * K + 1, Right = 2 * K + 2;
    if (Left < Funcs)
      B.callSub(NameOf(Left), {});
    if (Right < Funcs)
      B.callSub(NameOf(Right), {});
    if (K == 0)
      B.print({B.var(Acc)});
    if (!B.finish())
      reportFatalError("many-function program failed to build:\n" +
                       Diags.str());
  }
  return Prog;
}
