//===--- workloads/Workloads.h - Benchmark workloads ------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Table 1 workloads, ported to the mini language:
///
///   - LOOPS: the 24 Livermore Loops [McM86], structurally faithful ports
///     (same loop nesting, recurrences, strides and branch structure) at a
///     reduced problem size so the interpreter substrate finishes quickly;
///   - SIMPLE: a hydrodynamics/heat-flow kernel shaped like the SIMPLE
///     benchmark [CHR78] on a 100 x 100 grid with NCYCLES = 10.
///
/// Plus a deterministic scaling-program generator used by the analysis
/// throughput ablation (bench A2).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_WORKLOADS_WORKLOADS_H
#define PTRAN_WORKLOADS_WORKLOADS_H

#include "ir/Function.h"

#include <memory>
#include <string>
#include <vector>

namespace ptran {

/// A named mini-language program.
struct Workload {
  std::string Name;
  std::string Source;
  /// Statement budget generously covering one run.
  uint64_t MaxSteps = 200'000'000;
};

/// The 24 Livermore Loops (Table 1's "LOOPS").
const Workload &livermoreLoops();

/// The SIMPLE-shaped hydro kernel (Table 1's "SIMPLE").
const Workload &simpleKernel();

/// Both Table 1 workloads.
std::vector<const Workload *> table1Workloads();

/// Parses and verifies a workload. Aborts on error (the sources are part
/// of the library; failing to parse them is a bug).
std::unique_ptr<Program> parseWorkload(const Workload &W);

/// Deterministically generates a program with \p Units sequential units,
/// each containing nested loops/branches up to \p Depth. Used to measure
/// how analysis passes scale with CFG size.
std::unique_ptr<Program> makeScalingProgram(unsigned Units, unsigned Depth);

/// Deterministically generates a program with \p Funcs procedures whose
/// call graph is a binary tree rooted at main (procedure k calls 2k+1 and
/// 2k+2): ~log2(Funcs) condensation waves with up to Funcs/2 independent
/// procedures per wave. Each body carries \p Depth nested DO loops around
/// an IF diamond, so both the per-function fan-out and the SCC-wave
/// interprocedural pass have real work to parallelize.
std::unique_ptr<Program> makeManyFunctionProgram(unsigned Funcs,
                                                 unsigned Depth);

} // namespace ptran

#endif // PTRAN_WORKLOADS_WORKLOADS_H
