//===--- ecfg/Ecfg.cpp - Extended control flow graph ----------------------===//

#include "ecfg/Ecfg.h"

#include "graph/DepthFirst.h"
#include "support/FatalError.h"

#include <cassert>

using namespace ptran;

const Ecfg::PostexitInfo *Ecfg::postexitInfo(NodeId Pe) const {
  for (const PostexitInfo &Info : Postexits)
    if (Info.Postexit == Pe)
      return &Info;
  return nullptr;
}

Ecfg ptran::buildEcfg(const Cfg &C, const IntervalStructure &IS) {
  Ecfg Result;
  Cfg &E = Result.E;
  E = Cfg(C.function());
  Result.NumOriginal = C.numNodes();

  // Step 1: copy nodes (ids preserved) and remember the original edges.
  for (NodeId N = 0; N < C.numNodes(); ++N) {
    CfgNodeType Ty = IS.isHeader(N) ? CfgNodeType::Header : C.nodeType(N);
    E.createNode(Ty, C.origin(N));
  }
  E.setEntry(C.entry());

  Result.PreheaderOfNode.assign(C.numNodes(), InvalidNode);

  // Step 2(a,c): a preheader per header, with its unconditional edge.
  for (NodeId H : IS.headers()) {
    NodeId Ph = E.createNode(CfgNodeType::Preheader);
    Result.PreheaderOfNode[H] = Ph;
    Result.HeaderOfNode.resize(E.numNodes(), InvalidNode);
    Result.HeaderOfNode[Ph] = H;
    E.addEdge(Ph, H, CfgLabel::U);
  }

  auto PreheaderOf = [&](NodeId H) {
    NodeId Ph = Result.PreheaderOfNode[H];
    assert(Ph != InvalidNode && "header without preheader");
    return Ph;
  };

  // Helper implementing step 3(a-c) for one exit branch out of \p From
  // with \p Label, continuing to \p Continuation (a node, a preheader, or
  // STOP once it exists). Returns the postexit node.
  auto MakePostexit = [&](NodeId From, CfgLabel Label, NodeId Continuation,
                          NodeId OrigTo) {
    NodeId ExitedHeader = IS.hdr(From);
    assert(ExitedHeader != InvalidNode && "postexits only for loop exits");
    NodeId Pe = E.createNode(CfgNodeType::Postexit);
    Result.HeaderOfNode.resize(E.numNodes(), InvalidNode);
    E.addEdge(From, Pe, Label);
    E.addEdge(Pe, Continuation, CfgLabel::U);
    E.addEdge(PreheaderOf(ExitedHeader), Pe, CfgLabel::Z);
    Result.Postexits.push_back({Pe, From, OrigTo, Label, ExitedHeader});
    return Pe;
  };

  // Steps 2(b) and 3: route every original edge, diverting interval
  // entries through preheaders and splitting interval exits at postexits.
  const Digraph &G = C.graph();
  for (EdgeId OrigE = 0; OrigE < G.numEdgeSlots(); ++OrigE) {
    if (!G.isLive(OrigE))
      continue;
    const Digraph::Edge &Ed = G.edge(OrigE);
    NodeId U = Ed.From;
    NodeId V = Ed.To;
    CfgLabel L = static_cast<CfgLabel>(Ed.Label);

    // Interval entry: HDR_LCA(HDR(u), v) != v, i.e. u outside v's body.
    bool IsEntry = IS.isHeader(V) && !IS.contains(V, U);
    // Interval exit: HDR_LCA(HDR(u), HDR(v)) != HDR(u), i.e. u's innermost
    // interval does not contain v.
    NodeId Hu = IS.hdr(U);
    bool IsExit = Hu != InvalidNode && !IS.contains(Hu, V);

    NodeId Continuation = IsEntry ? PreheaderOf(V) : V;
    if (IsExit)
      MakePostexit(U, L, Continuation, V);
    else
      E.addEdge(U, Continuation, L);
  }

  // A synthetic, isolated ITERATE node per loop (used by the forward
  // control dependence construction; see Ecfg::iterateOf).
  Result.IterateOfNode.assign(C.numNodes(), InvalidNode);
  for (NodeId H : IS.headers()) {
    NodeId It = E.createNode(CfgNodeType::Iterate);
    Result.IterateOfNode[H] = It;
    Result.IterateHeaderOfNode.resize(E.numNodes(), InvalidNode);
    Result.IterateHeaderOfNode[It] = H;
  }

  // Steps 4-6: START and STOP with the pseudo edge between them.
  NodeId Start = E.createNode(CfgNodeType::Start);
  NodeId Stop = E.createNode(CfgNodeType::Stop);
  Result.HeaderOfNode.resize(E.numNodes(), InvalidNode);
  Result.IterateHeaderOfNode.resize(E.numNodes(), InvalidNode);
  Result.Start = Start;
  Result.Stop = Stop;

  NodeId FirstNode = C.entry();
  // Entering at a loop header is an interval entry like any other.
  if (FirstNode != InvalidNode) {
    if (IS.isHeader(FirstNode))
      E.addEdge(Start, PreheaderOf(FirstNode), CfgLabel::U);
    else
      E.addEdge(Start, FirstNode, CfgLabel::U);
  }

  for (const Cfg::ExitBranch &B : C.exitBranches()) {
    // A procedure exit taken inside a loop leaves that interval: split it
    // with a postexit so the FCDG nesting holds.
    if (IS.hdr(B.Node) != InvalidNode)
      MakePostexit(B.Node, B.Label, Stop, InvalidNode);
    else
      E.addEdge(B.Node, Stop, B.Label);
  }

  E.addEdge(Start, Stop, CfgLabel::Z);
  E.setEntry(Start);
  return Result;
}

bool ptran::verifyEcfg(const Ecfg &Ext, const Cfg &C,
                       const IntervalStructure &IS, DiagnosticEngine &Diags) {
  unsigned Before = Diags.errorCount();
  const Cfg &E = Ext.cfg();
  const Digraph &G = E.graph();

  auto Error = [&](std::string Message) { Diags.error(std::move(Message)); };

  // Every header has a preheader whose sole non-pseudo out-edge is the
  // unconditional edge to the header.
  for (NodeId H : IS.headers()) {
    NodeId Ph = Ext.preheaderOf(H);
    if (Ph == InvalidNode) {
      Error("header " + C.nodeName(H) + " has no preheader");
      continue;
    }
    if (E.nodeType(Ph) != CfgNodeType::Preheader)
      Error("preheader node has wrong type");
    bool FoundU = false;
    for (EdgeId Out : G.outEdges(Ph)) {
      const Digraph::Edge &Ed = G.edge(Out);
      CfgLabel L = static_cast<CfgLabel>(Ed.Label);
      if (L == CfgLabel::U) {
        if (Ed.To != H)
          Error("preheader U edge does not target its header");
        FoundU = true;
      } else if (L != CfgLabel::Z) {
        Error("preheader has an out-edge that is neither U nor Z");
      } else if (E.nodeType(Ed.To) != CfgNodeType::Postexit) {
        Error("preheader pseudo edge does not target a postexit");
      }
    }
    if (!FoundU)
      Error("preheader lacks its unconditional edge to the header");

    // In the ECFG, the header's only non-latch predecessor is the
    // preheader: every original entry edge was rerouted.
    for (EdgeId In : G.inEdges(H)) {
      NodeId P = G.edge(In).From;
      if (P == Ph)
        continue;
      if (P < Ext.numOriginalNodes() && !IS.contains(H, P))
        Error("interval entry edge into " + C.nodeName(H) +
              " was not rerouted through the preheader");
    }
  }

  // Postexits: one in-edge from the exiting node, one pseudo in-edge from
  // the right preheader, one U out-edge.
  for (const Ecfg::PostexitInfo &Info : Ext.postexits()) {
    if (E.nodeType(Info.Postexit) != CfgNodeType::Postexit) {
      Error("postexit node has wrong type");
      continue;
    }
    unsigned RealIn = 0, PseudoIn = 0;
    for (EdgeId In : G.inEdges(Info.Postexit)) {
      const Digraph::Edge &Ed = G.edge(In);
      if (static_cast<CfgLabel>(Ed.Label) == CfgLabel::Z) {
        ++PseudoIn;
        if (Ed.From != Ext.preheaderOf(Info.ExitedHeader))
          Error("postexit pseudo edge comes from the wrong preheader");
      } else {
        ++RealIn;
        if (Ed.From != Info.From)
          Error("postexit real in-edge comes from the wrong node");
      }
    }
    if (RealIn != 1 || PseudoIn != 1)
      Error("postexit must have exactly one real and one pseudo in-edge");
    if (G.outDegree(Info.Postexit) != 1)
      Error("postexit must have exactly one out-edge");
  }

  // START has a U edge into the procedure and the pseudo edge to STOP.
  bool StartToStop = false;
  for (EdgeId Out : G.outEdges(Ext.start())) {
    const Digraph::Edge &Ed = G.edge(Out);
    if (static_cast<CfgLabel>(Ed.Label) == CfgLabel::Z) {
      if (Ed.To != Ext.stop())
        Error("START pseudo edge does not target STOP");
      StartToStop = true;
    }
  }
  if (!StartToStop)
    Error("missing START -> STOP pseudo edge");

  // Every node of the original CFG that was reachable stays reachable
  // from START.
  DfsResult OrigDfs(CsrGraph(C.graph()).view(), C.entry());
  DfsResult ExtDfs(CsrGraph(G).view(), Ext.start());
  for (NodeId N = 0; N < C.numNodes(); ++N)
    if (OrigDfs.isReachable(N) && !ExtDfs.isReachable(N))
      Error("node " + C.nodeName(N) + " lost reachability in the ECFG");

  return Diags.errorCount() == Before;
}
