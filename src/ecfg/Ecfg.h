//===--- ecfg/Ecfg.h - Extended control flow graph --------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The extended control flow graph (ECFG) of Section 2: the original CFG
/// augmented with
///
///   - a PREHEADER node per interval (loop), with every interval-entry
///     edge rerouted through it and an unconditional edge to the header;
///   - a POSTEXIT node per interval-exit edge, splitting the exit, plus a
///     pseudo (Z) edge from the exiting interval's preheader to it;
///   - START and STOP nodes bracketing the procedure, with a pseudo edge
///     START -> STOP.
///
/// The pseudo edges are never taken at run time; they exist so that the
/// forward control dependence graph becomes rooted at START and nests
/// every interval under its preheader (Figure 3).
///
/// Two deliberate generalizations of the paper's step 4/5 (documented in
/// DESIGN.md): the START edge is routed through the entry's preheader when
/// the first statement itself heads a loop, and procedure exits taken from
/// inside a loop (e.g. RETURN in a loop) get a POSTEXIT like any other
/// interval exit. Both are required for the FCDG's interval nesting to
/// hold on such programs.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_ECFG_ECFG_H
#define PTRAN_ECFG_ECFG_H

#include "cfg/Cfg.h"
#include "interval/Intervals.h"

namespace ptran {

/// The extended CFG. Nodes 0 .. numOriginalNodes()-1 coincide with the
/// nodes of the source CFG; synthesized nodes follow.
class Ecfg {
public:
  const Cfg &cfg() const { return E; }
  Cfg &cfgMutable() { return E; }

  NodeId start() const { return Start; }
  NodeId stop() const { return Stop; }

  /// Number of nodes shared with the original CFG.
  unsigned numOriginalNodes() const { return NumOriginal; }

  /// The preheader of header \p H, or InvalidNode.
  NodeId preheaderOf(NodeId H) const {
    return H < PreheaderOfNode.size() ? PreheaderOfNode[H] : InvalidNode;
  }

  /// The header served by preheader \p Ph, or InvalidNode.
  NodeId headerOf(NodeId Ph) const {
    return Ph < HeaderOfNode.size() ? HeaderOfNode[Ph] : InvalidNode;
  }

  /// The synthetic ITERATE node of header \p H, or InvalidNode. Iterate
  /// nodes are isolated in the ECFG itself; only the forward control
  /// dependence construction wires them up.
  NodeId iterateOf(NodeId H) const {
    return H < IterateOfNode.size() ? IterateOfNode[H] : InvalidNode;
  }

  /// The header whose ITERATE node is \p It, or InvalidNode.
  NodeId iterateHeaderOf(NodeId It) const {
    return It < IterateHeaderOfNode.size() ? IterateHeaderOfNode[It]
                                           : InvalidNode;
  }

  /// Description of one POSTEXIT node.
  struct PostexitInfo {
    NodeId Postexit = InvalidNode;
    /// Source node of the split exit.
    NodeId From = InvalidNode;
    /// Destination of the exit; InvalidNode when the exit leaves the
    /// procedure (connected to STOP).
    NodeId To = InvalidNode;
    /// Label of the original exit branch.
    CfgLabel Label = CfgLabel::U;
    /// Header of the (innermost) interval being exited.
    NodeId ExitedHeader = InvalidNode;
  };
  const std::vector<PostexitInfo> &postexits() const { return Postexits; }

  /// \returns the PostexitInfo of node \p Pe, or null.
  const PostexitInfo *postexitInfo(NodeId Pe) const;

  friend Ecfg buildEcfg(const Cfg &C, const IntervalStructure &IS);

private:
  Cfg E;
  NodeId Start = InvalidNode;
  NodeId Stop = InvalidNode;
  unsigned NumOriginal = 0;
  std::vector<NodeId> PreheaderOfNode;
  std::vector<NodeId> HeaderOfNode;
  std::vector<NodeId> IterateOfNode;
  std::vector<NodeId> IterateHeaderOfNode;
  std::vector<PostexitInfo> Postexits;
};

/// Builds the ECFG of \p C per the algorithm in Section 2 of the paper.
/// \p IS must have been computed on \p C.
Ecfg buildEcfg(const Cfg &C, const IntervalStructure &IS);

/// Checks the structural invariants listed in the file comment. Reports
/// violations to \p Diags; \returns true when all hold.
bool verifyEcfg(const Ecfg &E, const Cfg &C, const IntervalStructure &IS,
                DiagnosticEngine &Diags);

} // namespace ptran

#endif // PTRAN_ECFG_ECFG_H
