//===--- cdg/ControlDependence.cpp - (Forward) control dependence ---------===//

#include "cdg/ControlDependence.h"

#include "graph/DepthFirst.h"
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>
#include <tuple>

using namespace ptran;

namespace {

/// Builds the forward ECFG: the ECFG minus interval back edges, with any
/// node left successor-free (a dangling latch) connected to STOP so the
/// postdominator tree stays rooted.
Digraph buildForwardGraph(const Ecfg &E, const IntervalStructure &IS) {
  const Digraph &G = E.cfg().graph();
  Digraph Forward(G.numNodes());
  unsigned NumOrig = E.numOriginalNodes();

  // Where a node "logically sits" for back-edge classification: postexits
  // inherit the position of the node whose exit they split (an edge that
  // leaves an inner loop and re-enters an outer header is that outer
  // loop's latch, and in the ECFG its source is a postexit).
  auto Anchor = [&](NodeId N) -> NodeId {
    if (N < NumOrig)
      return N;
    if (const Ecfg::PostexitInfo *Info = E.postexitInfo(N))
      return Info->From;
    return InvalidNode;
  };

  for (EdgeId EId = 0; EId < G.numEdgeSlots(); ++EId) {
    if (!G.isLive(EId))
      continue;
    const Digraph::Edge &Ed = G.edge(EId);
    // Interval back edge: a latch inside the body targeting its header.
    // Re-target it at the loop's ITERATE node: the per-iteration view
    // ends there, and the iterate node's pseudo edges below stand for
    // "some later iteration exits the loop".
    NodeId From = Anchor(Ed.From);
    bool IsBack = Ed.To < NumOrig && From != InvalidNode &&
                  IS.isHeader(Ed.To) && IS.contains(Ed.To, From);
    if (IsBack) {
      NodeId It = E.iterateOf(Ed.To);
      assert(It != InvalidNode && "header without an iterate node");
      Forward.addEdge(Ed.From, It, Ed.Label);
      continue;
    }
    Forward.addEdge(Ed.From, Ed.To, Ed.Label);
  }

  // Pseudo edges from each loop's iterate node to every postexit through
  // which control can leave that loop (including exits of inner loops
  // that jump past this one). These carry zero frequency but make code
  // following the loop postdominate the entire body, so it hangs under
  // the enclosing context in the FCDG — exactly Figure 3's shape, where
  // the final CONTINUE is control dependent on START.
  for (NodeId H : IS.headers()) {
    NodeId It = E.iterateOf(H);
    bool Any = false;
    for (const Ecfg::PostexitInfo &Info : E.postexits()) {
      if (!IS.contains(H, Info.From))
        continue;
      bool LeavesH =
          Info.To == InvalidNode || !IS.contains(H, Info.To);
      if (!LeavesH)
        continue;
      Forward.addEdge(It, Info.Postexit,
                      static_cast<LabelId>(CfgLabel::Z));
      Any = true;
    }
    if (!Any) // A loop with no way out (the paper assumes termination).
      Forward.addEdge(It, E.stop(), static_cast<LabelId>(CfgLabel::Z));
  }

  // Safety net: any node left without successors (cannot happen for
  // well-formed ECFGs) keeps the postdominator tree rooted.
  for (NodeId N = 0; N < Forward.numNodes(); ++N)
    if (N != E.stop() && Forward.outDegree(N) == 0 && G.outDegree(N) > 0)
      Forward.addEdge(N, E.stop(), static_cast<LabelId>(CfgLabel::U));
  return Forward;
}

} // namespace

ControlDependence::ControlDependence(const Ecfg &E,
                                     const IntervalStructure &IS)
    : ForwardG(buildForwardGraph(E, IS)),
      FcdgGraph(E.cfg().graph().numNodes()),
      Pdt(CsrGraph(ForwardG).view(), E.stop(),
          DominatorTree::Direction::Post) {
  // FOW over the forward graph: for every edge (A, B, l) where B does not
  // postdominate A, every node on the postdominator-tree path
  // [B .. ipostdom(A)) is control dependent on (A, l). Two same-labelled
  // edges from one node (only a preheader's pseudo Z edges) may generate
  // the same dependence; each (A, Y, l) triple is kept once.
  std::set<std::tuple<NodeId, NodeId, LabelId>> Emitted;
  Digraph Cdg(ForwardG.numNodes());
  for (EdgeId EId = 0; EId < ForwardG.numEdgeSlots(); ++EId) {
    const Digraph::Edge &Ed = ForwardG.edge(EId);
    if (!Pdt.isReachable(Ed.From) || !Pdt.isReachable(Ed.To))
      continue;
    if (Pdt.dominates(Ed.To, Ed.From))
      continue;
    NodeId Fence = Pdt.idom(Ed.From);
    for (NodeId Y = Ed.To; Y != Fence; Y = Pdt.idom(Y)) {
      assert(Y != InvalidNode &&
             "walked past the postdominator root; fence must be an ancestor");
      if (Emitted.insert({Ed.From, Y, Ed.Label}).second)
        Cdg.addEdge(Ed.From, Y, Ed.Label);
    }
  }

  // The forward graph is acyclic, and so is its control dependence; the
  // DFS filter below is a safety net only (it also drops dependence edges
  // not reachable from START, e.g. inside code that cannot reach STOP).
  DfsResult Dfs(CsrGraph(Cdg).view(), E.start());
  for (EdgeId EId = 0; EId < Cdg.numEdgeSlots(); ++EId) {
    const Digraph::Edge &Ed = Cdg.edge(EId);
    DfsEdgeKind Kind = Dfs.edgeKind(EId);
    if (Kind == DfsEdgeKind::Retreating || Kind == DfsEdgeKind::Unreached)
      continue;
    FcdgGraph.addEdge(Ed.From, Ed.To, Ed.Label);
  }

  CsrGraph FcdgCsr(FcdgGraph);
  std::optional<std::vector<NodeId>> Order =
      topologicalOrder(FcdgCsr.view());
  if (!Order)
    reportFatalError("forward control dependence graph is cyclic");

  // Keep only nodes reachable from START in the FCDG, in topological
  // order; isolated nodes (e.g. STOP) carry no estimation state.
  DfsResult FDfs(FcdgCsr.view(), E.start());
  Arena.PosOf.assign(FcdgGraph.numNodes(), FlowArena::InvalidPosition);
  for (NodeId N : *Order)
    if (FDfs.isReachable(N))
      Arena.Nodes.push_back(N);
  for (unsigned P = 0; P < Arena.Nodes.size(); ++P)
    Arena.PosOf[Arena.Nodes[P]] = P;

  // Freeze the FCDG's out-edges into the arena. Per node: label groups in
  // first-appearance order with children in insertion order (the
  // labelsOf/childrenOf contract), plus the raw insertion-order edge list
  // (the equation-3 accumulation order). Children are stored as topo
  // positions so the sweeps index dense position-based buffers directly.
  unsigned NumPos = Arena.numPositions();
  Arena.GroupBegin.assign(NumPos + 1, 0);
  Arena.RawBegin.assign(NumPos + 1, 0);
  struct LocalGroup {
    CfgLabel Label;
    uint32_t Count;
    uint32_t Global;
  };
  std::vector<LocalGroup> Local;
  std::vector<uint32_t> Fill;
  for (unsigned P = 0; P < NumPos; ++P) {
    NodeId U = Arena.Nodes[P];
    Local.clear();
    for (EdgeId EId : FcdgGraph.outEdges(U)) {
      CfgLabel L = static_cast<CfgLabel>(FcdgGraph.edge(EId).Label);
      auto It = std::find_if(Local.begin(), Local.end(),
                             [&](const LocalGroup &G) {
                               return G.Label == L;
                             });
      if (It == Local.end())
        Local.push_back({L, 1, 0});
      else
        ++It->Count;
    }
    uint32_t ChildCursor = static_cast<uint32_t>(Arena.Children.size());
    Fill.clear();
    for (LocalGroup &G : Local) {
      G.Global = static_cast<uint32_t>(Arena.Groups.size());
      Arena.Groups.push_back({G.Label, ChildCursor, ChildCursor + G.Count});
      Fill.push_back(ChildCursor);
      ChildCursor += G.Count;
    }
    Arena.Children.resize(ChildCursor);
    for (EdgeId EId : FcdgGraph.outEdges(U)) {
      const Digraph::Edge &Ed = FcdgGraph.edge(EId);
      CfgLabel L = static_cast<CfgLabel>(Ed.Label);
      auto It = std::find_if(Local.begin(), Local.end(),
                             [&](const LocalGroup &G) {
                               return G.Label == L;
                             });
      assert(It != Local.end());
      unsigned LocalIdx = static_cast<unsigned>(It - Local.begin());
      unsigned ChildPos = Arena.PosOf[Ed.To];
      assert(ChildPos != FlowArena::InvalidPosition &&
             "FCDG edge target must be START-reachable");
      Arena.Children[Fill[LocalIdx]++] = ChildPos;
      Arena.Raw.push_back({Ed.To, It->Global});
    }
    Arena.GroupBegin[P + 1] = static_cast<uint32_t>(Arena.Groups.size());
    Arena.RawBegin[P + 1] = static_cast<uint32_t>(Arena.Raw.size());
  }

  // Enumerate control conditions.
  std::set<ControlCondition> Seen;
  for (EdgeId EId = 0; EId < FcdgGraph.numEdgeSlots(); ++EId) {
    if (!FcdgGraph.isLive(EId))
      continue;
    const Digraph::Edge &Ed = FcdgGraph.edge(EId);
    Seen.insert({Ed.From, static_cast<CfgLabel>(Ed.Label)});
  }
  Conds.assign(Seen.begin(), Seen.end());
}

std::vector<NodeId> ControlDependence::childrenOf(NodeId U,
                                                  CfgLabel L) const {
  std::vector<NodeId> Kids;
  for (EdgeId EId : FcdgGraph.outEdges(U)) {
    const Digraph::Edge &Ed = FcdgGraph.edge(EId);
    if (static_cast<CfgLabel>(Ed.Label) == L)
      Kids.push_back(Ed.To);
  }
  return Kids;
}

std::string ControlDependence::dot(const Cfg &Ecfg,
                                   std::string_view Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId N : Arena.Nodes) {
    OS << "  n" << N << " [label=\"" << Ecfg.nodeName(N) << "\"";
    CfgNodeType Ty = Ecfg.nodeType(N);
    if (Ty != CfgNodeType::Other && Ty != CfgNodeType::Header)
      OS << ", style=dashed";
    OS << "];\n";
  }
  for (EdgeId E = 0; E < FcdgGraph.numEdgeSlots(); ++E) {
    if (!FcdgGraph.isLive(E))
      continue;
    const Digraph::Edge &Ed = FcdgGraph.edge(E);
    CfgLabel L = static_cast<CfgLabel>(Ed.Label);
    OS << "  n" << Ed.From << " -> n" << Ed.To << " [label=\""
       << cfgLabelName(L) << "\"";
    if (L == CfgLabel::Z)
      OS << ", style=dashed";
    OS << "];\n";
  }
  OS << "}\n";
  return OS.str();
}

std::vector<CfgLabel> ControlDependence::labelsOf(NodeId U) const {
  std::vector<CfgLabel> Labels;
  for (EdgeId EId : FcdgGraph.outEdges(U)) {
    CfgLabel L = static_cast<CfgLabel>(FcdgGraph.edge(EId).Label);
    if (std::find(Labels.begin(), Labels.end(), L) == Labels.end())
      Labels.push_back(L);
  }
  return Labels;
}
