//===--- cdg/ControlDependence.h - (Forward) control dependence -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence per Ferrante-Ottenstein-Warren (Definition 2 in the
/// paper) and the *forward* control dependence graph (FCDG) the estimation
/// framework runs on.
///
/// The FCDG is the control dependence of the **forward ECFG**: the
/// extended CFG with every interval back edge removed (dangling latches
/// are routed to STOP so postdominators stay defined). This is the
/// acyclic form of [Hsi88, CHH89] that the paper's "ignoring all back
/// edges" refers to, and it is the construction under which the paper's
/// recurrences are exact: computing control dependence on the cyclic
/// ECFG and merely deleting the CDG's cyclic edges leaves loop-carried
/// dependences (e.g. a latch branch "deciding" the next iteration's body)
/// in the graph, and equation 3 of Section 3 then double-counts node
/// frequencies — observable on Livermore kernel 2's stride-halving loop.
/// Thanks to the ECFG's preheaders and pseudo edges, every interval hangs
/// below its preheader and the graph is rooted at START (Figure 3).
///
/// Besides the Digraph form, the construction freezes the FCDG into a
/// FlowArena: a per-function arena of CSR arrays indexed by *topological
/// position* rather than node id, so the Section 3 frequency recurrences
/// (top-down) and the Section 4/5 TIME/VAR recurrences (bottom-up) become
/// linear sweeps over contiguous memory with no per-node allocation. See
/// DESIGN.md §11 for the layout contract.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_CDG_CONTROLDEPENDENCE_H
#define PTRAN_CDG_CONTROLDEPENDENCE_H

#include "ecfg/Ecfg.h"
#include "graph/Dominators.h"
#include "interval/Intervals.h"

#include <optional>
#include <vector>

namespace ptran {

/// A control condition: "node U takes the branch labelled L". These are
/// the entities Section 3 profiles and Sections 4-5 weight by.
struct ControlCondition {
  NodeId Node = InvalidNode;
  CfgLabel Label = CfgLabel::U;

  bool operator==(const ControlCondition &O) const = default;
  bool operator<(const ControlCondition &O) const {
    return Node != O.Node ? Node < O.Node : Label < O.Label;
  }
};

/// The FCDG flattened into topologically-indexed CSR arrays. Positions
/// 0 .. numPositions()-1 enumerate the FCDG's START-reachable nodes in
/// topological order (parents before children), so a forward sweep is the
/// Section 3 top-down pass and a reverse sweep is the Section 4/5
/// bottom-up pass — both linear over contiguous arrays.
///
/// Two views of each node's out-edges are kept, because the two passes
/// need different — and exactly reproduced — iteration orders:
///
///   - raw edges in edge-insertion order (rawBegin/rawEnd), preserving
///     the equation-3 accumulation order of the old Digraph walk;
///   - label groups (groupsBegin/groupsEnd) in label-first-appearance
///     order, each group's children in insertion order — the L(u) and
///     C(u, l) sets of Section 5 in exactly the order labelsOf()/
///     childrenOf() used to produce them.
///
/// Group indices are global across the arena and double as dense
/// condition ids: Frequencies::GroupFreq is indexed by them.
class FlowArena {
public:
  /// One (node, label) out-edge group: the condition (node(P), Label) and
  /// its children as positions [ChildBegin, ChildEnd) in children order.
  struct Group {
    CfgLabel Label = CfgLabel::U;
    uint32_t ChildBegin = 0;
    uint32_t ChildEnd = 0;
  };
  /// One FCDG edge in insertion order: the target *node id* (NODE_FREQ is
  /// node-indexed) and the global index of the group it belongs to.
  struct RawEdge {
    NodeId To = InvalidNode;
    uint32_t Group = 0;
  };

  static constexpr unsigned InvalidPosition = static_cast<unsigned>(-1);

  unsigned numPositions() const {
    return static_cast<unsigned>(Nodes.size());
  }
  /// ECFG node at topological position \p P.
  NodeId node(unsigned P) const { return Nodes[P]; }
  /// Topological position of \p N, InvalidPosition when N is not in the
  /// FCDG (unreachable from START).
  unsigned positionOf(NodeId N) const { return PosOf[N]; }

  unsigned numGroups() const { return static_cast<unsigned>(Groups.size()); }
  uint32_t groupsBegin(unsigned P) const { return GroupBegin[P]; }
  uint32_t groupsEnd(unsigned P) const { return GroupBegin[P + 1]; }
  const Group &group(uint32_t G) const { return Groups[G]; }
  /// Child topological position \p C (index into the group's
  /// [ChildBegin, ChildEnd) range).
  unsigned child(uint32_t C) const { return Children[C]; }

  uint32_t rawBegin(unsigned P) const { return RawBegin[P]; }
  uint32_t rawEnd(unsigned P) const { return RawBegin[P + 1]; }
  const RawEdge &raw(uint32_t R) const { return Raw[R]; }

private:
  friend class ControlDependence;
  std::vector<NodeId> Nodes;       ///< Position -> node (the topo order).
  std::vector<unsigned> PosOf;     ///< Node -> position (InvalidPosition).
  std::vector<uint32_t> GroupBegin;///< numPositions + 1 offsets.
  std::vector<Group> Groups;
  std::vector<uint32_t> Children;  ///< Child topological positions.
  std::vector<uint32_t> RawBegin;  ///< numPositions + 1 offsets.
  std::vector<RawEdge> Raw;
};

/// The forward control dependence graph and its supporting structures.
class ControlDependence {
public:
  /// Computes the FCDG for \p E. \p IS must be the interval structure of
  /// the CFG \p E was built from (it identifies the back edges). Nodes
  /// that cannot reach STOP even in the forward graph acquire no control
  /// dependences; the paper assumes the program completes execution.
  ControlDependence(const Ecfg &E, const IntervalStructure &IS);

  /// The acyclic "forward ECFG" the dependence was computed on: the ECFG
  /// minus interval back edges, with dangling latches connected to STOP.
  const Digraph &forwardGraph() const { return ForwardG; }

  /// Forward control dependence graph over the ECFG's node ids.
  /// Guaranteed acyclic.
  const Digraph &fcdg() const { return FcdgGraph; }

  /// The FCDG frozen into topologically-indexed CSR arrays — what the
  /// frequency and TIME/VAR sweeps actually run on.
  const FlowArena &arena() const { return Arena; }

  /// The postdominator tree of the forward ECFG.
  const DominatorTree &postDominators() const { return Pdt; }

  /// Topological order of the FCDG (parents before children), covering
  /// every node reachable from START in the FCDG.
  const std::vector<NodeId> &topoOrder() const { return Arena.Nodes; }

  /// All control conditions (U, L) that appear as FCDG edge labels,
  /// sorted. Only branch points appear: real conditionals, preheaders
  /// (loop frequency on U, pseudo on Z) and START.
  const std::vector<ControlCondition> &conditions() const { return Conds; }

  /// FCDG children of \p U reached via label \p L — the set C(u, l) of
  /// Section 5. Allocates; the hot paths read the arena instead.
  std::vector<NodeId> childrenOf(NodeId U, CfgLabel L) const;

  /// Distinct labels on FCDG out-edges of \p U — the set L(u) of
  /// Section 5. Allocates; the hot paths read the arena instead.
  std::vector<CfgLabel> labelsOf(NodeId U) const;

  /// Graphviz rendering of the FCDG; node names come from \p Ecfg (the
  /// ECFG the dependence was computed for).
  std::string dot(const Cfg &Ecfg, std::string_view Title) const;

private:
  Digraph ForwardG;
  Digraph FcdgGraph;
  DominatorTree Pdt;
  FlowArena Arena;
  std::vector<ControlCondition> Conds;
};

} // namespace ptran

#endif // PTRAN_CDG_CONTROLDEPENDENCE_H
