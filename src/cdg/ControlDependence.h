//===--- cdg/ControlDependence.h - (Forward) control dependence -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control dependence per Ferrante-Ottenstein-Warren (Definition 2 in the
/// paper) and the *forward* control dependence graph (FCDG) the estimation
/// framework runs on.
///
/// The FCDG is the control dependence of the **forward ECFG**: the
/// extended CFG with every interval back edge removed (dangling latches
/// are routed to STOP so postdominators stay defined). This is the
/// acyclic form of [Hsi88, CHH89] that the paper's "ignoring all back
/// edges" refers to, and it is the construction under which the paper's
/// recurrences are exact: computing control dependence on the cyclic
/// ECFG and merely deleting the CDG's cyclic edges leaves loop-carried
/// dependences (e.g. a latch branch "deciding" the next iteration's body)
/// in the graph, and equation 3 of Section 3 then double-counts node
/// frequencies — observable on Livermore kernel 2's stride-halving loop.
/// Thanks to the ECFG's preheaders and pseudo edges, every interval hangs
/// below its preheader and the graph is rooted at START (Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_CDG_CONTROLDEPENDENCE_H
#define PTRAN_CDG_CONTROLDEPENDENCE_H

#include "ecfg/Ecfg.h"
#include "graph/Dominators.h"
#include "interval/Intervals.h"

#include <optional>
#include <vector>

namespace ptran {

/// A control condition: "node U takes the branch labelled L". These are
/// the entities Section 3 profiles and Sections 4-5 weight by.
struct ControlCondition {
  NodeId Node = InvalidNode;
  CfgLabel Label = CfgLabel::U;

  bool operator==(const ControlCondition &O) const = default;
  bool operator<(const ControlCondition &O) const {
    return Node != O.Node ? Node < O.Node : Label < O.Label;
  }
};

/// The forward control dependence graph and its supporting structures.
class ControlDependence {
public:
  /// Computes the FCDG for \p E. \p IS must be the interval structure of
  /// the CFG \p E was built from (it identifies the back edges). Nodes
  /// that cannot reach STOP even in the forward graph acquire no control
  /// dependences; the paper assumes the program completes execution.
  ControlDependence(const Ecfg &E, const IntervalStructure &IS);

  /// The acyclic "forward ECFG" the dependence was computed on: the ECFG
  /// minus interval back edges, with dangling latches connected to STOP.
  const Digraph &forwardGraph() const { return ForwardG; }

  /// Forward control dependence graph over the ECFG's node ids.
  /// Guaranteed acyclic.
  const Digraph &fcdg() const { return FcdgGraph; }

  /// The postdominator tree of the forward ECFG.
  const DominatorTree &postDominators() const { return Pdt; }

  /// Topological order of the FCDG (parents before children), covering
  /// every node reachable from START in the FCDG.
  const std::vector<NodeId> &topoOrder() const { return Topo; }

  /// All control conditions (U, L) that appear as FCDG edge labels,
  /// sorted. Only branch points appear: real conditionals, preheaders
  /// (loop frequency on U, pseudo on Z) and START.
  const std::vector<ControlCondition> &conditions() const { return Conds; }

  /// FCDG children of \p U reached via label \p L — the set C(u, l) of
  /// Section 5.
  std::vector<NodeId> childrenOf(NodeId U, CfgLabel L) const;

  /// Distinct labels on FCDG out-edges of \p U — the set L(u) of
  /// Section 5.
  std::vector<CfgLabel> labelsOf(NodeId U) const;

  /// Graphviz rendering of the FCDG; node names come from \p Ecfg (the
  /// ECFG the dependence was computed for).
  std::string dot(const Cfg &Ecfg, std::string_view Title) const;

private:
  Digraph ForwardG;
  Digraph FcdgGraph;
  DominatorTree Pdt;
  std::vector<NodeId> Topo;
  std::vector<ControlCondition> Conds;
};

} // namespace ptran

#endif // PTRAN_CDG_CONTROLDEPENDENCE_H
