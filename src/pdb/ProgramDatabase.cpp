//===--- pdb/ProgramDatabase.cpp - Persistent profile store ---------------===//

#include "pdb/ProgramDatabase.h"

#include "profile/ProfileFile.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ptran;

uint64_t ProgramDatabase::structuralFingerprint(const FunctionAnalysis &FA) {
  // The hash itself lives in the profile layer so ProfileFile (which the
  // database links against, not vice versa) can bind sections to the very
  // same values the session cache keys use.
  return structuralFingerprintOf(FA);
}

void ProgramDatabase::accumulateTotals(const FunctionAnalysis &FA,
                                       const FrequencyTotals &Totals) {
  FunctionRecord &Rec = Functions[FA.function().name()];
  Rec.Fingerprint = structuralFingerprint(FA);
  for (const auto &[Cond, Total] : Totals.Cond)
    Rec.Cond[{Cond.Node, static_cast<unsigned>(Cond.Label)}] += Total;
}

void ProgramDatabase::accumulateLoopMoments(
    const Function &F, StmtId HeaderStmt,
    const LoopFrequencyStats::Moments &M) {
  FunctionRecord &Rec = Functions[F.name()];
  LoopFrequencyStats::Moments &Acc = Rec.Loops[HeaderStmt];
  Acc.Entries += M.Entries;
  Acc.Sum += M.Sum;
  Acc.SumSq += M.SumSq;
}

FrequencyTotals ProgramDatabase::totalsFor(const FunctionAnalysis &FA) const {
  FrequencyTotals Out;
  auto It = Functions.find(FA.function().name());
  if (It == Functions.end() ||
      It->second.Fingerprint != structuralFingerprint(FA))
    return Out; // Ok stays false.
  for (const auto &[Key, Total] : It->second.Cond)
    Out.Cond[{Key.first, static_cast<CfgLabel>(Key.second)}] = Total;
  Out.Node = nodeTotalsFromConds(FA, Out.Cond);
  Out.Ok = true;
  return Out;
}

const LoopFrequencyStats::Moments *
ProgramDatabase::momentsFor(const Function &F, StmtId HeaderStmt) const {
  auto It = Functions.find(F.name());
  if (It == Functions.end())
    return nullptr;
  auto LIt = It->second.Loops.find(HeaderStmt);
  return LIt == It->second.Loops.end() ? nullptr : &LIt->second;
}

std::string ProgramDatabase::serialize() const {
  std::ostringstream OS;
  OS << "ptran-pdb 1\n";
  OS << "runs " << Runs << "\n";
  OS.precision(17);
  for (const auto &[Name, Rec] : Functions) {
    OS << "function " << Name << " " << Rec.Fingerprint << "\n";
    for (const auto &[Key, Total] : Rec.Cond)
      OS << "cond " << Key.first << " " << Key.second << " " << Total << "\n";
    for (const auto &[Header, M] : Rec.Loops)
      OS << "loop " << Header << " " << M.Entries << " " << M.Sum << " "
         << M.SumSq << "\n";
    OS << "end\n";
  }
  return OS.str();
}

std::optional<ProgramDatabase>
ProgramDatabase::deserialize(std::string_view Text, DiagnosticEngine &Diags) {
  ProgramDatabase Db;
  std::istringstream IS{std::string(Text)};
  std::string Line;
  unsigned LineNo = 0;
  FunctionRecord *Cur = nullptr;

  auto Error = [&](const std::string &Message) {
    Diags.error(SourceLoc{LineNo, 1}, "program database: " + Message);
  };

  if (!std::getline(IS, Line) || trim(Line) != "ptran-pdb 1") {
    Error("missing or unsupported header");
    return std::nullopt;
  }
  ++LineNo;

  while (std::getline(IS, Line)) {
    ++LineNo;
    std::istringstream LS(Line);
    std::string Tag;
    if (!(LS >> Tag) || Tag.empty())
      continue;
    if (Tag == "runs") {
      if (!(LS >> Db.Runs)) {
        Error("malformed runs line");
        return std::nullopt;
      }
    } else if (Tag == "function") {
      std::string Name;
      uint64_t Fp = 0;
      if (!(LS >> Name >> Fp)) {
        Error("malformed function line");
        return std::nullopt;
      }
      Cur = &Db.Functions[Name];
      Cur->Fingerprint = Fp;
    } else if (Tag == "cond") {
      NodeId Node = 0;
      unsigned Label = 0;
      double Total = 0;
      if (!Cur || !(LS >> Node >> Label >> Total)) {
        Error("malformed cond line");
        return std::nullopt;
      }
      Cur->Cond[{Node, Label}] += Total;
    } else if (Tag == "loop") {
      StmtId Header = 0;
      LoopFrequencyStats::Moments M;
      if (!Cur || !(LS >> Header >> M.Entries >> M.Sum >> M.SumSq)) {
        Error("malformed loop line");
        return std::nullopt;
      }
      Cur->Loops[Header] = M;
    } else if (Tag == "end") {
      Cur = nullptr;
    } else {
      Error("unknown record tag '" + Tag + "'");
      return std::nullopt;
    }
  }
  return Db;
}

void ProgramDatabase::merge(const ProgramDatabase &Other,
                            DiagnosticEngine &Diags) {
  Runs += Other.Runs;
  for (const auto &[Name, Rec] : Other.Functions) {
    auto It = Functions.find(Name);
    if (It == Functions.end()) {
      Functions[Name] = Rec;
      continue;
    }
    if (It->second.Fingerprint != Rec.Fingerprint) {
      Diags.warning(SourceLoc(),
                    "program database: fingerprint mismatch for function " +
                        Name + "; skipping its records");
      continue;
    }
    for (const auto &[Key, Total] : Rec.Cond)
      It->second.Cond[Key] += Total;
    for (const auto &[Header, M] : Rec.Loops) {
      LoopFrequencyStats::Moments &Acc = It->second.Loops[Header];
      Acc.Entries += M.Entries;
      Acc.Sum += M.Sum;
      Acc.SumSq += M.SumSq;
    }
  }
}

bool ProgramDatabase::saveToFile(const std::string &Path,
                                 DiagnosticEngine &Diags) const {
  std::ofstream OS(Path);
  if (!OS) {
    Diags.error("cannot open program database file " + Path +
                " for writing");
    return false;
  }
  OS << serialize();
  return static_cast<bool>(OS);
}

std::optional<ProgramDatabase>
ProgramDatabase::loadFromFile(const std::string &Path,
                              DiagnosticEngine &Diags) {
  std::ifstream IS(Path);
  if (!IS) {
    Diags.error("cannot open program database file " + Path);
    return std::nullopt;
  }
  std::ostringstream Buffer;
  Buffer << IS.rdbuf();
  return deserialize(Buffer.str(), Diags);
}
