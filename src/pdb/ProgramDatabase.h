//===--- pdb/ProgramDatabase.h - Persistent profile store -------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The PTRAN-style program database of Section 3: TOTAL_FREQ values (and
/// loop-frequency moments for the variance analysis) are accumulated
/// across program runs and persisted, "so as to get a more representative
/// set of frequency values". The store is keyed by procedure name, ECFG
/// node id and label, which is stable as long as the program (and the
/// analysis pipeline) is unchanged; a structural fingerprint guards
/// against mixing incompatible profiles.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PDB_PROGRAMDATABASE_H
#define PTRAN_PDB_PROGRAMDATABASE_H

#include "core/Analysis.h"
#include "profile/ProfileRuntime.h"

#include <map>
#include <optional>
#include <string>

namespace ptran {

/// Accumulated profile data for one program.
class ProgramDatabase {
public:
  ProgramDatabase() = default;

  /// Folds one run's recovered totals for \p F into the store. \p FA is
  /// used to fingerprint the function's shape.
  void accumulateTotals(const FunctionAnalysis &FA,
                        const FrequencyTotals &Totals);

  /// Folds one run's loop-frequency moments for \p F into the store.
  void accumulateLoopMoments(const Function &F, StmtId HeaderStmt,
                             const LoopFrequencyStats::Moments &M);

  /// Accumulated totals of \p FA's function. Returns totals with Ok ==
  /// false if the store has no (or fingerprint-incompatible) data.
  FrequencyTotals totalsFor(const FunctionAnalysis &FA) const;

  /// Accumulated loop moments, or null.
  const LoopFrequencyStats::Moments *momentsFor(const Function &F,
                                                StmtId HeaderStmt) const;

  /// Number of accumulate calls folded in (roughly: runs recorded).
  unsigned runsRecorded() const { return Runs; }
  void noteRunCompleted() { ++Runs; }

  /// -- Persistence (line-oriented text format) ---------------------------

  std::string serialize() const;

  /// Parses a serialized database. Malformed input yields std::nullopt and
  /// diagnostics.
  static std::optional<ProgramDatabase> deserialize(std::string_view Text,
                                                    DiagnosticEngine &Diags);

  /// Merges \p Other into this database (summing all totals and moments).
  /// Fingerprint conflicts are reported and those functions skipped.
  void merge(const ProgramDatabase &Other, DiagnosticEngine &Diags);

  bool saveToFile(const std::string &Path, DiagnosticEngine &Diags) const;
  static std::optional<ProgramDatabase> loadFromFile(const std::string &Path,
                                                     DiagnosticEngine &Diags);

  /// Structural fingerprint of one function's shape: numbers of
  /// statements, ECFG nodes and conditions. Guards against profiles from
  /// a different program version; incremental estimation sessions reuse
  /// it as the structural part of their summary-cache keys.
  static uint64_t structuralFingerprint(const FunctionAnalysis &FA);

private:
  struct FunctionRecord {
    /// Structural fingerprint (see structuralFingerprint()).
    uint64_t Fingerprint = 0;
    /// Condition totals keyed by (node, label).
    std::map<std::pair<NodeId, unsigned>, double> Cond;
    /// Loop moments keyed by header statement.
    std::map<StmtId, LoopFrequencyStats::Moments> Loops;
  };

  std::map<std::string, FunctionRecord> Functions;
  unsigned Runs = 0;
};

} // namespace ptran

#endif // PTRAN_PDB_PROGRAMDATABASE_H
