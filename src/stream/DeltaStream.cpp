//===--- stream/DeltaStream.cpp - Streaming counter-delta ingest ----------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "stream/DeltaStream.h"

#include "support/Saturation.h"

#include <algorithm>
#include <cmath>
#include <thread>

using namespace ptran;

CounterDeltaStream::~CounterDeltaStream() = default;

std::unique_ptr<CounterDeltaStream>
CounterDeltaStream::create(EstimationSession &Session, const Options &O) {
  auto S = std::unique_ptr<CounterDeltaStream>(new CounterDeltaStream());
  S->Session = &Session;
  S->Obs = O.Obs;
  unsigned HW = std::thread::hardware_concurrency();
  S->Shards = O.Shards ? O.Shards : std::min(HW ? HW : 1u, 16u);

  const ProgramAnalysis &PA = Session.estimator().analysis();
  size_t Base = 0;
  for (const auto &FPtr : Session.program().functions()) {
    const FunctionAnalysis *FA = PA.tryOf(*FPtr);
    if (!FA)
      continue; // Failed analysis: no conditions to stream into.
    FuncEntry FE;
    FE.F = FPtr.get();
    FE.Conds = FA->cd().conditions();
    FE.CellBase = Base;
    Base += FE.Conds.size();
    S->Funcs.push_back(std::move(FE));
  }
  S->NumCells = Base;
  // Zero-initialized: value-initializing atomic<double> (C++20) is 0.0.
  S->Cells =
      std::vector<std::atomic<double>>(2ull * S->Shards * S->NumCells);
  S->Slots = std::vector<SlotState>(std::max(1u, O.MaxWriters));
  return S;
}

unsigned CounterDeltaStream::functionIndexOf(const Function &F) const {
  for (unsigned I = 0; I < Funcs.size(); ++I)
    if (Funcs[I].F == &F)
      return I;
  return numFunctions();
}

unsigned
CounterDeltaStream::conditionIndexOf(unsigned FuncIdx,
                                     const ControlCondition &C) const {
  const std::vector<ControlCondition> &Conds = Funcs[FuncIdx].Conds;
  auto It = std::lower_bound(Conds.begin(), Conds.end(), C);
  if (It != Conds.end() && *It == C)
    return static_cast<unsigned>(It - Conds.begin());
  return static_cast<unsigned>(Conds.size());
}

CounterDeltaStream::Writer CounterDeltaStream::acquireWriter() {
  for (unsigned I = 0; I < Slots.size(); ++I) {
    bool Expected = false;
    if (Slots[I].InUse.compare_exchange_strong(Expected, true,
                                               std::memory_order_acq_rel))
      return Writer(this, I);
  }
  return Writer();
}

void CounterDeltaStream::releaseSlot(unsigned Slot) {
  Slots[Slot].InUse.store(false, std::memory_order_release);
}

bool CounterDeltaStream::append(unsigned Slot, uint32_t FuncIdx,
                                uint32_t CondIdx, double Delta) {
  SlotState &St = Slots[Slot];
  if (FuncIdx >= Funcs.size() || CondIdx >= Funcs[FuncIdx].Conds.size() ||
      !std::isfinite(Delta) || Delta < 0.0) {
    St.Dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  size_t CellIdx = Funcs[FuncIdx].CellBase + CondIdx;
  unsigned Shard = Slot % Shards;
  // Epoch handshake (DESIGN.md §12): announce the epoch we are about to
  // write, then confirm it is still live. Both the announcement store and
  // the confirming load are seq_cst so they order against the flusher's
  // seq_cst epoch bump + slot scan: either the flusher's scan sees our
  // announcement and waits for us, or our re-read sees the bumped epoch
  // and we retry into the live bank. Either way no append lands in a bank
  // the flusher already considers quiescent.
  uint64_t E = Epoch.load(std::memory_order_seq_cst);
  for (;;) {
    St.ActiveEpoch.store(E, std::memory_order_seq_cst);
    uint64_t Cur = Epoch.load(std::memory_order_seq_cst);
    if (Cur == E)
      break;
    E = Cur;
  }
  cell(static_cast<unsigned>(E & 1), Shard, CellIdx)
      .fetch_add(Delta, std::memory_order_relaxed);
  // Release: the flusher's acquire scan of this slot must observe the
  // fetch_add above as having happened.
  St.ActiveEpoch.store(SlotIdle, std::memory_order_release);
  St.Appended.fetch_add(1, std::memory_order_relaxed);
  return true;
}

CounterDeltaStream::FlushReport CounterDeltaStream::flush() {
  std::lock_guard<std::mutex> L(FlushMu);
  FlushReport R;
  // Seal the current epoch; writers that re-read Epoch from here on land
  // in the other bank.
  uint64_t Old = Epoch.fetch_add(1, std::memory_order_seq_cst);
  R.Epoch = Old;
  // Quiesce: wait out the writers still announcing the sealed epoch.
  // Appends are a handful of instructions, so this spin is bounded by the
  // in-flight window, not by writer throughput.
  for (SlotState &St : Slots)
    while (St.ActiveEpoch.load(std::memory_order_seq_cst) == Old)
      std::this_thread::yield();

  // The sealed bank is now quiescent (writers are in epoch Old+1, bank
  // (Old+1)&1; epoch Old+2 cannot start before the next flush, which this
  // mutex serializes). Drain it in a fixed order — functions in program
  // order, conditions in sorted order, shards in index order — so equal
  // append multisets yield bit-identical batches.
  unsigned Bank = static_cast<unsigned>(Old & 1);
  std::vector<std::pair<const Function *, FrequencyTotals>> Batch;
  std::vector<const Function *> Clamped;
  for (FuncEntry &FE : Funcs) {
    FrequencyTotals Delta;
    Delta.Ok = true;
    bool FnClamped = false;
    for (size_t J = 0; J < FE.Conds.size(); ++J) {
      double Total = 0.0;
      for (unsigned Sh = 0; Sh < Shards; ++Sh) {
        std::atomic<double> &C = cell(Bank, Sh, FE.CellBase + J);
        double V = C.load(std::memory_order_relaxed);
        if (V != 0.0)
          C.store(0.0, std::memory_order_relaxed);
        Total += V;
      }
      if (Total == 0.0)
        continue;
      // An over-limit cell total would be rejected whole by the session's
      // delta validation; clamp here. The session's accumulator cannot see
      // this overflow (the delta it receives is exactly the limit), so the
      // saturation is reported to it explicitly below.
      if (Total > CounterSaturationLimit) {
        Total = CounterSaturationLimit;
        FnClamped = true;
      }
      Delta.Cond[FE.Conds[J]] = Total;
      ++R.Cells;
    }
    if (!Delta.Cond.empty()) {
      ++R.Functions;
      Batch.emplace_back(FE.F, std::move(Delta));
      if (FnClamped)
        Clamped.push_back(FE.F);
    }
  }
  // One batch = one session lock acquisition: a concurrent estimate()
  // sees the whole epoch or none of it. The fold observer, when present,
  // brackets the application so it can journal the epoch atomically with
  // applying it.
  auto Apply = [&] {
    if (!Batch.empty())
      Session->accumulateTotalsBatch(Batch);
    for (const Function *F : Clamped)
      Session->noteExternalSaturation(*F);
  };
  if (Observer && !Batch.empty())
    Observer->onEpochFold(Batch, Clamped, Apply);
  else
    Apply();

  FlushedCells.fetch_add(R.Cells, std::memory_order_relaxed);
  EpochsDone.fetch_add(1, std::memory_order_relaxed);
  uint64_t App = 0, Drop = 0;
  for (const SlotState &St : Slots) {
    App += St.Appended.load(std::memory_order_relaxed);
    Drop += St.Dropped.load(std::memory_order_relaxed);
  }
  AppendsAtLastFlush.store(App, std::memory_order_relaxed);
  if (Obs) {
    // Counters are reported per flush, not per append: ObsRegistry locks,
    // and a lock per delta would cap the whole pipeline.
    Obs->addCounter("stream.appended", App - ReportedAppended);
    Obs->addCounter("stream.dropped", Drop - ReportedDropped);
    ReportedAppended = App;
    ReportedDropped = Drop;
    Obs->addCounter("stream.flushed", R.Cells);
    Obs->addCounter("stream.epochs");
  }
  return R;
}

uint64_t CounterDeltaStream::pendingAppends() const {
  uint64_t App = 0;
  for (const SlotState &St : Slots)
    App += St.Appended.load(std::memory_order_relaxed);
  uint64_t Base = AppendsAtLastFlush.load(std::memory_order_relaxed);
  return App > Base ? App - Base : 0;
}

CounterDeltaStream::Stats CounterDeltaStream::stats() const {
  Stats S;
  for (const SlotState &St : Slots) {
    S.Appended += St.Appended.load(std::memory_order_relaxed);
    S.Dropped += St.Dropped.load(std::memory_order_relaxed);
  }
  S.Flushed = FlushedCells.load(std::memory_order_relaxed);
  S.Epochs = EpochsDone.load(std::memory_order_relaxed);
  return S;
}
