//===--- stream/DeltaStream.h - Streaming counter-delta ingest --*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free streaming ingest of counter-total deltas into an
/// EstimationSession. Live instrumented processes produce a firehose of
/// tiny "(function, control condition) += delta" updates; feeding each one
/// through EstimationSession::accumulateTotals would serialize every
/// producer on the session mutex and dirty the incremental engine millions
/// of times a second. A CounterDeltaStream decouples the two rates:
///
///   - N writer threads append deltas into sharded atomic cell buffers
///     with no locks on the append path (one relaxed fetch_add per delta
///     plus the epoch handshake below);
///   - a flusher seals the current epoch, waits for the handful of writers
///     still inside it to finish their in-flight appends, drains the
///     sealed bank in a deterministic order and folds the whole epoch into
///     the session through ONE accumulateTotalsBatch call — so a
///     concurrent estimate() query sees either none of the epoch or all of
///     it, never a torn cut — which marks the touched functions dirty and
///     the next query re-runs only their dirty closure (the existing
///     incremental path).
///
/// Cell layout: every analyzable function contributes one dense row of
/// cells, one per entry of its sorted ControlDependence::conditions()
/// list. Each of S shards holds two full banks of cells (epoch parity
/// selects the bank), so concurrent writers on different shards never
/// share a cache line of counts, and the drain of a sealed bank proceeds
/// while writers keep appending to the live one.
///
/// Epoch protocol (the memory-ordering argument is spelled out in
/// DESIGN.md §12): a global epoch counter E plus one cache-line-aligned
/// announcement slot per writer. A writer announces the epoch it is about
/// to write (seq_cst), re-reads E, retries if E moved, adds into bank
/// E & 1 (relaxed), then retires its slot (release). The flusher bumps E
/// (seq_cst) and waits until no slot still announces the old epoch; the
/// seq_cst total order makes this a Dekker handshake — any writer the
/// flusher's scan missed is guaranteed to re-read the new E and move to
/// the live bank — after which the sealed bank is quiescent and can be
/// drained with plain atomic loads.
///
/// Determinism: deltas are integer-valued counts and every cell and
/// accumulator clamps at 2^53 (support/Saturation.h), below which double
/// addition is exact — so any interleaving of the same set of appends
/// produces bit-identical cell totals, and the fixed drain order
/// (functions in program order, conditions in sorted order, shards in
/// index order) produces bit-identical batches. The stream tests memcmp
/// estimates against a serial reference.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_STREAM_DELTASTREAM_H
#define PTRAN_STREAM_DELTASTREAM_H

#include "session/EstimationSession.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace ptran {

/// Brackets one epoch fold so a layer above the stream can make "apply
/// the batch to the session" and "record that it happened" one atomic
/// step (the durable journal appends an EpochFold record under the same
/// lock that applies it — a checkpoint can then never capture the
/// application without its journal record or vice versa).
class EpochFoldObserver {
public:
  virtual ~EpochFoldObserver() = default;

  /// Called by flush() instead of applying the batch itself, once per
  /// flush that drained a nonzero batch. \p Apply performs the fold
  /// (accumulateTotalsBatch + the per-function saturation notes); the
  /// observer MUST invoke it exactly once. \p Batch is in the stream's
  /// deterministic drain order; \p Clamped lists the functions whose cell
  /// totals clamped at 2^53 during the drain.
  virtual void onEpochFold(
      const std::vector<std::pair<const Function *, FrequencyTotals>> &Batch,
      const std::vector<const Function *> &Clamped,
      const std::function<void()> &Apply) = 0;
};

class CounterDeltaStream {
public:
  struct Options {
    /// Shard count (0 = one per hardware thread, capped at 16). Writers
    /// are spread across shards round-robin by slot index.
    unsigned Shards = 0;
    /// Maximum concurrently checked-out writers (announcement slots).
    unsigned MaxWriters = 64;
    /// `stream.*` counters are reported here once per flush (never on the
    /// append path). Must outlive the stream when set.
    ObsRegistry *Obs = nullptr;
  };

  /// Lifetime totals, aggregated across all writers and flushes.
  struct Stats {
    uint64_t Appended = 0; ///< Deltas accepted into cells.
    uint64_t Dropped = 0;  ///< Deltas rejected (bad index / bad value).
    uint64_t Flushed = 0;  ///< Nonzero cells folded into the session.
    uint64_t Epochs = 0;   ///< Completed flush() calls.
  };

  /// What one flush() drained.
  struct FlushReport {
    uint64_t Epoch = 0;     ///< The epoch this flush sealed.
    uint64_t Functions = 0; ///< Functions that received a delta.
    uint64_t Cells = 0;     ///< Nonzero cells folded.
  };

  /// A checked-out append handle. One thread at a time per Writer; the
  /// append path is lock-free. Release by destruction (or release()).
  class Writer {
  public:
    Writer() = default;
    Writer(Writer &&O) noexcept : S(O.S), Slot(O.Slot) { O.S = nullptr; }
    Writer &operator=(Writer &&O) noexcept {
      if (this != &O) {
        release();
        S = O.S;
        Slot = O.Slot;
        O.S = nullptr;
      }
      return *this;
    }
    Writer(const Writer &) = delete;
    Writer &operator=(const Writer &) = delete;
    ~Writer() { release(); }

    /// False when no slot was available at acquireWriter() time.
    explicit operator bool() const { return S != nullptr; }

    /// Appends "condition CondIdx of function FuncIdx += Delta" to the
    /// current epoch. Returns false (and counts the delta as dropped)
    /// when an index is out of range or Delta is non-finite or negative;
    /// nothing is applied. Lock-free; never blocks on the flusher.
    bool add(uint32_t FuncIdx, uint32_t CondIdx, double Delta) {
      return S && S->append(Slot, FuncIdx, CondIdx, Delta);
    }

    /// Returns the slot to the stream's free list.
    void release() {
      if (S)
        S->releaseSlot(Slot);
      S = nullptr;
    }

  private:
    friend class CounterDeltaStream;
    Writer(CounterDeltaStream *S, unsigned Slot) : S(S), Slot(Slot) {}
    CounterDeltaStream *S = nullptr;
    unsigned Slot = 0;
  };

  /// Builds a stream over \p Session's program: one cell row per
  /// analyzable function (program order), one cell per sorted control
  /// condition. The session must outlive the stream.
  static std::unique_ptr<CounterDeltaStream>
  create(EstimationSession &Session, const Options &O);
  static std::unique_ptr<CounterDeltaStream> create(EstimationSession &S) {
    return create(S, Options());
  }

  ~CounterDeltaStream();

  /// -- Cell addressing (what stream-deltas `describe` serves) ----------

  unsigned numFunctions() const {
    return static_cast<unsigned>(Funcs.size());
  }
  const Function *functionAt(unsigned FuncIdx) const {
    return Funcs[FuncIdx].F;
  }
  unsigned numConditions(unsigned FuncIdx) const {
    return static_cast<unsigned>(Funcs[FuncIdx].Conds.size());
  }
  const ControlCondition &conditionAt(unsigned FuncIdx,
                                      unsigned CondIdx) const {
    return Funcs[FuncIdx].Conds[CondIdx];
  }
  /// Index of \p F in the stream's function table, or numFunctions() when
  /// F has no row (analysis failed).
  unsigned functionIndexOf(const Function &F) const;
  /// Index of \p C among FuncIdx's conditions, or numConditions(FuncIdx)
  /// when the function has no such condition.
  unsigned conditionIndexOf(unsigned FuncIdx, const ControlCondition &C) const;

  unsigned numShards() const { return Shards; }

  /// Checks out a writer slot; the returned handle is falsy when all
  /// Options::MaxWriters slots are in use.
  Writer acquireWriter();

  /// Seals the current epoch, waits for in-flight appends to land, drains
  /// the sealed bank and folds it into the session as one atomic batch.
  /// Serialized against other flushers by an internal mutex; writers are
  /// never blocked. Reports `stream.*` counter deltas to Options::Obs.
  FlushReport flush();

  /// Lifetime totals (safe to call concurrently with writers; the values
  /// are a momentary cut, not a synchronized snapshot).
  Stats stats() const;

  /// Installs \p O as the fold observer (null restores direct
  /// application). Install before traffic starts: the pointer is read
  /// unsynchronized by flush().
  void setFoldObserver(EpochFoldObserver *O) { Observer = O; }

  /// Deltas appended since the last completed flush (approximate — a
  /// momentary cut across writer slots). The daemon's background flusher
  /// uses this as its cell-count flush threshold.
  uint64_t pendingAppends() const;

  /// The epoch writers are currently appending into.
  uint64_t currentEpoch() const {
    return Epoch.load(std::memory_order_relaxed);
  }

private:
  CounterDeltaStream() = default;

  bool append(unsigned Slot, uint32_t FuncIdx, uint32_t CondIdx,
              double Delta);
  void releaseSlot(unsigned Slot);
  std::atomic<double> &cell(unsigned Bank, unsigned Shard, size_t CellIdx) {
    return Cells[(static_cast<size_t>(Bank) * Shards + Shard) * NumCells +
                 CellIdx];
  }

  /// One writer's announcement slot plus its private statistics, padded
  /// so two writers never share a cache line.
  struct alignas(64) SlotState {
    /// The epoch this writer is currently appending into, or SlotIdle.
    std::atomic<uint64_t> ActiveEpoch{SlotIdle};
    std::atomic<uint64_t> Appended{0};
    std::atomic<uint64_t> Dropped{0};
    /// Checked-out flag (free-list membership).
    std::atomic<bool> InUse{false};
  };
  static constexpr uint64_t SlotIdle = ~uint64_t{0};

  struct FuncEntry {
    const Function *F = nullptr;
    std::vector<ControlCondition> Conds; ///< Sorted (cell order).
    size_t CellBase = 0;                 ///< First cell of this row.
  };

  EstimationSession *Session = nullptr;
  ObsRegistry *Obs = nullptr;
  EpochFoldObserver *Observer = nullptr;
  std::vector<FuncEntry> Funcs;
  size_t NumCells = 0;
  unsigned Shards = 1;

  /// 2 banks x Shards x NumCells, zero-initialized.
  std::vector<std::atomic<double>> Cells;
  std::vector<SlotState> Slots;

  /// The live epoch; parity selects the bank writers append into.
  std::atomic<uint64_t> Epoch{0};

  /// Serializes flushers (writers never take it). Also guards the
  /// last-reported obs cursors below.
  std::mutex FlushMu;
  std::atomic<uint64_t> FlushedCells{0};
  std::atomic<uint64_t> EpochsDone{0};
  /// Sum of slot Appended counters as of the last completed flush
  /// (pendingAppends() subtracts it from the live sum).
  std::atomic<uint64_t> AppendsAtLastFlush{0};
  uint64_t ReportedAppended = 0;
  uint64_t ReportedDropped = 0;
};

} // namespace ptran

#endif // PTRAN_STREAM_DELTASTREAM_H
