//===--- interval/Intervals.h - Interval (loop) structure -------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interval structure of Section 2: for a reducible control flow graph
/// the intervals identify the loops. This module computes the paper's
/// three mappings —
///
///   HDR(n)         the header of the (innermost) interval containing n,
///   HDR_PARENT(h)  the header of the immediately enclosing interval,
///   HDR_LCA(a, b)  the least common ancestor in the header tree —
///
/// plus the loop bodies, entry edges, back (latch) edges and exit edges
/// that the ECFG construction and the profiling optimizations consume.
/// The virtual outermost interval (the whole procedure) is represented by
/// InvalidNode, matching the paper's "HDR_PARENT(h) = 0".
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_INTERVAL_INTERVALS_H
#define PTRAN_INTERVAL_INTERVALS_H

#include "cfg/Cfg.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <vector>

namespace ptran {

/// The computed interval (loop) structure of one CFG.
class IntervalStructure {
public:
  /// Computes the interval structure of \p C. Fails (returning
  /// std::nullopt and reporting to \p Diags) if the reachable part of the
  /// graph is irreducible; apply splitNodes() first in that case.
  static std::optional<IntervalStructure> compute(const Cfg &C,
                                                  DiagnosticEngine &Diags);

  /// True if \p N heads a loop (has at least one back edge).
  bool isHeader(NodeId N) const { return BodyIndex[N] != NoLoop; }

  /// All loop headers, outermost first (by increasing nesting depth).
  const std::vector<NodeId> &headers() const { return Headers; }

  /// The nodes of loop \p H's body (header included), ascending.
  const std::vector<NodeId> &loopBody(NodeId H) const;

  /// True if loop \p H's body contains node \p N (header included).
  bool contains(NodeId H, NodeId N) const;

  /// HDR(n): header of the innermost loop containing \p N; a header is in
  /// its own interval, so hdr(h) == h. InvalidNode when \p N is in no loop
  /// (the virtual outermost interval).
  NodeId hdr(NodeId N) const { return Hdr[N]; }

  /// HDR_PARENT(h): the enclosing header, or InvalidNode for a top-level
  /// loop.
  NodeId hdrParent(NodeId H) const;

  /// HDR_LCA over the header tree. Arguments and result may be
  /// InvalidNode (the virtual root).
  NodeId hdrLca(NodeId A, NodeId B) const;

  /// Number of loops containing \p N (0 = not in any loop).
  unsigned loopDepth(NodeId N) const;

  /// Back (latch) edges of loop \p H: edges u -> H with u inside the body.
  const std::vector<EdgeId> &backEdges(NodeId H) const;

  /// Entry edges of loop \p H: edges u -> H with u outside the body.
  const std::vector<EdgeId> &entryEdges(NodeId H) const;

  /// Exit edges of loop \p H: edges from a body node to a node outside the
  /// body. Does not include procedure-exit branches (see exitBranches).
  const std::vector<EdgeId> &exitEdges(NodeId H) const;

  /// Procedure-exit branches taken from inside loop \p H's body (e.g. a
  /// RETURN in the loop). These leave every enclosing interval at once.
  const std::vector<Cfg::ExitBranch> &exitBranches(NodeId H) const;

  /// True if loop \p H is a DO loop with no premature exits: its header is
  /// a DO statement and the only way out is the header's own F branch.
  /// This is the precondition of the paper's third profiling optimization.
  bool isExitFreeDoLoop(const Cfg &C, NodeId H) const;

private:
  static constexpr unsigned NoLoop = static_cast<unsigned>(-1);

  unsigned loopIndex(NodeId H) const;

  /// Per-node innermost header.
  std::vector<NodeId> Hdr;
  /// Headers outermost-first.
  std::vector<NodeId> Headers;
  /// For each node: index into per-loop tables if it is a header.
  std::vector<unsigned> BodyIndex;
  /// Per-loop data, indexed by loopIndex().
  std::vector<std::vector<NodeId>> Bodies;
  std::vector<std::vector<bool>> InBody;
  std::vector<NodeId> Parent;
  std::vector<unsigned> Depth;
  std::vector<std::vector<EdgeId>> Latches;
  std::vector<std::vector<EdgeId>> Entries;
  std::vector<std::vector<EdgeId>> ExitsOf;
  std::vector<std::vector<Cfg::ExitBranch>> ExitBranchesOf;
};

/// Splits nodes to make an irreducible CFG reducible (the "node splitting"
/// transformation the paper points to). Repeatedly duplicates the smallest
/// offending node until every retreating edge is a back edge. \returns the
/// number of node copies made (0 if the graph was already reducible).
/// Only supports Cfgs without a backing Function (synthetic graphs), since
/// splitting statement nodes would desynchronize the statement mapping.
unsigned splitNodes(Cfg &C, DiagnosticEngine &Diags);

} // namespace ptran

#endif // PTRAN_INTERVAL_INTERVALS_H
