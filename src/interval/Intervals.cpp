//===--- interval/Intervals.cpp - Interval (loop) structure ---------------===//

#include "interval/Intervals.h"

#include "graph/DepthFirst.h"
#include "graph/Dominators.h"
#include "support/Casting.h"
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>

using namespace ptran;

unsigned IntervalStructure::loopIndex(NodeId H) const {
  assert(H < BodyIndex.size() && BodyIndex[H] != NoLoop &&
         "node is not a loop header");
  return BodyIndex[H];
}

const std::vector<NodeId> &IntervalStructure::loopBody(NodeId H) const {
  return Bodies[loopIndex(H)];
}

bool IntervalStructure::contains(NodeId H, NodeId N) const {
  return InBody[loopIndex(H)][N];
}

NodeId IntervalStructure::hdrParent(NodeId H) const {
  return Parent[loopIndex(H)];
}

NodeId IntervalStructure::hdrLca(NodeId A, NodeId B) const {
  // Walk both headers up the header tree to equal depth, then in lockstep.
  auto DepthOf = [&](NodeId H) {
    return H == InvalidNode ? 0u : Depth[loopIndex(H)] + 1;
  };
  while (DepthOf(A) > DepthOf(B))
    A = hdrParent(A);
  while (DepthOf(B) > DepthOf(A))
    B = hdrParent(B);
  while (A != B) {
    A = hdrParent(A);
    B = hdrParent(B);
  }
  return A;
}

unsigned IntervalStructure::loopDepth(NodeId N) const {
  NodeId H = Hdr[N];
  unsigned D = 0;
  while (H != InvalidNode) {
    ++D;
    H = hdrParent(H);
  }
  return D;
}

const std::vector<EdgeId> &IntervalStructure::backEdges(NodeId H) const {
  return Latches[loopIndex(H)];
}

const std::vector<EdgeId> &IntervalStructure::entryEdges(NodeId H) const {
  return Entries[loopIndex(H)];
}

const std::vector<EdgeId> &IntervalStructure::exitEdges(NodeId H) const {
  return ExitsOf[loopIndex(H)];
}

const std::vector<Cfg::ExitBranch> &
IntervalStructure::exitBranches(NodeId H) const {
  return ExitBranchesOf[loopIndex(H)];
}

bool IntervalStructure::isExitFreeDoLoop(const Cfg &C, NodeId H) const {
  const Function *F = C.function();
  if (!F)
    return false;
  StmtId S = C.origin(H);
  if (S == InvalidStmt || !isa<DoStmt>(F->stmt(S)))
    return false;
  // The only ways out must be the DO header's own F branch.
  for (EdgeId E : exitEdges(H)) {
    const Digraph::Edge &Ed = C.graph().edge(E);
    if (Ed.From != H || static_cast<CfgLabel>(Ed.Label) != CfgLabel::F)
      return false;
  }
  for (const Cfg::ExitBranch &B : exitBranches(H))
    if (B.Node != H || B.Label != CfgLabel::F)
      return false;
  return true;
}

std::optional<IntervalStructure>
IntervalStructure::compute(const Cfg &C, DiagnosticEngine &Diags) {
  const Digraph &G = C.graph();
  IntervalStructure IS;
  IS.Hdr.assign(G.numNodes(), InvalidNode);
  IS.BodyIndex.assign(G.numNodes(), NoLoop);
  if (G.numNodes() == 0)
    return IS;

  NodeId Entry = C.entry();
  assert(Entry != InvalidNode && "CFG has no entry");
  CsrGraph Csr(G);
  DfsResult Dfs(Csr.view(), Entry);
  DominatorTree Dom(Csr.view(), Entry);

  // Group back edges by header, rejecting irreducible retreating edges.
  std::map<NodeId, std::vector<EdgeId>> LatchesByHeader;
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.isLive(E) || Dfs.edgeKind(E) != DfsEdgeKind::Retreating)
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    if (!Dom.dominates(Ed.To, Ed.From)) {
      Diags.error("irreducible control flow: retreating edge " +
                  C.nodeName(Ed.From) + " -> " + C.nodeName(Ed.To) +
                  " does not target a dominator");
      return std::nullopt;
    }
    LatchesByHeader[Ed.To].push_back(E);
  }

  // Natural loop of each header: backward reachability from the latches
  // that stays inside the region dominated by the header.
  for (auto &[Header, LatchEdges] : LatchesByHeader) {
    std::vector<bool> InThisBody(G.numNodes(), false);
    InThisBody[Header] = true;
    std::vector<NodeId> Worklist;
    for (EdgeId E : LatchEdges) {
      NodeId Latch = G.edge(E).From;
      if (!InThisBody[Latch]) {
        InThisBody[Latch] = true;
        Worklist.push_back(Latch);
      }
    }
    while (!Worklist.empty()) {
      NodeId N = Worklist.back();
      Worklist.pop_back();
      for (NodeId P : G.predecessors(N)) {
        if (!Dfs.isReachable(P) || InThisBody[P])
          continue;
        InThisBody[P] = true;
        Worklist.push_back(P);
      }
    }

    unsigned Index = static_cast<unsigned>(IS.Bodies.size());
    IS.BodyIndex[Header] = Index;
    std::vector<NodeId> Body;
    for (NodeId N = 0; N < G.numNodes(); ++N)
      if (InThisBody[N])
        Body.push_back(N);
    IS.Bodies.push_back(std::move(Body));
    IS.InBody.push_back(std::move(InThisBody));
    IS.Latches.push_back(LatchEdges);
  }

  unsigned NumLoops = static_cast<unsigned>(IS.Bodies.size());
  IS.Parent.assign(NumLoops, InvalidNode);
  IS.Depth.assign(NumLoops, 0);
  IS.Entries.resize(NumLoops);
  IS.ExitsOf.resize(NumLoops);
  IS.ExitBranchesOf.resize(NumLoops);

  // Headers of loops in this map, for nesting queries.
  std::vector<NodeId> AllHeaders;
  for (auto &[Header, LatchEdges] : LatchesByHeader)
    AllHeaders.push_back(Header);

  // Nesting: loop A properly encloses loop B iff A's body contains B's
  // header and A != B. The parent is the smallest enclosing body.
  for (NodeId H : AllHeaders) {
    unsigned I = IS.BodyIndex[H];
    NodeId Best = InvalidNode;
    size_t BestSize = 0;
    for (NodeId Other : AllHeaders) {
      if (Other == H)
        continue;
      unsigned J = IS.BodyIndex[Other];
      if (!IS.InBody[J][H])
        continue;
      if (Best == InvalidNode || IS.Bodies[J].size() < BestSize) {
        Best = Other;
        BestSize = IS.Bodies[J].size();
      }
    }
    IS.Parent[I] = Best;
  }
  // Depths from parent chains.
  for (NodeId H : AllHeaders) {
    unsigned D = 0;
    NodeId P = IS.Parent[IS.BodyIndex[H]];
    while (P != InvalidNode) {
      ++D;
      P = IS.Parent[IS.BodyIndex[P]];
    }
    IS.Depth[IS.BodyIndex[H]] = D;
  }
  // Headers outermost-first.
  IS.Headers = AllHeaders;
  std::sort(IS.Headers.begin(), IS.Headers.end(), [&](NodeId A, NodeId B) {
    unsigned DA = IS.Depth[IS.BodyIndex[A]];
    unsigned DB = IS.Depth[IS.BodyIndex[B]];
    return DA != DB ? DA < DB : A < B;
  });

  // HDR(n): innermost loop containing n = smallest containing body.
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    NodeId Best = InvalidNode;
    size_t BestSize = 0;
    for (NodeId H : AllHeaders) {
      unsigned I = IS.BodyIndex[H];
      if (!IS.InBody[I][N])
        continue;
      if (Best == InvalidNode || IS.Bodies[I].size() < BestSize) {
        Best = H;
        BestSize = IS.Bodies[I].size();
      }
    }
    IS.Hdr[N] = Best;
  }

  // Entry edges, exit edges and procedure-exit branches per loop.
  for (NodeId H : AllHeaders) {
    unsigned I = IS.BodyIndex[H];
    for (EdgeId E : G.inEdges(H))
      if (!IS.InBody[I][G.edge(E).From])
        IS.Entries[I].push_back(E);
    for (NodeId N : IS.Bodies[I])
      for (EdgeId E : G.outEdges(N))
        if (!IS.InBody[I][G.edge(E).To])
          IS.ExitsOf[I].push_back(E);
  }
  for (const Cfg::ExitBranch &B : C.exitBranches())
    for (NodeId H : AllHeaders) {
      unsigned I = IS.BodyIndex[H];
      if (IS.InBody[I][B.Node])
        IS.ExitBranchesOf[I].push_back(B);
    }

  return IS;
}

unsigned ptran::splitNodes(Cfg &C, DiagnosticEngine &Diags) {
  if (C.function()) {
    Diags.error("node splitting is only supported on synthetic CFGs");
    return 0;
  }
  unsigned Copies = 0;
  // Growth bound: give up rather than explode on adversarial graphs.
  unsigned MaxNodes = C.numNodes() * 8 + 16;

  while (!isReducible(CsrGraph(C.graph()).view(), C.entry())) {
    if (C.numNodes() > MaxNodes) {
      Diags.error("node splitting exceeded its growth budget");
      return Copies;
    }
    const Digraph &G = C.graph();
    CsrGraph Csr(G);
    DfsResult Dfs(Csr.view(), C.entry());
    DominatorTree Dom(Csr.view(), C.entry());

    // Find an offending retreating edge and split its target: the copy
    // takes over all offending retreating in-edges; both keep the
    // original's out-edges. This preserves all execution paths.
    NodeId Victim = InvalidNode;
    for (EdgeId E = 0; E < G.numEdgeSlots() && Victim == InvalidNode; ++E) {
      if (!G.isLive(E) || Dfs.edgeKind(E) != DfsEdgeKind::Retreating)
        continue;
      const Digraph::Edge &Ed = G.edge(E);
      if (!Dom.dominates(Ed.To, Ed.From))
        Victim = Ed.To;
    }
    assert(Victim != InvalidNode && "irreducible graph must have a witness");

    NodeId Copy = C.createNode(C.nodeType(Victim), C.origin(Victim));
    ++Copies;
    for (EdgeId E : G.outEdges(Victim))
      C.addEdge(Copy, G.edge(E).To, static_cast<CfgLabel>(G.edge(E).Label));
    for (EdgeId E : G.inEdges(Victim)) {
      if (Dfs.edgeKind(E) != DfsEdgeKind::Retreating)
        continue;
      const Digraph::Edge &Ed = G.edge(E);
      if (Dom.dominates(Victim, Ed.From))
        continue; // Well-formed back edge; leave it.
      C.addEdge(Ed.From, Copy, static_cast<CfgLabel>(Ed.Label));
      C.eraseEdge(E);
    }
  }
  return Copies;
}
