//===--- graph/Scc.h - Strongly connected components ------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tarjan's strongly-connected-components algorithm. The interprocedural
/// cost analysis (Section 4, rule 2) visits procedures bottom-up over the
/// call graph; SCCs identify recursive cycles, which the paper defers and
/// we handle with an optional fixed-point extension.
///
/// The solver runs over a GraphView; the Digraph overloads remain as
/// deprecated shims.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_GRAPH_SCC_H
#define PTRAN_GRAPH_SCC_H

#include "graph/GraphView.h"

#include <vector>

namespace ptran {

/// The strongly connected components of a graph.
struct SccResult {
  /// Component index per node. Components are numbered in reverse
  /// topological order of the condensation: if component A has an edge to
  /// component B (A != B), then Component[a] > Component[b] for a in A,
  /// b in B. Visiting components 0, 1, 2, ... is therefore a bottom-up
  /// (callees-first) order for a call graph.
  std::vector<unsigned> Component;

  /// Members of each component, grouped.
  std::vector<std::vector<NodeId>> Members;

  unsigned numComponents() const {
    return static_cast<unsigned>(Members.size());
  }

  /// True if node \p N sits in a component that is a real cycle (more than
  /// one member, or a self-loop).
  bool isInCycle(const GraphView &G, NodeId N) const;

  /// Deprecated shim: flattens \p G into a temporary CsrGraph first.
  [[deprecated("build a CsrGraph once and pass its GraphView")]]
  bool isInCycle(const Digraph &G, NodeId N) const;
};

/// Computes the SCCs of \p G (all nodes, reachable or not).
SccResult computeSccs(const GraphView &G);

/// Deprecated shim: flattens \p G into a temporary CsrGraph first.
[[deprecated("build a CsrGraph once and pass its GraphView")]]
SccResult computeSccs(const Digraph &G);

} // namespace ptran

#endif // PTRAN_GRAPH_SCC_H
