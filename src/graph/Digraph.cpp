//===--- graph/Digraph.cpp - Directed labelled multigraph -----------------===//

#include "graph/Digraph.h"

using namespace ptran;

NodeId Digraph::addNode() {
  Succs.emplace_back();
  Preds.emplace_back();
  return static_cast<NodeId>(Succs.size() - 1);
}

NodeId Digraph::addNodes(unsigned Count) {
  NodeId First = static_cast<NodeId>(Succs.size());
  for (unsigned I = 0; I < Count; ++I)
    addNode();
  return First;
}

EdgeId Digraph::addEdge(NodeId From, NodeId To, LabelId Label) {
  assert(From < numNodes() && To < numNodes() && "edge endpoint out of range");
  EdgeId E = static_cast<EdgeId>(Edges.size());
  Edges.push_back({From, To, Label, false});
  Succs[From].push_back(E);
  Preds[To].push_back(E);
  ++NumLiveEdges;
  return E;
}

void Digraph::eraseEdge(EdgeId E) {
  assert(E < Edges.size() && "edge id out of range");
  if (Edges[E].Dead)
    return;
  Edges[E].Dead = true;
  --NumLiveEdges;
}

std::vector<EdgeId> Digraph::outEdges(NodeId N) const {
  assert(N < numNodes() && "node id out of range");
  std::vector<EdgeId> Live;
  for (EdgeId E : Succs[N])
    if (!Edges[E].Dead)
      Live.push_back(E);
  return Live;
}

std::vector<EdgeId> Digraph::inEdges(NodeId N) const {
  assert(N < numNodes() && "node id out of range");
  std::vector<EdgeId> Live;
  for (EdgeId E : Preds[N])
    if (!Edges[E].Dead)
      Live.push_back(E);
  return Live;
}

std::vector<NodeId> Digraph::successors(NodeId N) const {
  std::vector<NodeId> Nodes;
  for (EdgeId E : Succs[N])
    if (!Edges[E].Dead)
      Nodes.push_back(Edges[E].To);
  return Nodes;
}

std::vector<NodeId> Digraph::predecessors(NodeId N) const {
  std::vector<NodeId> Nodes;
  for (EdgeId E : Preds[N])
    if (!Edges[E].Dead)
      Nodes.push_back(Edges[E].From);
  return Nodes;
}

unsigned Digraph::outDegree(NodeId N) const {
  unsigned Count = 0;
  for (EdgeId E : Succs[N])
    if (!Edges[E].Dead)
      ++Count;
  return Count;
}

unsigned Digraph::inDegree(NodeId N) const {
  unsigned Count = 0;
  for (EdgeId E : Preds[N])
    if (!Edges[E].Dead)
      ++Count;
  return Count;
}

EdgeId Digraph::findEdge(NodeId From, NodeId To, LabelId Label) const {
  for (EdgeId E : Succs[From]) {
    const Edge &Ed = Edges[E];
    if (!Ed.Dead && Ed.To == To && Ed.Label == Label)
      return E;
  }
  return InvalidEdge;
}

Digraph Digraph::reversed() const {
  Digraph R(numNodes());
  for (const Edge &Ed : Edges)
    if (!Ed.Dead)
      R.addEdge(Ed.To, Ed.From, Ed.Label);
  return R;
}
