//===--- graph/DepthFirst.cpp - DFS numbering and edge classes ------------===//

#include "graph/DepthFirst.h"

#include <algorithm>

using namespace ptran;

DfsResult::DfsResult(const GraphView &G, NodeId Root)
    : Pre(G.numNodes(), InvalidOrder), Post(G.numNodes(), InvalidOrder),
      Parent(G.numNodes(), InvalidNode),
      EdgeKinds(G.numEdgeSlots(), DfsEdgeKind::Unreached) {
  if (G.numNodes() == 0)
    return;
  assert(Root < G.numNodes() && "root out of range");

  unsigned PreCounter = 0;
  unsigned PostCounter = 0;
  std::vector<NodeId> PostorderNodes;
  PostorderNodes.reserve(G.numNodes());

  // Explicit stack of (node, adjacency cursor) frames. The CSR ranges are
  // borrowed straight from the view — no per-node edge-list copies.
  struct Frame {
    NodeId N;
    const CsrEdgeRef *Next;
    const CsrEdgeRef *End;
  };
  std::vector<Frame> Stack;
  Stack.reserve(64);
  // On-stack marker distinguishes retreating edges from cross edges.
  std::vector<bool> OnStack(G.numNodes(), false);

  auto Push = [&](NodeId N) {
    GraphView::Range Out = G.succs(N);
    Stack.push_back({N, Out.begin(), Out.end()});
  };

  Pre[Root] = PreCounter++;
  OnStack[Root] = true;
  Push(Root);

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Next == F.End) {
      Post[F.N] = PostCounter++;
      PostorderNodes.push_back(F.N);
      OnStack[F.N] = false;
      Stack.pop_back();
      continue;
    }
    const CsrEdgeRef &E = *F.Next++;
    NodeId To = E.Node;
    if (Pre[To] == InvalidOrder) {
      EdgeKinds[E.Edge] = DfsEdgeKind::Tree;
      Parent[To] = F.N;
      Pre[To] = PreCounter++;
      OnStack[To] = true;
      Push(To);
    } else if (OnStack[To]) {
      EdgeKinds[E.Edge] = DfsEdgeKind::Retreating;
    } else if (Pre[To] > Pre[F.N]) {
      EdgeKinds[E.Edge] = DfsEdgeKind::Forward;
    } else {
      EdgeKinds[E.Edge] = DfsEdgeKind::Cross;
    }
  }

  Rpo.assign(PostorderNodes.rbegin(), PostorderNodes.rend());
}

DfsResult::DfsResult(const Digraph &G, NodeId Root)
    : DfsResult(CsrGraph(G).view(), Root) {}

bool DfsResult::isTreeAncestor(NodeId Ancestor, NodeId N) const {
  assert(isReachable(Ancestor) && isReachable(N) &&
         "tree ancestry queries require reachable nodes");
  // In a DFS, Ancestor is a tree ancestor of N iff N's discovery lies within
  // Ancestor's discovery/finish bracket. Using pre/post numbering:
  return Pre[Ancestor] <= Pre[N] && Post[Ancestor] >= Post[N];
}

std::vector<NodeId> ptran::reversePostorder(const GraphView &G, NodeId Root) {
  return DfsResult(G, Root).reversePostorder();
}

std::vector<NodeId> ptran::reversePostorder(const Digraph &G, NodeId Root) {
  return reversePostorder(CsrGraph(G).view(), Root);
}

std::optional<std::vector<NodeId>>
ptran::topologicalOrder(const GraphView &G) {
  unsigned N = G.numNodes();
  std::vector<unsigned> InDeg(N, 0);
  for (NodeId Node = 0; Node < N; ++Node)
    InDeg[Node] = G.inDegree(Node);

  std::vector<NodeId> Worklist;
  for (NodeId Node = 0; Node < N; ++Node)
    if (InDeg[Node] == 0)
      Worklist.push_back(Node);

  std::vector<NodeId> Order;
  Order.reserve(N);
  // Pop from the front to keep the order stable w.r.t. node ids.
  for (size_t I = 0; I < Worklist.size(); ++I) {
    NodeId Node = Worklist[I];
    Order.push_back(Node);
    for (const CsrEdgeRef &E : G.succs(Node))
      if (--InDeg[E.Node] == 0)
        Worklist.push_back(E.Node);
  }
  if (Order.size() != N)
    return std::nullopt; // A cycle keeps some in-degrees positive.
  return Order;
}

std::optional<std::vector<NodeId>>
ptran::topologicalOrder(const Digraph &G) {
  return topologicalOrder(CsrGraph(G).view());
}
