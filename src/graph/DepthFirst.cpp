//===--- graph/DepthFirst.cpp - DFS numbering and edge classes ------------===//

#include "graph/DepthFirst.h"

#include <algorithm>

using namespace ptran;

DfsResult::DfsResult(const Digraph &G, NodeId Root)
    : Pre(G.numNodes(), InvalidOrder), Post(G.numNodes(), InvalidOrder),
      Parent(G.numNodes(), InvalidNode),
      EdgeKinds(G.numEdgeSlots(), DfsEdgeKind::Unreached) {
  if (G.numNodes() == 0)
    return;
  assert(Root < G.numNodes() && "root out of range");

  unsigned PreCounter = 0;
  unsigned PostCounter = 0;
  std::vector<NodeId> PostorderNodes;
  PostorderNodes.reserve(G.numNodes());

  // Explicit stack of (node, out-edge list, next index) frames.
  struct Frame {
    NodeId N;
    std::vector<EdgeId> Out;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  // On-stack marker distinguishes retreating edges from cross edges.
  std::vector<bool> OnStack(G.numNodes(), false);

  Pre[Root] = PreCounter++;
  OnStack[Root] = true;
  Stack.push_back({Root, G.outEdges(Root), 0});

  while (!Stack.empty()) {
    Frame &F = Stack.back();
    if (F.Next == F.Out.size()) {
      Post[F.N] = PostCounter++;
      PostorderNodes.push_back(F.N);
      OnStack[F.N] = false;
      Stack.pop_back();
      continue;
    }
    EdgeId E = F.Out[F.Next++];
    NodeId To = G.edge(E).To;
    if (Pre[To] == InvalidOrder) {
      EdgeKinds[E] = DfsEdgeKind::Tree;
      Parent[To] = F.N;
      Pre[To] = PreCounter++;
      OnStack[To] = true;
      Stack.push_back({To, G.outEdges(To), 0});
    } else if (OnStack[To]) {
      EdgeKinds[E] = DfsEdgeKind::Retreating;
    } else if (Pre[To] > Pre[F.N]) {
      EdgeKinds[E] = DfsEdgeKind::Forward;
    } else {
      EdgeKinds[E] = DfsEdgeKind::Cross;
    }
  }

  Rpo.assign(PostorderNodes.rbegin(), PostorderNodes.rend());
}

bool DfsResult::isTreeAncestor(NodeId Ancestor, NodeId N) const {
  assert(isReachable(Ancestor) && isReachable(N) &&
         "tree ancestry queries require reachable nodes");
  // In a DFS, Ancestor is a tree ancestor of N iff N's discovery lies within
  // Ancestor's discovery/finish bracket. Using pre/post numbering:
  return Pre[Ancestor] <= Pre[N] && Post[Ancestor] >= Post[N];
}

std::vector<NodeId> ptran::reversePostorder(const Digraph &G, NodeId Root) {
  return DfsResult(G, Root).reversePostorder();
}

std::optional<std::vector<NodeId>>
ptran::topologicalOrder(const Digraph &G) {
  unsigned N = G.numNodes();
  std::vector<unsigned> InDeg(N, 0);
  for (NodeId Node = 0; Node < N; ++Node)
    InDeg[Node] = G.inDegree(Node);

  std::vector<NodeId> Worklist;
  for (NodeId Node = 0; Node < N; ++Node)
    if (InDeg[Node] == 0)
      Worklist.push_back(Node);

  std::vector<NodeId> Order;
  Order.reserve(N);
  // Pop from the front to keep the order stable w.r.t. node ids.
  for (size_t I = 0; I < Worklist.size(); ++I) {
    NodeId Node = Worklist[I];
    Order.push_back(Node);
    for (NodeId Succ : G.successors(Node))
      if (--InDeg[Succ] == 0)
        Worklist.push_back(Succ);
  }
  if (Order.size() != N)
    return std::nullopt; // A cycle keeps some in-degrees positive.
  return Order;
}
