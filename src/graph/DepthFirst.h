//===--- graph/DepthFirst.h - DFS numbering and edge classes ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Depth-first traversal utilities: pre/post numbering, reverse postorder,
/// the depth-first spanning tree, DFS edge classification, reachability and
/// topological ordering. The interval analysis and the dominator solver are
/// both driven by reverse postorder.
///
/// All algorithms run over a GraphView (flat CSR adjacency, no per-node
/// allocation during traversal). The Digraph overloads remain as
/// deprecated shims that flatten into a temporary CsrGraph.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_GRAPH_DEPTHFIRST_H
#define PTRAN_GRAPH_DEPTHFIRST_H

#include "graph/GraphView.h"

#include <optional>
#include <vector>

namespace ptran {

/// DFS edge classification relative to the depth-first spanning tree.
enum class DfsEdgeKind {
  Tree,       ///< Edge to a first-visited node.
  Forward,    ///< Edge to a proper descendant (non-tree).
  Retreating, ///< Edge to an ancestor in the spanning tree.
  Cross,      ///< Edge to an unrelated, earlier-finished node.
  Unreached,  ///< Edge whose source is unreachable from the root.
};

/// Result of one depth-first traversal from a root node.
class DfsResult {
public:
  /// Runs an iterative DFS over \p G from \p Root. Successor edges are
  /// visited in insertion order, so the traversal is deterministic.
  DfsResult(const GraphView &G, NodeId Root);

  /// Deprecated shim: flattens \p G into a temporary CsrGraph first.
  [[deprecated("build a CsrGraph once and pass its GraphView")]]
  DfsResult(const Digraph &G, NodeId Root);

  bool isReachable(NodeId N) const { return Pre[N] != InvalidOrder; }

  /// Preorder (discovery) index, or InvalidOrder if unreachable.
  unsigned preorder(NodeId N) const { return Pre[N]; }

  /// Postorder (finish) index, or InvalidOrder if unreachable.
  unsigned postorder(NodeId N) const { return Post[N]; }

  /// DFS spanning-tree parent, or InvalidNode for the root / unreachable.
  NodeId parent(NodeId N) const { return Parent[N]; }

  /// Reachable nodes in reverse postorder (root first).
  const std::vector<NodeId> &reversePostorder() const { return Rpo; }

  /// Classification of edge \p E (an EdgeId of the source graph).
  DfsEdgeKind edgeKind(EdgeId E) const { return EdgeKinds[E]; }

  /// True if \p Ancestor is an ancestor of (or equal to) \p N in the DFS
  /// spanning tree. Both must be reachable.
  bool isTreeAncestor(NodeId Ancestor, NodeId N) const;

  unsigned numReachable() const { return static_cast<unsigned>(Rpo.size()); }

  static constexpr unsigned InvalidOrder = static_cast<unsigned>(-1);

private:
  std::vector<unsigned> Pre;
  std::vector<unsigned> Post;
  std::vector<NodeId> Parent;
  std::vector<NodeId> Rpo;
  std::vector<DfsEdgeKind> EdgeKinds;
};

/// \returns the reachable nodes of \p G from \p Root in reverse postorder.
std::vector<NodeId> reversePostorder(const GraphView &G, NodeId Root);

/// Deprecated shim: flattens \p G into a temporary CsrGraph first.
[[deprecated("build a CsrGraph once and pass its GraphView")]]
std::vector<NodeId> reversePostorder(const Digraph &G, NodeId Root);

/// \returns a topological order of all nodes if \p G is acyclic, or
/// std::nullopt if it contains a cycle. Isolated nodes are included.
std::optional<std::vector<NodeId>> topologicalOrder(const GraphView &G);

/// Deprecated shim: flattens \p G into a temporary CsrGraph first.
[[deprecated("build a CsrGraph once and pass its GraphView")]]
std::optional<std::vector<NodeId>> topologicalOrder(const Digraph &G);

} // namespace ptran

#endif // PTRAN_GRAPH_DEPTHFIRST_H
