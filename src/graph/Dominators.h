//===--- graph/Dominators.h - (Post)dominator trees ------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and postdominator trees via the Cooper-Harvey-Kennedy
/// iterative algorithm over reverse postorder. The control dependence
/// computation (Section 2 of the paper, following Ferrante-Ottenstein-
/// Warren) is driven by the postdominator tree of the extended CFG, and the
/// reducibility test uses the forward dominator tree.
///
/// The solver runs over a GraphView; Direction::Post simply swaps the
/// view's successor and predecessor arrays (GraphView::reversed()), so no
/// reversed graph is ever materialized. The Digraph overloads remain as
/// deprecated shims.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_GRAPH_DOMINATORS_H
#define PTRAN_GRAPH_DOMINATORS_H

#include "graph/GraphView.h"

#include <vector>

namespace ptran {

/// A dominator tree over the nodes of a graph reachable from a root.
/// For postdominators, construct with Direction::Post and the exit node;
/// the tree is then computed on the reversed view.
class DominatorTree {
public:
  enum class Direction { Forward, Post };

  /// Builds the (post)dominator tree of \p G rooted at \p Root. Nodes not
  /// reachable (in the chosen direction) have no idom and dominate nothing.
  DominatorTree(const GraphView &G, NodeId Root,
                Direction Dir = Direction::Forward);

  /// Deprecated shim: flattens \p G into a temporary CsrGraph first.
  [[deprecated("build a CsrGraph once and pass its GraphView")]]
  DominatorTree(const Digraph &G, NodeId Root,
                Direction Dir = Direction::Forward);

  NodeId root() const { return Root; }

  bool isReachable(NodeId N) const { return Level[N] != InvalidLevel; }

  /// Immediate dominator of \p N; InvalidNode for the root or unreachable
  /// nodes.
  NodeId idom(NodeId N) const { return Idom[N]; }

  /// True if \p A dominates \p B (reflexively). Both must be reachable.
  bool dominates(NodeId A, NodeId B) const;

  /// True if \p A strictly dominates \p B.
  bool strictlyDominates(NodeId A, NodeId B) const {
    return A != B && dominates(A, B);
  }

  /// Nearest common dominator of \p A and \p B in the tree.
  NodeId findNearestCommonDominator(NodeId A, NodeId B) const;

  /// Depth of \p N below the root (root has level 0).
  unsigned level(NodeId N) const { return Level[N]; }

  /// Children of \p N in the dominator tree.
  const std::vector<NodeId> &children(NodeId N) const { return Kids[N]; }

  static constexpr unsigned InvalidLevel = static_cast<unsigned>(-1);

private:
  NodeId Root;
  std::vector<NodeId> Idom;
  std::vector<unsigned> Level;
  std::vector<std::vector<NodeId>> Kids;
  // Euler-style in/out numbering of the dominator tree for O(1) dominance
  // queries.
  std::vector<unsigned> TreeIn;
  std::vector<unsigned> TreeOut;
};

/// Tests whether \p G is reducible when entered at \p Root: every
/// retreating edge of a DFS must target a node that dominates its source
/// ("Compilers: Principles, Techniques, and Tools", the definition the
/// paper assumes). Unreachable nodes are ignored.
bool isReducible(const GraphView &G, NodeId Root);

/// Deprecated shim: flattens \p G into a temporary CsrGraph first.
[[deprecated("build a CsrGraph once and pass its GraphView")]]
bool isReducible(const Digraph &G, NodeId Root);

} // namespace ptran

#endif // PTRAN_GRAPH_DOMINATORS_H
