//===--- graph/Dominators.cpp - (Post)dominator trees ---------------------===//

#include "graph/Dominators.h"

#include "graph/DepthFirst.h"
#include "support/FatalError.h"

#include <algorithm>

using namespace ptran;

DominatorTree::DominatorTree(const GraphView &G, NodeId RootNode,
                             Direction Dir)
    : Root(RootNode), Idom(G.numNodes(), InvalidNode),
      Level(G.numNodes(), InvalidLevel), Kids(G.numNodes()),
      TreeIn(G.numNodes(), 0), TreeOut(G.numNodes(), 0) {
  if (G.numNodes() == 0)
    return;

  // Postdominators are dominators of the reversed view — a pointer swap,
  // not a graph copy.
  const GraphView Work = Dir == Direction::Post ? G.reversed() : G;

  DfsResult Dfs(Work, Root);
  const std::vector<NodeId> &Rpo = Dfs.reversePostorder();

  // RPO index per node; the CHK intersect walks toward lower RPO indices.
  std::vector<unsigned> RpoIndex(Work.numNodes(), DfsResult::InvalidOrder);
  for (unsigned I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = I;

  Idom[Root] = Root; // Temporarily self, per Cooper-Harvey-Kennedy.

  auto Intersect = [&](NodeId A, NodeId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N : Rpo) {
      if (N == Root)
        continue;
      NodeId NewIdom = InvalidNode;
      for (const CsrEdgeRef &P : Work.preds(N)) {
        NodeId Pred = P.Node;
        if (Idom[Pred] == InvalidNode)
          continue; // Not yet processed or unreachable.
        NewIdom = NewIdom == InvalidNode ? Pred : Intersect(Pred, NewIdom);
      }
      assert(NewIdom != InvalidNode &&
             "reachable non-root node must have a processed predecessor");
      if (Idom[N] != NewIdom) {
        Idom[N] = NewIdom;
        Changed = true;
      }
    }
  }

  Idom[Root] = InvalidNode; // The root has no immediate dominator.

  // Materialize children lists and levels.
  for (NodeId N : Rpo) {
    if (N == Root) {
      Level[N] = 0;
      continue;
    }
    Kids[Idom[N]].push_back(N);
  }
  // Compute levels and Euler in/out numbers by one dominator-tree walk.
  unsigned Timer = 0;
  struct WalkFrame {
    NodeId N;
    size_t Next = 0;
  };
  std::vector<WalkFrame> Walk;
  Walk.push_back({Root, 0});
  TreeIn[Root] = Timer++;
  Level[Root] = 0;
  while (!Walk.empty()) {
    WalkFrame &F = Walk.back();
    if (F.Next == Kids[F.N].size()) {
      TreeOut[F.N] = Timer++;
      Walk.pop_back();
      continue;
    }
    NodeId Child = Kids[F.N][F.Next++];
    Level[Child] = Level[F.N] + 1;
    TreeIn[Child] = Timer++;
    Walk.push_back({Child, 0});
  }
}

DominatorTree::DominatorTree(const Digraph &G, NodeId RootNode, Direction Dir)
    : DominatorTree(CsrGraph(G).view(), RootNode, Dir) {}

bool DominatorTree::dominates(NodeId A, NodeId B) const {
  assert(isReachable(A) && isReachable(B) &&
         "dominance queries require reachable nodes");
  return TreeIn[A] <= TreeIn[B] && TreeOut[A] >= TreeOut[B];
}

NodeId DominatorTree::findNearestCommonDominator(NodeId A, NodeId B) const {
  assert(isReachable(A) && isReachable(B) &&
         "LCA queries require reachable nodes");
  while (Level[A] > Level[B])
    A = Idom[A];
  while (Level[B] > Level[A])
    B = Idom[B];
  while (A != B) {
    A = Idom[A];
    B = Idom[B];
  }
  return A;
}

bool ptran::isReducible(const GraphView &G, NodeId Root) {
  if (G.numNodes() == 0)
    return true;
  DfsResult Dfs(G, Root);
  DominatorTree Dom(G, Root);
  for (NodeId N = 0; N < G.numNodes(); ++N)
    for (const CsrEdgeRef &E : G.succs(N))
      if (Dfs.edgeKind(E.Edge) == DfsEdgeKind::Retreating &&
          !Dom.dominates(E.Node, N))
        return false;
  return true;
}

bool ptran::isReducible(const Digraph &G, NodeId Root) {
  return isReducible(CsrGraph(G).view(), Root);
}
