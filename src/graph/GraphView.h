//===--- graph/GraphView.h - CSR adjacency and uniform view ----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flat, index-based graph representation every traversal kernel in
/// the pipeline consumes:
///
///   - CsrGraph freezes a Digraph's live edges into compressed-sparse-row
///     adjacency arrays (both directions), preserving per-node insertion
///     order and the original EdgeIds so side tables indexed by EdgeId
///     keep working;
///   - GraphView is the cheap non-owning window over those arrays: two
///     pointers per direction plus the node/edge counts. DepthFirst,
///     Dominators, Scc, the interval analysis and the control-dependence
///     builder are all written once against this view, so TimeAnalysis
///     and the frequency recurrences never see a node-object shape.
///
/// Iteration contracts (what makes results bit-identical to the old
/// pointer-walking code):
///
///   - succs(N) lists live out-edges of N in edge-insertion order —
///     exactly Digraph::outEdges(N)/successors(N);
///   - preds(N) lists live in-edges of N in edge-insertion order, which
///     (because Digraph ids edges monotonically) equals the successor
///     order of Digraph::reversed() — so postdominator construction over
///     reversed() and over GraphView::reversed() see identical orders;
///   - reversed() just swaps the two directions; no copy, no allocation.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_GRAPH_GRAPHVIEW_H
#define PTRAN_GRAPH_GRAPHVIEW_H

#include "graph/Digraph.h"

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ptran {

/// One adjacency entry of a CSR graph: the neighbor, the edge's label and
/// the original Digraph EdgeId (stable across the flattening, so EdgeId-
/// indexed side tables — DFS edge kinds, interval latch sets — carry over).
struct CsrEdgeRef {
  NodeId Node = InvalidNode;   ///< Successor (or predecessor) node.
  LabelId Label = 0;           ///< The edge's label.
  EdgeId Edge = InvalidEdge;   ///< Original edge id in the source Digraph.
};

/// Non-owning view over CSR adjacency arrays. Copyable, 56 bytes, no
/// allocation anywhere; reversed() is a pointer swap. The backing arrays
/// (normally a CsrGraph) must outlive the view.
class GraphView {
public:
  /// A contiguous run of adjacency entries; supports range-for.
  class Range {
  public:
    Range(const CsrEdgeRef *B, const CsrEdgeRef *E) : B(B), E(E) {}
    const CsrEdgeRef *begin() const { return B; }
    const CsrEdgeRef *end() const { return E; }
    size_t size() const { return static_cast<size_t>(E - B); }
    bool empty() const { return B == E; }
    const CsrEdgeRef &operator[](size_t I) const { return B[I]; }

  private:
    const CsrEdgeRef *B;
    const CsrEdgeRef *E;
  };

  GraphView() = default;
  GraphView(unsigned NumNodes, unsigned NumEdgeSlots, unsigned NumEdges,
            const uint32_t *SuccBegin, const CsrEdgeRef *Succ,
            const uint32_t *PredBegin, const CsrEdgeRef *Pred)
      : NumNodes(NumNodes), NumEdgeSlots(NumEdgeSlots), NumEdges(NumEdges),
        SuccBegin(SuccBegin), Succ(Succ), PredBegin(PredBegin), Pred(Pred) {}

  unsigned numNodes() const { return NumNodes; }
  /// Edge-id space of the source Digraph (including erased slots), for
  /// sizing EdgeId-indexed side tables.
  unsigned numEdgeSlots() const { return NumEdgeSlots; }
  /// Live edges in the view.
  unsigned numEdges() const { return NumEdges; }

  /// Live out-edges of \p N in insertion order.
  Range succs(NodeId N) const {
    assert(N < NumNodes && "node id out of range");
    return {Succ + SuccBegin[N], Succ + SuccBegin[N + 1]};
  }

  /// Live in-edges of \p N in edge-insertion order (CsrEdgeRef::Node is
  /// the *source* of each edge).
  Range preds(NodeId N) const {
    assert(N < NumNodes && "node id out of range");
    return {Pred + PredBegin[N], Pred + PredBegin[N + 1]};
  }

  unsigned outDegree(NodeId N) const {
    return static_cast<unsigned>(succs(N).size());
  }
  unsigned inDegree(NodeId N) const {
    return static_cast<unsigned>(preds(N).size());
  }

  /// The same graph with every edge flipped: succs and preds swap roles.
  /// Edge ids are preserved (unlike Digraph::reversed(), which renumbers).
  GraphView reversed() const {
    return GraphView(NumNodes, NumEdgeSlots, NumEdges, PredBegin, Pred,
                     SuccBegin, Succ);
  }

private:
  unsigned NumNodes = 0;
  unsigned NumEdgeSlots = 0;
  unsigned NumEdges = 0;
  const uint32_t *SuccBegin = nullptr;
  const CsrEdgeRef *Succ = nullptr;
  const uint32_t *PredBegin = nullptr;
  const CsrEdgeRef *Pred = nullptr;
};

/// Owning CSR snapshot of a Digraph's live edges. Build once per graph,
/// hand out views. Erased edges are dropped from adjacency but keep their
/// slot in the EdgeId space (numEdgeSlots()).
class CsrGraph {
public:
  CsrGraph() = default;
  explicit CsrGraph(const Digraph &G);

  GraphView view() const {
    return GraphView(NumNodes, NumEdgeSlots, NumEdges, SuccBegin.data(),
                     Succ.data(), PredBegin.data(), Pred.data());
  }
  operator GraphView() const { return view(); }

  unsigned numNodes() const { return NumNodes; }
  unsigned numEdgeSlots() const { return NumEdgeSlots; }
  unsigned numEdges() const { return NumEdges; }

private:
  unsigned NumNodes = 0;
  unsigned NumEdgeSlots = 0;
  unsigned NumEdges = 0;
  std::vector<uint32_t> SuccBegin; ///< NumNodes + 1 offsets into Succ.
  std::vector<CsrEdgeRef> Succ;
  std::vector<uint32_t> PredBegin; ///< NumNodes + 1 offsets into Pred.
  std::vector<CsrEdgeRef> Pred;
};

} // namespace ptran

#endif // PTRAN_GRAPH_GRAPHVIEW_H
