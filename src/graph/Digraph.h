//===--- graph/Digraph.h - Directed labelled multigraph --------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense-id directed multigraph with labelled edges. This is the carrier
/// for every graph in the pipeline: the control flow graph (Definition 1 in
/// the paper allows multiple differently-labelled edges between the same
/// node pair), the extended CFG, and the (forward) control dependence graph.
///
/// Nodes and edges are identified by dense 32-bit ids. Edges can be erased;
/// erased edges keep their id but are skipped during iteration, so edge ids
/// held by clients stay stable across mutation (the ECFG construction
/// replaces edges in place).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_GRAPH_DIGRAPH_H
#define PTRAN_GRAPH_DIGRAPH_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace ptran {

using NodeId = uint32_t;
using EdgeId = uint32_t;
using LabelId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId InvalidNode = static_cast<NodeId>(-1);
/// Sentinel for "no edge".
inline constexpr EdgeId InvalidEdge = static_cast<EdgeId>(-1);

/// A directed multigraph with a LabelId on every edge.
class Digraph {
public:
  /// One labelled edge. Erased edges remain in the edge table with
  /// Dead == true and are skipped by succ/pred iteration.
  struct Edge {
    NodeId From = InvalidNode;
    NodeId To = InvalidNode;
    LabelId Label = 0;
    bool Dead = false;
  };

  Digraph() = default;
  explicit Digraph(unsigned NumNodes) { addNodes(NumNodes); }

  /// Adds a new node and returns its id.
  NodeId addNode();

  /// Adds \p Count nodes; returns the id of the first one.
  NodeId addNodes(unsigned Count);

  /// Adds an edge From -> To with the given label; returns its id.
  EdgeId addEdge(NodeId From, NodeId To, LabelId Label);

  /// Marks edge \p E erased. Iteration skips it; its id stays valid.
  void eraseEdge(EdgeId E);

  unsigned numNodes() const { return static_cast<unsigned>(Succs.size()); }

  /// Total number of edge slots including erased ones. Useful for sizing
  /// side tables indexed by EdgeId.
  unsigned numEdgeSlots() const { return static_cast<unsigned>(Edges.size()); }

  /// Number of live (non-erased) edges.
  unsigned numEdges() const { return NumLiveEdges; }

  const Edge &edge(EdgeId E) const {
    assert(E < Edges.size() && "edge id out of range");
    return Edges[E];
  }

  bool isLive(EdgeId E) const { return !edge(E).Dead; }

  /// Live outgoing edge ids of \p N.
  std::vector<EdgeId> outEdges(NodeId N) const;

  /// Live incoming edge ids of \p N.
  std::vector<EdgeId> inEdges(NodeId N) const;

  /// Live successor nodes of \p N (with multiplicity, in insertion order).
  std::vector<NodeId> successors(NodeId N) const;

  /// Live predecessor nodes of \p N (with multiplicity).
  std::vector<NodeId> predecessors(NodeId N) const;

  /// Number of live outgoing edges of \p N.
  unsigned outDegree(NodeId N) const;

  /// Number of live incoming edges of \p N.
  unsigned inDegree(NodeId N) const;

  /// \returns the id of a live edge From -> To with \p Label, or InvalidEdge.
  EdgeId findEdge(NodeId From, NodeId To, LabelId Label) const;

  /// \returns a copy of this graph with every live edge reversed; erased
  /// edges are dropped, so edge ids do not correspond.
  Digraph reversed() const;

private:
  std::vector<Edge> Edges;
  std::vector<std::vector<EdgeId>> Succs;
  std::vector<std::vector<EdgeId>> Preds;
  unsigned NumLiveEdges = 0;
};

} // namespace ptran

#endif // PTRAN_GRAPH_DIGRAPH_H
