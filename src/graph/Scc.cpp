//===--- graph/Scc.cpp - Strongly connected components --------------------===//

#include "graph/Scc.h"

#include <algorithm>

using namespace ptran;

bool SccResult::isInCycle(const GraphView &G, NodeId N) const {
  const std::vector<NodeId> &Comp = Members[Component[N]];
  if (Comp.size() > 1)
    return true;
  // Single-node component: cyclic only with a self-loop.
  for (const CsrEdgeRef &E : G.succs(N))
    if (E.Node == N)
      return true;
  return false;
}

bool SccResult::isInCycle(const Digraph &G, NodeId N) const {
  return isInCycle(CsrGraph(G).view(), N);
}

SccResult ptran::computeSccs(const GraphView &G) {
  unsigned N = G.numNodes();
  SccResult Result;
  Result.Component.assign(N, 0);

  constexpr unsigned Unvisited = static_cast<unsigned>(-1);
  std::vector<unsigned> Index(N, Unvisited);
  std::vector<unsigned> LowLink(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<NodeId> Stack;
  unsigned NextIndex = 0;

  // Iterative Tarjan with explicit frames over borrowed CSR ranges.
  struct Frame {
    NodeId Node;
    const CsrEdgeRef *Next;
    const CsrEdgeRef *End;
  };
  std::vector<Frame> Frames;

  auto PushFrame = [&](NodeId Node) {
    GraphView::Range Out = G.succs(Node);
    Frames.push_back({Node, Out.begin(), Out.end()});
  };

  for (NodeId Start = 0; Start < N; ++Start) {
    if (Index[Start] != Unvisited)
      continue;
    Index[Start] = LowLink[Start] = NextIndex++;
    Stack.push_back(Start);
    OnStack[Start] = true;
    PushFrame(Start);

    while (!Frames.empty()) {
      Frame &F = Frames.back();
      if (F.Next != F.End) {
        NodeId Succ = (F.Next++)->Node;
        if (Index[Succ] == Unvisited) {
          Index[Succ] = LowLink[Succ] = NextIndex++;
          Stack.push_back(Succ);
          OnStack[Succ] = true;
          PushFrame(Succ);
        } else if (OnStack[Succ]) {
          LowLink[F.Node] = std::min(LowLink[F.Node], Index[Succ]);
        }
        continue;
      }
      // Finished this node: pop an SCC if it is a root.
      NodeId Done = F.Node;
      Frames.pop_back();
      if (!Frames.empty())
        LowLink[Frames.back().Node] =
            std::min(LowLink[Frames.back().Node], LowLink[Done]);
      if (LowLink[Done] == Index[Done]) {
        std::vector<NodeId> Comp;
        NodeId Member;
        do {
          Member = Stack.back();
          Stack.pop_back();
          OnStack[Member] = false;
          Comp.push_back(Member);
        } while (Member != Done);
        unsigned CompId = static_cast<unsigned>(Result.Members.size());
        for (NodeId M : Comp)
          Result.Component[M] = CompId;
        Result.Members.push_back(std::move(Comp));
      }
    }
  }
  return Result;
}

SccResult ptran::computeSccs(const Digraph &G) {
  return computeSccs(CsrGraph(G).view());
}
