//===--- graph/GraphView.cpp - CSR adjacency construction -----------------===//

#include "graph/GraphView.h"

using namespace ptran;

CsrGraph::CsrGraph(const Digraph &G)
    : NumNodes(G.numNodes()), NumEdgeSlots(G.numEdgeSlots()),
      NumEdges(G.numEdges()) {
  // Within one node a Digraph appends out-edges (and in-edges) in addEdge
  // call order, i.e. in increasing EdgeId order. A counting sort over the
  // edge table in EdgeId order therefore reproduces the per-node insertion
  // order of the old allocating accessors exactly.
  SuccBegin.assign(NumNodes + 1, 0);
  PredBegin.assign(NumNodes + 1, 0);
  for (EdgeId E = 0; E < NumEdgeSlots; ++E) {
    if (!G.isLive(E))
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    ++SuccBegin[Ed.From + 1];
    ++PredBegin[Ed.To + 1];
  }
  for (NodeId N = 0; N < NumNodes; ++N) {
    SuccBegin[N + 1] += SuccBegin[N];
    PredBegin[N + 1] += PredBegin[N];
  }
  Succ.resize(NumEdges);
  Pred.resize(NumEdges);
  std::vector<uint32_t> SuccFill(SuccBegin.begin(), SuccBegin.end() - 1);
  std::vector<uint32_t> PredFill(PredBegin.begin(), PredBegin.end() - 1);
  for (EdgeId E = 0; E < NumEdgeSlots; ++E) {
    if (!G.isLive(E))
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    Succ[SuccFill[Ed.From]++] = {Ed.To, Ed.Label, E};
    Pred[PredFill[Ed.To]++] = {Ed.From, Ed.Label, E};
  }
}
