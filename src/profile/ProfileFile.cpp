//===--- profile/ProfileFile.cpp - Durable on-disk profiles ---------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/ProfileFile.h"

#include "support/FaultInjection.h"
#include "support/Saturation.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

using namespace ptran;

uint32_t ptran::crc32Update(uint32_t State, const uint8_t *Data, size_t Len) {
  static const auto Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  for (size_t I = 0; I < Len; ++I)
    State = Table[(State ^ Data[I]) & 0xFFu] ^ (State >> 8);
  return State;
}

uint32_t ptran::crc32(const uint8_t *Data, size_t Len) {
  return crc32End(crc32Update(crc32Begin(), Data, Len));
}

uint64_t ptran::structuralFingerprintOf(const FunctionAnalysis &FA) {
  // FNV offset basis + golden-ratio mixing; must stay identical to the
  // historical ProgramDatabase::structuralFingerprint (which now
  // delegates here) so on-disk fingerprints match session cache keys.
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  Mix(FA.function().numStmts());
  Mix(FA.ecfg().cfg().numNodes());
  Mix(FA.cd().conditions().size());
  for (const ControlCondition &C : FA.cd().conditions()) {
    Mix(C.Node);
    Mix(static_cast<uint64_t>(C.Label));
  }
  return H;
}

uint64_t ptran::programFingerprintOf(const ProgramAnalysis &PA) {
  uint64_t H = 1469598103934665603ULL;
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  Mix(PA.program().functions().size());
  for (const auto &FPtr : PA.program().functions()) {
    if (const FunctionAnalysis *FA = PA.tryOf(*FPtr))
      Mix(structuralFingerprintOf(*FA));
    else
      Mix(0x4241444642414446ULL); // Failed-analysis marker.
  }
  return H;
}

namespace {

//===--- little-endian byte IO --------------------------------------------===//

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  putU64(Out, Bits);
}

/// Bounds-checked forward reader over a byte range. Every get*() checks
/// the remaining length first, so arbitrarily garbled input can only make
/// ok() false — never an out-of-bounds read.
struct ByteReader {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  bool Failed = false;

  ByteReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool ok() const { return !Failed; }
  size_t remaining() const { return Failed ? 0 : Size - Pos; }

  uint32_t getU32() {
    if (remaining() < 4) {
      Failed = true;
      return 0;
    }
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
    Pos += 4;
    return V;
  }

  uint64_t getU64() {
    if (remaining() < 8) {
      Failed = true;
      return 0;
    }
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
    Pos += 8;
    return V;
  }

  double getF64() {
    uint64_t Bits = getU64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }

  std::string getString(size_t Len) {
    if (remaining() < Len) {
      Failed = true;
      return {};
    }
    std::string S(reinterpret_cast<const char *>(Data + Pos), Len);
    Pos += Len;
    return S;
  }
};

void serializePayload(std::vector<uint8_t> &Out, const FunctionSection &S) {
  putU32(Out, static_cast<uint32_t>(S.Counters.size()));
  for (double C : S.Counters)
    putF64(Out, C);
  putU32(Out, static_cast<uint32_t>(S.Loops.size()));
  for (const ProfileLoopMoments &L : S.Loops) {
    putU32(Out, L.HeaderStmt);
    putF64(Out, L.Entries);
    putF64(Out, L.Sum);
    putF64(Out, L.SumSq);
  }
}

/// Parses one section payload. Returns false (leaving \p S empty) when the
/// payload is internally inconsistent — possible even under a matching CRC
/// if the writer was corrupt in memory.
bool parsePayload(const uint8_t *Data, size_t Size, FunctionSection &S) {
  ByteReader R(Data, Size);
  uint32_t NumCounters = R.getU32();
  if (!R.ok() || R.remaining() < static_cast<size_t>(NumCounters) * 8)
    return false;
  S.Counters.reserve(NumCounters);
  for (uint32_t I = 0; I < NumCounters; ++I)
    S.Counters.push_back(R.getF64());
  uint32_t NumLoops = R.getU32();
  if (!R.ok() || R.remaining() < static_cast<size_t>(NumLoops) * 28)
    return false;
  S.Loops.reserve(NumLoops);
  for (uint32_t I = 0; I < NumLoops; ++I) {
    ProfileLoopMoments L;
    L.HeaderStmt = R.getU32();
    L.Entries = R.getF64();
    L.Sum = R.getF64();
    L.SumSq = R.getF64();
    S.Loops.push_back(L);
  }
  if (!R.ok() || R.remaining() != 0) {
    S.Counters.clear();
    S.Loops.clear();
    return false;
  }
  return true;
}

} // namespace

ProfileFile ProfileFile::capture(const ProgramAnalysis &PA,
                                 const ProgramPlan &Plan,
                                 const ProfileRuntime &RT,
                                 const LoopFrequencyStats *Stats,
                                 uint32_t Runs) {
  ProfileFile PF;
  PF.ProgramFingerprint = programFingerprintOf(PA);
  PF.Mode = Plan.mode();
  PF.Runs = Runs;
  for (const auto &FPtr : PA.program().functions()) {
    const FunctionAnalysis *FA = PA.tryOf(*FPtr);
    if (!FA)
      continue; // Failed analysis: no plan, no counters.
    FunctionSection S;
    S.Name = FPtr->name();
    S.Fingerprint = structuralFingerprintOf(*FA);
    S.Counters = RT.countersFor(*FPtr);
    if (Stats)
      for (const auto &[Header, M] : Stats->momentsOf(*FPtr))
        S.Loops.push_back({static_cast<uint32_t>(Header), M.Entries, M.Sum,
                           M.SumSq});
    PF.Sections.push_back(std::move(S));
  }
  return PF;
}

std::vector<uint8_t> ProfileFile::serialize() const {
  // Payloads first, so the directory can carry offsets and CRCs.
  std::vector<std::vector<uint8_t>> Payloads;
  Payloads.reserve(Sections.size());
  size_t HeaderSize = 4 + 4 + 8 + 4 + 4 + 4; // magic..numFunctions
  for (const FunctionSection &S : Sections) {
    Payloads.emplace_back();
    serializePayload(Payloads.back(), S);
    HeaderSize += 4 + S.Name.size() + 8 + 8 + 8 + 4; // directory entry
  }
  HeaderSize += 4; // header CRC

  std::vector<uint8_t> Out;
  putU32(Out, MagicValue);
  putU32(Out, Version);
  putU64(Out, ProgramFingerprint);
  putU32(Out, static_cast<uint32_t>(Mode));
  putU32(Out, Runs);
  putU32(Out, static_cast<uint32_t>(Sections.size()));

  uint64_t Offset = HeaderSize;
  for (size_t I = 0; I < Sections.size(); ++I) {
    const FunctionSection &S = Sections[I];
    putU32(Out, static_cast<uint32_t>(S.Name.size()));
    Out.insert(Out.end(), S.Name.begin(), S.Name.end());
    putU64(Out, S.Fingerprint);
    putU64(Out, Offset);
    putU64(Out, Payloads[I].size());
    putU32(Out, crc32(Payloads[I].data(), Payloads[I].size()));
    Offset += Payloads[I].size();
  }
  putU32(Out, crc32(Out.data(), Out.size()));

  for (const std::vector<uint8_t> &P : Payloads)
    Out.insert(Out.end(), P.begin(), P.end());
  return Out;
}

std::optional<ProfileFile>
ProfileFile::deserialize(const std::vector<uint8_t> &Bytes,
                         DiagnosticEngine *Diags) {
  auto HeaderError = [&](const std::string &What) -> std::optional<ProfileFile> {
    if (Diags)
      Diags->error("cannot load profile: " + What);
    return std::nullopt;
  };

  ByteReader R(Bytes.data(), Bytes.size());
  if (R.getU32() != MagicValue)
    return HeaderError("bad magic (not a ptran profile file)");
  uint32_t FileVersion = R.getU32();
  if (FileVersion != CurrentVersion)
    return HeaderError("unsupported version " + std::to_string(FileVersion) +
                       " (this build reads version " +
                       std::to_string(CurrentVersion) + ")");

  ProfileFile PF;
  PF.Version = FileVersion;
  PF.ProgramFingerprint = R.getU64();
  uint32_t ModeValue = R.getU32();
  PF.Runs = R.getU32();
  uint32_t NumFunctions = R.getU32();
  if (!R.ok())
    return HeaderError("truncated header");
  if (ModeValue > static_cast<uint32_t>(ProfileMode::Smart))
    return HeaderError("invalid profile mode " + std::to_string(ModeValue));
  PF.Mode = static_cast<ProfileMode>(ModeValue);

  struct DirEntry {
    uint64_t Offset = 0;
    uint64_t Size = 0;
    uint32_t Crc = 0;
  };
  std::vector<DirEntry> Dir;
  Dir.reserve(std::min<size_t>(NumFunctions, Bytes.size() / 32));
  for (uint32_t I = 0; I < NumFunctions; ++I) {
    uint32_t NameLen = R.getU32();
    FunctionSection S;
    S.Name = R.getString(NameLen);
    S.Fingerprint = R.getU64();
    DirEntry E;
    E.Offset = R.getU64();
    E.Size = R.getU64();
    E.Crc = R.getU32();
    if (!R.ok())
      return HeaderError("truncated or garbled directory");
    Dir.push_back(E);
    PF.Sections.push_back(std::move(S));
  }

  // The header CRC covers every byte read so far; nothing above can be
  // trusted until it checks out.
  size_t CrcPos = R.Pos;
  uint32_t StoredCrc = R.getU32();
  if (!R.ok())
    return HeaderError("truncated header (missing checksum)");
  if (crc32(Bytes.data(), CrcPos) != StoredCrc)
    return HeaderError("header checksum mismatch (corrupt or truncated file)");

  // Directory is now trusted: validate and parse each payload in
  // isolation, so one bad section cannot take down its neighbors.
  for (size_t I = 0; I < PF.Sections.size(); ++I) {
    FunctionSection &S = PF.Sections[I];
    const DirEntry &E = Dir[I];
    auto Invalidate = [&](const std::string &What) {
      S.Valid = false;
      S.Issue = What;
      S.Counters.clear();
      S.Loops.clear();
      if (Diags)
        Diags->warning("profile section for " + S.Name + ": " + What);
    };
    if (E.Offset > Bytes.size() || E.Size > Bytes.size() - E.Offset) {
      Invalidate("section extends past end of file (truncated)");
      continue;
    }
    const uint8_t *Payload = Bytes.data() + E.Offset;
    if (crc32(Payload, E.Size) != E.Crc) {
      Invalidate("section checksum mismatch (corrupt data)");
      continue;
    }
    if (!parsePayload(Payload, E.Size, S))
      Invalidate("section payload is garbled");
  }
  return PF;
}

namespace {

/// One attempt at writing \p Bytes to \p Path. Every failure mode here is
/// transient by the retry taxonomy (the bytes themselves are fixed);
/// \p Error receives the message of the failing step.
bool writeBytesOnce(const std::string &Path, const std::vector<uint8_t> &Bytes,
                    std::string &Error) {
  if (FaultInjection::maybeFailIo()) {
    Error = "cannot write profile " + Path + ": injected IO failure";
    return false;
  }
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open profile " + Path + " for writing";
    return false;
  }
  size_t Written = std::fwrite(Bytes.data(), 1, Bytes.size(), F);
  if (std::fclose(F) != 0 || Written != Bytes.size()) {
    Error = "short write while saving profile " + Path;
    return false;
  }
  return true;
}

/// One attempt at reading all of \p Path into \p Bytes. Transient only;
/// whether the bytes parse is the caller's (permanent) concern.
bool readBytesOnce(const std::string &Path, std::vector<uint8_t> &Bytes,
                   std::string &Error) {
  if (FaultInjection::maybeFailIo()) {
    Error = "cannot read profile " + Path + ": injected IO failure";
    return false;
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open profile " + Path;
    return false;
  }
  Bytes.clear();
  uint8_t Buf[65536];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool ReadOk = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOk) {
    Error = "read error while loading profile " + Path;
    return false;
  }
  return true;
}

} // namespace

bool ProfileFile::saveToFile(const std::string &Path,
                             DiagnosticEngine *Diags) const {
  return saveToFile(Path, Diags, RetryPolicy());
}

bool ProfileFile::saveToFile(const std::string &Path, DiagnosticEngine *Diags,
                             const RetryPolicy &Retry, ObsSink *Obs) const {
  // Serialize (and apply the simulated disk corruption, which flips after
  // the CRCs are computed so the damage is real and a later load must
  // detect it) exactly once: retried attempts write identical bytes.
  std::vector<uint8_t> Bytes = serialize();
  FaultInjection::maybeFlipByte(Bytes);

  std::string LastError;
  RetryOutcome Out = retryWithBackoff(
      Retry,
      [&] {
        return writeBytesOnce(Path, Bytes, LastError)
                   ? AttemptResult::Success
                   : AttemptResult::Transient;
      },
      /*Cancel=*/nullptr, Obs);
  if (!Out.Ok) {
    if (Diags)
      Diags->error(LastError +
                   (Out.Attempts > 1
                        ? " (persisted across " +
                              std::to_string(Out.Attempts) + " attempts)"
                        : ""));
    return false;
  }
  if (Out.Retries > 0 && Diags)
    Diags->note(SourceLoc(), "profile write to " + Path + " succeeded after " +
                                 std::to_string(Out.Retries) +
                                 " retried transient IO failures");
  return true;
}

std::optional<ProfileFile> ProfileFile::loadFromFile(const std::string &Path,
                                                     DiagnosticEngine *Diags) {
  return loadFromFile(Path, Diags, RetryPolicy());
}

std::optional<ProfileFile>
ProfileFile::loadFromFile(const std::string &Path, DiagnosticEngine *Diags,
                          const RetryPolicy &Retry, ObsSink *Obs) {
  std::vector<uint8_t> Bytes;
  std::string LastError;
  RetryOutcome Out = retryWithBackoff(
      Retry,
      [&] {
        return readBytesOnce(Path, Bytes, LastError)
                   ? AttemptResult::Success
                   : AttemptResult::Transient;
      },
      /*Cancel=*/nullptr, Obs);
  if (!Out.Ok) {
    if (Diags)
      Diags->error(LastError +
                   (Out.Attempts > 1
                        ? " (persisted across " +
                              std::to_string(Out.Attempts) + " attempts)"
                        : ""));
    return std::nullopt;
  }
  if (Out.Retries > 0 && Diags)
    Diags->note(SourceLoc(), "profile read from " + Path +
                                 " succeeded after " +
                                 std::to_string(Out.Retries) +
                                 " retried transient IO failures");
  // Corruption is permanent — deserialize stays outside the retry loop.
  return deserialize(Bytes, Diags);
}

bool ProfileFile::merge(const ProfileFile &Other, DiagnosticEngine *Diags) {
  if (Other.ProgramFingerprint != ProgramFingerprint) {
    if (Diags)
      Diags->error("cannot merge profiles: program fingerprint mismatch "
                   "(recorded against different program versions)");
    return false;
  }
  if (Other.Mode != Mode) {
    if (Diags)
      Diags->error(std::string("cannot merge profiles: counter mode ") +
                   profileModeName(Other.Mode) + " vs " +
                   profileModeName(Mode));
    return false;
  }

  for (const FunctionSection &Theirs : Other.Sections) {
    auto Skip = [&](const std::string &Why) {
      if (Diags)
        Diags->warning("merge: skipping section for " + Theirs.Name + ": " +
                       Why);
    };
    if (!Theirs.Valid) {
      Skip("section is invalid (" + Theirs.Issue + ")");
      continue;
    }
    FunctionSection *Ours = nullptr;
    for (FunctionSection &S : Sections)
      if (S.Name == Theirs.Name)
        Ours = &S;
    if (!Ours) {
      Skip("unknown function");
      continue;
    }
    if (!Ours->Valid) {
      Skip("local section is invalid (" + Ours->Issue + ")");
      continue;
    }
    if (Ours->Fingerprint != Theirs.Fingerprint) {
      Skip("function fingerprint mismatch");
      continue;
    }
    if (Ours->Counters.size() != Theirs.Counters.size()) {
      Skip("counter count mismatch");
      continue;
    }
    bool Saturated = false;
    for (size_t I = 0; I < Ours->Counters.size(); ++I)
      Saturated |= saturatingAdd(Ours->Counters[I], Theirs.Counters[I]);
    for (const ProfileLoopMoments &L : Theirs.Loops) {
      ProfileLoopMoments *Mine = nullptr;
      for (ProfileLoopMoments &M : Ours->Loops)
        if (M.HeaderStmt == L.HeaderStmt)
          Mine = &M;
      if (!Mine) {
        // A loop this accumulation never entered before; adopt it.
        Ours->Loops.push_back(L);
        continue;
      }
      Saturated |= saturatingAdd(Mine->Entries, L.Entries);
      Saturated |= saturatingAdd(Mine->Sum, L.Sum);
      Saturated |= saturatingAdd(Mine->SumSq, L.SumSq);
    }
    if (Saturated && Diags)
      Diags->warning("merge: counters for " + Theirs.Name +
                     " saturated at 2^53; totals are now lower bounds");
  }

  uint64_t MergedRuns = static_cast<uint64_t>(Runs) + Other.Runs;
  Runs = MergedRuns > UINT32_MAX ? UINT32_MAX
                                 : static_cast<uint32_t>(MergedRuns);
  return true;
}

const FunctionSection *ProfileFile::sectionFor(std::string_view Name) const {
  for (const FunctionSection &S : Sections)
    if (S.Name == Name)
      return &S;
  return nullptr;
}
