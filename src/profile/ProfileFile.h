//===--- profile/ProfileFile.h - Durable on-disk profiles -------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A durable, integrity-checked on-disk format for profile data (recovered
/// counter values plus loop-frequency moments), the persistent half of the
/// paper's "program database". Layout (all integers little-endian):
///
///   magic "PTPF" | u32 version | u64 program fingerprint | u32 mode
///   | u32 runs | u32 numFunctions
///   | per function: u32 nameLen | name | u64 fingerprint
///                   | u64 offset | u64 size | u32 sectionCrc
///   | u32 headerCrc            (CRC32 of every byte above)
///   | section payloads, contiguous, one per directory entry:
///       u32 counterCount | f64 counters...
///       | u32 loopCount | per loop: u32 headerStmt | f64 entries
///                                   | f64 sum | f64 sumSq
///
/// Integrity design: the header — including the full directory of names,
/// fingerprints, offsets, sizes and per-section CRCs — is covered by one
/// trailing header CRC, and every payload byte is covered by exactly one
/// section CRC. A corrupted header fails the whole load (nothing can be
/// trusted); a corrupted payload invalidates only its own section, and the
/// trusted directory still names the affected function, so callers can
/// quarantine precisely. Every byte of a valid file is covered by exactly
/// one of the two CRC layers: any single-byte corruption is detected.
///
/// Merging profiles from multiple runs is saturating: counter and moment
/// sums clamp at 2^53 (the largest exactly-representable integer double)
/// with a diagnostic, instead of silently losing integer precision.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_PROFILEFILE_H
#define PTRAN_PROFILE_PROFILEFILE_H

#include "profile/CounterPlan.h"
#include "profile/ProfileRuntime.h"
#include "support/Diagnostics.h"
#include "support/Retry.h"
#include "support/Saturation.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptran {

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320) of \p Len bytes at \p Data.
uint32_t crc32(const uint8_t *Data, size_t Len);

/// Streaming form for checksumming data that is produced in pieces (the
/// durable layer's snapshot writer): seed with crc32Begin(), fold each
/// buffer through crc32Update, finish with crc32End. crc32() above is
/// exactly crc32End(crc32Update(crc32Begin(), Data, Len)).
inline uint32_t crc32Begin() { return 0xFFFFFFFFu; }
uint32_t crc32Update(uint32_t State, const uint8_t *Data, size_t Len);
inline uint32_t crc32End(uint32_t State) { return State ^ 0xFFFFFFFFu; }

/// Structural fingerprint of one function: statement count, ECFG size and
/// the full control-condition list. Profiles recorded against a different
/// version of the function hash differently. (ProgramDatabase::
/// structuralFingerprint delegates here; the values are identical.)
uint64_t structuralFingerprintOf(const FunctionAnalysis &FA);

/// Fingerprint of a whole analyzed program: the per-function fingerprints
/// mixed in program order. Functions whose analysis failed contribute a
/// fixed marker, so two programs differing only in which functions
/// analyzed cleanly still hash apart.
uint64_t programFingerprintOf(const ProgramAnalysis &PA);

/// What estimation should do with a function whose profile data fails
/// validation.
enum class BadProfilePolicy {
  Fail,       ///< Fail the whole query (strict mode).
  Quarantine, ///< Degrade that function to static frequencies, keep going.
};

/// Per-entry loop moments as stored on disk (header-statement keyed, like
/// LoopFrequencyStats).
struct ProfileLoopMoments {
  uint32_t HeaderStmt = 0;
  double Entries = 0;
  double Sum = 0;
  double SumSq = 0;
};

/// One function's slice of a profile file.
struct FunctionSection {
  std::string Name;
  uint64_t Fingerprint = 0;
  std::vector<double> Counters;
  std::vector<ProfileLoopMoments> Loops;
  /// False when this section failed its CRC or payload parse on load; the
  /// name and fingerprint (from the CRC-protected directory) stay
  /// trustworthy, Counters/Loops are empty, and Issue says what happened.
  bool Valid = true;
  std::string Issue;
};

/// An in-memory profile file: capture, (de)serialization with integrity
/// validation, file IO, and saturating multi-run merge.
class ProfileFile {
public:
  static constexpr uint32_t MagicValue = 0x46505450; // "PTPF" little-endian.
  static constexpr uint32_t CurrentVersion = 1;
  /// Alias of support/Saturation.h's CounterSaturationLimit (2^53), kept
  /// on the class for existing callers; merges clamp here (with a
  /// diagnostic) instead of silently losing precision.
  static constexpr double SaturationLimit = CounterSaturationLimit;

  ProfileFile() = default;

  /// Snapshots the current counters of \p RT (and, when \p Stats is
  /// non-null, its loop moments) into a profile for \p PA's program.
  /// \p Runs records how many profiled runs the counters accumulate.
  static ProfileFile capture(const ProgramAnalysis &PA,
                             const ProgramPlan &Plan,
                             const ProfileRuntime &RT,
                             const LoopFrequencyStats *Stats, uint32_t Runs);

  /// Serializes to the on-disk byte layout.
  std::vector<uint8_t> serialize() const;

  /// Parses \p Bytes. Header/directory corruption (bad magic, version,
  /// truncation, header CRC mismatch) fails the whole load: nullopt, with
  /// an error on \p Diags. A section whose CRC or payload parse fails
  /// comes back with Valid=false and a warning naming the function; the
  /// remaining sections load normally.
  static std::optional<ProfileFile> deserialize(const std::vector<uint8_t> &Bytes,
                                                DiagnosticEngine *Diags);

  /// serialize() + write to \p Path. False (with an error on \p Diags) on
  /// IO failure. Fault-injection sites: io.fail, profile.flip (the flip
  /// corrupts the written image, simulating disk corruption).
  bool saveToFile(const std::string &Path, DiagnosticEngine *Diags) const;

  /// Retry-wrapped save: transient failures (injected io.fail, a failed
  /// open, a short write) are retried per \p Retry with exponential
  /// backoff; a write that eventually succeeds reports nothing but a note,
  /// only a persistent failure surfaces as an error. The byte image is
  /// serialized once, so every attempt writes identical bytes. \p Obs,
  /// when non-null, receives one `resilience.io_retries` per retry.
  bool saveToFile(const std::string &Path, DiagnosticEngine *Diags,
                  const RetryPolicy &Retry, ObsSink *Obs = nullptr) const;

  /// Reads \p Path and deserializes. Fault-injection site: io.fail.
  static std::optional<ProfileFile> loadFromFile(const std::string &Path,
                                                 DiagnosticEngine *Diags);

  /// Retry-wrapped load. Only the IO is retried (injected io.fail, failed
  /// open, read error): corruption found by deserialize() is a permanent
  /// failure that no retry can fix, so it surfaces immediately. Merging is
  /// in-memory; callers merging many files get retry coverage by loading
  /// each file through this overload.
  static std::optional<ProfileFile> loadFromFile(const std::string &Path,
                                                 DiagnosticEngine *Diags,
                                                 const RetryPolicy &Retry,
                                                 ObsSink *Obs = nullptr);

  /// Accumulates \p Other into this profile. Requires matching program
  /// fingerprint and mode (false + error otherwise). Sections match by
  /// name; a section of \p Other that is invalid, unknown here, or shaped
  /// differently (fingerprint / counter count) is skipped with a warning.
  /// Sums saturate at SaturationLimit with a once-per-function warning.
  bool merge(const ProfileFile &Other, DiagnosticEngine *Diags);

  uint32_t version() const { return Version; }
  uint64_t programFingerprint() const { return ProgramFingerprint; }
  ProfileMode mode() const { return Mode; }
  uint32_t runs() const { return Runs; }

  const std::vector<FunctionSection> &sections() const { return Sections; }
  /// Mutable access, for tests that construct corrupt profiles in memory.
  std::vector<FunctionSection> &sectionsMutable() { return Sections; }

  /// The section named \p Name, or null.
  const FunctionSection *sectionFor(std::string_view Name) const;

private:
  uint32_t Version = CurrentVersion;
  uint64_t ProgramFingerprint = 0;
  ProfileMode Mode = ProfileMode::Smart;
  uint32_t Runs = 0;
  std::vector<FunctionSection> Sections;
};

} // namespace ptran

#endif // PTRAN_PROFILE_PROFILEFILE_H
