//===--- profile/ConsistencyCheck.h - Profile sanity checking --*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks a set of TOTAL_FREQ values against the algebraic identities
/// Section 3's optimizations are built on:
///
///   - pseudo (Z) conditions are zero;
///   - all totals are non-negative, and branch totals never exceed their
///     node's execution total;
///   - when every branch label of a node is a condition, their totals sum
///     to the node's execution total (the basis of optimization 2);
///   - per loop, the exit totals sum to the entry count (observation 1)
///     and latch traversals equal header executions minus entries
///     (observation 2);
///   - node totals satisfy equation 3 against the condition totals.
///
/// Useful for validating externally supplied or database-merged profiles
/// before feeding them to the estimator.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_CONSISTENCYCHECK_H
#define PTRAN_PROFILE_CONSISTENCYCHECK_H

#include "profile/Recovery.h"

#include <string>
#include <vector>

namespace ptran {

/// Checks \p Totals against the identities above. \returns human-readable
/// findings; empty means consistent. \p Tolerance absorbs floating-point
/// accumulation error.
std::vector<std::string>
checkFrequencyConsistency(const FunctionAnalysis &FA,
                          const FrequencyTotals &Totals,
                          double Tolerance = 1e-6);

} // namespace ptran

#endif // PTRAN_PROFILE_CONSISTENCYCHECK_H
