//===--- profile/SamplingProfile.cpp - PC-sampling profiler ---------------===//

#include "profile/SamplingProfile.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <vector>

using namespace ptran;

SamplingProfile::SamplingProfile(const CostModel &Model, double Period,
                                 double Phase)
    : CM(Model), Period(Period), NextSample(Phase > 0.0 ? Phase : Period),
      InitialPhase(Phase) {
  assert(Period > 0.0 && "sampling period must be positive");
}

const std::vector<double> &SamplingProfile::costsFor(const Function &F) {
  auto It = CostCache.find(&F);
  if (It != CostCache.end())
    return It->second;
  std::vector<double> Costs(F.numStmts());
  for (StmtId S = 0; S < F.numStmts(); ++S)
    Costs[S] = CM.statementCost(F.stmt(S));
  return CostCache.emplace(&F, std::move(Costs)).first->second;
}

void SamplingProfile::onStatement(const Function &F, StmtId S, unsigned) {
  Cycles += costsFor(F)[S];
  while (Cycles >= NextSample) {
    // The "timer" fires during this statement: attribute the sample here.
    ++Samples;
    ++BySub[&F];
    ++ByStmt[{&F, S}];
    NextSample += Period;
  }
}

uint64_t SamplingProfile::samplesIn(const Function &F) const {
  auto It = BySub.find(&F);
  return It == BySub.end() ? 0 : It->second;
}

double SamplingProfile::fractionIn(const Function &F) const {
  return Samples == 0
             ? 0.0
             : static_cast<double>(samplesIn(F)) /
                   static_cast<double>(Samples);
}

uint64_t SamplingProfile::samplesAt(const Function &F, StmtId S) const {
  auto It = ByStmt.find({&F, S});
  return It == ByStmt.end() ? 0 : It->second;
}

std::string SamplingProfile::report() const {
  std::vector<std::pair<const Function *, uint64_t>> Rows(BySub.begin(),
                                                          BySub.end());
  std::sort(Rows.begin(), Rows.end(),
            [](const auto &A, const auto &B) { return A.second > B.second; });
  std::ostringstream OS;
  OS << "sampling profile (" << Samples << " samples, period "
     << formatDouble(Period) << " cycles):\n";
  for (const auto &[F, Count] : Rows)
    OS << "  procedure " << F->name() << " was found executing "
       << formatDouble(100.0 * static_cast<double>(Count) /
                           static_cast<double>(Samples ? Samples : 1),
                       4)
       << "% of the time (" << Count << " samples)\n";
  return OS.str();
}

void SamplingProfile::reset() {
  Cycles = 0.0;
  Samples = 0;
  NextSample = InitialPhase > 0.0 ? InitialPhase : Period;
  BySub.clear();
  ByStmt.clear();
}
