//===--- profile/SamplingProfile.h - PC-sampling profiler ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simulated sampling-based profiler, the alternative Section 3 argues
/// against: every \p Period simulated cycles it records which procedure
/// (and statement) is executing, yielding output of the form "Procedure P
/// was found executing x% of the time". Good enough for relative
/// procedure times, but — as the paper observes — too coarse for
/// statement-level execution frequencies, which is why the framework uses
/// counter-based profiling instead. Tests quantify both halves of that
/// claim.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_SAMPLINGPROFILE_H
#define PTRAN_PROFILE_SAMPLINGPROFILE_H

#include "interp/CostModel.h"
#include "interp/Observer.h"

#include <map>
#include <string>

namespace ptran {

/// Samples the executing procedure on a fixed simulated-cycle period.
/// Mirrors the interpreter's clock by accumulating the same per-statement
/// costs, so no interpreter support is needed.
class SamplingProfile : public ExecutionObserver {
public:
  /// Samples every \p Period cycles (must be positive). \p Phase offsets
  /// the first sample (vary it across runs to emulate unsynchronized
  /// timer interrupts).
  explicit SamplingProfile(const CostModel &CM, double Period,
                           double Phase = 0.0);

  void onStatement(const Function &F, StmtId S, unsigned Depth) override;

  /// Total samples taken so far.
  uint64_t totalSamples() const { return Samples; }

  /// Samples attributed to \p F.
  uint64_t samplesIn(const Function &F) const;

  /// Fraction of samples in \p F (0 when nothing was sampled).
  double fractionIn(const Function &F) const;

  /// Samples attributed to statement \p S of \p F.
  uint64_t samplesAt(const Function &F, StmtId S) const;

  /// The profiler's own clock (equals the interpreter's simulated cycles).
  double cycles() const { return Cycles; }

  /// "Procedure P was found executing x% of the time" lines, sorted by
  /// descending share.
  std::string report() const;

  /// Zeroes all samples and the clock.
  void reset();

private:
  const std::vector<double> &costsFor(const Function &F);

  CostModel CM;
  double Period;
  double NextSample;
  double InitialPhase;
  double Cycles = 0.0;
  uint64_t Samples = 0;
  std::map<const Function *, std::vector<double>> CostCache;
  std::map<const Function *, uint64_t> BySub;
  std::map<std::pair<const Function *, StmtId>, uint64_t> ByStmt;
};

} // namespace ptran

#endif // PTRAN_PROFILE_SAMPLINGPROFILE_H
