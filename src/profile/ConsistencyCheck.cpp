//===--- profile/ConsistencyCheck.cpp - Profile sanity checking -----------===//

#include "profile/ConsistencyCheck.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <set>

using namespace ptran;

std::vector<std::string>
ptran::checkFrequencyConsistency(const FunctionAnalysis &FA,
                                 const FrequencyTotals &Totals,
                                 double Tolerance) {
  std::vector<std::string> Findings;
  const ControlDependence &CD = FA.cd();
  const Ecfg &E = FA.ecfg();
  const Cfg &C = FA.cfg();
  const Cfg &Ext = E.cfg();

  auto Report = [&](const std::string &Message) {
    Findings.push_back(FA.function().name() + ": " + Message);
  };
  auto Close = [&](double A, double B) {
    return std::fabs(A - B) <=
           Tolerance * std::max({1.0, std::fabs(A), std::fabs(B)});
  };

  if (!Totals.Ok) {
    Report("totals are not marked Ok");
    return Findings;
  }

  std::set<ControlCondition> Conds(CD.conditions().begin(),
                                   CD.conditions().end());

  // Recompute node totals from the condition totals (equation 3) and
  // compare with the supplied ones.
  std::vector<double> Derived = nodeTotalsFromConds(FA, Totals.Cond);
  for (NodeId N : CD.topoOrder())
    if (N < Totals.Node.size() && Totals.Node[N] >= 0.0 &&
        !Close(Totals.Node[N], Derived[N]))
      Report("node total of " + Ext.nodeName(N) + " is " +
             formatDouble(Totals.Node[N]) + " but equation 3 gives " +
             formatDouble(Derived[N]));

  // Per-condition basics.
  for (const ControlCondition &Cond : CD.conditions()) {
    double T = Totals.condTotal(Cond);
    if (T < -Tolerance)
      Report("negative total for (" + Ext.nodeName(Cond.Node) + ", " +
             cfgLabelName(Cond.Label) + ")");
    if (Cond.Label == CfgLabel::Z && std::fabs(T) > Tolerance)
      Report("pseudo condition (" + Ext.nodeName(Cond.Node) +
             ", Z) has nonzero total " + formatDouble(T));
  }

  // Optimization 2's sum rule where it applies.
  std::map<NodeId, std::vector<CfgLabel>> ByNode;
  for (const ControlCondition &Cond : CD.conditions())
    if (Cond.Label != CfgLabel::Z && Cond.Node != E.start() &&
        E.headerOf(Cond.Node) == InvalidNode)
      ByNode[Cond.Node].push_back(Cond.Label);
  for (const auto &[U, Labels] : ByNode) {
    // All real out-labels of U present as conditions?
    std::set<CfgLabel> Present(Labels.begin(), Labels.end());
    bool All = true;
    unsigned RealLabels = 0;
    for (EdgeId Out : Ext.graph().outEdges(U)) {
      CfgLabel L = static_cast<CfgLabel>(Ext.graph().edge(Out).Label);
      if (L == CfgLabel::Z)
        continue;
      ++RealLabels;
      All &= Present.count(L) != 0;
    }
    double NodeTotal = Derived[U];
    double Sum = 0.0;
    for (CfgLabel L : Labels) {
      double T = Totals.condTotal({U, L});
      Sum += T;
      if (T > NodeTotal + Tolerance * std::max(1.0, NodeTotal))
        Report("branch total (" + Ext.nodeName(U) + ", " +
               cfgLabelName(L) + ") = " + formatDouble(T) +
               " exceeds the node's executions " +
               formatDouble(NodeTotal));
    }
    if (All && RealLabels == Labels.size() && !Close(Sum, NodeTotal))
      Report("branch totals of " + Ext.nodeName(U) + " sum to " +
             formatDouble(Sum) + ", expected " + formatDouble(NodeTotal));
  }

  // Loop identities.
  for (NodeId H : FA.intervals().headers()) {
    NodeId Ph = E.preheaderOf(H);
    ControlCondition LoopCond{Ph, CfgLabel::U};
    if (!Conds.count(LoopCond))
      continue;
    double HeaderExecs = Totals.condTotal(LoopCond);
    double Entries = Derived[Ph];

    // Observation 1: exits sum to entries. Expressible only when every
    // exit's traversal count is known: a condition, or the sole label of
    // its source node.
    double ExitSum = 0.0;
    bool ExitsKnown = true;
    std::set<std::pair<NodeId, CfgLabel>> Seen;
    auto AddExit = [&](NodeId Src, CfgLabel L) {
      if (!Seen.insert({Src, L}).second)
        return;
      if (Conds.count({Src, L})) {
        ExitSum += Totals.condTotal({Src, L});
        return;
      }
      // Sole-label sources traverse the exit once per execution; a DO
      // header's F branch equals executions minus its T branch.
      unsigned Real = 0;
      for (EdgeId Out : Ext.graph().outEdges(Src))
        Real += static_cast<CfgLabel>(Ext.graph().edge(Out).Label) !=
                CfgLabel::Z;
      if (Real == 1) {
        ExitSum += Derived[Src];
        return;
      }
      if (Conds.count({Src, CfgLabel::T}) && L == CfgLabel::F && Real == 2) {
        ExitSum += Derived[Src] - Totals.condTotal({Src, CfgLabel::T});
        return;
      }
      ExitsKnown = false;
    };
    for (EdgeId Ed : FA.intervals().exitEdges(H)) {
      const Digraph::Edge &Edge = C.graph().edge(Ed);
      AddExit(Edge.From, static_cast<CfgLabel>(Edge.Label));
    }
    for (const Cfg::ExitBranch &B : FA.intervals().exitBranches(H))
      AddExit(B.Node, B.Label);
    if (ExitsKnown && !Close(ExitSum, Entries))
      Report("loop " + Ext.nodeName(H) + ": exits total " +
             formatDouble(ExitSum) + " but the loop was entered " +
             formatDouble(Entries) + " times (observation 1)");

    // Observation 2: header executions >= entries; equality only for
    // zero-iteration entries.
    if (HeaderExecs + Tolerance < Entries)
      Report("loop " + Ext.nodeName(H) + ": header executed " +
             formatDouble(HeaderExecs) + " times, fewer than its " +
             formatDouble(Entries) + " entries (observation 2)");
  }

  return Findings;
}
