//===--- profile/CounterPlan.cpp - Counter placement plans ----------------===//

#include "profile/CounterPlan.h"

#include "graph/DepthFirst.h"
#include "profile/Recovery.h"
#include "support/Casting.h"
#include "support/FatalError.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

using namespace ptran;

const char *ptran::profileModeName(ProfileMode M) {
  switch (M) {
  case ProfileMode::Naive:
    return "naive";
  case ProfileMode::Opt1:
    return "opt1";
  case ProfileMode::Opt12:
    return "opt1+2";
  case ProfileMode::Smart:
    return "smart";
  }
  PTRAN_UNREACHABLE("unknown ProfileMode");
}

const char *ptran::resolutionKindName(Resolution::Kind K) {
  switch (K) {
  case Resolution::Kind::Measured:
    return "measured";
  case Resolution::Kind::Zero:
    return "zero";
  case Resolution::Kind::SumComplement:
    return "sum-complement";
  case Resolution::Kind::ExitComplement:
    return "exit-complement";
  case Resolution::Kind::LatchSum:
    return "latch-sum";
  case Resolution::Kind::DoConstTrip:
    return "do-const-trip";
  case Resolution::Kind::DoDerived:
    return "do-derived";
  }
  PTRAN_UNREACHABLE("unknown Resolution::Kind");
}

namespace {

RecoveryTerm condTerm(ControlCondition C, double Coeff) {
  RecoveryTerm T;
  T.K = RecoveryTerm::Kind::CondTotal;
  T.Cond = C;
  T.Coeff = Coeff;
  return T;
}

RecoveryTerm nodeTerm(NodeId N, double Coeff) {
  RecoveryTerm T;
  T.K = RecoveryTerm::Kind::NodeTotal;
  T.Node = N;
  T.Coeff = Coeff;
  return T;
}

RecoveryTerm counterTerm(unsigned Counter, double Coeff) {
  RecoveryTerm T;
  T.K = RecoveryTerm::Kind::CounterVal;
  T.Counter = Counter;
  T.Coeff = Coeff;
  return T;
}

/// Distinct non-pseudo labels on the ECFG out-edges of \p U — the "branch
/// labels out of u in CFG" of the paper's second optimization (exit
/// branches were materialized as edges in the ECFG, so this covers them).
std::vector<CfgLabel> realOutLabels(const Ecfg &E, NodeId U) {
  std::vector<CfgLabel> Labels;
  for (EdgeId Out : E.cfg().graph().outEdges(U)) {
    CfgLabel L = static_cast<CfgLabel>(E.cfg().graph().edge(Out).Label);
    if (L == CfgLabel::Z)
      continue;
    if (std::find(Labels.begin(), Labels.end(), L) == Labels.end())
      Labels.push_back(L);
  }
  return Labels;
}

/// True if node \p To is reachable from \p From in the FCDG.
bool fcdgReaches(const Digraph &Fcdg, NodeId From, NodeId To) {
  if (From == To)
    return true;
  std::vector<bool> Seen(Fcdg.numNodes(), false);
  std::vector<NodeId> Worklist = {From};
  Seen[From] = true;
  while (!Worklist.empty()) {
    NodeId N = Worklist.back();
    Worklist.pop_back();
    for (NodeId S : Fcdg.successors(N)) {
      if (S == To)
        return true;
      if (!Seen[S]) {
        Seen[S] = true;
        Worklist.push_back(S);
      }
    }
  }
  return false;
}

/// One way execution can leave a loop, as used by observation 1.
struct LoopExit {
  NodeId Source = InvalidNode;
  CfgLabel Label = CfgLabel::U;
  /// True when (Source, Label) is an FCDG condition.
  bool IsCondition = false;
};

/// Collects the loop's exits and classifies them. \returns false if some
/// exit's traversal count cannot be expressed (observation 1 is then
/// skipped for this loop).
bool collectLoopExits(const FunctionAnalysis &FA, NodeId Header,
                      const std::set<ControlCondition> &Conds,
                      std::vector<LoopExit> &Out) {
  const IntervalStructure &IS = FA.intervals();
  const Digraph &G = FA.cfg().graph();

  std::set<std::pair<NodeId, CfgLabel>> Seen;
  auto Add = [&](NodeId Src, CfgLabel L) -> bool {
    if (!Seen.insert({Src, L}).second)
      return true; // Already recorded.
    LoopExit X;
    X.Source = Src;
    X.Label = L;
    X.IsCondition = Conds.count({Src, L}) != 0;
    if (!X.IsCondition) {
      // Expressible only for a node whose sole branch label is this one
      // (its traversals then equal the node's executions).
      if (realOutLabels(FA.ecfg(), Src).size() != 1)
        return false;
    }
    Out.push_back(X);
    return true;
  };

  for (EdgeId E : IS.exitEdges(Header)) {
    const Digraph::Edge &Ed = G.edge(E);
    if (!Add(Ed.From, static_cast<CfgLabel>(Ed.Label)))
      return false;
  }
  for (const Cfg::ExitBranch &B : IS.exitBranches(Header))
    if (!Add(B.Node, B.Label))
      return false;
  return true;
}

} // namespace

void FunctionPlan::buildNaive(FunctionPlan &Plan, const FunctionAnalysis &FA) {
  const Cfg &C = FA.cfg();
  const Function &F = FA.function();
  Plan.Blocks = computeBasicBlocks(C);

  // Identify exit-free DO loops whose body (header excluded) is a single
  // straight-line block: those get the entry-add treatment, which is the
  // only DO optimization the naive scheme performs (Table 1's footnote).
  std::map<NodeId, NodeId> BlockOfLeader; // leader node -> block index
  std::map<NodeId, unsigned> BlockIndexOfNode;
  for (unsigned B = 0; B < Plan.Blocks.size(); ++B)
    for (NodeId N : Plan.Blocks[B])
      BlockIndexOfNode[N] = B;

  std::set<unsigned> EntryAddBlocks; // block index -> use DO entry add
  std::map<unsigned, StmtId> EntryAddHeader;
  for (NodeId H : FA.intervals().headers()) {
    if (!FA.intervals().isExitFreeDoLoop(C, H))
      continue;
    const std::vector<NodeId> &Body = FA.intervals().loopBody(H);
    if (Body.size() < 2)
      continue;
    // The body minus the header must be exactly one block.
    NodeId FirstBody = InvalidNode;
    for (NodeId N : Body)
      if (N != H && (FirstBody == InvalidNode || N < FirstBody))
        FirstBody = N;
    auto It = BlockIndexOfNode.find(FirstBody);
    if (It == BlockIndexOfNode.end())
      continue;
    const std::vector<NodeId> &Blk = Plan.Blocks[It->second];
    if (Blk.size() != Body.size() - 1)
      continue;
    bool Match = true;
    for (NodeId N : Blk)
      if (N == H || !FA.intervals().contains(H, N))
        Match = false;
    if (!Match)
      continue;
    EntryAddBlocks.insert(It->second);
    EntryAddHeader[It->second] = C.origin(H);
  }

  for (unsigned B = 0; B < Plan.Blocks.size(); ++B) {
    NodeId Leader = Plan.Blocks[B][0];
    StmtId LeaderStmt = C.origin(Leader);
    PlannedCounter PC;
    PC.Name = "block(" + std::to_string(B) + ")";
    if (EntryAddBlocks.count(B)) {
      // Body executes (header-executions - 1) times per entry.
      PC.Sites.push_back({CounterSite::Kind::DoLoopEntryAdd,
                          EntryAddHeader[B], CfgLabel::U, -1});
    } else if (LeaderStmt != InvalidStmt) {
      PC.Sites.push_back(
          {CounterSite::Kind::Statement, LeaderStmt, CfgLabel::U, 0});
    }
    Plan.addCounter(std::move(PC));
  }
  (void)F;
  (void)BlockOfLeader;
}

void FunctionPlan::buildOptimized(FunctionPlan &Plan,
                                  const FunctionAnalysis &FA,
                                  ProfileMode Mode) {
  const ControlDependence &CD = FA.cd();
  const Ecfg &E = FA.ecfg();
  const Cfg &C = FA.cfg();
  const IntervalStructure &IS = FA.intervals();
  const Function &F = FA.function();

  std::set<ControlCondition> Conds(CD.conditions().begin(),
                                   CD.conditions().end());
  auto Resolved = [&](ControlCondition Cond) {
    return Plan.Resolutions.count(Cond) != 0;
  };

  bool UseDerivations = Mode != ProfileMode::Opt1;
  bool UseDoOpt = Mode == ProfileMode::Smart;

  // Latch counters with a single site can double as the measurement of
  // that latch's own branch condition.
  std::map<std::pair<StmtId, CfgLabel>, unsigned> SingleSiteCounters;

  // Pseudo edges can never be taken (footnote to Figure 2).
  for (const ControlCondition &Cond : CD.conditions())
    if (Cond.Label == CfgLabel::Z)
      Plan.Resolutions[Cond] = {Resolution::Kind::Zero, 0, {}};

  // The procedure's own invocation count.
  ControlCondition StartCond{E.start(), CfgLabel::U};
  if (Conds.count(StartCond)) {
    PlannedCounter PC;
    PC.Name = "entry(" + F.name() + ")";
    PC.Sites.push_back(
        {CounterSite::Kind::ProcEntry, InvalidStmt, CfgLabel::U, 0});
    unsigned Id = Plan.addCounter(std::move(PC));
    Plan.Resolutions[StartCond] = {Resolution::Kind::Measured, Id, {}};
  }

  // Loop frequencies, per header.
  for (NodeId H : IS.headers()) {
    NodeId Ph = E.preheaderOf(H);
    ControlCondition LoopCond{Ph, CfgLabel::U};
    if (!Conds.count(LoopCond))
      continue;

    if (UseDoOpt && IS.isExitFreeDoLoop(C, H)) {
      const auto *Do = cast<DoStmt>(F.stmt(C.origin(H)));
      int64_t Trip = 0;
      if (Do->constantTripCount(Trip)) {
        // Optimization 3, constant case: no counter at all. The header
        // executes Trip+1 times per entry.
        Resolution R;
        R.K = Resolution::Kind::DoConstTrip;
        R.Terms.push_back(nodeTerm(Ph, static_cast<double>(Trip + 1)));
        Plan.Resolutions[LoopCond] = std::move(R);
      } else {
        // Optimization 3: add the header-execution count once per entry.
        PlannedCounter PC;
        PC.Name = "dotrip(" + C.nodeName(H) + ")";
        PC.Sites.push_back(
            {CounterSite::Kind::DoLoopEntryAdd, C.origin(H), CfgLabel::U, 0});
        unsigned Id = Plan.addCounter(std::move(PC));
        Plan.Resolutions[LoopCond] = {Resolution::Kind::Measured, Id, {}};
      }
      // The DO header's own branch totals follow from the loop frequency:
      // F is taken once per entry, T makes up the rest.
      ControlCondition TCond{H, CfgLabel::T}, FCond{H, CfgLabel::F};
      if (Conds.count(TCond)) {
        Resolution R;
        R.K = Resolution::Kind::DoDerived;
        R.Terms.push_back(condTerm(LoopCond, 1.0));
        R.Terms.push_back(nodeTerm(Ph, -1.0));
        Plan.Resolutions[TCond] = std::move(R);
      }
      if (Conds.count(FCond)) {
        Resolution R;
        R.K = Resolution::Kind::DoDerived;
        R.Terms.push_back(nodeTerm(Ph, 1.0));
        Plan.Resolutions[FCond] = std::move(R);
      }
      continue;
    }

    if (UseDerivations) {
      // Observation 2: header executions = entries + latch traversals.
      // One counter shared by all latch edges.
      PlannedCounter PC;
      PC.Name = "latch(" + C.nodeName(H) + ")";
      for (EdgeId L : IS.backEdges(H)) {
        const Digraph::Edge &Ed = C.graph().edge(L);
        PC.Sites.push_back({CounterSite::Kind::Edge, C.origin(Ed.From),
                            static_cast<CfgLabel>(Ed.Label), 0});
      }
      if (PC.Sites.size() == 1)
        SingleSiteCounters[{PC.Sites[0].S, PC.Sites[0].Label}] =
            Plan.numCounters();
      unsigned Id = Plan.addCounter(std::move(PC));
      Resolution R;
      R.K = Resolution::Kind::LatchSum;
      R.Terms.push_back(nodeTerm(Ph, 1.0));
      R.Terms.push_back(counterTerm(Id, 1.0));
      Plan.Resolutions[LoopCond] = std::move(R);
    } else {
      // Optimization 1 only: count header executions directly.
      PlannedCounter PC;
      PC.Name = "header(" + C.nodeName(H) + ")";
      PC.Sites.push_back(
          {CounterSite::Kind::Statement, C.origin(H), CfgLabel::U, 0});
      unsigned Id = Plan.addCounter(std::move(PC));
      Plan.Resolutions[LoopCond] = {Resolution::Kind::Measured, Id, {}};
    }
  }

  // Observation 1: per loop, one exit's total equals entries minus the
  // other exits. Applied where the dependency structure stays acyclic.
  if (UseDerivations) {
    for (NodeId H : IS.headers()) {
      NodeId Ph = E.preheaderOf(H);
      std::vector<LoopExit> Exits;
      if (!collectLoopExits(FA, H, Conds, Exits))
        continue;

      for (const LoopExit &Candidate : Exits) {
        if (!Candidate.IsCondition)
          continue;
        ControlCondition DropCond{Candidate.Source, Candidate.Label};
        if (Resolved(DropCond))
          continue;
        // Safety: no other exit's traversal count may depend on the
        // dropped condition, i.e. no other exit source is an FCDG
        // descendant of the candidate's source.
        bool Safe = true;
        for (const LoopExit &Other : Exits) {
          if (Other.Source == Candidate.Source &&
              Other.Label == Candidate.Label)
            continue;
          if (fcdgReaches(CD.fcdg(), Candidate.Source, Other.Source)) {
            Safe = false;
            break;
          }
        }
        if (!Safe)
          continue;

        Resolution R;
        R.K = Resolution::Kind::ExitComplement;
        R.Terms.push_back(nodeTerm(Ph, 1.0)); // entries
        for (const LoopExit &Other : Exits) {
          if (Other.Source == Candidate.Source &&
              Other.Label == Candidate.Label)
            continue;
          if (Other.IsCondition) {
            R.Terms.push_back(
                condTerm({Other.Source, Other.Label}, -1.0));
          } else {
            R.Terms.push_back(nodeTerm(Other.Source, -1.0));
          }
        }
        Plan.Resolutions[DropCond] = std::move(R);
        break; // One derivation per loop.
      }
    }
  }

  // Branch conditions node by node: optimization 2 leaves one label per
  // node derived as the complement of its siblings.
  std::map<NodeId, std::vector<CfgLabel>> ByNode;
  for (const ControlCondition &Cond : CD.conditions())
    if (Cond.Label != CfgLabel::Z && Cond.Node != E.start() &&
        E.headerOf(Cond.Node) == InvalidNode)
      ByNode[Cond.Node].push_back(Cond.Label);

  for (auto &[U, Labels] : ByNode) {
    std::vector<CfgLabel> AllLabels = realOutLabels(E, U);

    // Which of this node's conditions still need a resolution?
    std::vector<CfgLabel> Pending;
    for (CfgLabel L : Labels)
      if (!Resolved({U, L}))
        Pending.push_back(L);
    if (Pending.empty())
      continue;

    // Optimization 2 applies when every branch label of U appears as a
    // condition (or is otherwise already resolvable): the last pending
    // label becomes the complement of all the others.
    bool AllPresent = true;
    for (CfgLabel L : AllLabels)
      if (std::find(Labels.begin(), Labels.end(), L) == Labels.end())
        AllPresent = false;

    CfgLabel DropLabel = Pending.back();
    bool UseComplement = UseDerivations && AllPresent && AllLabels.size() > 1;

    for (CfgLabel L : Pending) {
      ControlCondition Cond{U, L};
      if (UseComplement && L == DropLabel) {
        Resolution R;
        R.K = Resolution::Kind::SumComplement;
        R.Terms.push_back(nodeTerm(U, 1.0));
        for (CfgLabel Other : AllLabels)
          if (Other != L)
            R.Terms.push_back(condTerm({U, Other}, -1.0));
        Plan.Resolutions[Cond] = std::move(R);
        continue;
      }
      // Reuse a single-site latch counter when it already measures this
      // exact branch event.
      auto Existing = SingleSiteCounters.find({C.origin(U), L});
      if (Existing != SingleSiteCounters.end()) {
        Plan.Resolutions[Cond] = {Resolution::Kind::Measured,
                                  Existing->second,
                                  {}};
        continue;
      }
      PlannedCounter PC;
      PC.Name = "cond(" + C.nodeName(U) + "," + cfgLabelName(L) + ")";
      PC.Sites.push_back(
          {CounterSite::Kind::Edge, C.origin(U), L, 0});
      unsigned Id = Plan.addCounter(std::move(PC));
      Plan.Resolutions[Cond] = {Resolution::Kind::Measured, Id, {}};
    }
  }
}

FunctionPlan FunctionPlan::build(const FunctionAnalysis &FA,
                                 ProfileMode Mode) {
  FunctionPlan Plan;
  Plan.Mode = Mode;
  if (Mode == ProfileMode::Naive) {
    buildNaive(Plan, FA);
    return Plan;
  }
  buildOptimized(Plan, FA, Mode);

  // Safety net: the derivation rules above are chosen to be acyclic, but
  // adversarial control flow could still produce an unresolvable system.
  // Fall back to direct measurement for any stuck condition.
  for (unsigned Attempt = 0; Attempt < FA.cd().conditions().size();
       ++Attempt) {
    std::vector<double> Zeros(Plan.numCounters(), 0.0);
    FrequencyTotals Probe = recoverTotals(FA, Plan, Zeros);
    if (Probe.Ok)
      break;
    if (Probe.Unresolved.empty())
      break; // Stuck on node totals only; nothing measurable remains.
    const Cfg &C = FA.cfg();
    const Ecfg &E = FA.ecfg();
    ControlCondition Cond = Probe.Unresolved.front();
    PlannedCounter PC;
    PC.Name = "repair(" + E.cfg().nodeName(Cond.Node) + "," +
              cfgLabelName(Cond.Label) + ")";
    if (Cond.Node == E.start()) {
      PC.Sites.push_back(
          {CounterSite::Kind::ProcEntry, InvalidStmt, CfgLabel::U, 0});
    } else if (NodeId H = E.headerOf(Cond.Node); H != InvalidNode) {
      PC.Sites.push_back(
          {CounterSite::Kind::Statement, C.origin(H), CfgLabel::U, 0});
    } else {
      PC.Sites.push_back(
          {CounterSite::Kind::Edge, C.origin(Cond.Node), Cond.Label, 0});
    }
    unsigned Id = Plan.addCounter(std::move(PC));
    Plan.Resolutions[Cond] = {Resolution::Kind::Measured, Id, {}};
  }
  return Plan;
}

std::string FunctionPlan::str(const FunctionAnalysis &FA) const {
  std::ostringstream OS;
  OS << "plan(" << profileModeName(Mode) << ") for " << FA.function().name()
     << ": " << Counters.size() << " counters\n";
  for (unsigned I = 0; I < Counters.size(); ++I) {
    OS << "  c" << I << " = " << Counters[I].Name << " [";
    for (size_t S = 0; S < Counters[I].Sites.size(); ++S) {
      if (S != 0)
        OS << ", ";
      const CounterSite &Site = Counters[I].Sites[S];
      switch (Site.K) {
      case CounterSite::Kind::Statement:
        OS << "stmt " << Site.S;
        break;
      case CounterSite::Kind::Edge:
        OS << "edge (" << Site.S << "," << cfgLabelName(Site.Label) << ")";
        break;
      case CounterSite::Kind::ProcEntry:
        OS << "proc-entry";
        break;
      case CounterSite::Kind::DoLoopEntryAdd:
        OS << "do-entry-add stmt " << Site.S << " bias " << Site.Bias;
        break;
      }
    }
    OS << "]\n";
  }
  for (const auto &[Cond, R] : Resolutions) {
    OS << "  (" << FA.ecfg().cfg().nodeName(Cond.Node) << ", "
       << cfgLabelName(Cond.Label) << ") <- " << resolutionKindName(R.K);
    if (R.K == Resolution::Kind::Measured)
      OS << " c" << R.Counter;
    OS << "\n";
  }
  return OS.str();
}

ProgramPlan ProgramPlan::build(const ProgramAnalysis &PA, ProfileMode Mode) {
  ProgramPlan Plan;
  Plan.Mode = Mode;
  for (const auto &[F, FA] : PA.all()) {
    FunctionPlan FP = FunctionPlan::build(*FA, Mode);
    Plan.Offsets[F] = Plan.Total;
    Plan.Total += FP.numCounters();
    Plan.Plans.emplace(F, std::move(FP));
  }
  return Plan;
}

const FunctionPlan &ProgramPlan::of(const Function &F) const {
  auto It = Plans.find(&F);
  if (It == Plans.end())
    reportFatalError("no counter plan for function " + F.name());
  return It->second;
}

unsigned ProgramPlan::offsetOf(const Function &F) const {
  auto It = Offsets.find(&F);
  if (It == Offsets.end())
    reportFatalError("no counter plan for function " + F.name());
  return It->second;
}
