//===--- profile/CounterPlan.h - Counter placement plans --------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counter-based profiling plans (Section 3). A plan decides, for every
/// control condition (u, l) of a function's FCDG, how its TOTAL_FREQ is
/// obtained:
///
///   - a physical counter attached to one or more run-time sites
///     (statement executed, branch (stmt, label) taken, procedure entered,
///     or a DO-loop-entry add of the trip count — the third optimization);
///   - or a derivation rule, a linear expression over other condition
///     totals, node totals and counters, covering the paper's
///     optimizations: pseudo edges are constant zero, one branch label per
///     node is the complement of its siblings (optimization 2), one loop
///     exit per loop follows from "exits sum to entries" (observation 1),
///     loop frequencies follow from latch counters plus entries
///     (observation 2), and exit-free DO loops with compile-time-constant
///     bounds need no counter at all (optimization 3).
///
/// The naive baseline plan (one counter per basic block, with the DO-loop
/// optimization only for straight-line bodies, as in Table 1) is also
/// built here.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_COUNTERPLAN_H
#define PTRAN_PROFILE_COUNTERPLAN_H

#include "core/Analysis.h"

#include <map>
#include <string>
#include <vector>

namespace ptran {

/// How aggressively to optimize counter placement.
enum class ProfileMode {
  Naive,  ///< One counter per basic block (Table 1's "naive profiling").
  Opt1,   ///< One counter per control condition.
  Opt12,  ///< + sum-complement, exit-complement and latch derivations.
  Smart,  ///< + the DO-loop optimizations (Table 1's "smart profiling").
};

/// \returns "naive", "opt1", "opt1+2" or "smart".
const char *profileModeName(ProfileMode M);

/// A run-time location whose occurrence bumps a counter.
struct CounterSite {
  enum class Kind {
    Statement,      ///< Statement \p S executed: counter += 1.
    Edge,           ///< Branch (S, Label) taken: counter += 1.
    ProcEntry,      ///< Procedure entered: counter += 1.
    DoLoopEntryAdd, ///< DO loop at \p S entered: counter +=
                    ///< header-executions + Bias.
  };
  Kind K = Kind::Statement;
  StmtId S = InvalidStmt;
  CfgLabel Label = CfgLabel::U;
  int64_t Bias = 0;
};

/// One physical counter and the sites that update it.
struct PlannedCounter {
  std::vector<CounterSite> Sites;
  /// Debug label, e.g. "cond(S3,T)" or "latch(loop S1)".
  std::string Name;
};

/// A linear term of a derivation rule.
struct RecoveryTerm {
  enum class Kind {
    CondTotal, ///< TOTAL_FREQ of another condition.
    NodeTotal, ///< Total execution frequency of an ECFG node.
    CounterVal ///< Raw value of a physical counter (by local index).
  };
  Kind K = Kind::CondTotal;
  ControlCondition Cond;
  NodeId Node = InvalidNode;
  unsigned Counter = 0;
  double Coeff = 1.0;
};

/// How one condition's TOTAL_FREQ is obtained.
struct Resolution {
  enum class Kind {
    Measured,       ///< Value of a physical counter.
    Zero,           ///< Pseudo edge; identically zero.
    SumComplement,  ///< Optimization 2 at a branch node.
    ExitComplement, ///< Observation 1: exits sum to entries.
    LatchSum,       ///< Observation 2: entries + latch traversals.
    DoConstTrip,    ///< Optimization 3 with a compile-time trip count.
    DoDerived,      ///< DO header branch totals derived from the loop
                    ///< frequency and entry count.
  };
  Kind K = Kind::Measured;
  /// For Measured: local counter index.
  unsigned Counter = 0;
  /// For derivations: TOTAL = sum of terms.
  std::vector<RecoveryTerm> Terms;
};

/// \returns a short name for a resolution kind ("measured", "zero", ...).
const char *resolutionKindName(Resolution::Kind K);

/// The counter plan of one function.
class FunctionPlan {
public:
  /// Builds a plan for \p FA at optimization level \p Mode. For
  /// ProfileMode::Naive the plan has no condition resolutions (the naive
  /// scheme measures block frequencies, not branch frequencies).
  static FunctionPlan build(const FunctionAnalysis &FA, ProfileMode Mode);

  ProfileMode mode() const { return Mode; }
  const std::vector<PlannedCounter> &counters() const { return Counters; }
  unsigned numCounters() const {
    return static_cast<unsigned>(Counters.size());
  }

  /// Resolution per control condition (empty for naive plans).
  const std::map<ControlCondition, Resolution> &resolutions() const {
    return Resolutions;
  }

  /// Naive plans: the basic blocks, aligned with counters (block i is
  /// counted by counter i).
  const std::vector<std::vector<NodeId>> &naiveBlocks() const {
    return Blocks;
  }

  /// Human-readable plan dump (for examples and debugging).
  std::string str(const FunctionAnalysis &FA) const;

private:
  unsigned addCounter(PlannedCounter C) {
    Counters.push_back(std::move(C));
    return static_cast<unsigned>(Counters.size() - 1);
  }

  static void buildOptimized(FunctionPlan &Plan, const FunctionAnalysis &FA,
                             ProfileMode Mode);
  static void buildNaive(FunctionPlan &Plan, const FunctionAnalysis &FA);

  ProfileMode Mode = ProfileMode::Smart;
  std::vector<PlannedCounter> Counters;
  std::map<ControlCondition, Resolution> Resolutions;
  std::vector<std::vector<NodeId>> Blocks;
};

/// Plans for all procedures, with a global counter numbering (function
/// counters occupy a contiguous range starting at offsetOf(F)).
class ProgramPlan {
public:
  static ProgramPlan build(const ProgramAnalysis &PA, ProfileMode Mode);

  ProfileMode mode() const { return Mode; }
  const FunctionPlan &of(const Function &F) const;
  unsigned offsetOf(const Function &F) const;
  unsigned totalCounters() const { return Total; }

private:
  ProfileMode Mode = ProfileMode::Smart;
  std::map<const Function *, FunctionPlan> Plans;
  std::map<const Function *, unsigned> Offsets;
  unsigned Total = 0;
};

} // namespace ptran

#endif // PTRAN_PROFILE_COUNTERPLAN_H
