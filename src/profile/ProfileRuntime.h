//===--- profile/ProfileRuntime.h - Counter runtime -------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution observers implementing the profiling runtimes:
///
///   - ProfileRuntime executes a ProgramPlan's counter updates, tracking
///     both the counter values and the simulated overhead (increment and
///     add costs from the CostModel) — the quantity Table 1 compares;
///   - ExactProfile records exact per-statement, per-branch and per-entry
///     counts, serving as ground truth in tests and as the frequency
///     source when no reduced plan is wanted;
///   - LoopFrequencyStats tracks per-entry header-execution counts of
///     every loop, yielding the E[FREQ] / E[FREQ^2] moments the variance
///     analysis of Section 5 can use instead of a distribution assumption.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_PROFILERUNTIME_H
#define PTRAN_PROFILE_PROFILERUNTIME_H

#include "interp/CostModel.h"
#include "interp/Observer.h"
#include "profile/CounterPlan.h"
#include "profile/Recovery.h"

#include <array>
#include <map>
#include <vector>

namespace ptran {

/// Executes the counter updates of a ProgramPlan during interpretation.
class ProfileRuntime : public ExecutionObserver {
public:
  /// \p Obs, when non-null, receives `recovery.*` counters from every
  /// recover() call.
  ProfileRuntime(const ProgramAnalysis &PA, const ProgramPlan &Plan,
                 const CostModel &CM, ObsRegistry *Obs = nullptr);

  // ExecutionObserver:
  void onProcedureEntry(const Function &F, unsigned Depth) override;
  void onStatement(const Function &F, StmtId S, unsigned Depth) override;
  void onTransfer(const Function &F, StmtId From, CfgLabel Label, StmtId To,
                  unsigned Depth) override;
  void onDoLoopEntry(const Function &F, StmtId DoHeader,
                     int64_t HeaderExecutions, unsigned Depth) override;

  /// Global counter values (offsets per ProgramPlan::offsetOf).
  const std::vector<double> &counters() const { return Counters; }

  /// This function's local counter slice.
  std::vector<double> countersFor(const Function &F) const;

  /// Counter updates executed so far (increments + adds).
  uint64_t dynamicIncrements() const { return Increments; }
  uint64_t dynamicAdds() const { return Adds; }

  /// Simulated cycles spent in profiling code.
  double overheadCycles() const;

  /// Recovers TOTAL_FREQ for one function from the current counters.
  /// \p Cancel (optional) bounds the recovery fixpoint; an expired token
  /// yields Ok = false (see recoverTotals).
  FrequencyTotals recover(const Function &F,
                          CancelToken *Cancel = nullptr) const;

  /// Zeroes counters and overhead (e.g. between accumulation epochs).
  void reset();

private:
  struct SiteTables {
    /// Per statement: counters bumped when it executes.
    std::vector<std::vector<unsigned>> OnStmt;
    /// Per statement: (label, counter) pairs bumped on matching transfer.
    std::vector<std::vector<std::pair<CfgLabel, unsigned>>> OnEdge;
    /// Per statement: (counter, bias) add-sites fired on DO-loop entry.
    std::vector<std::vector<std::pair<unsigned, int64_t>>> OnDoEntry;
    /// Counters bumped on procedure entry.
    std::vector<unsigned> OnProcEntry;
  };

  const SiteTables &tablesFor(const Function &F) const;

  const ProgramAnalysis &PA;
  const ProgramPlan &Plan;
  CostModel CM;
  ObsRegistry *Obs = nullptr;
  std::map<const Function *, SiteTables> Tables;
  std::vector<double> Counters;
  uint64_t Increments = 0;
  uint64_t Adds = 0;
};

/// Exact event counts (no counter plan): the oracle profiler.
class ExactProfile : public ExecutionObserver {
public:
  explicit ExactProfile(const ProgramAnalysis &PA) : PA(PA) {}

  void onProcedureEntry(const Function &F, unsigned Depth) override;
  void onStatement(const Function &F, StmtId S, unsigned Depth) override;
  void onTransfer(const Function &F, StmtId From, CfgLabel Label, StmtId To,
                  unsigned Depth) override;

  /// Exact executions of statement \p S of \p F.
  double stmtCount(const Function &F, StmtId S) const;
  /// Exact traversals of branch (\p S, \p L).
  double transferCount(const Function &F, StmtId S, CfgLabel L) const;
  /// Exact activations of \p F.
  double entryCount(const Function &F) const;

  /// Exact TOTAL_FREQ of every condition of \p F, plus node totals
  /// computed through the FCDG recurrence.
  FrequencyTotals totals(const Function &F) const;

private:
  struct Counts {
    double Entries = 0;
    std::vector<double> Stmt;
    /// Per statement: taken-count per label (sparse; computed-GOTO arms
    /// make the label set unbounded).
    std::vector<std::map<LabelId, double>> Transfer;
  };
  Counts &countsFor(const Function &F);
  const Counts *findCounts(const Function &F) const;

  const ProgramAnalysis &PA;
  std::map<const Function *, Counts> PerFunction;
};

/// Per-loop frequency moments: for each loop entry, the number of header
/// executions until the loop was left. Uses a goto-preserving analysis so
/// that statement/loop membership matches run-time events exactly.
class LoopFrequencyStats : public ExecutionObserver {
public:
  /// \p RawPA must be computed with AnalysisOptions{.ElideGotos = false}.
  explicit LoopFrequencyStats(const ProgramAnalysis &RawPA);

  void onProcedureEntry(const Function &F, unsigned Depth) override;
  void onProcedureExit(const Function &F, unsigned Depth) override;
  void onStatement(const Function &F, StmtId S, unsigned Depth) override;
  void onTransfer(const Function &F, StmtId From, CfgLabel Label, StmtId To,
                  unsigned Depth) override;

  /// Moments of one loop's per-entry header-execution count F.
  struct Moments {
    double Entries = 0;
    double Sum = 0;   ///< Sigma F   (so Sum / Entries = E[F]).
    double SumSq = 0; ///< Sigma F^2 (so SumSq / Entries = E[F^2]).

    double mean() const { return Entries > 0 ? Sum / Entries : 0.0; }
    double meanSquare() const { return Entries > 0 ? SumSq / Entries : 0.0; }
    double variance() const {
      double M = mean();
      double V = meanSquare() - M * M;
      return V > 0.0 ? V : 0.0;
    }
  };

  /// Moments for the loop whose header is the statement \p HeaderStmt of
  /// \p F (statement ids are stable across goto elision).
  const Moments *momentsFor(const Function &F, StmtId HeaderStmt) const;

  /// All recorded loop moments of \p F, ordered by header statement (the
  /// enumeration profile capture serializes).
  std::vector<std::pair<StmtId, Moments>> momentsOf(const Function &F) const;

  /// Folds externally ingested moments (e.g. loaded from a profile file)
  /// into the accumulator for (\p F, \p HeaderStmt).
  void addMoments(const Function &F, StmtId HeaderStmt, const Moments &M);

private:
  struct LoopShape {
    StmtId HeaderStmt = InvalidStmt;
    /// Statement-level body membership.
    std::vector<bool> BodyStmts;
  };
  struct ActiveLoop {
    unsigned LoopIdx = 0;
    double HeaderExecs = 0;
  };
  struct FunctionState {
    const Function *F = nullptr;
    /// Active loops, innermost last.
    std::vector<ActiveLoop> Active;
  };

  void closeLoopsOutside(FunctionState &State, const Function &F,
                         StmtId Target);

  std::map<const Function *, std::vector<LoopShape>> Shapes;
  std::map<std::pair<const Function *, StmtId>, Moments> Stats;
  /// Stack of per-activation states, indexed by frame depth.
  std::vector<FunctionState> Frames;
};

} // namespace ptran

#endif // PTRAN_PROFILE_PROFILERUNTIME_H
