//===--- profile/ProfileRuntime.cpp - Counter runtime ---------------------===//

#include "profile/ProfileRuntime.h"

#include "support/FatalError.h"
#include "support/FaultInjection.h"

#include <cassert>

using namespace ptran;

//===----------------------------------------------------------------------===//
// ProfileRuntime
//===----------------------------------------------------------------------===//

ProfileRuntime::ProfileRuntime(const ProgramAnalysis &PA,
                               const ProgramPlan &Plan, const CostModel &CM,
                               ObsRegistry *Obs)
    : PA(PA), Plan(Plan), CM(CM), Obs(Obs),
      Counters(Plan.totalCounters(), 0.0) {
  for (const auto &[F, FA] : PA.all()) {
    const FunctionPlan &FP = Plan.of(*F);
    unsigned Base = Plan.offsetOf(*F);
    SiteTables T;
    T.OnStmt.resize(F->numStmts());
    T.OnEdge.resize(F->numStmts());
    T.OnDoEntry.resize(F->numStmts());
    for (unsigned CId = 0; CId < FP.numCounters(); ++CId) {
      unsigned Global = Base + CId;
      for (const CounterSite &Site : FP.counters()[CId].Sites) {
        switch (Site.K) {
        case CounterSite::Kind::Statement:
          assert(Site.S < F->numStmts() && "site statement out of range");
          T.OnStmt[Site.S].push_back(Global);
          break;
        case CounterSite::Kind::Edge:
          assert(Site.S < F->numStmts() && "site statement out of range");
          T.OnEdge[Site.S].push_back({Site.Label, Global});
          break;
        case CounterSite::Kind::ProcEntry:
          T.OnProcEntry.push_back(Global);
          break;
        case CounterSite::Kind::DoLoopEntryAdd:
          assert(Site.S < F->numStmts() && "site statement out of range");
          T.OnDoEntry[Site.S].push_back({Global, Site.Bias});
          break;
        }
      }
    }
    Tables.emplace(F, std::move(T));
  }
}

const ProfileRuntime::SiteTables &
ProfileRuntime::tablesFor(const Function &F) const {
  auto It = Tables.find(&F);
  if (It == Tables.end())
    reportFatalError("profiling a function without a plan: " + F.name());
  return It->second;
}

void ProfileRuntime::onProcedureEntry(const Function &F, unsigned) {
  for (unsigned C : tablesFor(F).OnProcEntry) {
    Counters[C] += 1.0;
    ++Increments;
  }
}

void ProfileRuntime::onStatement(const Function &F, StmtId S, unsigned) {
  for (unsigned C : tablesFor(F).OnStmt[S]) {
    Counters[C] += 1.0;
    ++Increments;
  }
}

void ProfileRuntime::onTransfer(const Function &F, StmtId From, CfgLabel L,
                                StmtId, unsigned) {
  for (const auto &[Label, C] : tablesFor(F).OnEdge[From]) {
    if (Label == L) {
      Counters[C] += 1.0;
      ++Increments;
    }
  }
}

void ProfileRuntime::onDoLoopEntry(const Function &F, StmtId DoHeader,
                                   int64_t HeaderExecutions, unsigned) {
  for (const auto &[C, Bias] : tablesFor(F).OnDoEntry[DoHeader]) {
    Counters[C] += static_cast<double>(HeaderExecutions + Bias);
    ++Adds;
  }
}

std::vector<double> ProfileRuntime::countersFor(const Function &F) const {
  unsigned Base = Plan.offsetOf(F);
  unsigned Count = Plan.of(F).numCounters();
  return std::vector<double>(Counters.begin() + Base,
                             Counters.begin() + Base + Count);
}

double ProfileRuntime::overheadCycles() const {
  return static_cast<double>(Increments) * CM.CounterIncrementCost +
         static_cast<double>(Adds) * CM.CounterAddCost;
}

FrequencyTotals ProfileRuntime::recover(const Function &F,
                                        CancelToken *Cancel) const {
  std::vector<double> Local = countersFor(F);
  // Fault-injection seam (CounterCorrupt): corrupts only this local
  // slice, so the shared accumulator is untouched and the caller's
  // validation path is what gets exercised.
  FaultInjection::maybeCorruptCounters(Local);
  return recoverTotals(PA.of(F), Plan.of(F), Local,
                       /*Diags=*/nullptr, Obs, Cancel);
}

void ProfileRuntime::reset() {
  Counters.assign(Counters.size(), 0.0);
  Increments = 0;
  Adds = 0;
}

//===----------------------------------------------------------------------===//
// ExactProfile
//===----------------------------------------------------------------------===//

ExactProfile::Counts &ExactProfile::countsFor(const Function &F) {
  auto It = PerFunction.find(&F);
  if (It != PerFunction.end())
    return It->second;
  Counts C;
  C.Stmt.assign(F.numStmts(), 0.0);
  C.Transfer.resize(F.numStmts());
  return PerFunction.emplace(&F, std::move(C)).first->second;
}

const ExactProfile::Counts *
ExactProfile::findCounts(const Function &F) const {
  auto It = PerFunction.find(&F);
  return It == PerFunction.end() ? nullptr : &It->second;
}

void ExactProfile::onProcedureEntry(const Function &F, unsigned) {
  countsFor(F).Entries += 1.0;
}

void ExactProfile::onStatement(const Function &F, StmtId S, unsigned) {
  countsFor(F).Stmt[S] += 1.0;
}

void ExactProfile::onTransfer(const Function &F, StmtId From, CfgLabel L,
                              StmtId, unsigned) {
  countsFor(F).Transfer[From][static_cast<LabelId>(L)] += 1.0;
}

double ExactProfile::stmtCount(const Function &F, StmtId S) const {
  const Counts *C = findCounts(F);
  return C ? C->Stmt[S] : 0.0;
}

double ExactProfile::transferCount(const Function &F, StmtId S,
                                   CfgLabel L) const {
  const Counts *C = findCounts(F);
  if (!C)
    return 0.0;
  auto It = C->Transfer[S].find(static_cast<LabelId>(L));
  return It == C->Transfer[S].end() ? 0.0 : It->second;
}

double ExactProfile::entryCount(const Function &F) const {
  const Counts *C = findCounts(F);
  return C ? C->Entries : 0.0;
}

FrequencyTotals ExactProfile::totals(const Function &F) const {
  const FunctionAnalysis &FA = PA.of(F);
  const Ecfg &E = FA.ecfg();
  FrequencyTotals Out;
  for (const ControlCondition &Cond : FA.cd().conditions()) {
    double Total = 0.0;
    if (Cond.Label == CfgLabel::Z) {
      Total = 0.0;
    } else if (Cond.Node == E.start()) {
      Total = entryCount(F);
    } else if (NodeId H = E.headerOf(Cond.Node); H != InvalidNode) {
      Total = stmtCount(F, FA.cfg().origin(H));
    } else {
      Total = transferCount(F, FA.cfg().origin(Cond.Node), Cond.Label);
    }
    Out.Cond[Cond] = Total;
  }
  Out.Node = nodeTotalsFromConds(FA, Out.Cond);
  Out.Ok = true;
  return Out;
}

//===----------------------------------------------------------------------===//
// LoopFrequencyStats
//===----------------------------------------------------------------------===//

LoopFrequencyStats::LoopFrequencyStats(const ProgramAnalysis &RawPA) {
  for (const auto &[F, FA] : RawPA.all()) {
    std::vector<LoopShape> FnShapes;
    const IntervalStructure &IS = FA->intervals();
    const Cfg &C = FA->cfg();
    for (NodeId H : IS.headers()) {
      LoopShape Shape;
      Shape.HeaderStmt = C.origin(H);
      Shape.BodyStmts.assign(F->numStmts(), false);
      for (NodeId N : IS.loopBody(H)) {
        StmtId S = C.origin(N);
        if (S != InvalidStmt)
          Shape.BodyStmts[S] = true;
      }
      FnShapes.push_back(std::move(Shape));
    }
    Shapes.emplace(F, std::move(FnShapes));
  }
}

void LoopFrequencyStats::onProcedureEntry(const Function &F, unsigned Depth) {
  Frames.resize(Depth + 1);
  Frames[Depth].F = &F;
  Frames[Depth].Active.clear();
}

void LoopFrequencyStats::onProcedureExit(const Function &F, unsigned Depth) {
  if (Depth >= Frames.size())
    return;
  FunctionState &State = Frames[Depth];
  // Close any loops still open (closed normally via the exit transfer, but
  // a fault can interrupt execution mid-loop).
  while (!State.Active.empty()) {
    ActiveLoop &A = State.Active.back();
    const LoopShape &Shape = Shapes[&F][A.LoopIdx];
    Moments &M = Stats[{&F, Shape.HeaderStmt}];
    M.Entries += 1;
    M.Sum += A.HeaderExecs;
    M.SumSq += A.HeaderExecs * A.HeaderExecs;
    State.Active.pop_back();
  }
  Frames.resize(Depth);
}

void LoopFrequencyStats::onStatement(const Function &F, StmtId S,
                                     unsigned Depth) {
  FunctionState &State = Frames[Depth];
  auto It = Shapes.find(&F);
  if (It == Shapes.end())
    return;
  const std::vector<LoopShape> &FnShapes = It->second;

  // Header executions: bump active loops, activate on first execution.
  for (unsigned I = 0; I < FnShapes.size(); ++I) {
    if (FnShapes[I].HeaderStmt != S)
      continue;
    bool ActiveAlready = false;
    for (ActiveLoop &A : State.Active)
      if (A.LoopIdx == I) {
        A.HeaderExecs += 1;
        ActiveAlready = true;
      }
    if (!ActiveAlready)
      State.Active.push_back({I, 1.0});
  }
}

void LoopFrequencyStats::closeLoopsOutside(FunctionState &State,
                                           const Function &F, StmtId Target) {
  while (!State.Active.empty()) {
    ActiveLoop &A = State.Active.back();
    const LoopShape &Shape = Shapes[&F][A.LoopIdx];
    bool Inside = Target != InvalidStmt && Target < Shape.BodyStmts.size() &&
                  Shape.BodyStmts[Target];
    if (Inside)
      return;
    Moments &M = Stats[{&F, Shape.HeaderStmt}];
    M.Entries += 1;
    M.Sum += A.HeaderExecs;
    M.SumSq += A.HeaderExecs * A.HeaderExecs;
    State.Active.pop_back();
  }
}

void LoopFrequencyStats::onTransfer(const Function &F, StmtId, CfgLabel,
                                    StmtId To, unsigned Depth) {
  if (Depth >= Frames.size())
    return;
  closeLoopsOutside(Frames[Depth], F, To);
}

const LoopFrequencyStats::Moments *
LoopFrequencyStats::momentsFor(const Function &F, StmtId HeaderStmt) const {
  auto It = Stats.find({&F, HeaderStmt});
  return It == Stats.end() ? nullptr : &It->second;
}

std::vector<std::pair<StmtId, LoopFrequencyStats::Moments>>
LoopFrequencyStats::momentsOf(const Function &F) const {
  std::vector<std::pair<StmtId, Moments>> Out;
  for (auto It = Stats.lower_bound({&F, 0});
       It != Stats.end() && It->first.first == &F; ++It)
    Out.emplace_back(It->first.second, It->second);
  return Out;
}

void LoopFrequencyStats::addMoments(const Function &F, StmtId HeaderStmt,
                                    const Moments &M) {
  Moments &Acc = Stats[{&F, HeaderStmt}];
  Acc.Entries += M.Entries;
  Acc.Sum += M.Sum;
  Acc.SumSq += M.SumSq;
}
