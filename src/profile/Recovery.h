//===--- profile/Recovery.h - TOTAL_FREQ recovery ---------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs TOTAL_FREQ for every control condition (and the total
/// execution frequency of every FCDG node) from the reduced counter set of
/// a FunctionPlan. Derivation rules are linear, so recovery is a simple
/// fixpoint propagation: a node total becomes known when all its incoming
/// condition totals are known; a derived condition becomes known when all
/// terms of its rule are known.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PROFILE_RECOVERY_H
#define PTRAN_PROFILE_RECOVERY_H

#include "obs/Observability.h"
#include "profile/CounterPlan.h"
#include "support/Cancellation.h"

#include <map>
#include <vector>

namespace ptran {

/// Recovered total frequencies of one function (accumulated over however
/// many runs the counters cover).
struct FrequencyTotals {
  bool Ok = false;
  /// TOTAL_FREQ per control condition.
  std::map<ControlCondition, double> Cond;
  /// Total execution frequency per ECFG node (indexed by NodeId); nodes
  /// outside the FCDG keep -1.
  std::vector<double> Node;
  /// Conditions the solver could not resolve (diagnostic aid; empty when
  /// Ok).
  std::vector<ControlCondition> Unresolved;

  double nodeTotal(NodeId N) const { return Node[N]; }
  double condTotal(const ControlCondition &C) const {
    auto It = Cond.find(C);
    return It == Cond.end() ? 0.0 : It->second;
  }
};

/// Recovers all totals from \p Counters (the function's local counter
/// values, Plan.numCounters() of them). A counter vector that does not
/// match the plan's size (e.g. a stale program database) yields
/// FrequencyTotals{Ok = false} and a diagnostic on \p Diags instead of an
/// out-of-bounds read. When \p Obs is enabled, each call bumps
/// `recovery.calls` and `recovery.fixpoint_iterations` (passes of the
/// propagation loop) in the registry. \p Cancel (optional) is polled once
/// per fixpoint iteration: an expired token yields Ok = false with a
/// structured Timeout/Cancelled diagnostic instead of finishing the solve.
FrequencyTotals recoverTotals(const FunctionAnalysis &FA,
                              const FunctionPlan &Plan,
                              const std::vector<double> &Counters,
                              DiagnosticEngine *Diags = nullptr,
                              ObsRegistry *Obs = nullptr,
                              CancelToken *Cancel = nullptr);

/// Computes node totals from already-known condition totals via the FCDG
/// recurrence (equation 3 of Section 3, in total form). Used both by the
/// solver and to turn exact ground-truth condition counts into node
/// totals.
std::vector<double>
nodeTotalsFromConds(const FunctionAnalysis &FA,
                    const std::map<ControlCondition, double> &Cond);

/// Symbolically checks that \p Plan can recover every condition (runs the
/// solver with zero-valued counters and inspects resolvability). Used by
/// tests and by plan validation.
bool planIsRecoverable(const FunctionAnalysis &FA, const FunctionPlan &Plan);

} // namespace ptran

#endif // PTRAN_PROFILE_RECOVERY_H
