//===--- profile/Recovery.cpp - TOTAL_FREQ recovery -----------------------===//

#include "profile/Recovery.h"

#include <string>

using namespace ptran;

FrequencyTotals ptran::recoverTotals(const FunctionAnalysis &FA,
                                     const FunctionPlan &Plan,
                                     const std::vector<double> &Counters,
                                     DiagnosticEngine *Diags,
                                     ObsRegistry *Obs, CancelToken *Cancel) {
  // Explicit validation (not just an assert, which compiles out in release
  // builds): a mismatched vector would index out of bounds below.
  if (Counters.size() != Plan.numCounters()) {
    if (Diags)
      Diags->error("counter vector for " + FA.function().name() + " has " +
                   std::to_string(Counters.size()) + " entries, plan expects " +
                   std::to_string(Plan.numCounters()));
    FrequencyTotals Bad;
    Bad.Ok = false;
    return Bad;
  }
  if (Plan.mode() == ProfileMode::Naive) {
    // Naive plans measure basic blocks, not conditions; nothing to solve.
    FrequencyTotals Empty;
    Empty.Ok = false;
    return Empty;
  }

  const ControlDependence &CD = FA.cd();
  const Digraph &Fcdg = CD.fcdg();
  NodeId Start = FA.ecfg().start();

  FrequencyTotals Out;
  Out.Node.assign(Fcdg.numNodes(), -1.0);
  std::map<ControlCondition, double> Known;

  auto CondKnown = [&](const ControlCondition &C) {
    return Known.count(C) != 0;
  };

  // Fixpoint propagation over node totals and condition rules. Every
  // productive pass resolves at least one condition or node total, so a
  // well-formed plan converges within conditions + nodes passes; the cap
  // only trips on contradictory input (e.g. a NaN counter keeps a node
  // total "unknown" forever because NaN >= 0.0 is false, re-deriving it
  // each pass with Changed stuck at true).
  const uint64_t MaxIterations =
      2 * (static_cast<uint64_t>(CD.conditions().size()) + Fcdg.numNodes()) + 8;
  bool Changed = true;
  uint64_t Iterations = 0;
  while (Changed) {
    if (Iterations >= MaxIterations) {
      if (Diags)
        Diags->error("frequency recovery for " + FA.function().name() +
                     " did not converge after " +
                     std::to_string(Iterations) +
                     " iterations; counters are contradictory (NaN or cyclic "
                     "derivation)");
      if (Obs) {
        Obs->addCounter("recovery.calls");
        Obs->addCounter("recovery.fixpoint_iterations", Iterations);
        Obs->addCounter("recovery.diverged");
      }
      FrequencyTotals Bad;
      Bad.Ok = false;
      return Bad;
    }
    if (Cancel && Cancel->checkpoint()) {
      if (Diags)
        Diags->error(cancelMessage(*Cancel, "frequency recovery for " +
                                                FA.function().name()));
      if (Obs) {
        Obs->addCounter("recovery.calls");
        Obs->addCounter("recovery.fixpoint_iterations", Iterations);
      }
      FrequencyTotals Bad;
      Bad.Ok = false;
      return Bad;
    }
    Changed = false;
    ++Iterations;

    // Node totals: START's equals its own U condition (the procedure's
    // invocation count); every other node sums its incoming conditions.
    for (NodeId N : CD.topoOrder()) {
      if (Out.Node[N] >= 0.0)
        continue;
      if (N == Start) {
        ControlCondition StartCond{Start, CfgLabel::U};
        if (CondKnown(StartCond)) {
          Out.Node[N] = Known[StartCond];
          Changed = true;
        }
        continue;
      }
      double Sum = 0.0;
      bool AllKnown = true;
      for (EdgeId In : Fcdg.inEdges(N)) {
        const Digraph::Edge &Ed = Fcdg.edge(In);
        ControlCondition C{Ed.From, static_cast<CfgLabel>(Ed.Label)};
        if (!CondKnown(C)) {
          AllKnown = false;
          break;
        }
        Sum += Known[C];
      }
      if (AllKnown && Fcdg.inDegree(N) > 0) {
        Out.Node[N] = Sum;
        Changed = true;
      }
    }

    // Condition rules.
    for (const auto &[Cond, R] : Plan.resolutions()) {
      if (CondKnown(Cond))
        continue;
      switch (R.K) {
      case Resolution::Kind::Measured:
        Known[Cond] = Counters[R.Counter];
        Changed = true;
        continue;
      case Resolution::Kind::Zero:
        Known[Cond] = 0.0;
        Changed = true;
        continue;
      default:
        break;
      }
      // Linear rule: resolvable when every term is known.
      double Value = 0.0;
      bool AllKnown = true;
      for (const RecoveryTerm &T : R.Terms) {
        switch (T.K) {
        case RecoveryTerm::Kind::CondTotal:
          if (!CondKnown(T.Cond)) {
            AllKnown = false;
            break;
          }
          Value += T.Coeff * Known[T.Cond];
          break;
        case RecoveryTerm::Kind::NodeTotal:
          if (Out.Node[T.Node] < 0.0) {
            AllKnown = false;
            break;
          }
          Value += T.Coeff * Out.Node[T.Node];
          break;
        case RecoveryTerm::Kind::CounterVal:
          Value += T.Coeff * Counters[T.Counter];
          break;
        }
        if (!AllKnown)
          break;
      }
      if (AllKnown) {
        // Counter noise can produce tiny negative values for identically
        // zero paths; clamp.
        Known[Cond] = Value < 0.0 ? 0.0 : Value;
        Changed = true;
      }
    }
  }

  if (Obs) {
    Obs->addCounter("recovery.calls");
    Obs->addCounter("recovery.fixpoint_iterations", Iterations);
  }

  Out.Cond = Known;
  Out.Ok = true;
  for (const ControlCondition &C : CD.conditions())
    if (!CondKnown(C)) {
      Out.Ok = false;
      Out.Unresolved.push_back(C);
    }
  for (NodeId N : CD.topoOrder())
    if (Out.Node[N] < 0.0)
      Out.Ok = false;
  return Out;
}

std::vector<double> ptran::nodeTotalsFromConds(
    const FunctionAnalysis &FA,
    const std::map<ControlCondition, double> &Cond) {
  const ControlDependence &CD = FA.cd();
  const Digraph &Fcdg = CD.fcdg();
  NodeId Start = FA.ecfg().start();

  std::vector<double> Node(Fcdg.numNodes(), -1.0);
  for (NodeId N : CD.topoOrder()) {
    if (N == Start) {
      auto It = Cond.find({Start, CfgLabel::U});
      Node[N] = It == Cond.end() ? 0.0 : It->second;
      continue;
    }
    double Sum = 0.0;
    for (EdgeId In : Fcdg.inEdges(N)) {
      const Digraph::Edge &Ed = Fcdg.edge(In);
      auto It = Cond.find({Ed.From, static_cast<CfgLabel>(Ed.Label)});
      Sum += It == Cond.end() ? 0.0 : It->second;
    }
    Node[N] = Sum;
  }
  return Node;
}

bool ptran::planIsRecoverable(const FunctionAnalysis &FA,
                              const FunctionPlan &Plan) {
  if (Plan.mode() == ProfileMode::Naive)
    return true; // Naive plans have no condition rules to resolve.
  std::vector<double> Zeros(Plan.numCounters(), 0.0);
  return recoverTotals(FA, Plan, Zeros).Ok;
}
