//===--- session/EstimationSession.cpp - Incremental estimation -----------===//

#include "session/EstimationSession.h"

#include "freq/StaticFrequencies.h"
#include "profile/ConsistencyCheck.h"
#include "support/Saturation.h"

#include <bit>
#include <cmath>
#include <set>

using namespace ptran;

static bool sameCostModel(const CostModel &A, const CostModel &B) {
  // Exact field-by-field comparison: cache reuse must never cross cost
  // models, and hashing doubles invites collisions.
  return A.OpCost == B.OpCost && A.ScalarRefCost == B.ScalarRefCost &&
         A.ArrayRefCost == B.ArrayRefCost &&
         A.IntrinsicCost == B.IntrinsicCost && A.AssignCost == B.AssignCost &&
         A.BranchCost == B.BranchCost && A.GotoCost == B.GotoCost &&
         A.LoopOverheadCost == B.LoopOverheadCost &&
         A.CallOverheadCost == B.CallOverheadCost && A.ArgCost == B.ArgCost &&
         A.PrintCost == B.PrintCost &&
         A.CounterIncrementCost == B.CounterIncrementCost &&
         A.CounterAddCost == B.CounterAddCost;
}

std::unique_ptr<EstimationSession>
EstimationSession::create(const Program &P, const CostModel &CM,
                          const EstimatorOptions &Opts) {
  auto S = std::unique_ptr<EstimationSession>(new EstimationSession());
  S->P = &P;
  S->CM = CM;
  S->Opts = Opts;
  // One long-lived pool for every pass the session ever runs (analysis
  // fan-out and each query's TimeAnalysis waves), unless the caller
  // already owns one.
  if (!S->Opts.Exec.Pool) {
    unsigned Workers = ThreadPool::resolveJobs(S->Opts.Exec.Jobs);
    if (Workers > 1) {
      S->Pool = std::make_unique<ThreadPool>(Workers);
      S->Opts.Exec.Pool = S->Pool.get();
    }
  }
  S->Est = Estimator::create(P, CM, S->Opts);
  if (!S->Est)
    return nullptr;
  return S;
}

namespace {
/// Installs a per-call cancel token for the duration of one serialized
/// call (the caller holds the session lock, so the swap is private to that
/// call); null keeps the session-wide token.
struct ScopedCancelSwap {
  EstimatorOptions &Opts;
  CancelToken *Saved;
  ScopedCancelSwap(EstimatorOptions &Opts, CancelToken *Cancel)
      : Opts(Opts), Saved(Opts.Cancel) {
    if (Cancel)
      Opts.Cancel = Cancel;
  }
  ~ScopedCancelSwap() { Opts.Cancel = Saved; }
};
} // namespace

RunResult EstimationSession::profiledRun(uint64_t MaxSteps) {
  std::lock_guard<std::mutex> L(Mu);
  ++Runs;
  RuntimeStale = true;
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("session.runs");
  return Est->profiledRun(MaxSteps);
}

void EstimationSession::accumulateTotals(const Function &F,
                                         const FrequencyTotals &Delta) {
  std::lock_guard<std::mutex> L(Mu);
  accumulateTotalsLocked(F, Delta);
}

void EstimationSession::accumulateTotalsLocked(const Function &F,
                                               const FrequencyTotals &Delta) {
  // Deltas may be partial (no Σ identities to hold them to), but the
  // values themselves must be sane counts.
  for (const auto &[Cond, Total] : Delta.Cond) {
    if (std::isfinite(Total) && Total >= 0.0 &&
        Total <= ProfileFile::SaturationLimit)
      continue;
    std::string Issue =
        "externally accumulated totals are non-finite, negative or "
        "overflowed";
    if (Opts.OnBadProfile == BadProfilePolicy::Quarantine) {
      quarantine(F, Issue);
    } else {
      ExternalBad.emplace(&F, Issue);
      // Dirty the function so the next refresh visits it and reports the
      // failure (the rejected delta itself is not applied).
      ExternalDirty.insert(&F);
    }
    return; // Reject the whole delta; good entries must not half-apply.
  }
  // Each delta is bounded, but an unbounded stream of bounded deltas is
  // not: clamp the accumulator at 2^53 exactly as the PTPF merge does, so
  // repeated valid deltas degrade to a diagnosed lower bound instead of a
  // silently imprecise double.
  std::map<ControlCondition, double> &Acc = External[&F];
  bool Saturated = false;
  for (const auto &[Cond, Total] : Delta.Cond)
    Saturated |= saturatingAdd(Acc[Cond], Total);
  if (Saturated)
    noteSaturation(F);
  ExternalDirty.insert(&F);
}

void EstimationSession::accumulateTotalsBatch(
    const std::vector<std::pair<const Function *, FrequencyTotals>> &Deltas) {
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &[F, Delta] : Deltas)
    accumulateTotalsLocked(*F, Delta);
}

void EstimationSession::noteExternalSaturation(const Function &F) {
  std::lock_guard<std::mutex> L(Mu);
  noteSaturation(F);
}

uint64_t EstimationSession::inputKeyOf(const Function &F,
                                       const FrequencyTotals &Totals) const {
  // The structural part is the program database's fingerprint; the data
  // part folds in the accumulated condition totals and loop-frequency
  // moments. Any input TimeAnalysis can observe is covered, so equal keys
  // mean a function's summary is reusable verbatim.
  uint64_t H = ProgramDatabase::structuralFingerprint(Est->analysis().of(F));
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  auto MixDouble = [&Mix](double D) { Mix(std::bit_cast<uint64_t>(D)); };
  Mix(Totals.Cond.size());
  for (const auto &[Cond, Total] : Totals.Cond) {
    Mix(Cond.Node);
    Mix(static_cast<uint64_t>(Cond.Label));
    MixDouble(Total);
  }
  // Loop moments live on the goto-preserving analysis (its statement ids
  // key LoopFrequencyStats). They can change while condition totals stay
  // identical — e.g. per-entry counts 1,3 vs 2,2 — so they must be part
  // of the key for Profiled variance to invalidate correctly.
  const FunctionAnalysis *RawFA = Est->rawAnalysis().tryOf(F);
  if (RawFA) {
    for (NodeId Header : RawFA->intervals().headers()) {
      StmtId S = RawFA->cfg().origin(Header);
      if (const LoopFrequencyStats::Moments *M =
              Est->loopStats().momentsFor(F, S)) {
        Mix(static_cast<uint64_t>(S));
        MixDouble(M->Entries);
        MixDouble(M->Sum);
        MixDouble(M->SumSq);
      }
    }
  }
  return H;
}

std::string
EstimationSession::totalsIssue(const FrequencyTotals &Totals) const {
  if (!Totals.Ok)
    return "counter recovery failed";
  for (const auto &[Cond, Total] : Totals.Cond)
    if (!std::isfinite(Total) || Total < 0.0)
      return "recovered totals contain non-finite or negative values";
  for (double N : Totals.Node)
    if (!std::isfinite(N))
      return "recovered node totals contain non-finite values";
  return {};
}

void EstimationSession::quarantine(const Function &F,
                                   const std::string &Reason) {
  // First reason wins; quarantine is sticky for the session's lifetime.
  if (!QuarantinedFns.emplace(&F, Reason).second)
    return;
  // Force a refresh so the function's frequencies switch to the static
  // estimate before the next query.
  ExternalDirty.insert(&F);
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("session.quarantined_functions");
  if (Opts.Diags)
    Opts.Diags->warning("quarantining function " + F.name() + ": " + Reason +
                        "; estimates degrade to static frequencies");
}

void EstimationSession::noteSaturation(const Function &F) {
  // Once per function, mirroring the PTPF merge diagnostic: from here on
  // this function's totals (and estimates derived from them) are lower
  // bounds, not exact counts.
  if (!SaturatedFns.insert(&F).second)
    return;
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("session.saturated_functions");
  if (Opts.Diags)
    Opts.Diags->warning("accumulate: totals for " + F.name() +
                        " saturated at 2^53; totals are now lower bounds");
}

void EstimationSession::degradeForDeadline(const Function &F,
                                           const std::string &Reason) {
  // First reason wins within a query. Unlike quarantine this is not
  // sticky: estimate() lifts it (and re-dirties the function) on entry.
  if (!DegradedFns.emplace(&F, Reason).second)
    return;
  // Static frequencies depend only on structure; the salt keeps the key
  // distinct from both profiled and quarantined keys.
  InputState &In = Inputs[&F];
  In.Key = ProgramDatabase::structuralFingerprint(Est->analysis().of(F)) ^
           0x4445475241ULL; // "DEGRA"
  FreqsByFunction[&F] = computeStaticFrequencies(Est->analysis().of(F)).Freqs;
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("resilience.degraded_functions");
  if (Opts.Diags)
    Opts.Diags->warning("degrading function " + F.name() +
                        " to static frequencies: " + Reason);
}

std::string EstimationSession::refreshFunction(const Function &F,
                                               InputState &In) {
  if (QuarantinedFns.count(&F)) {
    // Static frequencies depend only on the function's structure, so the
    // key is the structural fingerprint salted to never collide with a
    // profiled key.
    uint64_t Key =
        ProgramDatabase::structuralFingerprint(Est->analysis().of(F)) ^
        0x5155415241ULL; // "QUARA"
    if (In.Key != Key || !FreqsByFunction.count(&F)) {
      In.Key = Key;
      FreqsByFunction[&F] =
          computeStaticFrequencies(Est->analysis().of(F)).Freqs;
    }
    return {};
  }

  FrequencyTotals Totals = In.Base;
  auto It = External.find(&F);
  bool HasExternal = It != External.end() && !It->second.empty();
  if (HasExternal) {
    // Base and the external accumulator are each bounded by 2^53, but
    // their sum is not; clamp it with the same lower-bounds diagnostic.
    bool Saturated = false;
    for (const auto &[Cond, Total] : It->second)
      Saturated |= saturatingAdd(Totals.Cond[Cond], Total);
    if (Saturated)
      noteSaturation(F);
    // Node totals follow from condition totals via the FCDG recurrence.
    Totals.Node = nodeTotalsFromConds(Est->analysis().of(F), Totals.Cond);
    // Each delta was value-checked on arrival, but their sum can still
    // overflow to infinity; catch that before it poisons the cache. (The
    // Σ identities are deliberately not enforced here — deltas may be
    // partial; complete profiles are identity-checked by ingestProfile.)
    std::string Issue = totalsIssue(Totals);
    if (!Issue.empty()) {
      if (Opts.OnBadProfile == BadProfilePolicy::Quarantine) {
        quarantine(F, Issue);
        return refreshFunction(F, In);
      }
      return Issue;
    }
  }
  uint64_t Key = inputKeyOf(F, Totals);
  if (In.Key != Key || !FreqsByFunction.count(&F)) {
    In.Key = Key;
    FreqsByFunction[&F] = computeFrequencies(Est->analysis().of(F), Totals);
  }
  return {};
}

bool EstimationSession::refreshInputs(std::string &Error) {
  if (!RuntimeStale && ExternalDirty.empty())
    return true;
  CancelToken *Cancel = Opts.Cancel;
  bool Ok = true;
  bool CutShort = false;
  for (const auto &F : P->functions()) {
    InputState &In = Inputs[F.get()];
    if (!CutShort && Cancel && Cancel->checkpoint()) {
      CutShort = true;
      if (ObsRegistry *Obs = Opts.Obs.Registry)
        Obs->addCounter(Cancel->reason() == CancelReason::Cancelled
                            ? "resilience.cancellations"
                            : "resilience.deadline_hits");
    }
    if (CutShort) {
      if (Opts.OnDeadline == DeadlinePolicy::Fail) {
        Error = cancelMessage(*Cancel, "input refresh");
        return false;
      }
      // Degrade: every function whose inputs were still pending completes
      // this query from static frequencies. Quarantined functions are
      // static already; just make sure their frequencies are installed
      // (structural, no recovery — cheap).
      if (QuarantinedFns.count(F.get()))
        refreshFunction(*F, In);
      else if (RuntimeStale || ExternalDirty.count(F.get()) ||
               !FreqsByFunction.count(F.get()))
        degradeForDeadline(*F, Cancel->describe());
      continue;
    }
    // The recovery fixpoint is the expensive part of reading new
    // counters; run it only when the runtime actually moved, not when a
    // query follows a pure external-delta injection.
    if (RuntimeStale && !QuarantinedFns.count(F.get())) {
      In.Base = Est->runtime().recover(*F);
      std::string Issue = totalsIssue(In.Base);
      if (!Issue.empty()) {
        // Naive plans cannot recover branch totals at all — that is an
        // unsupported configuration, not corrupt data, so it never
        // quarantines.
        if (Opts.OnBadProfile == BadProfilePolicy::Quarantine &&
            Est->plan().mode() != ProfileMode::Naive) {
          quarantine(*F, Issue);
        } else {
          In.RecoveryFailed = true;
          Ok = false;
          if (Error.empty())
            Error = "counter recovery failed for function " + F->name();
          continue;
        }
      }
      In.RecoveryFailed = false;
    } else if (!RuntimeStale && !ExternalDirty.count(F.get())) {
      continue;
    }
    if (In.RecoveryFailed) {
      Ok = false;
      if (Error.empty())
        Error = "counter recovery failed for function " + F->name();
      continue;
    }
    auto BadIt = ExternalBad.find(F.get());
    if (BadIt != ExternalBad.end()) {
      Ok = false;
      if (Error.empty())
        Error = "profile data for function " + F->name() +
                " failed validation: " + BadIt->second;
      continue;
    }
    std::string Issue = refreshFunction(*F, In);
    if (!Issue.empty()) {
      // Only reachable under BadProfilePolicy::Fail: external data for
      // this function failed validation.
      Ok = false;
      if (Error.empty())
        Error = "profile data for function " + F->name() +
                " failed validation: " + Issue;
    }
  }
  // A cut-short refresh must stay stale: the skipped recoveries never
  // ran, so the next query (degradation lifted) redoes them for real.
  if (Ok && !CutShort) {
    RuntimeStale = false;
    ExternalDirty.clear();
  }
  return Ok;
}

EstimationSession::ConfigCache &
EstimationSession::configFor(const CostModel &ConfigCM, LoopVarianceMode LV) {
  for (auto &C : Configs)
    if (C->LoopVariance == LV && sameCostModel(C->CM, ConfigCM))
      return *C;
  auto C = std::make_unique<ConfigCache>();
  C->CM = ConfigCM;
  C->LoopVariance = LV;
  Configs.push_back(std::move(C));
  return *Configs.back();
}

std::string EstimationSession::refreshConfig(ConfigCache &Cache) {
  ObsRegistry *Obs = Opts.Obs.Registry;
  std::vector<const Function *> Changed;
  if (Cache.Analysis) {
    for (const auto &F : P->functions()) {
      auto It = Cache.Keys.find(F.get());
      if (It == Cache.Keys.end() || It->second != Inputs[F.get()].Key)
        Changed.push_back(F.get());
    }
    if (Changed.empty()) {
      ++CacheHits;
      if (Obs)
        Obs->addCounter("session.cache_hits");
      return {};
    }
  }
  if (Obs) {
    Obs->addCounter("session.cache_misses");
    // A cold run dirties the whole program; an incremental rerun only the
    // changed functions (TimeAnalysis widens them to the dirty closure).
    Obs->addCounter("session.dirty_functions",
                    Cache.Analysis ? Changed.size() : P->functions().size());
  }

  TimeAnalysisOptions TAOpts;
  TAOpts.Kernel = Opts.Kernel;
  TAOpts.LoopVariance = Cache.LoopVariance;
  if (Cache.LoopVariance == LoopVarianceMode::Profiled)
    TAOpts.Stats = &Est->loopStats();
  TAOpts.Exec = Opts.Exec;
  TAOpts.Diags = Opts.Diags;
  TAOpts.Obs = Opts.Obs;
  TAOpts.Cancel = Opts.Cancel;

  TimeAnalysis Next =
      Cache.Analysis
          ? TimeAnalysis::rerun(Est->analysis(), FreqsByFunction, Cache.CM,
                                TAOpts, *Cache.Analysis, Changed)
          : TimeAnalysis::run(Est->analysis(), FreqsByFunction, Cache.CM,
                              TAOpts);
  LastEvals += Next.functionEvaluations();
  TotalEvals += Next.functionEvaluations();
  if (Obs)
    Obs->addCounter("session.evaluations", Next.functionEvaluations());
  if (Next.cutShort()) {
    if (Opts.OnDeadline == DeadlinePolicy::Fail)
      // Leave the cache untouched: the previous analysis (if any) is still
      // consistent with Cache.Keys, so the failure is atomic and the next
      // query retries from the same state.
      return cancelMessage(*Opts.Cancel, "estimation");
    // Degrade: complete the unfinished functions from static frequencies
    // with an unbudgeted incremental rerun. Waves evaluate callers after
    // callees and expiry is monotone, so everything the budgeted run
    // finished is bit-identical to an unbounded run and is reused as-is.
    std::vector<const Function *> Unfinished = Next.unfinished();
    for (const Function *F : Unfinished)
      degradeForDeadline(*F, Opts.Cancel->describe());
    TAOpts.Cancel = nullptr;
    TimeAnalysis Completed = TimeAnalysis::rerun(
        Est->analysis(), FreqsByFunction, Cache.CM, TAOpts, Next, Unfinished);
    LastEvals += Completed.functionEvaluations();
    TotalEvals += Completed.functionEvaluations();
    if (Obs)
      Obs->addCounter("session.evaluations", Completed.functionEvaluations());
    Next = std::move(Completed);
  }
  Cache.Analysis = std::make_unique<TimeAnalysis>(std::move(Next));
  Cache.Keys.clear();
  for (const auto &F : P->functions())
    Cache.Keys[F.get()] = Inputs[F.get()].Key;
  return {};
}

std::vector<EstimateResult>
EstimationSession::estimate(const std::vector<EstimateRequest> &Requests) {
  std::lock_guard<std::mutex> L(Mu);
  return estimateLocked(Requests);
}

std::vector<EstimateResult>
EstimationSession::estimate(const std::vector<EstimateRequest> &Requests,
                            CancelToken *Cancel) {
  std::lock_guard<std::mutex> L(Mu);
  ScopedCancelSwap Swap(Opts, Cancel);
  return estimateLocked(Requests);
}

std::vector<EstimateResult>
EstimationSession::estimateLocked(const std::vector<EstimateRequest> &Requests) {
  LastEvals = 0;
  ObsRegistry *Obs = Opts.Obs.Registry;
  CancelToken *Cancel = Opts.Cancel;
  uint64_t PollsBefore = Cancel ? Cancel->polls() : 0;
  auto RecordPolls = [&] {
    if (Obs && Cancel)
      Obs->addCounter("resilience.cancel_polls", Cancel->polls() - PollsBefore);
  };
  if (Obs)
    Obs->addCounter("session.queries", Requests.size());
  // Deadline degradation is per-query: lift it so this query (with a
  // fresh or absent token) recomputes the affected functions exactly.
  if (!DegradedFns.empty()) {
    for (const auto &[F, Reason] : DegradedFns)
      ExternalDirty.insert(F);
    DegradedFns.clear();
  }
  std::string Error;
  bool InputsOk = refreshInputs(Error);

  std::vector<EstimateResult> Results(Requests.size());
  if (!InputsOk) {
    for (EstimateResult &R : Results) {
      R.Ok = false;
      R.Error = Error;
    }
    RecordPolls();
    return Results;
  }

  // Bring every configuration the batch touches up to date exactly once,
  // then answer from the caches.
  std::vector<ConfigCache *> Caches(Requests.size());
  std::set<ConfigCache *> Refreshed;
  for (size_t I = 0; I < Requests.size(); ++I) {
    const EstimateRequest &Req = Requests[I];
    ConfigCache &Cache =
        configFor(Req.Cost ? *Req.Cost : CM,
                  Req.LoopVariance ? *Req.LoopVariance : Opts.LoopVariance);
    if (Refreshed.insert(&Cache).second) {
      std::string ConfigError = refreshConfig(Cache);
      if (!ConfigError.empty()) {
        // Token expired under DeadlinePolicy::Fail: the whole batch fails
        // atomically (no cache was modified).
        for (EstimateResult &R : Results) {
          R.Ok = false;
          R.Error = ConfigError;
        }
        RecordPolls();
        return Results;
      }
    }
    Caches[I] = &Cache;
  }

  for (size_t I = 0; I < Requests.size(); ++I) {
    const EstimateRequest &Req = Requests[I];
    EstimateResult &R = Results[I];
    const Function *F = Req.Function.empty() ? P->entry()
                                             : P->findFunction(Req.Function);
    if (!F) {
      R.Error = Req.Function.empty()
                    ? "program has no entry procedure"
                    : "unknown function '" + Req.Function + "'";
      continue;
    }
    const TimeAnalysis &A = *Caches[I]->Analysis;
    R.Ok = true;
    R.F = F;
    R.Time = A.functionTime(*F);
    R.Var = A.functionVariance(*F);
    R.StdDev = std::sqrt(R.Var > 0.0 ? R.Var : 0.0);
    auto QIt = QuarantinedFns.find(F);
    if (QIt != QuarantinedFns.end()) {
      R.Quarantined = true;
      R.QuarantineReason = QIt->second;
    }
    auto DIt = DegradedFns.find(F);
    if (DIt != DegradedFns.end()) {
      R.Degraded = true;
      R.DegradeReason = DIt->second;
    }
    R.Analysis = &A;
  }
  RecordPolls();
  return Results;
}

ProfileFile EstimationSession::captureProfileLocked() const {
  return ProfileFile::capture(Est->analysis(), Est->plan(), Est->runtime(),
                              &Est->loopStats(), Runs);
}

ProfileFile EstimationSession::captureProfile() const {
  std::lock_guard<std::mutex> L(Mu);
  return captureProfileLocked();
}

bool EstimationSession::saveProfile(const std::string &Path,
                                    DiagnosticEngine *Diags) const {
  std::lock_guard<std::mutex> L(Mu);
  return captureProfileLocked().saveToFile(Path, Diags, Opts.IoRetry,
                                           Opts.Obs.Registry);
}

void EstimationSession::captureDurableState(
    durable::DurableSessionState &Out) const {
  std::lock_guard<std::mutex> L(Mu);
  Out.Runs = Runs;
  Out.ProfileImage = captureProfileLocked().serialize();
  Out.External.clear();
  Out.Saturated.clear();
  Out.Quarantined.clear();
  // Program order throughout: External/SaturatedFns/QuarantinedFns are
  // pointer-keyed, and pointer order is not deterministic across runs of
  // the daemon — iterating them directly would break the equal-state ⇒
  // equal-bytes contract the snapshot format promises.
  for (const auto &FPtr : P->functions()) {
    const Function *F = FPtr.get();
    auto EIt = External.find(F);
    if (EIt != External.end() && !EIt->second.empty()) {
      durable::FoldEntry FE;
      FE.Function = F->name();
      for (const auto &[Cond, Total] : EIt->second)
        FE.Conds.push_back({Cond.Node,
                            static_cast<uint8_t>(Cond.Label), Total});
      Out.External.push_back(std::move(FE));
    }
    if (SaturatedFns.count(F))
      Out.Saturated.push_back(F->name());
    auto QIt = QuarantinedFns.find(F);
    if (QIt != QuarantinedFns.end())
      Out.Quarantined.emplace_back(F->name(), QIt->second);
  }
}

bool EstimationSession::markQuarantined(const std::string &FunctionName,
                                        const std::string &Reason) {
  std::lock_guard<std::mutex> L(Mu);
  const Function *F = P->findFunction(FunctionName);
  if (!F)
    return false;
  quarantine(*F, Reason);
  return true;
}

ProfileIngestReport EstimationSession::ingestProfile(const ProfileFile &PF) {
  std::lock_guard<std::mutex> L(Mu);
  return ingestProfileLocked(PF);
}

ProfileIngestReport EstimationSession::ingestProfile(const ProfileFile &PF,
                                                     CancelToken *Cancel) {
  std::lock_guard<std::mutex> L(Mu);
  ScopedCancelSwap Swap(Opts, Cancel);
  return ingestProfileLocked(PF);
}

ProfileIngestReport
EstimationSession::ingestProfileLocked(const ProfileFile &PF) {
  ProfileIngestReport Report;
  ObsRegistry *Obs = Opts.Obs.Registry;
  if (Obs)
    Obs->addCounter("session.ingest.profiles");

  if (PF.programFingerprint() != programFingerprintOf(Est->analysis())) {
    Report.Error = "profile was recorded against a different program "
                   "(program fingerprint mismatch)";
    return Report;
  }
  if (PF.mode() != Est->plan().mode()) {
    Report.Error = std::string("profile counter mode ") +
                   profileModeName(PF.mode()) +
                   " does not match the session's " +
                   profileModeName(Est->plan().mode());
    return Report;
  }

  // Phase 1: validate every section without touching session state, so a
  // Fail-policy rejection is atomic.
  struct GoodSection {
    const Function *F = nullptr;
    FrequencyTotals Totals;
    const FunctionSection *S = nullptr;
  };
  std::vector<GoodSection> Good;
  std::vector<std::pair<const Function *, std::string>> Bad;
  CancelToken *Cancel = Opts.Cancel;
  for (const FunctionSection &S : PF.sections()) {
    // Validation only reads; aborting between sections leaves the session
    // untouched, so a mid-ingest expiry is atomic under every policy.
    if (Cancel && Cancel->checkpoint()) {
      Report.Error = cancelMessage(*Cancel, "profile ingest") +
                     "; nothing ingested";
      if (Obs)
        Obs->addCounter(Cancel->reason() == CancelReason::Cancelled
                            ? "resilience.cancellations"
                            : "resilience.deadline_hits");
      return Report;
    }
    if (Obs)
      Obs->addCounter("session.ingest.sections");
    const Function *F = P->findFunction(S.Name);
    if (!F) {
      Report.Findings.push_back(S.Name + ": profile names a function this "
                                         "program does not have");
      continue;
    }
    auto Reject = [&](const std::string &Why) {
      Bad.emplace_back(F, Why);
      Report.Findings.push_back(S.Name + ": " + Why);
    };
    const FunctionAnalysis *FA = Est->analysis().tryOf(*F);
    if (!FA) {
      Report.Findings.push_back(S.Name + ": function failed analysis; "
                                         "section ignored");
      continue;
    }
    if (QuarantinedFns.count(F)) {
      Report.Findings.push_back(S.Name + ": function is quarantined; "
                                         "section ignored");
      continue;
    }
    if (!S.Valid) {
      Reject(S.Issue);
      continue;
    }
    if (S.Fingerprint != structuralFingerprintOf(*FA)) {
      Reject("structural fingerprint mismatch (profile predates a change "
             "to this function)");
      continue;
    }
    if (S.Counters.size() != Est->plan().of(*F).numCounters()) {
      Reject("profile has " + std::to_string(S.Counters.size()) +
             " counters, plan expects " +
             std::to_string(Est->plan().of(*F).numCounters()));
      continue;
    }
    bool ValuesOk = true;
    for (double C : S.Counters)
      if (!std::isfinite(C) || C < 0.0 || C > ProfileFile::SaturationLimit) {
        Reject("counter values are non-finite, negative or overflowed");
        ValuesOk = false;
        break;
      }
    if (!ValuesOk)
      continue;
    for (const ProfileLoopMoments &L : S.Loops) {
      if (!std::isfinite(L.Entries) || !std::isfinite(L.Sum) ||
          !std::isfinite(L.SumSq) || L.Entries < 0.0 || L.Sum < 0.0 ||
          L.SumSq < 0.0) {
        Reject("loop moments are non-finite or negative");
        ValuesOk = false;
        break;
      }
      if (L.HeaderStmt >= F->numStmts()) {
        Reject("loop moments name a statement this function does not have");
        ValuesOk = false;
        break;
      }
      // Cauchy-Schwarz: E[FREQ^2] >= E[FREQ]^2, i.e. SumSq*Entries >=
      // Sum^2 — garbled moments usually break this.
      if (L.Entries > 0.0 &&
          L.SumSq * L.Entries + 1e-6 * L.Sum * L.Sum < L.Sum * L.Sum) {
        Reject("loop moments are internally inconsistent (E[F^2] < E[F]^2)");
        ValuesOk = false;
        break;
      }
    }
    if (!ValuesOk)
      continue;
    FrequencyTotals Totals =
        recoverTotals(*FA, Est->plan().of(*F), S.Counters, nullptr, nullptr,
                      Cancel);
    if (Cancel && Cancel->expired()) {
      // Expiry inside the recovery fixpoint is a transient cut, not bad
      // data: abort the ingest rather than misclassify the section.
      Report.Error = cancelMessage(*Cancel, "profile ingest") +
                     "; nothing ingested";
      return Report;
    }
    std::string Issue = totalsIssue(Totals);
    if (Issue.empty()) {
      std::vector<std::string> Findings =
          checkFrequencyConsistency(*FA, Totals);
      if (!Findings.empty())
        Issue = Findings.front();
    }
    if (!Issue.empty()) {
      Reject(Issue);
      continue;
    }
    Good.push_back({F, std::move(Totals), &S});
  }

  if (Opts.OnBadProfile == BadProfilePolicy::Fail && !Bad.empty()) {
    Report.Error = "profile failed validation for " +
                   std::to_string(Bad.size()) +
                   " function(s); nothing ingested";
    for (const auto &[F, Why] : Bad)
      Report.Quarantined.push_back(F->name());
    if (Obs)
      Obs->addCounter("session.ingest.rejected", Bad.size());
    return Report;
  }

  // Phase 2: fold the clean sections, quarantine the bad ones.
  for (const auto &[F, Why] : Bad) {
    quarantine(*F, Why);
    Report.Quarantined.push_back(F->name());
  }
  for (GoodSection &G : Good) {
    accumulateTotalsLocked(*G.F, G.Totals);
    for (const ProfileLoopMoments &L : G.S->Loops)
      Est->loopStatsMutable().addMoments(
          *G.F, L.HeaderStmt, {L.Entries, L.Sum, L.SumSq});
    ++Report.Accepted;
  }
  if (Obs) {
    Obs->addCounter("session.ingest.accepted", Report.Accepted);
    Obs->addCounter("session.ingest.quarantined", Bad.size());
  }
  Report.Ok = true;
  return Report;
}

EstimateResult EstimationSession::estimate(const EstimateRequest &Request) {
  return estimate(std::vector<EstimateRequest>{Request})[0];
}

EstimateResult EstimationSession::estimateEntry() {
  return estimate(EstimateRequest());
}
