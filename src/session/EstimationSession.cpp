//===--- session/EstimationSession.cpp - Incremental estimation -----------===//

#include "session/EstimationSession.h"

#include <bit>
#include <cmath>
#include <set>

using namespace ptran;

static bool sameCostModel(const CostModel &A, const CostModel &B) {
  // Exact field-by-field comparison: cache reuse must never cross cost
  // models, and hashing doubles invites collisions.
  return A.OpCost == B.OpCost && A.ScalarRefCost == B.ScalarRefCost &&
         A.ArrayRefCost == B.ArrayRefCost &&
         A.IntrinsicCost == B.IntrinsicCost && A.AssignCost == B.AssignCost &&
         A.BranchCost == B.BranchCost && A.GotoCost == B.GotoCost &&
         A.LoopOverheadCost == B.LoopOverheadCost &&
         A.CallOverheadCost == B.CallOverheadCost && A.ArgCost == B.ArgCost &&
         A.PrintCost == B.PrintCost &&
         A.CounterIncrementCost == B.CounterIncrementCost &&
         A.CounterAddCost == B.CounterAddCost;
}

std::unique_ptr<EstimationSession>
EstimationSession::create(const Program &P, const CostModel &CM,
                          const EstimatorOptions &Opts) {
  auto S = std::unique_ptr<EstimationSession>(new EstimationSession());
  S->P = &P;
  S->CM = CM;
  S->Opts = Opts;
  // One long-lived pool for every pass the session ever runs (analysis
  // fan-out and each query's TimeAnalysis waves), unless the caller
  // already owns one.
  if (!S->Opts.Exec.Pool) {
    unsigned Workers = ThreadPool::resolveJobs(S->Opts.Exec.Jobs);
    if (Workers > 1) {
      S->Pool = std::make_unique<ThreadPool>(Workers);
      S->Opts.Exec.Pool = S->Pool.get();
    }
  }
  S->Est = Estimator::create(P, CM, S->Opts);
  if (!S->Est)
    return nullptr;
  return S;
}

RunResult EstimationSession::profiledRun(uint64_t MaxSteps) {
  ++Runs;
  RuntimeStale = true;
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("session.runs");
  return Est->profiledRun(MaxSteps);
}

void EstimationSession::accumulateTotals(const Function &F,
                                         const FrequencyTotals &Delta) {
  std::map<ControlCondition, double> &Acc = External[&F];
  for (const auto &[Cond, Total] : Delta.Cond)
    Acc[Cond] += Total;
  ExternalDirty.insert(&F);
}

uint64_t EstimationSession::inputKeyOf(const Function &F,
                                       const FrequencyTotals &Totals) const {
  // The structural part is the program database's fingerprint; the data
  // part folds in the accumulated condition totals and loop-frequency
  // moments. Any input TimeAnalysis can observe is covered, so equal keys
  // mean a function's summary is reusable verbatim.
  uint64_t H = ProgramDatabase::structuralFingerprint(Est->analysis().of(F));
  auto Mix = [&H](uint64_t V) {
    H ^= V + 0x9e3779b97f4a7c15ULL + (H << 6) + (H >> 2);
  };
  auto MixDouble = [&Mix](double D) { Mix(std::bit_cast<uint64_t>(D)); };
  Mix(Totals.Cond.size());
  for (const auto &[Cond, Total] : Totals.Cond) {
    Mix(Cond.Node);
    Mix(static_cast<uint64_t>(Cond.Label));
    MixDouble(Total);
  }
  // Loop moments live on the goto-preserving analysis (its statement ids
  // key LoopFrequencyStats). They can change while condition totals stay
  // identical — e.g. per-entry counts 1,3 vs 2,2 — so they must be part
  // of the key for Profiled variance to invalidate correctly.
  const FunctionAnalysis *RawFA = Est->rawAnalysis().tryOf(F);
  if (RawFA) {
    for (NodeId Header : RawFA->intervals().headers()) {
      StmtId S = RawFA->cfg().origin(Header);
      if (const LoopFrequencyStats::Moments *M =
              Est->loopStats().momentsFor(F, S)) {
        Mix(static_cast<uint64_t>(S));
        MixDouble(M->Entries);
        MixDouble(M->Sum);
        MixDouble(M->SumSq);
      }
    }
  }
  return H;
}

void EstimationSession::refreshFunction(const Function &F, InputState &In) {
  FrequencyTotals Totals = In.Base;
  auto It = External.find(&F);
  if (It != External.end() && !It->second.empty()) {
    for (const auto &[Cond, Total] : It->second)
      Totals.Cond[Cond] += Total;
    // Node totals follow from condition totals via the FCDG recurrence.
    Totals.Node = nodeTotalsFromConds(Est->analysis().of(F), Totals.Cond);
  }
  uint64_t Key = inputKeyOf(F, Totals);
  if (In.Key != Key || !FreqsByFunction.count(&F)) {
    In.Key = Key;
    FreqsByFunction[&F] = computeFrequencies(Est->analysis().of(F), Totals);
  }
}

bool EstimationSession::refreshInputs(std::string &Error) {
  if (!RuntimeStale && ExternalDirty.empty())
    return true;
  bool Ok = true;
  for (const auto &F : P->functions()) {
    InputState &In = Inputs[F.get()];
    // The recovery fixpoint is the expensive part of reading new
    // counters; run it only when the runtime actually moved, not when a
    // query follows a pure external-delta injection.
    if (RuntimeStale) {
      In.Base = Est->runtime().recover(*F);
      if (!In.Base.Ok) {
        In.RecoveryFailed = true;
        Ok = false;
        if (Error.empty())
          Error = "counter recovery failed for function " + F->name();
        continue;
      }
      In.RecoveryFailed = false;
    } else if (!ExternalDirty.count(F.get())) {
      continue;
    }
    if (In.RecoveryFailed) {
      Ok = false;
      if (Error.empty())
        Error = "counter recovery failed for function " + F->name();
      continue;
    }
    refreshFunction(*F, In);
  }
  if (Ok) {
    RuntimeStale = false;
    ExternalDirty.clear();
  }
  return Ok;
}

EstimationSession::ConfigCache &
EstimationSession::configFor(const CostModel &ConfigCM, LoopVarianceMode LV) {
  for (auto &C : Configs)
    if (C->LoopVariance == LV && sameCostModel(C->CM, ConfigCM))
      return *C;
  auto C = std::make_unique<ConfigCache>();
  C->CM = ConfigCM;
  C->LoopVariance = LV;
  Configs.push_back(std::move(C));
  return *Configs.back();
}

void EstimationSession::refreshConfig(ConfigCache &Cache) {
  ObsRegistry *Obs = Opts.Obs.Registry;
  std::vector<const Function *> Changed;
  if (Cache.Analysis) {
    for (const auto &F : P->functions()) {
      auto It = Cache.Keys.find(F.get());
      if (It == Cache.Keys.end() || It->second != Inputs[F.get()].Key)
        Changed.push_back(F.get());
    }
    if (Changed.empty()) {
      ++CacheHits;
      if (Obs)
        Obs->addCounter("session.cache_hits");
      return;
    }
  }
  if (Obs) {
    Obs->addCounter("session.cache_misses");
    // A cold run dirties the whole program; an incremental rerun only the
    // changed functions (TimeAnalysis widens them to the dirty closure).
    Obs->addCounter("session.dirty_functions",
                    Cache.Analysis ? Changed.size() : P->functions().size());
  }

  TimeAnalysisOptions TAOpts;
  TAOpts.LoopVariance = Cache.LoopVariance;
  if (Cache.LoopVariance == LoopVarianceMode::Profiled)
    TAOpts.Stats = &Est->loopStats();
  TAOpts.Exec = Opts.Exec;
  TAOpts.Diags = Opts.Diags;
  TAOpts.Obs = Opts.Obs;

  TimeAnalysis Next =
      Cache.Analysis
          ? TimeAnalysis::rerun(Est->analysis(), FreqsByFunction, Cache.CM,
                                TAOpts, *Cache.Analysis, Changed)
          : TimeAnalysis::run(Est->analysis(), FreqsByFunction, Cache.CM,
                              TAOpts);
  LastEvals += Next.functionEvaluations();
  TotalEvals += Next.functionEvaluations();
  if (Obs)
    Obs->addCounter("session.evaluations", Next.functionEvaluations());
  Cache.Analysis = std::make_unique<TimeAnalysis>(std::move(Next));
  Cache.Keys.clear();
  for (const auto &F : P->functions())
    Cache.Keys[F.get()] = Inputs[F.get()].Key;
}

std::vector<EstimateResult>
EstimationSession::estimate(const std::vector<EstimateRequest> &Requests) {
  LastEvals = 0;
  if (ObsRegistry *Obs = Opts.Obs.Registry)
    Obs->addCounter("session.queries", Requests.size());
  std::string Error;
  bool InputsOk = refreshInputs(Error);

  std::vector<EstimateResult> Results(Requests.size());
  if (!InputsOk) {
    for (EstimateResult &R : Results) {
      R.Ok = false;
      R.Error = Error;
    }
    return Results;
  }

  // Bring every configuration the batch touches up to date exactly once,
  // then answer from the caches.
  std::vector<ConfigCache *> Caches(Requests.size());
  std::set<ConfigCache *> Refreshed;
  for (size_t I = 0; I < Requests.size(); ++I) {
    const EstimateRequest &Req = Requests[I];
    ConfigCache &Cache =
        configFor(Req.Cost ? *Req.Cost : CM,
                  Req.LoopVariance ? *Req.LoopVariance : Opts.LoopVariance);
    if (Refreshed.insert(&Cache).second)
      refreshConfig(Cache);
    Caches[I] = &Cache;
  }

  for (size_t I = 0; I < Requests.size(); ++I) {
    const EstimateRequest &Req = Requests[I];
    EstimateResult &R = Results[I];
    const Function *F = Req.Function.empty() ? P->entry()
                                             : P->findFunction(Req.Function);
    if (!F) {
      R.Error = Req.Function.empty()
                    ? "program has no entry procedure"
                    : "unknown function '" + Req.Function + "'";
      continue;
    }
    const TimeAnalysis &A = *Caches[I]->Analysis;
    R.Ok = true;
    R.F = F;
    R.Time = A.functionTime(*F);
    R.Var = A.functionVariance(*F);
    R.StdDev = std::sqrt(R.Var > 0.0 ? R.Var : 0.0);
    R.Analysis = &A;
  }
  return Results;
}

EstimateResult EstimationSession::estimate(const EstimateRequest &Request) {
  return estimate(std::vector<EstimateRequest>{Request})[0];
}

EstimateResult EstimationSession::estimateEntry() {
  return estimate(EstimateRequest());
}
