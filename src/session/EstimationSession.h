//===--- session/EstimationSession.h - Incremental estimation ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A resident estimation service. Where an Estimator answers one
/// analyze() call from scratch, an EstimationSession keeps the program's
/// analyses, counter plan and per-function TIME/VAR summaries alive
/// across many profiled runs and queries, and re-runs the interprocedural
/// TimeAnalysis only over the functions whose inputs actually changed.
///
/// Every function's cached summary is keyed by the structural fingerprint
/// the program database already uses (ProgramDatabase::
/// structuralFingerprint) mixed with a hash of its accumulated condition
/// totals and loop-frequency moments; every cached analysis additionally
/// remembers the exact cost model and loop-variance mode it was computed
/// under. A query after new profiled runs therefore invalidates only the
/// functions whose totals changed — plus their call-graph ancestors,
/// which TimeAnalysis::rerun widens to whole SCCs of the condensation —
/// and replays the wave schedule over just that dirty subgraph, feeding
/// cached callee summaries in at the frontier. Results are bit-identical
/// to a cold recomputation (the tests memcmp them).
///
/// The batch API estimate(Requests) lets tools ask for many functions
/// under many configurations in one call; ptran-estimate, the
/// profile_explorer example and the scaling benchmark are thin clients of
/// it.
///
/// Concurrency contract (what ptran-serve relies on): every state-touching
/// member function — profiledRun, accumulateTotals, ingestProfile,
/// captureProfile, saveProfile and estimate — is serialized by one
/// internal lock, so any number of threads may call them on one session
/// and each call observes a consistent session. Two caveats:
///
///   - EstimateResult::Analysis points at session-owned cache state and is
///     only stable until the next state-touching call; a concurrent caller
///     must consume the scalar fields (Time/Var/StdDev and the
///     Quarantined/Degraded tags) before releasing its thread of control,
///     and must not dereference Analysis once other threads may mutate the
///     session. The serving daemon only ships the scalars.
///   - The introspection accessors (quarantined(), degraded(),
///     lastEvaluations() and friends) are unlocked reads for tests and
///     single-threaded tools; call them only while no other thread is
///     inside the session.
///
/// The per-call estimate/ingestProfile overloads taking a CancelToken
/// exist for one-session-many-deadlines callers (one daemon request = one
/// token): the token replaces EstimatorOptions::Cancel for the duration of
/// that one serialized call.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SESSION_ESTIMATIONSESSION_H
#define PTRAN_SESSION_ESTIMATIONSESSION_H

#include "cost/Estimator.h"
#include "durable/Snapshot.h"
#include "pdb/ProgramDatabase.h"

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace ptran {

/// One query of a batch: which function, under which configuration.
struct EstimateRequest {
  /// Function name (case-insensitive); empty means the program entry.
  std::string Function;
  /// Loop-variance model override; unset uses the session default.
  std::optional<LoopVarianceMode> LoopVariance;
  /// Cost-model override; unset uses the session's model. Each distinct
  /// override gets its own cached analysis, so alternating between a few
  /// models stays incremental.
  std::optional<CostModel> Cost;

  EstimateRequest() = default;
  explicit EstimateRequest(std::string Function)
      : Function(std::move(Function)) {}
};

/// One query's answer.
struct EstimateResult {
  bool Ok = false;
  /// Human-readable reason when !Ok (unknown function, recovery failure).
  std::string Error;
  const Function *F = nullptr;
  double Time = 0.0;   ///< TIME(START) of F.
  double Var = 0.0;    ///< VAR(START) of F.
  double StdDev = 0.0; ///< sqrt(Var).
  /// True when this function's profile data failed validation and the
  /// answer comes from static frequencies (uniform branches, default trip
  /// counts) instead of the profile. Ok stays true: the estimate is
  /// usable, just degraded.
  bool Quarantined = false;
  /// Why the function was quarantined (empty otherwise).
  std::string QuarantineReason;
  /// True when the query's CancelToken expired before this function was
  /// (re)estimated and DeadlinePolicy::Degrade completed it from static
  /// frequencies. Unlike quarantine, this is not sticky: the next query
  /// (with a fresh or no token) recomputes the exact answer.
  bool Degraded = false;
  /// Why the function was degraded (empty otherwise).
  std::string DegradeReason;
  /// The full analysis the answer came from (owned by the session; valid
  /// until the session mutates that configuration's cache or dies).
  const TimeAnalysis *Analysis = nullptr;
};

/// Outcome of ingesting one profile file into a session.
struct ProfileIngestReport {
  /// True when the ingest took effect (under BadProfilePolicy::Fail, any
  /// bad section rejects the whole profile and leaves Ok false).
  bool Ok = false;
  /// Whole-profile failure reason (fingerprint/mode mismatch, rejection).
  std::string Error;
  /// Sections whose data was folded into the session.
  unsigned Accepted = 0;
  /// Functions quarantined (or, under Fail, that would have been), by
  /// name, in program order.
  std::vector<std::string> Quarantined;
  /// Per-section validation findings, each prefixed "<function>: ".
  std::vector<std::string> Findings;
};

/// Owns one program's estimation state across runs and queries.
class EstimationSession {
public:
  /// Analyzes \p P (which must outlive the session) and builds the
  /// counter plan. Returns null on analysis failure, reported to
  /// \p Opts.Diags when set. When \p Opts.Exec names no external pool,
  /// the session creates one sized by Opts.Exec.Jobs and routes every
  /// pass — per-function analysis, each TimeAnalysis wave — through it.
  /// When \p Opts.Obs is enabled, the session reports `session.*`
  /// counters (runs, queries, cache hits/misses, dirty-closure sizes,
  /// evaluations) and every underlying pass records spans into the same
  /// registry.
  static std::unique_ptr<EstimationSession>
  create(const Program &P, const CostModel &CM,
         const EstimatorOptions &Opts = EstimatorOptions());

  /// Runs the program once with profiling attached; counters and loop
  /// moments accumulate across calls, exactly as the paper's program
  /// database accumulates TOTAL_FREQ across runs.
  RunResult profiledRun(uint64_t MaxSteps = 200'000'000);

  /// Folds an externally recorded totals delta (e.g. another machine's
  /// program database) into \p F's accumulated totals. Node totals are
  /// rederived through the FCDG recurrence, so \p Delta only needs
  /// condition entries — deltas may be partial, so only value sanity
  /// (finite, non-negative, unsaturated) is enforced here, per the
  /// session's BadProfilePolicy. Complete profiles should arrive through
  /// ingestProfile(), which additionally checks the paper's Σ identities.
  void accumulateTotals(const Function &F, const FrequencyTotals &Delta);

  /// Folds many functions' deltas under ONE lock acquisition, so a
  /// concurrent estimate() either sees none of the batch or all of it —
  /// never a torn half-batch. This is the consistency primitive the
  /// streaming ingest epoch flush is built on: one epoch = one batch.
  /// Per-entry validation and saturation behave exactly as
  /// accumulateTotals.
  void accumulateTotalsBatch(
      const std::vector<std::pair<const Function *, FrequencyTotals>> &Deltas);

  /// Records that an external producer (e.g. the streaming ingest fold)
  /// clamped \p F's counter totals at 2^53 before handing them over, so the
  /// session's own accumulator never saw the overflow. Emits the same
  /// once-per-function "lower bounds" diagnostic as internal saturation.
  void noteExternalSaturation(const Function &F);

  /// Validates and folds a loaded profile file. Program fingerprint and
  /// counter mode must match the session's (whole-profile failure
  /// otherwise). Each section is validated — checksum verdict from the
  /// load, per-function fingerprint, counter shape, finite non-negative
  /// values, recovery, Σ identities, loop-moment sanity. Under
  /// BadProfilePolicy::Quarantine, clean sections fold in and bad ones
  /// quarantine their function; under Fail, any bad section rejects the
  /// whole profile (nothing folds).
  ProfileIngestReport ingestProfile(const ProfileFile &PF);

  /// Same, bounded by \p Cancel instead of the session-wide
  /// EstimatorOptions::Cancel for this one call (null = use the session
  /// token). The swap happens under the session lock, so concurrent
  /// callers each get their own bound.
  ProfileIngestReport ingestProfile(const ProfileFile &PF,
                                    CancelToken *Cancel);

  /// Snapshots the session's accumulated counter runtime and loop moments
  /// as a durable profile (external deltas are not counter-representable
  /// and are not included).
  ProfileFile captureProfile() const;

  /// captureProfile() + ProfileFile::saveToFile, through the session's
  /// retry policy (EstimatorOptions::IoRetry): transient IO failures are
  /// absorbed, only persistent ones surface.
  bool saveProfile(const std::string &Path, DiagnosticEngine *Diags) const;

  /// Fills the session-owned slice of a durable snapshot (the serve layer
  /// owns Name/Source/Mode): run count, the serialized PTPF image of the
  /// accumulated counter state, the external totals, and the saturation/
  /// quarantine sets — everything in program order, so identical session
  /// state always produces identical snapshot bytes (the kill-and-recover
  /// test memcmps them). One lock acquisition: the capture is a consistent
  /// cut, never a torn view.
  void captureDurableState(durable::DurableSessionState &Out) const;

  /// Re-applies a sticky quarantine recorded in a snapshot (the restore
  /// path; quarantine reasons must survive a daemon restart verbatim).
  /// False when \p FunctionName names no function of this program.
  bool markQuarantined(const std::string &FunctionName,
                       const std::string &Reason);

  /// Functions currently quarantined, with reasons. Quarantine is sticky
  /// for the session's lifetime: later clean data does not lift it.
  const std::map<const Function *, std::string> &quarantined() const {
    return QuarantinedFns;
  }
  bool isQuarantined(const Function &F) const {
    return QuarantinedFns.count(&F) != 0;
  }

  /// Functions the most recent query completed from static frequencies
  /// because the token expired under DeadlinePolicy::Degrade, with
  /// reasons. Cleared (and the functions marked dirty, so they recompute
  /// exactly) at the start of the next estimate() call.
  const std::map<const Function *, std::string> &degraded() const {
    return DegradedFns;
  }
  bool isDegraded(const Function &F) const {
    return DegradedFns.count(&F) != 0;
  }

  /// Answers a batch of queries. Inputs are refreshed lazily: functions
  /// whose fingerprinted totals/moments are unchanged since the last
  /// query keep their cached summaries, and only the dirty closure is
  /// re-evaluated (per distinct configuration in the batch).
  std::vector<EstimateResult> estimate(const std::vector<EstimateRequest> &);

  /// Same, bounded by \p Cancel instead of the session-wide token for this
  /// one call (null = use the session token). One daemon request = one
  /// token: each serialized call runs under its own deadline/budgets.
  std::vector<EstimateResult> estimate(const std::vector<EstimateRequest> &,
                                       CancelToken *Cancel);

  /// Single-query conveniences.
  EstimateResult estimate(const EstimateRequest &Request);
  /// The program entry under the session defaults.
  EstimateResult estimateEntry();

  /// -- Introspection (tests assert incrementality through these) --------

  /// Per-function bottom-up evaluations the most recent estimate() call
  /// performed (0 when every configuration was served from cache).
  uint64_t lastEvaluations() const { return LastEvals; }
  /// Same, accumulated over the session's lifetime.
  uint64_t totalEvaluations() const { return TotalEvals; }
  /// Configurations served with no re-evaluation at all, lifetime.
  uint64_t cacheHits() const { return CacheHits; }
  /// Profiled runs executed so far.
  unsigned runsExecuted() const { return Runs; }

  const Program &program() const { return *P; }
  const Estimator &estimator() const { return *Est; }
  Estimator &estimatorMutable() { return *Est; }

private:
  EstimationSession() = default;

  /// The unlocked bodies of the public entry points (callers hold Mu).
  std::vector<EstimateResult>
  estimateLocked(const std::vector<EstimateRequest> &Requests);
  ProfileIngestReport ingestProfileLocked(const ProfileFile &PF);
  ProfileFile captureProfileLocked() const;
  void accumulateTotalsLocked(const Function &F, const FrequencyTotals &Delta);

  /// Per-function input state, refreshed lazily before a query.
  struct InputState {
    /// Structural fingerprint + totals + loop moments, hashed.
    uint64_t Key = 0;
    /// Totals recovered from the counter runtime, cached so queries after
    /// a pure external-delta injection skip the recovery fixpoint for
    /// every untouched function.
    FrequencyTotals Base;
    /// Set when counter recovery failed (naive plans on unexecuted
    /// functions); queries touching the program then fail per-request.
    bool RecoveryFailed = false;
  };

  /// One (cost model, loop-variance mode) configuration's cached
  /// analysis. Stored behind unique_ptr so addresses stay stable while
  /// the vector grows (EstimateResult::Analysis points into it).
  struct ConfigCache {
    CostModel CM;
    LoopVarianceMode LoopVariance = LoopVarianceMode::Zero;
    std::unique_ptr<TimeAnalysis> Analysis;
    /// Input keys the analysis was computed under.
    std::map<const Function *, uint64_t> Keys;
  };

  /// Recomputes keys/frequencies for every function whose accumulated
  /// inputs changed. Returns false (and sets \p Error) when recovery
  /// failed for some function.
  bool refreshInputs(std::string &Error);
  /// Re-derives one function's key and frequencies from its cached base
  /// totals plus external deltas (or static frequencies when \p F is
  /// quarantined). \returns the empty string, or — under
  /// BadProfilePolicy::Fail — why externally contributed totals failed
  /// validation.
  std::string refreshFunction(const Function &F, InputState &In);
  /// Why \p Totals are unusable as recovered profile data ("" = fine).
  std::string totalsIssue(const FrequencyTotals &Totals) const;
  /// Marks \p F quarantined (first reason wins) and schedules its switch
  /// to static frequencies.
  void quarantine(const Function &F, const std::string &Reason);
  /// Emits the once-per-function "totals saturated at 2^53; lower bounds"
  /// warning (same contract as the PTPF merge diagnostic).
  void noteSaturation(const Function &F);
  /// Switches \p F to static frequencies for the current query because
  /// the token expired under DeadlinePolicy::Degrade (non-sticky; lifted
  /// at the start of the next estimate() call).
  void degradeForDeadline(const Function &F, const std::string &Reason);
  uint64_t inputKeyOf(const Function &F, const FrequencyTotals &Totals) const;
  ConfigCache &configFor(const CostModel &CM, LoopVarianceMode LV);
  /// Brings \p Cache up to date with the current inputs (cold run,
  /// incremental rerun, or nothing). Returns the empty string, or why the
  /// query must fail (token expired under DeadlinePolicy::Fail; the cache
  /// is left untouched, so the failure is atomic).
  std::string refreshConfig(ConfigCache &Cache);

  /// Serializes every state-touching public member function (see the
  /// concurrency contract in the file comment). Mutable so the const
  /// capture/save paths can take it too.
  mutable std::mutex Mu;

  const Program *P = nullptr;
  CostModel CM;
  EstimatorOptions Opts;
  /// The session's own pool when the caller did not supply one;
  /// Opts.Exec.Pool points at it.
  std::unique_ptr<ThreadPool> Pool;
  std::unique_ptr<Estimator> Est;

  std::map<const Function *, InputState> Inputs;
  /// Current frequencies of every function, updated in place as inputs
  /// change; analyses read it by reference (no per-query copies).
  std::map<const Function *, Frequencies> FreqsByFunction;
  /// Externally injected totals deltas (condition entries only).
  std::map<const Function *, std::map<ControlCondition, double>> External;
  std::vector<std::unique_ptr<ConfigCache>> Configs;
  /// Counters may have moved: re-recover every function's base totals.
  bool RuntimeStale = true;
  /// Functions whose external deltas changed since the last refresh.
  std::set<const Function *> ExternalDirty;
  /// Functions estimated from static frequencies because their profile
  /// data failed validation, with the (first) reason.
  std::map<const Function *, std::string> QuarantinedFns;
  /// Functions completed from static frequencies because the current
  /// query's token expired under DeadlinePolicy::Degrade. Non-sticky:
  /// lifted (and marked dirty) by the next estimate() call.
  std::map<const Function *, std::string> DegradedFns;
  /// Under BadProfilePolicy::Fail: functions whose externally accumulated
  /// deltas failed validation (queries fail until the data is repaired;
  /// under Quarantine the function is quarantined instead).
  std::map<const Function *, std::string> ExternalBad;
  /// Functions whose accumulated totals have clamped at 2^53 (diagnostic
  /// already emitted; estimates are lower bounds from then on).
  std::set<const Function *> SaturatedFns;

  uint64_t LastEvals = 0;
  uint64_t TotalEvals = 0;
  uint64_t CacheHits = 0;
  unsigned Runs = 0;
};

} // namespace ptran

#endif // PTRAN_SESSION_ESTIMATIONSESSION_H
