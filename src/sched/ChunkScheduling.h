//===--- sched/ChunkScheduling.h - Variance-guided chunking -----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's motivating application for variance (Section 5): choosing
/// the chunk size of a self-scheduled parallel loop per Kruskal-Weiss
/// [KW85]. With zero body variance the best chunk is ~N/P (one chunk per
/// processor, minimal dispatch overhead); with large variance smaller
/// chunks rebalance the load at the cost of more dispatches. This module
/// provides
///
///   - the closed-form Kruskal-Weiss chunk size from (mean, variance,
///     overhead, N, P),
///   - an adviser that pulls the mean and variance of a DO loop's body
///     straight out of a TimeAnalysis,
///   - a discrete-event self-scheduling simulator to measure the actual
///     makespan of any chunk size (used by tests and the A3 bench).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SCHED_CHUNKSCHEDULING_H
#define PTRAN_SCHED_CHUNKSCHEDULING_H

#include "cost/TimeAnalysis.h"
#include "support/Rng.h"

#include <cstdint>
#include <functional>

namespace ptran {

/// Kruskal-Weiss chunk size for \p N iterations on \p P processors with
/// per-iteration mean \p Mean, variance \p Var and per-chunk dispatch
/// overhead \p Overhead:
///
///   K = ( sqrt(2) * N * Overhead / (Sigma * P * sqrt(log P)) )^(2/3)
///
/// clamped to [1, ceil(N / P)]. Zero variance yields ceil(N / P).
uint64_t kruskalWeissChunkSize(uint64_t N, unsigned P, double Mean,
                               double Var, double Overhead);

/// Chunk-size advice for one DO loop derived from the analysis results.
struct LoopScheduleAdvice {
  /// Average per-iteration execution time of the loop body.
  double BodyMean = 0.0;
  /// Variance of the per-iteration execution time.
  double BodyVar = 0.0;
  /// Average trip count observed by the profile.
  double TripCount = 0.0;
  /// The recommended chunk size.
  uint64_t Chunk = 1;
};

/// Derives (mean, variance) of the body of the loop headed by ECFG node
/// \p Header in \p F, and the Kruskal-Weiss chunk size for \p P
/// processors with dispatch overhead \p Overhead. The per-iteration time
/// is COST(header) plus the TIME of the nodes control dependent on the
/// header's T branch; its variance sums their VARs.
LoopScheduleAdvice adviseChunkSize(const TimeAnalysis &TA,
                                   const FunctionAnalysis &FA,
                                   const Frequencies &Freqs, NodeId Header,
                                   unsigned P, double Overhead);

/// Result of one simulated self-scheduled execution.
struct ChunkSimResult {
  double Makespan = 0.0;
  /// Total chunk dispatches performed.
  uint64_t Chunks = 0;
  /// Sum of iteration times (the ideal work, excluding overhead).
  double TotalWork = 0.0;

  /// Parallel efficiency: ideal time / (P * makespan).
  double efficiency(unsigned P) const {
    return Makespan > 0.0 ? TotalWork / (static_cast<double>(P) * Makespan)
                          : 1.0;
  }
};

/// Simulates self-scheduling \p N iterations on \p P processors with
/// chunk size \p Chunk: an idle processor grabs the next \p Chunk
/// iterations, paying \p Overhead per grab. Iteration times come from
/// \p DrawTime (invoked once per iteration, in iteration order).
ChunkSimResult simulateChunkedLoop(uint64_t N, unsigned P, uint64_t Chunk,
                                   double Overhead,
                                   const std::function<double()> &DrawTime);

} // namespace ptran

#endif // PTRAN_SCHED_CHUNKSCHEDULING_H
