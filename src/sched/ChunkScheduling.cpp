//===--- sched/ChunkScheduling.cpp - Variance-guided chunking -------------===//

#include "sched/ChunkScheduling.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <vector>

using namespace ptran;

uint64_t ptran::kruskalWeissChunkSize(uint64_t N, unsigned P, double Mean,
                                      double Var, double Overhead) {
  (void)Mean;
  assert(P > 0 && "need at least one processor");
  if (N == 0)
    return 1;
  uint64_t MaxChunk = (N + P - 1) / P;
  if (Var <= 0.0 || P == 1)
    return MaxChunk;
  double Sigma = std::sqrt(Var);
  double LogP = std::log(static_cast<double>(P));
  if (LogP < 1.0)
    LogP = 1.0; // P = 2: avoid a degenerate denominator.
  double Num = std::sqrt(2.0) * static_cast<double>(N) * Overhead;
  double Den = Sigma * static_cast<double>(P) * std::sqrt(LogP);
  double K = std::pow(Num / Den, 2.0 / 3.0);
  uint64_t Chunk = static_cast<uint64_t>(std::llround(K));
  return std::clamp<uint64_t>(Chunk, 1, MaxChunk);
}

LoopScheduleAdvice ptran::adviseChunkSize(const TimeAnalysis &TA,
                                          const FunctionAnalysis &FA,
                                          const Frequencies &Freqs,
                                          NodeId Header, unsigned P,
                                          double Overhead) {
  const Function &F = FA.function();
  const Ecfg &E = FA.ecfg();

  LoopScheduleAdvice Advice;
  // Per-iteration time: the header's own cost plus its T-dependent body.
  Advice.BodyMean = TA.of(F, Header).Cost;
  for (NodeId V : FA.cd().childrenOf(Header, CfgLabel::T)) {
    Advice.BodyMean += TA.of(F, V).Time;
    Advice.BodyVar += TA.of(F, V).Var;
  }

  NodeId Ph = E.preheaderOf(Header);
  if (Ph != InvalidNode) {
    // Loop frequency counts header executions; iterations are one fewer.
    double HeaderExecs = Freqs.freqOf({Ph, CfgLabel::U});
    Advice.TripCount = HeaderExecs > 1.0 ? HeaderExecs - 1.0 : 0.0;
  }

  uint64_t N = static_cast<uint64_t>(std::llround(Advice.TripCount));
  if (N == 0)
    N = 1;
  Advice.Chunk =
      kruskalWeissChunkSize(N, P, Advice.BodyMean, Advice.BodyVar, Overhead);
  return Advice;
}

ChunkSimResult
ptran::simulateChunkedLoop(uint64_t N, unsigned P, uint64_t Chunk,
                           double Overhead,
                           const std::function<double()> &DrawTime) {
  assert(P > 0 && Chunk > 0 && "degenerate schedule");
  ChunkSimResult Result;

  // Min-heap of processor-available times.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      Free;
  for (unsigned I = 0; I < P; ++I)
    Free.push(0.0);

  uint64_t Next = 0;
  while (Next < N) {
    uint64_t End = std::min(N, Next + Chunk);
    double Work = 0.0;
    for (uint64_t I = Next; I < End; ++I)
      Work += DrawTime();
    Next = End;

    double Start = Free.top();
    Free.pop();
    Free.push(Start + Overhead + Work);
    Result.TotalWork += Work;
    ++Result.Chunks;
  }

  while (!Free.empty()) {
    Result.Makespan = std::max(Result.Makespan, Free.top());
    Free.pop();
  }
  return Result;
}
