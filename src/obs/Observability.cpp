//===--- obs/Observability.cpp - Tracing spans and runtime counters -------===//

#include "obs/Observability.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ptran;

ObsRegistry::ObsRegistry() : Epoch(std::chrono::steady_clock::now()) {}

void ObsRegistry::addCounter(std::string_view Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(M);
  Counters[std::string(Name)] += Delta;
}

uint64_t ObsRegistry::counterValue(std::string_view Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(std::string(Name));
  return It == Counters.end() ? 0 : It->second;
}

std::map<std::string, uint64_t> ObsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters;
}

unsigned ObsRegistry::tidOfLocked(std::thread::id Id) {
  auto [It, Inserted] = Tids.emplace(Id, static_cast<unsigned>(Tids.size()));
  (void)Inserted;
  return It->second;
}

void ObsRegistry::recordSpan(std::string Name, std::string Detail,
                             std::chrono::steady_clock::time_point Start,
                             std::chrono::steady_clock::time_point End) {
  using namespace std::chrono;
  SpanRecord R;
  R.Name = std::move(Name);
  R.Detail = std::move(Detail);
  R.StartNs = static_cast<uint64_t>(
      duration_cast<nanoseconds>(Start - Epoch).count());
  R.DurNs =
      static_cast<uint64_t>(duration_cast<nanoseconds>(End - Start).count());
  std::lock_guard<std::mutex> Lock(M);
  R.Tid = tidOfLocked(std::this_thread::get_id());
  Spans.push_back(std::move(R));
}

std::vector<ObsRegistry::SpanRecord> ObsRegistry::spans() const {
  std::lock_guard<std::mutex> Lock(M);
  return Spans;
}

bool ObsRegistry::empty() const {
  std::lock_guard<std::mutex> Lock(M);
  return Spans.empty() && Counters.empty();
}

uint64_t ObsRegistry::nowNs() const {
  using namespace std::chrono;
  return static_cast<uint64_t>(
      duration_cast<nanoseconds>(steady_clock::now() - Epoch).count());
}

namespace {

/// Escapes a string for embedding in a JSON string literal.
std::string jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Formats nanoseconds as Chrome's microsecond timestamps (fractional
/// microseconds keep sub-microsecond spans visible).
std::string microseconds(uint64_t Ns) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu.%03u",
                static_cast<unsigned long long>(Ns / 1000),
                static_cast<unsigned>(Ns % 1000));
  return Buf;
}

} // namespace

std::string ObsRegistry::chromeTraceJson() const {
  std::vector<SpanRecord> SpanCopy;
  std::map<std::string, uint64_t> CounterCopy;
  {
    std::lock_guard<std::mutex> Lock(M);
    SpanCopy = Spans;
    CounterCopy = Counters;
  }

  std::ostringstream Out;
  Out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool First = true;
  uint64_t LastNs = 0;
  for (const SpanRecord &S : SpanCopy) {
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":\"" << jsonEscape(S.Name)
        << "\",\"cat\":\"ptran\",\"ph\":\"X\",\"pid\":1,\"tid\":" << S.Tid
        << ",\"ts\":" << microseconds(S.StartNs)
        << ",\"dur\":" << microseconds(S.DurNs);
    if (!S.Detail.empty())
      Out << ",\"args\":{\"detail\":\"" << jsonEscape(S.Detail) << "\"}";
    Out << "}";
    LastNs = std::max(LastNs, S.StartNs + S.DurNs);
  }
  for (const auto &[Name, Value] : CounterCopy) {
    if (!First)
      Out << ",";
    First = false;
    Out << "{\"name\":\"" << jsonEscape(Name)
        << "\",\"cat\":\"ptran\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":"
        << microseconds(LastNs) << ",\"args\":{\"value\":" << Value << "}}";
  }
  Out << "]}";
  return Out.str();
}

bool ObsRegistry::writeChromeTrace(const std::string &Path,
                                   std::string &Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    Error = "cannot open trace file '" + Path + "' for writing";
    return false;
  }
  Out << chromeTraceJson() << "\n";
  Out.flush();
  if (!Out) {
    Error = "failed writing trace file '" + Path + "'";
    return false;
  }
  return true;
}

std::string ObsRegistry::statsTable() const {
  std::vector<SpanRecord> SpanCopy;
  std::map<std::string, uint64_t> CounterCopy;
  {
    std::lock_guard<std::mutex> Lock(M);
    SpanCopy = Spans;
    CounterCopy = Counters;
  }

  struct Agg {
    uint64_t Count = 0;
    uint64_t TotalNs = 0;
    uint64_t MaxNs = 0;
  };
  std::map<std::string, Agg> ByName;
  for (const SpanRecord &S : SpanCopy) {
    Agg &A = ByName[S.Name];
    ++A.Count;
    A.TotalNs += S.DurNs;
    A.MaxNs = std::max(A.MaxNs, S.DurNs);
  }
  std::vector<std::pair<std::string, Agg>> Sorted(ByName.begin(),
                                                  ByName.end());
  std::sort(Sorted.begin(), Sorted.end(), [](const auto &A, const auto &B) {
    if (A.second.TotalNs != B.second.TotalNs)
      return A.second.TotalNs > B.second.TotalNs;
    return A.first < B.first;
  });

  auto Ms = [](uint64_t Ns) { return formatDouble(Ns / 1e6, 4); };

  std::string Out = "=== observability: timing spans ===\n";
  TablePrinter SpanTable(
      {"span", "count", "total [ms]", "mean [ms]", "max [ms]"});
  for (const auto &[Name, A] : Sorted)
    SpanTable.addRow({Name, std::to_string(A.Count), Ms(A.TotalNs),
                      Ms(A.Count ? A.TotalNs / A.Count : 0), Ms(A.MaxNs)});
  Out += SpanTable.str();

  Out += "\n=== observability: counters ===\n";
  TablePrinter CounterTable({"counter", "value"});
  for (const auto &[Name, Value] : CounterCopy)
    CounterTable.addRow({Name, std::to_string(Value)});
  Out += CounterTable.str();
  return Out;
}
