//===--- obs/HotpathAlloc.cpp - Heap-allocation counting hook -------------===//
//
// Replaces the global allocation functions with counting forwarders to
// malloc/free. Rules followed here (C++17 [new.delete]):
//
//   - replacing the throwing operator new requires replacing the plain,
//     sized and nothrow deletes too, so a mix of replaced and library
//     forms never pairs up inconsistently;
//   - the aligned-allocation overloads are deliberately NOT replaced: the
//     library defaults remain, over-aligned allocations simply go
//     uncounted (none sit on the hot path);
//   - the counter is thread_local, so concurrent sweeps count only their
//     own allocations and the hook adds no synchronization.
//
//===----------------------------------------------------------------------===//

#include "obs/HotpathAlloc.h"

#include <cstdlib>
#include <new>

namespace {
thread_local uint64_t ThreadAllocs = 0;

void *countedAlloc(std::size_t Sz) noexcept {
  void *P = std::malloc(Sz ? Sz : 1);
  if (P)
    ++ThreadAllocs;
  return P;
}
} // namespace

uint64_t ptran::threadAllocCount() { return ThreadAllocs; }

void *operator new(std::size_t Sz) {
  void *P = countedAlloc(Sz);
  if (!P)
    throw std::bad_alloc();
  return P;
}

void *operator new[](std::size_t Sz) {
  void *P = countedAlloc(Sz);
  if (!P)
    throw std::bad_alloc();
  return P;
}

void *operator new(std::size_t Sz, const std::nothrow_t &) noexcept {
  return countedAlloc(Sz);
}

void *operator new[](std::size_t Sz, const std::nothrow_t &) noexcept {
  return countedAlloc(Sz);
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
