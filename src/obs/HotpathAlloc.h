//===--- obs/HotpathAlloc.h - Heap-allocation counting hook ----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A debug allocator hook that counts heap allocations per thread, used to
/// *prove* (not just hope) that the CSR TIME/VAR sweep performs no heap
/// allocation per query. Linking ptran_obs replaces the global operator
/// new/delete with counting forwarders to malloc/free; the counter is a
/// thread_local increment, so the hook is cheap enough to stay enabled in
/// every build (including sanitized ones — ASan/TSan intercept malloc
/// underneath the replacement and keep working).
///
/// The estimation sweep opens a HotpathAllocScope around its propagation
/// loop and reports the delta as the `cost.hotpath.allocs` observability
/// counter; session_test asserts the delta is zero for warm queries.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_OBS_HOTPATHALLOC_H
#define PTRAN_OBS_HOTPATHALLOC_H

#include <cstdint>

namespace ptran {

/// Number of heap allocations (operator new / new[]) performed by the
/// current thread since it started. Monotone; only meaningful as deltas.
uint64_t threadAllocCount();

/// Samples threadAllocCount() at construction; count() returns how many
/// allocations the current thread performed since. Scopes may nest (they
/// are independent samples of the same counter). Thread-affine: construct
/// and query on the same thread.
class HotpathAllocScope {
public:
  HotpathAllocScope() : Start(threadAllocCount()) {}
  uint64_t count() const { return threadAllocCount() - Start; }

private:
  uint64_t Start;
};

} // namespace ptran

#endif // PTRAN_OBS_HOTPATHALLOC_H
