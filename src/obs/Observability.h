//===--- obs/Observability.h - Tracing spans and runtime counters -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight tracing/metrics subsystem for the estimation pipeline:
///
///   - ObsRegistry collects thread-safe timing-span records and named
///     monotonic counters, and serializes them as Chrome `trace_event`
///     JSON (load the file in chrome://tracing or https://ui.perfetto.dev)
///     or as a plain-text stats table;
///   - TimingSpan is the RAII producer: construction stamps the start,
///     destruction records the completed span. A null registry makes both
///     ends no-ops — no clock reads, no string copies — so instrumented
///     passes pay one pointer test when observability is disabled;
///   - ObservabilityOptions is the knob carried by AnalysisOptions,
///     TimeAnalysisOptions and EstimatorOptions (and therefore by
///     EstimationSession); `--trace=FILE` / `--stats` in ptran-estimate
///     attach one registry to the whole pipeline.
///
/// Every producer in the tree writes through one registry, including pool
/// workers, so all methods lock; spans here bound whole passes (a
/// function's CFG build, an SCC's TIME/VAR evaluation), not inner loops.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_OBS_OBSERVABILITY_H
#define PTRAN_OBS_OBSERVABILITY_H

#include "support/ObsSink.h"

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ptran {

/// Collects spans and counters from every pass of one estimation
/// campaign. All members are thread-safe; one registry is shared by the
/// orchestrating thread and every pool worker.
class ObsRegistry : public ObsSink {
public:
  /// One completed timing span. Times are nanoseconds since the
  /// registry's construction (its epoch).
  struct SpanRecord {
    std::string Name;   ///< e.g. "analysis.cfg", "timeanalysis.scc".
    std::string Detail; ///< Optional qualifier, e.g. the function name.
    uint64_t StartNs = 0;
    uint64_t DurNs = 0;
    /// Small dense thread index (0 = first thread seen), stable per
    /// registry; Chrome renders one row per tid.
    unsigned Tid = 0;
  };

  ObsRegistry();

  // ObsSink:
  void addCounter(std::string_view Name, uint64_t Delta = 1) override;

  /// Current value of counter \p Name (0 if never bumped).
  uint64_t counterValue(std::string_view Name) const;
  /// Snapshot of all counters.
  std::map<std::string, uint64_t> counters() const;

  /// Records a completed span (normally called by ~TimingSpan).
  void recordSpan(std::string Name, std::string Detail,
                  std::chrono::steady_clock::time_point Start,
                  std::chrono::steady_clock::time_point End);

  /// Snapshot of all spans recorded so far.
  std::vector<SpanRecord> spans() const;
  /// True if no span and no counter has been recorded.
  bool empty() const;

  /// Nanoseconds since the registry's epoch.
  uint64_t nowNs() const;

  /// Serializes everything as Chrome trace_event JSON: spans as complete
  /// ("ph":"X") events with microsecond timestamps, counters as one
  /// trailing counter ("ph":"C") event each.
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path. On failure returns false and
  /// sets \p Error to an actionable message.
  bool writeChromeTrace(const std::string &Path, std::string &Error) const;

  /// Renders a plain-text summary: spans aggregated per name (count,
  /// total/mean/max wall time, sorted by total descending) and every
  /// counter, as two TablePrinter tables.
  std::string statsTable() const;

private:
  unsigned tidOfLocked(std::thread::id Id);

  mutable std::mutex M;
  std::chrono::steady_clock::time_point Epoch;
  std::vector<SpanRecord> Spans;
  std::map<std::string, uint64_t> Counters;
  std::map<std::thread::id, unsigned> Tids;
};

/// RAII timing span. With a null registry both ends are no-ops (no clock
/// read), which is the whole disabled fast path: instrumentation sites
/// always construct one of these and pay a single branch when tracing is
/// off.
class TimingSpan {
public:
  TimingSpan(ObsRegistry *Reg, std::string_view Name,
             std::string_view Detail = {})
      : Reg(Reg) {
    if (!Reg)
      return;
    this->Name.assign(Name);
    this->Detail.assign(Detail);
    Start = std::chrono::steady_clock::now();
  }
  ~TimingSpan() {
    if (Reg)
      Reg->recordSpan(std::move(Name), std::move(Detail), Start,
                      std::chrono::steady_clock::now());
  }

  TimingSpan(const TimingSpan &) = delete;
  TimingSpan &operator=(const TimingSpan &) = delete;

private:
  ObsRegistry *Reg = nullptr;
  std::string Name;
  std::string Detail;
  std::chrono::steady_clock::time_point Start;
};

/// The observability knob every pass option struct carries. Disabled by
/// default; pointing Registry at an ObsRegistry turns on span/counter
/// collection for that pass (the registry must outlive the pass).
struct ObservabilityOptions {
  ObsRegistry *Registry = nullptr;

  bool enabled() const { return Registry != nullptr; }
};

} // namespace ptran

#endif // PTRAN_OBS_OBSERVABILITY_H
