//===--- durable/Snapshot.cpp - Checksummed per-session snapshots ---------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "durable/Snapshot.h"

#include "profile/ProfileFile.h"
#include "support/FaultInjection.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::durable;

namespace {

constexpr uint32_t SnapshotMagic = 0x53535450; // "PTSS" little-endian.
constexpr uint32_t SnapshotVersion = 1;

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  putU64(Out, std::bit_cast<uint64_t>(V));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Same defensive reader shape as durable/Records.cpp: every get latches
/// Good=false when bytes run out, callers check ok() last.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  uint8_t getU8() {
    if (!require(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t getU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | Data[Pos + static_cast<size_t>(I)];
    Pos += 4;
    return V;
  }
  uint64_t getU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | Data[Pos + static_cast<size_t>(I)];
    Pos += 8;
    return V;
  }
  double getF64() { return std::bit_cast<double>(getU64()); }
  std::string getStr() {
    uint32_t N = getU32();
    if (!require(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  std::vector<uint8_t> getBytes(uint64_t N) {
    if (!require(N))
      return {};
    std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
    Pos += N;
    return B;
  }

  bool ok() const { return Good; }
  bool atEnd() const { return Pos == Len; }
  size_t pos() const { return Pos; }

private:
  bool require(uint64_t N) {
    if (!Good || N > Len - Pos) {
      Good = false;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Good = true;
};

std::string errnoString(const char *What, const std::string &Path) {
  return std::string(What) + " '" + Path + "': " + std::strerror(errno);
}

bool writeAllFd(int Fd, const uint8_t *Data, size_t Size,
                const std::string &Path, std::string &Error) {
  while (Size > 0) {
    size_t Want = FaultInjection::maybeShortWrite(Size);
    ssize_t N = ::write(Fd, Data, Want);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("write", Path);
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool fsyncFd(int Fd, const std::string &Path, std::string &Error) {
  int Rc;
  do {
    Rc = ::fsync(Fd);
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    Error = errnoString("fsync", Path);
    return false;
  }
  return true;
}

} // namespace

std::vector<uint8_t> durable::encodeSnapshot(const DurableSessionState &State,
                                             uint64_t Watermark) {
  std::vector<uint8_t> Out;
  putU32(Out, SnapshotMagic);
  putU32(Out, SnapshotVersion);
  putU64(Out, Watermark);
  putStr(Out, State.Name);
  putStr(Out, State.Source);
  putU32(Out, State.Mode);
  putU32(Out, State.LoopVariance);
  putU32(Out, State.OnBadProfile);
  putU64(Out, State.Runs);
  putU64(Out, State.ProfileImage.size());
  Out.insert(Out.end(), State.ProfileImage.begin(), State.ProfileImage.end());
  putU32(Out, static_cast<uint32_t>(State.External.size()));
  for (const FoldEntry &FE : State.External) {
    putStr(Out, FE.Function);
    putU32(Out, static_cast<uint32_t>(FE.Conds.size()));
    for (const CondTotal &C : FE.Conds) {
      putU32(Out, C.Node);
      putU8(Out, C.Label);
      putF64(Out, C.Total);
    }
  }
  putU32(Out, static_cast<uint32_t>(State.Saturated.size()));
  for (const std::string &Name : State.Saturated)
    putStr(Out, Name);
  putU32(Out, static_cast<uint32_t>(State.Quarantined.size()));
  for (const auto &Q : State.Quarantined) {
    putStr(Out, Q.first);
    putStr(Out, Q.second);
  }
  // Trailing CRC over every byte above; streamed so a future incremental
  // writer can checksum section by section without a second pass.
  uint32_t Crc = crc32End(crc32Update(crc32Begin(), Out.data(), Out.size()));
  putU32(Out, Crc);
  return Out;
}

bool durable::decodeSnapshot(const uint8_t *Data, size_t Len,
                             DurableSessionState &State, uint64_t &Watermark,
                             std::string &Error) {
  if (Len < 4 + 4 + 8 + 4) {
    Error = "snapshot is truncated (shorter than its fixed fields)";
    return false;
  }
  Reader Rd(Data, Len - 4);
  if (Rd.getU32() != SnapshotMagic) {
    Error = "bad snapshot magic (not a PTSS file)";
    return false;
  }
  if (uint32_t V = Rd.getU32(); V != SnapshotVersion) {
    Error = "unsupported snapshot version " + std::to_string(V);
    return false;
  }
  // CRC before content: a torn or bit-rotted snapshot must not be half
  // trusted.
  uint32_t Stored = 0;
  for (int I = 3; I >= 0; --I)
    Stored = (Stored << 8) | Data[Len - 4 + static_cast<size_t>(I)];
  if (crc32(Data, Len - 4) != Stored) {
    Error = "snapshot checksum mismatch (corrupt or truncated file)";
    return false;
  }

  State = DurableSessionState();
  Watermark = Rd.getU64();
  State.Name = Rd.getStr();
  State.Source = Rd.getStr();
  State.Mode = Rd.getU32();
  State.LoopVariance = Rd.getU32();
  State.OnBadProfile = Rd.getU32();
  State.Runs = Rd.getU64();
  State.ProfileImage = Rd.getBytes(Rd.getU64());
  uint32_t NumFuncs = Rd.getU32();
  for (uint32_t I = 0; Rd.ok() && I < NumFuncs; ++I) {
    FoldEntry FE;
    FE.Function = Rd.getStr();
    uint32_t NumConds = Rd.getU32();
    for (uint32_t J = 0; Rd.ok() && J < NumConds; ++J) {
      CondTotal C;
      C.Node = Rd.getU32();
      C.Label = Rd.getU8();
      C.Total = Rd.getF64();
      FE.Conds.push_back(C);
    }
    State.External.push_back(std::move(FE));
  }
  uint32_t NumSaturated = Rd.getU32();
  for (uint32_t I = 0; Rd.ok() && I < NumSaturated; ++I)
    State.Saturated.push_back(Rd.getStr());
  uint32_t NumQuarantined = Rd.getU32();
  for (uint32_t I = 0; Rd.ok() && I < NumQuarantined; ++I) {
    std::string Fn = Rd.getStr();
    std::string Reason = Rd.getStr();
    State.Quarantined.emplace_back(std::move(Fn), std::move(Reason));
  }
  if (!Rd.ok()) {
    Error = "snapshot payload is truncated";
    return false;
  }
  if (!Rd.atEnd()) {
    Error = "snapshot payload has trailing bytes";
    return false;
  }
  return true;
}

std::string durable::snapshotFileName(const std::string &SessionName) {
  // FNV-1a 64: stable across platforms, no separator ambiguity, and safe
  // for any session name a client can send.
  uint64_t H = 1469598103934665603ULL;
  for (unsigned char C : SessionName) {
    H ^= C;
    H *= 1099511628211ULL;
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "snap-%016llx.snap",
                static_cast<unsigned long long>(H));
  return Buf;
}

bool durable::writeSnapshotFile(const std::string &Dir,
                                const DurableSessionState &State,
                                uint64_t Watermark, std::string &Error) {
  std::vector<uint8_t> Image = encodeSnapshot(State, Watermark);
  std::string Final = Dir + "/" + snapshotFileName(State.Name);
  std::string Tmp = Final + ".tmp";

  int Fd = ::open(Tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0) {
    Error = errnoString("open", Tmp);
    return false;
  }
  if (!writeAllFd(Fd, Image.data(), Image.size(), Tmp, Error) ||
      !fsyncFd(Fd, Tmp, Error)) {
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return false;
  }
  ::close(Fd);
  if (FaultInjection::maybeCrashAt("durable.snapshot"))
    FaultInjection::dieAtCrashPoint();
  if (::rename(Tmp.c_str(), Final.c_str()) < 0) {
    Error = errnoString("rename", Tmp);
    ::unlink(Tmp.c_str());
    return false;
  }
  int D = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (D < 0) {
    Error = errnoString("open directory", Dir);
    return false;
  }
  bool Ok = fsyncFd(D, Dir, Error);
  ::close(D);
  return Ok;
}

bool durable::readSnapshotFile(const std::string &Path,
                               DurableSessionState &State,
                               uint64_t &Watermark, std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
  if (Fd < 0) {
    Error = errnoString("open", Path);
    return false;
  }
  std::vector<uint8_t> Bytes;
  off_t EndOff = ::lseek(Fd, 0, SEEK_END);
  if (EndOff < 0) {
    Error = errnoString("seek", Path);
    ::close(Fd);
    return false;
  }
  Bytes.resize(static_cast<size_t>(EndOff));
  size_t Got = 0;
  while (Got < Bytes.size()) {
    ssize_t N = ::pread(Fd, Bytes.data() + Got, Bytes.size() - Got,
                        static_cast<off_t>(Got));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("read", Path);
      ::close(Fd);
      return false;
    }
    if (N == 0) {
      Bytes.resize(Got);
      break;
    }
    Got += static_cast<size_t>(N);
  }
  ::close(Fd);
  return decodeSnapshot(Bytes.data(), Bytes.size(), State, Watermark, Error);
}
