//===--- durable/Journal.cpp - Append-only write-ahead journal ------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "durable/Journal.h"

#include "profile/ProfileFile.h"
#include "support/FaultInjection.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::durable;

namespace {

constexpr uint32_t JournalMagic = 0x4A575450; // "PTWJ" little-endian.
constexpr uint32_t JournalVersion = 1;
constexpr size_t HeaderBytes = 16;

std::string errnoString(const char *What, const std::string &Path) {
  return std::string(What) + " '" + Path + "': " + std::strerror(errno);
}

uint32_t readU32(const uint8_t *B) {
  uint32_t V = 0;
  for (int I = 3; I >= 0; --I)
    V = (V << 8) | B[I];
  return V;
}

uint64_t readU64(const uint8_t *B) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[I];
  return V;
}

void putU32(uint8_t *B, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    B[I] = static_cast<uint8_t>(V >> (8 * I));
}

void putU64(uint8_t *B, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    B[I] = static_cast<uint8_t>(V >> (8 * I));
}

/// Positional write loop: retries EINTR and continues short writes (both
/// genuine and io.short_write-injected ones).
bool writeAllAt(int Fd, uint64_t Offset, const uint8_t *Data, size_t Size,
                const std::string &Path, std::string &Error) {
  while (Size > 0) {
    size_t Want = FaultInjection::maybeShortWrite(Size);
    ssize_t N = ::pwrite(Fd, Data, Want, static_cast<off_t>(Offset));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("write", Path);
      return false;
    }
    Offset += static_cast<uint64_t>(N);
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

bool readWholeFile(int Fd, std::vector<uint8_t> &Out, const std::string &Path,
                   std::string &Error) {
  struct stat St;
  if (::fstat(Fd, &St) < 0) {
    Error = errnoString("stat", Path);
    return false;
  }
  Out.resize(static_cast<size_t>(St.st_size));
  size_t Got = 0;
  while (Got < Out.size()) {
    ssize_t N = ::pread(Fd, Out.data() + Got, Out.size() - Got,
                        static_cast<off_t>(Got));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("read", Path);
      return false;
    }
    if (N == 0) {
      // The file shrank under us; trust what we got.
      Out.resize(Got);
      break;
    }
    Got += static_cast<size_t>(N);
  }
  return true;
}

bool fsyncDirOf(const std::string &Path, std::string &Error) {
  size_t Slash = Path.rfind('/');
  std::string Dir =
      Slash == std::string::npos ? "." : Path.substr(0, Slash ? Slash : 1);
  int D = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (D < 0) {
    Error = errnoString("open directory", Dir);
    return false;
  }
  int Rc;
  do {
    Rc = ::fsync(D);
  } while (Rc < 0 && errno == EINTR);
  ::close(D);
  if (Rc < 0) {
    Error = errnoString("fsync directory", Dir);
    return false;
  }
  return true;
}

/// Moves \p Bytes aside to `<path>.quarantine` (overwriting a previous
/// quarantine — the newest torn tail is the interesting one). Best-effort:
/// quarantine is for post-mortems, recovery proceeds regardless.
void quarantineBytes(const std::string &JournalPath, const uint8_t *Bytes,
                     size_t Len) {
  std::string QPath = JournalPath + ".quarantine";
  int Fd = ::open(QPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return;
  std::string Ignored;
  writeAllAt(Fd, 0, Bytes, Len, QPath, Ignored);
  ::fsync(Fd);
  ::close(Fd);
}

} // namespace

DeltaJournal::~DeltaJournal() {
  if (Fd >= 0)
    ::close(Fd);
}

std::unique_ptr<DeltaJournal>
DeltaJournal::open(const std::string &Path, FsyncPolicy Fsync,
                   OpenReport &Report, std::vector<DurableRecord> *Records,
                   std::string &Error) {
  Report = OpenReport();
  int Fd = ::open(Path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (Fd < 0) {
    Error = errnoString("open", Path);
    return nullptr;
  }
  auto J = std::unique_ptr<DeltaJournal>(new DeltaJournal());
  J->Path = Path;
  J->Fsync = Fsync;
  J->Fd = Fd;

  std::vector<uint8_t> Bytes;
  if (!readWholeFile(Fd, Bytes, Path, Error))
    return nullptr;

  auto WriteFreshHeader = [&](uint64_t FirstLsn) -> bool {
    uint8_t H[HeaderBytes];
    putU32(H, JournalMagic);
    putU32(H + 4, JournalVersion);
    putU64(H + 8, FirstLsn);
    if (::ftruncate(Fd, 0) < 0) {
      Error = errnoString("truncate", Path);
      return false;
    }
    if (!writeAllAt(Fd, 0, H, sizeof(H), Path, Error))
      return false;
    ::fsync(Fd);
    return true;
  };

  if (Bytes.empty()) {
    if (!WriteFreshHeader(1))
      return nullptr;
    J->FirstLsn = J->NextLsnValue = 1;
    J->FileBytes = HeaderBytes;
    Report.FirstLsn = Report.NextLsn = 1;
    return J;
  }

  if (Bytes.size() < HeaderBytes || readU32(Bytes.data()) != JournalMagic ||
      readU32(Bytes.data() + 4) != JournalVersion) {
    // A torn or foreign header: nothing after it can be framed. Quarantine
    // the whole file and start a fresh log — rotation fsyncs replacement
    // headers before renaming them into place, so this can only be the
    // very first header write of an empty store (no records to lose).
    quarantineBytes(Path, Bytes.data(), Bytes.size());
    Report.TailQuarantined = true;
    Report.TailReason = "journal header is torn or garbled";
    Report.TailOffset = 0;
    Report.QuarantinedBytes = Bytes.size();
    if (!WriteFreshHeader(1))
      return nullptr;
    J->FirstLsn = J->NextLsnValue = 1;
    J->FileBytes = HeaderBytes;
    Report.FirstLsn = Report.NextLsn = 1;
    return J;
  }

  J->FirstLsn = readU64(Bytes.data() + 8);
  if (J->FirstLsn == 0)
    J->FirstLsn = 1;
  uint64_t Lsn = J->FirstLsn;
  size_t Off = HeaderBytes;
  std::string TornReason;
  while (Off < Bytes.size()) {
    size_t Left = Bytes.size() - Off;
    if (Left < 8) {
      TornReason = "incomplete frame header (" + std::to_string(Left) +
                   " of 8 bytes)";
      break;
    }
    uint32_t Len = readU32(Bytes.data() + Off);
    uint32_t Crc = readU32(Bytes.data() + Off + 4);
    if (Len > MaxRecordBytes) {
      TornReason = "frame length " + std::to_string(Len) + " is implausible";
      break;
    }
    if (Left - 8 < Len) {
      TornReason = "frame body truncated (" + std::to_string(Left - 8) +
                   " of " + std::to_string(Len) + " bytes)";
      break;
    }
    const uint8_t *Body = Bytes.data() + Off + 8;
    if (crc32(Body, Len) != Crc) {
      TornReason = "frame checksum mismatch";
      break;
    }
    DurableRecord R;
    std::string DecodeError;
    if (!decodeRecord(Body, Len, R, DecodeError)) {
      TornReason = "frame decodes to garbage: " + DecodeError;
      break;
    }
    R.Lsn = Lsn++;
    if (Records)
      Records->push_back(std::move(R));
    ++Report.RecordsScanned;
    Off += 8 + Len;
  }

  if (Off < Bytes.size()) {
    quarantineBytes(Path, Bytes.data() + Off, Bytes.size() - Off);
    if (::ftruncate(Fd, static_cast<off_t>(Off)) < 0) {
      Error = errnoString("truncate torn tail of", Path);
      return nullptr;
    }
    ::fsync(Fd);
    Report.TailQuarantined = true;
    Report.TailReason = TornReason;
    Report.TailOffset = Off;
    Report.QuarantinedBytes = Bytes.size() - Off;
  }

  J->NextLsnValue = Lsn;
  J->FileBytes = Off;
  Report.FirstLsn = J->FirstLsn;
  Report.NextLsn = Lsn;
  return J;
}

uint64_t DeltaJournal::append(const DurableRecord &R, std::string &Error) {
  std::vector<uint8_t> Body = encodeRecord(R);
  std::vector<uint8_t> Frame(8 + Body.size());
  putU32(Frame.data(), static_cast<uint32_t>(Body.size()));
  putU32(Frame.data() + 4, crc32(Body.data(), Body.size()));
  std::memcpy(Frame.data() + 8, Body.data(), Body.size());

  std::lock_guard<std::mutex> L(M);
  if (FaultInjection::maybeTornWrite()) {
    // Simulate kill -9 landing mid-append: persist only a prefix of the
    // frame (forced to disk so the torn tail is really there on restart),
    // then die without any cleanup.
    size_t Prefix = std::max<size_t>(1, Frame.size() / 2);
    std::string Ignored;
    writeAllAt(Fd, FileBytes, Frame.data(), Prefix, Path, Ignored);
    ::fsync(Fd);
    FaultInjection::dieAtCrashPoint();
  }
  if (!writeAllAt(Fd, FileBytes, Frame.data(), Frame.size(), Path, Error)) {
    // Clear any partial frame so the next append starts on a clean
    // boundary instead of burying garbage mid-file.
    ::ftruncate(Fd, static_cast<off_t>(FileBytes));
    return 0;
  }
  if (FaultInjection::maybeCrashAt("durable.append")) {
    ::fsync(Fd);
    FaultInjection::dieAtCrashPoint();
  }
  if (Fsync == FsyncPolicy::Always) {
    int Rc;
    do {
      Rc = ::fsync(Fd);
    } while (Rc < 0 && errno == EINTR);
    if (Rc < 0) {
      Error = errnoString("fsync", Path);
      ::ftruncate(Fd, static_cast<off_t>(FileBytes));
      return 0;
    }
  }
  FileBytes += Frame.size();
  return NextLsnValue++;
}

bool DeltaJournal::sync(std::string &Error) {
  std::lock_guard<std::mutex> L(M);
  if (Fsync == FsyncPolicy::Never)
    return true;
  int Rc;
  do {
    Rc = ::fsync(Fd);
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    Error = errnoString("fsync", Path);
    return false;
  }
  return true;
}

DeltaJournal::ReadResult
DeltaJournal::readFrames(ReadCursor &Cursor, uint64_t MaxBytes,
                         uint32_t MaxRecords, std::vector<uint8_t> &Raw,
                         uint32_t &Count, std::string &Error) {
  Count = 0;
  std::lock_guard<std::mutex> L(M);
  if (Cursor.NextLsn < FirstLsn)
    return ReadResult::Rotated;
  if (Cursor.NextLsn >= NextLsnValue)
    return ReadResult::AtEnd;

  auto ReadAt = [&](uint64_t Off, uint8_t *Buf, size_t Len) -> bool {
    size_t Got = 0;
    while (Got < Len) {
      ssize_t N = ::pread(Fd, Buf + Got, Len - Got,
                          static_cast<off_t>(Off + Got));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Error = errnoString("read", Path);
        return false;
      }
      if (N == 0) {
        Error = "journal '" + Path + "' ends before its committed bytes";
        return false;
      }
      Got += static_cast<size_t>(N);
    }
    return true;
  };

  // Revalidate (or rebuild) the cached byte offset of the cursor's frame.
  // A rotation replaces the file, so any offset computed against a
  // different firstLsn is meaningless.
  uint64_t Off = Cursor.Offset;
  if (Cursor.OffsetFirstLsn != FirstLsn || Off < HeaderBytes) {
    Off = HeaderBytes;
    for (uint64_t Lsn = FirstLsn; Lsn < Cursor.NextLsn; ++Lsn) {
      uint8_t FH[8];
      if (!ReadAt(Off, FH, sizeof(FH)))
        return ReadResult::IoError;
      uint32_t Len = readU32(FH);
      if (Len > MaxRecordBytes || Off + 8 + Len > FileBytes) {
        Error = "journal '" + Path + "' frame at offset " +
                std::to_string(Off) + " is garbled below the append point";
        return ReadResult::IoError;
      }
      Off += 8 + Len;
    }
  }

  std::vector<uint8_t> Body;
  while (Cursor.NextLsn + Count < NextLsnValue && Count < MaxRecords &&
         static_cast<uint64_t>(Raw.size()) < MaxBytes) {
    if (Off + 8 > FileBytes) {
      Error = "journal '" + Path + "' is shorter than its committed frames";
      return ReadResult::IoError;
    }
    uint8_t FH[8];
    if (!ReadAt(Off, FH, sizeof(FH)))
      return ReadResult::IoError;
    uint32_t Len = readU32(FH);
    uint32_t Crc = readU32(FH + 4);
    if (Len > MaxRecordBytes || Off + 8 + Len > FileBytes) {
      Error = "journal '" + Path + "' frame at offset " + std::to_string(Off) +
              " is garbled below the append point";
      return ReadResult::IoError;
    }
    Body.resize(Len);
    if (Len > 0 && !ReadAt(Off + 8, Body.data(), Len))
      return ReadResult::IoError;
    // Never ship a frame whose bytes no longer match their checksum: local
    // corruption must surface here, not on the standby.
    if (crc32(Body.data(), Len) != Crc) {
      Error = "journal '" + Path + "' frame at offset " + std::to_string(Off) +
              " fails its checksum";
      return ReadResult::IoError;
    }
    Raw.insert(Raw.end(), FH, FH + sizeof(FH));
    Raw.insert(Raw.end(), Body.begin(), Body.end());
    Off += 8 + Len;
    ++Count;
  }
  Cursor.NextLsn += Count;
  Cursor.Offset = Off;
  Cursor.OffsetFirstLsn = FirstLsn;
  return ReadResult::Ok;
}

bool DeltaJournal::appendRaw(const uint8_t *Frames, size_t Len,
                             uint64_t ExpectedFirstLsn,
                             uint32_t ExpectedCount,
                             std::vector<DurableRecord> *Records,
                             std::string &Error) {
  std::lock_guard<std::mutex> L(M);
  if (ExpectedFirstLsn != NextLsnValue) {
    Error = "replicated batch starts at LSN " +
            std::to_string(ExpectedFirstLsn) + " but this journal's next "
            "LSN is " + std::to_string(NextLsnValue);
    return false;
  }
  // Validate every frame BEFORE writing a byte: a garbled shipped batch
  // must not bury garbage mid-file.
  size_t FirstRecord = Records ? Records->size() : 0;
  uint64_t Lsn = ExpectedFirstLsn;
  uint32_t Seen = 0;
  size_t Off = 0;
  while (Off < Len) {
    if (Len - Off < 8) {
      Error = "replicated batch has a torn frame header (" +
              std::to_string(Len - Off) + " of 8 bytes)";
      if (Records)
        Records->resize(FirstRecord);
      return false;
    }
    uint32_t BodyLen = readU32(Frames + Off);
    uint32_t Crc = readU32(Frames + Off + 4);
    if (BodyLen > MaxRecordBytes || Len - Off - 8 < BodyLen) {
      Error = "replicated batch frame at offset " + std::to_string(Off) +
              " overruns the batch (" + std::to_string(BodyLen) + " bytes)";
      if (Records)
        Records->resize(FirstRecord);
      return false;
    }
    const uint8_t *Body = Frames + Off + 8;
    if (crc32(Body, BodyLen) != Crc) {
      Error = "replicated batch frame at offset " + std::to_string(Off) +
              " fails its checksum";
      if (Records)
        Records->resize(FirstRecord);
      return false;
    }
    DurableRecord R;
    std::string DecodeError;
    if (!decodeRecord(Body, BodyLen, R, DecodeError)) {
      Error = "replicated batch frame at offset " + std::to_string(Off) +
              " decodes to garbage: " + DecodeError;
      if (Records)
        Records->resize(FirstRecord);
      return false;
    }
    R.Lsn = Lsn++;
    if (Records)
      Records->push_back(std::move(R));
    Off += 8 + BodyLen;
    ++Seen;
  }
  if (Seen != ExpectedCount) {
    Error = "replicated batch carries " + std::to_string(Seen) +
            " frame(s) but announced " + std::to_string(ExpectedCount);
    if (Records)
      Records->resize(FirstRecord);
    return false;
  }
  if (Seen == 0)
    return true;

  if (FaultInjection::maybeTornWrite()) {
    size_t Prefix = std::max<size_t>(1, Len / 2);
    std::string Ignored;
    writeAllAt(Fd, FileBytes, Frames, Prefix, Path, Ignored);
    ::fsync(Fd);
    FaultInjection::dieAtCrashPoint();
  }
  if (!writeAllAt(Fd, FileBytes, Frames, Len, Path, Error)) {
    ::ftruncate(Fd, static_cast<off_t>(FileBytes));
    if (Records)
      Records->resize(FirstRecord);
    return false;
  }
  if (Fsync == FsyncPolicy::Always) {
    int Rc;
    do {
      Rc = ::fsync(Fd);
    } while (Rc < 0 && errno == EINTR);
    if (Rc < 0) {
      Error = errnoString("fsync", Path);
      ::ftruncate(Fd, static_cast<off_t>(FileBytes));
      if (Records)
        Records->resize(FirstRecord);
      return false;
    }
  }
  FileBytes += Len;
  NextLsnValue += Seen;
  return true;
}

bool DeltaJournal::rotate(std::string &Error) {
  std::lock_guard<std::mutex> L(M);
  return rotateToLocked(NextLsnValue, Error);
}

bool DeltaJournal::resetTo(uint64_t FirstLsn, std::string &Error) {
  std::lock_guard<std::mutex> L(M);
  return rotateToLocked(FirstLsn, Error);
}

bool DeltaJournal::rotateToLocked(uint64_t NewFirstLsn, std::string &Error) {
  std::string NewPath = Path + ".new";
  int NewFd =
      ::open(NewPath.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (NewFd < 0) {
    Error = errnoString("open", NewPath);
    return false;
  }
  uint8_t H[HeaderBytes];
  putU32(H, JournalMagic);
  putU32(H + 4, JournalVersion);
  putU64(H + 8, NewFirstLsn);
  if (!writeAllAt(NewFd, 0, H, sizeof(H), NewPath, Error)) {
    ::close(NewFd);
    ::unlink(NewPath.c_str());
    return false;
  }
  // The replacement must be durable BEFORE it replaces the journal: a
  // crash after the rename may otherwise leave a journal whose header was
  // never written, losing the LSN chain.
  int Rc;
  do {
    Rc = ::fsync(NewFd);
  } while (Rc < 0 && errno == EINTR);
  ::close(NewFd);
  if (Rc < 0) {
    Error = errnoString("fsync", NewPath);
    ::unlink(NewPath.c_str());
    return false;
  }
  if (FaultInjection::maybeCrashAt("durable.truncate"))
    FaultInjection::dieAtCrashPoint();
  if (::rename(NewPath.c_str(), Path.c_str()) < 0) {
    Error = errnoString("rename", NewPath);
    ::unlink(NewPath.c_str());
    return false;
  }
  if (!fsyncDirOf(Path, Error))
    return false;
  // Our fd still names the old inode; adopt the replacement.
  int ReFd = ::open(Path.c_str(), O_RDWR | O_CLOEXEC);
  if (ReFd < 0) {
    Error = errnoString("reopen", Path);
    return false;
  }
  ::close(Fd);
  Fd = ReFd;
  FirstLsn = NewFirstLsn;
  NextLsnValue = NewFirstLsn; // No-op for rotate(); the reset for resetTo().
  FileBytes = HeaderBytes;
  return true;
}

uint64_t DeltaJournal::nextLsn() const {
  std::lock_guard<std::mutex> L(M);
  return NextLsnValue;
}

uint64_t DeltaJournal::lastLsn() const {
  std::lock_guard<std::mutex> L(M);
  return NextLsnValue - 1;
}

uint64_t DeltaJournal::sizeBytes() const {
  std::lock_guard<std::mutex> L(M);
  return FileBytes;
}
