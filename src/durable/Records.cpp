//===--- durable/Records.cpp - Write-ahead journal record codecs ----------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "durable/Records.h"

#include <bit>
#include <cstring>

using namespace ptran;
using namespace ptran::durable;

namespace {

void putU8(std::vector<uint8_t> &Out, uint8_t V) { Out.push_back(V); }

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>(V >> (8 * I)));
}

void putF64(std::vector<uint8_t> &Out, double V) {
  putU64(Out, std::bit_cast<uint64_t>(V));
}

void putStr(std::vector<uint8_t> &Out, const std::string &S) {
  putU32(Out, static_cast<uint32_t>(S.size()));
  Out.insert(Out.end(), S.begin(), S.end());
}

/// Bounds-checked little-endian reader. Every get* returns a default and
/// latches Ok=false once the payload runs out; callers check ok() last.
class Reader {
public:
  Reader(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}

  uint8_t getU8() {
    if (!require(1))
      return 0;
    return Data[Pos++];
  }
  uint32_t getU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 3; I >= 0; --I)
      V = (V << 8) | Data[Pos + static_cast<size_t>(I)];
    Pos += 4;
    return V;
  }
  uint64_t getU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 7; I >= 0; --I)
      V = (V << 8) | Data[Pos + static_cast<size_t>(I)];
    Pos += 8;
    return V;
  }
  double getF64() { return std::bit_cast<double>(getU64()); }
  std::string getStr() {
    uint32_t N = getU32();
    if (!require(N))
      return {};
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }
  std::vector<uint8_t> getBytes(uint64_t N) {
    if (!require(N))
      return {};
    std::vector<uint8_t> B(Data + Pos, Data + Pos + N);
    Pos += N;
    return B;
  }

  bool ok() const { return Good; }
  bool atEnd() const { return Pos == Len; }

private:
  bool require(uint64_t N) {
    if (!Good || N > Len - Pos) {
      Good = false;
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Good = true;
};

} // namespace

std::vector<uint8_t> durable::encodeRecord(const DurableRecord &R) {
  std::vector<uint8_t> Out;
  putU8(Out, static_cast<uint8_t>(R.Type));
  putStr(Out, R.Session);
  switch (R.Type) {
  case RecordType::SessionCreate:
    putStr(Out, R.Source);
    putU32(Out, R.Mode);
    putU32(Out, R.LoopVariance);
    putU32(Out, R.OnBadProfile);
    break;
  case RecordType::SessionEvict:
    break;
  case RecordType::RunExec:
    putU32(Out, R.RunCount);
    break;
  case RecordType::EpochFold:
    putU32(Out, static_cast<uint32_t>(R.Folds.size()));
    for (const FoldEntry &FE : R.Folds) {
      putStr(Out, FE.Function);
      putU32(Out, static_cast<uint32_t>(FE.Conds.size()));
      for (const CondTotal &C : FE.Conds) {
        putU32(Out, C.Node);
        putU8(Out, C.Label);
        putF64(Out, C.Total);
      }
    }
    putU32(Out, static_cast<uint32_t>(R.Clamped.size()));
    for (const std::string &Name : R.Clamped)
      putStr(Out, Name);
    break;
  case RecordType::ProfileIngest:
    putU64(Out, R.Profile.size());
    Out.insert(Out.end(), R.Profile.begin(), R.Profile.end());
    break;
  case RecordType::SaturationMark:
    putStr(Out, R.FunctionName);
    break;
  }
  return Out;
}

bool durable::decodeRecord(const uint8_t *Data, size_t Len, DurableRecord &R,
                           std::string &Error) {
  Reader Rd(Data, Len);
  uint8_t Tag = Rd.getU8();
  if (!Rd.ok()) {
    Error = "record body is empty";
    return false;
  }
  if (Tag < static_cast<uint8_t>(RecordType::SessionCreate) ||
      Tag > static_cast<uint8_t>(RecordType::SaturationMark)) {
    Error = "unknown record type tag " + std::to_string(Tag);
    return false;
  }
  R = DurableRecord();
  R.Type = static_cast<RecordType>(Tag);
  R.Session = Rd.getStr();
  switch (R.Type) {
  case RecordType::SessionCreate:
    R.Source = Rd.getStr();
    R.Mode = Rd.getU32();
    R.LoopVariance = Rd.getU32();
    R.OnBadProfile = Rd.getU32();
    break;
  case RecordType::SessionEvict:
    break;
  case RecordType::RunExec:
    R.RunCount = Rd.getU32();
    break;
  case RecordType::EpochFold: {
    uint32_t NumFuncs = Rd.getU32();
    for (uint32_t I = 0; Rd.ok() && I < NumFuncs; ++I) {
      FoldEntry FE;
      FE.Function = Rd.getStr();
      uint32_t NumConds = Rd.getU32();
      for (uint32_t J = 0; Rd.ok() && J < NumConds; ++J) {
        CondTotal C;
        C.Node = Rd.getU32();
        C.Label = Rd.getU8();
        C.Total = Rd.getF64();
        FE.Conds.push_back(C);
      }
      R.Folds.push_back(std::move(FE));
    }
    uint32_t NumClamped = Rd.getU32();
    for (uint32_t I = 0; Rd.ok() && I < NumClamped; ++I)
      R.Clamped.push_back(Rd.getStr());
    break;
  }
  case RecordType::ProfileIngest:
    R.Profile = Rd.getBytes(Rd.getU64());
    break;
  case RecordType::SaturationMark:
    R.FunctionName = Rd.getStr();
    break;
  }
  if (!Rd.ok()) {
    Error = "record payload is truncated";
    return false;
  }
  if (!Rd.atEnd()) {
    Error = "record payload has trailing bytes";
    return false;
  }
  return true;
}
