//===--- durable/Journal.h - Append-only write-ahead journal ----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The append-only write-ahead half of the daemon's durable state: every
/// mutation is encoded (durable/Records.h) and appended as one CRC-framed
/// record BEFORE the response leaves the daemon, so a crash loses at most
/// the in-flight request. File layout (all integers little-endian):
///
///   magic "PTWJ" | u32 version | u64 firstLsn            (16-byte header)
///   | per record: u32 bodyLen | u32 crc32(body) | body
///
/// Record N of the file (0-based) has LSN firstLsn + N. LSNs are globally
/// monotonic across rotations: a checkpoint starts the replacement journal
/// at the old journal's next LSN, so "records with LSN <= a snapshot's
/// watermark are already inside that snapshot" stays true no matter where
/// a crash lands in the checkpoint protocol.
///
/// Torn-tail rule: kill -9 (or power loss) lands mid-append, leaving a
/// half frame at EOF. open() scans every frame, verifying lengths and
/// CRCs; the suffix from the first bad frame on is moved aside to
/// `<path>.quarantine` (for post-mortem inspection), the journal is
/// truncated back to its last valid frame, and appending continues — a
/// torn tail costs the torn record, never the store.
///
/// Fsync policy: Always fsyncs per append (every acknowledged mutation is
/// on disk), Batch leaves syncing to the background flusher's sync()
/// cadence, Never trusts the OS page cache. The daemon default is Batch.
///
/// Fault-injection sites (support/FaultInjection): io.short_write makes
/// one write(2) transfer half its buffer (the continuation loop must
/// finish the frame); io.torn_write persists only a prefix of a frame and
/// kills the process; crash.at=durable.append dies right after a frame is
/// fully written; crash.at=durable.truncate dies between writing the
/// rotation replacement and renaming it into place.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_DURABLE_JOURNAL_H
#define PTRAN_DURABLE_JOURNAL_H

#include "durable/Records.h"

#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ptran {
namespace durable {

enum class FsyncPolicy {
  Always, ///< fsync after every append.
  Batch,  ///< fsync on the flusher's sync() cadence.
  Never,  ///< never fsync (OS page cache only).
};

/// Backstop against a garbled length field promising gigabytes: no real
/// record (the largest is a ProfileIngest carrying one wire frame's PTPF
/// image) comes anywhere near this.
inline constexpr uint32_t MaxRecordBytes = 64u << 20;

class DeltaJournal {
public:
  /// What open() found on disk.
  struct OpenReport {
    uint64_t FirstLsn = 1;
    uint64_t NextLsn = 1;
    uint64_t RecordsScanned = 0;
    bool TailQuarantined = false;
    std::string TailReason;
    uint64_t TailOffset = 0;
    uint64_t QuarantinedBytes = 0;
  };

  /// Opens (creating if absent) the journal at \p Path, scans and
  /// validates every record, and quarantines+truncates a torn tail.
  /// Decoded records land in \p Records (null = discard; recovery wants
  /// them, tests sometimes only want the scan verdict). Null + \p Error
  /// on unrecoverable IO failure; corruption is never unrecoverable.
  static std::unique_ptr<DeltaJournal> open(const std::string &Path,
                                            FsyncPolicy Fsync,
                                            OpenReport &Report,
                                            std::vector<DurableRecord> *Records,
                                            std::string &Error);
  ~DeltaJournal();

  DeltaJournal(const DeltaJournal &) = delete;
  DeltaJournal &operator=(const DeltaJournal &) = delete;

  /// Appends \p R as one frame. Returns the record's LSN, or 0 with
  /// \p Error set on IO failure (the journal seeks back to the last good
  /// frame boundary, so a failed append never leaves a half frame for the
  /// NEXT append to bury).
  uint64_t append(const DurableRecord &R, std::string &Error);

  /// fsyncs the journal file (the Batch policy's flush point). No-op
  /// under Never.
  bool sync(std::string &Error);

  /// Replaces the journal with an empty one whose firstLsn is nextLsn(),
  /// atomically (write `<path>.new`, fsync, rename, fsync directory).
  /// The caller must already have snapshotted every session with a
  /// watermark covering lastLsn() — rotation forgets those records.
  bool rotate(std::string &Error);

  /// -- Replication (raw-frame shipping between daemons) ------------------

  /// A shipper's read position. NextLsn is the contract; Offset and
  /// OffsetFirstLsn are a cache of where that LSN's frame starts, revalidated
  /// against the journal's current incarnation (a rotation moves firstLsn,
  /// invalidating every cached offset).
  struct ReadCursor {
    uint64_t NextLsn = 1;
    uint64_t Offset = 0;
    uint64_t OffsetFirstLsn = 0;
  };

  enum class ReadResult {
    Ok,      ///< One or more frames landed in the output.
    AtEnd,   ///< Cursor is caught up; nothing to read yet.
    Rotated, ///< The cursor's LSN rotated away; the subscriber must
             ///< re-bootstrap from snapshots.
    IoError, ///< Read failure or on-disk corruption below the append point.
  };

  /// Reads whole raw frames (the exact on-disk `len|crc|body` bytes)
  /// starting at \p Cursor's LSN, appending them to \p Raw until
  /// \p MaxBytes / \p MaxRecords is reached or the journal end is hit.
  /// Every frame is CRC-verified before it ships. On Ok, \p Count frames
  /// were appended and the cursor advanced past them.
  ReadResult readFrames(ReadCursor &Cursor, uint64_t MaxBytes,
                        uint32_t MaxRecords, std::vector<uint8_t> &Raw,
                        uint32_t &Count, std::string &Error);

  /// Appends \p Len bytes of pre-framed records (a standby persisting the
  /// exact bytes the primary shipped). The frames are validated — framing,
  /// CRC, record decode, and that their LSNs are exactly
  /// [\p ExpectedFirstLsn, \p ExpectedFirstLsn + \p ExpectedCount) starting
  /// at this journal's nextLsn() — before any byte is written; decoded
  /// records (with LSNs assigned) land in \p Records when non-null. Under
  /// FsyncPolicy::Always the append is fsynced. False with \p Error set on
  /// a validation or IO failure (nothing half-written survives: the file is
  /// truncated back to the last good frame boundary).
  bool appendRaw(const uint8_t *Frames, size_t Len, uint64_t ExpectedFirstLsn,
                 uint32_t ExpectedCount,
                 std::vector<DurableRecord> *Records, std::string &Error);

  /// Bootstrap reset: like rotate(), but the replacement journal's
  /// firstLsn is \p FirstLsn (a standby adopting the primary's snapshot
  /// watermark W calls resetTo(W + 1); everything it held before is
  /// forgotten).
  bool resetTo(uint64_t FirstLsn, std::string &Error);

  /// LSN the next append will get.
  uint64_t nextLsn() const;
  /// LSN of the last appended/recovered record (nextLsn()-1; equals
  /// firstLsn-1 when the journal is empty).
  uint64_t lastLsn() const;
  /// Bytes currently in the journal file (header + frames).
  uint64_t sizeBytes() const;

  const std::string &path() const { return Path; }

private:
  DeltaJournal() = default;

  /// rotate()/resetTo() body; caller holds M.
  bool rotateToLocked(uint64_t NewFirstLsn, std::string &Error);

  std::string Path;
  FsyncPolicy Fsync = FsyncPolicy::Batch;

  mutable std::mutex M;
  int Fd = -1;
  uint64_t FirstLsn = 1;
  uint64_t NextLsnValue = 1;
  uint64_t FileBytes = 0;
};

} // namespace durable
} // namespace ptran

#endif // PTRAN_DURABLE_JOURNAL_H
