//===--- durable/StateStore.cpp - Crash-safe daemon state store -----------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "durable/StateStore.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::durable;

namespace {

std::string errnoString(const char *What, const std::string &Path) {
  return std::string(What) + " '" + Path + "': " + std::strerror(errno);
}

bool isSnapshotName(const std::string &Name) {
  return Name.size() > 5 && Name.compare(0, 5, "snap-") == 0 &&
         Name.compare(Name.size() - 5, 5, ".snap") == 0;
}

/// Lists the state directory once; recovery and pruning both want the
/// same view.
bool listDir(const std::string &Dir, std::vector<std::string> &Names,
             std::string &Error) {
  DIR *D = ::opendir(Dir.c_str());
  if (!D) {
    Error = errnoString("open directory", Dir);
    return false;
  }
  while (struct dirent *E = ::readdir(D))
    Names.push_back(E->d_name);
  ::closedir(D);
  std::sort(Names.begin(), Names.end());
  return true;
}

} // namespace

std::unique_ptr<StateStore> StateStore::open(const std::string &Dir,
                                             FsyncPolicy Fsync,
                                             Recovery &Recovered,
                                             std::string &Error) {
  Recovered = Recovery();
  if (::mkdir(Dir.c_str(), 0755) < 0 && errno != EEXIST) {
    Error = errnoString("create state directory", Dir);
    return nullptr;
  }

  auto Store = std::unique_ptr<StateStore>(new StateStore());
  Store->Dir = Dir;

  std::vector<std::string> Names;
  if (!listDir(Dir, Names, Error))
    return nullptr;

  for (const std::string &Name : Names) {
    std::string Path = Dir + "/" + Name;
    // A crash between writing `snap-X.snap.tmp` and renaming it leaves
    // the tmp file behind; its content was never committed, drop it.
    if (Name.size() > 4 &&
        Name.compare(Name.size() - 4, 4, ".tmp") == 0) {
      ::unlink(Path.c_str());
      continue;
    }
    if (!isSnapshotName(Name))
      continue;
    RecoveredSession RS;
    std::string SnapError;
    if (readSnapshotFile(Path, RS.State, RS.Watermark, SnapError)) {
      Recovered.Snapshots.push_back(std::move(RS));
      continue;
    }
    // A snapshot that fails verification must not block recovery of the
    // rest of the store: move it aside for post-mortems and report it.
    // Its session comes back from whatever journal records survive.
    std::string Aside = Path + ".corrupt";
    ::rename(Path.c_str(), Aside.c_str());
    Recovered.SnapshotDiagnostics.push_back(
        "snapshot " + Name + " failed verification (" + SnapError +
        "); moved aside to " + Aside);
  }

  Store->J = DeltaJournal::open(Dir + "/journal.ptwj", Fsync,
                                Recovered.JournalReport, &Recovered.Records,
                                Error);
  if (!Store->J)
    return nullptr;
  return Store;
}

bool StateStore::writeSnapshot(const DurableSessionState &State,
                               uint64_t Watermark, std::string &Error) {
  return writeSnapshotFile(Dir, State, Watermark, Error);
}

bool StateStore::pruneSnapshotsExcept(
    const std::set<std::string> &ResidentNames, std::string &Error) {
  std::set<std::string> Keep;
  for (const std::string &Session : ResidentNames)
    Keep.insert(snapshotFileName(Session));

  std::vector<std::string> Names;
  if (!listDir(Dir, Names, Error))
    return false;
  for (const std::string &Name : Names) {
    if (!isSnapshotName(Name) || Keep.count(Name))
      continue;
    std::string Path = Dir + "/" + Name;
    if (::unlink(Path.c_str()) < 0 && errno != ENOENT) {
      Error = errnoString("prune snapshot", Path);
      return false;
    }
  }
  return true;
}
