//===--- durable/StateStore.h - Crash-safe daemon state store ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns a `--state-dir` as a unit: one write-ahead journal
/// (`journal.ptwj`, see Journal.h) plus one snapshot file per session
/// (`snap-*.snap`, see Snapshot.h). The serve layer talks to this class;
/// it never touches the files directly.
///
/// Recovery (open): load every snapshot — a snapshot that fails its CRC is
/// moved aside to `<file>.corrupt` and reported, never fatal — then scan
/// the journal, quarantining a torn tail. The caller rebuilds each session
/// from its snapshot and replays the journal records whose LSN exceeds
/// that session's watermark; records at or below the watermark are already
/// folded into the snapshot (the crash-during-checkpoint double-apply
/// guard).
///
/// Checkpoint protocol (driven by the serve layer, under its structure
/// lock so no mutation can slip between capture and rotation):
///   1. flush every counter stream (their folds become journal records),
///   2. W = journal().lastLsn(),
///   3. capture + writeSnapshot(state, W) for every resident session
///      (tmp + rename; crash leaves the old snapshot),
///   4. pruneSnapshotsExcept(resident names) — evicted sessions must not
///      resurrect from stale snapshot files once the journal (which held
///      their SessionEvict record) rotates,
///   5. rotateJournal() — the replacement journal starts at the old
///      nextLsn, keeping LSNs globally monotonic.
/// Abort (skip rotation) if any snapshot write fails: an over-long journal
/// is safe, a rotated-away record that no snapshot covers is not.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_DURABLE_STATESTORE_H
#define PTRAN_DURABLE_STATESTORE_H

#include "durable/Journal.h"
#include "durable/Snapshot.h"

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace ptran {
namespace durable {

class StateStore {
public:
  struct RecoveredSession {
    DurableSessionState State;
    uint64_t Watermark = 0;
  };

  /// Everything recovery found on disk.
  struct Recovery {
    std::vector<RecoveredSession> Snapshots;
    /// All valid journal records in LSN order.
    std::vector<DurableRecord> Records;
    DeltaJournal::OpenReport JournalReport;
    /// One structured line per snapshot file that failed verification and
    /// was moved aside to `<file>.corrupt`.
    std::vector<std::string> SnapshotDiagnostics;
  };

  /// Opens (creating if absent) the state directory, loads all snapshots,
  /// scans the journal. Corruption is reported through \p Recovery, never
  /// through \p Error — only unrecoverable IO (unwritable directory, a
  /// journal that cannot be opened) returns null.
  static std::unique_ptr<StateStore> open(const std::string &Dir,
                                          FsyncPolicy Fsync,
                                          Recovery &Recovered,
                                          std::string &Error);

  DeltaJournal &journal() { return *J; }
  const std::string &dir() const { return Dir; }

  /// Checkpoint step 3: writes \p State's snapshot with \p Watermark.
  bool writeSnapshot(const DurableSessionState &State, uint64_t Watermark,
                     std::string &Error);

  /// Checkpoint step 4: unlinks every `snap-*.snap` whose session is not
  /// in \p ResidentNames. A failed unlink MUST abort the checkpoint before
  /// rotation: the stale snapshot's session has its SessionEvict record in
  /// the journal, and rotating that record away would let the snapshot
  /// resurrect an evicted session at the next recovery.
  bool pruneSnapshotsExcept(const std::set<std::string> &ResidentNames,
                            std::string &Error);

  /// Checkpoint step 5: rotates the journal (see DeltaJournal::rotate).
  bool rotateJournal(std::string &Error) { return J->rotate(Error); }

private:
  StateStore() = default;

  std::string Dir;
  std::unique_ptr<DeltaJournal> J;
};

} // namespace durable
} // namespace ptran

#endif // PTRAN_DURABLE_STATESTORE_H
