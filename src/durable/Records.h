//===--- durable/Records.h - Write-ahead journal record codecs --*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record vocabulary of the daemon's write-ahead delta journal: every
/// state mutation ptran-serve accepts is expressible as one of these
/// records, and replaying a prefix of them (on top of the snapshot that
/// prefix extends) reconstructs the daemon's sessions bit-for-bit.
///
/// A record travels as one journal frame (see Journal.h): the encoded
/// body's first byte is the RecordType tag, the rest is the little-endian
/// payload below. Strings are u32 length + bytes; doubles are the IEEE 754
/// bit pattern as a u64.
///
///   SessionCreate  str name | str source | u32 mode | u32 loopVariance
///                  | u32 onBadProfile
///   SessionEvict   str name
///   RunExec        str name | u32 count
///   EpochFold      str name | u32 numFuncs
///                  | per func: str function | u32 numConds
///                    | per cond: u32 node | u8 label | f64 total
///                  | u32 numClamped | str clamped names...
///   ProfileIngest  str name | u64 imageLen | PTPF bytes
///   SaturationMark str name | str function
///
/// Decoding is defensive end to end: every length is bounds-checked
/// against the remaining bytes before it is used, so a corrupted frame
/// that somehow passed its CRC still yields a clean error, never a wild
/// read. (The journal-prefix property test drives every truncation point
/// through here under UBSan.)
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_DURABLE_RECORDS_H
#define PTRAN_DURABLE_RECORDS_H

#include <cstdint>
#include <string>
#include <vector>

namespace ptran {
namespace durable {

enum class RecordType : uint8_t {
  SessionCreate = 1,
  SessionEvict = 2,
  RunExec = 3,
  EpochFold = 4,
  ProfileIngest = 5,
  SaturationMark = 6,
};

/// One accumulated condition total: ControlCondition (node id + CFG edge
/// label) flattened to plain integers so the durable layer needs no
/// analysis headers.
struct CondTotal {
  uint32_t Node = 0;
  uint8_t Label = 0;
  double Total = 0.0;
};

/// One function's slice of an EpochFold (or of a snapshot's external
/// totals): the condition totals one CounterDeltaStream epoch contributed.
struct FoldEntry {
  std::string Function;
  std::vector<CondTotal> Conds;
};

/// One journal record, decoded. Only the fields of its Type are
/// meaningful; the rest stay default-constructed.
struct DurableRecord {
  RecordType Type = RecordType::SessionCreate;
  /// Assigned by the journal: the record's position in the global log
  /// order (monotonic across rotations). Zero until appended/scanned.
  uint64_t Lsn = 0;

  /// Every record names its session.
  std::string Session;

  // SessionCreate: everything needed to rebuild the session object.
  std::string Source;
  uint32_t Mode = 0;
  uint32_t LoopVariance = 0;
  uint32_t OnBadProfile = 0;

  // RunExec: how many profiledRun() calls to replay.
  uint32_t RunCount = 0;

  // EpochFold: the drained epoch, in the stream's deterministic drain
  // order, plus the functions whose cell totals clamped at 2^53.
  std::vector<FoldEntry> Folds;
  std::vector<std::string> Clamped;

  // ProfileIngest: the raw PTPF image the client sent.
  std::vector<uint8_t> Profile;

  // SaturationMark: the function whose totals saturated.
  std::string FunctionName;
};

/// Encodes \p R as a journal frame body (type tag + payload).
std::vector<uint8_t> encodeRecord(const DurableRecord &R);

/// Decodes one frame body. False (with \p Error set) on an unknown type
/// tag, a truncated payload, or trailing garbage; \p R is unspecified on
/// failure.
bool decodeRecord(const uint8_t *Data, size_t Len, DurableRecord &R,
                  std::string &Error);

} // namespace durable
} // namespace ptran

#endif // PTRAN_DURABLE_RECORDS_H
