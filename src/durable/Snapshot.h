//===--- durable/Snapshot.h - Checksummed per-session snapshots -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compaction half of the daemon's durable state: a snapshot is one
/// session's full accumulated state plus the journal LSN watermark it
/// covers. A checkpoint writes one snapshot per resident session and then
/// rotates the journal; recovery loads the snapshots and replays only the
/// journal records with LSN above each session's watermark.
///
/// File layout (all integers little-endian, strings u32 length + bytes):
///
///   magic "PTSS" | u32 version | u64 watermark
///   | str name | str source | u32 mode | u32 loopVariance
///   | u32 onBadProfile | u64 runs
///   | u64 profileImageLen | PTPF bytes   (the session's ingested profile
///                                         state, re-serialized through the
///                                         checksummed PTPF format)
///   | u32 numExternalFuncs
///   | per func: str function | u32 numConds
///     | per cond: u32 node | u8 label | f64 total
///   | u32 numSaturated | str names...
///   | u32 numQuarantined | per entry: str function | str reason
///   | u32 crc32(everything above)
///
/// Determinism contract: the external-totals section MUST be emitted in
/// program order (the capture side iterates program().functions(), never a
/// pointer-keyed map), so the same session state always serializes to the
/// same bytes — the kill-and-recover acceptance test memcmps recovered
/// state against a reference rebuild.
///
/// Files are named `snap-<fnv64(sessionName) hex>.snap` (session names
/// arrive over the wire and are not safe as filenames) and written
/// tmp+rename so a crash mid-write leaves the previous snapshot intact.
/// crash.at=durable.snapshot (support/FaultInjection) dies between writing
/// the tmp file and renaming it into place.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_DURABLE_SNAPSHOT_H
#define PTRAN_DURABLE_SNAPSHOT_H

#include "durable/Records.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ptran {
namespace durable {

/// Everything needed to rebuild one EstimationSession bit-for-bit,
/// flattened to plain data (names and integers, no analysis pointers).
/// The session layer fills this in under its own lock; the durable layer
/// only moves the bytes.
struct DurableSessionState {
  std::string Name;
  std::string Source;
  uint32_t Mode = 0;
  uint32_t LoopVariance = 0;
  uint32_t OnBadProfile = 0;
  uint64_t Runs = 0;
  /// Serialized PTPF image of the session's ingested profile state; empty
  /// when no profile has been ingested yet.
  std::vector<uint8_t> ProfileImage;
  /// Streaming-counter totals accumulated outside the profile store, in
  /// program order (see the determinism contract above).
  std::vector<FoldEntry> External;
  /// Functions whose external totals saturated at the 2^53 cap (their
  /// estimates are lower bounds); restored so the diagnostic survives.
  std::vector<std::string> Saturated;
  /// Quarantined functions as (name, first-wins reason) pairs.
  std::vector<std::pair<std::string, std::string>> Quarantined;
};

/// Encodes \p State + \p Watermark as a complete snapshot file image
/// (header through trailing CRC).
std::vector<uint8_t> encodeSnapshot(const DurableSessionState &State,
                                    uint64_t Watermark);

/// Decodes and verifies a snapshot image. False with \p Error set on bad
/// magic/version, CRC mismatch, truncation, or trailing garbage.
bool decodeSnapshot(const uint8_t *Data, size_t Len,
                    DurableSessionState &State, uint64_t &Watermark,
                    std::string &Error);

/// `snap-<fnv64(name) hex>.snap` — the stable, filesystem-safe file name
/// for \p SessionName's snapshot.
std::string snapshotFileName(const std::string &SessionName);

/// Writes \p State's snapshot into \p Dir (tmp + fsync + rename + fsync
/// directory). False with \p Error on IO failure; a crash at any point
/// leaves either the old snapshot or the new one, never a torn file.
bool writeSnapshotFile(const std::string &Dir,
                       const DurableSessionState &State, uint64_t Watermark,
                       std::string &Error);

/// Reads and verifies one snapshot file. False with \p Error set; the
/// caller decides whether to quarantine the file.
bool readSnapshotFile(const std::string &Path, DurableSessionState &State,
                      uint64_t &Watermark, std::string &Error);

} // namespace durable
} // namespace ptran

#endif // PTRAN_DURABLE_SNAPSHOT_H
