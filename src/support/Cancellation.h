//===--- support/Cancellation.h - Cooperative cancellation ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation and resource budgets for the estimation
/// pipeline. A CancelToken combines four independent trip conditions —
/// caller cancellation, a wall-clock deadline, a checkpoint-step budget and
/// a memory budget — behind one cheap poll: passes call checkpoint() at
/// their natural unit of work (per analyzed function, per SCC-wave
/// component, per fixpoint iteration) and stop as soon as it returns true.
///
/// Expiry is *monotone*: once any condition trips, expired() stays true for
/// the lifetime of the token (until reset()). Combined with the wave order
/// of the interprocedural pass — callers are evaluated strictly after their
/// callees — monotone expiry is what guarantees that every function that
/// did complete saw only final callee summaries, so completed results are
/// bit-identical to an unbounded run.
///
/// The disabled path is free-ish by construction: passes hold a
/// `CancelToken *` that is null when no bound was requested, so the cost of
/// the feature is one pointer test per checkpoint site. With a token
/// installed, checkpoint() is a handful of relaxed atomic ops; the clock is
/// read only when a deadline is armed.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_CANCELLATION_H
#define PTRAN_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

namespace ptran {

/// Why a token expired. None means "still live".
enum class CancelReason : uint8_t {
  None = 0,
  Cancelled,     ///< requestCancel() was called.
  Deadline,      ///< The wall-clock deadline passed.
  StepBudget,    ///< The checkpoint-step budget ran out.
  MemoryBudget,  ///< The charged-memory budget ran out.
};

/// What an estimation entry point does when its token expires mid-run.
/// Mirrors BadProfilePolicy: Fail is the atomic library default, Degrade
/// trades accuracy for an answer (unfinished functions fall back to static
/// frequencies and are tagged on the result).
enum class DeadlinePolicy : uint8_t {
  Fail = 0, ///< Abort the query atomically with a Timeout diagnostic.
  Degrade,  ///< Finish unfinished functions from static frequencies.
};

/// Shared cancellation/budget state polled by the pipeline. Configuration
/// (deadline, budgets) is not thread-safe and must happen before the token
/// is shared; requestCancel() and every query are safe from any thread.
class CancelToken {
public:
  CancelToken() = default;

  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  //===--- configuration (single-threaded, before sharing) ----------------===//

  /// Arms a wall-clock deadline \p Budget from now.
  void setDeadlineIn(std::chrono::nanoseconds Budget) {
    setDeadlineAt(std::chrono::steady_clock::now() + Budget);
  }

  /// Arms a wall-clock deadline at an absolute steady-clock instant.
  void setDeadlineAt(std::chrono::steady_clock::time_point At) {
    DeadlineNs.store(At.time_since_epoch().count(),
                     std::memory_order_relaxed);
    HasDeadline.store(true, std::memory_order_relaxed);
  }

  /// Arms a budget of \p Steps checkpoint steps (each checkpoint(N) call
  /// consumes N, default 1). Deterministic, unlike wall-clock deadlines —
  /// the regression tests trip tokens this way.
  void setStepBudget(uint64_t Budget) {
    StepBudget.store(Budget, std::memory_order_relaxed);
  }

  /// Arms a budget of \p Bytes charged via chargeMemory(). The charge is a
  /// cooperative accounting of the passes' dominant allocations (estimate
  /// tables, profile images), not an allocator hook.
  void setMemoryBudget(uint64_t Bytes) {
    MemoryBudget.store(Bytes, std::memory_order_relaxed);
  }

  /// Clears trip state, counters and budgets; the token is live again.
  void reset();

  //===--- thread-safe operations -----------------------------------------===//

  /// Trips the token with CancelReason::Cancelled. Idempotent; loses
  /// against an earlier trip (first reason wins).
  void requestCancel() { trip(CancelReason::Cancelled); }

  /// True once any condition has tripped. One relaxed load; never re-checks
  /// the clock or budgets, so it is safe on the hottest paths.
  bool expired() const {
    return Reason.load(std::memory_order_relaxed) != CancelReason::None;
  }

  /// The first condition that tripped, or None while live.
  CancelReason reason() const {
    return Reason.load(std::memory_order_relaxed);
  }

  /// The poll: consumes \p Steps from the step budget, re-checks the
  /// deadline when one is armed, and returns expired(). Passes call this
  /// once per unit of work and unwind when it returns true.
  bool checkpoint(uint64_t Steps = 1);

  /// Time left until the armed wall-clock deadline (negative once past
  /// due); nullopt when no deadline is armed. Blocking waits (e.g. the
  /// retry backoff sleep) clamp themselves to this so a sleep never
  /// outlives the deadline.
  std::optional<std::chrono::nanoseconds> remainingDeadline() const {
    if (!HasDeadline.load(std::memory_order_relaxed))
      return std::nullopt;
    int64_t NowNs =
        std::chrono::steady_clock::now().time_since_epoch().count();
    return std::chrono::nanoseconds(
        DeadlineNs.load(std::memory_order_relaxed) - NowNs);
  }

  /// Charges \p Bytes against the memory budget (if armed) and trips the
  /// token when the budget is exceeded. Returns expired().
  bool chargeMemory(uint64_t Bytes);

  //===--- introspection --------------------------------------------------===//

  /// Total checkpoint() calls since construction/reset. Feeds the
  /// `resilience.cancel_polls` obs counter.
  uint64_t polls() const { return Polls.load(std::memory_order_relaxed); }

  /// Checkpoint steps consumed and memory bytes charged so far.
  uint64_t stepsUsed() const {
    return StepsUsed.load(std::memory_order_relaxed);
  }
  uint64_t memoryCharged() const {
    return MemoryUsed.load(std::memory_order_relaxed);
  }

  /// Short lowercase name for \p R ("deadline", "step-budget", ...).
  static const char *reasonName(CancelReason R);

  /// Human-readable description of the trip condition, e.g.
  /// "wall-clock deadline exceeded". "live" while not expired.
  std::string describe() const;

private:
  void trip(CancelReason R);

  static constexpr uint64_t NoBudget = ~uint64_t{0};

  std::atomic<CancelReason> Reason{CancelReason::None};
  std::atomic<bool> HasDeadline{false};
  std::atomic<int64_t> DeadlineNs{0};
  std::atomic<uint64_t> StepBudget{NoBudget};
  std::atomic<uint64_t> MemoryBudget{NoBudget};
  std::atomic<uint64_t> StepsUsed{0};
  std::atomic<uint64_t> MemoryUsed{0};
  std::atomic<uint64_t> Polls{0};
};

/// Builds the structured diagnostic for a pass cut short by \p Token:
/// "timeout: <what> cut short: <condition>" for deadline/budget trips and
/// "cancelled: <what> cut short: ..." for caller cancellation. Every
/// resilience diagnostic in the pipeline goes through this helper so the
/// prefix is greppable and stable for tests.
std::string cancelMessage(const CancelToken &Token, const std::string &What);

} // namespace ptran

#endif // PTRAN_SUPPORT_CANCELLATION_H
