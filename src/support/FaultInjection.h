//===--- support/FaultInjection.h - Deterministic fault harness -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seeded fault-injection harness. Production code keeps
/// permanent, near-zero-cost hooks at its failure-prone seams — profile
/// file IO, profile byte images, counter recovery, thread-pool tasks — and
/// tests (or an operator, via the `PTRAN_FAULT` environment variable) arm
/// them to prove that every error path degrades gracefully instead of
/// crashing, hanging or silently corrupting results.
///
/// The spec grammar is a comma-separated list of `key=value` pairs:
///
///   seed=S            reseed the deterministic PRNG (default 1)
///   profile.flip=V    flip one byte of a serialized profile image
///   counter.corrupt=V overwrite one recovered counter with NaN
///   io.fail=V         fail a profile file open/read/write
///   pool.throw=V      throw FaultInjected inside a ThreadPool task
///   io.torn_write=V   durable-store write: persist only a prefix of the
///                     buffer, then kill the process (what power loss or
///                     kill -9 mid-write leaves on disk)
///   io.short_write=V  durable-store write: one write(2) call transfers
///                     only part of its buffer and returns (the caller's
///                     continuation loop must finish the record)
///   crash.at=P[:V]    kill the process (_exit, no cleanup — a stand-in
///                     for kill -9) when execution reaches the named
///                     crash point P, e.g. durable.append,
///                     durable.snapshot or durable.truncate; the optional
///                     :V picks which opportunity fires (default 1)
///
/// where V is an integer N >= 1 (fire exactly once, on the Nth
/// opportunity), a range A-B with 1 <= A <= B (fire on every opportunity
/// from the Ath through the Bth inclusive — N consecutive transient
/// failures, exactly what the retry-policy tests need), or a real in
/// [0, 1] (fire independently with that probability, from the seeded
/// PRNG). A value with a '.' or an exponent — 0.1, 1e-1, 2.5E-2 — is a
/// probability; a bare 0 is probability zero and disables the site, which
/// lets a later entry in the same spec switch an earlier one off. Example:
///
///   PTRAN_FAULT=seed=7,counter.corrupt=2,io.fail=1-3
///
/// Disarmed (the default), every call site pays one relaxed atomic load.
/// All faults are injected at the process level through the singleton, so
/// arming it in one test affects the whole process until disarm() — tests
/// use ScopedFaultInjection to guarantee cleanup.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_FAULTINJECTION_H
#define PTRAN_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace ptran {

/// The exception the PoolTask site throws inside a worker task. It rides
/// the pool's exception-propagating futures back to the submitting thread,
/// exactly like a genuine task failure would.
struct FaultInjected : std::runtime_error {
  explicit FaultInjected(const std::string &What)
      : std::runtime_error(What) {}
};

/// Process-wide fault-injection state. See the file comment for the spec
/// grammar; call sites use the static maybe*() wrappers.
class FaultInjection {
public:
  enum class Site : unsigned {
    ProfileByteFlip = 0, ///< Flip one byte of a profile image.
    CounterCorrupt,      ///< Poison one recovered counter with NaN.
    FileIo,              ///< Fail a profile file IO operation.
    PoolTask,            ///< Throw inside a ThreadPool task.
    TornWrite,           ///< Persist a prefix of a durable write, then die.
    ShortWrite,          ///< One write(2) transfers only part of its buffer.
    Crash,               ///< Die at a named crash point (crash.at=POINT).
    NumSites
  };

  /// The singleton. The first call reads `PTRAN_FAULT` from the
  /// environment; a malformed spec is reported to stderr and ignored.
  static FaultInjection &instance();

  /// Parses and installs \p Spec. Returns false (and sets \p Error, with
  /// the state left disarmed) on a malformed spec.
  bool configure(const std::string &Spec, std::string &Error);

  /// Disables every site and resets all counters.
  void disarm();

  /// True when any site is armed; the one-load fast path of every hook.
  static bool armed() { return Armed.load(std::memory_order_acquire); }

  /// Counts an opportunity at \p S and decides whether it faults.
  bool shouldFire(Site S);

  /// Faults fired / opportunities seen at \p S since the last configure.
  uint64_t firedCount(Site S) const;
  uint64_t opportunityCount(Site S) const;

  //===--- call-site wrappers (no-ops while disarmed) ---------------------===//

  /// PoolTask: throws FaultInjected from inside the task body.
  static void maybeThrowPoolTask() {
    if (armed())
      instance().throwPoolTask();
  }

  /// CounterCorrupt: overwrites one deterministic entry of \p Counters
  /// with quiet NaN.
  static void maybeCorruptCounters(std::vector<double> &Counters) {
    if (armed())
      instance().corruptCounters(Counters);
  }

  /// ProfileByteFlip: XORs one deterministic bit into \p Bytes.
  static void maybeFlipByte(std::vector<uint8_t> &Bytes) {
    if (armed())
      instance().flipByte(Bytes);
  }

  /// FileIo: true when the caller must simulate an IO failure.
  static bool maybeFailIo() {
    return armed() && instance().shouldFire(Site::FileIo);
  }

  /// TornWrite: true when the caller must write only a prefix of its
  /// buffer and then terminate the process (see dieAtCrashPoint) — the
  /// deterministic stand-in for kill -9 landing mid-append.
  static bool maybeTornWrite() {
    return armed() && instance().shouldFire(Site::TornWrite);
  }

  /// ShortWrite: the byte count one write(2) call may transfer. Returns
  /// \p Want normally; when the site fires, a strictly smaller nonzero
  /// count, so the caller's short-write continuation loop is exercised.
  static size_t maybeShortWrite(size_t Want) {
    if (Want > 1 && armed() && instance().shouldFire(Site::ShortWrite))
      return Want / 2;
    return Want;
  }

  /// Crash: true when execution reached the crash point named \p Point
  /// and a matching `crash.at=` spec fires. The caller is expected to
  /// finish whatever torn state it is simulating and call
  /// dieAtCrashPoint() (kept separate so the caller can leave a
  /// deliberately half-written record behind first).
  static bool maybeCrashAt(const char *Point) {
    return armed() && instance().crashPointFires(Point);
  }

  /// Terminates the process without running any cleanup — atexit
  /// handlers, flushes and destructors are all skipped, exactly as
  /// kill -9 would skip them. Exit status 42 lets a harness tell an
  /// injected crash from a genuine one.
  [[noreturn]] static void dieAtCrashPoint();

private:
  FaultInjection();

  void throwPoolTask();
  void corruptCounters(std::vector<double> &Counters);
  void flipByte(std::vector<uint8_t> &Bytes);
  bool crashPointFires(const char *Point);

  /// One site's arming: fire on opportunities [Nth, NthHi] (Nth > 0;
  /// NthHi == Nth for the single-shot form) or independently with
  /// probability Prob (Nth == 0).
  struct SiteState {
    bool Enabled = false;
    uint64_t Nth = 0;
    uint64_t NthHi = 0;
    double Prob = 0.0;
    uint64_t Opportunities = 0;
    uint64_t Fired = 0;
  };

  /// splitmix64 step over State; deterministic given the configured seed.
  uint64_t nextRandom();

  static std::atomic<bool> Armed;

  mutable std::mutex M;
  SiteState Sites[static_cast<unsigned>(Site::NumSites)];
  /// Crash-point name the Crash site is armed for (crash.at=POINT[:N]).
  std::string CrashPoint;
  uint64_t State = 1;
};

/// Configures the harness for one scope and guarantees disarm on exit.
/// Construction failure (bad spec) leaves the harness disarmed.
class ScopedFaultInjection {
public:
  explicit ScopedFaultInjection(const std::string &Spec) {
    Ok = FaultInjection::instance().configure(Spec, Error);
  }
  ~ScopedFaultInjection() { FaultInjection::instance().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection &) = delete;
  ScopedFaultInjection &operator=(const ScopedFaultInjection &) = delete;

  bool ok() const { return Ok; }
  const std::string &error() const { return Error; }

private:
  bool Ok = false;
  std::string Error;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_FAULTINJECTION_H
