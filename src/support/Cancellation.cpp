//===--- support/Cancellation.cpp - Cooperative cancellation --------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Cancellation.h"

namespace ptran {

void CancelToken::reset() {
  Reason.store(CancelReason::None, std::memory_order_relaxed);
  HasDeadline.store(false, std::memory_order_relaxed);
  DeadlineNs.store(0, std::memory_order_relaxed);
  StepBudget.store(NoBudget, std::memory_order_relaxed);
  MemoryBudget.store(NoBudget, std::memory_order_relaxed);
  StepsUsed.store(0, std::memory_order_relaxed);
  MemoryUsed.store(0, std::memory_order_relaxed);
  Polls.store(0, std::memory_order_relaxed);
}

void CancelToken::trip(CancelReason R) {
  CancelReason Expected = CancelReason::None;
  Reason.compare_exchange_strong(Expected, R, std::memory_order_relaxed);
}

bool CancelToken::checkpoint(uint64_t Steps) {
  Polls.fetch_add(1, std::memory_order_relaxed);
  if (expired())
    return true;
  uint64_t Used =
      StepsUsed.fetch_add(Steps, std::memory_order_relaxed) + Steps;
  if (Used > StepBudget.load(std::memory_order_relaxed))
    trip(CancelReason::StepBudget);
  else if (HasDeadline.load(std::memory_order_relaxed)) {
    int64_t NowNs =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (NowNs >= DeadlineNs.load(std::memory_order_relaxed))
      trip(CancelReason::Deadline);
  }
  return expired();
}

bool CancelToken::chargeMemory(uint64_t Bytes) {
  uint64_t Used =
      MemoryUsed.fetch_add(Bytes, std::memory_order_relaxed) + Bytes;
  if (Used > MemoryBudget.load(std::memory_order_relaxed))
    trip(CancelReason::MemoryBudget);
  return expired();
}

const char *CancelToken::reasonName(CancelReason R) {
  switch (R) {
  case CancelReason::None:
    return "none";
  case CancelReason::Cancelled:
    return "cancelled";
  case CancelReason::Deadline:
    return "deadline";
  case CancelReason::StepBudget:
    return "step-budget";
  case CancelReason::MemoryBudget:
    return "memory-budget";
  }
  return "unknown";
}

std::string CancelToken::describe() const {
  switch (reason()) {
  case CancelReason::None:
    return "live";
  case CancelReason::Cancelled:
    return "cancelled by caller";
  case CancelReason::Deadline:
    return "wall-clock deadline exceeded";
  case CancelReason::StepBudget:
    return "step budget exhausted after " + std::to_string(stepsUsed()) +
           " steps";
  case CancelReason::MemoryBudget:
    return "memory budget exhausted after " +
           std::to_string(memoryCharged()) + " charged bytes";
  }
  return "unknown";
}

std::string cancelMessage(const CancelToken &Token, const std::string &What) {
  const char *Prefix =
      Token.reason() == CancelReason::Cancelled ? "cancelled" : "timeout";
  return std::string(Prefix) + ": " + What + " cut short: " +
         Token.describe();
}

} // namespace ptran
