//===--- support/Rng.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic PRNG (xoshiro256**) with sampling helpers. Used by
/// the random program generator, the Monte-Carlo validation tests and the
/// chunk-scheduling simulator. Deterministic across platforms so that tests
/// and benchmark workloads are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_RNG_H
#define PTRAN_SUPPORT_RNG_H

#include <cstdint>

namespace ptran {

/// Deterministic xoshiro256** generator seeded via splitmix64.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) { reseed(Seed); }

  /// Re-seeds the generator; identical seeds yield identical streams.
  void reseed(uint64_t Seed);

  /// \returns the next raw 64-bit value.
  uint64_t next();

  /// \returns a uniform integer in [Lo, Hi], inclusive. Requires Lo <= Hi.
  int64_t uniformInt(int64_t Lo, int64_t Hi);

  /// \returns a uniform double in [0, 1).
  double uniformReal();

  /// \returns a uniform double in [Lo, Hi).
  double uniformReal(double Lo, double Hi);

  /// \returns true with probability \p P (clamped to [0, 1]).
  bool bernoulli(double P);

  /// \returns a sample from Geometric(P) counting the number of failures
  /// before the first success, i.e. values in {0, 1, 2, ...} with mean
  /// (1-P)/P. Requires 0 < P <= 1.
  uint64_t geometric(double P);

  /// \returns a sample from a normal distribution with the given mean and
  /// standard deviation (Box-Muller).
  double normal(double Mean, double StdDev);

private:
  uint64_t State[4];
};

} // namespace ptran

#endif // PTRAN_SUPPORT_RNG_H
