//===--- support/Casting.h - LLVM-style isa/cast/dyn_cast ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal hand-rolled RTTI scheme in the LLVM style. Classes opt in by
/// providing `static bool classof(const Base *)`; clients then use
/// isa<Derived>(p), cast<Derived>(p) and dyn_cast<Derived>(p). The library
/// is built without relying on C++ RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_CASTING_H
#define PTRAN_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace ptran {

/// True if \p Val points to an instance of \p To (per To::classof).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> on a null pointer");
  return To::classof(Val);
}

/// Checked downcast; asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

/// Checked downcast, const overload.
template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

/// Checking downcast, const overload.
template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

} // namespace ptran

#endif // PTRAN_SUPPORT_CASTING_H
