//===--- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink used by the mini-language front
/// end and by structural verifiers. The library reports recoverable errors
/// (malformed input programs, irreducible graphs, ...) through a
/// DiagnosticEngine rather than exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_DIAGNOSTICS_H
#define PTRAN_SUPPORT_DIAGNOSTICS_H

#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace ptran {

/// A 1-based line/column position in a source buffer. Line 0 means "no
/// location" (diagnostics about whole programs or graphs).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &Other) const = default;
};

/// Severity of a diagnostic. Errors make the producing pass fail; warnings
/// and notes are informational.
enum class DiagSeverity { Error, Warning, Note };

/// One diagnostic message with an optional source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by a pass. Cheap to construct; passes take
/// one by reference and append to it.
class DiagnosticEngine {
public:
  /// Appends an error diagnostic at \p Loc.
  void error(SourceLoc Loc, std::string Message);
  /// Appends an error diagnostic with no source location.
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  /// Appends a warning diagnostic at \p Loc.
  void warning(SourceLoc Loc, std::string Message);
  /// Appends a warning diagnostic with no source location.
  void warning(std::string Message) {
    warning(SourceLoc(), std::move(Message));
  }
  /// Appends a note diagnostic at \p Loc.
  void note(SourceLoc Loc, std::string Message);

  /// \returns true if any error has been reported.
  bool hasErrors() const { return NumErrors != 0; }
  /// \returns the number of error-severity diagnostics.
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string str() const;

  /// Splices every diagnostic of \p Other onto the end of this engine.
  /// Parallel drivers give each task its own engine and merge the locals
  /// back in task-submission order, so the combined stream is identical to
  /// what a serial run would have produced.
  void append(DiagnosticEngine Other);

  /// Drops all collected diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

/// A mutex-guarded diagnostic sink for concurrent producers whose emission
/// order is scheduling-dependent (e.g. the SCC-wave interprocedural pass).
/// drainTo() hands the collected messages to a plain DiagnosticEngine in
/// sorted order, so the final output is deterministic regardless of which
/// worker reported first.
class ThreadSafeDiagnostics {
public:
  void error(std::string Message);
  void warning(std::string Message);
  void note(std::string Message);

  /// Emits a warning only the first time \p Message is seen (across all
  /// threads). Used for once-per-callee style reporting.
  void warningOnce(std::string Message);

  bool hasErrors() const;
  /// True if any diagnostic (of any severity) has been collected.
  bool empty() const;

  /// Moves everything collected so far into \p Out, sorted by severity
  /// then message text.
  void drainTo(DiagnosticEngine &Out);

private:
  void add(DiagSeverity Severity, std::string Message);

  mutable std::mutex M;
  std::vector<Diagnostic> Pending;
  std::set<std::string> Seen;
  unsigned NumErrors = 0;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_DIAGNOSTICS_H
