//===--- support/Diagnostics.h - Source locations and diagnostics -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink used by the mini-language front
/// end and by structural verifiers. The library reports recoverable errors
/// (malformed input programs, irreducible graphs, ...) through a
/// DiagnosticEngine rather than exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_DIAGNOSTICS_H
#define PTRAN_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace ptran {

/// A 1-based line/column position in a source buffer. Line 0 means "no
/// location" (diagnostics about whole programs or graphs).
struct SourceLoc {
  unsigned Line = 0;
  unsigned Column = 0;

  bool isValid() const { return Line != 0; }
  bool operator==(const SourceLoc &Other) const = default;
};

/// Severity of a diagnostic. Errors make the producing pass fail; warnings
/// and notes are informational.
enum class DiagSeverity { Error, Warning, Note };

/// One diagnostic message with an optional source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by a pass. Cheap to construct; passes take
/// one by reference and append to it.
class DiagnosticEngine {
public:
  /// Appends an error diagnostic at \p Loc.
  void error(SourceLoc Loc, std::string Message);
  /// Appends an error diagnostic with no source location.
  void error(std::string Message) { error(SourceLoc(), std::move(Message)); }
  /// Appends a warning diagnostic at \p Loc.
  void warning(SourceLoc Loc, std::string Message);
  /// Appends a note diagnostic at \p Loc.
  void note(SourceLoc Loc, std::string Message);

  /// \returns true if any error has been reported.
  bool hasErrors() const { return NumErrors != 0; }
  /// \returns the number of error-severity diagnostics.
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string str() const;

  /// Drops all collected diagnostics.
  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_DIAGNOSTICS_H
