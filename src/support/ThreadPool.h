//===--- support/ThreadPool.h - Fixed-size worker pool ----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the parallel analysis drivers
/// (per-function pipeline fan-out and the SCC-wave interprocedural pass).
/// Tasks are submitted as callables and return exception-propagating
/// std::futures; a worker count of 0 or 1 runs every task inline on the
/// submitting thread, which reproduces the serial drivers bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_THREADPOOL_H
#define PTRAN_SUPPORT_THREADPOOL_H

#include "support/Cancellation.h"
#include "support/FaultInjection.h"
#include "support/ObsSink.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ptran {

/// Fixed worker count, std::jthread-based. Destruction drains the queue
/// and joins: every queued item is dequeued and its future completed, so
/// no future is ever abandoned. Tasks submitted without a token always
/// run; tasks submitted with a CancelToken that has expired by dequeue
/// time are *skipped* — their bodies never execute, during normal
/// operation and during destruction alike (see the token-aware submit).
class ThreadPool {
public:
  /// Creates \p Workers worker threads. 0 or 1 means inline execution:
  /// submit() runs the task on the calling thread before returning.
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (0 in inline mode).
  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Resolves a user-facing --jobs value: 0 picks the hardware concurrency
  /// (at least 1), anything else is taken literally.
  static unsigned resolveJobs(unsigned Jobs);

  /// Attaches an observability sink (null detaches). While attached, every
  /// executed task reports `threadpool.tasks_executed`, its queue wait
  /// time (`threadpool.queue_wait_ns`) and its execution time — both as
  /// the pool-wide `threadpool.busy_ns` and per worker as
  /// `threadpool.worker<i>.busy_ns`. Detached (the default), no clocks are
  /// read and no counters are touched. Safe to call while workers run.
  void attachObservability(ObsSink *Sink) {
    Obs.store(Sink, std::memory_order_release);
  }

  /// Schedules \p F and returns a future for its result. Exceptions thrown
  /// by the task surface from future::get() on the waiting thread.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    // The fault hook runs inside the packaged_task so an injected throw is
    // stored in the future (and rethrown by waitAll) exactly like a real
    // task failure — never leaked into the worker loop.
    auto Task = std::make_shared<std::packaged_task<R()>>(
        [Body = std::forward<Fn>(F)]() mutable -> R {
          FaultInjection::maybeThrowPoolTask();
          return Body();
        });
    std::future<R> Fut = Task->get_future();
    if (Threads.empty())
      runInline([Task] { (*Task)(); });
    else
      enqueue([Task] { (*Task)(); });
    return Fut;
  }

  /// Token-aware submit for cancellable task groups (all tasks sharing one
  /// token form a group). If \p Token has expired by the time the task is
  /// dequeued, the body is skipped: it never executes, but the future still
  /// completes normally, so waitAll() on a cancelled group returns promptly
  /// instead of hanging — callers detect cut-short work by re-checking the
  /// token after the barrier. The same holds during pool destruction: the
  /// queue is drained, not-yet-started tasks of a cancelled group complete
  /// their futures without running. Skipped tasks count in skippedCount()
  /// and the `threadpool.tasks_skipped` obs counter. Void tasks only — a
  /// skipped task has no result to put in the future.
  template <typename Fn>
  std::future<void> submit(const CancelToken *Token, Fn &&F) {
    static_assert(std::is_void_v<std::invoke_result_t<std::decay_t<Fn>>>,
                  "token-aware submit takes void() tasks: a skipped task "
                  "has no result to return");
    auto Task = std::make_shared<std::packaged_task<void()>>(
        [this, Token, Body = std::forward<Fn>(F)]() mutable {
          if (Token && Token->expired()) {
            noteSkipped();
            return;
          }
          FaultInjection::maybeThrowPoolTask();
          Body();
        });
    std::future<void> Fut = Task->get_future();
    if (Threads.empty())
      runInline([Task] { (*Task)(); });
    else
      enqueue([Task] { (*Task)(); });
    return Fut;
  }

  /// Tasks whose bodies were skipped because their group's token had
  /// expired at dequeue time.
  uint64_t skippedCount() const {
    return Skipped.load(std::memory_order_relaxed);
  }

private:
  /// One queued task, stamped at enqueue time when a sink is attached so
  /// the dequeuing worker can report the queue wait.
  struct QueueItem {
    std::function<void()> Fn;
    std::chrono::steady_clock::time_point EnqueuedAt;
  };

  void enqueue(std::function<void()> Task);
  void runInline(std::function<void()> Task);
  void workerLoop(std::stop_token St, unsigned Worker);
  void noteSkipped();

  std::mutex M;
  std::condition_variable_any CV;
  std::deque<QueueItem> Queue;
  std::vector<std::jthread> Threads;
  std::atomic<ObsSink *> Obs{nullptr};
  std::atomic<uint64_t> Skipped{0};
};

/// Blocks on every future in \p Futures, rethrowing the first stored
/// exception after all tasks have finished (so no task outlives state the
/// caller is about to unwind).
template <typename T> void waitAll(std::vector<std::future<T>> &Futures) {
  std::exception_ptr First;
  for (std::future<T> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

} // namespace ptran

#endif // PTRAN_SUPPORT_THREADPOOL_H
