//===--- support/ThreadPool.h - Fixed-size worker pool ----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool used by the parallel analysis drivers
/// (per-function pipeline fan-out and the SCC-wave interprocedural pass).
/// Tasks are submitted as callables and return exception-propagating
/// std::futures; a worker count of 0 or 1 runs every task inline on the
/// submitting thread, which reproduces the serial drivers bit-for-bit.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_THREADPOOL_H
#define PTRAN_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ptran {

/// Fixed worker count, std::jthread-based. Destruction drains the queue
/// (every submitted task runs; no future is ever abandoned) and joins.
class ThreadPool {
public:
  /// Creates \p Workers worker threads. 0 or 1 means inline execution:
  /// submit() runs the task on the calling thread before returning.
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads (0 in inline mode).
  unsigned workerCount() const { return static_cast<unsigned>(Threads.size()); }

  /// Resolves a user-facing --jobs value: 0 picks the hardware concurrency
  /// (at least 1), anything else is taken literally.
  static unsigned resolveJobs(unsigned Jobs);

  /// Schedules \p F and returns a future for its result. Exceptions thrown
  /// by the task surface from future::get() on the waiting thread.
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    if (Threads.empty())
      (*Task)();
    else
      enqueue([Task] { (*Task)(); });
    return Fut;
  }

private:
  void enqueue(std::function<void()> Task);
  void workerLoop(std::stop_token St);

  std::mutex M;
  std::condition_variable_any CV;
  std::deque<std::function<void()>> Queue;
  std::vector<std::jthread> Threads;
};

/// Blocks on every future in \p Futures, rethrowing the first stored
/// exception after all tasks have finished (so no task outlives state the
/// caller is about to unwind).
template <typename T> void waitAll(std::vector<std::future<T>> &Futures) {
  std::exception_ptr First;
  for (std::future<T> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

} // namespace ptran

#endif // PTRAN_SUPPORT_THREADPOOL_H
