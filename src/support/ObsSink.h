//===--- support/ObsSink.h - Minimal counter sink ---------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The narrowest possible observability interface: a named monotonic
/// counter sink. Low-level support code (ThreadPool) reports through this
/// so it never depends on the full registry in src/obs/ — which itself
/// depends on support for TablePrinter — while ObsRegistry implements it.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_OBSSINK_H
#define PTRAN_SUPPORT_OBSSINK_H

#include <cstdint>
#include <string_view>

namespace ptran {

/// Receives named monotonic counter increments. Implementations must be
/// safe to call from multiple threads concurrently.
class ObsSink {
public:
  virtual ~ObsSink() = default;

  /// Adds \p Delta to the counter named \p Name (created at zero on first
  /// use).
  virtual void addCounter(std::string_view Name, uint64_t Delta = 1) = 0;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_OBSSINK_H
