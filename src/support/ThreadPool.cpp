//===--- support/ThreadPool.cpp - Fixed-size worker pool ------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace ptran;

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers <= 1)
    return; // Inline mode.
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back([this](std::stop_token St) { workerLoop(St); });
}

ThreadPool::~ThreadPool() {
  for (std::jthread &T : Threads)
    T.request_stop();
  CV.notify_all();
  // std::jthread joins on destruction; workerLoop drains the queue before
  // honoring the stop request, so pending futures always complete.
}

unsigned ThreadPool::resolveJobs(unsigned Jobs) {
  if (Jobs != 0)
    return Jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(Task));
  }
  CV.notify_one();
}

void ThreadPool::workerLoop(std::stop_token St) {
  std::unique_lock<std::mutex> Lock(M);
  // wait() returns false only when a stop was requested and the queue is
  // empty, i.e. after the destructor ran out of work for us.
  while (CV.wait(Lock, St, [this] { return !Queue.empty(); })) {
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    Lock.unlock();
    Task();
    Lock.lock();
  }
}
