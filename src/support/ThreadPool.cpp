//===--- support/ThreadPool.cpp - Fixed-size worker pool ------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <string>

using namespace ptran;

namespace {

uint64_t elapsedNs(std::chrono::steady_clock::time_point From,
                   std::chrono::steady_clock::time_point To) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(To - From)
          .count());
}

} // namespace

ThreadPool::ThreadPool(unsigned Workers) {
  if (Workers <= 1)
    return; // Inline mode.
  Threads.reserve(Workers);
  for (unsigned I = 0; I < Workers; ++I)
    Threads.emplace_back(
        [this, I](std::stop_token St) { workerLoop(St, I); });
}

ThreadPool::~ThreadPool() {
  for (std::jthread &T : Threads)
    T.request_stop();
  CV.notify_all();
  // std::jthread joins on destruction; workerLoop drains the queue before
  // honoring the stop request, so pending futures always complete.
}

unsigned ThreadPool::resolveJobs(unsigned Jobs) {
  if (Jobs != 0)
    return Jobs;
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::noteSkipped() {
  Skipped.fetch_add(1, std::memory_order_relaxed);
  if (ObsSink *Sink = Obs.load(std::memory_order_acquire))
    Sink->addCounter("threadpool.tasks_skipped", 1);
}

void ThreadPool::runInline(std::function<void()> Task) {
  ObsSink *Sink = Obs.load(std::memory_order_acquire);
  if (!Sink) {
    Task();
    return;
  }
  auto Start = std::chrono::steady_clock::now();
  Task();
  uint64_t Ns = elapsedNs(Start, std::chrono::steady_clock::now());
  Sink->addCounter("threadpool.tasks_executed", 1);
  Sink->addCounter("threadpool.busy_ns", Ns);
}

void ThreadPool::enqueue(std::function<void()> Task) {
  QueueItem Item;
  Item.Fn = std::move(Task);
  if (Obs.load(std::memory_order_acquire))
    Item.EnqueuedAt = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(Item));
  }
  CV.notify_one();
}

void ThreadPool::workerLoop(std::stop_token St, unsigned Worker) {
  std::unique_lock<std::mutex> Lock(M);
  // wait() returns false only when a stop was requested and the queue is
  // empty, i.e. after the destructor ran out of work for us.
  while (CV.wait(Lock, St, [this] { return !Queue.empty(); })) {
    QueueItem Item = std::move(Queue.front());
    Queue.pop_front();
    Lock.unlock();
    ObsSink *Sink = Obs.load(std::memory_order_acquire);
    if (Sink) {
      auto Start = std::chrono::steady_clock::now();
      Item.Fn();
      uint64_t Ns = elapsedNs(Start, std::chrono::steady_clock::now());
      Sink->addCounter("threadpool.tasks_executed", 1);
      // EnqueuedAt is default-constructed when the sink was attached
      // between enqueue and dequeue; skip the bogus wait in that case.
      if (Item.EnqueuedAt != std::chrono::steady_clock::time_point())
        Sink->addCounter("threadpool.queue_wait_ns",
                         elapsedNs(Item.EnqueuedAt, Start));
      Sink->addCounter("threadpool.busy_ns", Ns);
      Sink->addCounter("threadpool.worker" + std::to_string(Worker) +
                           ".busy_ns",
                       Ns);
    } else {
      Item.Fn();
    }
    Lock.lock();
  }
}
