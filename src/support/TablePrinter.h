//===--- support/TablePrinter.h - Aligned text tables ----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders aligned, monospace text tables. The benchmark harness uses this
/// to print rows in the same layout as the paper's Table 1.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_TABLEPRINTER_H
#define PTRAN_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace ptran {

/// Accumulates rows of string cells and renders them with per-column
/// alignment. The first added row is treated as the header.
class TablePrinter {
public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> Header);

  /// Appends one data row; missing trailing cells render as empty.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table. Column 0 is left-aligned, all others right-aligned.
  std::string str() const;

private:
  struct Row {
    bool IsSeparator = false;
    std::vector<std::string> Cells;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_TABLEPRINTER_H
