//===--- support/FatalError.h - Fatal error reporting ----------*- C++ -*-===//
//
// Part of the ptran-times project: a reproduction of "Determining Average
// Program Execution Times and their Variance" (V. Sarkar, PLDI 1989).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal error reporting for invariant violations that must abort even in
/// release builds, plus an unreachable marker. The library does not use
/// exceptions; recoverable errors travel through ptran::DiagnosticEngine.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_FATALERROR_H
#define PTRAN_SUPPORT_FATALERROR_H

#include <string_view>

namespace ptran {

/// Prints \p Message to stderr and aborts. Use for broken invariants that
/// indicate a bug in the library itself, never for malformed user input.
[[noreturn]] void reportFatalError(std::string_view Message);

/// Marks a point in control flow that must never be reached.
[[noreturn]] void unreachableInternal(const char *Message, const char *File,
                                      unsigned Line);

} // namespace ptran

/// Aborts with a diagnostic naming the unreachable location.
#define PTRAN_UNREACHABLE(MSG)                                                 \
  ::ptran::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // PTRAN_SUPPORT_FATALERROR_H
