//===--- support/StringUtils.h - Small string helpers ----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared by printers, the parser and the program database.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_STRINGUTILS_H
#define PTRAN_SUPPORT_STRINGUTILS_H

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ptran {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> split(std::string_view Text, char Sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Case-insensitive ASCII equality (the mini language is case-insensitive,
/// like Fortran).
bool equalsLower(std::string_view A, std::string_view B);

/// Lower-cases ASCII letters.
std::string toLower(std::string_view Text);

/// Formats a double compactly: integers without a fractional part,
/// otherwise up to \p Precision significant decimal digits.
std::string formatDouble(double Value, int Precision = 6);

/// Strictly parses a non-negative decimal integer. Returns nullopt unless
/// the whole string is digits and the value fits an unsigned — unlike
/// atoi, garbage never silently becomes 0. Command-line flag parsing uses
/// this for every numeric flag.
std::optional<unsigned> parseUnsigned(std::string_view Text);

/// Strictly parses a finite double. Returns nullopt unless the whole
/// string converts (no trailing junk, no inf/nan, not empty).
std::optional<double> parseDouble(std::string_view Text);

} // namespace ptran

#endif // PTRAN_SUPPORT_STRINGUTILS_H
