//===--- support/Retry.cpp - Bounded retry with backoff -------------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Retry.h"

#include <algorithm>
#include <thread>

namespace ptran {

BackoffSchedule::BackoffSchedule(const RetryPolicy &P)
    : Policy(P), Jitter(P.JitterSeed),
      CurrentUs(static_cast<double>(P.BaseDelay.count())) {}

std::chrono::microseconds BackoffSchedule::next() {
  double Capped =
      std::min(CurrentUs, static_cast<double>(Policy.MaxDelay.count()));
  // Jitter in [0.5, 1): decorrelates concurrent retriers while keeping the
  // delay within a factor of two of the nominal curve.
  double Jittered = Capped * Jitter.uniformReal(0.5, 1.0);
  CurrentUs = CurrentUs * Policy.Multiplier;
  return std::chrono::microseconds(static_cast<int64_t>(Jittered));
}

RetryOutcome
retryWithBackoff(const RetryPolicy &Policy,
                 const std::function<AttemptResult()> &Attempt,
                 CancelToken *Cancel, ObsSink *Obs,
                 const std::function<void(std::chrono::microseconds)> &Sleep) {
  RetryOutcome Out;
  BackoffSchedule Schedule(Policy);
  for (unsigned I = 0; I <= Policy.MaxRetries; ++I) {
    ++Out.Attempts;
    AttemptResult R = Attempt();
    if (R == AttemptResult::Success) {
      Out.Ok = true;
      return Out;
    }
    if (R == AttemptResult::Permanent) {
      Out.PermanentFailure = true;
      return Out;
    }
    if (I == Policy.MaxRetries)
      break; // Transient, but out of attempts.
    if (Cancel && Cancel->checkpoint()) {
      Out.CancelledBy = Cancel->reason();
      return Out;
    }
    std::chrono::microseconds Delay = Schedule.next();
    if (Cancel) {
      // A backoff sleep must never outlive the token's wall-clock
      // deadline: a full-length sleep would both blow the caller's latency
      // bound and let the next IO attempt start after expiry. Clamp to the
      // remaining time (zero when already past due).
      if (std::optional<std::chrono::nanoseconds> Left =
              Cancel->remainingDeadline()) {
        auto LeftUs =
            std::chrono::duration_cast<std::chrono::microseconds>(*Left);
        if (LeftUs < Delay)
          Delay = std::max(LeftUs, std::chrono::microseconds(0));
      }
    }
    if (Sleep)
      Sleep(Delay);
    else
      std::this_thread::sleep_for(Delay);
    ++Out.Retries;
    if (Obs)
      Obs->addCounter("resilience.io_retries", 1);
    // Re-poll after waking: the deadline may have passed during the sleep,
    // and an attempt must never start on an expired token.
    if (Cancel && Cancel->checkpoint()) {
      Out.CancelledBy = Cancel->reason();
      return Out;
    }
  }
  return Out;
}

} // namespace ptran
