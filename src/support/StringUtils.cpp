//===--- support/StringUtils.cpp - Small string helpers -------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace ptran;

std::string ptran::join(const std::vector<std::string> &Parts,
                        std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::vector<std::string> ptran::split(std::string_view Text, char Sep) {
  std::vector<std::string> Fields;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Fields.emplace_back(Text.substr(Start));
      return Fields;
    }
    Fields.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view ptran::trim(std::string_view Text) {
  size_t Begin = 0;
  while (Begin < Text.size() &&
         std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  size_t End = Text.size();
  while (End > Begin && std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

bool ptran::equalsLower(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

std::string ptran::toLower(std::string_view Text) {
  std::string Result(Text);
  for (char &C : Result)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return Result;
}

std::optional<unsigned> ptran::parseUnsigned(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  unsigned long long Value = 0;
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return std::nullopt;
    Value = Value * 10 + static_cast<unsigned long long>(C - '0');
    if (Value > std::numeric_limits<unsigned>::max())
      return std::nullopt;
  }
  return static_cast<unsigned>(Value);
}

std::optional<double> ptran::parseDouble(std::string_view Text) {
  if (Text.empty())
    return std::nullopt;
  std::string Buf(Text);
  char *End = nullptr;
  double Value = std::strtod(Buf.c_str(), &End);
  if (End != Buf.c_str() + Buf.size())
    return std::nullopt;
  if (!std::isfinite(Value))
    return std::nullopt;
  return Value;
}

std::string ptran::formatDouble(double Value, int Precision) {
  if (std::isfinite(Value) && Value == std::floor(Value) &&
      std::fabs(Value) < 1e15) {
    char Buffer[32];
    std::snprintf(Buffer, sizeof(Buffer), "%lld",
                  static_cast<long long>(Value));
    return Buffer;
  }
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*g", Precision, Value);
  return Buffer;
}
