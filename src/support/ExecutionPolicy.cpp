//===--- support/ExecutionPolicy.cpp - Shared parallelism policy ----------===//

#include "support/ExecutionPolicy.h"

#include <algorithm>

using namespace ptran;

PoolLease::PoolLease(const ExecutionPolicy &Policy, size_t TaskBound,
                     ObsSink *Obs) {
  if (Policy.Pool) {
    P = Policy.Pool;
    if (Obs)
      P->attachObservability(Obs);
    return;
  }
  size_t Workers = std::min<size_t>(ThreadPool::resolveJobs(Policy.Jobs),
                                    std::max<size_t>(TaskBound, 1));
  Owned = std::make_unique<ThreadPool>(static_cast<unsigned>(Workers));
  P = Owned.get();
  if (Obs)
    P->attachObservability(Obs);
}
