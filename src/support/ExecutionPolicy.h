//===--- support/ExecutionPolicy.h - Shared parallelism policy --*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One knob for every parallel pass: how many workers, and optionally
/// whose. The passes historically carried their own `unsigned Jobs`
/// fields (AnalysisOptions, TimeAnalysisOptions, Estimator::create) and
/// each spun up a private ThreadPool; an ExecutionPolicy either does the
/// same (Pool == nullptr) or points every pass at one long-lived,
/// externally owned pool — e.g. an EstimationSession's — so a resident
/// service does not recreate workers per query.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_EXECUTIONPOLICY_H
#define PTRAN_SUPPORT_EXECUTIONPOLICY_H

#include "support/ThreadPool.h"

#include <memory>

namespace ptran {

/// How a pass parallelizes its independent tasks. Every configuration
/// computes bit-identical results; the policy only changes wall clock.
struct ExecutionPolicy {
  /// Worker threads: 1 = serial (the historical driver), 0 = hardware
  /// concurrency. Ignored when Pool is set.
  unsigned Jobs = 1;
  /// Optional externally owned pool. When set, passes submit into it
  /// instead of creating their own workers; the owner must keep it alive
  /// for the duration of every pass using this policy.
  ThreadPool *Pool = nullptr;

  ExecutionPolicy() = default;
  explicit ExecutionPolicy(unsigned Jobs) : Jobs(Jobs) {}
  explicit ExecutionPolicy(ThreadPool &Pool) : Pool(&Pool) {}
};

/// The borrowed-or-owned pool a pass acquires from an ExecutionPolicy for
/// the duration of one run.
class PoolLease {
public:
  /// \p TaskBound caps an owned pool's size (no point creating more
  /// workers than schedulable tasks); a borrowed pool is used as-is.
  /// When \p Obs is set it is attached to the leased pool, so the pass's
  /// tasks report queue/busy counters into it (a null \p Obs leaves a
  /// borrowed pool's existing attachment untouched).
  PoolLease(const ExecutionPolicy &Policy, size_t TaskBound,
            ObsSink *Obs = nullptr);

  ThreadPool &operator*() const { return *P; }
  ThreadPool *operator->() const { return P; }

private:
  ThreadPool *P = nullptr;
  std::unique_ptr<ThreadPool> Owned;
};

} // namespace ptran

#endif // PTRAN_SUPPORT_EXECUTIONPOLICY_H
