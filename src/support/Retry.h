//===--- support/Retry.h - Bounded retry with backoff -----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded retry with exponential backoff and deterministic seeded jitter
/// for transient IO failures. The taxonomy an attempt reports is the whole
/// contract:
///
///   Success    done, stop;
///   Transient  the kind of failure a retry can fix (an interrupted or
///              failed open/read/write, an injected `io.fail`) — sleep the
///              backoff delay and try again while attempts remain;
///   Permanent  retrying cannot help (corrupt bytes, checksum mismatch,
///              malformed content) — surface immediately, never retried.
///
/// Delays follow Base * Multiplier^i capped at Max, each scaled by a jitter
/// factor in [0.5, 1) drawn from a support/Rng stream seeded from the
/// policy, so the full backoff sequence is reproducible for a fixed seed
/// (and testable without real clocks: the sleeper is injectable).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_RETRY_H
#define PTRAN_SUPPORT_RETRY_H

#include "support/Cancellation.h"
#include "support/ObsSink.h"
#include "support/Rng.h"

#include <chrono>
#include <cstdint>
#include <functional>

namespace ptran {

/// How one attempt of a retryable operation ended.
enum class AttemptResult : uint8_t {
  Success = 0,
  Transient, ///< Worth retrying (IO blip, injected fault).
  Permanent, ///< Retrying cannot help (corruption, bad format).
};

/// Retry configuration. The default (MaxRetries = 0) performs exactly one
/// attempt — retrying is strictly opt-in.
struct RetryPolicy {
  /// Extra attempts after the first one (0 = no retry).
  unsigned MaxRetries = 0;
  /// Delay before the first retry.
  std::chrono::microseconds BaseDelay{1000};
  /// Geometric growth factor per retry.
  double Multiplier = 2.0;
  /// Upper bound on any single delay (before jitter).
  std::chrono::microseconds MaxDelay{100000};
  /// Seed of the jitter stream; fixed seed => reproducible delays.
  uint64_t JitterSeed = 0x7265747279ULL; // "retry"

  bool enabled() const { return MaxRetries > 0; }

  RetryPolicy &retries(unsigned N) {
    MaxRetries = N;
    return *this;
  }
  RetryPolicy &baseDelay(std::chrono::microseconds D) {
    BaseDelay = D;
    return *this;
  }
  RetryPolicy &jitterSeed(uint64_t S) {
    JitterSeed = S;
    return *this;
  }
};

/// The deterministic delay sequence of one retry episode: next() yields the
/// delay to sleep before retry i, for i = 0, 1, 2, ...
class BackoffSchedule {
public:
  explicit BackoffSchedule(const RetryPolicy &Policy);

  std::chrono::microseconds next();

private:
  RetryPolicy Policy;
  Rng Jitter;
  double CurrentUs;
};

/// What retryWithBackoff did.
struct RetryOutcome {
  bool Ok = false;           ///< Final attempt succeeded.
  bool PermanentFailure = false; ///< Stopped on a Permanent verdict.
  unsigned Attempts = 0;     ///< Total attempts performed (>= 1).
  unsigned Retries = 0;      ///< Attempts beyond the first.
  /// Non-None when retrying stopped because \p Cancel expired.
  CancelReason CancelledBy = CancelReason::None;
};

/// Runs \p Attempt up to 1 + Policy.MaxRetries times, sleeping the backoff
/// delay between Transient failures. \p Cancel (optional) bounds the
/// episode: it is polled before each sleep, every sleep is clamped to the
/// token's remaining wall-clock deadline, and the token is re-polled after
/// waking — so no attempt ever starts after expiry and no sleep outlives
/// the deadline. \p Obs (optional) receives
/// one `resilience.io_retries` increment per retry performed. \p Sleep
/// (optional) replaces the real sleeper — tests pass a recorder to check
/// the deterministic schedule without waiting.
RetryOutcome
retryWithBackoff(const RetryPolicy &Policy,
                 const std::function<AttemptResult()> &Attempt,
                 CancelToken *Cancel = nullptr, ObsSink *Obs = nullptr,
                 const std::function<void(std::chrono::microseconds)> &Sleep =
                     {});

} // namespace ptran

#endif // PTRAN_SUPPORT_RETRY_H
