//===--- support/FatalError.cpp - Fatal error reporting -------------------===//

#include "support/FatalError.h"

#include <cstdio>
#include <cstdlib>

using namespace ptran;

void ptran::reportFatalError(std::string_view Message) {
  std::fprintf(stderr, "ptran fatal error: %.*s\n",
               static_cast<int>(Message.size()), Message.data());
  std::abort();
}

void ptran::unreachableInternal(const char *Message, const char *File,
                                unsigned Line) {
  std::fprintf(stderr, "ptran unreachable at %s:%u: %s\n", File, Line,
               Message ? Message : "");
  std::abort();
}
