//===--- support/Rng.cpp - Deterministic random number generation ---------===//

#include "support/Rng.h"

#include <cassert>
#include <cmath>

using namespace ptran;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

void Rng::reseed(uint64_t Seed) {
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

int64_t Rng::uniformInt(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty uniformInt range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  if (Span == 0) // Full 64-bit range.
    return static_cast<int64_t>(next());
  // Rejection sampling to avoid modulo bias.
  uint64_t Limit = UINT64_MAX - UINT64_MAX % Span;
  uint64_t Value = next();
  while (Value >= Limit)
    Value = next();
  return Lo + static_cast<int64_t>(Value % Span);
}

double Rng::uniformReal() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double Lo, double Hi) {
  return Lo + (Hi - Lo) * uniformReal();
}

bool Rng::bernoulli(double P) {
  if (P <= 0.0)
    return false;
  if (P >= 1.0)
    return true;
  return uniformReal() < P;
}

uint64_t Rng::geometric(double P) {
  assert(P > 0.0 && P <= 1.0 && "geometric requires 0 < P <= 1");
  if (P >= 1.0)
    return 0;
  // Inversion: floor(log(U) / log(1-P)).
  double U = uniformReal();
  if (U <= 0.0)
    U = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(U) / std::log1p(-P)));
}

double Rng::normal(double Mean, double StdDev) {
  double U1 = uniformReal();
  double U2 = uniformReal();
  if (U1 <= 0.0)
    U1 = 0x1.0p-53;
  double R = std::sqrt(-2.0 * std::log(U1));
  return Mean + StdDev * R * std::cos(2.0 * M_PI * U2);
}
