//===--- support/Diagnostics.cpp - Source locations and diagnostics -------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace ptran;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    switch (D.Severity) {
    case DiagSeverity::Error:
      OS << "error: ";
      break;
    case DiagSeverity::Warning:
      OS << "warning: ";
      break;
    case DiagSeverity::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
