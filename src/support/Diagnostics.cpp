//===--- support/Diagnostics.cpp - Source locations and diagnostics -------===//

#include "support/Diagnostics.h"

#include <algorithm>
#include <iterator>
#include <sstream>

using namespace ptran;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (D.Loc.isValid())
      OS << D.Loc.Line << ':' << D.Loc.Column << ": ";
    switch (D.Severity) {
    case DiagSeverity::Error:
      OS << "error: ";
      break;
    case DiagSeverity::Warning:
      OS << "warning: ";
      break;
    case DiagSeverity::Note:
      OS << "note: ";
      break;
    }
    OS << D.Message << '\n';
  }
  return OS.str();
}

void DiagnosticEngine::append(DiagnosticEngine Other) {
  Diags.insert(Diags.end(), std::make_move_iterator(Other.Diags.begin()),
               std::make_move_iterator(Other.Diags.end()));
  NumErrors += Other.NumErrors;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}

void ThreadSafeDiagnostics::add(DiagSeverity Severity, std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  Pending.push_back({Severity, SourceLoc(), std::move(Message)});
  if (Severity == DiagSeverity::Error)
    ++NumErrors;
}

void ThreadSafeDiagnostics::error(std::string Message) {
  add(DiagSeverity::Error, std::move(Message));
}

void ThreadSafeDiagnostics::warning(std::string Message) {
  add(DiagSeverity::Warning, std::move(Message));
}

void ThreadSafeDiagnostics::note(std::string Message) {
  add(DiagSeverity::Note, std::move(Message));
}

void ThreadSafeDiagnostics::warningOnce(std::string Message) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Seen.insert(Message).second)
    return;
  Pending.push_back({DiagSeverity::Warning, SourceLoc(), std::move(Message)});
}

bool ThreadSafeDiagnostics::hasErrors() const {
  std::lock_guard<std::mutex> Lock(M);
  return NumErrors != 0;
}

bool ThreadSafeDiagnostics::empty() const {
  std::lock_guard<std::mutex> Lock(M);
  return Pending.empty();
}

void ThreadSafeDiagnostics::drainTo(DiagnosticEngine &Out) {
  std::vector<Diagnostic> Drained;
  {
    std::lock_guard<std::mutex> Lock(M);
    Drained.swap(Pending);
    Seen.clear();
    NumErrors = 0;
  }
  std::stable_sort(Drained.begin(), Drained.end(),
                   [](const Diagnostic &A, const Diagnostic &B) {
                     if (A.Severity != B.Severity)
                       return A.Severity < B.Severity;
                     return A.Message < B.Message;
                   });
  for (Diagnostic &D : Drained) {
    switch (D.Severity) {
    case DiagSeverity::Error:
      Out.error(D.Loc, std::move(D.Message));
      break;
    case DiagSeverity::Warning:
      Out.warning(D.Loc, std::move(D.Message));
      break;
    case DiagSeverity::Note:
      Out.note(D.Loc, std::move(D.Message));
      break;
    }
  }
}
