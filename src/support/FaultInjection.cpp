//===--- support/FaultInjection.cpp - Deterministic fault harness ---------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include <unistd.h>

namespace ptran {

std::atomic<bool> FaultInjection::Armed{false};

FaultInjection &FaultInjection::instance() {
  static FaultInjection FI;
  return FI;
}

FaultInjection::FaultInjection() {
  if (const char *Spec = std::getenv("PTRAN_FAULT")) {
    std::string Error;
    if (!configure(Spec, Error))
      std::fprintf(stderr, "ptran: ignoring malformed PTRAN_FAULT: %s\n",
                   Error.c_str());
  }
}

namespace {
// The call-site fast path loads only the Armed flag and never constructs
// the singleton, so the PTRAN_FAULT environment read must happen before
// main — otherwise env-var arming would silently never engage.
[[maybe_unused]] const bool EnvSpecRead =
    (FaultInjection::instance(), true);
} // namespace

namespace {

struct SiteName {
  const char *Key;
  FaultInjection::Site S;
};

const SiteName SiteNames[] = {
    {"profile.flip", FaultInjection::Site::ProfileByteFlip},
    {"counter.corrupt", FaultInjection::Site::CounterCorrupt},
    {"io.fail", FaultInjection::Site::FileIo},
    {"pool.throw", FaultInjection::Site::PoolTask},
    {"io.torn_write", FaultInjection::Site::TornWrite},
    {"io.short_write", FaultInjection::Site::ShortWrite},
};

} // namespace

bool FaultInjection::configure(const std::string &Spec, std::string &Error) {
  disarm();

  SiteState NewSites[static_cast<unsigned>(Site::NumSites)];
  std::string NewCrashPoint;
  uint64_t Seed = 1;
  bool Any = false;

  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Pair = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Pair.empty())
      continue;

    size_t Eq = Pair.find('=');
    if (Eq == std::string::npos || Eq == 0 || Eq + 1 == Pair.size()) {
      Error = "expected key=value, got '" + Pair + "'";
      return false;
    }
    std::string Key = Pair.substr(0, Eq);
    std::string Value = Pair.substr(Eq + 1);

    char *ValueEnd = nullptr;
    if (Key == "seed") {
      unsigned long long V = std::strtoull(Value.c_str(), &ValueEnd, 10);
      if (!ValueEnd || *ValueEnd != '\0') {
        Error = "seed wants an unsigned integer, got '" + Value + "'";
        return false;
      }
      Seed = V;
      continue;
    }

    if (Key == "crash.at") {
      // Value is POINT or POINT:N — a crash-point name, not a count, so it
      // bypasses the numeric grammar below. A probability form would make
      // a nondeterministic kill, which defeats the point of the harness.
      std::string Point = Value;
      uint64_t Nth = 1;
      size_t Colon = Value.rfind(':');
      if (Colon != std::string::npos) {
        Point = Value.substr(0, Colon);
        unsigned long long V =
            std::strtoull(Value.c_str() + Colon + 1, &ValueEnd, 10);
        if (!ValueEnd || *ValueEnd != '\0' || V == 0) {
          Error = "crash.at wants POINT or POINT:N with N >= 1, got '" +
                  Value + "'";
          return false;
        }
        Nth = V;
      }
      if (Point.empty()) {
        Error = "crash.at wants a crash-point name, got '" + Value + "'";
        return false;
      }
      SiteState &SS = NewSites[static_cast<unsigned>(Site::Crash)];
      SS.Enabled = true;
      SS.Nth = Nth;
      SS.NthHi = Nth;
      NewCrashPoint = Point;
      continue;
    }

    const SiteName *Found = nullptr;
    for (const SiteName &SN : SiteNames)
      if (Key == SN.Key)
        Found = &SN;
    if (!Found) {
      Error = "unknown fault site '" + Key + "'";
      return false;
    }

    SiteState &SS = NewSites[static_cast<unsigned>(Found->S)];
    // A value is a probability when it could only be a real: a '.', an
    // exponent ('1e-1'), or a bare 0 (an index must be >= 1, so 0 can only
    // mean "probability zero" — i.e. the site is disabled). Everything
    // else is the integer index/range form.
    if (Value.find_first_of(".eE") != std::string::npos || Value == "0") {
      double P = std::strtod(Value.c_str(), &ValueEnd);
      if (!ValueEnd || *ValueEnd != '\0' || !(P >= 0.0) || !(P <= 1.0)) {
        Error = Key + " wants a probability in [0,1], got '" + Value + "'";
        return false;
      }
      if (P == 0.0) {
        // Probability zero disables the site outright (overriding any
        // earlier entry for it in the same spec) instead of arming a hook
        // that can never fire.
        SS = SiteState();
        continue;
      }
      SS.Nth = 0;
      SS.NthHi = 0;
      SS.Prob = P;
    } else {
      unsigned long long Lo = std::strtoull(Value.c_str(), &ValueEnd, 10);
      unsigned long long Hi = Lo;
      if (ValueEnd && *ValueEnd == '-')
        Hi = std::strtoull(ValueEnd + 1, &ValueEnd, 10);
      if (!ValueEnd || *ValueEnd != '\0' || Lo == 0 || Hi < Lo) {
        Error = Key + " wants an opportunity index >= 1, a range A-B with "
                      "1 <= A <= B, or a probability in [0,1] (e.g. 0.1, "
                      "1e-1 or 0), got '" +
                Value + "'";
        return false;
      }
      SS.Nth = Lo;
      SS.NthHi = Hi;
      SS.Prob = 0.0;
    }
    SS.Enabled = true;
  }
  for (const SiteState &SS : NewSites)
    Any = Any || SS.Enabled;

  {
    std::lock_guard<std::mutex> L(M);
    for (unsigned I = 0; I < static_cast<unsigned>(Site::NumSites); ++I)
      Sites[I] = NewSites[I];
    CrashPoint = NewCrashPoint;
    // splitmix64 rejects a zero state only by convention; keep it nonzero.
    State = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  }
  Armed.store(Any, std::memory_order_release);
  return true;
}

void FaultInjection::disarm() {
  Armed.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> L(M);
  for (SiteState &SS : Sites)
    SS = SiteState();
  CrashPoint.clear();
  State = 1;
}

uint64_t FaultInjection::nextRandom() {
  // splitmix64: tiny, seedable, and fully deterministic across platforms.
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

bool FaultInjection::shouldFire(Site S) {
  std::lock_guard<std::mutex> L(M);
  SiteState &SS = Sites[static_cast<unsigned>(S)];
  if (!SS.Enabled)
    return false;
  ++SS.Opportunities;
  bool Fire = false;
  if (SS.Nth > 0) {
    Fire = SS.Opportunities >= SS.Nth && SS.Opportunities <= SS.NthHi;
  } else {
    // 53-bit mantissa draw in [0,1); compares exactly against Prob=1.0.
    double U = static_cast<double>(nextRandom() >> 11) * 0x1.0p-53;
    Fire = U < SS.Prob || SS.Prob == 1.0;
  }
  if (Fire)
    ++SS.Fired;
  return Fire;
}

uint64_t FaultInjection::firedCount(Site S) const {
  std::lock_guard<std::mutex> L(M);
  return Sites[static_cast<unsigned>(S)].Fired;
}

uint64_t FaultInjection::opportunityCount(Site S) const {
  std::lock_guard<std::mutex> L(M);
  return Sites[static_cast<unsigned>(S)].Opportunities;
}

void FaultInjection::throwPoolTask() {
  if (shouldFire(Site::PoolTask))
    throw FaultInjected("injected thread-pool task failure");
}

void FaultInjection::corruptCounters(std::vector<double> &Counters) {
  if (Counters.empty() || !shouldFire(Site::CounterCorrupt))
    return;
  uint64_t Index;
  {
    std::lock_guard<std::mutex> L(M);
    Index = nextRandom() % Counters.size();
  }
  Counters[Index] = std::numeric_limits<double>::quiet_NaN();
}

bool FaultInjection::crashPointFires(const char *Point) {
  {
    std::lock_guard<std::mutex> L(M);
    if (CrashPoint.empty() || std::strcmp(Point, CrashPoint.c_str()) != 0)
      return false;
  }
  return shouldFire(Site::Crash);
}

void FaultInjection::dieAtCrashPoint() {
  // _exit skips atexit handlers, stream flushes and destructors — the
  // closest in-process stand-in for kill -9. Status 42 marks the exit as
  // an injected crash so a harness can tell it from a genuine failure.
  ::_exit(42);
}

void FaultInjection::flipByte(std::vector<uint8_t> &Bytes) {
  if (Bytes.empty() || !shouldFire(Site::ProfileByteFlip))
    return;
  uint64_t Index, Bit;
  {
    std::lock_guard<std::mutex> L(M);
    Index = nextRandom() % Bytes.size();
    Bit = nextRandom() % 8;
  }
  Bytes[Index] ^= static_cast<uint8_t>(1u << Bit);
}

} // namespace ptran
