//===--- support/TablePrinter.cpp - Aligned text tables -------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <sstream>

using namespace ptran;

TablePrinter::TablePrinter(std::vector<std::string> HeaderCells)
    : Header(std::move(HeaderCells)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back({false, std::move(Cells)});
}

void TablePrinter::addSeparator() { Rows.push_back({true, {}}); }

std::string TablePrinter::str() const {
  std::vector<size_t> Widths(Header.size());
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = Header[I].size();
  for (const Row &R : Rows)
    for (size_t I = 0; I < R.Cells.size(); ++I) {
      if (I >= Widths.size())
        Widths.resize(I + 1, 0);
      Widths[I] = std::max(Widths[I], R.Cells[I].size());
    }

  auto EmitRow = [&](std::ostringstream &OS,
                     const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Widths.size(); ++I) {
      std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      OS << "| ";
      if (I == 0) {
        OS << Cell << std::string(Widths[I] - Cell.size(), ' ');
      } else {
        OS << std::string(Widths[I] - Cell.size(), ' ') << Cell;
      }
      OS << ' ';
    }
    OS << "|\n";
  };

  auto EmitSeparator = [&](std::ostringstream &OS) {
    for (size_t Width : Widths)
      OS << '+' << std::string(Width + 2, '-');
    OS << "+\n";
  };

  std::ostringstream OS;
  EmitSeparator(OS);
  EmitRow(OS, Header);
  EmitSeparator(OS);
  for (const Row &R : Rows) {
    if (R.IsSeparator)
      EmitSeparator(OS);
    else
      EmitRow(OS, R.Cells);
  }
  EmitSeparator(OS);
  return OS.str();
}
