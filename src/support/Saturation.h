//===--- support/Saturation.h - Saturating counter arithmetic ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counter totals live in doubles, which hold integers exactly only up to
/// 2^53. Every accumulation path that can grow without bound — the PTPF
/// multi-run merge, a session's externally accumulated deltas, the
/// streaming ingest cells — clamps there instead of silently losing
/// integer precision, and tells the user that totals are now lower
/// bounds. This header is the one definition of that limit and of the
/// clamping add, so the clamp (and its diagnostic wording) cannot drift
/// between subsystems.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SUPPORT_SATURATION_H
#define PTRAN_SUPPORT_SATURATION_H

namespace ptran {

/// 2^53: the largest integer count a double holds exactly. Accumulators
/// clamp here (with a diagnostic) instead of silently losing precision.
inline constexpr double CounterSaturationLimit = 9007199254740992.0;

/// Adds \p Delta to \p Acc, clamping at CounterSaturationLimit.
/// \returns true when the clamp was applied (the total is now a lower
/// bound).
inline bool saturatingAdd(double &Acc, double Delta) {
  double Sum = Acc + Delta;
  if (Sum > CounterSaturationLimit) {
    Acc = CounterSaturationLimit;
    return true;
  }
  Acc = Sum;
  return false;
}

} // namespace ptran

#endif // PTRAN_SUPPORT_SATURATION_H
