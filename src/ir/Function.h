//===--- ir/Function.h - MiniIR functions and programs ---------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function and Program containers for the MiniIR. A Function owns its
/// symbol table, its flat statement list and an arena of expressions; a
/// Program owns a set of Functions and designates an entry procedure.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_FUNCTION_H
#define PTRAN_IR_FUNCTION_H

#include "ir/Stmt.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ptran {

/// A declared variable: scalar or array, integer or real.
struct Symbol {
  std::string Name;
  Type Ty = Type::Integer;
  /// Array extents; empty for scalars. At most two dimensions, column-major
  /// addressing as in Fortran.
  std::vector<int64_t> Dims;
  /// True for procedure parameters (passed by reference).
  bool IsParam = false;

  bool isArray() const { return !Dims.empty(); }
  /// Total number of elements; 1 for scalars.
  int64_t elementCount() const;
};

/// A procedure: symbol table + flat statement list + expression arena.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &name() const { return Name; }

  /// -- Symbols ----------------------------------------------------------

  /// Declares a variable; returns its VarId. Duplicate names are the
  /// caller's responsibility (the parser diagnoses them).
  VarId declare(Symbol Sym);

  /// \returns the VarId of \p Name, or -1u if not declared. Lookup is
  /// case-insensitive, like Fortran.
  VarId lookup(std::string_view VarName) const;

  const Symbol &symbol(VarId V) const { return Symbols[V]; }
  /// Mutable access for the front end (e.g. a declaration refining the type
  /// of an already-registered parameter).
  Symbol &symbolMutable(VarId V) { return Symbols[V]; }
  unsigned numSymbols() const { return static_cast<unsigned>(Symbols.size()); }

  /// Parameter VarIds in declaration order.
  const std::vector<VarId> &params() const { return Params; }
  void addParam(VarId V) { Params.push_back(V); }

  /// -- Expressions ------------------------------------------------------

  /// Allocates an expression node in this function's arena.
  template <typename T, typename... Args> T *make(Args &&...A) {
    auto Owned = std::make_unique<T>(std::forward<Args>(A)...);
    T *Raw = Owned.get();
    Arena.push_back(std::move(Owned));
    return Raw;
  }

  /// -- Statements -------------------------------------------------------

  /// Appends a statement; returns its StmtId.
  StmtId append(std::unique_ptr<Stmt> S);

  Stmt *stmt(StmtId S) { return Stmts[S].get(); }
  const Stmt *stmt(StmtId S) const { return Stmts[S].get(); }
  unsigned numStmts() const { return static_cast<unsigned>(Stmts.size()); }

  /// \returns the StmtId carrying numeric label \p Label, or InvalidStmt.
  StmtId findLabel(int Label) const;

  /// Resolves GOTO/IF-GOTO targets and matches DO/ENDDO pairs. Reports
  /// unresolved labels and unbalanced DO nesting to \p Diags.
  /// \returns true on success.
  bool finalize(DiagnosticEngine &Diags);

  /// True once finalize() succeeded.
  bool isFinalized() const { return Finalized; }

private:
  std::string Name;
  std::vector<Symbol> Symbols;
  std::vector<VarId> Params;
  std::vector<std::unique_ptr<Expr>> Arena;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::map<int, StmtId> LabelMap;
  bool Finalized = false;
};

/// A whole program: a set of procedures and a designated entry point.
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// Creates and registers an empty function. Names are case-insensitive
  /// and must be unique; returns null and reports to \p Diags otherwise.
  Function *createFunction(std::string Name, DiagnosticEngine &Diags);

  /// \returns the function named \p Name (case-insensitive), or null.
  Function *findFunction(std::string_view Name);
  const Function *findFunction(std::string_view Name) const;

  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// The program entry procedure ("main" unless overridden).
  const std::string &entryName() const { return Entry; }
  void setEntryName(std::string Name) { Entry = std::move(Name); }
  Function *entry() { return findFunction(Entry); }
  const Function *entry() const { return findFunction(Entry); }

  /// Finalizes every function. \returns true if all succeeded.
  bool finalize(DiagnosticEngine &Diags);

private:
  std::vector<std::unique_ptr<Function>> Funcs;
  std::string Entry = "main";
};

} // namespace ptran

#endif // PTRAN_IR_FUNCTION_H
