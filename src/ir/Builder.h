//===--- ir/Builder.h - Programmatic MiniIR construction -------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fluent builder for constructing MiniIR procedures without going
/// through the parser. Tests, workload generators and examples use this to
/// assemble programs (including the paper's Figure 1 fragment) directly.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_BUILDER_H
#define PTRAN_IR_BUILDER_H

#include "ir/Function.h"

namespace ptran {

/// Builds one Function inside a Program. Typical usage:
/// \code
///   Program P;
///   DiagnosticEngine Diags;
///   FunctionBuilder B(P, "main", Diags);
///   VarId N = B.intVar("n");
///   B.assign(N, B.lit(10));
///   B.label(10);
///   B.ifGoto(B.lt(B.var(N), B.lit(0)), 20);
///   ...
///   B.finish();
/// \endcode
class FunctionBuilder {
public:
  /// Creates the function \p Name in \p P. Errors (duplicate names) go to
  /// \p Diags; the builder then becomes inert and finish() returns null.
  FunctionBuilder(Program &P, std::string Name, DiagnosticEngine &Diags);

  /// -- Declarations -----------------------------------------------------

  VarId intVar(std::string Name);
  VarId realVar(std::string Name);
  VarId intArray(std::string Name, std::vector<int64_t> Dims);
  VarId realArray(std::string Name, std::vector<int64_t> Dims);

  /// Declares an integer scalar parameter (by reference).
  VarId intParam(std::string Name);
  /// Declares a real scalar parameter (by reference).
  VarId realParam(std::string Name);
  /// Declares a real array parameter of the given shape.
  VarId realArrayParam(std::string Name, std::vector<int64_t> Dims);
  /// Declares an integer array parameter of the given shape.
  VarId intArrayParam(std::string Name, std::vector<int64_t> Dims);

  /// -- Expressions ------------------------------------------------------

  Expr *lit(int64_t V);
  Expr *lit(int V) { return lit(static_cast<int64_t>(V)); }
  Expr *lit(double V);
  Expr *var(VarId V);
  /// Looks a variable up by name; the name must be declared.
  Expr *var(std::string_view Name);
  /// An array element reference a(i) or a(i, j).
  Expr *idx(VarId Array, Expr *I, Expr *J = nullptr);

  Expr *add(Expr *L, Expr *R) { return binary(BinaryOp::Add, L, R); }
  Expr *sub(Expr *L, Expr *R) { return binary(BinaryOp::Sub, L, R); }
  Expr *mul(Expr *L, Expr *R) { return binary(BinaryOp::Mul, L, R); }
  Expr *div(Expr *L, Expr *R) { return binary(BinaryOp::Div, L, R); }
  Expr *pow(Expr *L, Expr *R) { return binary(BinaryOp::Pow, L, R); }
  Expr *lt(Expr *L, Expr *R) { return binary(BinaryOp::Lt, L, R); }
  Expr *le(Expr *L, Expr *R) { return binary(BinaryOp::Le, L, R); }
  Expr *gt(Expr *L, Expr *R) { return binary(BinaryOp::Gt, L, R); }
  Expr *ge(Expr *L, Expr *R) { return binary(BinaryOp::Ge, L, R); }
  Expr *eq(Expr *L, Expr *R) { return binary(BinaryOp::Eq, L, R); }
  Expr *ne(Expr *L, Expr *R) { return binary(BinaryOp::Ne, L, R); }
  Expr *logicalAnd(Expr *L, Expr *R) { return binary(BinaryOp::And, L, R); }
  Expr *logicalOr(Expr *L, Expr *R) { return binary(BinaryOp::Or, L, R); }
  Expr *neg(Expr *E);
  Expr *logicalNot(Expr *E);
  Expr *intrinsic(Intrinsic Fn, std::vector<Expr *> Args);
  Expr *binary(BinaryOp Op, Expr *L, Expr *R);

  /// -- Statements -------------------------------------------------------

  /// Attaches numeric label \p L to the next appended statement.
  FunctionBuilder &label(int L);

  StmtId assign(VarId Target, Expr *Value);
  StmtId assign(LValue Target, Expr *Value);
  /// Assignment to a 1-D or 2-D array element.
  StmtId assignElem(VarId Array, Expr *I, Expr *Value);
  StmtId assignElem(VarId Array, Expr *I, Expr *J, Expr *Value);
  StmtId ifGoto(Expr *Cond, int TargetLabel);
  StmtId gotoLabel(int TargetLabel);
  /// `GOTO (l1, ..., ln), index` — the n-way computed GOTO.
  StmtId computedGoto(Expr *Index, std::vector<int> TargetLabels);
  StmtId doLoop(VarId Index, Expr *Lo, Expr *Hi, Expr *Step = nullptr);
  StmtId endDo();
  StmtId callSub(std::string Callee, std::vector<Expr *> Args);
  StmtId ret();
  StmtId cont();
  StmtId print(std::vector<Expr *> Args);

  /// Finalizes the function (resolves labels and DO nesting).
  /// \returns the function, or null if construction or finalize failed.
  Function *finish();

  /// The function under construction (may be null after a name clash).
  Function *function() { return F; }

private:
  VarId declare(std::string Name, Type Ty, std::vector<int64_t> Dims,
                bool IsParam);
  StmtId appendStmt(std::unique_ptr<Stmt> S);

  Function *F = nullptr;
  DiagnosticEngine &Diags;
  int PendingLabel = 0;
};

} // namespace ptran

#endif // PTRAN_IR_BUILDER_H
