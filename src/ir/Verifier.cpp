//===--- ir/Verifier.cpp - MiniIR verifier and type checker ---------------===//

#include "ir/Verifier.h"

#include "support/Casting.h"
#include "support/FatalError.h"

#include <string>

using namespace ptran;

namespace {

/// Walks one function, checking uses and computing expression types.
class FunctionVerifier {
public:
  FunctionVerifier(Function &F, const Program *P, DiagnosticEngine &Diags)
      : F(F), Prog(P), Diags(Diags) {}

  bool run();

private:
  /// Type-checks \p E, annotating it; returns its type. Emits diagnostics
  /// for malformed subtrees and returns Integer as a recovery type.
  Type check(Expr *E);

  void checkLValue(const LValue &L, SourceLoc Loc);
  void checkStmt(Stmt *S);

  void error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message) + " in procedure " + F.name());
  }

  Function &F;
  const Program *Prog;
  DiagnosticEngine &Diags;
};

bool FunctionVerifier::run() {
  unsigned Before = Diags.errorCount();
  if (!F.isFinalized()) {
    error(SourceLoc(), "procedure was not finalized before verification");
    return false;
  }
  for (StmtId I = 0; I < F.numStmts(); ++I)
    checkStmt(F.stmt(I));
  return Diags.errorCount() == Before;
}

Type FunctionVerifier::check(Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    E->setType(Type::Integer);
    return Type::Integer;
  case ExprKind::RealLiteral:
    E->setType(Type::Real);
    return Type::Real;
  case ExprKind::VarRef: {
    auto *V = cast<VarRef>(E);
    if (V->var() >= F.numSymbols()) {
      error(E->loc(), "reference to undeclared variable id");
      return Type::Integer;
    }
    const Symbol &Sym = F.symbol(V->var());
    if (Sym.isArray())
      error(E->loc(), "array " + Sym.Name + " used without subscripts");
    E->setType(Sym.Ty);
    return Sym.Ty;
  }
  case ExprKind::ArrayRef: {
    auto *A = cast<ArrayRef>(E);
    if (A->var() >= F.numSymbols()) {
      error(E->loc(), "reference to undeclared variable id");
      return Type::Integer;
    }
    const Symbol &Sym = F.symbol(A->var());
    if (!Sym.isArray())
      error(E->loc(), "scalar " + Sym.Name + " used with subscripts");
    else if (Sym.Dims.size() != A->indices().size())
      error(E->loc(), "array " + Sym.Name + " expects " +
                          std::to_string(Sym.Dims.size()) +
                          " subscripts, got " +
                          std::to_string(A->indices().size()));
    for (Expr *Idx : A->indices())
      if (check(Idx) != Type::Integer)
        error(Idx->loc(), "array subscript must be integer");
    E->setType(Sym.Ty);
    return Sym.Ty;
  }
  case ExprKind::Unary: {
    auto *U = cast<UnaryExpr>(E);
    Type Sub = check(U->operand());
    if (U->op() == UnaryOp::Neg) {
      if (Sub == Type::Logical)
        error(E->loc(), "cannot negate a logical value arithmetically");
      E->setType(Sub == Type::Logical ? Type::Integer : Sub);
    } else { // Not
      if (Sub != Type::Logical)
        error(E->loc(), ".NOT. requires a logical operand");
      E->setType(Type::Logical);
    }
    return E->type();
  }
  case ExprKind::Binary: {
    auto *B = cast<BinaryExpr>(E);
    Type L = check(B->lhs());
    Type R = check(B->rhs());
    if (isLogicalOp(B->op())) {
      if (L != Type::Logical || R != Type::Logical)
        error(E->loc(), ".AND./.OR. require logical operands");
      E->setType(Type::Logical);
    } else if (isComparison(B->op())) {
      if (L == Type::Logical || R == Type::Logical)
        error(E->loc(), "comparisons require numeric operands");
      E->setType(Type::Logical);
    } else {
      if (L == Type::Logical || R == Type::Logical)
        error(E->loc(), "arithmetic requires numeric operands");
      E->setType(promote(L == Type::Logical ? Type::Integer : L,
                         R == Type::Logical ? Type::Integer : R));
    }
    return E->type();
  }
  case ExprKind::Intrinsic: {
    auto *I = cast<IntrinsicExpr>(E);
    Type Arg = Type::Integer;
    bool First = true;
    for (Expr *A : I->args()) {
      Type T = check(A);
      if (T == Type::Logical)
        error(A->loc(), "intrinsic arguments must be numeric");
      Arg = First ? T : promote(Arg, T);
      First = false;
    }
    size_t N = I->args().size();
    switch (I->fn()) {
    case Intrinsic::Abs:
    case Intrinsic::Sqrt:
    case Intrinsic::Exp:
    case Intrinsic::Log:
    case Intrinsic::Sin:
    case Intrinsic::Cos:
    case Intrinsic::Real:
    case Intrinsic::Int:
      if (N != 1)
        error(E->loc(), std::string(intrinsicName(I->fn())) +
                            " expects exactly one argument");
      break;
    case Intrinsic::Mod:
      if (N != 2)
        error(E->loc(), "MOD expects exactly two arguments");
      break;
    case Intrinsic::Min:
    case Intrinsic::Max:
      if (N < 2)
        error(E->loc(), std::string(intrinsicName(I->fn())) +
                            " expects at least two arguments");
      break;
    }
    switch (I->fn()) {
    case Intrinsic::Abs:
    case Intrinsic::Min:
    case Intrinsic::Max:
    case Intrinsic::Mod:
      E->setType(Arg);
      break;
    case Intrinsic::Sqrt:
    case Intrinsic::Exp:
    case Intrinsic::Log:
    case Intrinsic::Sin:
    case Intrinsic::Cos:
    case Intrinsic::Real:
      E->setType(Type::Real);
      break;
    case Intrinsic::Int:
      E->setType(Type::Integer);
      break;
    }
    return E->type();
  }
  }
  PTRAN_UNREACHABLE("unknown ExprKind");
}

void FunctionVerifier::checkLValue(const LValue &L, SourceLoc Loc) {
  if (L.Var >= F.numSymbols()) {
    error(Loc, "assignment to undeclared variable id");
    return;
  }
  const Symbol &Sym = F.symbol(L.Var);
  if (Sym.isArray() != L.isArrayElement()) {
    error(Loc, Sym.isArray()
                   ? "array " + Sym.Name + " assigned without subscripts"
                   : "scalar " + Sym.Name + " assigned with subscripts");
    return;
  }
  if (L.isArrayElement() && Sym.Dims.size() != L.Indices.size())
    error(Loc, "array " + Sym.Name + " expects " +
                   std::to_string(Sym.Dims.size()) + " subscripts");
  for (Expr *Idx : L.Indices)
    if (check(Idx) != Type::Integer)
      error(Idx->loc(), "array subscript must be integer");
}

void FunctionVerifier::checkStmt(Stmt *S) {
  switch (S->kind()) {
  case StmtKind::Assign: {
    auto *A = cast<AssignStmt>(S);
    checkLValue(A->target(), S->loc());
    if (check(A->value()) == Type::Logical)
      error(S->loc(), "cannot assign a logical value to a numeric variable");
    break;
  }
  case StmtKind::IfGoto: {
    auto *I = cast<IfGotoStmt>(S);
    if (check(I->cond()) != Type::Logical)
      error(S->loc(), "IF condition must be logical");
    assert(I->target() != InvalidStmt && "finalize resolved all targets");
    break;
  }
  case StmtKind::Goto:
    assert(cast<GotoStmt>(S)->target() != InvalidStmt &&
           "finalize resolved all targets");
    break;
  case StmtKind::ComputedGoto: {
    auto *Cg = cast<ComputedGotoStmt>(S);
    if (Cg->targetLabels().empty())
      error(S->loc(), "computed GOTO needs at least one target");
    if (check(Cg->index()) != Type::Integer)
      error(S->loc(), "computed GOTO index must be integer");
    break;
  }
  case StmtKind::DoStart: {
    auto *D = cast<DoStmt>(S);
    if (D->indexVar() >= F.numSymbols()) {
      error(S->loc(), "DO index variable not declared");
      break;
    }
    const Symbol &Sym = F.symbol(D->indexVar());
    if (Sym.Ty != Type::Integer || Sym.isArray())
      error(S->loc(), "DO index " + Sym.Name + " must be an integer scalar");
    if (check(D->lo()) != Type::Integer)
      error(S->loc(), "DO lower bound must be integer");
    if (check(D->hi()) != Type::Integer)
      error(S->loc(), "DO upper bound must be integer");
    if (D->step() && check(D->step()) != Type::Integer)
      error(S->loc(), "DO step must be integer");
    break;
  }
  case StmtKind::DoEnd:
    break;
  case StmtKind::Call: {
    auto *C = cast<CallStmt>(S);
    for (Expr *A : C->args()) {
      // Whole-array arguments are legal in calls (passed by reference), so
      // bypass the scalar-use check for them.
      if (auto *V = dyn_cast<VarRef>(A); V && V->var() < F.numSymbols() &&
                                         F.symbol(V->var()).isArray()) {
        A->setType(F.symbol(V->var()).Ty);
        continue;
      }
      if (check(A) == Type::Logical)
        error(A->loc(), "logical values cannot be passed as arguments");
    }
    if (!Prog)
      break;
    const Function *Callee = Prog->findFunction(C->callee());
    if (!Callee) {
      error(S->loc(), "call to undefined procedure " + C->callee());
      break;
    }
    if (Callee->params().size() != C->args().size()) {
      error(S->loc(), "procedure " + C->callee() + " expects " +
                          std::to_string(Callee->params().size()) +
                          " arguments, got " +
                          std::to_string(C->args().size()));
      break;
    }
    // Array parameters require whole-array arguments of matching shape.
    for (size_t I = 0; I < C->args().size(); ++I) {
      const Symbol &Param = Callee->symbol(Callee->params()[I]);
      const Expr *Arg = C->args()[I];
      if (!Param.isArray())
        continue;
      const auto *V = dyn_cast<VarRef>(Arg);
      if (!V || !F.symbol(V->var()).isArray())
        error(Arg->loc(), "argument " + std::to_string(I + 1) + " of " +
                              C->callee() + " must be a whole array");
    }
    break;
  }
  case StmtKind::Return:
  case StmtKind::Continue:
    break;
  case StmtKind::Print:
    for (Expr *A : cast<PrintStmt>(S)->args())
      check(A);
    break;
  }
}

} // namespace

bool ptran::verifyFunction(Function &F, const Program *P,
                           DiagnosticEngine &Diags) {
  return FunctionVerifier(F, P, Diags).run();
}

bool ptran::verifyProgram(Program &P, DiagnosticEngine &Diags) {
  bool Ok = true;
  if (!P.entry()) {
    Diags.error("program has no entry procedure named '" + P.entryName() +
                "'");
    Ok = false;
  }
  for (const auto &F : P.functions())
    Ok &= verifyFunction(*F, &P, Diags);
  return Ok;
}
