//===--- ir/Printer.cpp - MiniIR pretty printer ---------------------------===//

#include "ir/Printer.h"

#include "support/Casting.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace ptran;

namespace {

/// Binding strength for parenthesization, loosest first.
int precedence(const Expr *E) {
  if (const auto *B = dyn_cast<BinaryExpr>(E)) {
    switch (B->op()) {
    case BinaryOp::Or:
      return 1;
    case BinaryOp::And:
      return 2;
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      return 3;
    case BinaryOp::Add:
    case BinaryOp::Sub:
      return 4;
    case BinaryOp::Mul:
    case BinaryOp::Div:
      return 5;
    case BinaryOp::Pow:
      return 6;
    }
  }
  if (isa<UnaryExpr>(E))
    return 7;
  return 8; // Leaves never need parentheses.
}

void printExprInto(const Function &F, const Expr *E, std::ostringstream &OS,
                   int ParentPrec) {
  int Prec = precedence(E);
  bool Paren = Prec < ParentPrec;
  if (Paren)
    OS << '(';

  switch (E->kind()) {
  case ExprKind::IntLiteral:
    OS << cast<IntLiteral>(E)->value();
    break;
  case ExprKind::RealLiteral: {
    double V = cast<RealLiteral>(E)->value();
    std::string Text = formatDouble(V);
    OS << Text;
    // Keep real literals lexically real on round trips.
    if (Text.find('.') == std::string::npos &&
        Text.find('e') == std::string::npos &&
        Text.find("inf") == std::string::npos &&
        Text.find("nan") == std::string::npos)
      OS << ".0";
    break;
  }
  case ExprKind::VarRef:
    OS << F.symbol(cast<VarRef>(E)->var()).Name;
    break;
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    OS << F.symbol(A->var()).Name << '(';
    for (size_t I = 0; I < A->indices().size(); ++I) {
      if (I != 0)
        OS << ", ";
      printExprInto(F, A->indices()[I], OS, 0);
    }
    OS << ')';
    break;
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    OS << (U->op() == UnaryOp::Neg ? "-" : ".NOT. ");
    printExprInto(F, U->operand(), OS, Prec);
    break;
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    printExprInto(F, B->lhs(), OS, Prec);
    const char *Spelling = binaryOpSpelling(B->op());
    if (isComparison(B->op()) || isLogicalOp(B->op()))
      OS << ' ' << Spelling << ' ';
    else
      OS << ' ' << Spelling << ' ';
    // Right operand of a left-associative operator needs parens at equal
    // precedence.
    printExprInto(F, B->rhs(), OS, Prec + 1);
    break;
  }
  case ExprKind::Intrinsic: {
    const auto *I = cast<IntrinsicExpr>(E);
    OS << intrinsicName(I->fn()) << '(';
    for (size_t A = 0; A < I->args().size(); ++A) {
      if (A != 0)
        OS << ", ";
      printExprInto(F, I->args()[A], OS, 0);
    }
    OS << ')';
    break;
  }
  }

  if (Paren)
    OS << ')';
}

std::string printLValue(const Function &F, const LValue &L) {
  std::ostringstream OS;
  OS << F.symbol(L.Var).Name;
  if (L.isArrayElement()) {
    OS << '(';
    for (size_t I = 0; I < L.Indices.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(F, L.Indices[I]);
    }
    OS << ')';
  }
  return OS.str();
}

} // namespace

std::string ptran::printExpr(const Function &F, const Expr *E) {
  std::ostringstream OS;
  printExprInto(F, E, OS, 0);
  return OS.str();
}

namespace {

/// Maps compiler-generated labels (>= FirstCompilerLabel) to fresh labels
/// in the user range so that printed output reparses. User labels print
/// unchanged.
class LabelRewriter {
public:
  explicit LabelRewriter(const Function &F) {
    int MaxUser = 0;
    for (StmtId I = 0; I < F.numStmts(); ++I) {
      int L = F.stmt(I)->label();
      if (L > 0 && L < FirstCompilerLabel)
        MaxUser = std::max(MaxUser, L);
    }
    Next = MaxUser + 10;
    for (StmtId I = 0; I < F.numStmts(); ++I) {
      int L = F.stmt(I)->label();
      if (L >= FirstCompilerLabel && !Map.count(L)) {
        Map[L] = Next;
        Next += 10;
      }
    }
  }

  int operator()(int Label) const {
    auto It = Map.find(Label);
    return It == Map.end() ? Label : It->second;
  }

private:
  std::map<int, int> Map;
  int Next = 10;
};

} // namespace

static std::string printStmtImpl(const Function &F, const Stmt *S,
                                 const LabelRewriter &Rewrite) {
  std::ostringstream OS;
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << printLValue(F, A->target()) << " = " << printExpr(F, A->value());
    break;
  }
  case StmtKind::IfGoto: {
    const auto *I = cast<IfGotoStmt>(S);
    OS << "IF (" << printExpr(F, I->cond()) << ") GOTO "
       << Rewrite(I->targetLabel());
    break;
  }
  case StmtKind::Goto:
    OS << "GOTO " << Rewrite(cast<GotoStmt>(S)->targetLabel());
    break;
  case StmtKind::ComputedGoto: {
    const auto *Cg = cast<ComputedGotoStmt>(S);
    OS << "GOTO (";
    for (size_t K = 0; K < Cg->targetLabels().size(); ++K) {
      if (K != 0)
        OS << ", ";
      OS << Rewrite(Cg->targetLabels()[K]);
    }
    OS << "), " << printExpr(F, Cg->index());
    break;
  }
  case StmtKind::DoStart: {
    const auto *D = cast<DoStmt>(S);
    OS << "DO " << F.symbol(D->indexVar()).Name << " = "
       << printExpr(F, D->lo()) << ", " << printExpr(F, D->hi());
    if (D->step())
      OS << ", " << printExpr(F, D->step());
    break;
  }
  case StmtKind::DoEnd:
    OS << "ENDDO";
    break;
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    OS << "CALL " << C->callee() << '(';
    for (size_t I = 0; I < C->args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(F, C->args()[I]);
    }
    OS << ')';
    break;
  }
  case StmtKind::Return:
    OS << "RETURN";
    break;
  case StmtKind::Continue:
    OS << "CONTINUE";
    break;
  case StmtKind::Print: {
    const auto *P = cast<PrintStmt>(S);
    OS << "PRINT ";
    for (size_t I = 0; I < P->args().size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << printExpr(F, P->args()[I]);
    }
    break;
  }
  }
  return OS.str();
}

std::string ptran::printStmt(const Function &F, const Stmt *S) {
  return printStmtImpl(F, S, LabelRewriter(F));
}

int ptran::printedLabel(const Function &F, int Label) {
  return LabelRewriter(F)(Label);
}

std::string ptran::printFunction(const Function &F) {
  std::ostringstream OS;
  OS << "subroutine " << F.name() << '(';
  for (size_t I = 0; I < F.params().size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << F.symbol(F.params()[I]).Name;
  }
  OS << ")\n";

  for (VarId V = 0; V < F.numSymbols(); ++V) {
    const Symbol &Sym = F.symbol(V);
    OS << "  " << typeName(Sym.Ty) << ' ' << Sym.Name;
    if (Sym.isArray()) {
      OS << '(';
      for (size_t D = 0; D < Sym.Dims.size(); ++D) {
        if (D != 0)
          OS << ", ";
        OS << Sym.Dims[D];
      }
      OS << ')';
    }
    OS << '\n';
  }

  LabelRewriter Rewrite(F);
  for (StmtId I = 0; I < F.numStmts(); ++I) {
    const Stmt *S = F.stmt(I);
    if (S->label() != 0)
      OS << Rewrite(S->label()) << ' ';
    else
      OS << "  ";
    OS << printStmtImpl(F, S, Rewrite) << '\n';
  }
  OS << "end\n";
  return OS.str();
}

std::string ptran::printProgram(const Program &P) {
  std::vector<std::string> Parts;
  for (const auto &F : P.functions())
    Parts.push_back(printFunction(*F));
  return join(Parts, "\n");
}
