//===--- ir/Type.h - MiniIR scalar types ------------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar types of the MiniIR, the Fortran-77-flavoured statement-level
/// representation the analyses run on. The paper's framework only observes
/// statement-level control flow, so two numeric types plus a logical type
/// for branch conditions suffice to express the LOOPS / SIMPLE workloads.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_TYPE_H
#define PTRAN_IR_TYPE_H

namespace ptran {

/// Scalar type of an expression or variable.
enum class Type {
  Integer, ///< 64-bit signed integer (Fortran INTEGER).
  Real,    ///< Double-precision float (Fortran REAL/DOUBLE PRECISION).
  Logical, ///< Boolean; only produced by comparisons and .AND./.OR./.NOT.
};

/// \returns a stable lower-case name ("integer", "real", "logical").
const char *typeName(Type T);

/// Usual arithmetic promotion: Real wins over Integer.
inline Type promote(Type A, Type B) {
  return (A == Type::Real || B == Type::Real) ? Type::Real : Type::Integer;
}

} // namespace ptran

#endif // PTRAN_IR_TYPE_H
