//===--- ir/Printer.h - MiniIR pretty printer -------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders MiniIR back to mini-language source text. Used by tests
/// (round-tripping), examples and debugging dumps.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_PRINTER_H
#define PTRAN_IR_PRINTER_H

#include "ir/Function.h"

#include <string>

namespace ptran {

/// Renders a single expression.
std::string printExpr(const Function &F, const Expr *E);

/// Renders one statement (without its label prefix or newline).
std::string printStmt(const Function &F, const Stmt *S);

/// The label value printStmt/printFunction display for \p Label:
/// compiler-generated labels are renumbered into the user range so that
/// printed programs reparse. User labels pass through unchanged.
int printedLabel(const Function &F, int Label);

/// Renders a whole function, declarations included.
std::string printFunction(const Function &F);

/// Renders a whole program.
std::string printProgram(const Program &P);

} // namespace ptran

#endif // PTRAN_IR_PRINTER_H
