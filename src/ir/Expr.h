//===--- ir/Expr.h - MiniIR expression trees --------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expression trees for the MiniIR. Expressions are immutable once built
/// and are owned by the enclosing Function's arena; statements hold raw
/// `Expr *` pointers into that arena. The hierarchy uses LLVM-style
/// isa/cast/dyn_cast dispatch via ExprKind.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_EXPR_H
#define PTRAN_IR_EXPR_H

#include "ir/Type.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ptran {

/// Index of a variable in its Function's symbol table.
using VarId = unsigned;

/// Discriminator for the Expr hierarchy.
enum class ExprKind {
  IntLiteral,
  RealLiteral,
  VarRef,
  ArrayRef,
  Unary,
  Binary,
  Intrinsic,
};

/// Base class of all MiniIR expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Static type of the expression; filled in by the verifier/type checker
  /// (Type::Integer until then for literals-free nodes).
  Type type() const { return Ty; }
  void setType(Type T) { Ty = T; }

  virtual ~Expr() = default;

protected:
  Expr(ExprKind K, SourceLoc L, Type T) : Kind(K), Loc(L), Ty(T) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  Type Ty;
};

/// An integer literal, e.g. `42`.
class IntLiteral : public Expr {
public:
  IntLiteral(int64_t V, SourceLoc L)
      : Expr(ExprKind::IntLiteral, L, Type::Integer), Value(V) {}

  int64_t value() const { return Value; }

  /// Experiment drivers may re-parameterize a program between runs (e.g.
  /// a fresh random seed) without changing its shape; the analyses only
  /// see the literal's position, not its value.
  void setValue(int64_t V) { Value = V; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IntLiteral;
  }

private:
  int64_t Value;
};

/// A real literal, e.g. `3.5`.
class RealLiteral : public Expr {
public:
  RealLiteral(double V, SourceLoc L)
      : Expr(ExprKind::RealLiteral, L, Type::Real), Value(V) {}

  double value() const { return Value; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::RealLiteral;
  }

private:
  double Value;
};

/// A scalar variable reference.
class VarRef : public Expr {
public:
  VarRef(VarId V, SourceLoc L)
      : Expr(ExprKind::VarRef, L, Type::Integer), Var(V) {}

  VarId var() const { return Var; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  VarId Var;
};

/// An array element reference with one or two index expressions.
class ArrayRef : public Expr {
public:
  ArrayRef(VarId V, std::vector<Expr *> Indices, SourceLoc L)
      : Expr(ExprKind::ArrayRef, L, Type::Integer), Var(V),
        Idx(std::move(Indices)) {}

  VarId var() const { return Var; }
  const std::vector<Expr *> &indices() const { return Idx; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }

private:
  VarId Var;
  std::vector<Expr *> Idx;
};

/// Unary operators.
enum class UnaryOp { Neg, Not };

/// A unary expression: -x or .NOT. x.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp O, Expr *Operand, SourceLoc L)
      : Expr(ExprKind::Unary, L, Type::Integer), Op(O), Sub(Operand) {}

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  UnaryOp Op;
  Expr *Sub;
};

/// Binary operators, covering arithmetic, comparison and logical forms.
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Pow,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

/// True for .LT. .LE. .GT. .GE. .EQ. .NE.
bool isComparison(BinaryOp Op);
/// True for .AND. / .OR.
bool isLogicalOp(BinaryOp Op);
/// Fortran-style spelling, e.g. ".LT." or "+".
const char *binaryOpSpelling(BinaryOp Op);

/// A binary expression.
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp O, Expr *L, Expr *R, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc, Type::Integer), Op(O), Lhs(L), Rhs(R) {}

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return Lhs; }
  Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
};

/// Intrinsic functions available in expressions.
enum class Intrinsic {
  Abs,
  Min,
  Max,
  Mod,
  Sqrt,
  Exp,
  Log,
  Sin,
  Cos,
  Real, ///< INTEGER -> REAL conversion.
  Int,  ///< REAL -> INTEGER truncation.
};

/// Spelling of an intrinsic, e.g. "SQRT".
const char *intrinsicName(Intrinsic I);

/// An intrinsic call expression, e.g. SQRT(X) or MIN(A, B, C).
class IntrinsicExpr : public Expr {
public:
  IntrinsicExpr(Intrinsic Fn, std::vector<Expr *> Args, SourceLoc L)
      : Expr(ExprKind::Intrinsic, L, Type::Integer), Fn(Fn),
        Arguments(std::move(Args)) {}

  Intrinsic fn() const { return Fn; }
  const std::vector<Expr *> &args() const { return Arguments; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::Intrinsic;
  }

private:
  Intrinsic Fn;
  std::vector<Expr *> Arguments;
};

} // namespace ptran

#endif // PTRAN_IR_EXPR_H
