//===--- ir/ConstFold.h - Compile-time expression evaluation ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding over MiniIR expressions: evaluates literal-only
/// subtrees (arithmetic, comparisons, logical operators and the pure
/// intrinsics). Used by the compile-time frequency analysis Section 3
/// sketches — IF conditions "that can be computed at compile-time" and DO
/// loops with constant bounds.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_CONSTFOLD_H
#define PTRAN_IR_CONSTFOLD_H

#include "ir/Function.h"

#include <map>
#include <optional>

namespace ptran {

/// A folded compile-time value.
struct FoldedValue {
  Type Ty = Type::Integer;
  int64_t I = 0;
  double R = 0.0;

  double asReal() const {
    return Ty == Type::Real ? R : static_cast<double>(I);
  }
  bool asBool() const { return Ty == Type::Real ? R != 0.0 : I != 0; }
};

/// Evaluates \p E if it contains only literals; std::nullopt otherwise
/// (also on folds that would fault, e.g. division by zero).
std::optional<FoldedValue> foldConstant(const Expr *E);

/// Like foldConstant, but scalar variable references may resolve through
/// \p Env (e.g. the single-constant-assignment environment the static
/// frequency analysis derives). Null \p Env behaves like foldConstant.
std::optional<FoldedValue>
foldConstant(const Expr *E, const std::map<VarId, FoldedValue> *Env);

/// Scalars of \p F that are assigned exactly once, by a foldable constant,
/// and never exposed to mutation by reference (no whole-variable CALL
/// argument, no DO index use). Sound for estimation purposes: any read
/// observes either that constant or the zero initialization.
std::map<VarId, FoldedValue> singleConstantAssignments(const Function &F);

} // namespace ptran

#endif // PTRAN_IR_CONSTFOLD_H
