//===--- ir/Verifier.h - MiniIR verifier and type checker ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and type verification of MiniIR programs: every variable
/// reference is declared and used with the right shape, branch conditions
/// are logical, DO index variables are integer scalars, CALLs match their
/// callee's parameter list, and every procedure can terminate. Also fills
/// in the static Type of every expression (needed by the interpreter).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_VERIFIER_H
#define PTRAN_IR_VERIFIER_H

#include "ir/Function.h"

namespace ptran {

/// Verifies and type-annotates \p P. Reports problems to \p Diags.
/// \returns true if the program is well formed.
bool verifyProgram(Program &P, DiagnosticEngine &Diags);

/// Verifies a single function against its program (for call checking;
/// \p P may be null to skip call signature checks).
bool verifyFunction(Function &F, const Program *P, DiagnosticEngine &Diags);

} // namespace ptran

#endif // PTRAN_IR_VERIFIER_H
