//===--- ir/Builder.cpp - Programmatic MiniIR construction ----------------===//

#include "ir/Builder.h"

#include "support/FatalError.h"

#include <cassert>

using namespace ptran;

FunctionBuilder::FunctionBuilder(Program &P, std::string Name,
                                 DiagnosticEngine &Diags)
    : Diags(Diags) {
  F = P.createFunction(std::move(Name), Diags);
}

VarId FunctionBuilder::declare(std::string Name, Type Ty,
                               std::vector<int64_t> Dims, bool IsParam) {
  assert(F && "builder is inert after a construction failure");
  if (F->lookup(Name) != static_cast<VarId>(-1))
    Diags.error("duplicate variable " + Name + " in procedure " + F->name());
  Symbol Sym;
  Sym.Name = std::move(Name);
  Sym.Ty = Ty;
  Sym.Dims = std::move(Dims);
  Sym.IsParam = IsParam;
  VarId V = F->declare(std::move(Sym));
  if (IsParam)
    F->addParam(V);
  return V;
}

VarId FunctionBuilder::intVar(std::string Name) {
  return declare(std::move(Name), Type::Integer, {}, false);
}

VarId FunctionBuilder::realVar(std::string Name) {
  return declare(std::move(Name), Type::Real, {}, false);
}

VarId FunctionBuilder::intArray(std::string Name, std::vector<int64_t> Dims) {
  return declare(std::move(Name), Type::Integer, std::move(Dims), false);
}

VarId FunctionBuilder::realArray(std::string Name, std::vector<int64_t> Dims) {
  return declare(std::move(Name), Type::Real, std::move(Dims), false);
}

VarId FunctionBuilder::intParam(std::string Name) {
  return declare(std::move(Name), Type::Integer, {}, true);
}

VarId FunctionBuilder::realParam(std::string Name) {
  return declare(std::move(Name), Type::Real, {}, true);
}

VarId FunctionBuilder::realArrayParam(std::string Name,
                                      std::vector<int64_t> Dims) {
  return declare(std::move(Name), Type::Real, std::move(Dims), true);
}

VarId FunctionBuilder::intArrayParam(std::string Name,
                                     std::vector<int64_t> Dims) {
  return declare(std::move(Name), Type::Integer, std::move(Dims), true);
}

Expr *FunctionBuilder::lit(int64_t V) {
  return F->make<IntLiteral>(V, SourceLoc());
}

Expr *FunctionBuilder::lit(double V) {
  return F->make<RealLiteral>(V, SourceLoc());
}

Expr *FunctionBuilder::var(VarId V) { return F->make<VarRef>(V, SourceLoc()); }

Expr *FunctionBuilder::var(std::string_view Name) {
  VarId V = F->lookup(Name);
  if (V == static_cast<VarId>(-1)) {
    Diags.error("reference to undeclared variable " + std::string(Name) +
                " in procedure " + F->name());
    V = 0;
  }
  return var(V);
}

Expr *FunctionBuilder::idx(VarId Array, Expr *I, Expr *J) {
  std::vector<Expr *> Indices = {I};
  if (J)
    Indices.push_back(J);
  return F->make<ArrayRef>(Array, std::move(Indices), SourceLoc());
}

Expr *FunctionBuilder::neg(Expr *E) {
  return F->make<UnaryExpr>(UnaryOp::Neg, E, SourceLoc());
}

Expr *FunctionBuilder::logicalNot(Expr *E) {
  return F->make<UnaryExpr>(UnaryOp::Not, E, SourceLoc());
}

Expr *FunctionBuilder::intrinsic(Intrinsic Fn, std::vector<Expr *> Args) {
  return F->make<IntrinsicExpr>(Fn, std::move(Args), SourceLoc());
}

Expr *FunctionBuilder::binary(BinaryOp Op, Expr *L, Expr *R) {
  return F->make<BinaryExpr>(Op, L, R, SourceLoc());
}

FunctionBuilder &FunctionBuilder::label(int L) {
  assert(L > 0 && "statement labels are positive");
  PendingLabel = L;
  return *this;
}

StmtId FunctionBuilder::appendStmt(std::unique_ptr<Stmt> S) {
  assert(F && "builder is inert after a construction failure");
  if (PendingLabel != 0) {
    S->setLabel(PendingLabel);
    PendingLabel = 0;
  }
  return F->append(std::move(S));
}

StmtId FunctionBuilder::assign(VarId Target, Expr *Value) {
  return assign(LValue{Target, {}}, Value);
}

StmtId FunctionBuilder::assign(LValue Target, Expr *Value) {
  return appendStmt(
      std::make_unique<AssignStmt>(std::move(Target), Value, SourceLoc()));
}

StmtId FunctionBuilder::assignElem(VarId Array, Expr *I, Expr *Value) {
  return assign(LValue{Array, {I}}, Value);
}

StmtId FunctionBuilder::assignElem(VarId Array, Expr *I, Expr *J,
                                   Expr *Value) {
  return assign(LValue{Array, {I, J}}, Value);
}

StmtId FunctionBuilder::ifGoto(Expr *Cond, int TargetLabel) {
  return appendStmt(
      std::make_unique<IfGotoStmt>(Cond, TargetLabel, SourceLoc()));
}

StmtId FunctionBuilder::gotoLabel(int TargetLabel) {
  return appendStmt(std::make_unique<GotoStmt>(TargetLabel, SourceLoc()));
}

StmtId FunctionBuilder::computedGoto(Expr *Index,
                                     std::vector<int> TargetLabels) {
  return appendStmt(std::make_unique<ComputedGotoStmt>(
      Index, std::move(TargetLabels), SourceLoc()));
}

StmtId FunctionBuilder::doLoop(VarId Index, Expr *Lo, Expr *Hi, Expr *Step) {
  return appendStmt(
      std::make_unique<DoStmt>(Index, Lo, Hi, Step, SourceLoc()));
}

StmtId FunctionBuilder::endDo() {
  return appendStmt(std::make_unique<EndDoStmt>(SourceLoc()));
}

StmtId FunctionBuilder::callSub(std::string Callee, std::vector<Expr *> Args) {
  return appendStmt(std::make_unique<CallStmt>(std::move(Callee),
                                               std::move(Args), SourceLoc()));
}

StmtId FunctionBuilder::ret() {
  return appendStmt(std::make_unique<ReturnStmt>(SourceLoc()));
}

StmtId FunctionBuilder::cont() {
  return appendStmt(std::make_unique<ContinueStmt>(SourceLoc()));
}

StmtId FunctionBuilder::print(std::vector<Expr *> Args) {
  return appendStmt(std::make_unique<PrintStmt>(std::move(Args), SourceLoc()));
}

Function *FunctionBuilder::finish() {
  if (!F)
    return nullptr;
  if (PendingLabel != 0) {
    Diags.error("dangling label " + std::to_string(PendingLabel) +
                " at end of procedure " + F->name());
    PendingLabel = 0;
    return nullptr;
  }
  if (!F->finalize(Diags))
    return nullptr;
  return F;
}
