//===--- ir/Stmt.h - MiniIR statements --------------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Statements of the MiniIR. A Function is a flat, ordered list of
/// statements with optional numeric labels, exactly the granularity at
/// which the paper builds its statement-level control flow graph
/// (Figure 1): assignments, logical IF-GOTOs, GOTOs, DO/ENDDO pairs,
/// CALLs, RETURNs, CONTINUEs and PRINTs.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_IR_STMT_H
#define PTRAN_IR_STMT_H

#include "ir/Expr.h"

#include <string>
#include <vector>

namespace ptran {

/// Index of a statement within its Function.
using StmtId = unsigned;
/// Sentinel for "no statement".
inline constexpr StmtId InvalidStmt = static_cast<StmtId>(-1);

/// First compiler-generated statement label. The front end restricts user
/// labels to values below this, so lowering of structured constructs can
/// allocate labels freely; the printer renumbers them back into the user
/// range so printed programs reparse.
inline constexpr int FirstCompilerLabel = 1000000;

/// Discriminator for the Stmt hierarchy.
enum class StmtKind {
  Assign,
  IfGoto,
  Goto,
  ComputedGoto,
  DoStart,
  DoEnd,
  Call,
  Return,
  Continue,
  Print,
};

/// \returns a stable name such as "assign" or "ifgoto".
const char *stmtKindName(StmtKind K);

/// The target of an assignment: a scalar variable or an array element.
struct LValue {
  VarId Var = 0;
  /// Empty for scalars; one or two index expressions for array elements.
  std::vector<Expr *> Indices;

  bool isArrayElement() const { return !Indices.empty(); }
};

/// Base class of all MiniIR statements. Statements are owned by their
/// Function and identified by their StmtId (position in the list).
class Stmt {
public:
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// Numeric Fortran-style statement label; 0 when unlabelled.
  int label() const { return Label; }
  void setLabel(int L) { Label = L; }

  virtual ~Stmt() = default;

protected:
  Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
  int Label = 0;
};

/// `target = expr`
class AssignStmt : public Stmt {
public:
  AssignStmt(LValue Target, Expr *Value, SourceLoc L)
      : Stmt(StmtKind::Assign, L), Target(std::move(Target)), Value(Value) {}

  const LValue &target() const { return Target; }
  Expr *value() const { return Value; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  LValue Target;
  Expr *Value;
};

/// `IF (cond) GOTO target` — the only conditional branch form. Control
/// flows to the labelled statement when the condition holds, and falls
/// through otherwise. In the CFG this node gets a T edge and an F edge.
class IfGotoStmt : public Stmt {
public:
  IfGotoStmt(Expr *Cond, int TargetLabel, SourceLoc L)
      : Stmt(StmtKind::IfGoto, L), Cond(Cond), TargetLabel(TargetLabel) {}

  Expr *cond() const { return Cond; }
  int targetLabel() const { return TargetLabel; }

  /// Resolved target statement; set by Function::finalize().
  StmtId target() const { return Target; }
  void setTarget(StmtId S) { Target = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::IfGoto; }

private:
  Expr *Cond;
  int TargetLabel;
  StmtId Target = InvalidStmt;
};

/// `GOTO target`
class GotoStmt : public Stmt {
public:
  GotoStmt(int TargetLabel, SourceLoc L)
      : Stmt(StmtKind::Goto, L), TargetLabel(TargetLabel) {}

  int targetLabel() const { return TargetLabel; }
  StmtId target() const { return Target; }
  void setTarget(StmtId S) { Target = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Goto; }

private:
  int TargetLabel;
  StmtId Target = InvalidStmt;
};

/// `GOTO (l1, l2, ..., ln), index` — Fortran's computed GOTO, an n-way
/// branch. When the index evaluates to k in [1, n], control moves to the
/// statement labelled lk (CFG label Ck); any other value falls through
/// (CFG label U), per the Fortran-77 rules.
class ComputedGotoStmt : public Stmt {
public:
  ComputedGotoStmt(Expr *Index, std::vector<int> TargetLabels, SourceLoc L)
      : Stmt(StmtKind::ComputedGoto, L), Index(Index),
        TargetLabels(std::move(TargetLabels)) {
    Targets.assign(this->TargetLabels.size(), InvalidStmt);
  }

  Expr *index() const { return Index; }
  const std::vector<int> &targetLabels() const { return TargetLabels; }

  /// Resolved targets, aligned with targetLabels(); set by finalize().
  const std::vector<StmtId> &targets() const { return Targets; }
  void setTarget(size_t K, StmtId S) { Targets[K] = S; }

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ComputedGoto;
  }

private:
  Expr *Index;
  std::vector<int> TargetLabels;
  std::vector<StmtId> Targets;
};

/// `DO var = lo, hi [, step]` — the loop header statement. Fortran-77
/// semantics: the trip count max(0, floor((hi - lo + step) / step)) is
/// evaluated once on entry; the body never executes for a zero trip count.
/// The matching EndDo is recorded during Function::finalize().
class DoStmt : public Stmt {
public:
  DoStmt(VarId IndexVar, Expr *Lo, Expr *Hi, Expr *Step, SourceLoc L)
      : Stmt(StmtKind::DoStart, L), IndexVar(IndexVar), Lo(Lo), Hi(Hi),
        Step(Step) {}

  VarId indexVar() const { return IndexVar; }
  Expr *lo() const { return Lo; }
  Expr *hi() const { return Hi; }
  /// Null means an implicit step of 1.
  Expr *step() const { return Step; }

  StmtId matchingEnd() const { return End; }
  void setMatchingEnd(StmtId S) { End = S; }

  /// If lo/hi/step are all integer literals, returns true and sets
  /// \p TripCount to the compile-time trip count (the paper's opt 3 "known
  /// at compile time" case).
  bool constantTripCount(int64_t &TripCount) const;

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DoStart; }

private:
  VarId IndexVar;
  Expr *Lo;
  Expr *Hi;
  Expr *Step;
  StmtId End = InvalidStmt;
};

/// `ENDDO` — increments the index variable and branches back to the
/// matching DO header.
class EndDoStmt : public Stmt {
public:
  explicit EndDoStmt(SourceLoc L) : Stmt(StmtKind::DoEnd, L) {}

  StmtId matchingDo() const { return Start; }
  void setMatchingDo(StmtId S) { Start = S; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::DoEnd; }

private:
  StmtId Start = InvalidStmt;
};

/// `CALL sub(args...)`. Scalar variable and whole-array arguments are
/// passed by reference (Fortran style); any other expression argument is
/// passed by value.
class CallStmt : public Stmt {
public:
  CallStmt(std::string Callee, std::vector<Expr *> Args, SourceLoc L)
      : Stmt(StmtKind::Call, L), Callee(std::move(Callee)),
        Args(std::move(Args)) {}

  const std::string &callee() const { return Callee; }
  const std::vector<Expr *> &args() const { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Call; }

private:
  std::string Callee;
  std::vector<Expr *> Args;
};

/// `RETURN` — exits the enclosing procedure.
class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc L) : Stmt(StmtKind::Return, L) {}

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }
};

/// `CONTINUE` — a no-op, typically a label anchor (e.g. `20 CONTINUE`).
class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc L) : Stmt(StmtKind::Continue, L) {}

  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::Continue;
  }
};

/// `PRINT expr...` — appends formatted values to the run's output buffer.
class PrintStmt : public Stmt {
public:
  PrintStmt(std::vector<Expr *> Args, SourceLoc L)
      : Stmt(StmtKind::Print, L), Args(std::move(Args)) {}

  const std::vector<Expr *> &args() const { return Args; }

  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Print; }

private:
  std::vector<Expr *> Args;
};

} // namespace ptran

#endif // PTRAN_IR_STMT_H
