//===--- ir/Function.cpp - MiniIR functions and programs ------------------===//

#include "ir/Function.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

using namespace ptran;

int64_t Symbol::elementCount() const {
  int64_t Count = 1;
  for (int64_t D : Dims)
    Count *= D;
  return Count;
}

VarId Function::declare(Symbol Sym) {
  Symbols.push_back(std::move(Sym));
  return static_cast<VarId>(Symbols.size() - 1);
}

VarId Function::lookup(std::string_view VarName) const {
  for (unsigned I = 0; I < Symbols.size(); ++I)
    if (equalsLower(Symbols[I].Name, VarName))
      return I;
  return static_cast<VarId>(-1);
}

StmtId Function::append(std::unique_ptr<Stmt> S) {
  Stmts.push_back(std::move(S));
  return static_cast<StmtId>(Stmts.size() - 1);
}

StmtId Function::findLabel(int Label) const {
  auto It = LabelMap.find(Label);
  return It == LabelMap.end() ? InvalidStmt : It->second;
}

bool Function::finalize(DiagnosticEngine &Diags) {
  unsigned ErrorsBefore = Diags.errorCount();
  // Index labels, diagnosing duplicates.
  LabelMap.clear();
  for (StmtId I = 0; I < Stmts.size(); ++I) {
    int Label = Stmts[I]->label();
    if (Label == 0)
      continue;
    auto [It, Inserted] = LabelMap.try_emplace(Label, I);
    if (!Inserted)
      Diags.error(Stmts[I]->loc(), "duplicate statement label " +
                                       std::to_string(Label) +
                                       " in procedure " + Name);
  }

  // Resolve branch targets.
  for (auto &SPtr : Stmts) {
    Stmt *S = SPtr.get();
    auto Resolve = [&](int TargetLabel) {
      StmtId Target = findLabel(TargetLabel);
      if (Target == InvalidStmt)
        Diags.error(S->loc(), "undefined statement label " +
                                  std::to_string(TargetLabel) +
                                  " in procedure " + Name);
      return Target;
    };
    if (auto *If = dyn_cast<IfGotoStmt>(S)) {
      StmtId T = Resolve(If->targetLabel());
      if (T != InvalidStmt)
        If->setTarget(T);
    } else if (auto *Go = dyn_cast<GotoStmt>(S)) {
      StmtId T = Resolve(Go->targetLabel());
      if (T != InvalidStmt)
        Go->setTarget(T);
    } else if (auto *Cg = dyn_cast<ComputedGotoStmt>(S)) {
      for (size_t K = 0; K < Cg->targetLabels().size(); ++K) {
        StmtId T = Resolve(Cg->targetLabels()[K]);
        if (T != InvalidStmt)
          Cg->setTarget(K, T);
      }
    }
  }

  // Match DO/ENDDO pairs with a stack.
  std::vector<StmtId> DoStack;
  for (StmtId I = 0; I < Stmts.size(); ++I) {
    Stmt *S = Stmts[I].get();
    if (isa<DoStmt>(S)) {
      DoStack.push_back(I);
    } else if (auto *End = dyn_cast<EndDoStmt>(S)) {
      if (DoStack.empty()) {
        Diags.error(S->loc(), "ENDDO without matching DO in procedure " + Name);
        continue;
      }
      StmtId Start = DoStack.back();
      DoStack.pop_back();
      cast<DoStmt>(Stmts[Start].get())->setMatchingEnd(I);
      End->setMatchingDo(Start);
    }
  }
  for (StmtId Open : DoStack)
    Diags.error(Stmts[Open]->loc(),
                "DO without matching ENDDO in procedure " + Name);

  Finalized = Diags.errorCount() == ErrorsBefore;
  return Finalized;
}

Function *Program::createFunction(std::string Name, DiagnosticEngine &Diags) {
  if (findFunction(Name)) {
    Diags.error("duplicate procedure name " + Name);
    return nullptr;
  }
  Funcs.push_back(std::make_unique<Function>(std::move(Name)));
  return Funcs.back().get();
}

Function *Program::findFunction(std::string_view Name) {
  for (auto &F : Funcs)
    if (equalsLower(F->name(), Name))
      return F.get();
  return nullptr;
}

const Function *Program::findFunction(std::string_view Name) const {
  for (const auto &F : Funcs)
    if (equalsLower(F->name(), Name))
      return F.get();
  return nullptr;
}

bool Program::finalize(DiagnosticEngine &Diags) {
  bool Ok = true;
  for (auto &F : Funcs)
    Ok &= F->finalize(Diags);
  return Ok;
}
