//===--- ir/Expr.cpp - MiniIR expression trees ----------------------------===//

#include "ir/Expr.h"

#include "support/FatalError.h"

using namespace ptran;

bool ptran::isComparison(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
  case BinaryOp::Eq:
  case BinaryOp::Ne:
    return true;
  default:
    return false;
  }
}

bool ptran::isLogicalOp(BinaryOp Op) {
  return Op == BinaryOp::And || Op == BinaryOp::Or;
}

const char *ptran::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Pow:
    return "**";
  case BinaryOp::Lt:
    return ".LT.";
  case BinaryOp::Le:
    return ".LE.";
  case BinaryOp::Gt:
    return ".GT.";
  case BinaryOp::Ge:
    return ".GE.";
  case BinaryOp::Eq:
    return ".EQ.";
  case BinaryOp::Ne:
    return ".NE.";
  case BinaryOp::And:
    return ".AND.";
  case BinaryOp::Or:
    return ".OR.";
  }
  PTRAN_UNREACHABLE("unknown BinaryOp");
}

const char *ptran::intrinsicName(Intrinsic I) {
  switch (I) {
  case Intrinsic::Abs:
    return "ABS";
  case Intrinsic::Min:
    return "MIN";
  case Intrinsic::Max:
    return "MAX";
  case Intrinsic::Mod:
    return "MOD";
  case Intrinsic::Sqrt:
    return "SQRT";
  case Intrinsic::Exp:
    return "EXP";
  case Intrinsic::Log:
    return "LOG";
  case Intrinsic::Sin:
    return "SIN";
  case Intrinsic::Cos:
    return "COS";
  case Intrinsic::Real:
    return "REAL";
  case Intrinsic::Int:
    return "INT";
  }
  PTRAN_UNREACHABLE("unknown Intrinsic");
}
