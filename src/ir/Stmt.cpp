//===--- ir/Stmt.cpp - MiniIR statements ----------------------------------===//

#include "ir/Stmt.h"

#include "support/Casting.h"
#include "support/FatalError.h"

using namespace ptran;

const char *ptran::stmtKindName(StmtKind K) {
  switch (K) {
  case StmtKind::Assign:
    return "assign";
  case StmtKind::IfGoto:
    return "ifgoto";
  case StmtKind::Goto:
    return "goto";
  case StmtKind::ComputedGoto:
    return "computed-goto";
  case StmtKind::DoStart:
    return "do";
  case StmtKind::DoEnd:
    return "enddo";
  case StmtKind::Call:
    return "call";
  case StmtKind::Return:
    return "return";
  case StmtKind::Continue:
    return "continue";
  case StmtKind::Print:
    return "print";
  }
  PTRAN_UNREACHABLE("unknown StmtKind");
}

bool DoStmt::constantTripCount(int64_t &TripCount) const {
  const auto *LoLit = dyn_cast<IntLiteral>(Lo);
  const auto *HiLit = dyn_cast<IntLiteral>(Hi);
  if (!LoLit || !HiLit)
    return false;
  int64_t StepVal = 1;
  if (Step) {
    const auto *StepLit = dyn_cast<IntLiteral>(Step);
    if (!StepLit)
      return false;
    StepVal = StepLit->value();
  }
  if (StepVal == 0)
    return false;
  // Fortran-77 iteration count, clamped at zero.
  int64_t Span = HiLit->value() - LoLit->value() + StepVal;
  int64_t Count = Span / StepVal;
  TripCount = Count > 0 ? Count : 0;
  return true;
}
