//===--- ir/ConstFold.cpp - Compile-time expression evaluation ------------===//

#include "ir/ConstFold.h"

#include "support/Casting.h"

#include <cmath>

using namespace ptran;

namespace {

FoldedValue makeInt(int64_t V) { return {Type::Integer, V, 0.0}; }
FoldedValue makeReal(double V) { return {Type::Real, 0, V}; }
FoldedValue makeLogical(bool V) { return {Type::Logical, V ? 1 : 0, 0.0}; }

} // namespace

static std::optional<FoldedValue>
foldImpl(const Expr *E, const std::map<VarId, FoldedValue> *Env);

std::optional<FoldedValue> ptran::foldConstant(const Expr *E) {
  return foldImpl(E, nullptr);
}

std::optional<FoldedValue>
ptran::foldConstant(const Expr *E, const std::map<VarId, FoldedValue> *Env) {
  return foldImpl(E, Env);
}

static std::optional<FoldedValue>
foldImpl(const Expr *E, const std::map<VarId, FoldedValue> *Env) {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return makeInt(cast<IntLiteral>(E)->value());
  case ExprKind::RealLiteral:
    return makeReal(cast<RealLiteral>(E)->value());
  case ExprKind::VarRef: {
    if (Env) {
      auto It = Env->find(cast<VarRef>(E)->var());
      if (It != Env->end())
        return It->second;
    }
    return std::nullopt;
  }
  case ExprKind::ArrayRef:
    return std::nullopt;
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::optional<FoldedValue> V = foldImpl(U->operand(), Env);
    if (!V)
      return std::nullopt;
    if (U->op() == UnaryOp::Not)
      return makeLogical(!V->asBool());
    return V->Ty == Type::Real ? makeReal(-V->R) : makeInt(-V->I);
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    std::optional<FoldedValue> L = foldImpl(B->lhs(), Env);
    if (!L)
      return std::nullopt;
    // Short-circuit forms fold with only the left operand when decisive.
    if (B->op() == BinaryOp::And && !L->asBool())
      return makeLogical(false);
    if (B->op() == BinaryOp::Or && L->asBool())
      return makeLogical(true);
    std::optional<FoldedValue> R = foldImpl(B->rhs(), Env);
    if (!R)
      return std::nullopt;
    if (isLogicalOp(B->op()))
      return makeLogical(R->asBool());
    if (isComparison(B->op())) {
      double A = L->asReal(), C = R->asReal();
      switch (B->op()) {
      case BinaryOp::Lt:
        return makeLogical(A < C);
      case BinaryOp::Le:
        return makeLogical(A <= C);
      case BinaryOp::Gt:
        return makeLogical(A > C);
      case BinaryOp::Ge:
        return makeLogical(A >= C);
      case BinaryOp::Eq:
        return makeLogical(A == C);
      case BinaryOp::Ne:
        return makeLogical(A != C);
      default:
        return std::nullopt;
      }
    }
    bool RealOp = L->Ty == Type::Real || R->Ty == Type::Real;
    switch (B->op()) {
    case BinaryOp::Add:
      return RealOp ? makeReal(L->asReal() + R->asReal())
                    : makeInt(L->I + R->I);
    case BinaryOp::Sub:
      return RealOp ? makeReal(L->asReal() - R->asReal())
                    : makeInt(L->I - R->I);
    case BinaryOp::Mul:
      return RealOp ? makeReal(L->asReal() * R->asReal())
                    : makeInt(L->I * R->I);
    case BinaryOp::Div:
      if (RealOp)
        return R->asReal() == 0.0
                   ? std::nullopt
                   : std::optional(makeReal(L->asReal() / R->asReal()));
      return R->I == 0 ? std::nullopt : std::optional(makeInt(L->I / R->I));
    case BinaryOp::Pow:
      if (!RealOp && R->I >= 0) {
        int64_t Out = 1;
        for (int64_t K = 0; K < R->I; ++K)
          Out *= L->I;
        return makeInt(Out);
      }
      return makeReal(std::pow(L->asReal(), R->asReal()));
    default:
      return std::nullopt;
    }
  }
  case ExprKind::Intrinsic: {
    const auto *I = cast<IntrinsicExpr>(E);
    std::vector<FoldedValue> Args;
    for (const Expr *A : I->args()) {
      std::optional<FoldedValue> V = foldImpl(A, Env);
      if (!V)
        return std::nullopt;
      Args.push_back(*V);
    }
    bool RealArgs = false;
    for (const FoldedValue &V : Args)
      RealArgs |= V.Ty == Type::Real;
    switch (I->fn()) {
    case Intrinsic::Abs:
      return RealArgs ? makeReal(std::fabs(Args[0].asReal()))
                      : makeInt(std::llabs(Args[0].I));
    case Intrinsic::Min: {
      if (RealArgs) {
        double Out = Args[0].asReal();
        for (const FoldedValue &V : Args)
          Out = std::min(Out, V.asReal());
        return makeReal(Out);
      }
      int64_t Out = Args[0].I;
      for (const FoldedValue &V : Args)
        Out = std::min(Out, V.I);
      return makeInt(Out);
    }
    case Intrinsic::Max: {
      if (RealArgs) {
        double Out = Args[0].asReal();
        for (const FoldedValue &V : Args)
          Out = std::max(Out, V.asReal());
        return makeReal(Out);
      }
      int64_t Out = Args[0].I;
      for (const FoldedValue &V : Args)
        Out = std::max(Out, V.I);
      return makeInt(Out);
    }
    case Intrinsic::Mod:
      if (RealArgs)
        return Args[1].asReal() == 0.0
                   ? std::nullopt
                   : std::optional(makeReal(
                         std::fmod(Args[0].asReal(), Args[1].asReal())));
      return Args[1].I == 0 ? std::nullopt
                            : std::optional(makeInt(Args[0].I % Args[1].I));
    case Intrinsic::Sqrt:
      return Args[0].asReal() < 0.0
                 ? std::nullopt
                 : std::optional(makeReal(std::sqrt(Args[0].asReal())));
    case Intrinsic::Exp:
      return makeReal(std::exp(Args[0].asReal()));
    case Intrinsic::Log:
      return Args[0].asReal() <= 0.0
                 ? std::nullopt
                 : std::optional(makeReal(std::log(Args[0].asReal())));
    case Intrinsic::Sin:
      return makeReal(std::sin(Args[0].asReal()));
    case Intrinsic::Cos:
      return makeReal(std::cos(Args[0].asReal()));
    case Intrinsic::Real:
      return makeReal(Args[0].asReal());
    case Intrinsic::Int:
      return makeInt(Args[0].Ty == Type::Real
                         ? static_cast<int64_t>(Args[0].R)
                         : Args[0].I);
    }
    return std::nullopt;
  }
  }
  return std::nullopt;
}

std::map<VarId, FoldedValue>
ptran::singleConstantAssignments(const Function &F) {
  // Count scalar assignments per variable and remember the single value
  // expression; disqualify variables that can be mutated some other way.
  std::vector<unsigned> AssignCount(F.numSymbols(), 0);
  std::vector<const Expr *> ValueOf(F.numSymbols(), nullptr);
  std::vector<bool> Disqualified(F.numSymbols(), false);

  for (VarId V = 0; V < F.numSymbols(); ++V)
    if (F.symbol(V).IsParam || F.symbol(V).isArray())
      Disqualified[V] = true;

  for (StmtId S = 0; S < F.numStmts(); ++S) {
    const Stmt *St = F.stmt(S);
    if (const auto *A = dyn_cast<AssignStmt>(St)) {
      if (A->target().isArrayElement())
        continue;
      VarId V = A->target().Var;
      if (++AssignCount[V] == 1)
        ValueOf[V] = A->value();
    } else if (const auto *Do = dyn_cast<DoStmt>(St)) {
      Disqualified[Do->indexVar()] = true;
    } else if (const auto *Call = dyn_cast<CallStmt>(St)) {
      // Whole-variable arguments are by reference and may be mutated.
      for (const Expr *Arg : Call->args())
        if (const auto *Ref = dyn_cast<VarRef>(Arg))
          Disqualified[Ref->var()] = true;
    }
  }

  // Iterate to a fixpoint so chains like `n = 64; m = n + 1` resolve.
  std::map<VarId, FoldedValue> Env;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (VarId V = 0; V < F.numSymbols(); ++V) {
      if (Disqualified[V] || AssignCount[V] != 1 || !ValueOf[V] ||
          Env.count(V))
        continue;
      if (std::optional<FoldedValue> Val = foldConstant(ValueOf[V], &Env)) {
        Env[V] = *Val;
        Changed = true;
      }
    }
  }
  return Env;
}
