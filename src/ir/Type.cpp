//===--- ir/Type.cpp - MiniIR scalar types --------------------------------===//

#include "ir/Type.h"

#include "support/FatalError.h"

using namespace ptran;

const char *ptran::typeName(Type T) {
  switch (T) {
  case Type::Integer:
    return "integer";
  case Type::Real:
    return "real";
  case Type::Logical:
    return "logical";
  }
  PTRAN_UNREACHABLE("unknown Type");
}
