//===--- interp/Observer.cpp - Execution observation hooks ----------------===//

#include "interp/Observer.h"

using namespace ptran;

ExecutionObserver::~ExecutionObserver() = default;

void ExecutionObserver::onProcedureEntry(const Function &, unsigned) {}
void ExecutionObserver::onProcedureExit(const Function &, unsigned) {}
void ExecutionObserver::onStatement(const Function &, StmtId, unsigned) {}
void ExecutionObserver::onTransfer(const Function &, StmtId, CfgLabel, StmtId,
                                   unsigned) {}
void ExecutionObserver::onDoLoopEntry(const Function &, StmtId, int64_t,
                                      unsigned) {}
