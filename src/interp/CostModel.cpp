//===--- interp/CostModel.cpp - Target cost model -------------------------===//

#include "interp/CostModel.h"

#include "support/Casting.h"
#include "support/FatalError.h"

using namespace ptran;

CostModel CostModel::optimizing() { return CostModel(); }

CostModel CostModel::nonOptimizing() {
  CostModel CM;
  CM.OpCost = 2.0;
  CM.ScalarRefCost = 2.0;    // Every reference goes to memory.
  CM.ArrayRefCost = 5.0;
  CM.IntrinsicCost = 16.0;
  CM.AssignCost = 3.0;
  CM.BranchCost = 2.0;
  CM.LoopOverheadCost = 6.0;
  CM.CallOverheadCost = 20.0;
  CM.ArgCost = 2.0;
  CM.PrintCost = 8.0;
  CM.CounterIncrementCost = 4.0;
  CM.CounterAddCost = 6.0;
  return CM;
}

double CostModel::exprCost(const Expr *E) const {
  switch (E->kind()) {
  case ExprKind::IntLiteral:
  case ExprKind::RealLiteral:
    return 0.0;
  case ExprKind::VarRef:
    return ScalarRefCost;
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    double Cost = ArrayRefCost;
    for (const Expr *Idx : A->indices())
      Cost += exprCost(Idx);
    return Cost;
  }
  case ExprKind::Unary:
    return OpCost + exprCost(cast<UnaryExpr>(E)->operand());
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return OpCost + exprCost(B->lhs()) + exprCost(B->rhs());
  }
  case ExprKind::Intrinsic: {
    const auto *I = cast<IntrinsicExpr>(E);
    double Cost = IntrinsicCost;
    for (const Expr *A : I->args())
      Cost += exprCost(A);
    return Cost;
  }
  }
  PTRAN_UNREACHABLE("unknown ExprKind");
}

double CostModel::lvalueCost(const LValue &L) const {
  double Cost = L.isArrayElement() ? ArrayRefCost : ScalarRefCost;
  for (const Expr *Idx : L.Indices)
    Cost += exprCost(Idx);
  return Cost;
}

double CostModel::statementCost(const Stmt *S) const {
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    return AssignCost + lvalueCost(A->target()) + exprCost(A->value());
  }
  case StmtKind::IfGoto:
    return BranchCost + exprCost(cast<IfGotoStmt>(S)->cond());
  case StmtKind::Goto:
    return GotoCost;
  case StmtKind::ComputedGoto:
    // An indexed jump table: one branch plus the index computation.
    return BranchCost + exprCost(cast<ComputedGotoStmt>(S)->index());
  case StmtKind::DoStart: {
    // Bound expressions are evaluated once per entry, but following the
    // paper's uniform node model we charge the amortized header overhead
    // per execution and the bound evaluation at the header too.
    const auto *D = cast<DoStmt>(S);
    double Bounds = exprCost(D->lo()) + exprCost(D->hi());
    if (D->step())
      Bounds += exprCost(D->step());
    return LoopOverheadCost + Bounds / 4.0;
  }
  case StmtKind::DoEnd:
    return OpCost; // Induction variable update.
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    double Cost = CallOverheadCost + ArgCost * C->args().size();
    for (const Expr *A : C->args())
      Cost += exprCost(A);
    return Cost;
  }
  case StmtKind::Return:
    return BranchCost;
  case StmtKind::Continue:
    return 0.0;
  case StmtKind::Print: {
    const auto *P = cast<PrintStmt>(S);
    double Cost = PrintCost * static_cast<double>(P->args().size());
    for (const Expr *A : P->args())
      Cost += exprCost(A);
    return Cost;
  }
  }
  PTRAN_UNREACHABLE("unknown StmtKind");
}
