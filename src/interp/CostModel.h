//===--- interp/CostModel.h - Target cost model -----------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-statement cycle cost model. Section 4 assumes the (average)
/// local execution time COST(u) of every node has been estimated for the
/// target architecture; this class provides that estimate, and the same
/// numbers drive the interpreter's simulated clock so that analytical
/// estimates and simulated measurements are directly comparable.
///
/// Two presets stand in for the paper's "compiler optimization ON/OFF"
/// columns of Table 1: the optimizing preset keeps scalars in registers
/// (free loads) and has cheap control flow; the non-optimizing preset pays
/// memory traffic on every reference.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_INTERP_COSTMODEL_H
#define PTRAN_INTERP_COSTMODEL_H

#include "ir/Function.h"

namespace ptran {

/// Cycle costs of primitive operations on the simulated target.
class CostModel {
public:
  /// Cost of one arithmetic/comparison/logical operator.
  double OpCost = 1.0;
  /// Cost of referencing a scalar variable.
  double ScalarRefCost = 0.0;
  /// Cost of referencing an array element (address arithmetic + memory).
  double ArrayRefCost = 2.0;
  /// Cost of one intrinsic call (SQRT, EXP, ...).
  double IntrinsicCost = 8.0;
  /// Base cost of an assignment (the store).
  double AssignCost = 1.0;
  /// Base cost of evaluating a branch (jump machinery, on top of the
  /// condition expression).
  double BranchCost = 1.0;
  /// Cost of an unconditional GOTO. Zero by default: the analysis elides
  /// GOTO nodes into edges (recovering the paper's compact statement
  /// CFGs), and a zero jump cost keeps the interpreter's clock consistent
  /// with the estimates. Set it nonzero when analyzing with
  /// AnalysisOptions::ElideGotos = false.
  double GotoCost = 0.0;
  /// Per-execution overhead of a DO header (trip test + induction update,
  /// charged at the header like the paper's statement-level model).
  double LoopOverheadCost = 2.0;
  /// Call/return linkage overhead, on top of the callee's body.
  double CallOverheadCost = 10.0;
  /// Cost of passing one argument.
  double ArgCost = 1.0;
  /// Cost of a PRINT statement, per item.
  double PrintCost = 5.0;
  /// Cost of one profiling counter increment (load-add-store).
  double CounterIncrementCost = 2.0;
  /// Cost of adding a computed trip count to a counter once per loop entry
  /// (the paper's third optimization).
  double CounterAddCost = 3.0;

  /// Preset matching "Compiler optimization ON".
  static CostModel optimizing();
  /// Preset matching "Compiler optimization OFF" (roughly 3x slower, as in
  /// Table 1's LOOPS rows).
  static CostModel nonOptimizing();

  /// Local cost of an expression tree.
  double exprCost(const Expr *E) const;

  /// Local cost COST(u) of one statement (excluding callee bodies; the
  /// interprocedural analysis of Section 4 adds TIME(callee START)).
  double statementCost(const Stmt *S) const;

private:
  double lvalueCost(const LValue &L) const;
};

} // namespace ptran

#endif // PTRAN_INTERP_COSTMODEL_H
