//===--- interp/Value.h - Runtime values ------------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime scalar values and variable storage for the MiniIR interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_INTERP_VALUE_H
#define PTRAN_INTERP_VALUE_H

#include "ir/Type.h"

#include <cstdint>
#include <vector>

namespace ptran {

/// A runtime scalar: integer, real or logical (stored as 0/1 integer).
struct Value {
  Type Ty = Type::Integer;
  int64_t I = 0;
  double R = 0.0;

  static Value makeInt(int64_t V) { return {Type::Integer, V, 0.0}; }
  static Value makeReal(double V) { return {Type::Real, 0, V}; }
  static Value makeLogical(bool V) { return {Type::Logical, V ? 1 : 0, 0.0}; }

  /// Numeric value as a double (integers widen).
  double asReal() const { return Ty == Type::Real ? R : static_cast<double>(I); }
  /// Numeric value as an integer (reals truncate toward zero).
  int64_t asInt() const {
    return Ty == Type::Real ? static_cast<int64_t>(R) : I;
  }
  bool asBool() const { return Ty == Type::Real ? R != 0.0 : I != 0; }
};

/// Backing store for one variable: scalars use element 0. Integer and real
/// variables use separate payload vectors so that by-reference parameter
/// passing aliases the caller's storage without conversions.
struct Storage {
  Type Ty = Type::Integer;
  /// Array extents (empty for scalars), column-major addressing.
  std::vector<int64_t> Dims;
  std::vector<int64_t> Ints;
  std::vector<double> Reals;

  /// Allocates zero-initialized storage of the given shape.
  static Storage allocate(Type Ty, const std::vector<int64_t> &Dims);

  int64_t elementCount() const {
    int64_t N = 1;
    for (int64_t D : Dims)
      N *= D;
    return N;
  }

  Value load(int64_t Flat) const {
    return Ty == Type::Real ? Value::makeReal(Reals[Flat])
                            : Value::makeInt(Ints[Flat]);
  }
  void store(int64_t Flat, const Value &V) {
    if (Ty == Type::Real)
      Reals[Flat] = V.asReal();
    else
      Ints[Flat] = V.asInt();
  }
};

} // namespace ptran

#endif // PTRAN_INTERP_VALUE_H
