//===--- interp/Interpreter.cpp - MiniIR interpreter ----------------------===//

#include "interp/Interpreter.h"

#include "support/Casting.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cmath>
#include <map>
#include <memory>

using namespace ptran;

Storage Storage::allocate(Type Ty, const std::vector<int64_t> &Dims) {
  Storage S;
  S.Ty = Ty;
  S.Dims = Dims;
  int64_t N = S.elementCount();
  if (Ty == Type::Real)
    S.Reals.assign(static_cast<size_t>(N), 0.0);
  else
    S.Ints.assign(static_cast<size_t>(N), 0);
  return S;
}

namespace {

/// Hard cap on activation records; recursion beyond this is a fault.
constexpr unsigned MaxCallDepth = 512;

struct DoState {
  int64_t Remaining = 0;
  int64_t Step = 1;
};

/// One procedure activation.
struct Frame {
  const Function *F = nullptr;
  /// Per-VarId storage; parameters may alias a caller's Storage.
  std::vector<Storage *> Slots;
  std::vector<std::unique_ptr<Storage>> Owned;
  StmtId Pc = 0;
  std::map<StmtId, DoState> Loops;
  /// True when the pending DoStart execution came from its ENDDO.
  bool ViaLatch = false;
};

/// The actual execution engine; one per run() call.
class Engine {
public:
  Engine(const Program &Prog, const CostModel &CM,
         const std::vector<ExecutionObserver *> &Obs)
      : Prog(Prog), CM(CM), Obs(Obs) {}

  RunResult run(uint64_t MaxSteps);

private:
  void fail(std::string Message) {
    if (!Failed) {
      Failed = true;
      Result.Error = std::move(Message);
    }
  }

  unsigned depth() const { return static_cast<unsigned>(Stack.size()) - 1; }

  const std::vector<double> &stmtCosts(const Function *F);

  Value eval(Frame &Fr, const Expr *E);
  Value evalBinary(Frame &Fr, const BinaryExpr *B);
  Value evalIntrinsic(Frame &Fr, const IntrinsicExpr *I);
  /// Computes the flat element index of an array access, with bounds
  /// checks (Fortran column-major, 1-based).
  bool flatIndex(Frame &Fr, const Storage &S, const std::vector<Expr *> &Idx,
                 int64_t &Out);

  void pushFrame(const Function *F);
  void popFrame();
  bool bindArguments(Frame &Caller, const CallStmt *C, Frame &Callee);

  /// Executes one statement of the top frame; updates Pc / the stack.
  void step(uint64_t &Steps, uint64_t MaxSteps);

  /// Fires the transfer event and moves the Pc, popping the frame when
  /// control leaves the procedure.
  void transfer(Frame &Fr, StmtId From, CfgLabel Label, StmtId To);

  const Program &Prog;
  const CostModel &CM;
  const std::vector<ExecutionObserver *> &Obs;
  RunResult Result;
  bool Failed = false;
  std::vector<std::unique_ptr<Frame>> Stack;
  std::map<const Function *, std::vector<double>> CostCache;
};

const std::vector<double> &Engine::stmtCosts(const Function *F) {
  auto It = CostCache.find(F);
  if (It != CostCache.end())
    return It->second;
  std::vector<double> Costs(F->numStmts());
  for (StmtId S = 0; S < F->numStmts(); ++S)
    Costs[S] = CM.statementCost(F->stmt(S));
  return CostCache.emplace(F, std::move(Costs)).first->second;
}

bool Engine::flatIndex(Frame &Fr, const Storage &S,
                       const std::vector<Expr *> &Idx, int64_t &Out) {
  if (Idx.size() != S.Dims.size()) {
    fail("array accessed with wrong number of subscripts");
    return false;
  }
  int64_t Flat = 0;
  int64_t Stride = 1;
  for (size_t D = 0; D < Idx.size(); ++D) {
    int64_t I = eval(Fr, Idx[D]).asInt();
    if (Failed)
      return false;
    if (I < 1 || I > S.Dims[D]) {
      fail("array subscript " + std::to_string(I) + " out of bounds [1, " +
           std::to_string(S.Dims[D]) + "]");
      return false;
    }
    Flat += (I - 1) * Stride;
    Stride *= S.Dims[D];
  }
  Out = Flat;
  return true;
}

Value Engine::evalBinary(Frame &Fr, const BinaryExpr *B) {
  if (B->op() == BinaryOp::And || B->op() == BinaryOp::Or) {
    // Short-circuit evaluation.
    Value L = eval(Fr, B->lhs());
    if (Failed)
      return Value();
    bool LV = L.asBool();
    if (B->op() == BinaryOp::And && !LV)
      return Value::makeLogical(false);
    if (B->op() == BinaryOp::Or && LV)
      return Value::makeLogical(true);
    Value R = eval(Fr, B->rhs());
    return Value::makeLogical(R.asBool());
  }

  Value L = eval(Fr, B->lhs());
  Value R = eval(Fr, B->rhs());
  if (Failed)
    return Value();

  if (isComparison(B->op())) {
    double A = L.asReal(), C = R.asReal();
    switch (B->op()) {
    case BinaryOp::Lt:
      return Value::makeLogical(A < C);
    case BinaryOp::Le:
      return Value::makeLogical(A <= C);
    case BinaryOp::Gt:
      return Value::makeLogical(A > C);
    case BinaryOp::Ge:
      return Value::makeLogical(A >= C);
    case BinaryOp::Eq:
      return Value::makeLogical(A == C);
    case BinaryOp::Ne:
      return Value::makeLogical(A != C);
    default:
      break;
    }
    PTRAN_UNREACHABLE("non-comparison in comparison path");
  }

  bool RealOp = L.Ty == Type::Real || R.Ty == Type::Real;
  switch (B->op()) {
  case BinaryOp::Add:
    return RealOp ? Value::makeReal(L.asReal() + R.asReal())
                  : Value::makeInt(L.I + R.I);
  case BinaryOp::Sub:
    return RealOp ? Value::makeReal(L.asReal() - R.asReal())
                  : Value::makeInt(L.I - R.I);
  case BinaryOp::Mul:
    return RealOp ? Value::makeReal(L.asReal() * R.asReal())
                  : Value::makeInt(L.I * R.I);
  case BinaryOp::Div:
    if (RealOp) {
      if (R.asReal() == 0.0) {
        fail("real division by zero");
        return Value();
      }
      return Value::makeReal(L.asReal() / R.asReal());
    }
    if (R.I == 0) {
      fail("integer division by zero");
      return Value();
    }
    return Value::makeInt(L.I / R.I);
  case BinaryOp::Pow: {
    if (!RealOp && R.I >= 0) {
      int64_t Base = L.I, Out = 1;
      for (int64_t K = 0; K < R.I; ++K)
        Out *= Base;
      return Value::makeInt(Out);
    }
    return Value::makeReal(std::pow(L.asReal(), R.asReal()));
  }
  default:
    break;
  }
  PTRAN_UNREACHABLE("unhandled binary operator");
}

Value Engine::evalIntrinsic(Frame &Fr, const IntrinsicExpr *I) {
  std::vector<Value> Args;
  Args.reserve(I->args().size());
  for (const Expr *A : I->args()) {
    Args.push_back(eval(Fr, A));
    if (Failed)
      return Value();
  }
  bool RealArgs = false;
  for (const Value &V : Args)
    RealArgs |= V.Ty == Type::Real;

  switch (I->fn()) {
  case Intrinsic::Abs:
    return RealArgs ? Value::makeReal(std::fabs(Args[0].asReal()))
                    : Value::makeInt(std::llabs(Args[0].I));
  case Intrinsic::Min: {
    if (RealArgs) {
      double Out = Args[0].asReal();
      for (const Value &V : Args)
        Out = std::min(Out, V.asReal());
      return Value::makeReal(Out);
    }
    int64_t Out = Args[0].I;
    for (const Value &V : Args)
      Out = std::min(Out, V.I);
    return Value::makeInt(Out);
  }
  case Intrinsic::Max: {
    if (RealArgs) {
      double Out = Args[0].asReal();
      for (const Value &V : Args)
        Out = std::max(Out, V.asReal());
      return Value::makeReal(Out);
    }
    int64_t Out = Args[0].I;
    for (const Value &V : Args)
      Out = std::max(Out, V.I);
    return Value::makeInt(Out);
  }
  case Intrinsic::Mod:
    if (RealArgs) {
      if (Args[1].asReal() == 0.0) {
        fail("MOD with zero divisor");
        return Value();
      }
      return Value::makeReal(std::fmod(Args[0].asReal(), Args[1].asReal()));
    }
    if (Args[1].I == 0) {
      fail("MOD with zero divisor");
      return Value();
    }
    return Value::makeInt(Args[0].I % Args[1].I);
  case Intrinsic::Sqrt: {
    double V = Args[0].asReal();
    if (V < 0.0) {
      fail("SQRT of a negative value");
      return Value();
    }
    return Value::makeReal(std::sqrt(V));
  }
  case Intrinsic::Exp:
    return Value::makeReal(std::exp(Args[0].asReal()));
  case Intrinsic::Log: {
    double V = Args[0].asReal();
    if (V <= 0.0) {
      fail("LOG of a non-positive value");
      return Value();
    }
    return Value::makeReal(std::log(V));
  }
  case Intrinsic::Sin:
    return Value::makeReal(std::sin(Args[0].asReal()));
  case Intrinsic::Cos:
    return Value::makeReal(std::cos(Args[0].asReal()));
  case Intrinsic::Real:
    return Value::makeReal(Args[0].asReal());
  case Intrinsic::Int:
    return Value::makeInt(Args[0].asInt());
  }
  PTRAN_UNREACHABLE("unknown Intrinsic");
}

Value Engine::eval(Frame &Fr, const Expr *E) {
  if (Failed)
    return Value();
  switch (E->kind()) {
  case ExprKind::IntLiteral:
    return Value::makeInt(cast<IntLiteral>(E)->value());
  case ExprKind::RealLiteral:
    return Value::makeReal(cast<RealLiteral>(E)->value());
  case ExprKind::VarRef: {
    VarId V = cast<VarRef>(E)->var();
    const Storage *S = Fr.Slots[V];
    if (!S->Dims.empty()) {
      fail("whole-array reference to " + Fr.F->symbol(V).Name +
           " used as a scalar value in " + Fr.F->name());
      return Value();
    }
    return S->load(0);
  }
  case ExprKind::ArrayRef: {
    const auto *A = cast<ArrayRef>(E);
    Storage *S = Fr.Slots[A->var()];
    int64_t Flat = 0;
    if (!flatIndex(Fr, *S, A->indices(), Flat))
      return Value();
    return S->load(Flat);
  }
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    Value V = eval(Fr, U->operand());
    if (Failed)
      return Value();
    if (U->op() == UnaryOp::Not)
      return Value::makeLogical(!V.asBool());
    return V.Ty == Type::Real ? Value::makeReal(-V.R) : Value::makeInt(-V.I);
  }
  case ExprKind::Binary:
    return evalBinary(Fr, cast<BinaryExpr>(E));
  case ExprKind::Intrinsic:
    return evalIntrinsic(Fr, cast<IntrinsicExpr>(E));
  }
  PTRAN_UNREACHABLE("unknown ExprKind");
}

void Engine::pushFrame(const Function *F) {
  auto Fr = std::make_unique<Frame>();
  Fr->F = F;
  Fr->Slots.resize(F->numSymbols(), nullptr);
  Stack.push_back(std::move(Fr));
  for (ExecutionObserver *O : Obs)
    O->onProcedureEntry(*F, depth());
}

void Engine::popFrame() {
  for (ExecutionObserver *O : Obs)
    O->onProcedureExit(*Stack.back()->F, depth());
  Stack.pop_back();
}

bool Engine::bindArguments(Frame &Caller, const CallStmt *C, Frame &Callee) {
  const Function *F = Callee.F;
  const std::vector<VarId> &Params = F->params();
  if (Params.size() != C->args().size()) {
    fail("call to " + F->name() + " with wrong argument count");
    return false;
  }

  for (size_t I = 0; I < Params.size(); ++I) {
    const Symbol &Param = F->symbol(Params[I]);
    const Expr *Arg = C->args()[I];

    // Scalar or whole-array variable: pass by reference.
    if (const auto *V = dyn_cast<VarRef>(Arg)) {
      Storage *S = Caller.Slots[V->var()];
      if (S->Ty != Param.Ty) {
        fail("argument " + std::to_string(I + 1) + " of " + F->name() +
             " has mismatched type");
        return false;
      }
      Storage ParamShape = Storage::allocate(Param.Ty, Param.Dims);
      if (ParamShape.elementCount() > S->elementCount()) {
        fail("argument " + std::to_string(I + 1) + " of " + F->name() +
             " is smaller than the parameter's declared shape");
        return false;
      }
      Callee.Slots[Params[I]] = S;
      continue;
    }

    // Anything else: evaluate and pass by value.
    if (Param.isArray()) {
      fail("argument " + std::to_string(I + 1) + " of " + F->name() +
           " must be a whole array");
      return false;
    }
    Value V = eval(Caller, Arg);
    if (Failed)
      return false;
    auto Owned = std::make_unique<Storage>(Storage::allocate(Param.Ty, {}));
    Owned->store(0, V);
    Callee.Slots[Params[I]] = Owned.get();
    Callee.Owned.push_back(std::move(Owned));
  }

  // Locals get fresh zeroed storage.
  for (VarId V = 0; V < F->numSymbols(); ++V) {
    if (Callee.Slots[V])
      continue;
    const Symbol &Sym = F->symbol(V);
    auto Owned =
        std::make_unique<Storage>(Storage::allocate(Sym.Ty, Sym.Dims));
    Callee.Slots[V] = Owned.get();
    Callee.Owned.push_back(std::move(Owned));
  }
  return true;
}

void Engine::transfer(Frame &Fr, StmtId From, CfgLabel Label, StmtId To) {
  bool Leaves = To == InvalidStmt || To >= Fr.F->numStmts();
  StmtId Dest = Leaves ? InvalidStmt : To;
  for (ExecutionObserver *O : Obs)
    O->onTransfer(*Fr.F, From, Label, Dest, depth());
  if (Leaves) {
    popFrame();
    return;
  }
  Fr.Pc = Dest;
}

void Engine::step(uint64_t &Steps, uint64_t MaxSteps) {
  Frame &Fr = *Stack.back();
  const Function *F = Fr.F;

  if (Fr.Pc >= F->numStmts()) {
    // Entering an empty procedure.
    popFrame();
    return;
  }
  if (++Steps > MaxSteps) {
    fail("statement budget exhausted (possible runaway loop)");
    return;
  }

  StmtId Pc = Fr.Pc;
  const Stmt *S = F->stmt(Pc);
  ++Result.StatementsExecuted;
  Result.Cycles += stmtCosts(F)[Pc];
  for (ExecutionObserver *O : Obs)
    O->onStatement(*F, Pc, depth());

  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = cast<AssignStmt>(S);
    Value V = eval(Fr, A->value());
    if (Failed)
      return;
    Storage *Store = Fr.Slots[A->target().Var];
    int64_t Flat = 0;
    if (A->target().isArrayElement()) {
      if (!flatIndex(Fr, *Store, A->target().Indices, Flat))
        return;
    } else if (!Store->Dims.empty()) {
      fail("whole-array assignment is not supported");
      return;
    }
    Store->store(Flat, V);
    transfer(Fr, Pc, CfgLabel::U, Pc + 1);
    return;
  }
  case StmtKind::IfGoto: {
    const auto *If = cast<IfGotoStmt>(S);
    Value Cond = eval(Fr, If->cond());
    if (Failed)
      return;
    if (Cond.asBool())
      transfer(Fr, Pc, CfgLabel::T, If->target());
    else
      transfer(Fr, Pc, CfgLabel::F, Pc + 1);
    return;
  }
  case StmtKind::Goto:
    transfer(Fr, Pc, CfgLabel::U, cast<GotoStmt>(S)->target());
    return;
  case StmtKind::ComputedGoto: {
    const auto *Cg = cast<ComputedGotoStmt>(S);
    int64_t Index = eval(Fr, Cg->index()).asInt();
    if (Failed)
      return;
    if (Index >= 1 && Index <= static_cast<int64_t>(Cg->targets().size()))
      transfer(Fr, Pc, caseLabel(static_cast<unsigned>(Index)),
               Cg->targets()[static_cast<size_t>(Index - 1)]);
    else
      transfer(Fr, Pc, CfgLabel::U, Pc + 1); // Out of range: fall through.
    return;
  }
  case StmtKind::DoStart: {
    const auto *Do = cast<DoStmt>(S);
    bool ViaLatch = Fr.ViaLatch;
    Fr.ViaLatch = false;
    if (!ViaLatch) {
      // Fresh entry: evaluate bounds once (Fortran-77 semantics).
      int64_t Lo = eval(Fr, Do->lo()).asInt();
      int64_t Hi = eval(Fr, Do->hi()).asInt();
      int64_t Step = Do->step() ? eval(Fr, Do->step()).asInt() : 1;
      if (Failed)
        return;
      if (Step == 0) {
        fail("DO loop with zero step");
        return;
      }
      int64_t Trip = (Hi - Lo + Step) / Step;
      if (Trip < 0)
        Trip = 0;
      Fr.Slots[Do->indexVar()]->store(0, Value::makeInt(Lo));
      Fr.Loops[Pc] = {Trip, Step};
      for (ExecutionObserver *O : Obs)
        O->onDoLoopEntry(*F, Pc, Trip + 1, depth());
    }
    DoState &State = Fr.Loops[Pc];
    if (State.Remaining > 0)
      transfer(Fr, Pc, CfgLabel::T, Pc + 1);
    else
      transfer(Fr, Pc, CfgLabel::F, Do->matchingEnd() + 1);
    return;
  }
  case StmtKind::DoEnd: {
    const auto *End = cast<EndDoStmt>(S);
    StmtId Header = End->matchingDo();
    auto It = Fr.Loops.find(Header);
    if (It == Fr.Loops.end()) {
      fail("ENDDO reached without an active DO (jump into loop body?)");
      return;
    }
    Storage *Index =
        Fr.Slots[cast<DoStmt>(F->stmt(Header))->indexVar()];
    Index->store(0, Value::makeInt(Index->load(0).I + It->second.Step));
    --It->second.Remaining;
    Fr.ViaLatch = true;
    transfer(Fr, Pc, CfgLabel::U, Header);
    return;
  }
  case StmtKind::Call: {
    const auto *C = cast<CallStmt>(S);
    const Function *Callee = Prog.findFunction(C->callee());
    if (!Callee) {
      fail("call to undefined procedure " + C->callee());
      return;
    }
    if (Stack.size() >= MaxCallDepth) {
      fail("call depth limit exceeded (runaway recursion?)");
      return;
    }
    auto CalleeFr = std::make_unique<Frame>();
    CalleeFr->F = Callee;
    CalleeFr->Slots.resize(Callee->numSymbols(), nullptr);
    if (!bindArguments(Fr, C, *CalleeFr))
      return;
    // Observers see the caller's onward transfer now; the callee's events
    // are bracketed by onProcedureEntry/Exit one level deeper. The caller
    // frame must stay alive while the callee runs (by-reference arguments
    // alias its storage), so even when the CALL is the caller's last
    // statement we only advance the Pc here — the main loop pops the
    // frame once the callee returns and the Pc is found past the end.
    StmtId Next = Pc + 1;
    bool Leaves = Next >= F->numStmts();
    for (ExecutionObserver *O : Obs)
      O->onTransfer(*F, Pc, CfgLabel::U, Leaves ? InvalidStmt : Next,
                    depth());
    Fr.Pc = Next;
    Stack.push_back(std::move(CalleeFr));
    for (ExecutionObserver *O : Obs)
      O->onProcedureEntry(*Callee, depth());
    return;
  }
  case StmtKind::Return:
    transfer(Fr, Pc, CfgLabel::U, InvalidStmt);
    return;
  case StmtKind::Continue:
    transfer(Fr, Pc, CfgLabel::U, Pc + 1);
    return;
  case StmtKind::Print: {
    const auto *P = cast<PrintStmt>(S);
    std::vector<std::string> Parts;
    for (const Expr *A : P->args()) {
      Value V = eval(Fr, A);
      if (Failed)
        return;
      Parts.push_back(V.Ty == Type::Real ? formatDouble(V.R)
                                         : std::to_string(V.asInt()));
    }
    Result.Output += join(Parts, " ");
    Result.Output += '\n';
    transfer(Fr, Pc, CfgLabel::U, Pc + 1);
    return;
  }
  }
  PTRAN_UNREACHABLE("unknown StmtKind");
}

RunResult Engine::run(uint64_t MaxSteps) {
  const Function *Entry = Prog.entry();
  if (!Entry) {
    fail("program has no entry procedure");
    Result.Ok = false;
    return Result;
  }
  pushFrame(Entry);
  {
    Frame &Fr = *Stack.back();
    // The entry procedure takes no arguments; allocate all locals.
    for (VarId V = 0; V < Entry->numSymbols(); ++V) {
      const Symbol &Sym = Entry->symbol(V);
      auto Owned =
          std::make_unique<Storage>(Storage::allocate(Sym.Ty, Sym.Dims));
      Fr.Slots[V] = Owned.get();
      Fr.Owned.push_back(std::move(Owned));
    }
  }

  uint64_t Steps = 0;
  while (!Stack.empty() && !Failed)
    step(Steps, MaxSteps);

  Result.Ok = !Failed;
  return Result;
}

} // namespace

Interpreter::Interpreter(const Program &P, const CostModel &Model)
    : Prog(P), CM(Model) {}

RunResult Interpreter::run(uint64_t MaxSteps) {
  return Engine(Prog, CM, Observers).run(MaxSteps);
}
