//===--- interp/Observer.h - Execution observation hooks --------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observation hooks fired by the interpreter. The profiling runtimes
/// (naive per-basic-block and the paper's optimized counter placement)
/// attach as observers; so do the loop-frequency trackers that collect
/// E[FREQ^2] for the variance analysis.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_INTERP_OBSERVER_H
#define PTRAN_INTERP_OBSERVER_H

#include "cfg/Cfg.h"
#include "ir/Function.h"

namespace ptran {

/// Receives execution events. All hooks default to no-ops; `Depth` is the
/// call-frame depth (0 = the program entry), which lets observers keep
/// per-activation state under recursion.
class ExecutionObserver {
public:
  virtual ~ExecutionObserver();

  /// A procedure activation begins (fired before its first statement).
  virtual void onProcedureEntry(const Function &F, unsigned Depth);

  /// A procedure activation ends.
  virtual void onProcedureExit(const Function &F, unsigned Depth);

  /// Statement \p S of \p F is about to execute.
  virtual void onStatement(const Function &F, StmtId S, unsigned Depth);

  /// Control leaves statement \p From along \p Label towards \p To
  /// (InvalidStmt when the transfer leaves the procedure).
  virtual void onTransfer(const Function &F, StmtId From, CfgLabel Label,
                          StmtId To, unsigned Depth);

  /// A DO loop is entered from outside; \p HeaderExecutions is the number
  /// of times its header will execute for this entry (trip count + 1).
  /// Fired only for DO loops, whose trip count is known on entry — the
  /// fact the paper's third profiling optimization exploits.
  virtual void onDoLoopEntry(const Function &F, StmtId DoHeader,
                             int64_t HeaderExecutions, unsigned Depth);
};

} // namespace ptran

#endif // PTRAN_INTERP_OBSERVER_H
