//===--- interp/Interpreter.h - MiniIR interpreter --------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for MiniIR programs with a simulated cycle
/// clock (driven by a CostModel) and observer hooks for profiling. This is
/// the substrate standing in for the paper's IBM 3090 + VS Fortran
/// testbed: profiling overhead becomes counter-update work measured on the
/// same simulated clock.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_INTERP_INTERPRETER_H
#define PTRAN_INTERP_INTERPRETER_H

#include "interp/CostModel.h"
#include "interp/Observer.h"
#include "interp/Value.h"

#include <string>
#include <vector>

namespace ptran {

/// Outcome of one program run.
struct RunResult {
  bool Ok = false;
  /// Error description when !Ok (runtime fault or budget exhaustion).
  std::string Error;
  /// Simulated cycles consumed by the program itself (no profiling).
  double Cycles = 0.0;
  /// Total statements executed.
  uint64_t StatementsExecuted = 0;
  /// Output accumulated by PRINT statements, one line per PRINT.
  std::string Output;
};

/// Interprets a verified MiniIR program.
class Interpreter {
public:
  /// \p P must have been finalized and verified (expression types are
  /// needed). The cost model drives the simulated clock.
  Interpreter(const Program &P, const CostModel &CM);

  /// Registers an observer; observers are invoked in registration order
  /// and must outlive the interpreter.
  void addObserver(ExecutionObserver *O) { Observers.push_back(O); }

  /// Runs the program entry procedure. \p MaxSteps bounds the number of
  /// executed statements (a runaway-loop backstop).
  RunResult run(uint64_t MaxSteps = 200'000'000);

private:
  const Program &Prog;
  CostModel CM;
  std::vector<ExecutionObserver *> Observers;
};

} // namespace ptran

#endif // PTRAN_INTERP_INTERPRETER_H
