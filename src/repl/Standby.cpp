//===--- repl/Standby.cpp - Warm-standby replication applier --------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "repl/Standby.h"

#include "support/FaultInjection.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <optional>
#include <set>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::repl;

/// Strict u64 decimal parser for wire LSN fields (see Replication.cpp).
static std::optional<uint64_t> parseU64(const std::string &Text) {
  if (Text.empty() || Text.size() > 20)
    return std::nullopt;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (~0ull - Digit) / 10)
      return std::nullopt;
    V = V * 10 + Digit;
  }
  return V;
}

StandbyReplicator::StandbyReplicator(const Options &O) : O(O) {
  if (!this->O.Connect) {
    std::string Socket = this->O.PrimarySocket;
    this->O.Connect = [Socket](std::string &Error) {
      return serve::connectUnix(Socket, Error);
    };
  }
}

std::string StandbyReplicator::markerPath() const {
  return O.Store->dir() + "/repl-bootstrap.pending";
}

void StandbyReplicator::bump(const char *Counter, uint64_t Delta) {
  if (O.Obs)
    O.Obs->addCounter(Counter, Delta);
}

bool StandbyReplicator::start(std::string &Error) {
  O.Core->setReadOnly(true);
  // A leftover marker means a previous incarnation died mid-bootstrap:
  // whatever restore() just rebuilt is a half-adopted mix of old and new
  // state. Drop it all and demand a fresh bootstrap.
  struct stat St;
  if (::lstat(markerPath().c_str(), &St) == 0) {
    std::fprintf(stderr,
                 "ptran-serve: incomplete bootstrap detected (%s); "
                 "discarding local state and re-bootstrapping\n",
                 markerPath().c_str());
    O.Core->clearAllSessions();
    std::string ResetErr;
    if (!O.Store->journal().resetTo(1, ResetErr)) {
      Error = "cannot reset journal after torn bootstrap: " + ResetErr;
      return false;
    }
    std::set<std::string> None;
    if (!O.Store->pruneSnapshotsExcept(None, Error))
      return false;
    if (::unlink(markerPath().c_str()) < 0 && errno != ENOENT) {
      Error = std::string("cannot clear bootstrap marker: ") +
              std::strerror(errno);
      return false;
    }
    bump("repl.torn_bootstraps_recovered");
  }
  StopFlag.store(false, std::memory_order_release);
  Applier = std::thread([this] { applierLoop(); });
  return true;
}

void StandbyReplicator::stop() {
  StopFlag.store(true, std::memory_order_release);
  int Fd = LiveFd.exchange(-1);
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR); // Wake a blocked readFrame.
  if (Applier.joinable())
    Applier.join();
}

bool StandbyReplicator::promote(std::string &Error) {
  if (Promoted.load(std::memory_order_acquire))
    return true;
  if (Bootstrapping.load(std::memory_order_acquire)) {
    Error = "standby is mid-bootstrap; its state is not yet a consistent "
            "replica — retry once the bootstrap finishes";
    return false;
  }
  stop();
  // Everything applied so far becomes this daemon's own durable history.
  if (!O.Store->journal().sync(Error))
    return false;
  if (FaultInjection::maybeCrashAt("repl.promote"))
    FaultInjection::dieAtCrashPoint();
  Promoted.store(true, std::memory_order_release);
  O.Core->setReadOnly(false);
  bump("repl.promotions");
  return true;
}

void StandbyReplicator::applierLoop() {
  BackoffSchedule Backoff(O.Backoff);
  while (!StopFlag.load(std::memory_order_acquire)) {
    std::string Error;
    int Fd = O.Connect(Error);
    if (Fd < 0) {
      bump("repl.connect_failures");
      std::this_thread::sleep_for(Backoff.next());
      continue;
    }
    LiveFd.store(Fd, std::memory_order_release);
    Connected.store(true, std::memory_order_release);
    bool Clean = runSession(Fd);
    Connected.store(false, std::memory_order_release);
    int Live = LiveFd.exchange(-1);
    ::close(Fd);
    if (Live < 0 || StopFlag.load(std::memory_order_acquire))
      return;
    bump("repl.reconnects");
    if (Clean)
      Backoff = BackoffSchedule(O.Backoff); // Healthy session: reset pacing.
    std::this_thread::sleep_for(Backoff.next());
  }
}

bool StandbyReplicator::applyBootstrap(int Fd,
                                       const serve::WireMessage &Head) {
  std::optional<uint64_t> Count = parseU64(Head.param("count"));
  std::optional<uint64_t> Watermark = parseU64(Head.param("watermark"));
  if (!Count || !Watermark) {
    std::fprintf(stderr, "ptran-serve: malformed repl-bootstrap header\n");
    return false;
  }

  // Mark the window in which our on-disk state is a half-adopted mix; a
  // crash inside it is detected at the next start().
  int MFd = ::open(markerPath().c_str(), O_CREAT | O_WRONLY | O_CLOEXEC, 0644);
  if (MFd < 0) {
    std::fprintf(stderr, "ptran-serve: cannot write bootstrap marker: %s\n",
                 std::strerror(errno));
    return false;
  }
  ::close(MFd);
  Bootstrapping.store(true, std::memory_order_release);
  O.Core->clearAllSessions();

  std::set<std::string> Received;
  bool FirstAdopted = false;
  for (uint64_t I = 0; I != *Count; ++I) {
    serve::WireMessage Snap;
    std::string Error;
    int Rc = serve::readFrame(Fd, Snap, Error);
    if (Rc <= 0 || Snap.Verb != "repl-snapshot") {
      std::fprintf(stderr,
                   "ptran-serve: bootstrap interrupted at snapshot %llu/%llu"
                   "%s%s\n",
                   static_cast<unsigned long long>(I),
                   static_cast<unsigned long long>(*Count),
                   Error.empty() ? "" : ": ", Error.c_str());
      return false;
    }
    std::vector<uint8_t> Image(Snap.Body.begin(), Snap.Body.end());
    std::vector<std::string> Diagnostics;
    if (!O.Core->adoptSnapshotImage(Image, Diagnostics, Error)) {
      std::fprintf(stderr,
                   "ptran-serve: bootstrap snapshot '%s' rejected: %s\n",
                   Snap.param("session").c_str(), Error.c_str());
      return false;
    }
    for (const std::string &D : Diagnostics)
      std::fprintf(stderr, "ptran-serve: bootstrap: %s\n", D.c_str());
    Received.insert(Snap.param("session"));
    if (!FirstAdopted) {
      FirstAdopted = true;
      if (FaultInjection::maybeCrashAt("repl.bootstrap"))
        FaultInjection::dieAtCrashPoint();
    }
  }

  // Stale snapshots from the pre-bootstrap life must not resurrect their
  // sessions, and the journal restarts at the watermark the images cover.
  std::string Error;
  if (!O.Store->pruneSnapshotsExcept(Received, Error) ||
      !O.Store->journal().resetTo(*Watermark + 1, Error)) {
    std::fprintf(stderr, "ptran-serve: bootstrap finalization failed: %s\n",
                 Error.c_str());
    return false;
  }
  if (::unlink(markerPath().c_str()) < 0 && errno != ENOENT) {
    std::fprintf(stderr, "ptran-serve: cannot clear bootstrap marker: %s\n",
                 std::strerror(errno));
    return false;
  }
  Bootstrapping.store(false, std::memory_order_release);
  AppliedLsn.store(*Watermark, std::memory_order_release);
  bump("repl.bootstraps_applied");
  std::fprintf(stderr,
               "ptran-serve: bootstrapped %llu session(s) at watermark "
               "%llu\n",
               static_cast<unsigned long long>(*Count),
               static_cast<unsigned long long>(*Watermark));
  return true;
}

bool StandbyReplicator::runSession(int Fd) {
  std::string Error;
  serve::WireMessage Subscribe;
  Subscribe.Verb = "repl-subscribe";
  Subscribe.Params["from-lsn"] =
      std::to_string(O.Store->journal().nextLsn());
  if (!serve::writeFrame(Fd, Subscribe, Error))
    return false;
  serve::WireMessage Resp;
  if (serve::readFrame(Fd, Resp, Error) != 1 || Resp.Verb != "ok") {
    std::fprintf(stderr,
                 "ptran-serve: primary refused subscription%s%s\n",
                 Error.empty() ? "" : ": ", Error.c_str());
    return false;
  }

  serve::WireMessage M;
  for (;;) {
    int Rc = serve::readFrame(Fd, M, Error);
    if (Rc <= 0) {
      if (Rc < 0 && !StopFlag.load(std::memory_order_acquire))
        std::fprintf(stderr, "ptran-serve: replication stream broke: %s\n",
                     Error.c_str());
      return Rc == 0;
    }
    if (M.Verb == "repl-bootstrap") {
      if (!applyBootstrap(Fd, M))
        return false;
      continue;
    }
    if (M.Verb != "repl-frames")
      continue;
    std::optional<uint64_t> First = parseU64(M.param("from-lsn"));
    std::optional<uint64_t> Count = parseU64(M.param("count"));
    if (!First || !Count || *Count == 0 ||
        *Count > std::numeric_limits<uint32_t>::max()) {
      std::fprintf(stderr, "ptran-serve: malformed repl-frames header\n");
      return false;
    }
    uint64_t Applied = 0;
    std::vector<std::string> Diagnostics;
    if (!O.Core->applyReplicatedBatch(
            reinterpret_cast<const uint8_t *>(M.Body.data()), M.Body.size(),
            *First, static_cast<uint32_t>(*Count),
            /*Sync=*/O.Ack == AckMode::Always, Applied, Diagnostics, Error)) {
      // A batch that fails validation (or hits disk trouble) leaves the
      // journal at its old tail; resubscribing from nextLsn() makes the
      // primary resend exactly the missing run.
      std::fprintf(stderr, "ptran-serve: replicated batch rejected: %s\n",
                   Error.c_str());
      return false;
    }
    for (const std::string &D : Diagnostics)
      std::fprintf(stderr, "ptran-serve: replicated apply: %s\n", D.c_str());
    AppliedLsn.store(Applied, std::memory_order_release);
    if (O.Ack != AckMode::None) {
      serve::WireMessage Ack;
      Ack.Verb = "repl-ack";
      Ack.Params["applied-lsn"] = std::to_string(Applied);
      // durable-lsn: what we can promise survived OUR crash. Under
      // ack=always every batch was fsynced before this line; under batch
      // the bytes may still be in the page cache, so durability is not
      // claimed.
      Ack.Params["durable-lsn"] =
          std::to_string(O.Ack == AckMode::Always ? Applied : 0);
      if (!serve::writeFrame(Fd, Ack, Error))
        return false;
      bump("repl.acks_sent");
    }
  }
}
