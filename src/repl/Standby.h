//===--- repl/Standby.h - Warm-standby replication applier ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Standby side of warm-standby replication: StandbyReplicator subscribes
/// to a primary (see Replication.h for the wire protocol), bootstraps
/// from its snapshot images when needed, and feeds every shipped frame
/// batch through ServeCore::applyReplicatedBatch — journal write-ahead,
/// then apply — so the standby's disk state IS a valid `--state-dir` at
/// every instant. The owning daemon keeps its core read-only
/// (ServeCore::setReadOnly) while this runs: `estimate`/`stats` answer
/// from replicated state, mutations get the structured `read-only` error.
///
/// Bootstrap crash-safety: before applying the first snapshot image, the
/// standby touches `<state-dir>/repl-bootstrap.pending`; the marker is
/// removed only after the journal was reset to the bootstrap watermark.
/// A standby that boots with the marker present had died mid-bootstrap —
/// its registry and snapshots are a half-adopted mix — so it drops every
/// session and demands a fresh bootstrap (from-lsn=0) instead of trusting
/// them. crash.at=repl.bootstrap dies between the first adopted snapshot
/// and the journal reset, exercising exactly that path.
///
/// Reconnect: connection loss never kills the standby; it redials with
/// the support/Retry backoff schedule and resubscribes from its journal's
/// nextLsn (the watermark handshake — nothing is ever double-applied,
/// because applyReplicatedBatch only accepts the exact next LSN run).
///
/// Promotion (the `promote` verb or SIGUSR1): seals catch-up — stop the
/// applier, fsync the journal, lift read-only — after which the daemon
/// accepts writes and appends to the journal it inherited at the LSN the
/// primary left off. crash.at=repl.promote dies after the seal, before
/// read-only lifts; the restarted daemon recovers as a normal primary.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_REPL_STANDBY_H
#define PTRAN_REPL_STANDBY_H

#include "repl/Replication.h"
#include "support/Retry.h"

#include <atomic>
#include <functional>
#include <string>
#include <thread>

namespace ptran {
namespace repl {

class StandbyReplicator {
public:
  struct Options {
    /// The primary's Unix socket (--standby-of=PATH).
    std::string PrimarySocket;
    serve::ServeCore *Core = nullptr;     ///< Required.
    durable::StateStore *Store = nullptr; ///< Required.
    AckMode Ack = AckMode::None;
    ObsRegistry *Obs = nullptr;
    /// Redial pacing after a connect failure or lost subscription.
    RetryPolicy Backoff = RetryPolicy().retries(1u << 30);
    /// Test/bench hook: replaces connectUnix(PrimarySocket). Returns a
    /// connected fd or -1 with the error set.
    std::function<int(std::string &)> Connect;
  };

  explicit StandbyReplicator(const Options &O);
  ~StandbyReplicator() { stop(); }

  StandbyReplicator(const StandbyReplicator &) = delete;
  StandbyReplicator &operator=(const StandbyReplicator &) = delete;

  /// Marks the core read-only, handles a leftover bootstrap marker, and
  /// starts the applier thread. False with \p Error when the state dir's
  /// marker cannot be probed/cleared.
  bool start(std::string &Error);

  /// Seals catch-up and opens the core for writes (see file comment).
  /// Idempotent; safe from a signal-watcher thread. False with \p Error
  /// when the standby is mid-bootstrap (promoting would serve a half-
  /// adopted registry) or the final journal fsync fails.
  bool promote(std::string &Error);

  /// Stops the applier without promoting (daemon shutdown). Idempotent.
  void stop();

  uint64_t lastAppliedLsn() const {
    return AppliedLsn.load(std::memory_order_acquire);
  }
  bool connected() const { return Connected.load(std::memory_order_acquire); }
  bool promoted() const { return Promoted.load(std::memory_order_acquire); }

private:
  void applierLoop();
  /// One connected subscription: subscribe, then apply bootstraps and
  /// frame batches until disconnect/stop. False = transient (redial).
  bool runSession(int Fd);
  /// Applies one full bootstrap starting from its `repl-bootstrap` head
  /// message. False aborts the session (redial re-subscribes).
  bool applyBootstrap(int Fd, const serve::WireMessage &Head);
  std::string markerPath() const;
  void bump(const char *Counter, uint64_t Delta = 1);

  Options O;
  std::thread Applier;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> Promoted{false};
  std::atomic<bool> Connected{false};
  std::atomic<uint64_t> AppliedLsn{0};
  std::atomic<int> LiveFd{-1};
  /// True while a bootstrap is in flight (the marker file is on disk).
  std::atomic<bool> Bootstrapping{false};
};

} // namespace repl
} // namespace ptran

#endif // PTRAN_REPL_STANDBY_H
