//===--- repl/Replication.cpp - Journal shipping to warm standbys ---------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "repl/Replication.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include <sys/socket.h>

using namespace ptran;
using namespace ptran::repl;

/// LSNs are u64; parseUnsigned is 32-bit and parseDouble loses precision
/// past 2^53, so wire LSN fields get their own strict decimal parser.
static std::optional<uint64_t> parseU64(const std::string &Text) {
  if (Text.empty() || Text.size() > 20)
    return std::nullopt;
  uint64_t V = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return std::nullopt;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (V > (~0ull - Digit) / 10)
      return std::nullopt;
    V = V * 10 + Digit;
  }
  return V;
}

std::optional<AckMode> repl::parseAckMode(const std::string &Text) {
  std::string M = toLower(Text);
  if (M == "none")
    return AckMode::None;
  if (M == "batch")
    return AckMode::Batch;
  if (M == "always")
    return AckMode::Always;
  return std::nullopt;
}

const char *repl::ackModeName(AckMode M) {
  switch (M) {
  case AckMode::None:
    return "none";
  case AckMode::Batch:
    return "batch";
  case AckMode::Always:
    return "always";
  }
  return "none";
}

void JournalShipper::bump(const char *Counter, uint64_t Delta) {
  if (O.Obs)
    O.Obs->addCounter(Counter, Delta);
}

unsigned JournalShipper::subscriberCount() const {
  std::lock_guard<std::mutex> L(Mu);
  unsigned N = 0;
  for (const auto &S : Subs)
    if (!S->Dead.load(std::memory_order_acquire))
      ++N;
  return N;
}

void JournalShipper::onAppend(uint64_t) { AppendCv.notify_all(); }

uint64_t JournalShipper::minSubscriberLsn() {
  std::lock_guard<std::mutex> L(Mu);
  uint64_t Min = ~0ull;
  for (const auto &S : Subs)
    if (!S->Dead.load(std::memory_order_acquire))
      Min = std::min(Min, S->NextLsn.load(std::memory_order_acquire));
  return Min;
}

bool JournalShipper::waitDurable(uint64_t Lsn) {
  if (O.Ack != AckMode::Always)
    return true;
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(O.AckWaitMs);
  std::unique_lock<std::mutex> L(Mu);
  // No live subscriber: there is nothing to wait for; durability degrades
  // to single-machine (the standby will catch up from the journal when it
  // reconnects). Waiting would only stall every mutation while the
  // standby is down.
  auto Satisfied = [&] {
    if (StopFlag.load(std::memory_order_acquire))
      return true;
    bool AnyLive = false;
    for (const auto &S : Subs) {
      if (S->Dead.load(std::memory_order_acquire))
        continue;
      AnyLive = true;
      if (S->DurableLsn.load(std::memory_order_acquire) >= Lsn)
        return true;
    }
    return !AnyLive;
  };
  return AckCv.wait_until(L, Deadline, Satisfied);
}

void JournalShipper::stop() {
  StopFlag.store(true, std::memory_order_release);
  std::lock_guard<std::mutex> L(Mu);
  for (const auto &S : Subs)
    if (!S->Dead.exchange(true))
      ::shutdown(S->Fd, SHUT_RDWR); // Unblocks the ack reader's recv.
  AppendCv.notify_all();
  AckCv.notify_all();
}

bool JournalShipper::sendBootstrap(int Fd,
                                   durable::DeltaJournal::ReadCursor &Cursor,
                                   std::string &Error) {
  serve::ServeCore::BootstrapCapture Cap;
  if (!O.Core->captureBootstrap(Cap, Error))
    return false;

  serve::WireMessage Head;
  Head.Verb = "repl-bootstrap";
  Head.Params["count"] = std::to_string(Cap.Snapshots.size());
  Head.Params["watermark"] = std::to_string(Cap.Watermark);
  if (!serve::writeFrame(Fd, Head, Error))
    return false;
  for (size_t I = 0; I != Cap.Snapshots.size(); ++I) {
    serve::WireMessage Snap;
    Snap.Verb = "repl-snapshot";
    Snap.Params["index"] = std::to_string(I);
    Snap.Params["session"] = Cap.Snapshots[I].Session;
    Snap.Body.assign(Cap.Snapshots[I].Image.begin(),
                     Cap.Snapshots[I].Image.end());
    if (!serve::writeFrame(Fd, Snap, Error))
      return false;
    if (FaultInjection::maybeCrashAt("repl.snapshot"))
      FaultInjection::dieAtCrashPoint();
  }
  Cursor = durable::DeltaJournal::ReadCursor();
  Cursor.NextLsn = Cap.Watermark + 1;
  bump("repl.bootstraps_sent");
  return true;
}

void JournalShipper::runSubscription(int Fd,
                                     const serve::WireMessage &Subscribe) {
  uint64_t FromLsn = parseU64(Subscribe.param("from-lsn")).value_or(0);

  auto Sub = std::make_shared<Subscription>();
  Sub->Fd = Fd;
  Sub->NextLsn.store(FromLsn ? FromLsn : 1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> L(Mu);
    if (StopFlag.load(std::memory_order_acquire))
      return;
    Subs.push_back(Sub);
  }
  bump("repl.subscriptions");

  std::string Error;
  serve::WireMessage Ok;
  Ok.Verb = "ok";
  Ok.Params["ack"] = ackModeName(O.Ack);
  bool Alive = serve::writeFrame(Fd, Ok, Error);

  // The standby acks (and its disconnect) arrive on the same socket the
  // frames leave on; a dedicated reader keeps the shipper loop a pure
  // writer. It takes no locks beyond Mu (never ServeCore's), so the
  // ack=always path cannot deadlock against request threads.
  std::thread AckReader([this, Fd, Sub] {
    serve::WireMessage M;
    std::string Err;
    for (;;) {
      int Rc = serve::readFrame(Fd, M, Err);
      if (Rc <= 0)
        break;
      if (M.Verb != "repl-ack")
        continue;
      if (std::optional<uint64_t> A = parseU64(M.param("applied-lsn")))
        Sub->AppliedLsn.store(*A, std::memory_order_release);
      if (std::optional<uint64_t> D = parseU64(M.param("durable-lsn")))
        Sub->DurableLsn.store(*D, std::memory_order_release);
      AckCv.notify_all();
      bump("repl.acks_received");
      if (FaultInjection::maybeCrashAt("repl.ack"))
        FaultInjection::dieAtCrashPoint();
    }
    Sub->Dead.store(true, std::memory_order_release);
    // A dead subscriber must release ack=always waiters immediately —
    // they re-evaluate liveness and degrade instead of timing out.
    AckCv.notify_all();
    AppendCv.notify_all();
  });

  durable::DeltaJournal &Journal = O.Store->journal();
  durable::DeltaJournal::ReadCursor Cursor;
  Cursor.NextLsn = FromLsn ? FromLsn : 1;
  // A fresh standby (from-lsn=0) or one ahead of this journal (it
  // replicated a primary whose history we do not share) starts from a
  // snapshot bootstrap; a lagging one streams straight from the journal.
  bool NeedBootstrap = FromLsn == 0 || FromLsn > Journal.nextLsn();

  std::vector<uint8_t> Raw;
  while (Alive && !StopFlag.load(std::memory_order_acquire) &&
         !Sub->Dead.load(std::memory_order_acquire)) {
    if (NeedBootstrap) {
      if (!sendBootstrap(Fd, Cursor, Error)) {
        std::fprintf(stderr, "ptran-serve: replication bootstrap failed: %s\n",
                     Error.c_str());
        break;
      }
      Sub->NextLsn.store(Cursor.NextLsn, std::memory_order_release);
      NeedBootstrap = false;
      continue;
    }
    Raw.clear();
    uint32_t Count = 0;
    uint64_t First = Cursor.NextLsn;
    durable::DeltaJournal::ReadResult RR = Journal.readFrames(
        Cursor, MaxBatchBytes, MaxBatchRecords, Raw, Count, Error);
    switch (RR) {
    case durable::DeltaJournal::ReadResult::Ok: {
      serve::WireMessage Frames;
      Frames.Verb = "repl-frames";
      Frames.Params["from-lsn"] = std::to_string(First);
      Frames.Params["count"] = std::to_string(Count);
      Frames.Body.assign(Raw.begin(), Raw.end());
      if (!serve::writeFrame(Fd, Frames, Error)) {
        Alive = false;
        break;
      }
      if (FaultInjection::maybeCrashAt("repl.ship"))
        FaultInjection::dieAtCrashPoint();
      Sub->NextLsn.store(Cursor.NextLsn, std::memory_order_release);
      bump("repl.frames_shipped", Count);
      bump("repl.bytes_shipped", Raw.size());
      break;
    }
    case durable::DeltaJournal::ReadResult::AtEnd: {
      // Caught up: sleep until journalAppend wakes us (or poll — a missed
      // notify costs one tick, not a hang).
      std::unique_lock<std::mutex> L(Mu);
      AppendCv.wait_for(L, std::chrono::milliseconds(100), [&] {
        return StopFlag.load(std::memory_order_acquire) ||
               Sub->Dead.load(std::memory_order_acquire);
      });
      break;
    }
    case durable::DeltaJournal::ReadResult::Rotated:
      // The tail this subscriber needed was rotated into snapshots;
      // restart it from those snapshots on this same connection.
      NeedBootstrap = true;
      bump("repl.rotation_bootstraps");
      break;
    case durable::DeltaJournal::ReadResult::IoError:
      std::fprintf(stderr,
                   "ptran-serve: replication read failed (subscriber "
                   "dropped): %s\n",
                   Error.c_str());
      Alive = false;
      break;
    }
  }

  if (!Sub->Dead.exchange(true))
    ::shutdown(Fd, SHUT_RDWR); // Unblock the ack reader.
  AckCv.notify_all();
  AckReader.join();
  std::lock_guard<std::mutex> L(Mu);
  Subs.erase(std::remove(Subs.begin(), Subs.end(), Sub), Subs.end());
}
