//===--- repl/Replication.h - Journal shipping to warm standbys -*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primary side of warm-standby replication: JournalShipper streams the
/// write-ahead journal's raw frames to subscribed standby daemons and
/// feeds their acknowledgements back into the request path.
///
/// Wire protocol (Protocol.h framing, one subscription per connection):
///
///   standby -> primary   repl-subscribe from-lsn=N
///   primary -> standby   ok ack=none|batch|always
///   primary -> standby   repl-bootstrap count=K watermark=W
///   primary -> standby   repl-snapshot index=I session=NAME   (body: PTSS
///                        image; K of them, then streaming resumes at W+1)
///   primary -> standby   repl-frames from-lsn=L count=N       (body: the
///                        exact on-disk `len|crc|body` frame bytes)
///   standby -> primary   repl-ack applied-lsn=A durable-lsn=D
///
/// `from-lsn` is the standby's journal nextLsn (0 = demand a bootstrap).
/// The primary streams frames when that LSN is still inside its journal;
/// when it rotated away (or the standby is ahead/fresh), it interposes a
/// bootstrap — snapshot images captured under the structure lock at one
/// watermark W — and resumes framing at W+1. Shipped frames are the
/// byte-identical journal frames, so a promoted standby's journal replays
/// to the same estimates as the primary's (the paper's TIME/VAR pipeline
/// is deterministic in the mutation history).
///
/// Ack levels (--repl-ack): none = fire-and-forget; batch = the standby
/// acks after applying (lag observability, no request coupling); always =
/// the primary's journalAppend blocks (bounded) until a standby reports
/// the LSN fsynced — no acknowledged mutation can be lost to a single
/// machine failure.
///
/// Fault-injection points: crash.at=repl.ship dies right after a frame
/// batch is sent; crash.at=repl.snapshot dies mid-bootstrap (after the
/// first snapshot message); crash.at=repl.ack dies after an ack is
/// processed.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_REPL_REPLICATION_H
#define PTRAN_REPL_REPLICATION_H

#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "serve/Server.h"
#include "serve/Wire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ptran {
namespace repl {

/// When the primary acknowledges a mutation relative to standby durability.
enum class AckMode : uint8_t {
  None,   ///< Fire-and-forget shipping; no acks flow back.
  Batch,  ///< Standby acks after applying (no fsync); lag is observable.
  Always, ///< Primary acks a mutation only after a standby fsynced it.
};

std::optional<AckMode> parseAckMode(const std::string &Text);
const char *ackModeName(AckMode M);

/// Caps on one repl-frames batch: small enough to bound the journal-lock
/// hold and the standby's apply granularity, large enough to amortize the
/// framing.
inline constexpr uint64_t MaxBatchBytes = 1u << 20;
inline constexpr uint32_t MaxBatchRecords = 512;

/// Primary-side shipper: owns every live subscription and implements the
/// ServeCore hooks (onAppend wake-ups, ack=always durability waits, the
/// checkpoint rotation guard). One instance per daemon; runSubscription
/// is called from the connection thread that received repl-subscribe and
/// occupies it for the life of the subscription.
class JournalShipper : public serve::ReplicationHooks {
public:
  struct Options {
    durable::StateStore *Store = nullptr; ///< Journal to tail. Required.
    serve::ServeCore *Core = nullptr;     ///< Bootstrap capture. Required.
    AckMode Ack = AckMode::None;
    ObsRegistry *Obs = nullptr;
    /// Upper bound on one ack=always durability wait; past it the request
    /// proceeds with degraded durability (counted, never wedged).
    unsigned AckWaitMs = 5000;
  };

  explicit JournalShipper(const Options &O) : O(O) {}
  ~JournalShipper() { stop(); }

  /// Breaks the construction cycle in the daemon: ServeOptions wants the
  /// shipper (as ReplicationHooks) before ServeCore exists, and the
  /// shipper wants the core for bootstrap capture. Call before the first
  /// subscription arrives.
  void setCore(serve::ServeCore *Core) { O.Core = Core; }

  JournalShipper(const JournalShipper &) = delete;
  JournalShipper &operator=(const JournalShipper &) = delete;

  /// Serves one subscription on \p Fd until the standby disconnects or
  /// stop() is called. \p Subscribe is the already-read repl-subscribe
  /// message. Spawns the per-subscription ack-reader thread and joins it
  /// before returning; the caller still owns (and closes) \p Fd.
  void runSubscription(int Fd, const serve::WireMessage &Subscribe);

  /// Wakes every blocked shipper loop and durability wait; in-flight
  /// runSubscription calls return promptly. Idempotent.
  void stop();

  /// Live subscriptions right now.
  unsigned subscriberCount() const;

  // ReplicationHooks:
  void onAppend(uint64_t Lsn) override;
  bool waitDurable(uint64_t Lsn) override;
  uint64_t minSubscriberLsn() override;

private:
  struct Subscription {
    int Fd = -1;
    /// Next journal LSN this subscriber needs (checkpoint keeps the
    /// journal un-rotated below it).
    std::atomic<uint64_t> NextLsn{~0ull};
    std::atomic<uint64_t> AppliedLsn{0};
    std::atomic<uint64_t> DurableLsn{0};
    std::atomic<bool> Dead{false};
  };

  /// Captures + sends a full bootstrap, leaving \p Cursor at watermark+1.
  bool sendBootstrap(int Fd, durable::DeltaJournal::ReadCursor &Cursor,
                     std::string &Error);
  void bump(const char *Counter, uint64_t Delta = 1);

  Options O;

  /// Guards Subs and backs both CVs. Never taken while holding a
  /// ServeCore lock is NOT required here — the reverse: ServeCore calls
  /// in (onAppend/waitDurable) while holding ITS locks, so nothing under
  /// Mu may call back into ServeCore.
  mutable std::mutex Mu;
  std::condition_variable AppendCv; ///< journal grew; shippers re-read.
  std::condition_variable AckCv;    ///< an ack landed; durability waits.
  std::vector<std::shared_ptr<Subscription>> Subs;
  std::atomic<bool> StopFlag{false};
};

} // namespace repl
} // namespace ptran

#endif // PTRAN_REPL_REPLICATION_H
