//===--- cost/Estimator.cpp - End-to-end estimation pipeline --------------===//

#include "cost/Estimator.h"

#include "support/FatalError.h"

using namespace ptran;

std::unique_ptr<Estimator> Estimator::create(const Program &P,
                                             const CostModel &CM,
                                             const EstimatorOptions &Opts) {
  DiagnosticEngine Scratch;
  DiagnosticEngine &Diags = Opts.Diags ? *Opts.Diags : Scratch;

  auto Est = std::unique_ptr<Estimator>(new Estimator());
  Est->P = &P;
  Est->CM = CM;
  Est->Opts = Opts;
  AnalysisOptions AOpts;
  AOpts.Exec = Opts.Exec;
  AOpts.Obs = Opts.Obs;
  AOpts.Cancel = Opts.Cancel;
  Est->PA = ProgramAnalysis::compute(P, Diags, AOpts);
  // The estimation pipeline needs every procedure (counter plans, the
  // interpreter and the interprocedural pass span the whole program), so
  // a partial analysis is a hard failure here — including a cut-short one:
  // without the FCDGs there are no static frequencies to degrade to, so
  // token expiry during analysis fails atomically under every
  // DeadlinePolicy (the cancellation diagnostic is already on Diags).
  if (!Est->PA || !Est->PA->allOk())
    return nullptr;
  AnalysisOptions Raw = AOpts;
  Raw.ElideGotos = false;
  Est->RawPA = ProgramAnalysis::compute(P, Diags, Raw);
  if (!Est->RawPA || !Est->RawPA->allOk())
    return nullptr;
  {
    TimingSpan Span(Opts.Obs.Registry, "plan.counters");
    Est->Plan = ProgramPlan::build(*Est->PA, Opts.Mode);
  }
  Est->Runtime = std::make_unique<ProfileRuntime>(*Est->PA, Est->Plan, CM,
                                                  Opts.Obs.Registry);
  Est->Stats = std::make_unique<LoopFrequencyStats>(*Est->RawPA);
  return Est;
}

std::unique_ptr<Estimator> Estimator::create(const Program &P,
                                             const CostModel &CM,
                                             DiagnosticEngine &Diags,
                                             ProfileMode Mode,
                                             unsigned Jobs) {
  return create(P, CM, EstimatorOptions(Diags).mode(Mode).jobs(Jobs));
}

RunResult Estimator::profiledRun(uint64_t MaxSteps) {
  TimingSpan Span(Opts.Obs.Registry, "profiled-run");
  Interpreter Interp(*P, CM);
  Interp.addObserver(Runtime.get());
  Interp.addObserver(Stats.get());
  return Interp.run(MaxSteps);
}

TimeAnalysis Estimator::analyze() {
  TimeAnalysisOptions TAOpts;
  TAOpts.LoopVariance = Opts.LoopVariance;
  return analyze(TAOpts);
}

TimeAnalysis Estimator::analyze(TimeAnalysisOptions TAOpts) {
  if (TAOpts.Kernel == TimeKernel::Csr)
    TAOpts.Kernel = Opts.Kernel;
  if (TAOpts.LoopVariance == LoopVarianceMode::Profiled && !TAOpts.Stats)
    TAOpts.Stats = Stats.get();
  if (!TAOpts.Exec.Pool && TAOpts.Exec.Jobs == 1)
    TAOpts.Exec = Opts.Exec;
  if (!TAOpts.Diags)
    TAOpts.Diags = Opts.Diags;
  if (!TAOpts.Obs.enabled())
    TAOpts.Obs = Opts.Obs;
  if (!TAOpts.Cancel)
    TAOpts.Cancel = Opts.Cancel;

  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : P->functions()) {
    FrequencyTotals Totals = Runtime->recover(*F);
    if (!Totals.Ok)
      reportFatalError("counter recovery failed for function " + F->name());
    Freqs[F.get()] = computeFrequencies(PA->of(*F), Totals);
  }
  return TimeAnalysis::run(*PA, Freqs, CM, TAOpts);
}
