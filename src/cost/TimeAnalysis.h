//===--- cost/TimeAnalysis.h - Average times and variance -------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core contribution (Sections 4 and 5): average execution
/// times TIME(u) and their variance VAR(u) for every node of the forward
/// control dependence graph, in one linear bottom-up pass per procedure,
/// and bottom-up over the call graph interprocedurally (rule 2:
/// COST(call) = TIME(callee START)).
///
/// Variance follows Section 5 exactly: Case 1 (preheaders) uses the
/// product-variance identity with the loop-frequency variance
/// VAR(FREQ(u,l)) supplied by a configurable model — identically zero, a
/// closed-form distribution assumption (geometric/uniform), or the
/// profiled second moment E[FREQ^2]; Case 2 (branch probabilities)
/// computes E[TIME_C^2] across the label outcomes. As an extension
/// (flagged), a call's COST may carry the callee's variance instead of the
/// paper's VAR(COST(u)) = 0 assumption, and recursive call graphs are
/// handled by fixed-point iteration (the paper defers them).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_COST_TIMEANALYSIS_H
#define PTRAN_COST_TIMEANALYSIS_H

#include "freq/Frequencies.h"
#include "interp/CostModel.h"
#include "obs/Observability.h"
#include "profile/ProfileRuntime.h"
#include "support/Cancellation.h"
#include "support/ExecutionPolicy.h"

#include <functional>
#include <map>
#include <optional>
#include <vector>

namespace ptran {

/// How VAR(FREQ) of a loop frequency is modelled (Section 5, Case 1).
enum class LoopVarianceMode {
  Zero,      ///< VAR(FREQ) = 0 (the paper's simplified final equation).
  Profiled,  ///< E[FREQ^2] from LoopFrequencyStats.
  Geometric, ///< Header executions ~ shifted geometric with the observed
             ///< mean: VAR = mean^2 - mean.
  Uniform,   ///< Header executions ~ uniform on {1 .. 2*mean-1}:
             ///< VAR = ((2*mean-1)^2 - 1) / 12.
};

/// Which propagation kernel evaluates the Section 4/5 recurrences. Both
/// kernels compute bit-identical TIME/VAR/STD_DEV (asserted by the csr
/// test suite across job counts); they differ only in data layout and
/// speed.
enum class TimeKernel {
  /// Linear sweeps over the FlowArena's topologically-indexed CSR arrays
  /// with dense per-position TIME/VAR buffers and dense FREQ lookups; no
  /// heap allocation inside the sweep (proved by cost.hotpath.allocs).
  Csr,
  /// The original formulation walking the FCDG Digraph through
  /// childrenOf()/labelsOf() and the map-backed freqOf(). Kept as the
  /// reference for differential testing and benchmarking.
  NodeObjects,
};

/// Options for the time/variance analysis.
struct TimeAnalysisOptions {
  /// Propagation kernel; Csr unless you are differential-testing.
  TimeKernel Kernel = TimeKernel::Csr;
  LoopVarianceMode LoopVariance = LoopVarianceMode::Zero;
  /// Required when LoopVariance == Profiled.
  const LoopFrequencyStats *Stats = nullptr;
  /// Replace the local COST(u) of specific statements (used to reproduce
  /// Figure 3's literal COST assignments). Returning nullopt keeps the
  /// CostModel's estimate.
  std::function<std::optional<double>(const Function &, const Stmt *)>
      LocalCostOverride;
  /// Extension: propagate the callee's variance into call nodes instead of
  /// the paper's VAR(COST) = 0 assumption.
  bool PropagateCalleeVariance = true;
  /// Extension: the paper's Case 2 treats every branch — including a DO
  /// header's continue/exit test — as an independent Bernoulli draw, so
  /// even a compile-time-constant loop acquires variance. With this flag
  /// the headers of exit-free DO loops are treated as deterministic: only
  /// their children's variance propagates, no branch-outcome term.
  bool DeterministicDoHeaders = false;
  /// Fixed-point iterations for recursive call-graph cycles.
  unsigned RecursionIterations = 16;
  /// Workers (or a shared pool) for the interprocedural pass. The call
  /// graph is condensed with Tarjan's SCCs, the condensation is ordered
  /// into topological waves, and every SCC of a wave is evaluated
  /// concurrently (recursive SCCs keep their serial fixpoint within the
  /// wave). All cross-SCC reads happen at wave barriers, so results are
  /// bit-for-bit identical under every policy.
  ExecutionPolicy Exec;
  /// Optional sink for analysis warnings: calls whose callee is undefined
  /// (or otherwise unsummarized) contribute zero time, and are reported
  /// here once per callee instead of being silently dropped.
  DiagnosticEngine *Diags = nullptr;
  /// Tracing/metrics sink: when enabled, the whole pass, every wave of
  /// the SCC condensation and every component evaluation record timing
  /// spans, and fixpoint-iteration / evaluation counters accumulate in
  /// the registry. Disabled (the default) costs one branch per site.
  ObservabilityOptions Obs;
  /// Cooperative cancellation: polled at every SCC-component entry and
  /// every recursion-fixpoint iteration, and estimate storage is charged
  /// against the token's memory budget. Once the token expires no further
  /// component is evaluated; the functions left without estimates land in
  /// unfinished(). Because waves evaluate callers strictly after callees
  /// and expiry is monotone, every function that did finish saw only final
  /// callee summaries — finished estimates are bit-identical to an
  /// unbounded run. Null (the default) = unbounded.
  CancelToken *Cancel = nullptr;
};

/// TIME/VAR of one procedure's START node: the summary callers consume
/// through rule 2, and the unit an incremental estimation session caches
/// at the clean/dirty frontier.
struct FunctionSummary {
  double Time = 0.0;
  double Var = 0.0;
};

/// Per-node estimation results (the [...] tuples of Figure 3).
struct NodeEstimates {
  double Cost = 0.0;   ///< COST(u): local average execution time; for a
                       ///< call node this includes TIME(callee START).
  double SelfCost = 0.0; ///< COST(u) without any callee contribution
                         ///< (linkage only, for calls).
  double Time = 0.0;   ///< TIME(u): total average execution time.
  double TimeSq = 0.0; ///< E[T^2].
  double Var = 0.0;    ///< VAR(u).
  double StdDev = 0.0; ///< sqrt(VAR(u)).
};

/// The analysis results for a whole program.
class TimeAnalysis {
public:
  /// Runs the analysis. \p FreqsByFunction must contain Frequencies for
  /// every procedure of \p PA's program.
  static TimeAnalysis
  run(const ProgramAnalysis &PA,
      const std::map<const Function *, Frequencies> &FreqsByFunction,
      const CostModel &CM,
      const TimeAnalysisOptions &Opts = TimeAnalysisOptions());

  /// Incremental re-run: \p Changed names the functions whose inputs
  /// (frequencies, loop moments, cost model overrides) differ from the
  /// ones \p Previous was computed with. Only the dirty closure — the
  /// changed functions plus their call-graph ancestors, widened to whole
  /// SCCs — is re-evaluated; every other function reuses its estimates
  /// from \p Previous verbatim, and its cached summary feeds callers at
  /// the frontier. Because the wave schedule evaluates a function only
  /// after all callee summaries are final, the result is bit-identical to
  /// a full run() on the new inputs. \p Previous must come from the same
  /// ProgramAnalysis with the same options and an identical cost model;
  /// the caller (e.g. EstimationSession) is responsible for widening
  /// \p Changed to "everything" when the configuration itself changed.
  static TimeAnalysis
  rerun(const ProgramAnalysis &PA,
        const std::map<const Function *, Frequencies> &FreqsByFunction,
        const CostModel &CM, const TimeAnalysisOptions &Opts,
        const TimeAnalysis &Previous,
        const std::vector<const Function *> &Changed);

  /// Estimates of ECFG node \p N of \p F.
  const NodeEstimates &of(const Function &F, NodeId N) const;

  /// All node estimates of \p F, indexed by ECFG node id (the raw vector,
  /// e.g. for byte-level comparison of incremental vs cold results).
  const std::vector<NodeEstimates> &estimatesOf(const Function &F) const;

  /// TIME(START) of \p F: the procedure's average execution time.
  double functionTime(const Function &F) const;
  /// VAR(START) of \p F.
  double functionVariance(const Function &F) const;

  /// The whole program's TIME(START) (of the entry procedure).
  double programTime() const;
  /// The whole program's STD_DEV(START).
  double programStdDev() const;

  /// True if the call graph contains recursion (handled by fixed-point
  /// iteration).
  bool hasRecursion() const { return Recursive; }

  /// Per-function bottom-up evaluations this run performed (a recursive
  /// SCC's fixpoint counts every iteration of every member). Incremental
  /// sessions and tests assert through this counter that clean SCCs were
  /// not re-evaluated.
  uint64_t functionEvaluations() const { return Evaluations; }

  /// True when Opts.Cancel expired before every dirty function was
  /// evaluated. Unfinished functions carry no estimates at all — of() and
  /// estimatesOf() fatal-error on them, and an incremental rerun() sees
  /// them as dirty — so callers must either fail or degrade them
  /// explicitly (DeadlinePolicy); finished functions are bit-identical to
  /// an unbounded run.
  bool cutShort() const { return !Unfinished.empty(); }
  /// The functions without estimates, in program order. Closed under
  /// "callers of": a caller is only evaluated after its callees, so every
  /// transitive caller of an unfinished function is itself unfinished.
  const std::vector<const Function *> &unfinished() const {
    return Unfinished;
  }
  /// Why the run was cut short (None when !cutShort()).
  CancelReason cutReason() const { return CutReason; }

private:
  static TimeAnalysis
  runImpl(const ProgramAnalysis &PA,
          const std::map<const Function *, Frequencies> &FreqsByFunction,
          const CostModel &CM, const TimeAnalysisOptions &Opts,
          const TimeAnalysis *Previous,
          const std::vector<const Function *> *Changed);

  const ProgramAnalysis *PA = nullptr;
  std::map<const Function *, std::vector<NodeEstimates>> PerFunction;
  bool Recursive = false;
  uint64_t Evaluations = 0;
  std::vector<const Function *> Unfinished;
  CancelReason CutReason = CancelReason::None;
};

} // namespace ptran

#endif // PTRAN_COST_TIMEANALYSIS_H
