//===--- cost/Estimator.h - End-to-end estimation pipeline ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience facade running the whole framework end to end: analyze
/// the program, build a counter plan, execute one or more profiled runs on
/// the interpreter (accumulating totals across runs, as the paper's
/// program database does), recover TOTAL_FREQ, compute relative
/// frequencies, and finally the TIME/VAR estimates. Examples, tests and
/// benchmarks all drive this class (directly or through an
/// EstimationSession).
///
/// Construction is configured through EstimatorOptions; the historical
/// positional-parameter create(P, CM, Diags, Mode, Jobs) overload remains
/// as a deprecated shim.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_COST_ESTIMATOR_H
#define PTRAN_COST_ESTIMATOR_H

#include "cost/TimeAnalysis.h"
#include "interp/Interpreter.h"
#include "profile/ProfileFile.h"

#include <memory>

namespace ptran {

/// Options for one estimation campaign. Fluent setters keep call sites
/// one-liners:
///
///   Estimator::create(P, CM, EstimatorOptions(Diags).jobs(8));
struct EstimatorOptions {
  /// Counter-placement mode for the profiling plan.
  ProfileMode Mode = ProfileMode::Smart;
  /// Parallelism shared by every pass the estimator runs (per-function
  /// analysis fan-out and the interprocedural TIME/VAR waves). A session
  /// typically points this at one long-lived pool.
  ExecutionPolicy Exec;
  /// Default loop-variance model for analyze() calls (and session queries)
  /// that do not specify one.
  LoopVarianceMode LoopVariance = LoopVarianceMode::Zero;
  /// TIME/VAR propagation kernel for analyze() calls and session queries.
  /// Csr (the default) and NodeObjects are bit-identical; NodeObjects
  /// exists for differential testing and benchmarking.
  TimeKernel Kernel = TimeKernel::Csr;
  /// Sink for analysis/estimation diagnostics; null drops them. Must
  /// outlive the estimator when set.
  DiagnosticEngine *Diags = nullptr;
  /// Tracing/metrics registry shared by every pass the estimator drives
  /// (analysis spans, plan construction, profiled runs, counter recovery,
  /// the TIME/VAR waves). Disabled by default; the registry must outlive
  /// the estimator when set.
  ObservabilityOptions Obs;
  /// What an EstimationSession does with a function whose profile data
  /// fails validation (recovery divergence, non-finite totals, checksum
  /// or Σ-identity failures on ingest). Fail preserves the historical
  /// whole-query failure; Quarantine degrades just that function to
  /// static frequencies and tags its results.
  BadProfilePolicy OnBadProfile = BadProfilePolicy::Fail;
  /// Cooperative cancellation / deadline / budget token polled by every
  /// pass the estimator (or session) drives. Null = unbounded. The token
  /// must outlive the estimator; arm it (deadline, budgets) before the
  /// call it should bound.
  CancelToken *Cancel = nullptr;
  /// What a session query does when Cancel expires mid-estimation. Fail
  /// rejects the query atomically with a structured Timeout/Cancelled
  /// diagnostic; Degrade completes the unfinished functions from static
  /// frequencies (tagged on EstimateResult, non-sticky — the next query
  /// recomputes them exactly) while completed functions stay bit-identical
  /// to an unbounded run. Expiry during program analysis always fails:
  /// without an FCDG there is nothing to degrade to.
  DeadlinePolicy OnDeadline = DeadlinePolicy::Fail;
  /// Retry policy for profile-file IO driven through the session
  /// (saveProfile/loadProfile); transient failures are absorbed per the
  /// policy, only persistent ones surface.
  RetryPolicy IoRetry;

  EstimatorOptions() = default;
  explicit EstimatorOptions(DiagnosticEngine &D) : Diags(&D) {}

  EstimatorOptions &mode(ProfileMode M) {
    Mode = M;
    return *this;
  }
  EstimatorOptions &jobs(unsigned J) {
    Exec.Jobs = J;
    return *this;
  }
  EstimatorOptions &pool(ThreadPool &P) {
    Exec.Pool = &P;
    return *this;
  }
  EstimatorOptions &loopVariance(LoopVarianceMode M) {
    LoopVariance = M;
    return *this;
  }
  EstimatorOptions &kernel(TimeKernel K) {
    Kernel = K;
    return *this;
  }
  EstimatorOptions &diags(DiagnosticEngine &D) {
    Diags = &D;
    return *this;
  }
  EstimatorOptions &observability(ObsRegistry &R) {
    Obs.Registry = &R;
    return *this;
  }
  EstimatorOptions &onBadProfile(BadProfilePolicy Policy) {
    OnBadProfile = Policy;
    return *this;
  }
  EstimatorOptions &cancel(CancelToken &T) {
    Cancel = &T;
    return *this;
  }
  EstimatorOptions &onDeadline(DeadlinePolicy Policy) {
    OnDeadline = Policy;
    return *this;
  }
  EstimatorOptions &ioRetry(const RetryPolicy &Policy) {
    IoRetry = Policy;
    return *this;
  }
};

/// Owns the per-program state of one estimation campaign.
class Estimator {
public:
  /// Analyzes \p P (which must outlive the estimator). Returns null on
  /// analysis failure (e.g. irreducible control flow), reported to
  /// \p Opts.Diags when set.
  static std::unique_ptr<Estimator>
  create(const Program &P, const CostModel &CM,
         const EstimatorOptions &Opts = EstimatorOptions());

  /// Deprecated positional-parameter shim for the pre-EstimatorOptions
  /// signature; forwards to the options-based overload.
  [[deprecated("use Estimator::create(P, CM, "
               "EstimatorOptions(Diags).mode(...).jobs(...))")]]
  static std::unique_ptr<Estimator>
  create(const Program &P, const CostModel &CM, DiagnosticEngine &Diags,
         ProfileMode Mode = ProfileMode::Smart, unsigned Jobs = 1);

  /// Runs the program once with profiling attached, accumulating counter
  /// values and loop-frequency moments. \returns the interpreter result.
  RunResult profiledRun(uint64_t MaxSteps = 200'000'000);

  /// Recovers totals and frequencies for every function from the counters
  /// accumulated so far, then runs the time/variance analysis.
  /// \p Opts.Stats is filled in automatically when LoopVariance ==
  /// Profiled and no stats were supplied; \p Opts.Exec defaults to the
  /// estimator's execution policy unless the caller overrides it.
  TimeAnalysis analyze(TimeAnalysisOptions Opts);
  /// Same, with the estimator's option defaults (loop-variance mode,
  /// execution policy, diagnostics sink).
  TimeAnalysis analyze();

  const EstimatorOptions &options() const { return Opts; }
  const ProgramAnalysis &analysis() const { return *PA; }
  /// The goto-preserving analysis driving run-time loop tracking (its
  /// statement ids key the loop-frequency moments).
  const ProgramAnalysis &rawAnalysis() const { return *RawPA; }
  const ProgramPlan &plan() const { return Plan; }
  const ProfileRuntime &runtime() const { return *Runtime; }
  /// Mutable runtime access (e.g. to reset counters between epochs).
  ProfileRuntime &runtimeMutable() { return *Runtime; }
  const LoopFrequencyStats &loopStats() const { return *Stats; }
  /// Mutable loop stats, for callers driving the interpreter themselves
  /// (the moments must be fed for LoopVarianceMode::Profiled to bite).
  LoopFrequencyStats &loopStatsMutable() { return *Stats; }

  /// Recovered totals of one function (after at least one profiledRun).
  FrequencyTotals totalsFor(const Function &F) const {
    return Runtime->recover(F);
  }

private:
  Estimator() = default;

  const Program *P = nullptr;
  CostModel CM;
  EstimatorOptions Opts;
  std::unique_ptr<ProgramAnalysis> PA;
  /// Goto-preserving analysis for run-time loop tracking.
  std::unique_ptr<ProgramAnalysis> RawPA;
  ProgramPlan Plan;
  std::unique_ptr<ProfileRuntime> Runtime;
  std::unique_ptr<LoopFrequencyStats> Stats;
};

} // namespace ptran

#endif // PTRAN_COST_ESTIMATOR_H
