//===--- cost/Estimator.h - End-to-end estimation pipeline ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience facade running the whole framework end to end: analyze
/// the program, build a counter plan, execute one or more profiled runs on
/// the interpreter (accumulating totals across runs, as the paper's
/// program database does), recover TOTAL_FREQ, compute relative
/// frequencies, and finally the TIME/VAR estimates. Examples, tests and
/// benchmarks all drive this class.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_COST_ESTIMATOR_H
#define PTRAN_COST_ESTIMATOR_H

#include "cost/TimeAnalysis.h"
#include "interp/Interpreter.h"

#include <memory>

namespace ptran {

/// Owns the per-program state of one estimation campaign.
class Estimator {
public:
  /// Analyzes \p P (which must outlive the estimator). Returns null on
  /// analysis failure (e.g. irreducible control flow), reported to
  /// \p Diags. \p Jobs is the worker-thread count for the per-function
  /// analysis fan-out and the interprocedural pass (1 = serial,
  /// 0 = hardware concurrency); every value computes identical results.
  static std::unique_ptr<Estimator>
  create(const Program &P, const CostModel &CM, DiagnosticEngine &Diags,
         ProfileMode Mode = ProfileMode::Smart, unsigned Jobs = 1);

  /// Runs the program once with profiling attached, accumulating counter
  /// values and loop-frequency moments. \returns the interpreter result.
  RunResult profiledRun(uint64_t MaxSteps = 200'000'000);

  /// Recovers totals and frequencies for every function from the counters
  /// accumulated so far, then runs the time/variance analysis.
  /// \p Opts.Stats is filled in automatically when LoopVariance ==
  /// Profiled and no stats were supplied; \p Opts.Jobs defaults to the
  /// estimator's job count unless the caller overrides it.
  TimeAnalysis analyze(TimeAnalysisOptions Opts = TimeAnalysisOptions());

  const ProgramAnalysis &analysis() const { return *PA; }
  const ProgramPlan &plan() const { return Plan; }
  const ProfileRuntime &runtime() const { return *Runtime; }
  /// Mutable runtime access (e.g. to reset counters between epochs).
  ProfileRuntime &runtimeMutable() { return *Runtime; }
  const LoopFrequencyStats &loopStats() const { return *Stats; }

  /// Recovered totals of one function (after at least one profiledRun).
  FrequencyTotals totalsFor(const Function &F) const {
    return Runtime->recover(F);
  }

private:
  Estimator() = default;

  const Program *P = nullptr;
  CostModel CM;
  unsigned Jobs = 1;
  std::unique_ptr<ProgramAnalysis> PA;
  /// Goto-preserving analysis for run-time loop tracking.
  std::unique_ptr<ProgramAnalysis> RawPA;
  ProgramPlan Plan;
  std::unique_ptr<ProfileRuntime> Runtime;
  std::unique_ptr<LoopFrequencyStats> Stats;
};

} // namespace ptran

#endif // PTRAN_COST_ESTIMATOR_H
