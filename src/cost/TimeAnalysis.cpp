//===--- cost/TimeAnalysis.cpp - Average times and variance ---------------===//

#include "cost/TimeAnalysis.h"

#include "graph/Scc.h"
#include "obs/HotpathAlloc.h"
#include "support/Casting.h"
#include "support/FatalError.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <set>
#include <unordered_map>

using namespace ptran;

namespace {

/// Loop-frequency variance per Section 5, Case 1 (shared by both kernels;
/// the arithmetic must match bit for bit).
double loopFreqVariance(const FunctionAnalysis &FA,
                        const TimeAnalysisOptions &Opts, NodeId Ph,
                        double Mean) {
  switch (Opts.LoopVariance) {
  case LoopVarianceMode::Zero:
    return 0.0;
  case LoopVarianceMode::Profiled: {
    if (!Opts.Stats)
      return 0.0;
    NodeId Header = FA.ecfg().headerOf(Ph);
    assert(Header != InvalidNode && "loop variance on a non-preheader");
    const LoopFrequencyStats::Moments *M = Opts.Stats->momentsFor(
        FA.function(), FA.ecfg().cfg().origin(Header));
    return M ? M->variance() : 0.0;
  }
  case LoopVarianceMode::Geometric: {
    // Header executions >= 1 with mean m modelled as 1 + Geometric:
    // VAR = m^2 - m.
    double V = Mean * Mean - Mean;
    return V > 0.0 ? V : 0.0;
  }
  case LoopVarianceMode::Uniform: {
    // Header executions ~ U{1, .., 2m-1}: VAR = ((2m-1)^2 - 1) / 12.
    double Width = 2.0 * Mean - 1.0;
    double V = (Width * Width - 1.0) / 12.0;
    return V > 0.0 ? V : 0.0;
  }
  }
  PTRAN_UNREACHABLE("unknown LoopVarianceMode");
}

/// Computes one function's estimates bottom-up over its FCDG — the
/// original node-object formulation (TimeKernel::NodeObjects), kept as
/// the differential-testing reference for the CSR kernel below.
std::vector<NodeEstimates>
computeFunction(const FunctionAnalysis &FA, const Frequencies &Freqs,
                const CostModel &CM, const TimeAnalysisOptions &Opts,
                const std::map<const Function *, FunctionSummary> &Callees,
                const Program &Prog, ThreadSafeDiagnostics *Unresolved) {
  const ControlDependence &CD = FA.cd();
  const Ecfg &E = FA.ecfg();
  const Cfg &C = E.cfg();
  const Function &F = FA.function();

  std::vector<NodeEstimates> Est(C.numNodes());

  // Local cost and local cost-variance of a node.
  auto LocalCost = [&](NodeId N, double &Cost, double &SelfCost,
                       double &VarCost) {
    Cost = 0.0;
    SelfCost = 0.0;
    VarCost = 0.0;
    StmtId S = C.origin(N);
    if (S == InvalidStmt)
      return; // START/STOP/preheader/postexit carry no local work.
    const Stmt *St = F.stmt(S);
    std::optional<double> Overridden;
    if (Opts.LocalCostOverride)
      Overridden = Opts.LocalCostOverride(F, St);
    Cost = Overridden ? *Overridden : CM.statementCost(St);
    SelfCost = Cost;
    if (const auto *Call = dyn_cast<CallStmt>(St)) {
      // Rule 2: a call's cost includes the callee's average time.
      const Function *Callee = Prog.findFunction(Call->callee());
      auto It = Callee ? Callees.find(Callee) : Callees.end();
      if (It != Callees.end()) {
        Cost += It->second.Time;
        if (Opts.PropagateCalleeVariance)
          VarCost = It->second.Var;
      } else if (Unresolved) {
        // An external/undefined procedure contributes zero callee time;
        // say so (once per callee) instead of silently underestimating.
        Unresolved->warningOnce("call to unresolved procedure '" +
                                Call->callee() +
                                "' contributes zero callee time");
      }
    }
  };

  // Bottom-up: children before parents.
  const std::vector<NodeId> &Topo = CD.topoOrder();
  for (auto It = Topo.rbegin(); It != Topo.rend(); ++It) {
    NodeId U = *It;
    NodeEstimates &EU = Est[U];
    double VarCost = 0.0;
    LocalCost(U, EU.Cost, EU.SelfCost, VarCost);

    bool IsPreheader = E.headerOf(U) != InvalidNode;
    if (IsPreheader) {
      // Case 1. Only the U label matters; the pseudo labels have zero
      // frequency (and the body sum below therefore ignores them).
      double Freq = Freqs.freqOf({U, CfgLabel::U});
      double SumTime = 0.0;
      double SumVar = 0.0;
      for (NodeId V : CD.childrenOf(U, CfgLabel::U)) {
        SumTime += Est[V].Time;
        SumVar += Est[V].Var;
      }
      double FreqVar = loopFreqVariance(FA, Opts, U, Freq);
      EU.Time = EU.Cost + Freq * SumTime;
      EU.Var = VarCost + Freq * Freq * SumVar +
               FreqVar * SumTime * SumTime + FreqVar * SumVar;
    } else {
      // Case 2: TIME_C and E[TIME_C^2] over the label outcomes.
      bool Deterministic =
          Opts.DeterministicDoHeaders && U < E.numOriginalNodes() &&
          FA.intervals().isHeader(U) &&
          FA.intervals().isExitFreeDoLoop(FA.cfg(), U);
      double TimeC = 0.0;
      double TimeCSq = 0.0;
      double ChildVar = 0.0;
      for (CfgLabel L : CD.labelsOf(U)) {
        double Freq = Freqs.freqOf({U, L});
        double SumTime = 0.0;
        double SumVar = 0.0;
        for (NodeId V : CD.childrenOf(U, L)) {
          SumTime += Est[V].Time;
          SumVar += Est[V].Var;
        }
        TimeC += Freq * SumTime;
        TimeCSq += Freq * (SumVar + SumTime * SumTime);
        ChildVar += Freq * SumVar;
      }
      EU.Time = EU.Cost + TimeC;
      if (Deterministic) {
        // The header's outcome is not a random draw; only the children's
        // variance flows through.
        EU.Var = VarCost + ChildVar;
      } else {
        EU.Var = VarCost + (TimeCSq - TimeC * TimeC);
      }
      if (EU.Var < 0.0)
        EU.Var = 0.0; // Floating-point cancellation guard.
    }
    EU.TimeSq = EU.Var + EU.Time * EU.Time;
    EU.StdDev = std::sqrt(EU.Var);
  }
  return Est;
}

/// The CSR propagation kernel (TimeKernel::Csr): one reverse linear sweep
/// over the FlowArena with dense per-position TIME/VAR buffers, dense
/// FREQ lookups and a precomputed callee-resolution table. Performs the
/// exact floating-point operation sequence of computeFunction above —
/// the arena stores label groups in labelsOf() order and children in
/// childrenOf() order — so results are bit-identical; only layout and
/// lookup costs differ. The propagation loop performs no heap allocation;
/// the delta observed by HotpathAllocScope is accumulated into
/// \p HotpathAllocs (surfaced as the cost.hotpath.allocs counter).
std::vector<NodeEstimates> computeFunctionCsr(
    const FunctionAnalysis &FA, const Frequencies &Freqs,
    const CostModel &CM, const TimeAnalysisOptions &Opts,
    const std::map<const Function *, FunctionSummary> &Callees,
    const std::vector<const Function *> &CalleeOf,
    ThreadSafeDiagnostics *Unresolved, std::atomic<uint64_t> &HotpathAllocs) {
  const ControlDependence &CD = FA.cd();
  const FlowArena &A = CD.arena();
  const Ecfg &E = FA.ecfg();
  const Cfg &C = E.cfg();
  const Function &F = FA.function();
  unsigned NumPos = A.numPositions();

  std::vector<NodeEstimates> Est(C.numNodes());
  // Dense TIME/VAR indexed by topological position: the bottom-up sweep
  // reads children from contiguous memory instead of chasing node ids.
  std::vector<double> TimeBuf(NumPos, 0.0);
  std::vector<double> VarBuf(NumPos, 0.0);

  // Dense FREQ per arena group. Every in-tree producer fills GroupFreq;
  // a hand-built Frequencies (dense form missing) gets one here.
  const double *GF = Freqs.GroupFreq.data();
  std::vector<double> LocalGF;
  if (Freqs.GroupFreq.size() != A.numGroups()) {
    LocalGF.assign(A.numGroups(), 0.0);
    for (unsigned P = 0; P < NumPos; ++P)
      for (uint32_t Gi = A.groupsBegin(P); Gi != A.groupsEnd(P); ++Gi)
        LocalGF[Gi] = Freqs.freqOf({A.node(P), A.group(Gi).Label});
    GF = LocalGF.data();
  }

  // Bottom-up: positions are topological, so a reverse walk sees every
  // child before its parent. Allocation-free from here on.
  HotpathAllocScope AllocScope;
  for (unsigned P = NumPos; P-- > 0;) {
    NodeId U = A.node(P);
    NodeEstimates &EU = Est[U];
    double VarCost = 0.0;

    StmtId S = C.origin(U);
    if (S != InvalidStmt) {
      const Stmt *St = F.stmt(S);
      std::optional<double> Overridden;
      if (Opts.LocalCostOverride)
        Overridden = Opts.LocalCostOverride(F, St);
      EU.Cost = Overridden ? *Overridden : CM.statementCost(St);
      EU.SelfCost = EU.Cost;
      if (const auto *Call = dyn_cast<CallStmt>(St)) {
        // Rule 2 through the precomputed resolution table.
        const Function *Callee = CalleeOf[U];
        auto It = Callee ? Callees.find(Callee) : Callees.end();
        if (It != Callees.end()) {
          EU.Cost += It->second.Time;
          if (Opts.PropagateCalleeVariance)
            VarCost = It->second.Var;
        } else if (Unresolved) {
          Unresolved->warningOnce("call to unresolved procedure '" +
                                  Call->callee() +
                                  "' contributes zero callee time");
        }
      }
    }

    bool IsPreheader = E.headerOf(U) != InvalidNode;
    if (IsPreheader) {
      // Case 1. Only the U label matters; pseudo labels have zero
      // frequency, so their groups are simply skipped.
      double Freq = 0.0;
      double SumTime = 0.0;
      double SumVar = 0.0;
      for (uint32_t Gi = A.groupsBegin(P); Gi != A.groupsEnd(P); ++Gi) {
        const FlowArena::Group &G = A.group(Gi);
        if (G.Label != CfgLabel::U)
          continue;
        Freq = GF[Gi];
        for (uint32_t Ci = G.ChildBegin; Ci != G.ChildEnd; ++Ci) {
          unsigned CP = A.child(Ci);
          SumTime += TimeBuf[CP];
          SumVar += VarBuf[CP];
        }
      }
      double FreqVar = loopFreqVariance(FA, Opts, U, Freq);
      EU.Time = EU.Cost + Freq * SumTime;
      EU.Var = VarCost + Freq * Freq * SumVar +
               FreqVar * SumTime * SumTime + FreqVar * SumVar;
    } else {
      // Case 2: TIME_C and E[TIME_C^2] over the label outcomes, one
      // arena group per outcome.
      bool Deterministic =
          Opts.DeterministicDoHeaders && U < E.numOriginalNodes() &&
          FA.intervals().isHeader(U) &&
          FA.intervals().isExitFreeDoLoop(FA.cfg(), U);
      double TimeC = 0.0;
      double TimeCSq = 0.0;
      double ChildVar = 0.0;
      for (uint32_t Gi = A.groupsBegin(P); Gi != A.groupsEnd(P); ++Gi) {
        const FlowArena::Group &G = A.group(Gi);
        double Freq = GF[Gi];
        double SumTime = 0.0;
        double SumVar = 0.0;
        for (uint32_t Ci = G.ChildBegin; Ci != G.ChildEnd; ++Ci) {
          unsigned CP = A.child(Ci);
          SumTime += TimeBuf[CP];
          SumVar += VarBuf[CP];
        }
        TimeC += Freq * SumTime;
        TimeCSq += Freq * (SumVar + SumTime * SumTime);
        ChildVar += Freq * SumVar;
      }
      EU.Time = EU.Cost + TimeC;
      if (Deterministic) {
        EU.Var = VarCost + ChildVar;
      } else {
        EU.Var = VarCost + (TimeCSq - TimeC * TimeC);
      }
      if (EU.Var < 0.0)
        EU.Var = 0.0; // Floating-point cancellation guard.
    }
    EU.TimeSq = EU.Var + EU.Time * EU.Time;
    EU.StdDev = std::sqrt(EU.Var);
    TimeBuf[P] = EU.Time;
    VarBuf[P] = EU.Var;
  }
  HotpathAllocs.fetch_add(AllocScope.count(), std::memory_order_relaxed);
  return Est;
}

} // namespace

TimeAnalysis TimeAnalysis::run(
    const ProgramAnalysis &PA,
    const std::map<const Function *, Frequencies> &FreqsByFunction,
    const CostModel &CM, const TimeAnalysisOptions &Opts) {
  return runImpl(PA, FreqsByFunction, CM, Opts, nullptr, nullptr);
}

TimeAnalysis TimeAnalysis::rerun(
    const ProgramAnalysis &PA,
    const std::map<const Function *, Frequencies> &FreqsByFunction,
    const CostModel &CM, const TimeAnalysisOptions &Opts,
    const TimeAnalysis &Previous,
    const std::vector<const Function *> &Changed) {
  return runImpl(PA, FreqsByFunction, CM, Opts, &Previous, &Changed);
}

TimeAnalysis TimeAnalysis::runImpl(
    const ProgramAnalysis &PA,
    const std::map<const Function *, Frequencies> &FreqsByFunction,
    const CostModel &CM, const TimeAnalysisOptions &Opts,
    const TimeAnalysis *Previous, const std::vector<const Function *> *Changed) {
  const Program &Prog = PA.program();
  ObsRegistry *Obs = Opts.Obs.Registry;
  TimingSpan RunSpan(Obs, "timeanalysis.run",
                     Previous ? "incremental" : "full");
  TimeAnalysis Out;
  Out.PA = &PA;

  // Call graph over the program's analyzed functions. Functions whose
  // analysis failed are skipped; calls into them surface through the
  // unresolved-callee diagnostics below.
  std::vector<const Function *> Funcs;
  std::map<const Function *, NodeId> Index;
  for (const auto &F : Prog.functions()) {
    if (!PA.tryOf(*F))
      continue;
    Index[F.get()] = static_cast<NodeId>(Funcs.size());
    Funcs.push_back(F.get());
  }

  // One hashed, lower-cased name table resolves every callee this run.
  // Program::findFunction is a case-insensitive linear scan, which would
  // make call-graph construction quadratic in the number of procedures;
  // the table gives the same first-match answer (duplicate names are
  // rejected at Program::createFunction) in O(1).
  std::unordered_map<std::string, const Function *> ByName;
  for (const auto &F : Prog.functions())
    ByName.emplace(toLower(F->name()), F.get());
  auto Resolve = [&ByName](std::string_view Name) -> const Function * {
    auto It = ByName.find(toLower(Name));
    return It == ByName.end() ? nullptr : It->second;
  };

  Digraph CallGraph(static_cast<unsigned>(Funcs.size()));
  for (const Function *F : Funcs)
    for (StmtId S = 0; S < F->numStmts(); ++S)
      if (const auto *Call = dyn_cast<CallStmt>(F->stmt(S)))
        if (const Function *Callee = Resolve(Call->callee()))
          if (Index.count(Callee))
            CallGraph.addEdge(Index[F], Index[Callee], 0);

  // The call graph is consumed in CSR form: SCC condensation, the wave
  // schedule and the dirtiness sweep all read the same flat view.
  CsrGraph CallCsr(CallGraph);
  const GraphView CallView = CallCsr.view();
  SccResult Sccs = computeSccs(CallView);
  std::map<const Function *, FunctionSummary> Summaries;

  // Pre-insert every summary and estimate slot: concurrent waves then only
  // ever write through stable references to distinct entries, never mutate
  // the map structure. The zero-valued initial summaries double as the
  // starting point of the recursion fixpoint (the paper defers recursion;
  // see DESIGN.md).
  for (const Function *F : Funcs) {
    Summaries[F];
    Out.PerFunction[F];
  }

  // The CSR kernel resolves callees through a per-function table built
  // once per run (findFunction is a linear scan; the sweep must not pay
  // it per call node per fixpoint iteration, and must not allocate).
  const bool UseCsr = Opts.Kernel == TimeKernel::Csr;
  std::map<const Function *, std::vector<const Function *>> CalleeTables;
  if (UseCsr)
    for (const Function *F : Funcs) {
      const Cfg &C = PA.of(*F).ecfg().cfg();
      std::vector<const Function *> &Table = CalleeTables[F];
      Table.assign(C.numNodes(), nullptr);
      for (NodeId N = 0; N < C.numNodes(); ++N) {
        StmtId S = C.origin(N);
        if (S == InvalidStmt)
          continue;
        if (const auto *Call = dyn_cast<CallStmt>(F->stmt(S)))
          Table[N] = Resolve(Call->callee());
      }
    }

  // Incremental mode: a component is dirty if it contains a changed
  // function or calls into a dirty component. Tarjan numbers components
  // callees-first, so one ascending sweep propagates dirtiness from
  // callees to callers (changed summaries invalidate every transitive
  // caller, nothing else).
  std::vector<bool> DirtyComp(Sccs.numComponents(), Previous == nullptr);
  if (Previous) {
    std::set<const Function *> ChangedSet(Changed->begin(), Changed->end());
    for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp) {
      bool Dirty = false;
      for (NodeId M : Sccs.Members[Comp]) {
        if (ChangedSet.count(Funcs[M]) ||
            !Previous->PerFunction.count(Funcs[M]))
          Dirty = true;
        for (const CsrEdgeRef &Ed : CallView.succs(M)) {
          unsigned Callee = Sccs.Component[Ed.Node];
          if (Callee != Comp && DirtyComp[Callee])
            Dirty = true;
        }
      }
      DirtyComp[Comp] = Dirty;
    }
    // Clean components reuse the previous estimates verbatim; their START
    // summaries feed dirty callers at the frontier.
    for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp) {
      if (DirtyComp[Comp])
        continue;
      for (NodeId M : Sccs.Members[Comp]) {
        const Function *F = Funcs[M];
        const std::vector<NodeEstimates> &Cached =
            Previous->PerFunction.find(F)->second;
        NodeId Start = PA.of(*F).ecfg().start();
        Summaries.find(F)->second = {Cached[Start].Time, Cached[Start].Var};
        Out.PerFunction.find(F)->second = Cached;
      }
    }
  }

  ThreadSafeDiagnostics Unresolved;
  std::atomic<uint64_t> Evals{0};
  std::atomic<uint64_t> HotAllocs{0};
  CancelToken *Cancel = Opts.Cancel;

  auto FreqsOf = [&](const Function *F) -> const Frequencies & {
    auto It = FreqsByFunction.find(F);
    if (It == FreqsByFunction.end())
      reportFatalError("no frequencies for function " + F->name());
    return It->second;
  };

  auto Recompute = [&](const Function *F) {
    const FunctionAnalysis &FA = PA.of(*F);
    std::vector<NodeEstimates> Est =
        UseCsr ? computeFunctionCsr(FA, FreqsOf(F), CM, Opts, Summaries,
                                    CalleeTables.find(F)->second,
                                    &Unresolved, HotAllocs)
               : computeFunction(FA, FreqsOf(F), CM, Opts, Summaries, Prog,
                                 &Unresolved);
    NodeId Start = FA.ecfg().start();
    Summaries.find(F)->second = {Est[Start].Time, Est[Start].Var};
    Out.PerFunction.find(F)->second = std::move(Est);
    Evals.fetch_add(1, std::memory_order_relaxed);
  };

  // Condensation waves: a component is schedulable once every callee
  // component has completed. Tarjan numbers components callees-first, so
  // one ascending sweep assigns wave indices. Clean components never
  // enter a wave.
  std::vector<bool> Cyclic(Sccs.numComponents(), false);
  std::vector<unsigned> WaveOf(Sccs.numComponents(), 0);
  unsigned NumWaves = Sccs.numComponents() == 0 ? 0 : 1;
  for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp) {
    Cyclic[Comp] = Sccs.isInCycle(CallView, Sccs.Members[Comp].front());
    Out.Recursive = Out.Recursive || Cyclic[Comp];
    for (NodeId M : Sccs.Members[Comp])
      for (const CsrEdgeRef &Ed : CallView.succs(M)) {
        unsigned Callee = Sccs.Component[Ed.Node];
        if (Callee != Comp)
          WaveOf[Comp] = std::max(WaveOf[Comp], WaveOf[Callee] + 1);
      }
    NumWaves = std::max(NumWaves, WaveOf[Comp] + 1);
  }
  std::vector<std::vector<unsigned>> Waves(NumWaves);
  unsigned DirtyCount = 0;
  for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp)
    if (DirtyComp[Comp]) {
      Waves[WaveOf[Comp]].push_back(Comp);
      ++DirtyCount;
    }

  // Completion flags, one per component; each slot is written by exactly
  // one task and read only after the wave barriers (like the estimate
  // slots above). A component that skips out on an expired token leaves
  // its flag clear, and its members land in Unfinished below. Clean
  // components are complete by construction.
  std::vector<char> Done(Sccs.numComponents(), 0);
  for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp)
    if (!DirtyComp[Comp])
      Done[Comp] = 1;

  // One component is one task: an acyclic component is a single function
  // evaluation; a recursive cycle keeps its serial fixpoint ordering
  // inside the task. Cross-component summary reads only cross wave
  // barriers, so every job count computes identical numbers — and because
  // callers are scheduled in strictly later waves than their callees,
  // monotone token expiry means a component that does run has final
  // callee summaries, cancelled run or not.
  auto EvalComponent = [&](unsigned Comp) {
    const std::vector<NodeId> &Members = Sccs.Members[Comp];
    if (Cancel) {
      // The estimate tables are the pass's dominant allocation; charge
      // them against the memory budget before doing the work.
      uint64_t Bytes = 0;
      for (NodeId M : Members)
        Bytes += static_cast<uint64_t>(
                     PA.of(*Funcs[M]).ecfg().cfg().numNodes()) *
                 sizeof(NodeEstimates);
      Cancel->chargeMemory(Bytes);
      if (Cancel->checkpoint())
        return;
    }
    TimingSpan SccSpan(Obs, "timeanalysis.scc",
                       Funcs[Members.front()]->name());
    if (!Cyclic[Comp]) {
      Recompute(Funcs[Members.front()]);
      Done[Comp] = 1;
      return;
    }
    for (unsigned Iter = 0; Iter < Opts.RecursionIterations; ++Iter) {
      if (Iter > 0 && Cancel && Cancel->checkpoint())
        return; // Partial fixpoint: abandon, members stay unfinished.
      for (NodeId M : Members)
        Recompute(Funcs[M]);
    }
    if (Obs)
      Obs->addCounter("timeanalysis.fixpoint_iterations",
                      Opts.RecursionIterations);
    Done[Comp] = 1;
  };

  PoolLease Pool(Opts.Exec,
                 std::min<size_t>(Funcs.size(), std::max(DirtyCount, 1u)),
                 Obs);
  for (size_t WaveIdx = 0; WaveIdx < Waves.size(); ++WaveIdx) {
    const std::vector<unsigned> &WaveComps = Waves[WaveIdx];
    if (WaveComps.empty())
      continue;
    if (Cancel && Cancel->expired())
      break; // Skip scheduling the remaining waves entirely.
    // The detail string is only materialized when tracing is on.
    TimingSpan WaveSpan(Obs, "timeanalysis.wave",
                        Obs ? "wave " + std::to_string(WaveIdx) + " (" +
                                  std::to_string(WaveComps.size()) + " sccs)"
                            : std::string());
    if (Pool->workerCount() == 0 || WaveComps.size() == 1) {
      for (unsigned Comp : WaveComps)
        EvalComponent(Comp);
      continue;
    }
    std::vector<std::future<void>> Futures;
    Futures.reserve(WaveComps.size());
    for (unsigned Comp : WaveComps)
      Futures.push_back(Pool->submit(Cancel, [&EvalComponent, Comp] {
        EvalComponent(Comp);
      }));
    waitAll(Futures);
  }

  // Cut-short bookkeeping: unfinished functions lose their (zero-valued
  // or partial) slots entirely, so of() refuses to serve them and an
  // incremental rerun() sees them as dirty.
  std::set<const Function *> UnfinishedSet;
  for (unsigned Comp = 0; Comp < Sccs.numComponents(); ++Comp)
    if (!Done[Comp])
      for (NodeId M : Sccs.Members[Comp])
        UnfinishedSet.insert(Funcs[M]);
  if (!UnfinishedSet.empty()) {
    Out.CutReason = Cancel ? Cancel->reason() : CancelReason::Cancelled;
    for (const Function *F : Funcs)
      if (UnfinishedSet.count(F)) {
        Out.Unfinished.push_back(F);
        Out.PerFunction.erase(F);
        Summaries.erase(F);
      }
    if (Opts.Diags && Cancel)
      Opts.Diags->error(cancelMessage(*Cancel, "time analysis") + "; " +
                        std::to_string(Out.Unfinished.size()) + " of " +
                        std::to_string(Funcs.size()) +
                        " functions unfinished");
    if (Obs) {
      Obs->addCounter(Out.CutReason == CancelReason::Cancelled
                          ? "resilience.cancellations"
                          : "resilience.deadline_hits");
      Obs->addCounter("timeanalysis.unfinished_functions",
                      Out.Unfinished.size());
    }
  }

  if (Opts.Diags)
    Unresolved.drainTo(*Opts.Diags);

  Out.Evaluations = Evals.load();
  if (Obs) {
    Obs->addCounter("timeanalysis.evaluations", Out.Evaluations);
    if (UseCsr)
      Obs->addCounter("cost.hotpath.allocs", HotAllocs.load());
  }
  return Out;
}

const std::vector<NodeEstimates> &
TimeAnalysis::estimatesOf(const Function &F) const {
  auto It = PerFunction.find(&F);
  if (It == PerFunction.end())
    reportFatalError("no time analysis for function " + F.name());
  return It->second;
}

const NodeEstimates &TimeAnalysis::of(const Function &F, NodeId N) const {
  auto It = PerFunction.find(&F);
  if (It == PerFunction.end())
    reportFatalError("no time analysis for function " + F.name());
  return It->second.at(N);
}

double TimeAnalysis::functionTime(const Function &F) const {
  return of(F, PA->of(F).ecfg().start()).Time;
}

double TimeAnalysis::functionVariance(const Function &F) const {
  return of(F, PA->of(F).ecfg().start()).Var;
}

double TimeAnalysis::programTime() const {
  const Function *Entry = PA->program().entry();
  assert(Entry && "program has no entry");
  return functionTime(*Entry);
}

double TimeAnalysis::programStdDev() const {
  const Function *Entry = PA->program().entry();
  assert(Entry && "program has no entry");
  return std::sqrt(functionVariance(*Entry));
}
