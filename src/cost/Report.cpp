//===--- cost/Report.cpp - gprof-style procedure report -------------------===//

#include "cost/Report.h"

#include "ir/Printer.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <cmath>
#include <sstream>

using namespace ptran;

std::vector<ProcedureReportRow> ptran::buildProcedureReport(
    const ProgramAnalysis &PA,
    const std::map<const Function *, Frequencies> &FreqsByFunction,
    const TimeAnalysis &TA) {
  std::vector<ProcedureReportRow> Rows;
  double ProgramSelf = 0.0;

  for (const auto &F : PA.program().functions()) {
    const FunctionAnalysis &FA = PA.of(*F);
    auto FreqIt = FreqsByFunction.find(F.get());
    if (FreqIt == FreqsByFunction.end())
      continue;
    const Frequencies &Freqs = FreqIt->second;

    ProcedureReportRow Row;
    Row.Name = F->name();
    Row.Calls = Freqs.Invocations;
    Row.TimePerCall = TA.functionTime(*F);
    Row.StdDevPerCall = std::sqrt(TA.functionVariance(*F));
    // Self time: frequency-weighted local costs over the FCDG nodes.
    for (NodeId N : FA.cd().topoOrder())
      Row.SelfPerCall += Freqs.NodeFreq[N] * TA.of(*F, N).SelfCost;
    Row.TotalSelf = Row.Calls * Row.SelfPerCall;
    ProgramSelf += Row.TotalSelf;
    Rows.push_back(std::move(Row));
  }

  for (ProcedureReportRow &Row : Rows)
    Row.SelfFraction = ProgramSelf > 0.0 ? Row.TotalSelf / ProgramSelf : 0.0;
  std::sort(Rows.begin(), Rows.end(),
            [](const ProcedureReportRow &A, const ProcedureReportRow &B) {
              return A.TotalSelf != B.TotalSelf ? A.TotalSelf > B.TotalSelf
                                                : A.Name < B.Name;
            });
  return Rows;
}

std::string
ptran::formatProcedureReport(const std::vector<ProcedureReportRow> &Rows) {
  TablePrinter T({"procedure", "calls", "time/call", "stddev", "self/call",
                  "total self", "% self"});
  for (const ProcedureReportRow &Row : Rows)
    T.addRow({Row.Name, formatDouble(Row.Calls),
              formatDouble(Row.TimePerCall, 6),
              formatDouble(Row.StdDevPerCall, 5),
              formatDouble(Row.SelfPerCall, 6),
              formatDouble(Row.TotalSelf, 6),
              formatDouble(100.0 * Row.SelfFraction, 4) + "%"});
  return T.str();
}

std::string ptran::annotatedListing(const FunctionAnalysis &FA,
                                    const FrequencyTotals &Totals,
                                    const TimeAnalysis &TA) {
  const Function &F = FA.function();
  std::ostringstream OS;
  OS << "      count |       TIME |    STD_DEV | " << F.name() << "\n";
  for (StmtId S = 0; S < F.numStmts(); ++S) {
    NodeId N = FA.cfg().nodeForStmt(S);
    std::string Count = "-", Time = "-", Sd = "-";
    if (N != InvalidNode && Totals.Ok && N < Totals.Node.size() &&
        Totals.Node[N] >= 0.0) {
      Count = formatDouble(Totals.Node[N]);
      const NodeEstimates &E = TA.of(F, N);
      Time = formatDouble(E.Time, 5);
      Sd = formatDouble(E.StdDev, 4);
    }
    char Line[64];
    std::snprintf(Line, sizeof(Line), "%11s |%11s |%11s | ", Count.c_str(),
                  Time.c_str(), Sd.c_str());
    OS << Line;
    const Stmt *St = F.stmt(S);
    if (St->label() != 0)
      OS << printedLabel(F, St->label()) << ' ';
    OS << printStmt(F, St) << "\n";
  }
  return OS.str();
}
