//===--- cost/Report.h - gprof-style procedure report ----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, gprof-style [GKM82] per-procedure report derived from the
/// estimation results: calls, average time per call (rule 2's
/// TIME(START)), its standard deviation, the self time (local work only,
/// callee bodies excluded), and each procedure's share of the whole
/// program's time. The paper cites gprof as the precedent for rule 2's
/// "same average time at every call site" assumption — this module shows
/// the framework subsumes that style of report.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_COST_REPORT_H
#define PTRAN_COST_REPORT_H

#include "cost/TimeAnalysis.h"

#include <map>
#include <string>
#include <vector>

namespace ptran {

/// One row of the flat profile.
struct ProcedureReportRow {
  std::string Name;
  /// Total activations recorded by the profile.
  double Calls = 0.0;
  /// TIME(START): average cycles per activation, callees included.
  double TimePerCall = 0.0;
  /// STD_DEV(START).
  double StdDevPerCall = 0.0;
  /// Average cycles of local work per activation (callees excluded).
  double SelfPerCall = 0.0;
  /// Calls * SelfPerCall: this procedure's own share of the program.
  double TotalSelf = 0.0;
  /// TotalSelf as a fraction of the program's total (0 when unknown).
  double SelfFraction = 0.0;
};

/// Builds the flat profile, sorted by descending TotalSelf.
std::vector<ProcedureReportRow> buildProcedureReport(
    const ProgramAnalysis &PA,
    const std::map<const Function *, Frequencies> &FreqsByFunction,
    const TimeAnalysis &TA);

/// Renders the report as an aligned text table.
std::string formatProcedureReport(const std::vector<ProcedureReportRow> &Rows);

/// An annotated source listing — the counter-based profiler's classic
/// output ("Statement S was executed n times"), extended with the paper's
/// estimates: every statement of \p F prefixed with its total execution
/// count, its average TIME and its STD_DEV. \p Totals supplies the counts
/// (pass the recovered totals); \p TA the estimates.
std::string annotatedListing(const FunctionAnalysis &FA,
                             const FrequencyTotals &Totals,
                             const TimeAnalysis &TA);

} // namespace ptran

#endif // PTRAN_COST_REPORT_H
