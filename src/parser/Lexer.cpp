//===--- parser/Lexer.cpp - Mini-language lexer ---------------------------===//

#include "parser/Lexer.h"

#include "support/FatalError.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

using namespace ptran;

const char *ptran::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Newline:
    return "end of line";
  case TokKind::Identifier:
    return "identifier";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::RealLit:
    return "real literal";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::Comma:
    return "','";
  case TokKind::Assign:
    return "'='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::StarStar:
    return "'**'";
  case TokKind::Lt:
    return "'.LT.'";
  case TokKind::Le:
    return "'.LE.'";
  case TokKind::Gt:
    return "'.GT.'";
  case TokKind::Ge:
    return "'.GE.'";
  case TokKind::EqCmp:
    return "'.EQ.'";
  case TokKind::NeCmp:
    return "'.NE.'";
  case TokKind::And:
    return "'.AND.'";
  case TokKind::Or:
    return "'.OR.'";
  case TokKind::Not:
    return "'.NOT.'";
  }
  PTRAN_UNREACHABLE("unknown TokKind");
}

namespace {

/// Cursor over the source buffer tracking line/column.
class Cursor {
public:
  Cursor(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  SourceLoc loc() const { return {Line, Column}; }

  std::vector<Token> run();

private:
  Token lexNumber();
  Token lexIdentifier();
  /// Lexes a dotted operator (.LT. etc). Returns false if the dot does not
  /// begin one.
  bool lexDotOperator(Token &Tok);

  void emit(std::vector<Token> &Out, Token Tok) { Out.push_back(std::move(Tok)); }

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Column = 1;
};

/// The dotted operator words, lower-case, without the dots.
struct DotOp {
  const char *Word;
  TokKind Kind;
};
constexpr DotOp DotOps[] = {
    {"lt", TokKind::Lt},    {"le", TokKind::Le},  {"gt", TokKind::Gt},
    {"ge", TokKind::Ge},    {"eq", TokKind::EqCmp}, {"ne", TokKind::NeCmp},
    {"and", TokKind::And},  {"or", TokKind::Or},  {"not", TokKind::Not},
};

bool Cursor::lexDotOperator(Token &Tok) {
  assert(peek() == '.' && "dot operator must start at a dot");
  // Collect the letters between the dots without consuming.
  size_t I = 1;
  std::string Word;
  while (std::isalpha(static_cast<unsigned char>(peek(I)))) {
    Word += static_cast<char>(
        std::tolower(static_cast<unsigned char>(peek(I))));
    ++I;
  }
  if (Word.empty() || peek(I) != '.')
    return false;
  for (const DotOp &Op : DotOps) {
    if (Word == Op.Word) {
      Tok.Kind = Op.Kind;
      Tok.Loc = loc();
      for (size_t K = 0; K < I + 1; ++K)
        advance();
      return true;
    }
  }
  return false;
}

Token Cursor::lexNumber() {
  Token Tok;
  Tok.Loc = loc();
  std::string Digits;
  bool IsReal = false;

  while (std::isdigit(static_cast<unsigned char>(peek())))
    Digits += advance();

  // A trailing dot is part of the number only if it is not a dotted
  // operator (e.g. `10.AND.` lexes as `10` `.AND.`).
  if (peek() == '.') {
    // Probe without consuming.
    size_t I = 1;
    std::string Word;
    while (std::isalpha(static_cast<unsigned char>(peek(I)))) {
      Word += static_cast<char>(
          std::tolower(static_cast<unsigned char>(peek(I))));
      ++I;
    }
    bool IsOp = false;
    if (!Word.empty() && peek(I) == '.')
      for (const DotOp &Op : DotOps)
        if (Word == Op.Word) {
          IsOp = true;
          break;
        }
    if (!IsOp) {
      IsReal = true;
      Digits += advance(); // consume '.'
      while (std::isdigit(static_cast<unsigned char>(peek())))
        Digits += advance();
    }
  }

  // Exponent part: e/E/d/D [+/-] digits.
  char ExpChar = static_cast<char>(
      std::tolower(static_cast<unsigned char>(peek())));
  if ((ExpChar == 'e' || ExpChar == 'd') &&
      (std::isdigit(static_cast<unsigned char>(peek(1))) ||
       ((peek(1) == '+' || peek(1) == '-') &&
        std::isdigit(static_cast<unsigned char>(peek(2)))))) {
    IsReal = true;
    advance(); // e/d
    Digits += 'e';
    if (peek() == '+' || peek() == '-')
      Digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      Digits += advance();
  }

  // strtod/strtoll report out-of-range values through errno only; without
  // the ERANGE check a literal like 9223372036854775808 silently saturates
  // to LLONG_MAX and parsing "succeeds" with the wrong constant.
  if (IsReal) {
    Tok.Kind = TokKind::RealLit;
    errno = 0;
    Tok.RealValue = std::strtod(Digits.c_str(), nullptr);
    // ERANGE with a tiny result is gradual underflow (the literal is
    // representable as 0 or a denormal); only overflow to infinity is an
    // error.
    if (errno == ERANGE && std::abs(Tok.RealValue) == HUGE_VAL)
      Diags.error(Tok.Loc, "real literal '" + Digits + "' is out of range");
  } else {
    Tok.Kind = TokKind::IntLit;
    errno = 0;
    Tok.IntValue = std::strtoll(Digits.c_str(), nullptr, 10);
    if (errno == ERANGE)
      Diags.error(Tok.Loc, "integer literal '" + Digits +
                               "' overflows the 64-bit integer range");
  }
  return Tok;
}

Token Cursor::lexIdentifier() {
  Token Tok;
  Tok.Loc = loc();
  Tok.Kind = TokKind::Identifier;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    Tok.Text += advance();
  return Tok;
}

std::vector<Token> Cursor::run() {
  std::vector<Token> Out;
  while (!atEnd()) {
    char C = peek();

    if (C == '!') { // Comment to end of line.
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '\n' || C == ';') {
      Token Tok;
      Tok.Kind = TokKind::Newline;
      Tok.Loc = loc();
      advance();
      // Collapse runs of blank lines into one Newline.
      if (!Out.empty() && Out.back().Kind == TokKind::Newline)
        continue;
      emit(Out, std::move(Tok));
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      emit(Out, lexNumber());
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      emit(Out, lexIdentifier());
      continue;
    }

    if (C == '.') {
      Token Tok;
      if (lexDotOperator(Tok)) {
        emit(Out, std::move(Tok));
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(peek(1)))) {
        // A leading-dot real literal like `.5`.
        Token Num;
        Num.Loc = loc();
        Num.Kind = TokKind::RealLit;
        std::string Digits = "0";
        Digits += advance(); // '.'
        while (std::isdigit(static_cast<unsigned char>(peek())))
          Digits += advance();
        Num.RealValue = std::strtod(Digits.c_str(), nullptr);
        emit(Out, std::move(Num));
        continue;
      }
      Diags.error(loc(), "stray '.' in input");
      advance();
      continue;
    }

    Token Tok;
    Tok.Loc = loc();
    switch (C) {
    case '(':
      Tok.Kind = TokKind::LParen;
      advance();
      break;
    case ')':
      Tok.Kind = TokKind::RParen;
      advance();
      break;
    case ',':
      Tok.Kind = TokKind::Comma;
      advance();
      break;
    case '+':
      Tok.Kind = TokKind::Plus;
      advance();
      break;
    case '-':
      Tok.Kind = TokKind::Minus;
      advance();
      break;
    case '*':
      advance();
      if (peek() == '*') {
        advance();
        Tok.Kind = TokKind::StarStar;
      } else {
        Tok.Kind = TokKind::Star;
      }
      break;
    case '/':
      advance();
      if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::NeCmp;
      } else {
        Tok.Kind = TokKind::Slash;
      }
      break;
    case '<':
      advance();
      if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::Le;
      } else {
        Tok.Kind = TokKind::Lt;
      }
      break;
    case '>':
      advance();
      if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::Ge;
      } else {
        Tok.Kind = TokKind::Gt;
      }
      break;
    case '=':
      advance();
      if (peek() == '=') {
        advance();
        Tok.Kind = TokKind::EqCmp;
      } else {
        Tok.Kind = TokKind::Assign;
      }
      break;
    default:
      Diags.error(loc(), std::string("unexpected character '") + C + "'");
      advance();
      continue;
    }
    emit(Out, std::move(Tok));
  }

  Token Eof;
  Eof.Kind = TokKind::Eof;
  Eof.Loc = loc();
  Out.push_back(std::move(Eof));
  return Out;
}

} // namespace

std::vector<Token> Lexer::tokenize(std::string_view Source,
                                   DiagnosticEngine &Diags) {
  return Cursor(Source, Diags).run();
}
