//===--- parser/Parser.h - Mini-language parser -----------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the Fortran-77-flavoured mini language,
/// producing MiniIR. Supported constructs:
///
///   PROGRAM name / SUBROUTINE name(params) ... END
///   INTEGER / REAL declarations (scalars and 1-2 dimensional arrays)
///   assignment, logical IF (`IF (c) stmt`), block IF/ELSE IF/ELSE/ENDIF,
///   GOTO (also GO TO), DO ... ENDDO and labelled `DO 10 I = ...`,
///   CALL, RETURN, CONTINUE, PRINT, STOP
///
/// Implicit typing applies to undeclared scalars (I-N integer, otherwise
/// real), as in Fortran. Structured IF constructs are lowered to
/// IF-GOTO/GOTO/CONTINUE statements so that every procedure becomes the
/// flat statement list the paper's statement-level CFG is built from.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PARSER_PARSER_H
#define PTRAN_PARSER_PARSER_H

#include "ir/Function.h"

#include <memory>
#include <string_view>

namespace ptran {

/// Parses \p Source into a Program, finalizes and verifies it.
/// \returns the program, or null if any diagnostics of error severity were
/// produced (inspect \p Diags for details).
std::unique_ptr<Program> parseProgram(std::string_view Source,
                                      DiagnosticEngine &Diags);

} // namespace ptran

#endif // PTRAN_PARSER_PARSER_H
