//===--- parser/Parser.cpp - Mini-language parser -------------------------===//

#include "parser/Parser.h"

#include "ir/Verifier.h"
#include "parser/Lexer.h"
#include "support/Casting.h"
#include "support/StringUtils.h"

#include <cassert>

using namespace ptran;

namespace {

/// First compiler-generated label (see ir/Stmt.h). User labels this large
/// are rejected so lowering of structured IFs can never collide.
constexpr int FirstSyntheticLabel = FirstCompilerLabel;

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<Program> run();

private:
  // -- Token helpers ------------------------------------------------------
  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  const Token &advance() {
    const Token &T = Tokens[Pos];
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool check(TokKind K) const { return peek().Kind == K; }
  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  bool expect(TokKind K, const char *Context) {
    if (accept(K))
      return true;
    error(peek().Loc, std::string("expected ") + tokKindName(K) + " " +
                          Context + ", got " + tokKindName(peek().Kind));
    return false;
  }
  /// True if the current token is the (case-insensitive) keyword \p Word.
  bool checkKeyword(std::string_view Word) const {
    return check(TokKind::Identifier) && equalsLower(peek().Text, Word);
  }
  bool acceptKeyword(std::string_view Word) {
    if (!checkKeyword(Word))
      return false;
    advance();
    return true;
  }
  void error(SourceLoc Loc, std::string Message) {
    Diags.error(Loc, std::move(Message));
  }
  /// Skips to just past the next Newline (error recovery).
  void syncToNextLine() {
    while (!check(TokKind::Eof) && !accept(TokKind::Newline))
      advance();
  }

  // -- Grammar ------------------------------------------------------------
  void parseProcedure();
  void parseDeclaration();
  /// Parses one (possibly labelled) statement line, appending MiniIR
  /// statements to the current function.
  void parseStatementLine();
  /// Parses a simple (non-block) statement after any label; \p Label is
  /// attached to the first appended statement.
  void parseSimpleStatement(int Label);
  void parseBlockIf(Expr *Cond, SourceLoc Loc, int Label);
  void parseDo(int Label);
  void parseCall(int Label);
  void parseAssignment(int Label);
  void parsePrint(int Label);

  Expr *parseExpr();
  Expr *parseOr();
  Expr *parseAnd();
  Expr *parseNot();
  Expr *parseComparison();
  Expr *parseAddSub();
  Expr *parseMulDiv();
  Expr *parseUnary();
  Expr *parsePower();
  Expr *parsePrimary();

  // -- Symbols ------------------------------------------------------------
  /// Looks up \p Name, implicitly declaring a scalar if unknown.
  VarId lookupOrImplicit(const std::string &Name, SourceLoc Loc);
  static Type implicitType(std::string_view Name);

  // -- Statement emission --------------------------------------------------
  StmtId emit(std::unique_ptr<Stmt> S, int Label) {
    if (Label != 0)
      S->setLabel(Label);
    // Close any labelled DO loops terminated by this statement's label.
    StmtId Id = F->append(std::move(S));
    closeLabelledDos(Label);
    return Id;
  }
  void closeLabelledDos(int Label) {
    while (Label != 0 && !LabelledDoStack.empty() &&
           LabelledDoStack.back() == Label) {
      LabelledDoStack.pop_back();
      F->append(std::make_unique<EndDoStmt>(peek().Loc));
    }
  }
  int freshLabel() { return NextSyntheticLabel++; }

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;

  std::unique_ptr<Program> Prog;
  Function *F = nullptr;
  /// Terminal labels of open labelled DO loops, innermost last.
  std::vector<int> LabelledDoStack;
  /// Structures an ENDDO can close, innermost last: a counted DO (needs
  /// an EndDoStmt) or a DO WHILE (lowered to a goto loop; needs the back
  /// jump and the exit anchor).
  struct OpenLoop {
    bool IsWhile = false;
    int HeadLabel = 0;
    int ExitLabel = 0;
  };
  std::vector<OpenLoop> EnddoStack;
  int NextSyntheticLabel = FirstSyntheticLabel;
  bool SawProgramUnit = false;
};

Type Parser::implicitType(std::string_view Name) {
  assert(!Name.empty());
  char C = static_cast<char>(
      std::tolower(static_cast<unsigned char>(Name.front())));
  return (C >= 'i' && C <= 'n') ? Type::Integer : Type::Real;
}

VarId Parser::lookupOrImplicit(const std::string &Name, SourceLoc Loc) {
  VarId V = F->lookup(Name);
  if (V != static_cast<VarId>(-1))
    return V;
  (void)Loc;
  Symbol Sym;
  Sym.Name = Name;
  Sym.Ty = implicitType(Name);
  return F->declare(std::move(Sym));
}

std::unique_ptr<Program> Parser::run() {
  Prog = std::make_unique<Program>();
  accept(TokKind::Newline);
  while (!check(TokKind::Eof)) {
    if (checkKeyword("subroutine") || checkKeyword("program")) {
      parseProcedure();
    } else {
      error(peek().Loc, "expected PROGRAM or SUBROUTINE, got " +
                            std::string(tokKindName(peek().Kind)));
      syncToNextLine();
    }
    accept(TokKind::Newline);
  }
  if (!SawProgramUnit)
    error(SourceLoc(), "source contains no program units");
  if (Diags.hasErrors())
    return nullptr;
  if (!Prog->finalize(Diags))
    return nullptr;
  if (!verifyProgram(*Prog, Diags))
    return nullptr;
  return std::move(Prog);
}

void Parser::parseProcedure() {
  bool IsMain = checkKeyword("program");
  advance(); // subroutine / program
  if (!check(TokKind::Identifier)) {
    error(peek().Loc, "expected procedure name");
    syncToNextLine();
    return;
  }
  std::string Name = advance().Text;
  F = Prog->createFunction(Name, Diags);
  if (!F) {
    syncToNextLine();
    return;
  }
  SawProgramUnit = true;
  if (IsMain)
    Prog->setEntryName(Name);

  std::vector<std::string> ParamNames;
  if (accept(TokKind::LParen)) {
    if (!check(TokKind::RParen)) {
      do {
        if (!check(TokKind::Identifier)) {
          error(peek().Loc, "expected parameter name");
          break;
        }
        ParamNames.push_back(advance().Text);
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after parameter list");
  }
  for (const std::string &P : ParamNames) {
    Symbol Sym;
    Sym.Name = P;
    Sym.Ty = implicitType(P);
    Sym.IsParam = true;
    VarId V = F->declare(std::move(Sym));
    F->addParam(V);
  }
  expect(TokKind::Newline, "after procedure header");

  // Declarations first, then executable statements, then END.
  while (checkKeyword("integer") || checkKeyword("real"))
    parseDeclaration();

  while (!check(TokKind::Eof)) {
    if (checkKeyword("end") &&
        (peek(1).Kind == TokKind::Newline || peek(1).Kind == TokKind::Eof)) {
      advance(); // end
      break;
    }
    parseStatementLine();
  }

  for (int Open : LabelledDoStack)
    error(peek().Loc, "labelled DO loop terminated by label " +
                          std::to_string(Open) + " was never closed");
  LabelledDoStack.clear();
  for (const OpenLoop &Open : EnddoStack)
    error(peek().Loc, Open.IsWhile
                          ? "DO WHILE without matching ENDDO"
                          : "DO without matching ENDDO");
  EnddoStack.clear();
  F = nullptr;
}

void Parser::parseDeclaration() {
  Type Ty = checkKeyword("integer") ? Type::Integer : Type::Real;
  advance(); // type keyword
  do {
    if (!check(TokKind::Identifier)) {
      error(peek().Loc, "expected variable name in declaration");
      break;
    }
    Token NameTok = advance();
    std::vector<int64_t> Dims;
    if (accept(TokKind::LParen)) {
      do {
        if (!check(TokKind::IntLit)) {
          error(peek().Loc, "array extents must be integer literals");
          break;
        }
        Dims.push_back(advance().IntValue);
      } while (accept(TokKind::Comma));
      expect(TokKind::RParen, "after array extents");
      if (Dims.size() > 2)
        error(NameTok.Loc, "arrays are limited to two dimensions");
    }

    VarId Existing = F->lookup(NameTok.Text);
    if (Existing != static_cast<VarId>(-1)) {
      Symbol &Sym = F->symbolMutable(Existing);
      if (!Sym.IsParam) {
        error(NameTok.Loc, "duplicate declaration of " + NameTok.Text);
      } else {
        // A declaration refining a parameter's type/shape.
        Sym.Ty = Ty;
        Sym.Dims = std::move(Dims);
      }
    } else {
      Symbol Sym;
      Sym.Name = NameTok.Text;
      Sym.Ty = Ty;
      Sym.Dims = std::move(Dims);
      F->declare(std::move(Sym));
    }
  } while (accept(TokKind::Comma));
  expect(TokKind::Newline, "after declaration");
}

void Parser::parseStatementLine() {
  if (accept(TokKind::Newline))
    return;

  int Label = 0;
  if (check(TokKind::IntLit)) {
    Label = static_cast<int>(advance().IntValue);
    if (Label <= 0 || Label >= FirstSyntheticLabel) {
      error(peek().Loc, "statement labels must be in [1, " +
                            std::to_string(FirstSyntheticLabel - 1) + "]");
      Label = 0;
    }
  }
  parseSimpleStatement(Label);
}

void Parser::parseSimpleStatement(int Label) {
  SourceLoc Loc = peek().Loc;

  if (acceptKeyword("continue")) {
    emit(std::make_unique<ContinueStmt>(Loc), Label);
    expect(TokKind::Newline, "after CONTINUE");
    return;
  }
  if (acceptKeyword("return") || acceptKeyword("stop")) {
    emit(std::make_unique<ReturnStmt>(Loc), Label);
    expect(TokKind::Newline, "after RETURN");
    return;
  }
  if (acceptKeyword("goto") ||
      (checkKeyword("go") && peek(1).Kind == TokKind::Identifier &&
       equalsLower(peek(1).Text, "to") && (advance(), advance(), true))) {
    // Computed GOTO: `GOTO (l1, l2, ...), index`.
    if (accept(TokKind::LParen)) {
      std::vector<int> Targets;
      do {
        if (!check(TokKind::IntLit)) {
          error(peek().Loc, "expected statement label in computed GOTO");
          syncToNextLine();
          return;
        }
        Targets.push_back(static_cast<int>(advance().IntValue));
      } while (accept(TokKind::Comma));
      expect(TokKind::RParen, "after computed GOTO labels");
      accept(TokKind::Comma); // The comma before the index is optional.
      Expr *Index = parseExpr();
      emit(std::make_unique<ComputedGotoStmt>(Index, std::move(Targets),
                                              Loc),
           Label);
      expect(TokKind::Newline, "after computed GOTO");
      return;
    }
    if (!check(TokKind::IntLit)) {
      error(peek().Loc, "expected statement label after GOTO");
      syncToNextLine();
      return;
    }
    int Target = static_cast<int>(advance().IntValue);
    emit(std::make_unique<GotoStmt>(Target, Loc), Label);
    expect(TokKind::Newline, "after GOTO");
    return;
  }
  if (acceptKeyword("if")) {
    if (!expect(TokKind::LParen, "after IF")) {
      syncToNextLine();
      return;
    }
    Expr *Cond = parseExpr();
    expect(TokKind::RParen, "after IF condition");
    if (acceptKeyword("then")) {
      expect(TokKind::Newline, "after THEN");
      parseBlockIf(Cond, Loc, Label);
      return;
    }
    if (acceptKeyword("goto")) {
      if (!check(TokKind::IntLit)) {
        error(peek().Loc, "expected statement label after IF (...) GOTO");
        syncToNextLine();
        return;
      }
      int Target = static_cast<int>(advance().IntValue);
      emit(std::make_unique<IfGotoStmt>(Cond, Target, Loc), Label);
      expect(TokKind::Newline, "after IF (...) GOTO");
      return;
    }
    // General logical IF: `IF (c) stmt` becomes
    //   IF (.NOT. c) GOTO fresh ; stmt ; fresh CONTINUE
    int Skip = freshLabel();
    Expr *NotCond = F->make<UnaryExpr>(UnaryOp::Not, Cond, Loc);
    emit(std::make_unique<IfGotoStmt>(NotCond, Skip, Loc), Label);
    parseSimpleStatement(0);
    auto Anchor = std::make_unique<ContinueStmt>(Loc);
    Anchor->setLabel(Skip);
    F->append(std::move(Anchor));
    return;
  }
  if (acceptKeyword("enddo")) {
    if (!EnddoStack.empty() && EnddoStack.back().IsWhile) {
      // Close a DO WHILE: jump back to the test, anchor the exit.
      OpenLoop While = EnddoStack.back();
      EnddoStack.pop_back();
      emit(std::make_unique<GotoStmt>(While.HeadLabel, Loc), Label);
      auto Exit = std::make_unique<ContinueStmt>(Loc);
      Exit->setLabel(While.ExitLabel);
      F->append(std::move(Exit));
    } else {
      if (!EnddoStack.empty())
        EnddoStack.pop_back();
      emit(std::make_unique<EndDoStmt>(Loc), Label);
    }
    expect(TokKind::Newline, "after ENDDO");
    return;
  }
  if (checkKeyword("do")) {
    parseDo(Label);
    return;
  }
  if (checkKeyword("call")) {
    parseCall(Label);
    return;
  }
  if (checkKeyword("print")) {
    parsePrint(Label);
    return;
  }
  if (check(TokKind::Identifier)) {
    parseAssignment(Label);
    return;
  }

  error(Loc, std::string("expected a statement, got ") +
                 tokKindName(peek().Kind));
  syncToNextLine();
}

void Parser::parseBlockIf(Expr *Cond, SourceLoc Loc, int Label) {
  // IF (c) THEN body [ELSE IF ... | ELSE body] ENDIF lowers to tests and
  // jumps; `Label` anchors on the first lowered statement.
  int EndLabel = freshLabel();
  int ElseLabel = freshLabel();
  Expr *NotCond = F->make<UnaryExpr>(UnaryOp::Not, Cond, Loc);
  emit(std::make_unique<IfGotoStmt>(NotCond, ElseLabel, Loc), Label);

  bool SawTerminator = false;
  bool HasElse = false;
  while (!check(TokKind::Eof)) {
    if (checkKeyword("endif") ||
        (checkKeyword("end") && peek(1).Kind == TokKind::Identifier &&
         equalsLower(peek(1).Text, "if"))) {
      if (checkKeyword("endif")) {
        advance();
      } else {
        advance();
        advance();
      }
      expect(TokKind::Newline, "after ENDIF");
      SawTerminator = true;
      break;
    }
    if (acceptKeyword("else")) {
      // Either ELSE IF (c) THEN or a plain ELSE.
      F->append(std::make_unique<GotoStmt>(EndLabel, peek().Loc));
      auto ElseAnchor = std::make_unique<ContinueStmt>(peek().Loc);
      ElseAnchor->setLabel(ElseLabel);
      F->append(std::move(ElseAnchor));
      ElseLabel = freshLabel();
      if (acceptKeyword("if")) {
        expect(TokKind::LParen, "after ELSE IF");
        Expr *ElseCond = parseExpr();
        expect(TokKind::RParen, "after ELSE IF condition");
        if (!acceptKeyword("then"))
          error(peek().Loc, "expected THEN after ELSE IF (...)");
        expect(TokKind::Newline, "after THEN");
        Expr *NotElse =
            F->make<UnaryExpr>(UnaryOp::Not, ElseCond, peek().Loc);
        F->append(
            std::make_unique<IfGotoStmt>(NotElse, ElseLabel, peek().Loc));
        HasElse = false;
        continue;
      }
      expect(TokKind::Newline, "after ELSE");
      HasElse = true;
      continue;
    }
    parseStatementLine();
  }
  if (!SawTerminator)
    error(Loc, "IF block is missing its ENDIF");

  if (!HasElse) {
    // The last arm's failure label falls through to the end.
    auto Anchor = std::make_unique<ContinueStmt>(Loc);
    Anchor->setLabel(ElseLabel);
    F->append(std::move(Anchor));
  }
  auto End = std::make_unique<ContinueStmt>(Loc);
  End->setLabel(EndLabel);
  F->append(std::move(End));
}

void Parser::parseDo(int Label) {
  SourceLoc Loc = peek().Loc;
  advance(); // do

  // DO WHILE (cond): lowered to a goto loop closed by ENDDO.
  if (checkKeyword("while")) {
    advance();
    if (!expect(TokKind::LParen, "after DO WHILE")) {
      syncToNextLine();
      return;
    }
    Expr *Cond = parseExpr();
    expect(TokKind::RParen, "after DO WHILE condition");
    expect(TokKind::Newline, "after DO WHILE header");
    int Head = freshLabel();
    int Exit = freshLabel();
    auto Anchor = std::make_unique<ContinueStmt>(Loc);
    if (Label != 0)
      Anchor->setLabel(Label);
    else
      Anchor->setLabel(Head);
    // When the statement carries a user label, that label doubles as the
    // loop head; otherwise the fresh one does.
    int HeadLabel = Label != 0 ? Label : Head;
    F->append(std::move(Anchor));
    Expr *NotCond = F->make<UnaryExpr>(UnaryOp::Not, Cond, Loc);
    F->append(std::make_unique<IfGotoStmt>(NotCond, Exit, Loc));
    EnddoStack.push_back({true, HeadLabel, Exit});
    return;
  }

  int TerminalLabel = 0;
  if (check(TokKind::IntLit))
    TerminalLabel = static_cast<int>(advance().IntValue);

  if (!check(TokKind::Identifier)) {
    error(peek().Loc, "expected DO index variable");
    syncToNextLine();
    return;
  }
  Token IndexTok = advance();
  VarId Index = lookupOrImplicit(IndexTok.Text, IndexTok.Loc);
  if (!expect(TokKind::Assign, "after DO index variable")) {
    syncToNextLine();
    return;
  }
  Expr *Lo = parseExpr();
  expect(TokKind::Comma, "after DO lower bound");
  Expr *Hi = parseExpr();
  Expr *Step = nullptr;
  if (accept(TokKind::Comma))
    Step = parseExpr();
  expect(TokKind::Newline, "after DO bounds");

  emit(std::make_unique<DoStmt>(Index, Lo, Hi, Step, Loc), Label);
  if (TerminalLabel != 0)
    LabelledDoStack.push_back(TerminalLabel);
  else
    EnddoStack.push_back({false, 0, 0});
}

void Parser::parseCall(int Label) {
  SourceLoc Loc = peek().Loc;
  advance(); // call
  if (!check(TokKind::Identifier)) {
    error(peek().Loc, "expected procedure name after CALL");
    syncToNextLine();
    return;
  }
  std::string Callee = advance().Text;
  std::vector<Expr *> Args;
  if (accept(TokKind::LParen)) {
    if (!check(TokKind::RParen)) {
      do
        Args.push_back(parseExpr());
      while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after CALL arguments");
  }
  emit(std::make_unique<CallStmt>(std::move(Callee), std::move(Args), Loc),
       Label);
  expect(TokKind::Newline, "after CALL");
}

void Parser::parsePrint(int Label) {
  SourceLoc Loc = peek().Loc;
  advance(); // print
  std::vector<Expr *> Args;
  if (!check(TokKind::Newline) && !check(TokKind::Eof)) {
    do
      Args.push_back(parseExpr());
    while (accept(TokKind::Comma));
  }
  emit(std::make_unique<PrintStmt>(std::move(Args), Loc), Label);
  expect(TokKind::Newline, "after PRINT");
}

void Parser::parseAssignment(int Label) {
  Token NameTok = advance();
  SourceLoc Loc = NameTok.Loc;
  VarId Var = lookupOrImplicit(NameTok.Text, Loc);

  LValue Target;
  Target.Var = Var;
  if (accept(TokKind::LParen)) {
    do
      Target.Indices.push_back(parseExpr());
    while (accept(TokKind::Comma));
    expect(TokKind::RParen, "after array subscripts");
  }
  if (!expect(TokKind::Assign, "in assignment")) {
    syncToNextLine();
    return;
  }
  Expr *Value = parseExpr();
  emit(std::make_unique<AssignStmt>(std::move(Target), Value, Loc), Label);
  expect(TokKind::Newline, "after assignment");
}

// -- Expressions -----------------------------------------------------------

Expr *Parser::parseExpr() { return parseOr(); }

Expr *Parser::parseOr() {
  Expr *L = parseAnd();
  while (check(TokKind::Or)) {
    SourceLoc Loc = advance().Loc;
    Expr *R = parseAnd();
    L = F->make<BinaryExpr>(BinaryOp::Or, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseAnd() {
  Expr *L = parseNot();
  while (check(TokKind::And)) {
    SourceLoc Loc = advance().Loc;
    Expr *R = parseNot();
    L = F->make<BinaryExpr>(BinaryOp::And, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseNot() {
  if (check(TokKind::Not)) {
    SourceLoc Loc = advance().Loc;
    return F->make<UnaryExpr>(UnaryOp::Not, parseNot(), Loc);
  }
  return parseComparison();
}

Expr *Parser::parseComparison() {
  Expr *L = parseAddSub();
  BinaryOp Op;
  switch (peek().Kind) {
  case TokKind::Lt:
    Op = BinaryOp::Lt;
    break;
  case TokKind::Le:
    Op = BinaryOp::Le;
    break;
  case TokKind::Gt:
    Op = BinaryOp::Gt;
    break;
  case TokKind::Ge:
    Op = BinaryOp::Ge;
    break;
  case TokKind::EqCmp:
    Op = BinaryOp::Eq;
    break;
  case TokKind::NeCmp:
    Op = BinaryOp::Ne;
    break;
  default:
    return L;
  }
  SourceLoc Loc = advance().Loc;
  Expr *R = parseAddSub();
  return F->make<BinaryExpr>(Op, L, R, Loc);
}

Expr *Parser::parseAddSub() {
  Expr *L = parseMulDiv();
  while (check(TokKind::Plus) || check(TokKind::Minus)) {
    BinaryOp Op = check(TokKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = advance().Loc;
    Expr *R = parseMulDiv();
    L = F->make<BinaryExpr>(Op, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseMulDiv() {
  Expr *L = parseUnary();
  while (check(TokKind::Star) || check(TokKind::Slash)) {
    BinaryOp Op = check(TokKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
    SourceLoc Loc = advance().Loc;
    Expr *R = parseUnary();
    L = F->make<BinaryExpr>(Op, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseUnary() {
  if (check(TokKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    return F->make<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  }
  if (check(TokKind::Plus)) {
    advance();
    return parseUnary();
  }
  return parsePower();
}

Expr *Parser::parsePower() {
  Expr *L = parsePrimary();
  if (check(TokKind::StarStar)) {
    SourceLoc Loc = advance().Loc;
    // Right-associative, and `-x ** y` in the exponent binds as expected.
    Expr *R = parseUnary();
    return F->make<BinaryExpr>(BinaryOp::Pow, L, R, Loc);
  }
  return L;
}

/// Known intrinsic spellings.
static bool lookupIntrinsic(std::string_view Name, Intrinsic &Out) {
  struct Entry {
    const char *Name;
    Intrinsic Fn;
  };
  static constexpr Entry Table[] = {
      {"abs", Intrinsic::Abs},   {"min", Intrinsic::Min},
      {"max", Intrinsic::Max},   {"mod", Intrinsic::Mod},
      {"sqrt", Intrinsic::Sqrt}, {"exp", Intrinsic::Exp},
      {"log", Intrinsic::Log},   {"sin", Intrinsic::Sin},
      {"cos", Intrinsic::Cos},   {"real", Intrinsic::Real},
      {"int", Intrinsic::Int},   {"float", Intrinsic::Real},
      {"amin1", Intrinsic::Min}, {"amax1", Intrinsic::Max},
  };
  for (const Entry &E : Table)
    if (equalsLower(Name, E.Name)) {
      Out = E.Fn;
      return true;
    }
  return false;
}

Expr *Parser::parsePrimary() {
  const Token &T = peek();
  switch (T.Kind) {
  case TokKind::IntLit: {
    const Token &Lit = advance();
    return F->make<IntLiteral>(Lit.IntValue, Lit.Loc);
  }
  case TokKind::RealLit: {
    const Token &Lit = advance();
    return F->make<RealLiteral>(Lit.RealValue, Lit.Loc);
  }
  case TokKind::LParen: {
    advance();
    Expr *E = parseExpr();
    expect(TokKind::RParen, "to close parenthesized expression");
    return E;
  }
  case TokKind::Identifier: {
    Token NameTok = advance();
    if (!check(TokKind::LParen)) {
      VarId V = lookupOrImplicit(NameTok.Text, NameTok.Loc);
      return F->make<VarRef>(V, NameTok.Loc);
    }
    advance(); // (
    std::vector<Expr *> Args;
    if (!check(TokKind::RParen)) {
      do
        Args.push_back(parseExpr());
      while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "after subscripts or intrinsic arguments");

    // Declared arrays win over intrinsics of the same name.
    VarId V = F->lookup(NameTok.Text);
    if (V != static_cast<VarId>(-1) && F->symbol(V).isArray())
      return F->make<ArrayRef>(V, std::move(Args), NameTok.Loc);
    Intrinsic Fn;
    if (lookupIntrinsic(NameTok.Text, Fn))
      return F->make<IntrinsicExpr>(Fn, std::move(Args), NameTok.Loc);
    error(NameTok.Loc,
          NameTok.Text + " is neither a declared array nor an intrinsic");
    return F->make<IntLiteral>(0, NameTok.Loc);
  }
  default:
    error(T.Loc, std::string("expected an expression, got ") +
                     tokKindName(T.Kind));
    advance();
    return F->make<IntLiteral>(0, T.Loc);
  }
}

} // namespace

std::unique_ptr<Program> ptran::parseProgram(std::string_view Source,
                                             DiagnosticEngine &Diags) {
  std::vector<Token> Tokens = Lexer::tokenize(Source, Diags);
  if (Diags.hasErrors())
    return nullptr;
  return Parser(std::move(Tokens), Diags).run();
}
