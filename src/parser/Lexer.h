//===--- parser/Lexer.h - Mini-language lexer -------------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Fortran-77-flavoured mini language. The language is
/// case-insensitive and line-oriented; `!` starts a comment. Dotted
/// operators (.LT., .AND., ...) are disambiguated from real literals the
/// way Fortran compilers do it: a dot followed by an operator word is an
/// operator, otherwise it may begin or continue a number.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_PARSER_LEXER_H
#define PTRAN_PARSER_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ptran {

/// Token kinds of the mini language. Keywords are lexed as Identifier and
/// recognized contextually by the parser (Fortran has no reserved words).
enum class TokKind {
  Eof,
  Newline,
  Identifier,
  IntLit,
  RealLit,
  LParen,
  RParen,
  Comma,
  Assign,  ///< =
  Plus,
  Minus,
  Star,
  Slash,
  StarStar, ///< **
  Lt,       ///< .LT. or <
  Le,       ///< .LE. or <=
  Gt,       ///< .GT. or >
  Ge,       ///< .GE. or >=
  EqCmp,    ///< .EQ. or ==
  NeCmp,    ///< .NE. or /=
  And,      ///< .AND.
  Or,       ///< .OR.
  Not,      ///< .NOT.
};

/// \returns a printable name for diagnostics, e.g. "identifier" or "','".
const char *tokKindName(TokKind K);

/// One token with its source location and payload.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  /// Identifier text (original spelling) for Identifier tokens.
  std::string Text;
  int64_t IntValue = 0;
  double RealValue = 0.0;
};

/// Tokenizes an entire buffer up front.
class Lexer {
public:
  /// Lexes \p Source; malformed tokens are reported to \p Diags and
  /// skipped. Always produces a trailing Eof token.
  static std::vector<Token> tokenize(std::string_view Source,
                                     DiagnosticEngine &Diags);
};

} // namespace ptran

#endif // PTRAN_PARSER_LEXER_H
