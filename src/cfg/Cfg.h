//===--- cfg/Cfg.h - Statement-level control flow graph ---------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The control flow graph of Definition 1 in the paper: a labelled
/// multigraph over typed nodes. Nodes represent MiniIR statements (plus
/// the synthesized START/STOP/PREHEADER/POSTEXIT nodes of the extended
/// CFG); edges carry the labels T (true branch), F (false branch), U
/// (unconditional) and Z (pseudo edges that can never be taken).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_CFG_CFG_H
#define PTRAN_CFG_CFG_H

#include "graph/Digraph.h"
#include "ir/Function.h"

#include <string>
#include <vector>

namespace ptran {

/// Edge labels of the control flow graph (the set L of Definition 1).
/// Values >= FirstCaseLabel are the arms of computed GOTOs ("C1", "C2",
/// ...), demonstrating that the framework handles arbitrary label sets,
/// not just two-way branches.
enum class CfgLabel : LabelId {
  U = 0, ///< Unconditional branch.
  T = 1, ///< Conditional branch taken (also: DO loop continues).
  F = 2, ///< Conditional branch not taken (also: DO loop exits).
  Z = 3, ///< Pseudo edge; never taken at run time (Figure 2's Z1/Z2).
};

/// First label value used for computed-GOTO arms.
inline constexpr LabelId FirstCaseLabel = 4;

/// The label of the \p K-th (1-based) arm of a computed GOTO.
inline CfgLabel caseLabel(unsigned K) {
  return static_cast<CfgLabel>(FirstCaseLabel + K - 1);
}

/// True for computed-GOTO arm labels.
inline bool isCaseLabel(CfgLabel L) {
  return static_cast<LabelId>(L) >= FirstCaseLabel;
}

/// 1-based arm index of a case label.
inline unsigned caseIndex(CfgLabel L) {
  return static_cast<LabelId>(L) - FirstCaseLabel + 1;
}

/// \returns "U", "T", "F", "Z" or "C<k>" for case labels.
std::string cfgLabelName(CfgLabel L);

/// Node types of Definition 1 (the mapping T_c). The type only helps
/// identify the interval structure in the forward control dependence
/// graph; it does not change the graph's semantics.
enum class CfgNodeType {
  Start,
  Stop,
  Header,
  Preheader,
  Postexit,
  Other,
  /// Synthetic per-loop "iterate" node. Isolated in the (cyclic) ECFG;
  /// the forward control dependence construction re-targets the loop's
  /// back edges at it and connects it to the loop's postexits with pseudo
  /// edges, so that per-iteration control dependence stays acyclic while
  /// code following the loop postdominates the whole body.
  Iterate,
};

/// \returns "START", "STOP", "HEADER", "PREHEADER", "POSTEXIT", "OTHER" or
/// "ITERATE".
const char *cfgNodeTypeName(CfgNodeType Ty);

/// A statement-level control flow graph. Wraps a Digraph with per-node
/// type and statement-origin information.
class Cfg {
public:
  /// Creates an empty CFG over \p F's statements (\p F may be null for
  /// synthetic graphs used in tests).
  explicit Cfg(const Function *F = nullptr) : Func(F) {}

  /// Adds a node of the given type, optionally recording the statement it
  /// represents.
  NodeId createNode(CfgNodeType Ty, StmtId Origin = InvalidStmt);

  EdgeId addEdge(NodeId From, NodeId To, CfgLabel L) {
    return G.addEdge(From, To, static_cast<LabelId>(L));
  }
  void eraseEdge(EdgeId E) { G.eraseEdge(E); }

  const Digraph &graph() const { return G; }
  unsigned numNodes() const { return G.numNodes(); }

  CfgLabel edgeLabel(EdgeId E) const {
    return static_cast<CfgLabel>(G.edge(E).Label);
  }

  CfgNodeType nodeType(NodeId N) const { return Types[N]; }
  void setNodeType(NodeId N, CfgNodeType Ty) { Types[N] = Ty; }

  /// The statement this node represents, or InvalidStmt for synthesized
  /// nodes (START, STOP, preheaders, postexits).
  StmtId origin(NodeId N) const { return Origins[N]; }

  /// The node representing statement \p S, or InvalidNode. Only meaningful
  /// for graphs produced by buildCfg.
  NodeId nodeForStmt(StmtId S) const;

  NodeId entry() const { return Entry; }
  void setEntry(NodeId N) { Entry = N; }

  /// A branch that leaves the procedure: taking label \p Label from
  /// \p Node transfers control out (RETURN, or falling off the end).
  struct ExitBranch {
    NodeId Node;
    CfgLabel Label;
  };
  const std::vector<ExitBranch> &exitBranches() const { return Exits; }
  void addExitBranch(NodeId N, CfgLabel L) { Exits.push_back({N, L}); }
  void clearExitBranches() { Exits.clear(); }

  const Function *function() const { return Func; }

  /// Human-readable node description, e.g. "S3: IF (M .GE. 0) GOTO 20".
  std::string nodeName(NodeId N) const;

  /// Graphviz rendering (synthesized nodes shown with dashed borders,
  /// pseudo edges dashed).
  std::string dot(std::string_view Title) const;

private:
  Digraph G;
  std::vector<CfgNodeType> Types;
  std::vector<StmtId> Origins;
  std::vector<ExitBranch> Exits;
  NodeId Entry = InvalidNode;
  const Function *Func;
};

/// Builds the statement-level CFG of a finalized function: one node per
/// statement, edges per statement semantics. The entry is the node of
/// statement 0; exit branches record RETURNs and fall-off-the-end paths.
Cfg buildCfg(const Function &F);

/// Bypasses GOTO nodes: every in-edge of a GOTO node is redirected to the
/// GOTO's target with its original label, and the GOTO node is detached.
/// This recovers the compact statement CFGs the paper draws (Figure 1
/// folds `GOTO 10` into the CALL node's out-edge). Self-looping GOTOs are
/// kept. \returns the number of nodes elided.
unsigned elideGotoNodes(Cfg &C);

/// Partitions the nodes of \p C into maximal single-entry straight-line
/// sequences (basic blocks). Used by the naive profiling baseline, which
/// maintains one counter per basic block. Unreachable nodes are grouped
/// into blocks too (their counters simply stay zero).
std::vector<std::vector<NodeId>> computeBasicBlocks(const Cfg &C);

} // namespace ptran

#endif // PTRAN_CFG_CFG_H
