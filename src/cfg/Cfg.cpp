//===--- cfg/Cfg.cpp - Statement-level control flow graph -----------------===//

#include "cfg/Cfg.h"

#include "graph/DepthFirst.h"
#include "ir/Printer.h"
#include "support/Casting.h"
#include "support/FatalError.h"

#include <sstream>

using namespace ptran;

std::string ptran::cfgLabelName(CfgLabel L) {
  switch (L) {
  case CfgLabel::U:
    return "U";
  case CfgLabel::T:
    return "T";
  case CfgLabel::F:
    return "F";
  case CfgLabel::Z:
    return "Z";
  default:
    break;
  }
  if (isCaseLabel(L))
    return "C" + std::to_string(caseIndex(L));
  PTRAN_UNREACHABLE("unknown CfgLabel");
}

const char *ptran::cfgNodeTypeName(CfgNodeType Ty) {
  switch (Ty) {
  case CfgNodeType::Start:
    return "START";
  case CfgNodeType::Stop:
    return "STOP";
  case CfgNodeType::Header:
    return "HEADER";
  case CfgNodeType::Preheader:
    return "PREHEADER";
  case CfgNodeType::Postexit:
    return "POSTEXIT";
  case CfgNodeType::Other:
    return "OTHER";
  case CfgNodeType::Iterate:
    return "ITERATE";
  }
  PTRAN_UNREACHABLE("unknown CfgNodeType");
}

NodeId Cfg::createNode(CfgNodeType Ty, StmtId Origin) {
  NodeId N = G.addNode();
  Types.push_back(Ty);
  Origins.push_back(Origin);
  return N;
}

NodeId Cfg::nodeForStmt(StmtId S) const {
  // buildCfg creates statement nodes first, in statement order.
  if (S < Origins.size() && Origins[S] == S)
    return S;
  for (NodeId N = 0; N < Origins.size(); ++N)
    if (Origins[N] == S)
      return N;
  return InvalidNode;
}

std::string Cfg::nodeName(NodeId N) const {
  switch (Types[N]) {
  case CfgNodeType::Start:
    return "START";
  case CfgNodeType::Stop:
    return "STOP";
  case CfgNodeType::Preheader:
    return "PH" + std::to_string(N);
  case CfgNodeType::Postexit:
    return "PE" + std::to_string(N);
  case CfgNodeType::Iterate:
    return "IT" + std::to_string(N);
  case CfgNodeType::Header:
  case CfgNodeType::Other:
    break;
  }
  std::string Name = "S" + std::to_string(N);
  if (Func && Origins[N] != InvalidStmt) {
    const Stmt *S = Func->stmt(Origins[N]);
    Name += ": ";
    if (S->label() != 0)
      Name += std::to_string(S->label()) + " ";
    Name += printStmt(*Func, S);
  }
  return Name;
}

std::string Cfg::dot(std::string_view Title) const {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (NodeId N = 0; N < G.numNodes(); ++N) {
    OS << "  n" << N << " [label=\"" << nodeName(N) << "\"";
    if (Types[N] != CfgNodeType::Other && Types[N] != CfgNodeType::Header)
      OS << ", style=dashed";
    if (Types[N] == CfgNodeType::Header)
      OS << ", peripheries=2";
    OS << "];\n";
  }
  for (EdgeId E = 0; E < G.numEdgeSlots(); ++E) {
    if (!G.isLive(E))
      continue;
    const Digraph::Edge &Ed = G.edge(E);
    CfgLabel L = static_cast<CfgLabel>(Ed.Label);
    OS << "  n" << Ed.From << " -> n" << Ed.To << " [label=\""
       << cfgLabelName(L) << "\"";
    if (L == CfgLabel::Z)
      OS << ", style=dashed";
    OS << "];\n";
  }
  OS << "}\n";
  return OS.str();
}

Cfg ptran::buildCfg(const Function &F) {
  assert(F.isFinalized() && "CFG construction requires a finalized function");
  Cfg C(&F);

  // One node per statement, ids aligned with StmtIds.
  for (StmtId S = 0; S < F.numStmts(); ++S) {
    CfgNodeType Ty = CfgNodeType::Other;
    C.createNode(Ty, S);
  }
  if (F.numStmts() == 0)
    return C;
  C.setEntry(0);

  auto HasNext = [&](StmtId S) { return S + 1 < F.numStmts(); };

  for (StmtId S = 0; S < F.numStmts(); ++S) {
    const Stmt *St = F.stmt(S);
    switch (St->kind()) {
    case StmtKind::Assign:
    case StmtKind::Continue:
    case StmtKind::Call:
    case StmtKind::Print:
      if (HasNext(S))
        C.addEdge(S, S + 1, CfgLabel::U);
      else
        C.addExitBranch(S, CfgLabel::U);
      break;
    case StmtKind::Goto:
      C.addEdge(S, cast<GotoStmt>(St)->target(), CfgLabel::U);
      break;
    case StmtKind::ComputedGoto: {
      const auto *Cg = cast<ComputedGotoStmt>(St);
      for (size_t K = 0; K < Cg->targets().size(); ++K)
        C.addEdge(S, Cg->targets()[K],
                  caseLabel(static_cast<unsigned>(K) + 1));
      // An out-of-range index falls through (Fortran-77 semantics).
      if (HasNext(S))
        C.addEdge(S, S + 1, CfgLabel::U);
      else
        C.addExitBranch(S, CfgLabel::U);
      break;
    }
    case StmtKind::IfGoto: {
      const auto *If = cast<IfGotoStmt>(St);
      C.addEdge(S, If->target(), CfgLabel::T);
      if (HasNext(S))
        C.addEdge(S, S + 1, CfgLabel::F);
      else
        C.addExitBranch(S, CfgLabel::F);
      break;
    }
    case StmtKind::DoStart: {
      const auto *Do = cast<DoStmt>(St);
      assert(Do->matchingEnd() != InvalidStmt && "unmatched DO");
      // T: enter/continue the loop body; F: trip count exhausted.
      if (HasNext(S))
        C.addEdge(S, S + 1, CfgLabel::T);
      else
        PTRAN_UNREACHABLE("DO statement cannot be last (needs its ENDDO)");
      StmtId AfterLoop = Do->matchingEnd() + 1;
      if (AfterLoop < F.numStmts())
        C.addEdge(S, AfterLoop, CfgLabel::F);
      else
        C.addExitBranch(S, CfgLabel::F);
      break;
    }
    case StmtKind::DoEnd:
      C.addEdge(S, cast<EndDoStmt>(St)->matchingDo(), CfgLabel::U);
      break;
    case StmtKind::Return:
      C.addExitBranch(S, CfgLabel::U);
      break;
    }
  }
  return C;
}

unsigned ptran::elideGotoNodes(Cfg &C) {
  const Function *F = C.function();
  if (!F)
    return 0;
  unsigned Elided = 0;
  const Digraph &G = C.graph();

  // Resolve the final destination of a GOTO chain (guarding against cycles
  // of GOTOs, which are simply left in place).
  auto IsGotoNode = [&](NodeId N) {
    StmtId S = C.origin(N);
    return S != InvalidStmt && isa<GotoStmt>(F->stmt(S));
  };
  auto ChainTarget = [&](NodeId N) -> NodeId {
    std::vector<bool> Seen(G.numNodes(), false);
    NodeId Cur = N;
    while (IsGotoNode(Cur)) {
      if (Seen[Cur])
        return InvalidNode; // GOTO cycle; leave untouched.
      Seen[Cur] = true;
      std::vector<NodeId> Succs = G.successors(Cur);
      assert(Succs.size() == 1 && "GOTO nodes have exactly one successor");
      Cur = Succs[0];
    }
    return Cur;
  };

  for (NodeId N = 0; N < G.numNodes(); ++N) {
    if (!IsGotoNode(N))
      continue;
    NodeId Target = ChainTarget(N);
    if (Target == InvalidNode)
      continue;
    // Redirect all in-edges past this GOTO, preserving their labels.
    for (EdgeId In : G.inEdges(N)) {
      const Digraph::Edge &Ed = G.edge(In);
      C.addEdge(Ed.From, Target, static_cast<CfgLabel>(Ed.Label));
      C.eraseEdge(In);
    }
    // Detach the GOTO's own out-edge.
    for (EdgeId Out : G.outEdges(N))
      C.eraseEdge(Out);
    if (C.entry() == N)
      C.setEntry(Target);
    ++Elided;
  }
  return Elided;
}

std::vector<std::vector<NodeId>>
ptran::computeBasicBlocks(const Cfg &C) {
  const Digraph &G = C.graph();
  unsigned N = G.numNodes();

  // A node is a block leader unless it has exactly one predecessor and
  // that predecessor has exactly one successor (both counting live edges).
  std::vector<bool> Leader(N, true);
  for (NodeId Node = 0; Node < N; ++Node) {
    std::vector<NodeId> Preds = G.predecessors(Node);
    if (Preds.size() == 1 && G.outDegree(Preds[0]) == 1 &&
        Node != C.entry() && Preds[0] != Node)
      Leader[Node] = false;
  }

  std::vector<std::vector<NodeId>> Blocks;
  std::vector<bool> Assigned(N, false);
  for (NodeId Node = 0; Node < N; ++Node) {
    if (!Leader[Node] || Assigned[Node])
      continue;
    // Detached nodes (e.g. elided GOTOs) do not form blocks.
    if (Node != C.entry() && G.inDegree(Node) == 0 && G.outDegree(Node) == 0 &&
        C.origin(Node) != InvalidStmt && C.numNodes() > 1) {
      // Still give isolated-but-real nodes a singleton block, except for
      // elided ones that have been fully detached.
      bool WasElided = false;
      if (const Function *F = C.function())
        WasElided = F->stmt(C.origin(Node))->kind() == StmtKind::Goto;
      if (WasElided) {
        Assigned[Node] = true;
        continue;
      }
    }
    std::vector<NodeId> Block;
    NodeId Cur = Node;
    while (true) {
      Block.push_back(Cur);
      Assigned[Cur] = true;
      std::vector<NodeId> Succs = G.successors(Cur);
      if (Succs.size() != 1)
        break;
      NodeId Next = Succs[0];
      if (Leader[Next] || Assigned[Next])
        break;
      Cur = Next;
    }
    Blocks.push_back(std::move(Block));
  }
  return Blocks;
}
