//===--- freq/Frequencies.h - Relative frequency computation ----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts TOTAL_FREQ counts into the relative frequencies of
/// Definition 3 using the three recurrence equations of Section 3, in one
/// top-down pass over the FCDG:
///
///   1.  NODE_FREQ(START) = 1
///   2.  FREQ(u, l) = TOTAL_FREQ(u, l)
///                    / (TOTAL_FREQ(START, U) * NODE_FREQ(u))
///   3.  NODE_FREQ(v) = Sigma_(u,v,l) NODE_FREQ(u) * FREQ(u, l)
///
/// with the footnote-2 guard: a zero denominator forces FREQ(u, l) = 0
/// (the numerator is then necessarily zero too).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_FREQ_FREQUENCIES_H
#define PTRAN_FREQ_FREQUENCIES_H

#include "profile/Recovery.h"

#include <map>
#include <vector>

namespace ptran {

/// Relative execution frequencies of one function.
struct Frequencies {
  /// FREQ(u, l): loop frequency for preheader conditions (>= 0), branch
  /// probability otherwise (in [0, 1]).
  std::map<ControlCondition, double> Freq;
  /// FREQ(u, l) in dense form, indexed by the FlowArena's global group
  /// ids (each arena group IS one control condition). This is what the
  /// CSR TIME/VAR sweep reads; holds the same doubles as Freq.
  std::vector<double> GroupFreq;
  /// NODE_FREQ(u): average executions of u per procedure invocation,
  /// indexed by ECFG node (nodes outside the FCDG hold 0).
  std::vector<double> NodeFreq;
  /// TOTAL_FREQ(START, U): how many activations the totals cover.
  double Invocations = 0.0;

  double freqOf(const ControlCondition &C) const {
    auto It = Freq.find(C);
    return It == Freq.end() ? 0.0 : It->second;
  }
};

/// Runs the top-down pass on \p Totals (which must be Ok).
Frequencies computeFrequencies(const FunctionAnalysis &FA,
                               const FrequencyTotals &Totals);

/// Rebuilds \p F.GroupFreq from \p F.Freq against \p CD's arena. Every
/// producer of a Frequencies that will reach the estimation sweep must
/// either fill GroupFreq directly (computeFrequencies does) or call this.
void populateGroupFreq(Frequencies &F, const ControlDependence &CD);

} // namespace ptran

#endif // PTRAN_FREQ_FREQUENCIES_H
