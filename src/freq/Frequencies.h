//===--- freq/Frequencies.h - Relative frequency computation ----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts TOTAL_FREQ counts into the relative frequencies of
/// Definition 3 using the three recurrence equations of Section 3, in one
/// top-down pass over the FCDG:
///
///   1.  NODE_FREQ(START) = 1
///   2.  FREQ(u, l) = TOTAL_FREQ(u, l)
///                    / (TOTAL_FREQ(START, U) * NODE_FREQ(u))
///   3.  NODE_FREQ(v) = Sigma_(u,v,l) NODE_FREQ(u) * FREQ(u, l)
///
/// with the footnote-2 guard: a zero denominator forces FREQ(u, l) = 0
/// (the numerator is then necessarily zero too).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_FREQ_FREQUENCIES_H
#define PTRAN_FREQ_FREQUENCIES_H

#include "profile/Recovery.h"

#include <map>
#include <vector>

namespace ptran {

/// Relative execution frequencies of one function.
struct Frequencies {
  /// FREQ(u, l): loop frequency for preheader conditions (>= 0), branch
  /// probability otherwise (in [0, 1]).
  std::map<ControlCondition, double> Freq;
  /// NODE_FREQ(u): average executions of u per procedure invocation,
  /// indexed by ECFG node (nodes outside the FCDG hold 0).
  std::vector<double> NodeFreq;
  /// TOTAL_FREQ(START, U): how many activations the totals cover.
  double Invocations = 0.0;

  double freqOf(const ControlCondition &C) const {
    auto It = Freq.find(C);
    return It == Freq.end() ? 0.0 : It->second;
  }
};

/// Runs the top-down pass on \p Totals (which must be Ok).
Frequencies computeFrequencies(const FunctionAnalysis &FA,
                               const FrequencyTotals &Totals);

} // namespace ptran

#endif // PTRAN_FREQ_FREQUENCIES_H
