//===--- freq/Frequencies.cpp - Relative frequency computation ------------===//

#include "freq/Frequencies.h"

#include <cassert>

using namespace ptran;

Frequencies ptran::computeFrequencies(const FunctionAnalysis &FA,
                                      const FrequencyTotals &Totals) {
  assert(Totals.Ok && "frequency computation requires recovered totals");
  const ControlDependence &CD = FA.cd();
  const Digraph &Fcdg = CD.fcdg();
  NodeId Start = FA.ecfg().start();

  Frequencies Out;
  Out.NodeFreq.assign(Fcdg.numNodes(), 0.0);
  Out.Invocations = Totals.condTotal({Start, CfgLabel::U});

  // Equation 1.
  if (Start < Out.NodeFreq.size())
    Out.NodeFreq[Start] = 1.0;

  // One top-down pass: FREQ at a node needs its NODE_FREQ, which equation
  // 3 provides from the (already processed) FCDG parents.
  for (NodeId U : CD.topoOrder()) {
    double NodeFreqU = Out.NodeFreq[U];
    // Equation 2 per outgoing condition, with the division-by-zero guard.
    for (CfgLabel L : CD.labelsOf(U)) {
      ControlCondition Cond{U, L};
      double Total = Totals.condTotal(Cond);
      double Denominator = Out.Invocations * NodeFreqU;
      Out.Freq[Cond] = Denominator == 0.0 ? 0.0 : Total / Denominator;
    }
    // Equation 3: push frequency to the children.
    for (EdgeId E : Fcdg.outEdges(U)) {
      const Digraph::Edge &Ed = Fcdg.edge(E);
      ControlCondition Cond{U, static_cast<CfgLabel>(Ed.Label)};
      Out.NodeFreq[Ed.To] += NodeFreqU * Out.Freq[Cond];
    }
  }
  return Out;
}
