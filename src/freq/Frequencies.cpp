//===--- freq/Frequencies.cpp - Relative frequency computation ------------===//

#include "freq/Frequencies.h"

#include <cassert>

using namespace ptran;

Frequencies ptran::computeFrequencies(const FunctionAnalysis &FA,
                                      const FrequencyTotals &Totals) {
  assert(Totals.Ok && "frequency computation requires recovered totals");
  const ControlDependence &CD = FA.cd();
  const FlowArena &A = CD.arena();
  NodeId Start = FA.ecfg().start();

  Frequencies Out;
  Out.NodeFreq.assign(CD.fcdg().numNodes(), 0.0);
  Out.GroupFreq.assign(A.numGroups(), 0.0);
  Out.Invocations = Totals.condTotal({Start, CfgLabel::U});

  // Equation 1.
  if (Start < Out.NodeFreq.size())
    Out.NodeFreq[Start] = 1.0;

  // One top-down pass over the arena (positions are topological): FREQ at
  // a node needs its NODE_FREQ, which equation 3 provides from the
  // already-processed FCDG parents. Group order is the old labelsOf()
  // order and the raw edges are in insertion order, so every floating-
  // point operation happens in the same sequence as the Digraph walk.
  for (unsigned P = 0; P < A.numPositions(); ++P) {
    NodeId U = A.node(P);
    double NodeFreqU = Out.NodeFreq[U];
    // Equation 2 per outgoing condition, with the division-by-zero guard.
    for (uint32_t Gi = A.groupsBegin(P); Gi != A.groupsEnd(P); ++Gi) {
      ControlCondition Cond{U, A.group(Gi).Label};
      double Total = Totals.condTotal(Cond);
      double Denominator = Out.Invocations * NodeFreqU;
      double Freq = Denominator == 0.0 ? 0.0 : Total / Denominator;
      Out.GroupFreq[Gi] = Freq;
      Out.Freq[Cond] = Freq;
    }
    // Equation 3: push frequency to the children.
    for (uint32_t R = A.rawBegin(P); R != A.rawEnd(P); ++R) {
      const FlowArena::RawEdge &Ed = A.raw(R);
      Out.NodeFreq[Ed.To] += NodeFreqU * Out.GroupFreq[Ed.Group];
    }
  }
  return Out;
}

void ptran::populateGroupFreq(Frequencies &F, const ControlDependence &CD) {
  const FlowArena &A = CD.arena();
  F.GroupFreq.assign(A.numGroups(), 0.0);
  for (unsigned P = 0; P < A.numPositions(); ++P) {
    NodeId U = A.node(P);
    for (uint32_t Gi = A.groupsBegin(P); Gi != A.groupsEnd(P); ++Gi)
      F.GroupFreq[Gi] = F.freqOf({U, A.group(Gi).Label});
  }
}
