//===--- freq/StaticFrequencies.cpp - Compile-time frequencies ------------===//

#include "freq/StaticFrequencies.h"

#include "ir/ConstFold.h"
#include "support/Casting.h"

#include <cassert>

using namespace ptran;

double StaticFrequencies::exactFraction() const {
  unsigned Considered = 0, Decided = 0;
  for (const auto &[Cond, IsExact] : Exact) {
    if (Cond.Label == CfgLabel::Z)
      continue;
    ++Considered;
    Decided += IsExact;
  }
  return Considered == 0 ? 1.0
                         : static_cast<double>(Decided) / Considered;
}

StaticFrequencies
ptran::computeStaticFrequencies(const FunctionAnalysis &FA,
                                const StaticFrequencyOptions &Opts) {
  const ControlDependence &CD = FA.cd();
  const Ecfg &E = FA.ecfg();
  const Cfg &C = FA.cfg();
  const Function &F = FA.function();

  StaticFrequencies Out;
  Out.Freqs.NodeFreq.assign(CD.fcdg().numNodes(), 0.0);
  Out.Freqs.Invocations = 1.0;

  // Single-constant-assignment environment: lets the analysis see through
  // the common `n = 64; DO i = 1, n` idiom.
  const std::map<VarId, FoldedValue> Env = singleConstantAssignments(F);

  // Per-node loop frequency chosen for each header (needed again when
  // assigning the DO header's own branch probabilities).
  std::map<NodeId, double> LoopFreqOf; // keyed by preheader node.
  std::map<NodeId, bool> LoopExactOf;

  auto AssignLoop = [&](NodeId Ph) {
    NodeId H = E.headerOf(Ph);
    assert(H != InvalidNode);
    double Freq = Opts.DefaultLoopFrequency;
    bool Exact = false;
    StmtId S = C.origin(H);
    if (S != InvalidStmt) {
      if (const auto *Do = dyn_cast<DoStmt>(F.stmt(S))) {
        if (FA.intervals().isExitFreeDoLoop(C, H)) {
          std::optional<FoldedValue> Lo = foldConstant(Do->lo(), &Env);
          std::optional<FoldedValue> Hi = foldConstant(Do->hi(), &Env);
          std::optional<FoldedValue> Step =
              Do->step() ? foldConstant(Do->step(), &Env)
                         : std::optional(FoldedValue{Type::Integer, 1, 0.0});
          if (Lo && Hi && Step && Step->I != 0) {
            // Exit-free constant DO: the header runs Trip + 1 times.
            int64_t Trip = (Hi->I - Lo->I + Step->I) / Step->I;
            if (Trip < 0)
              Trip = 0;
            Freq = static_cast<double>(Trip + 1);
            Exact = true;
          }
        }
      }
    }
    LoopFreqOf[Ph] = Freq;
    LoopExactOf[Ph] = Exact;
    return std::pair(Freq, Exact);
  };

  for (NodeId U : CD.topoOrder()) {
    for (CfgLabel L : CD.labelsOf(U)) {
      ControlCondition Cond{U, L};
      double Freq = 0.0;
      bool Exact = false;

      if (L == CfgLabel::Z) {
        Freq = 0.0;
        Exact = true; // Pseudo edges are zero by construction.
      } else if (U == E.start()) {
        Freq = 1.0;
        Exact = true;
      } else if (E.headerOf(U) != InvalidNode) {
        std::tie(Freq, Exact) = AssignLoop(U);
      } else {
        StmtId S = C.origin(U);
        const Stmt *St = S == InvalidStmt ? nullptr : F.stmt(S);
        if (St && isa<IfGotoStmt>(St)) {
          const auto *If = cast<IfGotoStmt>(St);
          if (std::optional<FoldedValue> V = foldConstant(If->cond(), &Env)) {
            bool Taken = V->asBool();
            Freq = (L == CfgLabel::T) == Taken ? 1.0 : 0.0;
            Exact = true;
          } else if (FA.intervals().isHeader(U)) {
            // A conditional loop header (goto loop): its T/F split is
            // tied to the assumed loop frequency; leave heuristic.
            Freq = L == CfgLabel::T ? Opts.DefaultBranchTaken
                                    : 1.0 - Opts.DefaultBranchTaken;
          } else {
            Freq = L == CfgLabel::T ? Opts.DefaultBranchTaken
                                    : 1.0 - Opts.DefaultBranchTaken;
          }
        } else if (St && isa<DoStmt>(St)) {
          // The DO header's continue/exit probabilities follow from the
          // loop frequency chosen at its preheader: it takes F once per
          // entry and T the remaining (LoopFreq - 1) times.
          NodeId Ph = E.preheaderOf(U);
          auto It = LoopFreqOf.find(Ph);
          double LoopFreq = It != LoopFreqOf.end()
                                ? It->second
                                : AssignLoop(Ph).first;
          bool LoopExact = LoopExactOf[Ph];
          if (LoopFreq < 1.0)
            LoopFreq = 1.0;
          Freq = L == CfgLabel::T ? (LoopFreq - 1.0) / LoopFreq
                                  : 1.0 / LoopFreq;
          Exact = LoopExact;
        } else if (St && isa<ComputedGotoStmt>(St)) {
          const auto *Cg = cast<ComputedGotoStmt>(St);
          if (std::optional<FoldedValue> V = foldConstant(Cg->index(), &Env)) {
            int64_t Index = V->Ty == Type::Real
                                ? static_cast<int64_t>(V->R)
                                : V->I;
            bool InRange =
                Index >= 1 &&
                Index <= static_cast<int64_t>(Cg->targets().size());
            if (L == CfgLabel::U)
              Freq = InRange ? 0.0 : 1.0;
            else
              Freq = InRange && caseIndex(L) ==
                                    static_cast<unsigned>(Index)
                         ? 1.0
                         : 0.0;
            Exact = true;
          } else {
            // Uniform over the n arms plus the fallthrough.
            Freq = 1.0 / (static_cast<double>(Cg->targets().size()) + 1.0);
          }
        } else {
          // A node with a single real out-label (e.g. when only part of
          // a branch appears as a condition is impossible here, since
          // non-branch statements generate no conditions). Be safe.
          Freq = Opts.DefaultBranchTaken;
        }
      }
      Out.Freqs.Freq[Cond] = Freq;
      Out.Exact[Cond] = Exact;
    }
  }

  // Dense FREQ, then NODE_FREQ via equation 3 over the arena's raw edges
  // (insertion order, same accumulation sequence as the Digraph walk).
  populateGroupFreq(Out.Freqs, CD);
  NodeId Start = E.start();
  if (Start < Out.Freqs.NodeFreq.size())
    Out.Freqs.NodeFreq[Start] = 1.0;
  const FlowArena &A = CD.arena();
  for (unsigned P = 0; P < A.numPositions(); ++P) {
    NodeId U = A.node(P);
    for (uint32_t R = A.rawBegin(P); R != A.rawEnd(P); ++R) {
      const FlowArena::RawEdge &Ed = A.raw(R);
      Out.Freqs.NodeFreq[Ed.To] +=
          Out.Freqs.NodeFreq[U] * Out.Freqs.GroupFreq[Ed.Group];
    }
  }
  return Out;
}

Frequencies ptran::hybridFrequencies(const FunctionAnalysis &FA,
                                     const StaticFrequencies &Static,
                                     const FrequencyTotals *Totals) {
  if (Totals && Totals->Ok &&
      Totals->condTotal({FA.ecfg().start(), CfgLabel::U}) > 0.0)
    return computeFrequencies(FA, *Totals);
  return Static.Freqs;
}
