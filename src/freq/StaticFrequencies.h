//===--- freq/StaticFrequencies.h - Compile-time frequencies ---*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compile-time frequency analysis for the restricted cases Section 3
/// enumerates — "a Fortran DO loop with constant bounds and no
/// conditional loop exits, an IF condition that can be computed at
/// compile-time" — with explicit heuristics everywhere else, and a hybrid
/// mode that uses the profile where one exists and the static estimate
/// where it does not (the complementation the paper recommends).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_FREQ_STATICFREQUENCIES_H
#define PTRAN_FREQ_STATICFREQUENCIES_H

#include "freq/Frequencies.h"

namespace ptran {

/// Heuristic parameters for conditions the analysis cannot decide.
struct StaticFrequencyOptions {
  /// Probability assigned to an undecidable conditional branch label.
  double DefaultBranchTaken = 0.5;
  /// Header executions per entry assumed for loops with unknown trip
  /// counts (DO loops with non-constant bounds, GOTO loops).
  double DefaultLoopFrequency = 10.0;
};

/// Static frequencies plus provenance: which conditions were decided by
/// analysis (exact) and which fell back to heuristics.
struct StaticFrequencies {
  Frequencies Freqs; ///< Invocations is fixed at 1.
  /// True where compile-time analysis decided the condition.
  std::map<ControlCondition, bool> Exact;

  /// Fraction of non-pseudo conditions decided exactly.
  double exactFraction() const;
};

/// Runs the compile-time analysis over one function's FCDG.
StaticFrequencies
computeStaticFrequencies(const FunctionAnalysis &FA,
                         const StaticFrequencyOptions &Opts = {});

/// The paper's recommended combination: profiled frequencies when the
/// profile observed the procedure at least once (\p Totals non-null and
/// covering an invocation), the static estimate otherwise.
Frequencies hybridFrequencies(const FunctionAnalysis &FA,
                              const StaticFrequencies &Static,
                              const FrequencyTotals *Totals);

} // namespace ptran

#endif // PTRAN_FREQ_STATICFREQUENCIES_H
