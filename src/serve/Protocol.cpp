//===--- serve/Protocol.cpp - Daemon wire protocol ------------------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <cstring>

using namespace ptran;
using namespace ptran::serve;

static bool validToken(const std::string &Text, bool AllowEquals) {
  if (Text.empty())
    return false;
  for (char C : Text)
    if (C == '\n' || C == '\r' || C == '\0' || (!AllowEquals && C == '='))
      return false;
  return true;
}

static void appendU32(std::vector<uint8_t> &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

static uint32_t readU32(const uint8_t *Data) {
  return static_cast<uint32_t>(Data[0]) |
         (static_cast<uint32_t>(Data[1]) << 8) |
         (static_cast<uint32_t>(Data[2]) << 16) |
         (static_cast<uint32_t>(Data[3]) << 24);
}

std::optional<std::vector<uint8_t>>
serve::encodeFrame(const WireMessage &M, std::string &Error) {
  if (!validToken(M.Verb, /*AllowEquals=*/false)) {
    Error = "verb must be a non-empty single-line token without '='";
    return std::nullopt;
  }
  std::string Header = M.Verb;
  for (const auto &[Key, Value] : M.Params) {
    if (!validToken(Key, /*AllowEquals=*/false)) {
      Error = "parameter key '" + Key + "' is not a single-line token";
      return std::nullopt;
    }
    // Values may contain '=' (the parser splits on the first one) but a
    // newline would be parsed as the next parameter: reject it here
    // rather than silently corrupt the frame.
    if (Value.find_first_of("\n\r") != std::string::npos ||
        Value.find('\0') != std::string::npos) {
      Error = "parameter '" + Key + "' value contains newline or NUL; "
              "large or binary data belongs in the body";
      return std::nullopt;
    }
    Header += '\n';
    Header += Key;
    Header += '=';
    Header += Value;
  }
  uint64_t Payload = 4 + Header.size() + M.Body.size();
  if (Payload > MaxFramePayload) {
    Error = "frame payload of " + std::to_string(Payload) +
            " bytes exceeds the " + std::to_string(MaxFramePayload) +
            "-byte limit";
    return std::nullopt;
  }
  std::vector<uint8_t> Out;
  Out.reserve(Payload);
  appendU32(Out, static_cast<uint32_t>(Header.size()));
  Out.insert(Out.end(), Header.begin(), Header.end());
  Out.insert(Out.end(), M.Body.begin(), M.Body.end());
  return Out;
}

std::optional<WireMessage> serve::decodeFrame(const uint8_t *Data, size_t Size,
                                              std::string &Error) {
  if (Size < 4) {
    Error = "frame shorter than its header-length field";
    return std::nullopt;
  }
  uint32_t HeaderLen = readU32(Data);
  if (static_cast<uint64_t>(HeaderLen) + 4 > Size) {
    Error = "frame header length " + std::to_string(HeaderLen) +
            " exceeds the payload";
    return std::nullopt;
  }
  std::string Header(reinterpret_cast<const char *>(Data + 4), HeaderLen);
  WireMessage M;
  M.Body.assign(reinterpret_cast<const char *>(Data + 4 + HeaderLen),
                Size - 4 - HeaderLen);

  size_t Pos = 0;
  bool First = true;
  while (Pos <= Header.size()) {
    size_t End = Header.find('\n', Pos);
    if (End == std::string::npos)
      End = Header.size();
    std::string Line = Header.substr(Pos, End - Pos);
    Pos = End + 1;
    if (First) {
      if (Line.empty()) {
        Error = "frame has an empty verb";
        return std::nullopt;
      }
      M.Verb = Line;
      First = false;
      if (Pos > Header.size())
        break;
      continue;
    }
    if (Line.empty()) {
      if (Pos > Header.size())
        break;
      Error = "frame header contains an empty parameter line";
      return std::nullopt;
    }
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos || Eq == 0) {
      Error = "frame parameter line '" + Line + "' is not key=value";
      return std::nullopt;
    }
    M.Params[Line.substr(0, Eq)] = Line.substr(Eq + 1);
    if (Pos > Header.size())
      break;
  }
  if (First) {
    Error = "frame has an empty verb";
    return std::nullopt;
  }
  return M;
}

WireMessage serve::okResponse() {
  WireMessage M;
  M.Verb = "ok";
  return M;
}

WireMessage serve::errorResponse(const std::string &Code,
                                 const std::string &Message) {
  WireMessage M;
  M.Verb = "error";
  M.Params["code"] = Code;
  M.Params["message"] = Message;
  return M;
}
