//===--- serve/Server.h - Concurrent estimation daemon core -----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of ptran-serve: a registry of named
/// EstimationSessions (one per loaded program/configuration) plus a
/// thread-safe request dispatcher. The daemon binary and the bench client
/// are thin wrappers; tests drive ServeCore::handle directly from many
/// threads with no socket in sight.
///
/// Sessions live under a global memory budget: each loaded program is
/// charged a size heuristic, and loading one more program evicts the
/// least-recently-used sessions until the budget (and the session-count
/// cap) holds again. Entries are shared_ptr-owned, so an eviction never
/// yanks a session out from under an in-flight request — the request keeps
/// its reference, the registry just forgets the name.
///
/// Deadlines are per request: `estimate` and `ingest-profile` accept
/// `deadline-ms` and `step-budget` parameters that arm a stack CancelToken
/// for that one call, layered over the session's DeadlinePolicy (the
/// daemon default is Degrade, so interactive callers get a tagged
/// static-frequency answer instead of an error when their deadline trips).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SERVE_SERVER_H
#define PTRAN_SERVE_SERVER_H

#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "serve/Protocol.h"
#include "session/EstimationSession.h"
#include "stream/DeltaStream.h"
#include "support/Cancellation.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace ptran {
namespace serve {

/// Daemon-wide configuration shared by every session ServeCore creates.
struct ServeOptions {
  /// Worker threads per session's pool (0 = hardware concurrency). The
  /// daemon keeps this small: parallelism across requests comes from the
  /// connection threads, not from fanning out every session's passes.
  unsigned Jobs = 1;
  /// Global budget on the memory heuristic summed over resident sessions.
  uint64_t MemoryBudgetBytes = 256ull << 20;
  /// Hard cap on resident sessions regardless of the byte budget.
  unsigned MaxSessions = 64;
  /// What a session does when a request's deadline trips mid-estimation.
  DeadlinePolicy OnDeadline = DeadlinePolicy::Degrade;
  /// Step budget armed on every estimate/ingest token when the request
  /// does not send its own `step-budget` (0 = unbounded). The daemon's
  /// load-shedding backstop against runaway queries.
  uint64_t DefaultStepBudget = 0;
  /// Registry every session and the dispatcher report into; the `stats`
  /// verb serializes it. Null disables counting.
  ObsRegistry *Obs = nullptr;
  /// Crash-safe persistence (--state-dir). Null = ephemeral daemon, the
  /// historical behavior. The store must outlive the core.
  durable::StateStore *Store = nullptr;
  /// Background flusher cadence: stale stream epochs are sealed and the
  /// journal fsynced (FsyncPolicy::Batch's flush point) this often.
  unsigned FlushIntervalMs = 200;
  /// Periodic checkpoint cadence (snapshot every session + rotate the
  /// journal). 0 disables the timer; the `checkpoint` verb and graceful
  /// shutdown still checkpoint.
  unsigned SnapshotIntervalMs = 5000;
  /// Pending stream appends that trigger an epoch flush before the
  /// staleness timer does (bounds journal loss under Batch fsync).
  uint64_t FlushCellThreshold = 8192;
};

/// Thread-safe dispatcher over the session registry. One instance serves
/// every connection of one daemon.
class ServeCore {
public:
  explicit ServeCore(const ServeOptions &Opts) : Opts(Opts) {}
  ~ServeCore() { stopFlusher(); }

  /// Handles one request and returns the response. Safe to call from any
  /// number of threads concurrently: the registry has its own lock, and
  /// each EstimationSession serializes its callers.
  WireMessage handle(const WireMessage &Request);

  /// Resident sessions right now (tests assert eviction through this).
  unsigned sessionCount() const;
  /// Sum of the resident sessions' memory-heuristic charges.
  uint64_t residentBytes() const;

  /// -- Durable state (all no-ops when ServeOptions::Store is null) ------

  /// What restore() rebuilt (the daemon logs it at boot).
  struct RestoreReport {
    unsigned SessionsRestored = 0;
    uint64_t RecordsReplayed = 0;
    /// Records already covered by a snapshot watermark (the crash-during-
    /// checkpoint double-apply guard skipped them).
    uint64_t RecordsSkipped = 0;
    /// One line per partial failure (a snapshot session that no longer
    /// parses, a record naming an evicted session, ...). Recovery itself
    /// never fails: a bad piece costs that piece, not the store.
    std::vector<std::string> Diagnostics;
  };

  /// Rebuilds sessions from \p Recovered: one session per snapshot, then
  /// the journal records above each session's watermark replayed in LSN
  /// order. Call once at boot, before serving traffic.
  void restore(const durable::StateStore::Recovery &Recovered,
               RestoreReport &Out);

  /// Flushes every stream epoch, snapshots every resident session at the
  /// journal's last LSN, prunes stale snapshots, and rotates the journal.
  /// Runs under the structure lock: no mutation can slip between the
  /// capture and the rotation. False (journal NOT rotated — an over-long
  /// journal is safe, a lost record is not) with \p Error on IO failure.
  bool checkpoint(std::string &Error);

  /// Starts/stops the background flusher (stream staleness + journal sync
  /// + periodic checkpoints, per ServeOptions cadences). stopFlusher is
  /// idempotent and also runs from the destructor.
  void startFlusher();
  void stopFlusher();

private:
  /// One loaded program and its session. Name-keyed in the registry;
  /// shared_ptr-owned so eviction and in-flight requests can overlap.
  struct SessionEntry {
    std::string Name;
    std::string Source;
    std::unique_ptr<Program> Prog;
    /// Collects the session's analysis/quarantine warnings. Writes happen
    /// only inside the session's own serialized calls (EstimatorOptions::
    /// Diags points here), so the session lock covers them.
    DiagnosticEngine Diags;
    std::unique_ptr<EstimationSession> Session;
    /// Streaming-ingest cells over this session, built lazily by the
    /// first stream-deltas request (most sessions never stream).
    /// StreamMu guards only the lazy construction; the stream itself is
    /// its own synchronization domain (lock-free writers, serialized
    /// flushers).
    std::mutex StreamMu;
    std::unique_ptr<CounterDeltaStream> Stream;
    uint64_t MemBytes = 0;
    /// Logical LRU stamp (registry clock value of the last touch).
    uint64_t LastUsed = 0;

    /// Resolved creation parameters in their wire (u32) encoding, kept so
    /// SessionCreate records and snapshots can rebuild the session with
    /// the exact same configuration.
    uint32_t Mode = 0;
    uint32_t LoopVariance = 0;
    uint32_t OnBadProfile = 0;
    /// Orders this session's {mutate, journal append} pairs against each
    /// other (so the journal order matches the apply order) — see the
    /// lock-ordering note above ServeCore::StructureMu.
    std::mutex DurableMu;
    /// Functions whose SaturationMark record is already journaled or was
    /// restored from a snapshot (guarded by DurableMu).
    std::set<std::string> JournaledSaturation;
    /// The durable fold observer installed on Stream (EpochFold records);
    /// owned here so it lives exactly as long as the stream.
    std::unique_ptr<EpochFoldObserver> FoldObs;
  };
  class DurableFoldObserver;

  WireMessage handleLoadProgram(const WireMessage &Request);
  WireMessage handleRun(const WireMessage &Request);
  WireMessage handleEstimate(const WireMessage &Request);
  WireMessage handleEstimateBatch(const WireMessage &Request);
  WireMessage handleStreamDeltas(const WireMessage &Request);
  WireMessage handleIngestProfile(const WireMessage &Request);
  WireMessage handleCaptureProfile(const WireMessage &Request);
  WireMessage handleCheckpoint();
  WireMessage handleStats();

  /// Looks up \p Name and stamps its LRU clock. Null when unknown.
  std::shared_ptr<SessionEntry> findSession(const std::string &Name);
  /// Evicts least-recently-used entries (never \p Keep) until the memory
  /// budget and session cap hold, journaling a SessionEvict per victim.
  /// Caller holds Mu (and, when durable, StructureMu shared).
  void evictLocked(const SessionEntry *Keep);
  void bump(const char *Counter, uint64_t Delta = 1);

  /// Parses + analyzes one session (the expensive part, done outside any
  /// core lock). Shared by load-program and the restore path. Null with
  /// \p Error on parse/analysis failure.
  std::shared_ptr<SessionEntry> buildEntry(const std::string &Name,
                                           std::string Source, uint32_t Mode,
                                           uint32_t LoopVariance,
                                           uint32_t OnBadProfile,
                                           std::string &Error);
  /// Inserts \p Entry into the registry (replacing a same-name entry),
  /// charges the memory budget, evicts over-budget sessions, and — when
  /// \p JournalCreate — appends the SessionCreate record inside the same
  /// registry-lock hold, so journal order matches apply order.
  void registerEntry(const std::shared_ptr<SessionEntry> &Entry,
                     bool JournalCreate);
  /// Lazily builds Entry's stream (and installs the durable fold observer
  /// when a store is configured).
  CounterDeltaStream *streamFor(SessionEntry &Entry);
  /// Appends \p R to the journal. Returns the LSN, or 0 when there is no
  /// store or the append failed — failure degrades durability (the record
  /// is lost to recovery), it never fails the request; it is counted
  /// (`durable.append_failures`) and logged instead.
  uint64_t journalAppend(durable::DurableRecord &R);
  /// Applies one snapshot's accumulated state to a freshly built entry.
  void applySnapshotState(SessionEntry &Entry,
                          const durable::DurableSessionState &State,
                          std::vector<std::string> &Diagnostics);
  void flusherLoop();

  ServeOptions Opts;

  /// LOCK ORDER: StructureMu -> Mu/StreamMu -> (stream FlushMu) ->
  /// DurableMu -> session lock -> journal lock. Every durable mutation
  /// (load/run/ingest/fold/evict) holds StructureMu SHARED around its
  /// whole {mutate + journal} pair; checkpoint() holds it UNIQUE across
  /// {flush streams, read watermark, capture, write snapshots, prune,
  /// rotate} — so a record can neither land between a session's capture
  /// and the rotation (it would be rotated away uncovered) nor between a
  /// fold's application and its journal append (the snapshot would
  /// double-count it on replay). Stream flushes take StructureMu shared
  /// OUTSIDE CounterDeltaStream::flush (the observer cannot: checkpoint
  /// calls flush while holding StructureMu unique).
  std::shared_mutex StructureMu;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<SessionEntry>> Sessions;
  uint64_t Clock = 0;
  uint64_t TotalBytes = 0;

  std::thread Flusher;
  std::mutex FlusherMu;
  std::condition_variable FlusherCv;
  bool FlusherStop = false;
};

} // namespace serve
} // namespace ptran

#endif // PTRAN_SERVE_SERVER_H
