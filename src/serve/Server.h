//===--- serve/Server.h - Concurrent estimation daemon core -----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of ptran-serve: a registry of named
/// EstimationSessions (one per loaded program/configuration) plus a
/// thread-safe request dispatcher. The daemon binary and the bench client
/// are thin wrappers; tests drive ServeCore::handle directly from many
/// threads with no socket in sight.
///
/// Sessions live under a global memory budget: each loaded program is
/// charged a size heuristic, and loading one more program evicts the
/// least-recently-used sessions until the budget (and the session-count
/// cap) holds again. Entries are shared_ptr-owned, so an eviction never
/// yanks a session out from under an in-flight request — the request keeps
/// its reference, the registry just forgets the name.
///
/// Deadlines are per request: `estimate` and `ingest-profile` accept
/// `deadline-ms` and `step-budget` parameters that arm a stack CancelToken
/// for that one call, layered over the session's DeadlinePolicy (the
/// daemon default is Degrade, so interactive callers get a tagged
/// static-frequency answer instead of an error when their deadline trips).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SERVE_SERVER_H
#define PTRAN_SERVE_SERVER_H

#include "obs/Observability.h"
#include "serve/Protocol.h"
#include "session/EstimationSession.h"
#include "stream/DeltaStream.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ptran {
namespace serve {

/// Daemon-wide configuration shared by every session ServeCore creates.
struct ServeOptions {
  /// Worker threads per session's pool (0 = hardware concurrency). The
  /// daemon keeps this small: parallelism across requests comes from the
  /// connection threads, not from fanning out every session's passes.
  unsigned Jobs = 1;
  /// Global budget on the memory heuristic summed over resident sessions.
  uint64_t MemoryBudgetBytes = 256ull << 20;
  /// Hard cap on resident sessions regardless of the byte budget.
  unsigned MaxSessions = 64;
  /// What a session does when a request's deadline trips mid-estimation.
  DeadlinePolicy OnDeadline = DeadlinePolicy::Degrade;
  /// Step budget armed on every estimate/ingest token when the request
  /// does not send its own `step-budget` (0 = unbounded). The daemon's
  /// load-shedding backstop against runaway queries.
  uint64_t DefaultStepBudget = 0;
  /// Registry every session and the dispatcher report into; the `stats`
  /// verb serializes it. Null disables counting.
  ObsRegistry *Obs = nullptr;
};

/// Thread-safe dispatcher over the session registry. One instance serves
/// every connection of one daemon.
class ServeCore {
public:
  explicit ServeCore(const ServeOptions &Opts) : Opts(Opts) {}

  /// Handles one request and returns the response. Safe to call from any
  /// number of threads concurrently: the registry has its own lock, and
  /// each EstimationSession serializes its callers.
  WireMessage handle(const WireMessage &Request);

  /// Resident sessions right now (tests assert eviction through this).
  unsigned sessionCount() const;
  /// Sum of the resident sessions' memory-heuristic charges.
  uint64_t residentBytes() const;

private:
  /// One loaded program and its session. Name-keyed in the registry;
  /// shared_ptr-owned so eviction and in-flight requests can overlap.
  struct SessionEntry {
    std::string Name;
    std::string Source;
    std::unique_ptr<Program> Prog;
    /// Collects the session's analysis/quarantine warnings. Writes happen
    /// only inside the session's own serialized calls (EstimatorOptions::
    /// Diags points here), so the session lock covers them.
    DiagnosticEngine Diags;
    std::unique_ptr<EstimationSession> Session;
    /// Streaming-ingest cells over this session, built lazily by the
    /// first stream-deltas request (most sessions never stream).
    /// StreamMu guards only the lazy construction; the stream itself is
    /// its own synchronization domain (lock-free writers, serialized
    /// flushers).
    std::mutex StreamMu;
    std::unique_ptr<CounterDeltaStream> Stream;
    uint64_t MemBytes = 0;
    /// Logical LRU stamp (registry clock value of the last touch).
    uint64_t LastUsed = 0;
  };

  WireMessage handleLoadProgram(const WireMessage &Request);
  WireMessage handleRun(const WireMessage &Request);
  WireMessage handleEstimate(const WireMessage &Request);
  WireMessage handleEstimateBatch(const WireMessage &Request);
  WireMessage handleStreamDeltas(const WireMessage &Request);
  WireMessage handleIngestProfile(const WireMessage &Request);
  WireMessage handleCaptureProfile(const WireMessage &Request);
  WireMessage handleStats();

  /// Looks up \p Name and stamps its LRU clock. Null when unknown.
  std::shared_ptr<SessionEntry> findSession(const std::string &Name);
  /// Evicts least-recently-used entries (never \p Keep) until the memory
  /// budget and session cap hold. Caller holds Mu.
  void evictLocked(const SessionEntry *Keep);
  void bump(const char *Counter, uint64_t Delta = 1);

  ServeOptions Opts;
  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<SessionEntry>> Sessions;
  uint64_t Clock = 0;
  uint64_t TotalBytes = 0;
};

} // namespace serve
} // namespace ptran

#endif // PTRAN_SERVE_SERVER_H
