//===--- serve/Server.h - Concurrent estimation daemon core -----*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of ptran-serve: a registry of named
/// EstimationSessions (one per loaded program/configuration) plus a
/// thread-safe request dispatcher. The daemon binary and the bench client
/// are thin wrappers; tests drive ServeCore::handle directly from many
/// threads with no socket in sight.
///
/// Sessions live under a global memory budget: each loaded program is
/// charged a size heuristic, and loading one more program evicts the
/// least-recently-used sessions until the budget (and the session-count
/// cap) holds again. Entries are shared_ptr-owned, so an eviction never
/// yanks a session out from under an in-flight request — the request keeps
/// its reference, the registry just forgets the name.
///
/// Deadlines are per request: `estimate` and `ingest-profile` accept
/// `deadline-ms` and `step-budget` parameters that arm a stack CancelToken
/// for that one call, layered over the session's DeadlinePolicy (the
/// daemon default is Degrade, so interactive callers get a tagged
/// static-frequency answer instead of an error when their deadline trips).
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SERVE_SERVER_H
#define PTRAN_SERVE_SERVER_H

#include "durable/StateStore.h"
#include "obs/Observability.h"
#include "serve/Protocol.h"
#include "session/EstimationSession.h"
#include "stream/DeltaStream.h"
#include "support/Cancellation.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace ptran {
namespace serve {

/// What a primary-side replication shipper plugs into ServeCore (the
/// interface lives here, not in src/repl/, so serve never links repl).
/// Implementations must be callable from any request thread and MUST NOT
/// take ServeCore locks: onAppend fires inside journalAppend (StructureMu
/// shared + DurableMu held), waitDurable blocks a request thread until a
/// standby acknowledges fsyncing the LSN (--repl-ack=always; bounded — a
/// dead standby degrades durability, it never wedges the primary).
class ReplicationHooks {
public:
  virtual ~ReplicationHooks() = default;
  /// A record with \p Lsn just landed in the journal; wake shippers.
  virtual void onAppend(uint64_t Lsn) = 0;
  /// Block until some subscriber reports \p Lsn durable (or a bounded
  /// timeout / no-subscriber fallthrough). True = acknowledged durable.
  virtual bool waitDurable(uint64_t Lsn) = 0;
  /// Smallest next-LSN over live subscribers (UINT64_MAX when none):
  /// checkpoint() keeps the journal un-rotated while a subscriber still
  /// needs its tail.
  virtual uint64_t minSubscriberLsn() = 0;
};

/// Daemon-wide configuration shared by every session ServeCore creates.
struct ServeOptions {
  /// Worker threads per session's pool (0 = hardware concurrency). The
  /// daemon keeps this small: parallelism across requests comes from the
  /// connection threads, not from fanning out every session's passes.
  unsigned Jobs = 1;
  /// Global budget on the memory heuristic summed over resident sessions.
  uint64_t MemoryBudgetBytes = 256ull << 20;
  /// Hard cap on resident sessions regardless of the byte budget.
  unsigned MaxSessions = 64;
  /// What a session does when a request's deadline trips mid-estimation.
  DeadlinePolicy OnDeadline = DeadlinePolicy::Degrade;
  /// Step budget armed on every estimate/ingest token when the request
  /// does not send its own `step-budget` (0 = unbounded). The daemon's
  /// load-shedding backstop against runaway queries.
  uint64_t DefaultStepBudget = 0;
  /// Registry every session and the dispatcher report into; the `stats`
  /// verb serializes it. Null disables counting.
  ObsRegistry *Obs = nullptr;
  /// Crash-safe persistence (--state-dir). Null = ephemeral daemon, the
  /// historical behavior. The store must outlive the core.
  durable::StateStore *Store = nullptr;
  /// Background flusher cadence: stale stream epochs are sealed and the
  /// journal fsynced (FsyncPolicy::Batch's flush point) this often.
  unsigned FlushIntervalMs = 200;
  /// Periodic checkpoint cadence (snapshot every session + rotate the
  /// journal). 0 disables the timer; the `checkpoint` verb and graceful
  /// shutdown still checkpoint.
  unsigned SnapshotIntervalMs = 5000;
  /// Pending stream appends that trigger an epoch flush before the
  /// staleness timer does (bounds journal loss under Batch fsync).
  uint64_t FlushCellThreshold = 8192;
  /// Upper bound (ms) on how long a stream epoch with pending appends may
  /// sit unsealed: the flusher folds it once it is this stale even when
  /// neither the cell threshold nor the sync cadence has fired. 0 keeps
  /// the historical timer-only cadence.
  unsigned FlushMaxStalenessMs = 0;
  /// Primary-side replication hooks (owned by the caller, must outlive
  /// the core). Null = no replication, the historical behavior.
  ReplicationHooks *Repl = nullptr;
  /// Handles the `promote` verb (and SIGUSR1): seals standby catch-up and
  /// reopens the core for writes. Unset = the verb reports not-a-standby.
  std::function<bool(std::string &)> Promote;
};

/// Thread-safe dispatcher over the session registry. One instance serves
/// every connection of one daemon.
class ServeCore {
public:
  explicit ServeCore(const ServeOptions &Opts) : Opts(Opts) {}
  ~ServeCore() { stopFlusher(); }

  /// Handles one request and returns the response. Safe to call from any
  /// number of threads concurrently: the registry has its own lock, and
  /// each EstimationSession serializes its callers.
  WireMessage handle(const WireMessage &Request);

  /// Resident sessions right now (tests assert eviction through this).
  unsigned sessionCount() const;
  /// Sum of the resident sessions' memory-heuristic charges.
  uint64_t residentBytes() const;

  /// -- Durable state (all no-ops when ServeOptions::Store is null) ------

  /// What restore() rebuilt (the daemon logs it at boot).
  struct RestoreReport {
    unsigned SessionsRestored = 0;
    uint64_t RecordsReplayed = 0;
    /// Records already covered by a snapshot watermark (the crash-during-
    /// checkpoint double-apply guard skipped them).
    uint64_t RecordsSkipped = 0;
    /// One line per partial failure (a snapshot session that no longer
    /// parses, a record naming an evicted session, ...). Recovery itself
    /// never fails: a bad piece costs that piece, not the store.
    std::vector<std::string> Diagnostics;
  };

  /// Rebuilds sessions from \p Recovered: one session per snapshot, then
  /// the journal records above each session's watermark replayed in LSN
  /// order. Call once at boot, before serving traffic.
  void restore(const durable::StateStore::Recovery &Recovered,
               RestoreReport &Out);

  /// Flushes every stream epoch, snapshots every resident session at the
  /// journal's last LSN, prunes stale snapshots, and rotates the journal.
  /// Runs under the structure lock: no mutation can slip between the
  /// capture and the rotation. False (journal NOT rotated — an over-long
  /// journal is safe, a lost record is not) with \p Error on IO failure.
  bool checkpoint(std::string &Error);

  /// Starts/stops the background flusher (stream staleness + journal sync
  /// + periodic checkpoints, per ServeOptions cadences). stopFlusher is
  /// idempotent and also runs from the destructor.
  void startFlusher();
  void stopFlusher();

  /// -- Replication (primary capture + standby apply) --------------------

  /// Read-only mode (a standby): mutating verbs answer a structured
  /// `read-only` error, journalAppend and budget eviction become no-ops
  /// (the standby's journal is written ONLY through applyReplicatedBatch,
  /// so its LSNs stay byte-identical to the primary's). Promotion flips
  /// it back off.
  void setReadOnly(bool V) { ReadOnly.store(V, std::memory_order_release); }
  bool isReadOnly() const { return ReadOnly.load(std::memory_order_acquire); }

  /// One session's snapshot image (the encodeSnapshot byte format that
  /// also lives in *.snap files) captured for wire transfer.
  struct BootstrapSnapshot {
    std::string Session;
    std::vector<uint8_t> Image;
  };
  struct BootstrapCapture {
    /// Journal LSN every image covers; streaming resumes at Watermark+1.
    uint64_t Watermark = 0;
    std::vector<BootstrapSnapshot> Snapshots;
  };
  /// Captures a consistent {snapshot images, watermark} pair for a
  /// subscriber that cannot catch up from the journal alone. Same barrier
  /// discipline as checkpoint() (StructureMu unique across flush +
  /// capture) but touches no disk. False with \p Error when a stream
  /// flush fails.
  bool captureBootstrap(BootstrapCapture &Out, std::string &Error);

  /// Standby bootstrap: decodes \p Image, rebuilds that session, and
  /// applies its accumulated state — the restore() snapshot path driven
  /// from wire bytes instead of a *.snap file. False with \p Error when
  /// the image is garbled or the program no longer parses; \p Diagnostics
  /// collects partial-state warnings.
  bool adoptSnapshotImage(const std::vector<uint8_t> &Image,
                          std::vector<std::string> &Diagnostics,
                          std::string &Error);

  /// Standby bootstrap: forgets every resident session without journaling
  /// (the bootstrap replaces the whole registry).
  void clearAllSessions();

  /// Standby apply path: journals \p Len bytes of primary frames
  /// write-ahead (validated byte-for-byte, LSNs [FirstLsn, FirstLsn+
  /// Count)), optionally fsyncs (--repl-ack=always), then applies each
  /// decoded record through the restore machinery — all under one
  /// StructureMu hold, so a standby checkpoint can never slip between the
  /// journal write and the apply (the rotation would silently drop the
  /// unapplied tail). On success AppliedLsn = FirstLsn + Count - 1. False
  /// with \p Error on validation/IO failure (the journal kept its old
  /// tail; the caller must resubscribe).
  bool applyReplicatedBatch(const uint8_t *Frames, size_t Len,
                            uint64_t FirstLsn, uint32_t Count, bool Sync,
                            uint64_t &AppliedLsn,
                            std::vector<std::string> &Diagnostics,
                            std::string &Error);

private:
  /// One loaded program and its session. Name-keyed in the registry;
  /// shared_ptr-owned so eviction and in-flight requests can overlap.
  struct SessionEntry {
    std::string Name;
    std::string Source;
    std::unique_ptr<Program> Prog;
    /// Collects the session's analysis/quarantine warnings. Writes happen
    /// only inside the session's own serialized calls (EstimatorOptions::
    /// Diags points here), so the session lock covers them.
    DiagnosticEngine Diags;
    std::unique_ptr<EstimationSession> Session;
    /// Streaming-ingest cells over this session, built lazily by the
    /// first stream-deltas request (most sessions never stream).
    /// StreamMu guards only the lazy construction; the stream itself is
    /// its own synchronization domain (lock-free writers, serialized
    /// flushers).
    std::mutex StreamMu;
    std::unique_ptr<CounterDeltaStream> Stream;
    uint64_t MemBytes = 0;
    /// Logical LRU stamp (registry clock value of the last touch).
    uint64_t LastUsed = 0;

    /// Resolved creation parameters in their wire (u32) encoding, kept so
    /// SessionCreate records and snapshots can rebuild the session with
    /// the exact same configuration.
    uint32_t Mode = 0;
    uint32_t LoopVariance = 0;
    uint32_t OnBadProfile = 0;
    /// Orders this session's {mutate, journal append} pairs against each
    /// other (so the journal order matches the apply order) — see the
    /// lock-ordering note above ServeCore::StructureMu.
    std::mutex DurableMu;
    /// Functions whose SaturationMark record is already journaled or was
    /// restored from a snapshot (guarded by DurableMu).
    std::set<std::string> JournaledSaturation;
    /// The durable fold observer installed on Stream (EpochFold records);
    /// owned here so it lives exactly as long as the stream.
    std::unique_ptr<EpochFoldObserver> FoldObs;
  };
  class DurableFoldObserver;

  WireMessage handleLoadProgram(const WireMessage &Request);
  WireMessage handleRun(const WireMessage &Request);
  WireMessage handleEstimate(const WireMessage &Request);
  WireMessage handleEstimateBatch(const WireMessage &Request);
  WireMessage handleStreamDeltas(const WireMessage &Request);
  WireMessage handleIngestProfile(const WireMessage &Request);
  WireMessage handleCaptureProfile(const WireMessage &Request);
  WireMessage handleCheckpoint();
  WireMessage handleStats();

  /// Looks up \p Name and stamps its LRU clock. Null when unknown.
  std::shared_ptr<SessionEntry> findSession(const std::string &Name);
  /// Evicts least-recently-used entries (never \p Keep) until the memory
  /// budget and session cap hold, journaling a SessionEvict per victim.
  /// Caller holds Mu (and, when durable, StructureMu shared).
  void evictLocked(const SessionEntry *Keep);
  void bump(const char *Counter, uint64_t Delta = 1);

  /// Parses + analyzes one session (the expensive part, done outside any
  /// core lock). Shared by load-program and the restore path. Null with
  /// \p Error on parse/analysis failure.
  std::shared_ptr<SessionEntry> buildEntry(const std::string &Name,
                                           std::string Source, uint32_t Mode,
                                           uint32_t LoopVariance,
                                           uint32_t OnBadProfile,
                                           std::string &Error);
  /// Inserts \p Entry into the registry (replacing a same-name entry),
  /// charges the memory budget, evicts over-budget sessions, and — when
  /// \p JournalCreate — appends the SessionCreate record inside the same
  /// registry-lock hold, so journal order matches apply order.
  void registerEntry(const std::shared_ptr<SessionEntry> &Entry,
                     bool JournalCreate);
  /// Lazily builds Entry's stream (and installs the durable fold observer
  /// when a store is configured).
  CounterDeltaStream *streamFor(SessionEntry &Entry);
  /// Appends \p R to the journal. Returns the LSN, or 0 when there is no
  /// store or the append failed — failure degrades durability (the record
  /// is lost to recovery), it never fails the request; it is counted
  /// (`durable.append_failures`) and logged instead.
  uint64_t journalAppend(durable::DurableRecord &R);
  /// Applies one snapshot's accumulated state to a freshly built entry.
  void applySnapshotState(SessionEntry &Entry,
                          const durable::DurableSessionState &State,
                          std::vector<std::string> &Diagnostics);
  /// Applies one decoded journal record to the live registry — the replay
  /// step shared by restore() and applyReplicatedBatch(). Problems (a
  /// record naming an evicted session, a profile that no longer
  /// deserializes) land in \p Diagnostics; the record is skipped, never
  /// fatal.
  void applyRecord(const durable::DurableRecord &R,
                   std::vector<std::string> &Diagnostics);
  void flusherLoop();

  ServeOptions Opts;

  /// LOCK ORDER: StructureMu -> Mu/StreamMu -> (stream FlushMu) ->
  /// DurableMu -> session lock -> journal lock. Every durable mutation
  /// (load/run/ingest/fold/evict) holds StructureMu SHARED around its
  /// whole {mutate + journal} pair; checkpoint() holds it UNIQUE across
  /// {flush streams, read watermark, capture, write snapshots, prune,
  /// rotate} — so a record can neither land between a session's capture
  /// and the rotation (it would be rotated away uncovered) nor between a
  /// fold's application and its journal append (the snapshot would
  /// double-count it on replay). Stream flushes take StructureMu shared
  /// OUTSIDE CounterDeltaStream::flush (the observer cannot: checkpoint
  /// calls flush while holding StructureMu unique).
  std::shared_mutex StructureMu;

  mutable std::mutex Mu;
  std::map<std::string, std::shared_ptr<SessionEntry>> Sessions;
  uint64_t Clock = 0;
  uint64_t TotalBytes = 0;

  std::atomic<bool> ReadOnly{false};

  std::thread Flusher;
  std::mutex FlusherMu;
  std::condition_variable FlusherCv;
  bool FlusherStop = false;
};

} // namespace serve
} // namespace ptran

#endif // PTRAN_SERVE_SERVER_H
