//===--- serve/Protocol.h - Daemon wire protocol ----------------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed request/response protocol spoken between
/// ptran-serve and its clients. One message is one frame:
///
///   u32 LE  payload length (headerLen field + header + body)
///   u32 LE  header length
///   bytes   header text
///   bytes   body (raw, may be binary — a PTPF profile image, program
///           source, a stats table)
///
/// The header text is line-oriented: the first line is the verb (requests:
/// `estimate`, `ingest-profile`, `load-program`, `run`, `capture-profile`,
/// `stats`, `ping`, `shutdown`; responses: `ok` or `error`), every further
/// line one `key=value` parameter. Keys are bare identifiers; values run
/// to the end of the line, so they may contain '=' but not newlines —
/// anything bigger or binary travels in the body.
///
/// This header knows nothing about sockets: encodeFrame/decodeFrame map
/// between WireMessage and the payload bytes, so the protocol is testable
/// without IO and transports other than Wire.h can reuse it.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SERVE_PROTOCOL_H
#define PTRAN_SERVE_PROTOCOL_H

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ptran {
namespace serve {

/// One request or response. Verb is the request verb or the response
/// status ("ok"/"error"); Params carries small scalar fields; Body carries
/// bulk or binary payloads verbatim.
struct WireMessage {
  std::string Verb;
  std::map<std::string, std::string> Params;
  std::string Body;

  /// Value of \p Key, or \p Default when absent.
  std::string param(const std::string &Key,
                    const std::string &Default = {}) const {
    auto It = Params.find(Key);
    return It == Params.end() ? Default : It->second;
  }
  bool hasParam(const std::string &Key) const { return Params.count(Key); }
};

/// Upper bound on one frame's payload. Large enough for any profile or
/// workload this project ships; small enough that a garbled length prefix
/// cannot make a reader allocate gigabytes.
inline constexpr uint32_t MaxFramePayload = 64u << 20;

/// Serializes \p M as one frame payload (headerLen + header + body; the
/// outer u32 payload-length prefix is the transport's job). Returns
/// nullopt (and sets \p Error) when the message cannot be framed: a verb
/// or key with newlines/'=', or a payload exceeding MaxFramePayload.
std::optional<std::vector<uint8_t>> encodeFrame(const WireMessage &M,
                                                std::string &Error);

/// Parses one frame payload. Returns nullopt (and sets \p Error) on a
/// malformed frame: truncated header, empty verb, parameter line without
/// '='.
std::optional<WireMessage> decodeFrame(const uint8_t *Data, size_t Size,
                                       std::string &Error);

/// Convenience constructors for the two response shapes.
WireMessage okResponse();
WireMessage errorResponse(const std::string &Code,
                          const std::string &Message);

} // namespace serve
} // namespace ptran

#endif // PTRAN_SERVE_PROTOCOL_H
