//===--- serve/Wire.h - Unix-socket framing transport -----------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The POSIX transport under Protocol.h: listen/connect on a Unix-domain
/// stream socket and move whole frames (u32 LE payload length, then the
/// encodeFrame payload) across it. All loops retry EINTR and handle short
/// reads/writes; writes use MSG_NOSIGNAL so a vanished peer surfaces as an
/// error return instead of SIGPIPE.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_SERVE_WIRE_H
#define PTRAN_SERVE_WIRE_H

#include "serve/Protocol.h"

#include <string>

namespace ptran {
namespace serve {

/// Creates, binds and listens on a Unix-domain stream socket at \p Path
/// (unlinking any stale socket file first). Returns the listening fd, or
/// -1 with \p Error set.
int listenUnix(const std::string &Path, std::string &Error);

/// Connects to the daemon at \p Path. Returns the connected fd, or -1
/// with \p Error set.
int connectUnix(const std::string &Path, std::string &Error);

/// Encodes \p M and writes it as one length-prefixed frame. False (with
/// \p Error set) on encode or IO failure.
bool writeFrame(int Fd, const WireMessage &M, std::string &Error);

/// Reads one frame into \p M. Returns 1 on success, 0 on clean EOF before
/// any byte of a frame (the peer hung up between messages), -1 (with
/// \p Error set) on a malformed frame or IO failure. A peer that closes
/// mid-frame — after part of the 4-byte length prefix, or before the
/// prefix's promised payload bytes all arrive — yields a structured
/// "truncated frame: peer closed after N of M ... bytes" error; a
/// partially-filled buffer is never handed to the codec.
///
/// \p MidFrameTimeoutMs (when >= 0) bounds how long the peer may STALL
/// inside a frame: the deadline arms once the first prefix byte arrives
/// (an idle connection between requests may block forever — that is the
/// server's normal wait state) and covers the rest of the frame. A stall
/// past the deadline yields the same structured error shape with
/// "stalled" in place of "closed", so a half-sent length prefix can no
/// longer pin a pool thread for the life of the process.
int readFrame(int Fd, WireMessage &M, std::string &Error,
              int MidFrameTimeoutMs = -1);

} // namespace serve
} // namespace ptran

#endif // PTRAN_SERVE_WIRE_H
