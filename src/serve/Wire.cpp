//===--- serve/Wire.cpp - Unix-socket framing transport -------------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Wire.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

using namespace ptran;
using namespace ptran::serve;

static std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

static bool fillAddress(const std::string &Path, sockaddr_un &Addr,
                        std::string &Error) {
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Error = "socket path '" + Path + "' exceeds the " +
            std::to_string(sizeof(Addr.sun_path) - 1) + "-byte sun_path limit";
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// True when a socket file at \p Path has a live listener behind it,
/// decided by actually connecting: ECONNREFUSED (or ENOENT) means the
/// daemon that bound it is gone and the file is a stale leftover.
static bool socketIsLive(const sockaddr_un &Addr) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return false; // Cannot probe; bind will report the conflict.
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<const sockaddr *>(&Addr),
                   sizeof(Addr));
  } while (Rc < 0 && errno == EINTR);
  ::close(Fd);
  return Rc == 0;
}

int serve::listenUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return -1;
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE — but unlinking unconditionally would steal the path from
  // a RUNNING daemon (its listener keeps working, invisible to new
  // clients). Probe with a real connect first: only a dead socket file is
  // removed, a live one (or a non-socket file) is refused.
  struct stat St;
  if (::lstat(Path.c_str(), &St) == 0) {
    if (!S_ISSOCK(St.st_mode)) {
      Error = "path '" + Path + "' exists and is not a socket; refusing to "
              "remove it";
      return -1;
    }
    if (socketIsLive(Addr)) {
      Error = "another daemon is already listening on '" + Path + "'";
      return -1;
    }
    ::unlink(Path.c_str());
  }
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return -1;
  }
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    Error = errnoString("bind");
    ::close(Fd);
    return -1;
  }
  if (::listen(Fd, 256) < 0) {
    Error = errnoString("listen");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int serve::connectUnix(const std::string &Path, std::string &Error) {
  sockaddr_un Addr;
  if (!fillAddress(Path, Addr, Error))
    return -1;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = errnoString("socket");
    return -1;
  }
  int Rc;
  do {
    Rc = ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
  } while (Rc < 0 && errno == EINTR);
  if (Rc < 0) {
    Error = errnoString("connect");
    ::close(Fd);
    return -1;
  }
  return Fd;
}

static bool writeAll(int Fd, const uint8_t *Data, size_t Size,
                     std::string &Error) {
  while (Size > 0) {
    ssize_t N = ::send(Fd, Data, Size, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("send");
      return false;
    }
    Data += N;
    Size -= static_cast<size_t>(N);
  }
  return true;
}

/// 1 = filled, 0 = clean EOF before the first byte, -1 = error/short EOF/
/// stall. A short EOF (the peer closed after some but not all of \p Size
/// bytes of \p What) produces a structured "truncated frame" error naming
/// the byte counts; the partially-filled buffer is never handed onward.
///
/// \p TimeoutMs >= 0 bounds mid-transfer stalls: once the deadline is
/// armed, each recv is preceded by a poll for the remaining budget, and
/// running it dry yields the same structured error with "stalled" in
/// place of "closed". \p ArmImmediately arms the deadline before the
/// first byte (payload reads: the prefix already promised data);
/// otherwise it arms after the first byte lands (prefix reads: a
/// connection idling between requests is not a stall).
static int readAll(int Fd, uint8_t *Data, size_t Size, const char *What,
                   std::string &Error, int TimeoutMs = -1,
                   bool ArmImmediately = true) {
  size_t Got = 0;
  bool Armed = TimeoutMs >= 0 && ArmImmediately;
  std::chrono::steady_clock::time_point Deadline;
  if (Armed)
    Deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(TimeoutMs);
  while (Got < Size) {
    if (Armed) {
      auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
          Deadline - std::chrono::steady_clock::now());
      struct pollfd Pf = {Fd, POLLIN, 0};
      int Ready;
      do {
        Ready = ::poll(&Pf, 1,
                       static_cast<int>(std::max<int64_t>(0, Left.count())));
      } while (Ready < 0 && errno == EINTR);
      if (Ready < 0) {
        Error = errnoString("poll");
        return -1;
      }
      if (Ready == 0) {
        Error = "truncated frame: peer stalled after " + std::to_string(Got) +
                " of " + std::to_string(Size) + " " + What + " bytes";
        return -1;
      }
    }
    ssize_t N = ::recv(Fd, Data + Got, Size - Got, 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = errnoString("recv");
      return -1;
    }
    if (N == 0) {
      if (Got == 0)
        return 0;
      Error = "truncated frame: peer closed after " + std::to_string(Got) +
              " of " + std::to_string(Size) + " " + What + " bytes";
      return -1;
    }
    Got += static_cast<size_t>(N);
    if (TimeoutMs >= 0 && !Armed) {
      Armed = true;
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(TimeoutMs);
    }
  }
  return 1;
}

bool serve::writeFrame(int Fd, const WireMessage &M, std::string &Error) {
  std::optional<std::vector<uint8_t>> Payload = encodeFrame(M, Error);
  if (!Payload)
    return false;
  uint32_t Len = static_cast<uint32_t>(Payload->size());
  uint8_t Prefix[4] = {static_cast<uint8_t>(Len),
                       static_cast<uint8_t>(Len >> 8),
                       static_cast<uint8_t>(Len >> 16),
                       static_cast<uint8_t>(Len >> 24)};
  return writeAll(Fd, Prefix, sizeof(Prefix), Error) &&
         writeAll(Fd, Payload->data(), Payload->size(), Error);
}

int serve::readFrame(int Fd, WireMessage &M, std::string &Error,
                     int MidFrameTimeoutMs) {
  uint8_t Prefix[4];
  int Rc = readAll(Fd, Prefix, sizeof(Prefix), "length-prefix", Error,
                   MidFrameTimeoutMs, /*ArmImmediately=*/false);
  if (Rc <= 0)
    return Rc;
  uint32_t Len = static_cast<uint32_t>(Prefix[0]) |
                 (static_cast<uint32_t>(Prefix[1]) << 8) |
                 (static_cast<uint32_t>(Prefix[2]) << 16) |
                 (static_cast<uint32_t>(Prefix[3]) << 24);
  if (Len > MaxFramePayload) {
    Error = "frame length " + std::to_string(Len) + " exceeds the " +
            std::to_string(MaxFramePayload) + "-byte limit";
    return -1;
  }
  std::vector<uint8_t> Payload(Len);
  if (Len > 0) {
    int PayloadRc = readAll(Fd, Payload.data(), Len, "payload", Error,
                            MidFrameTimeoutMs, /*ArmImmediately=*/true);
    if (PayloadRc != 1) {
      // A clean EOF here still truncates the frame: the prefix promised
      // Len payload bytes and none arrived. Nothing partial ever reaches
      // the codec.
      if (PayloadRc == 0)
        Error = "truncated frame: peer closed after 0 of " +
                std::to_string(Len) + " payload bytes";
      return -1;
    }
  }
  std::optional<WireMessage> Decoded =
      decodeFrame(Payload.data(), Payload.size(), Error);
  if (!Decoded)
    return -1;
  M = std::move(*Decoded);
  return 1;
}
