//===--- serve/Server.cpp - Concurrent estimation daemon core -------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "parser/Parser.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

using namespace ptran;
using namespace ptran::serve;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

/// Full-precision double rendering: responses round-trip exactly, so the
/// serve_test can memcmp concurrent answers against serial references.
static std::string preciseDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

static std::optional<ProfileMode> parseMode(const std::string &Text) {
  std::string M = toLower(Text);
  if (M == "naive")
    return ProfileMode::Naive;
  if (M == "opt1")
    return ProfileMode::Opt1;
  if (M == "opt12")
    return ProfileMode::Opt12;
  if (M == "smart")
    return ProfileMode::Smart;
  return std::nullopt;
}

static std::optional<LoopVarianceMode> parseLoopVariance(
    const std::string &Text) {
  std::string M = toLower(Text);
  if (M == "zero")
    return LoopVarianceMode::Zero;
  if (M == "profiled")
    return LoopVarianceMode::Profiled;
  if (M == "geometric")
    return LoopVarianceMode::Geometric;
  if (M == "uniform")
    return LoopVarianceMode::Uniform;
  return std::nullopt;
}

/// The registry's size heuristic for one loaded program: a fixed per-
/// session floor (analyses, plan, runtime) plus the source text plus a
/// per-statement charge covering CFG/interval/FCDG/summary state.
static uint64_t sessionMemoryBytes(const std::string &Source,
                                   const Program &P) {
  uint64_t Stmts = 0;
  for (const auto &F : P.functions())
    Stmts += F->numStmts();
  return 96 * 1024 + Source.size() + Stmts * 2048;
}

/// Arms a per-request token from `deadline-ms` / `step-budget` params.
/// Returns false (with an error response in \p Resp) on malformed values;
/// sets \p Armed when any bound was installed.
static bool armRequestToken(const WireMessage &Request, uint64_t DefaultSteps,
                            CancelToken &Token, bool &Armed,
                            WireMessage &Resp) {
  Armed = false;
  if (Request.hasParam("deadline-ms")) {
    std::optional<double> Ms = parseDouble(Request.param("deadline-ms"));
    if (!Ms || *Ms < 0) {
      Resp = errorResponse("bad-request", "deadline-ms wants a non-negative "
                                          "number, got '" +
                                              Request.param("deadline-ms") +
                                              "'");
      return false;
    }
    Token.setDeadlineIn(std::chrono::nanoseconds(
        static_cast<int64_t>(*Ms * 1e6)));
    Armed = true;
  }
  uint64_t Steps = DefaultSteps;
  if (Request.hasParam("step-budget")) {
    std::optional<unsigned> S = parseUnsigned(Request.param("step-budget"));
    if (!S) {
      Resp = errorResponse("bad-request", "step-budget wants an unsigned "
                                          "integer, got '" +
                                              Request.param("step-budget") +
                                              "'");
      return false;
    }
    Steps = *S;
  }
  if (Steps > 0) {
    Token.setStepBudget(Steps);
    Armed = true;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ServeCore
//===----------------------------------------------------------------------===//

void ServeCore::bump(const char *Counter, uint64_t Delta) {
  if (Opts.Obs)
    Opts.Obs->addCounter(Counter, Delta);
}

unsigned ServeCore::sessionCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return static_cast<unsigned>(Sessions.size());
}

uint64_t ServeCore::residentBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return TotalBytes;
}

std::shared_ptr<ServeCore::SessionEntry>
ServeCore::findSession(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sessions.find(Name);
  if (It == Sessions.end())
    return nullptr;
  It->second->LastUsed = ++Clock;
  return It->second;
}

void ServeCore::evictLocked(const SessionEntry *Keep) {
  // A standby never evicts on its own: its registry must track the
  // primary's byte-for-byte, and only a replicated SessionEvict record
  // (applied through applyRecord, not here) removes a session. Budget
  // pressure on a replica is a capacity-planning problem, not a
  // correctness lever.
  if (isReadOnly())
    return;
  while (Sessions.size() > 1 &&
         (TotalBytes > Opts.MemoryBudgetBytes ||
          Sessions.size() > Opts.MaxSessions)) {
    auto Victim = Sessions.end();
    for (auto It = Sessions.begin(); It != Sessions.end(); ++It) {
      if (It->second.get() == Keep)
        continue;
      if (Victim == Sessions.end() ||
          It->second->LastUsed < Victim->second->LastUsed)
        Victim = It;
    }
    if (Victim == Sessions.end())
      break;
    // In-flight requests on the victim keep their shared_ptr; the
    // registry just forgets the name, and the entry dies with its last
    // reference.
    durable::DurableRecord R;
    R.Type = durable::RecordType::SessionEvict;
    R.Session = Victim->first;
    TotalBytes -= Victim->second->MemBytes;
    Sessions.erase(Victim);
    journalAppend(R);
    bump("serve.evictions");
  }
}

WireMessage ServeCore::handle(const WireMessage &Request) {
  bump("serve.requests");
  // A standby answers reads and refuses every state change with a
  // structured error the client can route on (retry against the primary,
  // or wait for promotion). stream-deltas describe=1 is a read: it only
  // serves the cell-address table.
  if (isReadOnly() &&
      (Request.Verb == "load-program" || Request.Verb == "run" ||
       Request.Verb == "ingest-profile" || Request.Verb == "checkpoint" ||
       (Request.Verb == "stream-deltas" &&
        Request.param("describe") != "1"))) {
    bump("serve.read-only-rejects");
    bump("serve.errors");
    return errorResponse("read-only",
                         "this daemon is a standby replica: '" +
                             Request.Verb +
                             "' mutates state, which only the primary "
                             "accepts until this replica is promoted");
  }
  WireMessage Resp;
  if (Request.Verb == "ping" || Request.Verb == "shutdown")
    Resp = okResponse();
  else if (Request.Verb == "promote") {
    if (!Opts.Promote)
      Resp = errorResponse("bad-request",
                           "this daemon is not a standby (start ptran-serve "
                           "with --standby-of=SOCKET to replicate)");
    else {
      std::string Err;
      if (Opts.Promote(Err)) {
        bump("serve.promotions");
        Resp = okResponse();
        Resp.Params["role"] = "primary";
      } else {
        Resp = errorResponse("promote-failed", Err);
      }
    }
  } else if (Request.Verb == "load-program")
    Resp = handleLoadProgram(Request);
  else if (Request.Verb == "run")
    Resp = handleRun(Request);
  else if (Request.Verb == "estimate")
    Resp = handleEstimate(Request);
  else if (Request.Verb == "estimate-batch")
    Resp = handleEstimateBatch(Request);
  else if (Request.Verb == "stream-deltas")
    Resp = handleStreamDeltas(Request);
  else if (Request.Verb == "ingest-profile")
    Resp = handleIngestProfile(Request);
  else if (Request.Verb == "capture-profile")
    Resp = handleCaptureProfile(Request);
  else if (Request.Verb == "checkpoint")
    Resp = handleCheckpoint();
  else if (Request.Verb == "stats")
    Resp = handleStats();
  else
    Resp = errorResponse("bad-request",
                         "unknown verb '" + Request.Verb + "'");
  if (Resp.Verb == "error")
    bump("serve.errors");
  return Resp;
}

std::shared_ptr<ServeCore::SessionEntry>
ServeCore::buildEntry(const std::string &Name, std::string Source,
                      uint32_t Mode, uint32_t LoopVariance,
                      uint32_t OnBadProfile, std::string &Error) {
  auto Entry = std::make_shared<SessionEntry>();
  Entry->Name = Name;
  Entry->Source = std::move(Source);
  Entry->Mode = Mode;
  Entry->LoopVariance = LoopVariance;
  Entry->OnBadProfile = OnBadProfile;

  Entry->Prog = parseProgram(Entry->Source, Entry->Diags);
  if (!Entry->Prog) {
    Error = "program failed to parse: " + Entry->Diags.str();
    return nullptr;
  }

  EstimatorOptions EOpts(Entry->Diags);
  EOpts.jobs(Opts.Jobs).onDeadline(Opts.OnDeadline);
  EOpts.mode(static_cast<ProfileMode>(Mode))
      .loopVariance(static_cast<LoopVarianceMode>(LoopVariance))
      .onBadProfile(static_cast<BadProfilePolicy>(OnBadProfile));
  if (Opts.Obs)
    EOpts.observability(*Opts.Obs);

  Entry->Session = EstimationSession::create(*Entry->Prog, CostModel(), EOpts);
  if (!Entry->Session) {
    Error = "program failed analysis: " + Entry->Diags.str();
    return nullptr;
  }
  Entry->MemBytes = sessionMemoryBytes(Entry->Source, *Entry->Prog);
  return Entry;
}

void ServeCore::registerEntry(const std::shared_ptr<SessionEntry> &Entry,
                              bool JournalCreate) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sessions.find(Entry->Name);
  if (It != Sessions.end()) {
    // Reload replaces: the old entry's in-flight requests finish on
    // their own reference.
    TotalBytes -= It->second->MemBytes;
    Sessions.erase(It);
  }
  Entry->LastUsed = ++Clock;
  TotalBytes += Entry->MemBytes;
  Sessions[Entry->Name] = Entry;
  if (JournalCreate) {
    durable::DurableRecord R;
    R.Type = durable::RecordType::SessionCreate;
    R.Session = Entry->Name;
    R.Source = Entry->Source;
    R.Mode = Entry->Mode;
    R.LoopVariance = Entry->LoopVariance;
    R.OnBadProfile = Entry->OnBadProfile;
    journalAppend(R);
  }
  evictLocked(Entry.get());
}

WireMessage ServeCore::handleLoadProgram(const WireMessage &Request) {
  std::string Name = Request.param("session");
  if (Name.empty())
    return errorResponse("bad-request", "load-program needs session=NAME");

  std::string Source;
  if (Request.hasParam("workload")) {
    std::string W = toLower(Request.param("workload"));
    const Workload *WL = nullptr;
    if (W == "loops")
      WL = &livermoreLoops();
    else if (W == "simple")
      WL = &simpleKernel();
    else
      return errorResponse("bad-request",
                           "unknown workload '" + W + "' (loops|simple)");
    Source = WL->Source;
  } else if (!Request.Body.empty()) {
    Source = Request.Body;
  } else {
    return errorResponse("bad-request", "load-program needs program source "
                                        "in the body or workload=loops|simple");
  }

  // Resolve the creation parameters to their wire (u32) encoding up front:
  // the SessionCreate record and every snapshot carry exactly these values,
  // so recovery rebuilds the session with the same configuration.
  uint32_t Mode = static_cast<uint32_t>(ProfileMode::Smart);
  uint32_t LoopVariance = static_cast<uint32_t>(LoopVarianceMode::Zero);
  uint32_t OnBadProfile = static_cast<uint32_t>(BadProfilePolicy::Fail);
  if (Request.hasParam("mode")) {
    std::optional<ProfileMode> M = parseMode(Request.param("mode"));
    if (!M)
      return errorResponse("bad-request", "unknown mode '" +
                                              Request.param("mode") +
                                              "' (naive|opt1|opt12|smart)");
    Mode = static_cast<uint32_t>(*M);
  }
  if (Request.hasParam("loop-variance")) {
    std::optional<LoopVarianceMode> LV =
        parseLoopVariance(Request.param("loop-variance"));
    if (!LV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") +
                               "' (zero|profiled|geometric|uniform)");
    LoopVariance = static_cast<uint32_t>(*LV);
  }
  if (Request.hasParam("on-bad-profile")) {
    std::string P = toLower(Request.param("on-bad-profile"));
    if (P == "fail")
      OnBadProfile = static_cast<uint32_t>(BadProfilePolicy::Fail);
    else if (P == "quarantine")
      OnBadProfile = static_cast<uint32_t>(BadProfilePolicy::Quarantine);
    else
      return errorResponse("bad-request", "unknown on-bad-profile '" + P +
                                              "' (fail|quarantine)");
  }

  // Parse + analyze outside every lock (the expensive part), then insert
  // and journal the SessionCreate as one structure-shared critical step.
  std::string Error;
  std::shared_ptr<SessionEntry> Entry = buildEntry(
      Name, std::move(Source), Mode, LoopVariance, OnBadProfile, Error);
  if (!Entry)
    return errorResponse("bad-program", Error);

  {
    std::shared_lock<std::shared_mutex> SL(StructureMu);
    registerEntry(Entry, /*JournalCreate=*/true);
  }
  bump("serve.loads");

  WireMessage Resp = okResponse();
  Resp.Params["session"] = Name;
  Resp.Params["functions"] =
      std::to_string(Entry->Prog->functions().size());
  Resp.Params["memory-bytes"] = std::to_string(Entry->MemBytes);
  return Resp;
}

WireMessage ServeCore::handleRun(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  unsigned Runs = 1;
  if (Request.hasParam("runs")) {
    std::optional<unsigned> N = parseUnsigned(Request.param("runs"));
    if (!N || *N == 0)
      return errorResponse("bad-request", "runs wants a positive integer, "
                                          "got '" +
                                              Request.param("runs") + "'");
    Runs = *N;
  }
  RunResult Last;
  unsigned Done = 0;
  {
    // Shared structure lock + DurableMu: the runs and their RunExec
    // record are one atomic step against a concurrent checkpoint. The
    // journal records the runs that actually EXECUTED — a mid-loop
    // failure still mutated the session's counters Done times.
    std::shared_lock<std::shared_mutex> SL(StructureMu);
    std::lock_guard<std::mutex> DL(Entry->DurableMu);
    for (unsigned I = 0; I < Runs; ++I) {
      Last = Entry->Session->profiledRun();
      if (!Last.Ok)
        break;
      ++Done;
    }
    if (Done > 0) {
      durable::DurableRecord R;
      R.Type = durable::RecordType::RunExec;
      R.Session = Entry->Name;
      R.RunCount = Done;
      journalAppend(R);
    }
  }
  if (Done != Runs)
    return errorResponse("run-failed", Last.Error);
  bump("serve.runs", Runs);
  WireMessage Resp = okResponse();
  Resp.Params["runs"] = std::to_string(Entry->Session->runsExecuted());
  Resp.Params["cycles"] = preciseDouble(Last.Cycles);
  Resp.Params["statements"] = std::to_string(Last.StatementsExecuted);
  return Resp;
}

WireMessage ServeCore::handleEstimate(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  std::vector<EstimateRequest> Reqs(1);
  Reqs[0].Function = Request.param("function");
  if (Request.hasParam("loop-variance")) {
    std::optional<LoopVarianceMode> LV =
        parseLoopVariance(Request.param("loop-variance"));
    if (!LV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") + "'");
    Reqs[0].LoopVariance = *LV;
  }

  std::vector<EstimateResult> Results =
      Entry->Session->estimate(Reqs, Armed ? &Token : nullptr);
  bump("serve.estimates");
  const EstimateResult &R = Results[0];
  if (!R.Ok)
    return errorResponse(Token.expired() ? "timeout" : "estimate-failed",
                         R.Error);

  Resp = okResponse();
  Resp.Params["function"] = R.F ? R.F->name() : Reqs[0].Function;
  Resp.Params["time"] = preciseDouble(R.Time);
  Resp.Params["var"] = preciseDouble(R.Var);
  Resp.Params["stddev"] = preciseDouble(R.StdDev);
  Resp.Params["degraded"] = R.Degraded ? "1" : "0";
  Resp.Params["quarantined"] = R.Quarantined ? "1" : "0";
  if (R.Degraded)
    Resp.Params["degrade-reason"] = R.DegradeReason;
  if (R.Quarantined)
    Resp.Params["quarantine-reason"] = R.QuarantineReason;
  return Resp;
}

WireMessage ServeCore::handleEstimateBatch(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  std::optional<unsigned> Count = parseUnsigned(Request.param("count"));
  if (!Count || *Count == 0)
    return errorResponse("bad-request",
                         "estimate-batch needs count=N (N >= 1), got '" +
                             Request.param("count") + "'");
  // Backstop against a malformed client asking for millions of slots; real
  // batches are tens of functions.
  constexpr unsigned MaxBatch = 4096;
  if (*Count > MaxBatch)
    return errorResponse("bad-request",
                         "estimate-batch count " + std::to_string(*Count) +
                             " exceeds the cap of " +
                             std::to_string(MaxBatch));

  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  // A batch-wide `loop-variance` is the default; `loop-variance.I`
  // overrides it per query.
  std::optional<LoopVarianceMode> BatchLV;
  if (Request.hasParam("loop-variance")) {
    BatchLV = parseLoopVariance(Request.param("loop-variance"));
    if (!BatchLV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") + "'");
  }

  std::vector<EstimateRequest> Reqs(*Count);
  for (unsigned I = 0; I != *Count; ++I) {
    std::string Key = "function." + std::to_string(I);
    if (!Request.hasParam(Key))
      return errorResponse("bad-request",
                           "estimate-batch count=" + std::to_string(*Count) +
                               " but parameter '" + Key + "' is missing");
    Reqs[I].Function = Request.param(Key);
    Reqs[I].LoopVariance = BatchLV;
    std::string LVKey = "loop-variance." + std::to_string(I);
    if (Request.hasParam(LVKey)) {
      std::optional<LoopVarianceMode> LV =
          parseLoopVariance(Request.param(LVKey));
      if (!LV)
        return errorResponse("bad-request", "unknown loop-variance '" +
                                                Request.param(LVKey) +
                                                "' for " + LVKey);
      Reqs[I].LoopVariance = *LV;
    }
  }

  // Keys indexed at or past `count` would be silently dropped, and the
  // caller's queries and our answers would no longer line up one-to-one;
  // reject the disagreement instead of returning a misaligned response.
  for (const auto &[Key, Value] : Request.Params) {
    std::string_view K = Key;
    for (std::string_view Prefix : {"function.", "loop-variance."}) {
      if (K.size() <= Prefix.size() || K.substr(0, Prefix.size()) != Prefix)
        continue;
      std::optional<unsigned> Index =
          parseUnsigned(std::string(K.substr(Prefix.size())));
      if (!Index || *Index >= *Count)
        return errorResponse(
            "bad-request", "estimate-batch count=" + std::to_string(*Count) +
                               " but parameter '" + Key +
                               "' is outside indices 0.." +
                               std::to_string(*Count - 1) +
                               "; count disagrees with the keys sent");
    }
  }

  // One session call for the whole batch: the session answers every query
  // from one coherent analysis snapshot, and shared dirty functions are
  // recomputed once instead of once per query.
  std::vector<EstimateResult> Results =
      Entry->Session->estimate(Reqs, Armed ? &Token : nullptr);
  bump("serve.estimates", Results.size());
  bump("serve.estimate-batches");

  // Per-query failures are reported in-band (`ok.I` = 0 plus `error.I`)
  // so one unknown function does not discard its batch-mates' answers.
  Resp = okResponse();
  Resp.Params["count"] = std::to_string(Results.size());
  unsigned Failed = 0;
  for (unsigned I = 0; I != Results.size(); ++I) {
    const EstimateResult &R = Results[I];
    const std::string Suffix = "." + std::to_string(I);
    Resp.Params["ok" + Suffix] = R.Ok ? "1" : "0";
    if (!R.Ok) {
      ++Failed;
      Resp.Params["error" + Suffix] = R.Error;
      Resp.Params["error-code" + Suffix] =
          Token.expired() ? "timeout" : "estimate-failed";
      continue;
    }
    Resp.Params["function" + Suffix] = R.F ? R.F->name() : Reqs[I].Function;
    Resp.Params["time" + Suffix] = preciseDouble(R.Time);
    Resp.Params["var" + Suffix] = preciseDouble(R.Var);
    Resp.Params["stddev" + Suffix] = preciseDouble(R.StdDev);
    Resp.Params["degraded" + Suffix] = R.Degraded ? "1" : "0";
    Resp.Params["quarantined" + Suffix] = R.Quarantined ? "1" : "0";
    if (R.Degraded)
      Resp.Params["degrade-reason" + Suffix] = R.DegradeReason;
    if (R.Quarantined)
      Resp.Params["quarantine-reason" + Suffix] = R.QuarantineReason;
  }
  Resp.Params["failed"] = std::to_string(Failed);
  return Resp;
}

/// One stream-deltas record: u32 LE function index | u32 LE condition
/// index | f64 LE delta.
static constexpr size_t StreamRecordSize = 16;

static uint32_t readU32LE(const uint8_t *B) {
  return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
         (static_cast<uint32_t>(B[2]) << 16) |
         (static_cast<uint32_t>(B[3]) << 24);
}

static double readF64LE(const uint8_t *B) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[I];
  return std::bit_cast<double>(V);
}

WireMessage ServeCore::handleStreamDeltas(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  CounterDeltaStream *Stream = streamFor(*Entry);

  // describe=1: serve the cell-address table clients encode records
  // against (function index in stream order, condition count per row).
  if (Request.param("describe") == "1") {
    WireMessage Resp = okResponse();
    Resp.Params["functions"] = std::to_string(Stream->numFunctions());
    for (unsigned I = 0; I != Stream->numFunctions(); ++I) {
      const std::string Suffix = "." + std::to_string(I);
      Resp.Params["function" + Suffix] = Stream->functionAt(I)->name();
      Resp.Params["conditions" + Suffix] =
          std::to_string(Stream->numConditions(I));
    }
    Resp.Params["epoch"] = std::to_string(Stream->currentEpoch());
    return Resp;
  }

  if (Request.Body.size() % StreamRecordSize != 0)
    return errorResponse(
        "bad-request",
        "stream-deltas body is " + std::to_string(Request.Body.size()) +
            " bytes, not a multiple of the " +
            std::to_string(StreamRecordSize) +
            "-byte record (u32 function | u32 condition | f64 delta)");

  uint64_t Appended = 0, Dropped = 0;
  if (!Request.Body.empty()) {
    CounterDeltaStream::Writer W = Stream->acquireWriter();
    if (!W)
      return errorResponse("overloaded",
                           "all stream writer slots are in use; retry");
    const uint8_t *B = reinterpret_cast<const uint8_t *>(Request.Body.data());
    for (size_t Off = 0; Off < Request.Body.size();
         Off += StreamRecordSize) {
      uint32_t FuncIdx = readU32LE(B + Off);
      uint32_t CondIdx = readU32LE(B + Off + 4);
      double Delta = readF64LE(B + Off + 8);
      if (W.add(FuncIdx, CondIdx, Delta))
        ++Appended;
      else
        ++Dropped;
    }
  }
  bump("serve.stream-deltas");

  WireMessage Resp = okResponse();
  Resp.Params["appended"] = std::to_string(Appended);
  Resp.Params["dropped"] = std::to_string(Dropped);
  if (Request.param("flush") == "1") {
    // Seal the epoch and fold it into the session as one atomic batch;
    // the next estimate on this session re-runs only the dirty closure.
    // StructureMu shared is taken OUTSIDE flush() — the fold observer
    // cannot take it (checkpoint calls flush holding it unique).
    CounterDeltaStream::FlushReport FR;
    {
      std::shared_lock<std::shared_mutex> SL(StructureMu);
      FR = Stream->flush();
    }
    Resp.Params["epoch"] = std::to_string(FR.Epoch);
    Resp.Params["flushed-functions"] = std::to_string(FR.Functions);
    Resp.Params["flushed-cells"] = std::to_string(FR.Cells);
  } else {
    Resp.Params["epoch"] = std::to_string(Stream->currentEpoch());
  }
  return Resp;
}

WireMessage ServeCore::handleIngestProfile(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  if (Request.Body.empty())
    return errorResponse("bad-request",
                         "ingest-profile needs a PTPF image in the body");
  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  std::vector<uint8_t> Bytes(Request.Body.begin(), Request.Body.end());
  DiagnosticEngine LoadDiags;
  std::optional<ProfileFile> PF = ProfileFile::deserialize(Bytes, &LoadDiags);
  if (!PF)
    return errorResponse("bad-profile",
                         "profile image failed to parse: " + LoadDiags.str());

  ProfileIngestReport Report;
  {
    // {ingest, journal} is one atomic step against checkpoint capture.
    // The journal stores the raw PTPF image: replay re-ingests the exact
    // bytes, so recovery reproduces the same accept/quarantine decisions.
    std::shared_lock<std::shared_mutex> SL(StructureMu);
    std::lock_guard<std::mutex> DL(Entry->DurableMu);
    Report = Entry->Session->ingestProfile(*PF, Armed ? &Token : nullptr);
    if (Report.Ok) {
      durable::DurableRecord R;
      R.Type = durable::RecordType::ProfileIngest;
      R.Session = Entry->Name;
      R.Profile = Bytes;
      journalAppend(R);
    }
  }
  bump("serve.ingests");
  if (!Report.Ok)
    return errorResponse(Token.expired() ? "timeout" : "bad-profile",
                         Report.Error);
  Resp = okResponse();
  Resp.Params["accepted"] = std::to_string(Report.Accepted);
  Resp.Params["quarantined"] = std::to_string(Report.Quarantined.size());
  if (!Report.Findings.empty())
    Resp.Params["findings"] = std::to_string(Report.Findings.size());
  return Resp;
}

WireMessage ServeCore::handleCaptureProfile(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  std::vector<uint8_t> Bytes = Entry->Session->captureProfile().serialize();
  bump("serve.captures");
  WireMessage Resp = okResponse();
  Resp.Body.assign(Bytes.begin(), Bytes.end());
  return Resp;
}

WireMessage ServeCore::handleStats() {
  if (!Opts.Obs)
    return errorResponse("bad-request",
                         "this daemon runs without observability "
                         "(restart ptran-serve with --stats)");
  WireMessage Resp = okResponse();
  Resp.Body = Opts.Obs->statsTable();
  return Resp;
}

//===----------------------------------------------------------------------===//
// Durable state: journaling, checkpoint, restore, background flusher
//===----------------------------------------------------------------------===//

uint64_t ServeCore::journalAppend(durable::DurableRecord &R) {
  if (!Opts.Store)
    return 0;
  // A standby's journal is written ONLY through applyReplicatedBatch (the
  // primary's exact frames, primary's LSNs). Anything that would append
  // here on a standby — replay-triggered evictions, a stray fold — must
  // not: one local record would shift every subsequent LSN off the
  // primary's numbering.
  if (isReadOnly())
    return 0;
  std::string Err;
  uint64_t Lsn = Opts.Store->journal().append(R, Err);
  if (!Lsn) {
    // Degrade durability, keep serving: the record is lost to recovery
    // but the live session stays correct, and the reference a recovery
    // is compared against is rebuilt from the same journal.
    bump("durable.append_failures");
    std::fprintf(stderr,
                 "ptran-serve: journal append failed (durability degraded): "
                 "%s\n",
                 Err.c_str());
    return 0;
  }
  if (Opts.Repl) {
    // Wake shippers, then (ack=always) hold this request until a standby
    // reports the record fsynced. The hook takes no ServeCore locks and
    // its wait is bounded, so the locks held here (StructureMu shared,
    // DurableMu) stall at worst briefly when every standby is down.
    Opts.Repl->onAppend(Lsn);
    if (!Opts.Repl->waitDurable(Lsn))
      bump("repl.ack_timeouts");
  }
  return Lsn;
}

/// Brackets every stream epoch fold of one session: under the session's
/// DurableMu, apply the batch and journal the EpochFold (plus a one-time
/// SaturationMark per newly clamped function) as one atomic step. Takes
/// NO StructureMu — checkpoint() calls flush() while holding it unique;
/// every other flush call site takes it shared around flush() instead.
class ServeCore::DurableFoldObserver : public EpochFoldObserver {
public:
  DurableFoldObserver(ServeCore &Core, SessionEntry &Entry)
      : Core(Core), Entry(Entry) {}

  void onEpochFold(
      const std::vector<std::pair<const Function *, FrequencyTotals>> &Batch,
      const std::vector<const Function *> &Clamped,
      const std::function<void()> &Apply) override {
    std::lock_guard<std::mutex> L(Entry.DurableMu);
    Apply();
    durable::DurableRecord R;
    R.Type = durable::RecordType::EpochFold;
    R.Session = Entry.Name;
    for (const auto &[F, Totals] : Batch) {
      durable::FoldEntry FE;
      FE.Function = F->name();
      for (const auto &[Cond, Total] : Totals.Cond)
        FE.Conds.push_back(
            {Cond.Node, static_cast<uint8_t>(Cond.Label), Total});
      R.Folds.push_back(std::move(FE));
    }
    for (const Function *F : Clamped)
      R.Clamped.push_back(F->name());
    Core.journalAppend(R);
    // A clamped function's saturation diagnostic must survive restarts;
    // mark it once (the EpochFold's Clamped list already re-arms it on
    // replay, the standalone record covers journals whose fold rotated
    // into a snapshot that predates the saturation API).
    for (const Function *F : Clamped) {
      if (!Entry.JournaledSaturation.insert(F->name()).second)
        continue;
      durable::DurableRecord S;
      S.Type = durable::RecordType::SaturationMark;
      S.Session = Entry.Name;
      S.FunctionName = F->name();
      Core.journalAppend(S);
    }
  }

private:
  ServeCore &Core;
  SessionEntry &Entry;
};

CounterDeltaStream *ServeCore::streamFor(SessionEntry &Entry) {
  // StreamMu covers only the lazy construction race, never the append or
  // flush paths.
  std::lock_guard<std::mutex> L(Entry.StreamMu);
  if (!Entry.Stream) {
    CounterDeltaStream::Options SO;
    SO.Obs = Opts.Obs;
    Entry.Stream = CounterDeltaStream::create(*Entry.Session, SO);
    if (Opts.Store) {
      // Installed before the stream sees any traffic (the observer
      // pointer is read unsynchronized by flush()).
      Entry.FoldObs = std::make_unique<DurableFoldObserver>(*this, Entry);
      Entry.Stream->setFoldObserver(Entry.FoldObs.get());
    }
  }
  return Entry.Stream.get();
}

bool ServeCore::checkpoint(std::string &Error) {
  if (!Opts.Store)
    return true;
  // UNIQUE structure lock: every durable mutation holds StructureMu
  // shared around its {mutate, journal} pair, so between here and the
  // rotation the sessions and the journal cannot diverge.
  std::unique_lock<std::shared_mutex> SL(StructureMu);

  std::vector<std::shared_ptr<SessionEntry>> Entries;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &[Name, Entry] : Sessions)
      Entries.push_back(Entry);
  }

  // 1. Seal outstanding stream epochs: their folds become journal
  // records below the watermark read next.
  for (const auto &Entry : Entries) {
    CounterDeltaStream *Stream = nullptr;
    {
      std::lock_guard<std::mutex> L(Entry->StreamMu);
      Stream = Entry->Stream.get();
    }
    if (Stream)
      Stream->flush();
  }

  // 2+3. Watermark, then snapshot every resident session at it.
  uint64_t W = Opts.Store->journal().lastLsn();
  std::set<std::string> Resident;
  for (const auto &Entry : Entries) {
    durable::DurableSessionState S;
    S.Name = Entry->Name;
    S.Source = Entry->Source;
    S.Mode = Entry->Mode;
    S.LoopVariance = Entry->LoopVariance;
    S.OnBadProfile = Entry->OnBadProfile;
    Entry->Session->captureDurableState(S);
    if (!Opts.Store->writeSnapshot(S, W, Error))
      return false; // Journal NOT rotated: nothing is lost, only long.
    Resident.insert(Entry->Name);
  }

  // 4. Evicted sessions must not resurrect from stale snapshots once the
  // journal (holding their SessionEvict record) rotates; a failed unlink
  // therefore aborts before rotation.
  if (!Opts.Store->pruneSnapshotsExcept(Resident, Error))
    return false;

  // 5. Every journal record is now covered by a watermark-W snapshot.
  // But a live subscriber still reading the tail would be forced into a
  // full re-bootstrap if we rotate it away — defer rotation until it
  // catches up, unless the journal has grown past the point where an
  // unbounded file is the bigger risk.
  if (Opts.Repl) {
    constexpr uint64_t RotateForceBytes = 256ull << 20;
    if (Opts.Repl->minSubscriberLsn() <= W &&
        Opts.Store->journal().sizeBytes() < RotateForceBytes) {
      bump("durable.checkpoints");
      bump("repl.rotations_deferred");
      return true;
    }
  }
  if (!Opts.Store->rotateJournal(Error))
    return false;
  bump("durable.checkpoints");
  return true;
}

void ServeCore::applySnapshotState(SessionEntry &Entry,
                                   const durable::DurableSessionState &State,
                                   std::vector<std::string> &Diagnostics) {
  // Order matters: quarantines first (an ingest skips quarantined
  // functions' sections, matching the original session's decisions), then
  // the profile image (run counters + loop moments), then the external
  // totals, then the saturation diagnostics.
  for (const auto &[Fn, Reason] : State.Quarantined)
    if (!Entry.Session->markQuarantined(Fn, Reason))
      Diagnostics.push_back("snapshot '" + State.Name +
                            "': quarantined function '" + Fn +
                            "' not found in the rebuilt program");
  if (!State.ProfileImage.empty()) {
    DiagnosticEngine LoadDiags;
    std::optional<ProfileFile> PF =
        ProfileFile::deserialize(State.ProfileImage, &LoadDiags);
    if (!PF) {
      Diagnostics.push_back("snapshot '" + State.Name +
                            "': profile image failed to parse: " +
                            LoadDiags.str());
    } else {
      ProfileIngestReport Rep = Entry.Session->ingestProfile(*PF, nullptr);
      if (!Rep.Ok)
        Diagnostics.push_back("snapshot '" + State.Name +
                              "': profile image failed to ingest: " +
                              Rep.Error);
    }
  }
  std::vector<std::pair<const Function *, FrequencyTotals>> Batch;
  for (const durable::FoldEntry &FE : State.External) {
    const Function *F = Entry.Prog->findFunction(FE.Function);
    if (!F) {
      Diagnostics.push_back("snapshot '" + State.Name + "': function '" +
                            FE.Function + "' not found; its totals dropped");
      continue;
    }
    FrequencyTotals T;
    T.Ok = true;
    for (const durable::CondTotal &C : FE.Conds)
      T.Cond[ControlCondition{C.Node, static_cast<CfgLabel>(C.Label)}] =
          C.Total;
    Batch.emplace_back(F, std::move(T));
  }
  if (!Batch.empty())
    Entry.Session->accumulateTotalsBatch(Batch);
  for (const std::string &Fn : State.Saturated) {
    const Function *F = Entry.Prog->findFunction(Fn);
    if (!F) {
      Diagnostics.push_back("snapshot '" + State.Name +
                            "': saturated function '" + Fn + "' not found");
      continue;
    }
    Entry.Session->noteExternalSaturation(*F);
    Entry.JournaledSaturation.insert(Fn);
  }
}

void ServeCore::restore(const durable::StateStore::Recovery &Recovered,
                        RestoreReport &Out) {
  // Boot-time only (before any connection thread exists), so no
  // StructureMu is needed; registerEntry with JournalCreate=false never
  // re-journals a replayed mutation — but evictions it triggers DO
  // journal their SessionEvict (a new state change, not a replayed one).
  std::map<std::string, uint64_t> Watermark;
  for (const durable::StateStore::RecoveredSession &RS :
       Recovered.Snapshots) {
    std::string Error;
    std::shared_ptr<SessionEntry> Entry =
        buildEntry(RS.State.Name, RS.State.Source, RS.State.Mode,
                   RS.State.LoopVariance, RS.State.OnBadProfile, Error);
    if (!Entry) {
      Out.Diagnostics.push_back("snapshot session '" + RS.State.Name +
                                "' no longer builds: " + Error);
      continue;
    }
    applySnapshotState(*Entry, RS.State, Out.Diagnostics);
    registerEntry(Entry, /*JournalCreate=*/false);
    Watermark[RS.State.Name] = RS.Watermark;
  }

  for (const durable::DurableRecord &R : Recovered.Records) {
    // Records at or below the session's snapshot watermark are already
    // folded into that snapshot (the crash-during-checkpoint double-apply
    // guard; LSNs are monotonic across rotations, so this stays sound no
    // matter where the crash landed).
    auto WIt = Watermark.find(R.Session);
    if (WIt != Watermark.end() && R.Lsn <= WIt->second) {
      ++Out.RecordsSkipped;
      continue;
    }
    ++Out.RecordsReplayed;
    applyRecord(R, Out.Diagnostics);
  }
  Out.SessionsRestored = sessionCount();
}

void ServeCore::applyRecord(const durable::DurableRecord &R,
                            std::vector<std::string> &Diagnostics) {
  const std::string Where =
      "journal LSN " + std::to_string(R.Lsn) + " ('" + R.Session + "')";
  switch (R.Type) {
  case durable::RecordType::SessionCreate: {
    std::string Error;
    std::shared_ptr<SessionEntry> Entry = buildEntry(
        R.Session, R.Source, R.Mode, R.LoopVariance, R.OnBadProfile, Error);
    if (!Entry) {
      Diagnostics.push_back(Where + ": session no longer builds: " + Error);
      break;
    }
    registerEntry(Entry, /*JournalCreate=*/false);
    break;
  }
  case durable::RecordType::SessionEvict: {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sessions.find(R.Session);
    if (It != Sessions.end()) {
      TotalBytes -= It->second->MemBytes;
      Sessions.erase(It);
    }
    break;
  }
  case durable::RecordType::RunExec: {
    std::shared_ptr<SessionEntry> Entry = findSession(R.Session);
    if (!Entry) {
      Diagnostics.push_back(Where + ": no such session; runs dropped");
      break;
    }
    for (uint32_t I = 0; I < R.RunCount; ++I) {
      RunResult RR = Entry->Session->profiledRun();
      if (!RR.Ok) {
        Diagnostics.push_back(Where + ": replayed run failed: " + RR.Error);
        break;
      }
    }
    break;
  }
  case durable::RecordType::EpochFold: {
    std::shared_ptr<SessionEntry> Entry = findSession(R.Session);
    if (!Entry) {
      Diagnostics.push_back(Where + ": no such session; fold dropped");
      break;
    }
    std::vector<std::pair<const Function *, FrequencyTotals>> Batch;
    for (const durable::FoldEntry &FE : R.Folds) {
      const Function *F = Entry->Prog->findFunction(FE.Function);
      if (!F) {
        Diagnostics.push_back(Where + ": function '" + FE.Function +
                              "' not found; its totals dropped");
        continue;
      }
      FrequencyTotals T;
      T.Ok = true;
      for (const durable::CondTotal &C : FE.Conds)
        T.Cond[ControlCondition{C.Node, static_cast<CfgLabel>(C.Label)}] =
            C.Total;
      Batch.emplace_back(F, std::move(T));
    }
    if (!Batch.empty())
      Entry->Session->accumulateTotalsBatch(Batch);
    for (const std::string &Fn : R.Clamped) {
      const Function *F = Entry->Prog->findFunction(Fn);
      if (!F)
        continue;
      Entry->Session->noteExternalSaturation(*F);
      Entry->JournaledSaturation.insert(Fn);
    }
    break;
  }
  case durable::RecordType::ProfileIngest: {
    std::shared_ptr<SessionEntry> Entry = findSession(R.Session);
    if (!Entry) {
      Diagnostics.push_back(Where + ": no such session; profile dropped");
      break;
    }
    DiagnosticEngine LoadDiags;
    std::optional<ProfileFile> PF =
        ProfileFile::deserialize(R.Profile, &LoadDiags);
    if (!PF) {
      Diagnostics.push_back(Where + ": profile failed to parse: " +
                            LoadDiags.str());
      break;
    }
    ProfileIngestReport Rep = Entry->Session->ingestProfile(*PF, nullptr);
    if (!Rep.Ok)
      Diagnostics.push_back(Where + ": profile failed to ingest: " +
                            Rep.Error);
    break;
  }
  case durable::RecordType::SaturationMark: {
    std::shared_ptr<SessionEntry> Entry = findSession(R.Session);
    if (!Entry) {
      Diagnostics.push_back(Where + ": no such session; mark dropped");
      break;
    }
    const Function *F = Entry->Prog->findFunction(R.FunctionName);
    if (!F) {
      Diagnostics.push_back(Where + ": function '" + R.FunctionName +
                            "' not found; mark dropped");
      break;
    }
    Entry->Session->noteExternalSaturation(*F);
    Entry->JournaledSaturation.insert(R.FunctionName);
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Replication: primary-side capture, standby-side apply
//===----------------------------------------------------------------------===//

bool ServeCore::captureBootstrap(BootstrapCapture &Out, std::string &Error) {
  if (!Opts.Store) {
    Error = "this daemon runs without durable state; nothing to replicate";
    return false;
  }
  // checkpoint()'s barrier without its disk IO: under StructureMu unique
  // no mutation can land between the stream flushes, the watermark read,
  // and the captures, so every image covers exactly LSNs <= Watermark.
  std::unique_lock<std::shared_mutex> SL(StructureMu);

  std::vector<std::shared_ptr<SessionEntry>> Entries;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &[Name, Entry] : Sessions)
      Entries.push_back(Entry);
  }
  for (const auto &Entry : Entries) {
    CounterDeltaStream *Stream = nullptr;
    {
      std::lock_guard<std::mutex> L(Entry->StreamMu);
      Stream = Entry->Stream.get();
    }
    if (Stream)
      Stream->flush();
  }

  Out.Watermark = Opts.Store->journal().lastLsn();
  Out.Snapshots.clear();
  for (const auto &Entry : Entries) {
    durable::DurableSessionState S;
    S.Name = Entry->Name;
    S.Source = Entry->Source;
    S.Mode = Entry->Mode;
    S.LoopVariance = Entry->LoopVariance;
    S.OnBadProfile = Entry->OnBadProfile;
    Entry->Session->captureDurableState(S);
    Out.Snapshots.push_back(
        {Entry->Name, durable::encodeSnapshot(S, Out.Watermark)});
  }
  bump("repl.bootstraps_served");
  return true;
}

bool ServeCore::adoptSnapshotImage(const std::vector<uint8_t> &Image,
                                   std::vector<std::string> &Diagnostics,
                                   std::string &Error) {
  durable::DurableSessionState State;
  uint64_t Watermark = 0;
  if (!durable::decodeSnapshot(Image.data(), Image.size(), State, Watermark,
                               Error))
    return false;
  std::shared_ptr<SessionEntry> Entry =
      buildEntry(State.Name, State.Source, State.Mode, State.LoopVariance,
                 State.OnBadProfile, Error);
  if (!Entry)
    return false;
  applySnapshotState(*Entry, State, Diagnostics);
  // Persist the image locally BEFORE adopting it: a standby that crashes
  // mid-bootstrap recovers from its own snapshots like any daemon, and
  // the watermark carried inside the image keeps the double-apply guard
  // sound against the journal tail resetTo() installs next.
  if (!Opts.Store->writeSnapshot(State, Watermark, Error))
    return false;
  std::shared_lock<std::shared_mutex> SL(StructureMu);
  registerEntry(Entry, /*JournalCreate=*/false);
  return true;
}

void ServeCore::clearAllSessions() {
  std::unique_lock<std::shared_mutex> SL(StructureMu);
  std::lock_guard<std::mutex> L(Mu);
  Sessions.clear();
  TotalBytes = 0;
}

bool ServeCore::applyReplicatedBatch(const uint8_t *Frames, size_t Len,
                                     uint64_t FirstLsn, uint32_t Count,
                                     bool Sync, uint64_t &AppliedLsn,
                                     std::vector<std::string> &Diagnostics,
                                     std::string &Error) {
  if (!Opts.Store) {
    Error = "this daemon runs without durable state; cannot apply frames";
    return false;
  }
  // ONE StructureMu hold across {journal write-ahead, fsync, apply}: a
  // concurrent standby checkpoint (StructureMu unique) can run before or
  // after this batch but never between its journal write and its apply —
  // in between, the snapshot watermark would cover LSNs the sessions have
  // not absorbed yet, and rotation would drop them forever.
  std::shared_lock<std::shared_mutex> SL(StructureMu);
  std::vector<durable::DurableRecord> Records;
  if (!Opts.Store->journal().appendRaw(Frames, Len, FirstLsn, Count, &Records,
                                       Error))
    return false;
  if (FaultInjection::maybeCrashAt("repl.journal"))
    FaultInjection::dieAtCrashPoint();
  if (Sync) {
    std::string SyncErr;
    if (!Opts.Store->journal().sync(SyncErr))
      // The frames are journaled and WILL be applied (skipping them here
      // would desync the live sessions from the journal); the failed
      // fsync only weakens the durability this ack level promised.
      Diagnostics.push_back("journal fsync failed (ack overstates "
                            "durability): " +
                            SyncErr);
  }
  for (const durable::DurableRecord &R : Records)
    applyRecord(R, Diagnostics);
  if (FaultInjection::maybeCrashAt("repl.apply"))
    FaultInjection::dieAtCrashPoint();
  AppliedLsn = FirstLsn + Count - 1;
  bump("repl.batches_applied");
  bump("repl.records_applied", Count);
  return true;
}

void ServeCore::startFlusher() {
  if (!Opts.Store)
    return;
  {
    std::lock_guard<std::mutex> L(FlusherMu);
    FlusherStop = false;
  }
  Flusher = std::thread([this] { flusherLoop(); });
}

void ServeCore::stopFlusher() {
  {
    std::lock_guard<std::mutex> L(FlusherMu);
    FlusherStop = true;
  }
  FlusherCv.notify_all();
  if (Flusher.joinable())
    Flusher.join();
}

void ServeCore::flusherLoop() {
  using SteadyClock = std::chrono::steady_clock;
  // Tick faster than the flush cadence so the cell-count threshold is
  // checked promptly between staleness deadlines; a staleness bound
  // tighter than the sync cadence tightens the tick with it.
  auto Tick =
      std::chrono::milliseconds(std::max(10u, Opts.FlushIntervalMs / 4));
  if (Opts.FlushMaxStalenessMs != 0)
    Tick = std::min(Tick, std::chrono::milliseconds(
                              std::max(5u, Opts.FlushMaxStalenessMs / 2)));
  auto LastSync = SteadyClock::now();
  auto LastCheckpoint = SteadyClock::now();
  // When each session's stream FIRST showed pending appends (erased on
  // flush): the epoch's age for the --flush-max-staleness-ms bound.
  std::map<const SessionEntry *, SteadyClock::time_point> PendingSince;
  for (;;) {
    {
      std::unique_lock<std::mutex> L(FlusherMu);
      if (FlusherCv.wait_for(L, Tick, [this] { return FlusherStop; }))
        return;
    }
    auto Now = SteadyClock::now();
    bool SyncDue =
        Now - LastSync >= std::chrono::milliseconds(Opts.FlushIntervalMs);

    std::vector<std::shared_ptr<SessionEntry>> Entries;
    {
      std::lock_guard<std::mutex> L(Mu);
      for (const auto &[Name, Entry] : Sessions)
        Entries.push_back(Entry);
    }
    // Drop staleness stamps of evicted sessions so the map tracks only
    // live entries.
    for (auto It = PendingSince.begin(); It != PendingSince.end();) {
      bool Live = false;
      for (const auto &Entry : Entries)
        if (Entry.get() == It->first) {
          Live = true;
          break;
        }
      It = Live ? std::next(It) : PendingSince.erase(It);
    }
    for (const auto &Entry : Entries) {
      CounterDeltaStream *Stream = nullptr;
      {
        std::lock_guard<std::mutex> L(Entry->StreamMu);
        Stream = Entry->Stream.get();
      }
      if (!Stream || Stream->pendingAppends() == 0) {
        PendingSince.erase(Entry.get());
        continue;
      }
      bool Stale = false;
      if (Opts.FlushMaxStalenessMs != 0) {
        auto [It, Fresh] = PendingSince.try_emplace(Entry.get(), Now);
        Stale = !Fresh &&
                Now - It->second >=
                    std::chrono::milliseconds(Opts.FlushMaxStalenessMs);
      }
      // Seal stale (or threshold-crossing) epochs so their deltas reach
      // the journal; bounds loss under FsyncPolicy::Batch to one flush
      // interval (or staleness bound) of appends.
      if (SyncDue || Stale ||
          Stream->pendingAppends() >= Opts.FlushCellThreshold) {
        {
          std::shared_lock<std::shared_mutex> SL(StructureMu);
          Stream->flush();
        }
        PendingSince.erase(Entry.get());
        if (Stale)
          bump("stream.staleness_flushes");
      }
    }
    if (SyncDue) {
      // FsyncPolicy::Batch's flush point.
      std::string Err;
      if (!Opts.Store->journal().sync(Err))
        std::fprintf(stderr, "ptran-serve: journal sync failed: %s\n",
                     Err.c_str());
      LastSync = Now;
    }
    if (Opts.SnapshotIntervalMs != 0 &&
        Now - LastCheckpoint >=
            std::chrono::milliseconds(Opts.SnapshotIntervalMs)) {
      std::string Err;
      if (!checkpoint(Err))
        std::fprintf(stderr, "ptran-serve: periodic checkpoint failed: %s\n",
                     Err.c_str());
      LastCheckpoint = Now;
    }
  }
}

WireMessage ServeCore::handleCheckpoint() {
  if (!Opts.Store)
    return errorResponse("bad-request",
                         "this daemon runs without durable state "
                         "(restart ptran-serve with --state-dir)");
  std::string Error;
  if (!checkpoint(Error))
    return errorResponse("durable-failure", Error);
  bump("serve.checkpoints");
  WireMessage Resp = okResponse();
  Resp.Params["journal-next-lsn"] =
      std::to_string(Opts.Store->journal().nextLsn());
  Resp.Params["journal-bytes"] =
      std::to_string(Opts.Store->journal().sizeBytes());
  return Resp;
}
