//===--- serve/Server.cpp - Concurrent estimation daemon core -------------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "parser/Parser.h"
#include "support/StringUtils.h"
#include "workloads/Workloads.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>

using namespace ptran;
using namespace ptran::serve;

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

/// Full-precision double rendering: responses round-trip exactly, so the
/// serve_test can memcmp concurrent answers against serial references.
static std::string preciseDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

static std::optional<ProfileMode> parseMode(const std::string &Text) {
  std::string M = toLower(Text);
  if (M == "naive")
    return ProfileMode::Naive;
  if (M == "opt1")
    return ProfileMode::Opt1;
  if (M == "opt12")
    return ProfileMode::Opt12;
  if (M == "smart")
    return ProfileMode::Smart;
  return std::nullopt;
}

static std::optional<LoopVarianceMode> parseLoopVariance(
    const std::string &Text) {
  std::string M = toLower(Text);
  if (M == "zero")
    return LoopVarianceMode::Zero;
  if (M == "profiled")
    return LoopVarianceMode::Profiled;
  if (M == "geometric")
    return LoopVarianceMode::Geometric;
  if (M == "uniform")
    return LoopVarianceMode::Uniform;
  return std::nullopt;
}

/// The registry's size heuristic for one loaded program: a fixed per-
/// session floor (analyses, plan, runtime) plus the source text plus a
/// per-statement charge covering CFG/interval/FCDG/summary state.
static uint64_t sessionMemoryBytes(const std::string &Source,
                                   const Program &P) {
  uint64_t Stmts = 0;
  for (const auto &F : P.functions())
    Stmts += F->numStmts();
  return 96 * 1024 + Source.size() + Stmts * 2048;
}

/// Arms a per-request token from `deadline-ms` / `step-budget` params.
/// Returns false (with an error response in \p Resp) on malformed values;
/// sets \p Armed when any bound was installed.
static bool armRequestToken(const WireMessage &Request, uint64_t DefaultSteps,
                            CancelToken &Token, bool &Armed,
                            WireMessage &Resp) {
  Armed = false;
  if (Request.hasParam("deadline-ms")) {
    std::optional<double> Ms = parseDouble(Request.param("deadline-ms"));
    if (!Ms || *Ms < 0) {
      Resp = errorResponse("bad-request", "deadline-ms wants a non-negative "
                                          "number, got '" +
                                              Request.param("deadline-ms") +
                                              "'");
      return false;
    }
    Token.setDeadlineIn(std::chrono::nanoseconds(
        static_cast<int64_t>(*Ms * 1e6)));
    Armed = true;
  }
  uint64_t Steps = DefaultSteps;
  if (Request.hasParam("step-budget")) {
    std::optional<unsigned> S = parseUnsigned(Request.param("step-budget"));
    if (!S) {
      Resp = errorResponse("bad-request", "step-budget wants an unsigned "
                                          "integer, got '" +
                                              Request.param("step-budget") +
                                              "'");
      return false;
    }
    Steps = *S;
  }
  if (Steps > 0) {
    Token.setStepBudget(Steps);
    Armed = true;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ServeCore
//===----------------------------------------------------------------------===//

void ServeCore::bump(const char *Counter, uint64_t Delta) {
  if (Opts.Obs)
    Opts.Obs->addCounter(Counter, Delta);
}

unsigned ServeCore::sessionCount() const {
  std::lock_guard<std::mutex> L(Mu);
  return static_cast<unsigned>(Sessions.size());
}

uint64_t ServeCore::residentBytes() const {
  std::lock_guard<std::mutex> L(Mu);
  return TotalBytes;
}

std::shared_ptr<ServeCore::SessionEntry>
ServeCore::findSession(const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sessions.find(Name);
  if (It == Sessions.end())
    return nullptr;
  It->second->LastUsed = ++Clock;
  return It->second;
}

void ServeCore::evictLocked(const SessionEntry *Keep) {
  while (Sessions.size() > 1 &&
         (TotalBytes > Opts.MemoryBudgetBytes ||
          Sessions.size() > Opts.MaxSessions)) {
    auto Victim = Sessions.end();
    for (auto It = Sessions.begin(); It != Sessions.end(); ++It) {
      if (It->second.get() == Keep)
        continue;
      if (Victim == Sessions.end() ||
          It->second->LastUsed < Victim->second->LastUsed)
        Victim = It;
    }
    if (Victim == Sessions.end())
      break;
    // In-flight requests on the victim keep their shared_ptr; the
    // registry just forgets the name, and the entry dies with its last
    // reference.
    TotalBytes -= Victim->second->MemBytes;
    Sessions.erase(Victim);
    bump("serve.evictions");
  }
}

WireMessage ServeCore::handle(const WireMessage &Request) {
  bump("serve.requests");
  WireMessage Resp;
  if (Request.Verb == "ping" || Request.Verb == "shutdown")
    Resp = okResponse();
  else if (Request.Verb == "load-program")
    Resp = handleLoadProgram(Request);
  else if (Request.Verb == "run")
    Resp = handleRun(Request);
  else if (Request.Verb == "estimate")
    Resp = handleEstimate(Request);
  else if (Request.Verb == "estimate-batch")
    Resp = handleEstimateBatch(Request);
  else if (Request.Verb == "stream-deltas")
    Resp = handleStreamDeltas(Request);
  else if (Request.Verb == "ingest-profile")
    Resp = handleIngestProfile(Request);
  else if (Request.Verb == "capture-profile")
    Resp = handleCaptureProfile(Request);
  else if (Request.Verb == "stats")
    Resp = handleStats();
  else
    Resp = errorResponse("bad-request",
                         "unknown verb '" + Request.Verb + "'");
  if (Resp.Verb == "error")
    bump("serve.errors");
  return Resp;
}

WireMessage ServeCore::handleLoadProgram(const WireMessage &Request) {
  std::string Name = Request.param("session");
  if (Name.empty())
    return errorResponse("bad-request", "load-program needs session=NAME");

  auto Entry = std::make_shared<SessionEntry>();
  Entry->Name = Name;

  if (Request.hasParam("workload")) {
    std::string W = toLower(Request.param("workload"));
    const Workload *WL = nullptr;
    if (W == "loops")
      WL = &livermoreLoops();
    else if (W == "simple")
      WL = &simpleKernel();
    else
      return errorResponse("bad-request",
                           "unknown workload '" + W + "' (loops|simple)");
    Entry->Source = WL->Source;
  } else if (!Request.Body.empty()) {
    Entry->Source = Request.Body;
  } else {
    return errorResponse("bad-request", "load-program needs program source "
                                        "in the body or workload=loops|simple");
  }

  Entry->Prog = parseProgram(Entry->Source, Entry->Diags);
  if (!Entry->Prog)
    return errorResponse("bad-program",
                         "program failed to parse: " + Entry->Diags.str());

  EstimatorOptions EOpts(Entry->Diags);
  EOpts.jobs(Opts.Jobs).onDeadline(Opts.OnDeadline);
  if (Opts.Obs)
    EOpts.observability(*Opts.Obs);
  if (Request.hasParam("mode")) {
    std::optional<ProfileMode> M = parseMode(Request.param("mode"));
    if (!M)
      return errorResponse("bad-request", "unknown mode '" +
                                              Request.param("mode") +
                                              "' (naive|opt1|opt12|smart)");
    EOpts.mode(*M);
  }
  if (Request.hasParam("loop-variance")) {
    std::optional<LoopVarianceMode> LV =
        parseLoopVariance(Request.param("loop-variance"));
    if (!LV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") +
                               "' (zero|profiled|geometric|uniform)");
    EOpts.loopVariance(*LV);
  }
  if (Request.hasParam("on-bad-profile")) {
    std::string P = toLower(Request.param("on-bad-profile"));
    if (P == "fail")
      EOpts.onBadProfile(BadProfilePolicy::Fail);
    else if (P == "quarantine")
      EOpts.onBadProfile(BadProfilePolicy::Quarantine);
    else
      return errorResponse("bad-request", "unknown on-bad-profile '" + P +
                                              "' (fail|quarantine)");
  }

  Entry->Session = EstimationSession::create(*Entry->Prog, CostModel(), EOpts);
  if (!Entry->Session)
    return errorResponse("bad-program",
                         "program failed analysis: " + Entry->Diags.str());
  Entry->MemBytes = sessionMemoryBytes(Entry->Source, *Entry->Prog);

  {
    std::lock_guard<std::mutex> L(Mu);
    auto It = Sessions.find(Name);
    if (It != Sessions.end()) {
      // Reload replaces: the old entry's in-flight requests finish on
      // their own reference.
      TotalBytes -= It->second->MemBytes;
      Sessions.erase(It);
    }
    Entry->LastUsed = ++Clock;
    TotalBytes += Entry->MemBytes;
    Sessions[Name] = Entry;
    evictLocked(Entry.get());
  }
  bump("serve.loads");

  WireMessage Resp = okResponse();
  Resp.Params["session"] = Name;
  Resp.Params["functions"] =
      std::to_string(Entry->Prog->functions().size());
  Resp.Params["memory-bytes"] = std::to_string(Entry->MemBytes);
  return Resp;
}

WireMessage ServeCore::handleRun(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  unsigned Runs = 1;
  if (Request.hasParam("runs")) {
    std::optional<unsigned> N = parseUnsigned(Request.param("runs"));
    if (!N || *N == 0)
      return errorResponse("bad-request", "runs wants a positive integer, "
                                          "got '" +
                                              Request.param("runs") + "'");
    Runs = *N;
  }
  RunResult Last;
  for (unsigned I = 0; I < Runs; ++I) {
    Last = Entry->Session->profiledRun();
    if (!Last.Ok)
      return errorResponse("run-failed", Last.Error);
  }
  bump("serve.runs", Runs);
  WireMessage Resp = okResponse();
  Resp.Params["runs"] = std::to_string(Entry->Session->runsExecuted());
  Resp.Params["cycles"] = preciseDouble(Last.Cycles);
  Resp.Params["statements"] = std::to_string(Last.StatementsExecuted);
  return Resp;
}

WireMessage ServeCore::handleEstimate(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  std::vector<EstimateRequest> Reqs(1);
  Reqs[0].Function = Request.param("function");
  if (Request.hasParam("loop-variance")) {
    std::optional<LoopVarianceMode> LV =
        parseLoopVariance(Request.param("loop-variance"));
    if (!LV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") + "'");
    Reqs[0].LoopVariance = *LV;
  }

  std::vector<EstimateResult> Results =
      Entry->Session->estimate(Reqs, Armed ? &Token : nullptr);
  bump("serve.estimates");
  const EstimateResult &R = Results[0];
  if (!R.Ok)
    return errorResponse(Token.expired() ? "timeout" : "estimate-failed",
                         R.Error);

  Resp = okResponse();
  Resp.Params["function"] = R.F ? R.F->name() : Reqs[0].Function;
  Resp.Params["time"] = preciseDouble(R.Time);
  Resp.Params["var"] = preciseDouble(R.Var);
  Resp.Params["stddev"] = preciseDouble(R.StdDev);
  Resp.Params["degraded"] = R.Degraded ? "1" : "0";
  Resp.Params["quarantined"] = R.Quarantined ? "1" : "0";
  if (R.Degraded)
    Resp.Params["degrade-reason"] = R.DegradeReason;
  if (R.Quarantined)
    Resp.Params["quarantine-reason"] = R.QuarantineReason;
  return Resp;
}

WireMessage ServeCore::handleEstimateBatch(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  std::optional<unsigned> Count = parseUnsigned(Request.param("count"));
  if (!Count || *Count == 0)
    return errorResponse("bad-request",
                         "estimate-batch needs count=N (N >= 1), got '" +
                             Request.param("count") + "'");
  // Backstop against a malformed client asking for millions of slots; real
  // batches are tens of functions.
  constexpr unsigned MaxBatch = 4096;
  if (*Count > MaxBatch)
    return errorResponse("bad-request",
                         "estimate-batch count " + std::to_string(*Count) +
                             " exceeds the cap of " +
                             std::to_string(MaxBatch));

  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  // A batch-wide `loop-variance` is the default; `loop-variance.I`
  // overrides it per query.
  std::optional<LoopVarianceMode> BatchLV;
  if (Request.hasParam("loop-variance")) {
    BatchLV = parseLoopVariance(Request.param("loop-variance"));
    if (!BatchLV)
      return errorResponse("bad-request",
                           "unknown loop-variance '" +
                               Request.param("loop-variance") + "'");
  }

  std::vector<EstimateRequest> Reqs(*Count);
  for (unsigned I = 0; I != *Count; ++I) {
    std::string Key = "function." + std::to_string(I);
    if (!Request.hasParam(Key))
      return errorResponse("bad-request",
                           "estimate-batch count=" + std::to_string(*Count) +
                               " but parameter '" + Key + "' is missing");
    Reqs[I].Function = Request.param(Key);
    Reqs[I].LoopVariance = BatchLV;
    std::string LVKey = "loop-variance." + std::to_string(I);
    if (Request.hasParam(LVKey)) {
      std::optional<LoopVarianceMode> LV =
          parseLoopVariance(Request.param(LVKey));
      if (!LV)
        return errorResponse("bad-request", "unknown loop-variance '" +
                                                Request.param(LVKey) +
                                                "' for " + LVKey);
      Reqs[I].LoopVariance = *LV;
    }
  }

  // Keys indexed at or past `count` would be silently dropped, and the
  // caller's queries and our answers would no longer line up one-to-one;
  // reject the disagreement instead of returning a misaligned response.
  for (const auto &[Key, Value] : Request.Params) {
    std::string_view K = Key;
    for (std::string_view Prefix : {"function.", "loop-variance."}) {
      if (K.size() <= Prefix.size() || K.substr(0, Prefix.size()) != Prefix)
        continue;
      std::optional<unsigned> Index =
          parseUnsigned(std::string(K.substr(Prefix.size())));
      if (!Index || *Index >= *Count)
        return errorResponse(
            "bad-request", "estimate-batch count=" + std::to_string(*Count) +
                               " but parameter '" + Key +
                               "' is outside indices 0.." +
                               std::to_string(*Count - 1) +
                               "; count disagrees with the keys sent");
    }
  }

  // One session call for the whole batch: the session answers every query
  // from one coherent analysis snapshot, and shared dirty functions are
  // recomputed once instead of once per query.
  std::vector<EstimateResult> Results =
      Entry->Session->estimate(Reqs, Armed ? &Token : nullptr);
  bump("serve.estimates", Results.size());
  bump("serve.estimate-batches");

  // Per-query failures are reported in-band (`ok.I` = 0 plus `error.I`)
  // so one unknown function does not discard its batch-mates' answers.
  Resp = okResponse();
  Resp.Params["count"] = std::to_string(Results.size());
  unsigned Failed = 0;
  for (unsigned I = 0; I != Results.size(); ++I) {
    const EstimateResult &R = Results[I];
    const std::string Suffix = "." + std::to_string(I);
    Resp.Params["ok" + Suffix] = R.Ok ? "1" : "0";
    if (!R.Ok) {
      ++Failed;
      Resp.Params["error" + Suffix] = R.Error;
      Resp.Params["error-code" + Suffix] =
          Token.expired() ? "timeout" : "estimate-failed";
      continue;
    }
    Resp.Params["function" + Suffix] = R.F ? R.F->name() : Reqs[I].Function;
    Resp.Params["time" + Suffix] = preciseDouble(R.Time);
    Resp.Params["var" + Suffix] = preciseDouble(R.Var);
    Resp.Params["stddev" + Suffix] = preciseDouble(R.StdDev);
    Resp.Params["degraded" + Suffix] = R.Degraded ? "1" : "0";
    Resp.Params["quarantined" + Suffix] = R.Quarantined ? "1" : "0";
    if (R.Degraded)
      Resp.Params["degrade-reason" + Suffix] = R.DegradeReason;
    if (R.Quarantined)
      Resp.Params["quarantine-reason" + Suffix] = R.QuarantineReason;
  }
  Resp.Params["failed"] = std::to_string(Failed);
  return Resp;
}

/// One stream-deltas record: u32 LE function index | u32 LE condition
/// index | f64 LE delta.
static constexpr size_t StreamRecordSize = 16;

static uint32_t readU32LE(const uint8_t *B) {
  return static_cast<uint32_t>(B[0]) | (static_cast<uint32_t>(B[1]) << 8) |
         (static_cast<uint32_t>(B[2]) << 16) |
         (static_cast<uint32_t>(B[3]) << 24);
}

static double readF64LE(const uint8_t *B) {
  uint64_t V = 0;
  for (int I = 7; I >= 0; --I)
    V = (V << 8) | B[I];
  return std::bit_cast<double>(V);
}

WireMessage ServeCore::handleStreamDeltas(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  // Lazily build the session's stream; StreamMu covers only this
  // construction race, never the append or flush paths.
  CounterDeltaStream *Stream;
  {
    std::lock_guard<std::mutex> L(Entry->StreamMu);
    if (!Entry->Stream) {
      CounterDeltaStream::Options SO;
      SO.Obs = Opts.Obs;
      Entry->Stream = CounterDeltaStream::create(*Entry->Session, SO);
    }
    Stream = Entry->Stream.get();
  }

  // describe=1: serve the cell-address table clients encode records
  // against (function index in stream order, condition count per row).
  if (Request.param("describe") == "1") {
    WireMessage Resp = okResponse();
    Resp.Params["functions"] = std::to_string(Stream->numFunctions());
    for (unsigned I = 0; I != Stream->numFunctions(); ++I) {
      const std::string Suffix = "." + std::to_string(I);
      Resp.Params["function" + Suffix] = Stream->functionAt(I)->name();
      Resp.Params["conditions" + Suffix] =
          std::to_string(Stream->numConditions(I));
    }
    Resp.Params["epoch"] = std::to_string(Stream->currentEpoch());
    return Resp;
  }

  if (Request.Body.size() % StreamRecordSize != 0)
    return errorResponse(
        "bad-request",
        "stream-deltas body is " + std::to_string(Request.Body.size()) +
            " bytes, not a multiple of the " +
            std::to_string(StreamRecordSize) +
            "-byte record (u32 function | u32 condition | f64 delta)");

  uint64_t Appended = 0, Dropped = 0;
  if (!Request.Body.empty()) {
    CounterDeltaStream::Writer W = Stream->acquireWriter();
    if (!W)
      return errorResponse("overloaded",
                           "all stream writer slots are in use; retry");
    const uint8_t *B = reinterpret_cast<const uint8_t *>(Request.Body.data());
    for (size_t Off = 0; Off < Request.Body.size();
         Off += StreamRecordSize) {
      uint32_t FuncIdx = readU32LE(B + Off);
      uint32_t CondIdx = readU32LE(B + Off + 4);
      double Delta = readF64LE(B + Off + 8);
      if (W.add(FuncIdx, CondIdx, Delta))
        ++Appended;
      else
        ++Dropped;
    }
  }
  bump("serve.stream-deltas");

  WireMessage Resp = okResponse();
  Resp.Params["appended"] = std::to_string(Appended);
  Resp.Params["dropped"] = std::to_string(Dropped);
  if (Request.param("flush") == "1") {
    // Seal the epoch and fold it into the session as one atomic batch;
    // the next estimate on this session re-runs only the dirty closure.
    CounterDeltaStream::FlushReport FR = Stream->flush();
    Resp.Params["epoch"] = std::to_string(FR.Epoch);
    Resp.Params["flushed-functions"] = std::to_string(FR.Functions);
    Resp.Params["flushed-cells"] = std::to_string(FR.Cells);
  } else {
    Resp.Params["epoch"] = std::to_string(Stream->currentEpoch());
  }
  return Resp;
}

WireMessage ServeCore::handleIngestProfile(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  if (Request.Body.empty())
    return errorResponse("bad-request",
                         "ingest-profile needs a PTPF image in the body");
  CancelToken Token;
  bool Armed = false;
  WireMessage Resp;
  if (!armRequestToken(Request, Opts.DefaultStepBudget, Token, Armed, Resp))
    return Resp;

  std::vector<uint8_t> Bytes(Request.Body.begin(), Request.Body.end());
  DiagnosticEngine LoadDiags;
  std::optional<ProfileFile> PF = ProfileFile::deserialize(Bytes, &LoadDiags);
  if (!PF)
    return errorResponse("bad-profile",
                         "profile image failed to parse: " + LoadDiags.str());

  ProfileIngestReport Report =
      Entry->Session->ingestProfile(*PF, Armed ? &Token : nullptr);
  bump("serve.ingests");
  if (!Report.Ok)
    return errorResponse(Token.expired() ? "timeout" : "bad-profile",
                         Report.Error);
  Resp = okResponse();
  Resp.Params["accepted"] = std::to_string(Report.Accepted);
  Resp.Params["quarantined"] = std::to_string(Report.Quarantined.size());
  if (!Report.Findings.empty())
    Resp.Params["findings"] = std::to_string(Report.Findings.size());
  return Resp;
}

WireMessage ServeCore::handleCaptureProfile(const WireMessage &Request) {
  std::shared_ptr<SessionEntry> Entry = findSession(Request.param("session"));
  if (!Entry)
    return errorResponse("unknown-session", "no session named '" +
                                                Request.param("session") +
                                                "'");
  std::vector<uint8_t> Bytes = Entry->Session->captureProfile().serialize();
  bump("serve.captures");
  WireMessage Resp = okResponse();
  Resp.Body.assign(Bytes.begin(), Bytes.end());
  return Resp;
}

WireMessage ServeCore::handleStats() {
  if (!Opts.Obs)
    return errorResponse("bad-request",
                         "this daemon runs without observability "
                         "(restart ptran-serve with --stats)");
  WireMessage Resp = okResponse();
  Resp.Body = Opts.Obs->statsTable();
  return Resp;
}
