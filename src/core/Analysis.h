//===--- core/Analysis.h - Per-function analysis pipeline ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience drivers chaining the paper's program representations:
/// statement CFG -> interval structure -> extended CFG -> (forward)
/// control dependence graph, per function and per program. Everything
/// downstream (profiling plans, frequency recovery, time and variance
/// estimation) consumes these bundles.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_CORE_ANALYSIS_H
#define PTRAN_CORE_ANALYSIS_H

#include "cdg/ControlDependence.h"
#include "cfg/Cfg.h"
#include "ecfg/Ecfg.h"
#include "interval/Intervals.h"
#include "obs/Observability.h"
#include "support/Cancellation.h"
#include "support/ExecutionPolicy.h"

#include <map>
#include <memory>
#include <optional>
#include <vector>

namespace ptran {

/// Options controlling the per-function pipeline.
struct AnalysisOptions {
  /// Fold GOTO statements into edges first (recovers the compact CFGs the
  /// paper draws; on by default).
  bool ElideGotos = true;
  /// Worker threads (or a shared pool) for ProgramAnalysis::compute.
  /// Functions are analyzed independently, so the fan-out is
  /// embarrassingly parallel; each task reports into its own
  /// DiagnosticEngine and the locals are merged back in program order, so
  /// results and diagnostics are bit-for-bit identical under every
  /// policy.
  ExecutionPolicy Exec;
  /// Tracing/metrics sink: when enabled, every pass of the pipeline (CFG,
  /// intervals, ECFG, FCDG) records a per-function timing span and the
  /// pool reports task counters. Disabled (the default) costs one branch
  /// per pass.
  ObservabilityOptions Obs;
  /// Cooperative cancellation: the fan-out polls the token once per
  /// function, so an expired token stops scheduling new work and the
  /// remaining functions land in skipped() with a structured
  /// Timeout/Cancelled diagnostic. Null (the default) = unbounded.
  CancelToken *Cancel = nullptr;
};

/// All derived representations of one function.
class FunctionAnalysis {
public:
  /// Runs the pipeline on \p F. Fails (null) on irreducible control flow
  /// or other structural errors, reported to \p Diags.
  static std::unique_ptr<FunctionAnalysis>
  compute(const Function &F, DiagnosticEngine &Diags,
          const AnalysisOptions &Opts = AnalysisOptions());

  const Function &function() const { return *F; }
  const Cfg &cfg() const { return C; }
  const IntervalStructure &intervals() const { return IS; }
  const Ecfg &ecfg() const { return E; }
  const ControlDependence &cd() const { return *CD; }

private:
  FunctionAnalysis() = default;

  const Function *F = nullptr;
  Cfg C;
  IntervalStructure IS;
  Ecfg E;
  std::unique_ptr<ControlDependence> CD;
};

/// FunctionAnalysis for every procedure of a program.
class ProgramAnalysis {
public:
  /// Analyzes all procedures (across Opts.Exec workers). Always
  /// returns a bundle: functions whose analysis fails (e.g. irreducible
  /// control flow) are recorded in failures() with their diagnostics in
  /// \p Diags, while every other function stays usable — callers decide
  /// whether partial coverage is acceptable via allOk().
  static std::unique_ptr<ProgramAnalysis>
  compute(const Program &P, DiagnosticEngine &Diags,
          const AnalysisOptions &Opts = AnalysisOptions());

  const Program &program() const { return *P; }
  /// Analysis of \p F. Fatal-errors if \p F failed analysis or was never
  /// part of the program (with distinct messages for the two cases); use
  /// tryOf() to probe.
  const FunctionAnalysis &of(const Function &F) const;
  /// Analysis of \p F, or null if \p F failed analysis or is unknown.
  const FunctionAnalysis *tryOf(const Function &F) const;

  /// True if every function of the program was analyzed successfully.
  bool allOk() const { return Failures.empty() && Skipped.empty(); }
  /// True if \p F was seen but its analysis failed.
  bool failed(const Function &F) const;
  /// The functions whose analysis failed, in program order.
  const std::vector<const Function *> &failures() const { return Failures; }

  /// The functions never analyzed because Opts.Cancel expired mid-run, in
  /// program order. Distinct from failures(): these functions have nothing
  /// wrong with them and analyze fine given a fresh token. Non-empty only
  /// when cutShort().
  const std::vector<const Function *> &skipped() const { return Skipped; }
  /// True when the run was cut short by an expired CancelToken.
  bool cutShort() const { return !Skipped.empty(); }

  const std::map<const Function *, std::unique_ptr<FunctionAnalysis>> &
  all() const {
    return PerFunction;
  }

private:
  const Program *P = nullptr;
  std::map<const Function *, std::unique_ptr<FunctionAnalysis>> PerFunction;
  std::vector<const Function *> Failures;
  std::vector<const Function *> Skipped;
};

} // namespace ptran

#endif // PTRAN_CORE_ANALYSIS_H
