//===--- core/Analysis.h - Per-function analysis pipeline ------*- C++ -*-===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience drivers chaining the paper's program representations:
/// statement CFG -> interval structure -> extended CFG -> (forward)
/// control dependence graph, per function and per program. Everything
/// downstream (profiling plans, frequency recovery, time and variance
/// estimation) consumes these bundles.
///
//===----------------------------------------------------------------------===//

#ifndef PTRAN_CORE_ANALYSIS_H
#define PTRAN_CORE_ANALYSIS_H

#include "cdg/ControlDependence.h"
#include "cfg/Cfg.h"
#include "ecfg/Ecfg.h"
#include "interval/Intervals.h"

#include <map>
#include <memory>
#include <optional>

namespace ptran {

/// Options controlling the per-function pipeline.
struct AnalysisOptions {
  /// Fold GOTO statements into edges first (recovers the compact CFGs the
  /// paper draws; on by default).
  bool ElideGotos = true;
};

/// All derived representations of one function.
class FunctionAnalysis {
public:
  /// Runs the pipeline on \p F. Fails (null) on irreducible control flow
  /// or other structural errors, reported to \p Diags.
  static std::unique_ptr<FunctionAnalysis>
  compute(const Function &F, DiagnosticEngine &Diags,
          const AnalysisOptions &Opts = AnalysisOptions());

  const Function &function() const { return *F; }
  const Cfg &cfg() const { return C; }
  const IntervalStructure &intervals() const { return IS; }
  const Ecfg &ecfg() const { return E; }
  const ControlDependence &cd() const { return *CD; }

private:
  FunctionAnalysis() = default;

  const Function *F = nullptr;
  Cfg C;
  IntervalStructure IS;
  Ecfg E;
  std::unique_ptr<ControlDependence> CD;
};

/// FunctionAnalysis for every procedure of a program.
class ProgramAnalysis {
public:
  /// Analyzes all procedures. Fails (null) if any function fails.
  static std::unique_ptr<ProgramAnalysis>
  compute(const Program &P, DiagnosticEngine &Diags,
          const AnalysisOptions &Opts = AnalysisOptions());

  const Program &program() const { return *P; }
  const FunctionAnalysis &of(const Function &F) const;
  const std::map<const Function *, std::unique_ptr<FunctionAnalysis>> &
  all() const {
    return PerFunction;
  }

private:
  const Program *P = nullptr;
  std::map<const Function *, std::unique_ptr<FunctionAnalysis>> PerFunction;
};

} // namespace ptran

#endif // PTRAN_CORE_ANALYSIS_H
