//===--- core/Analysis.cpp - Per-function analysis pipeline ---------------===//

#include "core/Analysis.h"

#include "support/FatalError.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace ptran;

std::unique_ptr<FunctionAnalysis>
FunctionAnalysis::compute(const Function &F, DiagnosticEngine &Diags,
                          const AnalysisOptions &Opts) {
  ObsRegistry *Obs = Opts.Obs.Registry;
  auto FA = std::unique_ptr<FunctionAnalysis>(new FunctionAnalysis());
  FA->F = &F;
  {
    TimingSpan Span(Obs, "analysis.cfg", F.name());
    FA->C = buildCfg(F);
    if (Opts.ElideGotos)
      elideGotoNodes(FA->C);
  }

  {
    TimingSpan Span(Obs, "analysis.intervals", F.name());
    std::optional<IntervalStructure> IS =
        IntervalStructure::compute(FA->C, Diags);
    if (!IS)
      return nullptr;
    FA->IS = std::move(*IS);
  }

  {
    TimingSpan Span(Obs, "analysis.ecfg", F.name());
    FA->E = buildEcfg(FA->C, FA->IS);
  }
  {
    TimingSpan Span(Obs, "analysis.fcdg", F.name());
    FA->CD = std::make_unique<ControlDependence>(FA->E, FA->IS);
  }
  return FA;
}

std::unique_ptr<ProgramAnalysis>
ProgramAnalysis::compute(const Program &P, DiagnosticEngine &Diags,
                         const AnalysisOptions &Opts) {
  TimingSpan Span(Opts.Obs.Registry, "analysis.program",
                  Opts.ElideGotos ? "" : "goto-preserving");
  auto PA = std::unique_ptr<ProgramAnalysis>(new ProgramAnalysis());
  PA->P = &P;

  const auto &Funcs = P.functions();
  std::vector<std::unique_ptr<FunctionAnalysis>> Results(Funcs.size());
  // One engine per task: workers never contend, and merging the locals in
  // program order below makes the diagnostic stream independent of Jobs.
  std::vector<DiagnosticEngine> Local(Funcs.size());
  // Set by the task itself when its in-body checkpoint trips; tasks whose
  // bodies never ran (skipped by the token-aware submit at dequeue time)
  // are recognized below by a null result with no error diagnostics.
  std::vector<char> SkipFlags(Funcs.size(), 0);
  CancelToken *Cancel = Opts.Cancel;

  PoolLease Pool(Opts.Exec, Funcs.size(), Opts.Obs.Registry);
  if (Pool->workerCount() == 0) {
    for (size_t I = 0; I < Funcs.size(); ++I) {
      if (Cancel && Cancel->checkpoint()) {
        SkipFlags[I] = 1;
        continue;
      }
      Results[I] = FunctionAnalysis::compute(*Funcs[I], Local[I], Opts);
    }
  } else {
    std::vector<std::future<void>> Futures;
    Futures.reserve(Funcs.size());
    for (size_t I = 0; I < Funcs.size(); ++I)
      Futures.push_back(Pool->submit(
          Cancel, [&Funcs, &Results, &Local, &SkipFlags, &Opts, Cancel, I] {
            if (Cancel && Cancel->checkpoint()) {
              SkipFlags[I] = 1;
              return;
            }
            Results[I] = FunctionAnalysis::compute(*Funcs[I], Local[I], Opts);
          }));
    waitAll(Futures);
  }

  bool Expired = Cancel && Cancel->expired();
  for (size_t I = 0; I < Funcs.size(); ++I) {
    bool HadErrors = Local[I].hasErrors();
    Diags.append(std::move(Local[I]));
    if (Results[I])
      PA->PerFunction.emplace(Funcs[I].get(), std::move(Results[I]));
    else if (SkipFlags[I] || (Expired && !HadErrors))
      PA->Skipped.push_back(Funcs[I].get());
    else
      PA->Failures.push_back(Funcs[I].get());
  }
  if (PA->cutShort())
    Diags.error(cancelMessage(*Cancel, "program analysis") + "; " +
                std::to_string(PA->Skipped.size()) + " of " +
                std::to_string(Funcs.size()) + " functions not analyzed");
  return PA;
}

const FunctionAnalysis &ProgramAnalysis::of(const Function &F) const {
  auto It = PerFunction.find(&F);
  if (It == PerFunction.end()) {
    if (failed(F))
      reportFatalError("analysis failed for function " + F.name());
    reportFatalError("no analysis for function " + F.name());
  }
  return *It->second;
}

const FunctionAnalysis *ProgramAnalysis::tryOf(const Function &F) const {
  auto It = PerFunction.find(&F);
  return It == PerFunction.end() ? nullptr : It->second.get();
}

bool ProgramAnalysis::failed(const Function &F) const {
  return std::find(Failures.begin(), Failures.end(), &F) != Failures.end();
}
