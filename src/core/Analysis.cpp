//===--- core/Analysis.cpp - Per-function analysis pipeline ---------------===//

#include "core/Analysis.h"

#include "support/FatalError.h"
#include "support/ThreadPool.h"

#include <algorithm>

using namespace ptran;

std::unique_ptr<FunctionAnalysis>
FunctionAnalysis::compute(const Function &F, DiagnosticEngine &Diags,
                          const AnalysisOptions &Opts) {
  ObsRegistry *Obs = Opts.Obs.Registry;
  auto FA = std::unique_ptr<FunctionAnalysis>(new FunctionAnalysis());
  FA->F = &F;
  {
    TimingSpan Span(Obs, "analysis.cfg", F.name());
    FA->C = buildCfg(F);
    if (Opts.ElideGotos)
      elideGotoNodes(FA->C);
  }

  {
    TimingSpan Span(Obs, "analysis.intervals", F.name());
    std::optional<IntervalStructure> IS =
        IntervalStructure::compute(FA->C, Diags);
    if (!IS)
      return nullptr;
    FA->IS = std::move(*IS);
  }

  {
    TimingSpan Span(Obs, "analysis.ecfg", F.name());
    FA->E = buildEcfg(FA->C, FA->IS);
  }
  {
    TimingSpan Span(Obs, "analysis.fcdg", F.name());
    FA->CD = std::make_unique<ControlDependence>(FA->E, FA->IS);
  }
  return FA;
}

std::unique_ptr<ProgramAnalysis>
ProgramAnalysis::compute(const Program &P, DiagnosticEngine &Diags,
                         const AnalysisOptions &Opts) {
  TimingSpan Span(Opts.Obs.Registry, "analysis.program",
                  Opts.ElideGotos ? "" : "goto-preserving");
  auto PA = std::unique_ptr<ProgramAnalysis>(new ProgramAnalysis());
  PA->P = &P;

  const auto &Funcs = P.functions();
  std::vector<std::unique_ptr<FunctionAnalysis>> Results(Funcs.size());
  // One engine per task: workers never contend, and merging the locals in
  // program order below makes the diagnostic stream independent of Jobs.
  std::vector<DiagnosticEngine> Local(Funcs.size());

  PoolLease Pool(Opts.Exec, Funcs.size(), Opts.Obs.Registry);
  if (Pool->workerCount() == 0) {
    for (size_t I = 0; I < Funcs.size(); ++I)
      Results[I] = FunctionAnalysis::compute(*Funcs[I], Local[I], Opts);
  } else {
    std::vector<std::future<void>> Futures;
    Futures.reserve(Funcs.size());
    for (size_t I = 0; I < Funcs.size(); ++I)
      Futures.push_back(Pool->submit([&Funcs, &Results, &Local, &Opts, I] {
        Results[I] = FunctionAnalysis::compute(*Funcs[I], Local[I], Opts);
      }));
    waitAll(Futures);
  }

  for (size_t I = 0; I < Funcs.size(); ++I) {
    Diags.append(std::move(Local[I]));
    if (Results[I])
      PA->PerFunction.emplace(Funcs[I].get(), std::move(Results[I]));
    else
      PA->Failures.push_back(Funcs[I].get());
  }
  return PA;
}

const FunctionAnalysis &ProgramAnalysis::of(const Function &F) const {
  auto It = PerFunction.find(&F);
  if (It == PerFunction.end()) {
    if (failed(F))
      reportFatalError("analysis failed for function " + F.name());
    reportFatalError("no analysis for function " + F.name());
  }
  return *It->second;
}

const FunctionAnalysis *ProgramAnalysis::tryOf(const Function &F) const {
  auto It = PerFunction.find(&F);
  return It == PerFunction.end() ? nullptr : It->second.get();
}

bool ProgramAnalysis::failed(const Function &F) const {
  return std::find(Failures.begin(), Failures.end(), &F) != Failures.end();
}
