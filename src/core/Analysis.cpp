//===--- core/Analysis.cpp - Per-function analysis pipeline ---------------===//

#include "core/Analysis.h"

#include "support/FatalError.h"

using namespace ptran;

std::unique_ptr<FunctionAnalysis>
FunctionAnalysis::compute(const Function &F, DiagnosticEngine &Diags,
                          const AnalysisOptions &Opts) {
  auto FA = std::unique_ptr<FunctionAnalysis>(new FunctionAnalysis());
  FA->F = &F;
  FA->C = buildCfg(F);
  if (Opts.ElideGotos)
    elideGotoNodes(FA->C);

  std::optional<IntervalStructure> IS =
      IntervalStructure::compute(FA->C, Diags);
  if (!IS)
    return nullptr;
  FA->IS = std::move(*IS);

  FA->E = buildEcfg(FA->C, FA->IS);
  FA->CD = std::make_unique<ControlDependence>(FA->E, FA->IS);
  return FA;
}

std::unique_ptr<ProgramAnalysis>
ProgramAnalysis::compute(const Program &P, DiagnosticEngine &Diags,
                         const AnalysisOptions &Opts) {
  auto PA = std::unique_ptr<ProgramAnalysis>(new ProgramAnalysis());
  PA->P = &P;
  for (const auto &F : P.functions()) {
    auto FA = FunctionAnalysis::compute(*F, Diags, Opts);
    if (!FA)
      return nullptr;
    PA->PerFunction.emplace(F.get(), std::move(FA));
  }
  return PA;
}

const FunctionAnalysis &ProgramAnalysis::of(const Function &F) const {
  auto It = PerFunction.find(&F);
  if (It == PerFunction.end())
    reportFatalError("no analysis for function " + F.name());
  return *It->second;
}
