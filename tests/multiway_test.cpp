//===--- tests/multiway_test.cpp - Computed GOTO and DO WHILE -------------===//
//
// The framework on general label sets: Fortran's computed GOTO gives a
// node n+1 branch labels (C1..Cn plus the out-of-range fallthrough U),
// exercising Definition 1's arbitrary label set and the "n-1 of n
// counters" form of the second profiling optimization. Plus the DO WHILE
// front-end sugar.
//
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"

#include "cost/Estimator.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "profile/ProfileRuntime.h"

#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

TEST(ComputedGoto, InterpreterSemantics) {
  const char *Src = R"(
program main
  integer i, r
  do 20 i = 0, 4
    goto (10, 11, 12), i
    r = 99
    goto 19
10  r = 1
    goto 19
11  r = 2
    goto 19
12  r = 3
19  print r
20 continue
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  // i = 0 and i = 4 are out of range -> fallthrough arm (99).
  EXPECT_EQ(R.Output, "99\n1\n2\n3\n99\n");
}

TEST(ComputedGoto, CfgEdgesCarryCaseLabels) {
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId I = B.intVar("i");
  StmtId Cg = B.computedGoto(B.var(I), {10, 20, 10});
  B.assign(I, B.lit(0));
  B.label(10).cont();
  B.label(20).cont();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  Cfg C = buildCfg(*Prog.findFunction("main"));
  NodeId N = C.nodeForStmt(Cg);
  EXPECT_EQ(C.graph().outDegree(N), 4u); // 3 arms + fallthrough.
  // Arms 1 and 3 target the same node under distinct labels (multigraph).
  NodeId T10 = C.nodeForStmt(2);
  EXPECT_NE(C.graph().findEdge(N, T10, static_cast<LabelId>(caseLabel(1))),
            InvalidEdge);
  EXPECT_NE(C.graph().findEdge(N, T10, static_cast<LabelId>(caseLabel(3))),
            InvalidEdge);
  EXPECT_EQ(cfgLabelName(caseLabel(3)), "C3");
}

TEST(ComputedGoto, PrintsAndRoundTrips) {
  const char *Src = R"(
program main
  integer k
  k = 2
  goto (10, 20), k
10 continue
20 continue
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  const Function *F = P->entry();
  EXPECT_EQ(printStmt(*F, F->stmt(1)), "GOTO (10, 20), k");
  std::string Printed = printProgram(*P);
  auto P2 = parseProgram(Printed, Diags);
  ASSERT_NE(P2, nullptr) << Diags.str() << Printed;
  EXPECT_EQ(printProgram(*P2), Printed);
}

TEST(ComputedGoto, NwaySumComplementDropsOneCounter) {
  // A 3-arm computed GOTO whose arms all carry distinct work: all four
  // labels (C1, C2, C3, U) become conditions; opt2 must measure only
  // three of them and derive the fourth — and recovery must still match
  // the exact oracle.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId S = B.intVar("seed"), R = B.intVar("rnd"), A = B.intVar("acc");
  VarId I = B.intVar("i");
  B.assign(S, B.lit(321));
  B.doLoop(I, B.lit(1), B.lit(50));
  B.assign(S, B.intrinsic(Intrinsic::Mod,
                          {B.add(B.mul(B.var(S), B.lit(1103)), B.lit(7919)),
                           B.lit(100003)}));
  B.assign(R, B.intrinsic(Intrinsic::Mod, {B.var(S), B.lit(4)}));
  StmtId Cg = B.computedGoto(B.var(R), {10, 20, 30});
  B.assign(A, B.add(B.var(A), B.lit(100))); // Fallthrough (r == 0).
  B.gotoLabel(40);
  B.label(10).assign(A, B.add(B.var(A), B.lit(1)));
  B.gotoLabel(40);
  B.label(20).assign(A, B.add(B.var(A), B.lit(2)));
  B.gotoLabel(40);
  B.label(30).assign(A, B.add(B.var(A), B.lit(3)));
  B.label(40).cont();
  B.endDo();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  auto PA = ProgramAnalysis::compute(Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  const Function *Main = Prog.entry();
  const FunctionAnalysis &FA = PA->of(*Main);
  NodeId CgNode = FA.cfg().nodeForStmt(Cg);

  // All four labels are conditions.
  unsigned CondsAtCg = 0;
  for (const ControlCondition &C : FA.cd().conditions())
    CondsAtCg += C.Node == CgNode;
  EXPECT_EQ(CondsAtCg, 4u);

  // The smart plan derives exactly one of them by sum-complement.
  FunctionPlan Plan = FunctionPlan::build(FA, ProfileMode::Smart);
  unsigned Measured = 0, Complemented = 0;
  for (const auto &[Cond, R2] : Plan.resolutions()) {
    if (Cond.Node != CgNode)
      continue;
    Measured += R2.K == Resolution::Kind::Measured;
    Complemented += R2.K == Resolution::Kind::SumComplement ||
                    R2.K == Resolution::Kind::ExitComplement;
  }
  EXPECT_EQ(Measured, 3u);
  EXPECT_EQ(Complemented, 1u);

  // End-to-end: recovery equals the exact oracle.
  CostModel CM = CostModel::optimizing();
  ProgramPlan PPlan = ProgramPlan::build(*PA, ProfileMode::Smart);
  ProfileRuntime Rt(*PA, PPlan, CM);
  ExactProfile Exact(*PA);
  Interpreter Interp(Prog, CM);
  Interp.addObserver(&Rt);
  Interp.addObserver(&Exact);
  ASSERT_TRUE(Interp.run().Ok);
  FrequencyTotals Got = Rt.recover(*Main);
  FrequencyTotals Truth = Exact.totals(*Main);
  ASSERT_TRUE(Got.Ok);
  for (const ControlCondition &C : FA.cd().conditions())
    EXPECT_NEAR(Got.condTotal(C), Truth.condTotal(C), 1e-9)
        << cfgLabelName(C.Label);
}

TEST(DoWhile, ParsesAndRuns) {
  const char *Src = R"(
program main
  integer w, s
  w = 0
  s = 0
  do while (w .lt. 5)
    w = w + 1
    s = s + w
  enddo
  print w, s
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "5 15\n");
}

TEST(DoWhile, NestsWithCountedDo) {
  const char *Src = R"(
program main
  integer i, w, s
  s = 0
  do i = 1, 3
    w = 0
    do while (w .lt. i)
      w = w + 1
      s = s + 1
    enddo
  enddo
  print s
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  Interpreter I(*P, CostModel::optimizing());
  RunResult R = I.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, "6\n");
}

TEST(DoWhile, IsALoopForTheAnalysis) {
  const char *Src = R"(
program main
  integer w
  w = 0
  do while (w .lt. 7)
    w = w + 1
  enddo
end
)";
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(Src, Diags);
  ASSERT_NE(P, nullptr) << Diags.str();
  auto Est = Estimator::create(*P, CostModel::optimizing(), EstimatorOptions(Diags));
  ASSERT_NE(Est, nullptr) << Diags.str();
  ASSERT_TRUE(Est->profiledRun().Ok);

  const Function *Main = P->entry();
  const FunctionAnalysis &FA = Est->analysis().of(*Main);
  ASSERT_EQ(FA.intervals().headers().size(), 1u);
  // Loop frequency: the test executes 8 times (7 iterations + exit).
  FrequencyTotals T = Est->totalsFor(*Main);
  ASSERT_TRUE(T.Ok);
  NodeId Ph = FA.ecfg().preheaderOf(FA.intervals().headers()[0]);
  EXPECT_DOUBLE_EQ(T.condTotal({Ph, CfgLabel::U}), 8.0);
}

TEST(DoWhile, MissingEnddoIsDiagnosed) {
  const char *Src = R"(
program main
  do while (1 .lt. 2)
end
)";
  DiagnosticEngine Diags;
  EXPECT_EQ(parseProgram(Src, Diags), nullptr);
  EXPECT_NE(Diags.str().find("DO WHILE without matching ENDDO"),
            std::string::npos)
      << Diags.str();
}

} // namespace
