# End-to-end observability smoke test: runs ptran-estimate with --stats
# and --trace on a multi-function workload (classic and --session paths),
# checks that the trace file is valid JSON carrying the expected span
# names and that the stats tables reach stdout, and that the strict
# numeric-flag parsing rejects garbage with an actionable message.
# Invoked by CTest as:
#
#   cmake -DESTIMATOR=<path> -DWORK_DIR=<dir> -P StatsSmoke.cmake

if(NOT ESTIMATOR OR NOT WORK_DIR)
  message(FATAL_ERROR "ESTIMATOR and WORK_DIR must be defined")
endif()

file(MAKE_DIRECTORY ${WORK_DIR})

function(check_trace_and_stats LABEL TRACE_FILE STDOUT_FILE)
  # string(JSON) parses strictly, so this rejects malformed output the way
  # chrome://tracing would.
  file(READ ${TRACE_FILE} TRACE_JSON)
  string(JSON EVENT_COUNT ERROR_VARIABLE JSON_ERR
         LENGTH "${TRACE_JSON}" traceEvents)
  if(JSON_ERR)
    message(FATAL_ERROR "${LABEL}: trace is not valid JSON: ${JSON_ERR}")
  endif()
  if(EVENT_COUNT LESS 10)
    message(FATAL_ERROR
      "${LABEL}: suspiciously few trace events (${EVENT_COUNT})")
  endif()
  foreach(SPAN analysis.program analysis.cfg plan.counters profiled-run
          timeanalysis.run timeanalysis.wave timeanalysis.scc)
    if(NOT TRACE_JSON MATCHES "\"name\":\"${SPAN}\"")
      message(FATAL_ERROR "${LABEL}: trace is missing span '${SPAN}'")
    endif()
  endforeach()
  file(READ ${STDOUT_FILE} OUT)
  if(NOT OUT MATCHES "observability: timing spans")
    message(FATAL_ERROR "${LABEL}: --stats printed no span table")
  endif()
  if(NOT OUT MATCHES "observability: counters")
    message(FATAL_ERROR "${LABEL}: --stats printed no counter table")
  endif()
  if(NOT OUT MATCHES "recovery.fixpoint_iterations")
    message(FATAL_ERROR "${LABEL}: recovery counters missing from --stats")
  endif()
endfunction()

# Classic path.
execute_process(
  COMMAND ${ESTIMATOR} --workload=loops --runs=2 --stats
          --trace=${WORK_DIR}/classic_trace.json
  OUTPUT_FILE ${WORK_DIR}/classic.txt
  RESULT_VARIABLE CLASSIC_RC)
if(NOT CLASSIC_RC EQUAL 0)
  message(FATAL_ERROR "classic --stats run failed (rc=${CLASSIC_RC})")
endif()
check_trace_and_stats(classic ${WORK_DIR}/classic_trace.json
                      ${WORK_DIR}/classic.txt)

# Session path: must additionally report session.* and threadpool.*
# counters.
execute_process(
  COMMAND ${ESTIMATOR} --workload=loops --runs=2 --session --jobs=2 --stats
          --trace=${WORK_DIR}/session_trace.json
  OUTPUT_FILE ${WORK_DIR}/session.txt
  RESULT_VARIABLE SESSION_RC)
if(NOT SESSION_RC EQUAL 0)
  message(FATAL_ERROR "--session --stats run failed (rc=${SESSION_RC})")
endif()
check_trace_and_stats(session ${WORK_DIR}/session_trace.json
                      ${WORK_DIR}/session.txt)
file(READ ${WORK_DIR}/session.txt SESSION_OUT)
foreach(COUNTER session.runs session.queries threadpool.tasks_executed)
  if(NOT SESSION_OUT MATCHES "${COUNTER}")
    message(FATAL_ERROR "session --stats is missing counter '${COUNTER}'")
  endif()
endforeach()

# An unwritable trace path must fail loudly, not drop the trace.
execute_process(
  COMMAND ${ESTIMATOR} --workload=simple --runs=1
          --trace=${WORK_DIR}/no-such-dir/trace.json
  OUTPUT_QUIET
  ERROR_VARIABLE TRACEFAIL_ERR
  RESULT_VARIABLE TRACEFAIL_RC)
if(TRACEFAIL_RC EQUAL 0)
  message(FATAL_ERROR "unwritable --trace path was silently ignored")
endif()
if(NOT TRACEFAIL_ERR MATCHES "trace")
  message(FATAL_ERROR
    "unwritable --trace diagnostic is not actionable: ${TRACEFAIL_ERR}")
endif()

# Regression: numeric flags reject what atoi silently mangled to 0.
foreach(BADFLAG --runs=ten --runs= --chunk=x,y --chunk=4
        --sampling=fast --jobs=two)
  execute_process(
    COMMAND ${ESTIMATOR} --workload=simple ${BADFLAG}
    OUTPUT_QUIET
    ERROR_VARIABLE BAD_ERR
    RESULT_VARIABLE BAD_RC)
  if(BAD_RC EQUAL 0)
    message(FATAL_ERROR "'${BADFLAG}' was silently accepted")
  endif()
  if(NOT BAD_ERR MATCHES "invalid value")
    message(FATAL_ERROR "'${BADFLAG}' diagnostic not actionable: ${BAD_ERR}")
  endif()
endforeach()

# --runs=0 is only meaningful when a saved profile supplies the data; on
# its own it must fail and point at --profile-in.
execute_process(
  COMMAND ${ESTIMATOR} --workload=simple --runs=0
  OUTPUT_QUIET
  ERROR_VARIABLE RUNS0_ERR
  RESULT_VARIABLE RUNS0_RC)
if(RUNS0_RC EQUAL 0)
  message(FATAL_ERROR "bare '--runs=0' was silently accepted")
endif()
if(NOT RUNS0_ERR MATCHES "profile-in")
  message(FATAL_ERROR
    "bare '--runs=0' diagnostic not actionable: ${RUNS0_ERR}")
endif()

# Durable-profile round trip: save from a profiled session, then estimate
# with no new runs purely from the validated + ingested file.
execute_process(
  COMMAND ${ESTIMATOR} --workload=simple --session --runs=2
          --profile-out=${WORK_DIR}/smoke.ptpf
  OUTPUT_QUIET
  ERROR_VARIABLE SAVE_ERR
  RESULT_VARIABLE SAVE_RC)
if(NOT SAVE_RC EQUAL 0)
  message(FATAL_ERROR "--profile-out failed: ${SAVE_ERR}")
endif()
execute_process(
  COMMAND ${ESTIMATOR} --workload=simple --session --runs=0
          --profile-in=${WORK_DIR}/smoke.ptpf --on-bad-profile=fail
  OUTPUT_VARIABLE INGEST_OUT
  ERROR_VARIABLE INGEST_ERR
  RESULT_VARIABLE INGEST_RC)
if(NOT INGEST_RC EQUAL 0)
  message(FATAL_ERROR "--profile-in round trip failed: ${INGEST_ERR}")
endif()
if(NOT INGEST_OUT MATCHES "ingested")
  message(FATAL_ERROR "--profile-in printed no ingest report: ${INGEST_OUT}")
endif()
# --profile-in without --session must point at --session.
execute_process(
  COMMAND ${ESTIMATOR} --workload=simple --profile-in=${WORK_DIR}/smoke.ptpf
  OUTPUT_QUIET
  ERROR_VARIABLE NOSESSION_ERR
  RESULT_VARIABLE NOSESSION_RC)
if(NOSESSION_RC EQUAL 0)
  message(FATAL_ERROR "--profile-in without --session was accepted")
endif()
if(NOT NOSESSION_ERR MATCHES "--session")
  message(FATAL_ERROR
    "--profile-in/--session diagnostic not actionable: ${NOSESSION_ERR}")
endif()

message(STATUS "observability smoke test passed")
