//===--- tests/session_test.cpp - Incremental estimation sessions ---------===//
//
// Part of the ptran-times project (Sarkar, PLDI 1989 reproduction).
//
// Covers the EstimationSession subsystem: summary-cache invalidation (a
// changed leaf re-evaluates exactly the leaf and its call-graph
// ancestors), bit-identity of incremental vs cold recomputation, the
// batch query API with per-request configuration overrides, and
// determinism across job counts on one shared pool.
//
//===----------------------------------------------------------------------===//

#include "freq/StaticFrequencies.h"
#include "obs/Observability.h"
#include "parser/Parser.h"
#include "session/EstimationSession.h"
#include "support/FaultInjection.h"
#include "workloads/Workloads.h"

#include "TestPrograms.h"

#include <cstring>
#include <limits>
#include <set>
#include <gtest/gtest.h>

using namespace ptran;
using namespace ptran::testing;

namespace {

/// A diamond call graph with an extra edge:
///
///   main -> mid -> {leafa, leafb},  main -> leafb
///
/// so dirtying leafa must re-evaluate {leafa, mid, main} and nothing
/// else: leafb is reachable from main but not a caller of leafa.
const char DiamondSource[] = R"FTN(
program main
  x = 0.0
  call mid(x)
  call leafb(x)
  print x
end
subroutine mid(x)
  call leafa(x)
  call leafb(x)
end
subroutine leafa(x)
  do 10 i = 1, 4
    x = x + 1.0
10 continue
end
subroutine leafb(x)
  x = x + 2.0
end
)FTN";

std::unique_ptr<Program> parseDiamond() {
  DiagnosticEngine Diags;
  std::unique_ptr<Program> P = parseProgram(DiamondSource, Diags);
  EXPECT_NE(P, nullptr) << Diags.str();
  return P;
}

/// Byte-level equality of every node estimate of every function.
void expectBitIdentical(const Program &Prog, const TimeAnalysis &A,
                        const TimeAnalysis &B) {
  for (const auto &F : Prog.functions()) {
    const std::vector<NodeEstimates> &EA = A.estimatesOf(*F);
    const std::vector<NodeEstimates> &EB = B.estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size()) << F->name();
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << "estimates of " << F->name() << " differ bitwise";
  }
}

/// One synthetic totals delta for a straight-line leaf: bump its
/// invocation condition, which changes its accumulated totals (and hence
/// its input fingerprint) without touching any other function.
FrequencyTotals invocationDelta(const EstimationSession &S,
                                const Function &F) {
  FrequencyTotals Delta;
  const FunctionAnalysis &FA = S.estimator().analysis().of(F);
  Delta.Cond[{FA.ecfg().start(), CfgLabel::U}] = 1.0;
  return Delta;
}

TEST(EstimationSession, ColdQueryThenCacheHit) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Prog, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  ASSERT_NE(S, nullptr) << Diags.str();
  ASSERT_TRUE(S->profiledRun().Ok);

  EstimateResult R1 = S->estimateEntry();
  ASSERT_TRUE(R1.Ok) << R1.Error;
  // Four functions, no recursion: one bottom-up evaluation each.
  EXPECT_EQ(S->lastEvaluations(), 4u);
  EXPECT_GT(R1.Time, 0.0);
  EXPECT_EQ(R1.F, Prog->entry());

  // Nothing changed: the second query is a pure cache hit — same analysis
  // object, zero evaluations.
  uint64_t HitsBefore = S->cacheHits();
  EstimateResult R2 = S->estimateEntry();
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(S->lastEvaluations(), 0u);
  EXPECT_EQ(S->cacheHits(), HitsBefore + 1);
  EXPECT_EQ(R2.Analysis, R1.Analysis);
  EXPECT_EQ(R2.Time, R1.Time);
  EXPECT_EQ(R2.Var, R1.Var);
}

TEST(EstimationSession, LeafChangeInvalidatesExactlyItsAncestors) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Prog, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  ASSERT_NE(S, nullptr) << Diags.str();
  ASSERT_TRUE(S->profiledRun().Ok);
  ASSERT_TRUE(S->estimateEntry().Ok);

  // Dirty only leafa's accumulated totals.
  const Function *LeafA = Prog->findFunction("leafa");
  ASSERT_NE(LeafA, nullptr);
  S->accumulateTotals(*LeafA, invocationDelta(*S, *LeafA));

  EstimateResult R = S->estimateEntry();
  ASSERT_TRUE(R.Ok) << R.Error;
  // The dirty closure is {leafa, mid, main}; leafb has no path to leafa
  // in the caller direction and must be served from cache.
  EXPECT_EQ(S->lastEvaluations(), 3u);

  // Bit-identity: a cold analysis over the session's exact accumulated
  // inputs must match the incremental result byte for byte.
  const Estimator &Est = S->estimator();
  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Prog->functions()) {
    FrequencyTotals Totals = Est.runtime().recover(*F);
    ASSERT_TRUE(Totals.Ok) << F->name();
    if (F.get() == LeafA) {
      for (const auto &[Cond, Total] :
           invocationDelta(*S, *LeafA).Cond)
        Totals.Cond[Cond] += Total;
      Totals.Node = nodeTotalsFromConds(Est.analysis().of(*F), Totals.Cond);
    }
    Freqs[F.get()] = computeFrequencies(Est.analysis().of(*F), Totals);
  }
  TimeAnalysis Cold =
      TimeAnalysis::run(Est.analysis(), Freqs, CostModel::optimizing());
  expectBitIdentical(*Prog, *R.Analysis, Cold);
  EXPECT_EQ(Cold.functionEvaluations(), 4u);
}

TEST(EstimationSession, IncrementalMatchesColdAfterMoreRuns) {
  // Accumulating runs dirties every executed function; the incremental
  // path then re-evaluates everything and must still be bit-identical to
  // an estimator that saw the same runs cold.
  std::unique_ptr<Program> Prog = makeManyFunctionProgram(31, 2);
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(
      *Prog, CostModel::optimizing(),
      EstimatorOptions(Diags).loopVariance(LoopVarianceMode::Profiled));
  ASSERT_NE(S, nullptr) << Diags.str();

  ASSERT_TRUE(S->profiledRun().Ok);
  ASSERT_TRUE(S->estimateEntry().Ok);
  ASSERT_TRUE(S->profiledRun().Ok);
  ASSERT_TRUE(S->profiledRun().Ok);
  EstimateResult Inc = S->estimateEntry();
  ASSERT_TRUE(Inc.Ok) << Inc.Error;

  DiagnosticEngine Diags2;
  auto Est = Estimator::create(
      *Prog, CostModel::optimizing(),
      EstimatorOptions(Diags2).loopVariance(LoopVarianceMode::Profiled));
  ASSERT_NE(Est, nullptr) << Diags2.str();
  ASSERT_TRUE(Est->profiledRun().Ok);
  ASSERT_TRUE(Est->profiledRun().Ok);
  ASSERT_TRUE(Est->profiledRun().Ok);
  TimeAnalysis Cold = Est->analyze();

  expectBitIdentical(*Prog, *Inc.Analysis, Cold);
  EXPECT_EQ(Inc.Time, Cold.programTime());
}

TEST(EstimationSession, BatchRequestsAndPerRequestOverrides) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Prog, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  ASSERT_NE(S, nullptr) << Diags.str();
  ASSERT_TRUE(S->profiledRun().Ok);

  EstimateRequest Entry;                // defaults: program entry
  EstimateRequest Mid("mid");           // named function
  EstimateRequest Unknown("nosuch");    // error, not fatal
  EstimateRequest Expensive("leafb");   // distinct cost model
  Expensive.Cost = CostModel::nonOptimizing();

  std::vector<EstimateResult> Res =
      S->estimate({Entry, Mid, Unknown, Expensive});
  ASSERT_EQ(Res.size(), 4u);

  ASSERT_TRUE(Res[0].Ok) << Res[0].Error;
  ASSERT_TRUE(Res[1].Ok) << Res[1].Error;
  EXPECT_GT(Res[0].Time, Res[1].Time); // entry subsumes mid's work
  EXPECT_EQ(Res[0].Analysis, Res[1].Analysis); // same configuration

  EXPECT_FALSE(Res[2].Ok);
  EXPECT_NE(Res[2].Error.find("unknown function 'nosuch'"),
            std::string::npos)
      << Res[2].Error;

  ASSERT_TRUE(Res[3].Ok) << Res[3].Error;
  EXPECT_NE(Res[3].Analysis, Res[0].Analysis); // separate config cache
  const Function *LeafB = Prog->findFunction("leafb");
  ASSERT_NE(LeafB, nullptr);
  // The non-optimizing model charges more per operation.
  EXPECT_GT(Res[3].Time, Res[0].Analysis->functionTime(*LeafB));

  // Re-asking for both configurations re-runs nothing.
  uint64_t EvalsBefore = S->totalEvaluations();
  std::vector<EstimateResult> Again = S->estimate({Entry, Expensive});
  ASSERT_TRUE(Again[0].Ok);
  ASSERT_TRUE(Again[1].Ok);
  EXPECT_EQ(S->totalEvaluations(), EvalsBefore);
  EXPECT_EQ(S->lastEvaluations(), 0u);
}

TEST(EstimationSession, VarianceModeOverridesGetTheirOwnCache) {
  Figure1Program Fix = makeFigure1();
  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Fix.Prog, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  ASSERT_NE(S, nullptr) << Diags.str();
  ASSERT_TRUE(S->profiledRun().Ok);

  EstimateRequest Zero;
  Zero.LoopVariance = LoopVarianceMode::Zero;
  EstimateRequest Profiled;
  Profiled.LoopVariance = LoopVarianceMode::Profiled;

  std::vector<EstimateResult> Res = S->estimate({Zero, Profiled});
  ASSERT_TRUE(Res[0].Ok) << Res[0].Error;
  ASSERT_TRUE(Res[1].Ok) << Res[1].Error;
  EXPECT_NE(Res[0].Analysis, Res[1].Analysis);
  // Same frequencies, same times; the variance model only affects VAR.
  EXPECT_EQ(Res[0].Time, Res[1].Time);
  EXPECT_GE(Res[1].Var, Res[0].Var);
}

TEST(EstimationSession, DeterministicAcrossJobCounts) {
  // The session routes every pass through one shared pool; results must
  // be bit-identical to the serial session at any worker count.
  auto RunAt = [](unsigned Jobs) {
    std::unique_ptr<Program> Prog = makeManyFunctionProgram(63, 2);
    DiagnosticEngine Diags;
    auto S = EstimationSession::create(*Prog, CostModel::optimizing(),
                                       EstimatorOptions(Diags).jobs(Jobs));
    EXPECT_NE(S, nullptr) << Diags.str();
    EXPECT_TRUE(S->profiledRun().Ok);
    EstimateResult R = S->estimateEntry();
    EXPECT_TRUE(R.Ok) << R.Error;
    return std::pair(R.Time, R.StdDev);
  };
  auto [SerialTime, SerialDev] = RunAt(1);
  auto [ParallelTime, ParallelDev] = RunAt(8);
  EXPECT_EQ(SerialTime, ParallelTime);
  EXPECT_EQ(SerialDev, ParallelDev);
}

TEST(EstimationSession, RecursiveProgramsStayIncremental) {
  // Recursion keeps its serial fixpoint inside the wave schedule; the
  // session must still cache and invalidate around the recursive SCC.
  const char RecSource[] = R"FTN(
program main
  x = 6.0
  call fact(x)
  call leaf(x)
  print x
end
subroutine fact(x)
  if (x .gt. 1.0) then
    x = x - 1.0
    call fact(x)
  endif
end
subroutine leaf(x)
  x = x * 2.0
end
)FTN";
  DiagnosticEngine PD;
  std::unique_ptr<Program> Prog = parseProgram(RecSource, PD);
  ASSERT_NE(Prog, nullptr) << PD.str();

  DiagnosticEngine Diags;
  auto S = EstimationSession::create(*Prog, CostModel::optimizing(),
                                     EstimatorOptions(Diags));
  ASSERT_NE(S, nullptr) << Diags.str();
  ASSERT_TRUE(S->profiledRun().Ok);

  EstimateResult R1 = S->estimateEntry();
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_TRUE(R1.Analysis->hasRecursion());
  uint64_t ColdEvals = S->lastEvaluations();
  EXPECT_GT(ColdEvals, 3u); // fixpoint iterations count per evaluation

  // Dirty the non-recursive leaf: the recursive SCC is NOT an ancestor
  // of leaf, so only {leaf, main} re-evaluate — main once, leaf once.
  const Function *Leaf = Prog->findFunction("leaf");
  ASSERT_NE(Leaf, nullptr);
  S->accumulateTotals(*Leaf, invocationDelta(*S, *Leaf));
  EstimateResult R2 = S->estimateEntry();
  ASSERT_TRUE(R2.Ok) << R2.Error;
  EXPECT_EQ(S->lastEvaluations(), 2u);
  EXPECT_EQ(R2.Time, R1.Time); // the delta scales totals, not frequencies
}

//===--- fault-tolerant profile ingestion ---------------------------------===//

/// A session with \p Runs profiled runs accumulated.
std::unique_ptr<EstimationSession>
runSession(const Program &Prog, unsigned Runs, DiagnosticEngine &Diags,
           BadProfilePolicy Policy = BadProfilePolicy::Quarantine,
           ObsRegistry *Obs = nullptr) {
  EstimatorOptions Opts = EstimatorOptions(Diags)
                              .loopVariance(LoopVarianceMode::Profiled)
                              .onBadProfile(Policy);
  if (Obs)
    Opts.observability(*Obs);
  auto S = EstimationSession::create(Prog, CostModel::optimizing(), Opts);
  EXPECT_NE(S, nullptr) << Diags.str();
  for (unsigned R = 0; R < Runs; ++R)
    EXPECT_TRUE(S->profiledRun().Ok);
  return S;
}

// The acceptance criterion for the quarantine design: corrupt k of the N
// function sections of a saved profile, ingest it into a fresh session,
// and the diagnostics must name exactly those k functions, their
// estimates must degrade to static frequencies (tagged), and the
// remaining N-k functions' estimates must be bit-identical to a session
// that ingested the uncorrupted profile.
TEST(EstimationSession, CorruptSectionsQuarantineExactlyAndOthersBitIdentical) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine RunDiags;
  auto Producer = runSession(*Prog, 2, RunDiags);
  ASSERT_NE(Producer, nullptr);
  ProfileFile Clean = Producer->captureProfile();
  ASSERT_EQ(Clean.sections().size(), 4u);

  // Corrupt k=2 of N=4 sections in memory, exactly as a failed CRC check
  // would present them after a load. main and mid are chosen so the two
  // clean functions are pure callees: a caller's estimates legitimately
  // reflect a degraded callee, but callee estimates must not move when a
  // caller is quarantined.
  ProfileFile Corrupt = Clean;
  std::set<std::string> Bad;
  for (const char *Name : {"main", "mid"}) {
    for (FunctionSection &S : Corrupt.sectionsMutable()) {
      if (S.Name == Name) {
        S.Valid = false;
        S.Issue = "section checksum mismatch (corrupt data)";
        S.Counters.clear();
        S.Loops.clear();
        Bad.insert(Name);
      }
    }
  }
  ASSERT_EQ(Bad.size(), 2u);

  DiagnosticEngine D1, D2;
  auto Reference = runSession(*Prog, 0, D1);
  auto Victim = runSession(*Prog, 0, D2);
  ASSERT_NE(Reference, nullptr);
  ASSERT_NE(Victim, nullptr);

  ProfileIngestReport CleanReport = Reference->ingestProfile(Clean);
  ASSERT_TRUE(CleanReport.Ok) << CleanReport.Error;
  EXPECT_EQ(CleanReport.Accepted, 4u);
  EXPECT_TRUE(CleanReport.Quarantined.empty());

  ProfileIngestReport Report = Victim->ingestProfile(Corrupt);
  ASSERT_TRUE(Report.Ok) << Report.Error;
  EXPECT_EQ(Report.Accepted, 2u);
  // Exactly the k corrupted functions, by name.
  EXPECT_EQ(std::set<std::string>(Report.Quarantined.begin(),
                                  Report.Quarantined.end()),
            Bad);
  for (const std::string &Finding : Report.Findings)
    EXPECT_TRUE(Finding.find("main") == 0 || Finding.find("mid") == 0)
        << Finding;

  EstimateResult CleanRes = Reference->estimateEntry();
  ASSERT_TRUE(CleanRes.Ok) << CleanRes.Error;
  EstimateResult VictimRes = Victim->estimateEntry();
  ASSERT_TRUE(VictimRes.Ok) << VictimRes.Error;

  // Quarantined functions: tagged, reason preserved, estimates from
  // static frequencies. The entry itself is quarantined here, so the
  // entry query carries the tag; the clean session's does not.
  const Function *Mid = Prog->findFunction("mid");
  ASSERT_NE(Mid, nullptr);
  EXPECT_TRUE(Victim->isQuarantined(*Mid));
  EstimateResult QRes = Victim->estimate(EstimateRequest("mid"));
  ASSERT_TRUE(QRes.Ok) << QRes.Error;
  EXPECT_TRUE(QRes.Quarantined);
  EXPECT_NE(QRes.QuarantineReason.find("checksum"), std::string::npos)
      << QRes.QuarantineReason;
  EXPECT_TRUE(VictimRes.Quarantined);
  EXPECT_FALSE(CleanRes.Quarantined);

  // The clean functions' node estimates are bit-identical between the two
  // sessions; the quarantined ones differ (static vs profiled branches
  // would only coincide by accident on this program shape).
  for (const auto &F : Prog->functions()) {
    if (Bad.count(F->name()))
      continue;
    const std::vector<NodeEstimates> &EA =
        CleanRes.Analysis->estimatesOf(*F);
    const std::vector<NodeEstimates> &EB =
        VictimRes.Analysis->estimatesOf(*F);
    ASSERT_EQ(EA.size(), EB.size()) << F->name();
    EXPECT_EQ(std::memcmp(EA.data(), EB.data(),
                          EA.size() * sizeof(NodeEstimates)),
              0)
        << "clean function " << F->name() << " drifted bitwise";
  }
}

TEST(EstimationSession, FailPolicyRejectsWholeProfileAtomically) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine RunDiags;
  auto Producer = runSession(*Prog, 1, RunDiags);
  ASSERT_NE(Producer, nullptr);
  ProfileFile Corrupt = Producer->captureProfile();
  for (FunctionSection &S : Corrupt.sectionsMutable()) {
    if (S.Name == "mid") {
      S.Valid = false;
      S.Issue = "section checksum mismatch (corrupt data)";
    }
  }

  DiagnosticEngine Diags;
  auto Strict = runSession(*Prog, 0, Diags, BadProfilePolicy::Fail);
  ASSERT_NE(Strict, nullptr);
  ProfileIngestReport Report = Strict->ingestProfile(Corrupt);
  EXPECT_FALSE(Report.Ok);
  EXPECT_EQ(Report.Accepted, 0u);
  ASSERT_EQ(Report.Quarantined.size(), 1u);
  EXPECT_EQ(Report.Quarantined[0], "mid");
  // Nothing folded, nothing quarantined: the session still answers from
  // its own (zero-run) counters as if the ingest never happened.
  EXPECT_TRUE(Strict->quarantined().empty());
  EstimateResult R = Strict->estimateEntry();
  EXPECT_TRUE(R.Ok) << R.Error;
  EXPECT_FALSE(R.Quarantined);
}

TEST(EstimationSession, FingerprintMismatchRejectsProfile) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine PD;
  std::unique_ptr<Program> Other = parseProgram(R"FTN(
program main
  x = 1.0
  print x
end
)FTN",
                                                PD);
  ASSERT_NE(Other, nullptr) << PD.str();
  DiagnosticEngine D1, D2;
  auto Producer = runSession(*Other, 1, D1);
  auto Consumer = runSession(*Prog, 0, D2);
  ASSERT_NE(Producer, nullptr);
  ASSERT_NE(Consumer, nullptr);
  ProfileIngestReport Report =
      Consumer->ingestProfile(Producer->captureProfile());
  EXPECT_FALSE(Report.Ok);
  EXPECT_NE(Report.Error.find("fingerprint"), std::string::npos)
      << Report.Error;
}

TEST(EstimationSession, BadExternalDeltaQuarantinesOrFails) {
  std::unique_ptr<Program> Prog = parseDiamond();
  const auto NaN = std::numeric_limits<double>::quiet_NaN();

  // Quarantine policy: the poisoned function degrades, the query succeeds.
  {
    DiagnosticEngine Diags;
    auto S = runSession(*Prog, 1, Diags, BadProfilePolicy::Quarantine);
    ASSERT_NE(S, nullptr);
    const Function *LeafB = Prog->findFunction("leafb");
    ASSERT_NE(LeafB, nullptr);
    FrequencyTotals Delta = invocationDelta(*S, *LeafB);
    Delta.Cond.begin()->second = NaN;
    S->accumulateTotals(*LeafB, Delta);
    EstimateResult R = S->estimateEntry();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_TRUE(S->isQuarantined(*LeafB));
    EstimateResult Leaf = S->estimate(EstimateRequest("leafb"));
    ASSERT_TRUE(Leaf.Ok) << Leaf.Error;
    EXPECT_TRUE(Leaf.Quarantined);
  }

  // Fail policy: the historical whole-query failure, naming the function.
  {
    DiagnosticEngine Diags;
    auto S = runSession(*Prog, 1, Diags, BadProfilePolicy::Fail);
    ASSERT_NE(S, nullptr);
    const Function *LeafB = Prog->findFunction("leafb");
    FrequencyTotals Delta = invocationDelta(*S, *LeafB);
    Delta.Cond.begin()->second = NaN;
    S->accumulateTotals(*LeafB, Delta);
    EstimateResult R = S->estimateEntry();
    EXPECT_FALSE(R.Ok);
    EXPECT_NE(R.Error.find("leafb"), std::string::npos) << R.Error;
    EXPECT_TRUE(S->quarantined().empty());
  }
}

TEST(EstimationSession, RepeatedValidDeltasSaturateAtTwoPow53) {
  // Regression test: each delta below passes the per-delta validation
  // (finite, non-negative, <= 2^53), but their sum does not fit. The
  // unfixed accumulator did a bare `Acc[Cond] += Total`, silently walking
  // the total past 2^53 where doubles can no longer represent every
  // count — this test fails on that code twice over: the estimates skew
  // away from the clamped reference, and no diagnostic is emitted. The
  // fixed accumulator clamps at exactly 2^53 (the PTPF-merge contract)
  // and warns once per function that totals are now lower bounds.
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine D1, D2;
  auto S = runSession(*Prog, 1, D1, BadProfilePolicy::Quarantine);
  auto Ref = runSession(*Prog, 1, D2, BadProfilePolicy::Quarantine);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(Ref, nullptr);
  const Function *LeafA = Prog->findFunction("leafa");
  ASSERT_NE(LeafA, nullptr);

  FrequencyTotals Limit = invocationDelta(*S, *LeafA);
  Limit.Cond.begin()->second = ProfileFile::SaturationLimit;
  S->accumulateTotals(*LeafA, Limit);
  S->accumulateTotals(*LeafA, Limit);
  Ref->accumulateTotals(*LeafA, Limit);

  EstimateResult RS = S->estimateEntry();
  EstimateResult RR = Ref->estimateEntry();
  ASSERT_TRUE(RS.Ok) << RS.Error;
  ASSERT_TRUE(RR.Ok) << RR.Error;
  // Clamped at the limit, the doubled accumulator equals the single-delta
  // reference bit for bit; the function is NOT quarantined (saturation is
  // a diagnosed precision loss, not bad data).
  expectBitIdentical(*Prog, *RS.Analysis, *RR.Analysis);
  EXPECT_FALSE(S->isQuarantined(*LeafA));

  // The lower-bounds warning names the function and fires exactly once,
  // even after further saturating deltas.
  S->accumulateTotals(*LeafA, Limit);
  ASSERT_TRUE(S->estimateEntry().Ok);
  std::string Log = D1.str();
  size_t First = Log.find("saturated at 2^53");
  ASSERT_NE(First, std::string::npos) << Log;
  EXPECT_NE(Log.find("leafa"), std::string::npos) << Log;
  EXPECT_EQ(Log.find("saturated at 2^53", First + 1), std::string::npos)
      << Log;
}

TEST(EstimationSession, InjectedCounterCorruptionQuarantinesThatFunction) {
  std::unique_ptr<Program> Prog = parseDiamond();
  ObsRegistry Obs;
  DiagnosticEngine Diags;
  auto S = runSession(*Prog, 1, Diags, BadProfilePolicy::Quarantine, &Obs);
  ASSERT_NE(S, nullptr);

  // Poison the first recovery (program order: leafa) through the seeded
  // harness — the exact in-memory path PTRAN_FAULT=counter.corrupt=1
  // takes in production.
  EstimateResult R;
  {
    ScopedFaultInjection FI("seed=9,counter.corrupt=1");
    ASSERT_TRUE(FI.ok()) << FI.error();
    R = S->estimateEntry();
  }
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_EQ(S->quarantined().size(), 1u);
  EXPECT_GE(Obs.counterValue("session.quarantined_functions"), 1u);

  // Same injection under Fail: the query reports the failure instead.
  DiagnosticEngine D2;
  auto Strict = runSession(*Prog, 1, D2, BadProfilePolicy::Fail);
  ASSERT_NE(Strict, nullptr);
  EstimateResult R2;
  {
    ScopedFaultInjection FI("seed=9,counter.corrupt=1");
    ASSERT_TRUE(FI.ok()) << FI.error();
    R2 = Strict->estimateEntry();
  }
  EXPECT_FALSE(R2.Ok);
}

TEST(EstimationSession, IngestReportsObservabilityCounters) {
  std::unique_ptr<Program> Prog = parseDiamond();
  DiagnosticEngine RunDiags;
  auto Producer = runSession(*Prog, 1, RunDiags);
  ASSERT_NE(Producer, nullptr);
  ProfileFile Clean = Producer->captureProfile();
  ProfileFile Corrupt = Clean;
  Corrupt.sectionsMutable()[0].Valid = false;
  Corrupt.sectionsMutable()[0].Issue = "section checksum mismatch";

  ObsRegistry Obs;
  DiagnosticEngine Diags;
  auto S = runSession(*Prog, 0, Diags, BadProfilePolicy::Quarantine, &Obs);
  ASSERT_NE(S, nullptr);
  ASSERT_TRUE(S->ingestProfile(Clean).Ok);
  ASSERT_TRUE(S->ingestProfile(Corrupt).Ok);

  EXPECT_EQ(Obs.counterValue("session.ingest.profiles"), 2u);
  EXPECT_EQ(Obs.counterValue("session.ingest.sections"), 8u);
  // Second ingest: 3 clean sections fold, 1 quarantines.
  EXPECT_EQ(Obs.counterValue("session.ingest.accepted"), 7u);
  EXPECT_EQ(Obs.counterValue("session.ingest.quarantined"), 1u);
}

TEST(EstimationSession, CsrSweepDoesNotAllocateOnWarmQueries) {
  // The CSR kernel's TIME/VAR sweep runs on preallocated arena arrays and
  // dense buffers; the cost.hotpath.allocs counter (fed by the global
  // operator-new hook around the sweep) proves zero heap allocations per
  // query — cold and warm alike.
  std::unique_ptr<Program> Prog = parseDiamond();
  ObsRegistry Obs;
  DiagnosticEngine Diags;
  auto S = runSession(*Prog, 1, Diags, BadProfilePolicy::Quarantine, &Obs);
  ASSERT_NE(S, nullptr);

  EstimateResult Cold = S->estimateEntry();
  ASSERT_TRUE(Cold.Ok) << Cold.Error;
  EXPECT_GT(S->lastEvaluations(), 0u);
  EXPECT_EQ(Obs.counterValue("cost.hotpath.allocs"), 0u);

  // Warm path: dirty one leaf so the next query re-sweeps {leafa, mid,
  // main}; the sweep itself must still be allocation-free.
  const Function *Leaf = Prog->findFunction("leafa");
  ASSERT_NE(Leaf, nullptr);
  S->accumulateTotals(*Leaf, invocationDelta(*S, *Leaf));
  EstimateResult Warm = S->estimateEntry();
  ASSERT_TRUE(Warm.Ok) << Warm.Error;
  EXPECT_GT(S->lastEvaluations(), 0u);
  EXPECT_EQ(Obs.counterValue("cost.hotpath.allocs"), 0u);
}

} // namespace
