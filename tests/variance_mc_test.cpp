//===--- tests/variance_mc_test.cpp - Monte-Carlo validation --------------===//
//
// Validates Sections 4-5 against simulation. For programs matching the
// paper's statistical model — branches drawn independently, each branch
// executing at most once per run — the analytic TIME(START) must equal
// the mean simulated cycle count and VAR(START) the sample variance.
//
// Loops are the model's known coarse spot: the paper treats a DO header's
// continue/exit test as an independent Bernoulli draw, so even a
// compile-time-constant loop acquires variance. The second suite enables
// the DeterministicDoHeaders extension, under which constant-trip loops
// with deterministic bodies carry no variance and simulation matches
// again.
//
//===----------------------------------------------------------------------===//

#include "cost/TimeAnalysis.h"
#include "freq/Frequencies.h"
#include "interp/Interpreter.h"
#include "ir/Builder.h"
#include "profile/ProfileRuntime.h"
#include "support/Casting.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace ptran;

namespace {

struct McProgram {
  std::unique_ptr<Program> Prog;
  IntLiteral *SeedLit = nullptr;
};

/// Emits model-compatible program shapes: branch trees where every branch
/// executes at most once per run, optional constant-trip loops with
/// deterministic bodies, and at most one helper call.
class McBuilder {
public:
  McBuilder(FunctionBuilder &B, Rng &Structure, VarId Seed, VarId Rnd,
            VarId Acc, bool WithLoops)
      : B(B), Structure(Structure), Seed(Seed), Rnd(Rnd), Acc(Acc),
        WithLoops(WithLoops) {}

  void advance() {
    B.assign(Seed, B.intrinsic(Intrinsic::Mod,
                               {B.add(B.mul(B.var(Seed), B.lit(1103)),
                                      B.lit(7919)),
                                B.lit(100003)}));
    B.assign(Rnd, B.intrinsic(Intrinsic::Mod, {B.var(Seed), B.lit(10000)}));
  }

  void emitWork(int64_t Weight) {
    for (int64_t I = 0; I < Weight; ++I)
      B.assign(Acc, B.add(B.var(Acc), B.lit(I + 1)));
  }

  void emitConstLoop() {
    VarId I = B.intVar("i" + std::to_string(NextVar++));
    B.doLoop(I, B.lit(1), B.lit(Structure.uniformInt(2, 6)));
    emitWork(Structure.uniformInt(1, 3));
    B.endDo();
  }

  void emitIf(unsigned Depth, bool AllowCall) {
    int Else = NextLabel++;
    int End = NextLabel++;
    int Percent = static_cast<int>(Structure.uniformInt(15, 85));
    advance();
    B.ifGoto(B.ge(B.var(Rnd), B.lit(Percent * 100)), Else);
    emitRegion(Depth + 1, AllowCall);
    B.gotoLabel(End);
    B.label(Else).cont();
    if (Structure.bernoulli(0.6))
      emitRegion(Depth + 1, AllowCall);
    B.label(End).cont();
  }

  void emitRegion(unsigned Depth, bool AllowCall) {
    unsigned Parts = static_cast<unsigned>(Structure.uniformInt(1, 2));
    bool SawBranch = false;
    for (unsigned I = 0; I < Parts; ++I) {
      double Roll = Structure.uniformReal();
      if (Depth < 3 && (Roll < 0.55 || (Depth == 0 && !SawBranch))) {
        emitIf(Depth, AllowCall);
        SawBranch = true;
      } else if (WithLoops && Roll < 0.75) {
        emitConstLoop();
      } else if (AllowCall && Roll < 0.85 && !CallEmitted) {
        CallEmitted = true;
        B.callSub("helper", {B.var(Seed), B.var(Rnd), B.var(Acc)});
      } else {
        emitWork(Structure.uniformInt(1, 4));
      }
    }
  }

private:
  FunctionBuilder &B;
  Rng &Structure;
  VarId Seed, Rnd, Acc;
  bool WithLoops;
  int NextLabel = 10;
  unsigned NextVar = 0;
  bool CallEmitted = false;
};

McProgram makeMcProgram(uint64_t StructureSeed, bool WithLoops) {
  Rng Structure(StructureSeed);
  McProgram Out;
  Out.Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;

  {
    FunctionBuilder B(*Out.Prog, "helper", Diags);
    VarId S = B.intParam("seed");
    VarId R = B.intParam("rnd");
    VarId A = B.intParam("acc");
    McBuilder Mc(B, Structure, S, R, A, WithLoops);
    Mc.emitRegion(1, /*AllowCall=*/false);
    EXPECT_NE(B.finish(), nullptr) << Diags.str();
  }
  {
    FunctionBuilder B(*Out.Prog, "main", Diags);
    VarId S = B.intVar("seed");
    VarId R = B.intVar("rnd");
    VarId A = B.intVar("acc");
    Expr *SeedInit = B.lit(int64_t(1));
    Out.SeedLit = cast<IntLiteral>(SeedInit);
    B.assign(S, SeedInit);
    B.assign(R, B.lit(0));
    B.assign(A, B.lit(0));
    McBuilder Mc(B, Structure, S, R, A, WithLoops);
    Mc.emitRegion(0, /*AllowCall=*/true);
    EXPECT_NE(B.finish(), nullptr) << Diags.str();
  }
  return Out;
}

void runMcValidation(uint64_t StructureSeed, bool WithLoops,
                     TimeAnalysisOptions Opts) {
  McProgram Mc = makeMcProgram(StructureSeed, WithLoops);
  DiagnosticEngine Diags;
  auto PA = ProgramAnalysis::compute(*Mc.Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();

  CostModel CM = CostModel::optimizing();
  ProgramPlan Plan = ProgramPlan::build(*PA, ProfileMode::Smart);
  ProfileRuntime Runtime(*PA, Plan, CM);

  constexpr unsigned Runs = 2000;
  std::vector<double> Cycles;
  Cycles.reserve(Runs);
  Rng SeedGen(StructureSeed * 7919 + 17);
  for (unsigned R = 0; R < Runs; ++R) {
    Mc.SeedLit->setValue(SeedGen.uniformInt(1, 100002));
    Interpreter Interp(*Mc.Prog, CM);
    Interp.addObserver(&Runtime);
    RunResult Result = Interp.run();
    ASSERT_TRUE(Result.Ok) << Result.Error;
    Cycles.push_back(Result.Cycles);
  }

  std::map<const Function *, Frequencies> Freqs;
  for (const auto &F : Mc.Prog->functions()) {
    FrequencyTotals Totals = Runtime.recover(*F);
    ASSERT_TRUE(Totals.Ok);
    Freqs[F.get()] = computeFrequencies(PA->of(*F), Totals);
  }
  TimeAnalysis TA = TimeAnalysis::run(*PA, Freqs, CM, Opts);

  double Mean = 0.0;
  for (double C : Cycles)
    Mean += C;
  Mean /= Runs;
  double Var = 0.0;
  for (double C : Cycles)
    Var += (C - Mean) * (C - Mean);
  Var /= (Runs - 1);

  // The average is reproduced exactly (frequencies came from these runs).
  EXPECT_NEAR(TA.programTime(), Mean, 1e-6 * std::max(1.0, Mean));

  // The variance matches up to sampling noise; the margin is generous
  // because the goal is catching systematic errors, not tail noise.
  double Analytic = TA.functionVariance(*Mc.Prog->entry());
  if (Var < 1e-9) {
    EXPECT_NEAR(Analytic, 0.0, 1e-6);
  } else {
    EXPECT_GT(Analytic, 0.55 * Var) << "mean " << Mean;
    EXPECT_LT(Analytic, 1.45 * Var) << "mean " << Mean;
  }
}

class BranchMonteCarlo : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchMonteCarlo, PaperModelMatchesSimulation) {
  // No loops: the paper's default model is exact up to sampling noise.
  runMcValidation(GetParam(), /*WithLoops=*/false, TimeAnalysisOptions());
}

INSTANTIATE_TEST_SUITE_P(Structures, BranchMonteCarlo,
                         ::testing::Range<uint64_t>(1, 16));

class LoopMonteCarlo : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LoopMonteCarlo, DeterministicDoHeadersMatchSimulation) {
  TimeAnalysisOptions Opts;
  Opts.DeterministicDoHeaders = true;
  runMcValidation(GetParam(), /*WithLoops=*/true, Opts);
}

INSTANTIATE_TEST_SUITE_P(Structures, LoopMonteCarlo,
                         ::testing::Range<uint64_t>(1, 16));

TEST(LoopVarianceModel, ConstantLoopCarriesModelVariance) {
  // Paper-faithful behaviour: a constant-trip loop with a deterministic
  // body still gets positive variance from the header's modelled branch
  // draw; the DeterministicDoHeaders extension removes it.
  Program Prog;
  DiagnosticEngine Diags;
  FunctionBuilder B(Prog, "main", Diags);
  VarId A = B.intVar("acc");
  VarId I = B.intVar("i");
  B.assign(A, B.lit(0));
  B.doLoop(I, B.lit(1), B.lit(10));
  B.assign(A, B.add(B.var(A), B.lit(1)));
  B.endDo();
  ASSERT_NE(B.finish(), nullptr) << Diags.str();

  auto PA = ProgramAnalysis::compute(Prog, Diags);
  ASSERT_NE(PA, nullptr) << Diags.str();
  CostModel CM = CostModel::optimizing();
  ProgramPlan Plan = ProgramPlan::build(*PA, ProfileMode::Smart);
  ProfileRuntime Runtime(*PA, Plan, CM);
  Interpreter Interp(Prog, CM);
  Interp.addObserver(&Runtime);
  ASSERT_TRUE(Interp.run().Ok);

  std::map<const Function *, Frequencies> Freqs;
  const Function *Main = Prog.entry();
  Freqs[Main] = computeFrequencies(PA->of(*Main), Runtime.recover(*Main));

  TimeAnalysis Faithful = TimeAnalysis::run(*PA, Freqs, CM);
  EXPECT_GT(Faithful.functionVariance(*Main), 0.0);

  TimeAnalysisOptions Opts;
  Opts.DeterministicDoHeaders = true;
  TimeAnalysis Extended = TimeAnalysis::run(*PA, Freqs, CM, Opts);
  EXPECT_DOUBLE_EQ(Extended.functionVariance(*Main), 0.0);

  // Times are identical under both models.
  EXPECT_DOUBLE_EQ(Faithful.programTime(), Extended.programTime());
}

} // namespace
